# Runs clang-tidy over every src/ translation unit using the exported
# compile_commands.json. Invoked by the `lint` target:
#   cmake -DPROJECT_SOURCE_DIR=... -DBUILD_DIR=... -P run_clang_tidy.cmake
#
# clang-tidy is optional tooling: when absent the step is skipped with
# a clear message (scout_lint always runs and still gates the target).
# Any clang-tidy finding is fatal (.clang-tidy sets
# --warnings-as-errors=*).

find_program(CLANG_TIDY_EXE NAMES
  clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16
  clang-tidy-15 clang-tidy-14)

if(NOT CLANG_TIDY_EXE)
  message(STATUS
    "clang-tidy not found — skipping the clang-tidy half of `lint` "
    "(scout_lint already ran). Install a system clang-tidy to enable it.")
  return()
endif()

set(COMPILE_DB ${BUILD_DIR}/compile_commands.json)
if(NOT EXISTS ${COMPILE_DB})
  message(FATAL_ERROR
    "${COMPILE_DB} not found. Configure with CMake first (the project "
    "exports compile_commands.json unconditionally); use a Makefile or "
    "Ninja generator.")
endif()

file(GLOB_RECURSE TIDY_SOURCES ${PROJECT_SOURCE_DIR}/src/*.cc)
list(SORT TIDY_SOURCES)
list(LENGTH TIDY_SOURCES N)
message(STATUS "clang-tidy (${CLANG_TIDY_EXE}) over ${N} src/ files...")

execute_process(
  COMMAND ${CLANG_TIDY_EXE} -p ${BUILD_DIR} --quiet ${TIDY_SOURCES}
  RESULT_VARIABLE TIDY_RC)

if(TIDY_RC)
  message(FATAL_ERROR "clang-tidy reported findings (exit ${TIDY_RC})")
endif()
message(STATUS "clang-tidy: clean")
