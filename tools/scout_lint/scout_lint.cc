// scout_lint — project-specific static enforcement for the scout tree.
//
// A standalone token/line-level scanner (no libclang) that makes the
// repo's determinism, layering, single-writer, and hygiene contracts
// compile-time facts instead of tribal knowledge:
//
//   * determinism  — bans wall-clock and nondeterministic-order APIs in
//                    the result-affecting layers (geom/index/graph/
//                    prefetch/engine), where any ordering leak breaks
//                    the bit-identical simulated-metrics contract.
//   * layering     — checks every `#include "..."` against a declared
//                    dependency DAG (tools/scout_lint/layering.txt).
//   * single-writer— shared-PrefetchCache mutating calls may appear
//                    only in the whitelisted serial-apply TUs.
//   * hygiene      — `#pragma once` in every header, no
//                    `using namespace` in headers, no `float` in
//                    geometry/sim-metric code.
//
// Escape hatch: a finding line (or the line directly below a
// comment-only annotation line) can carry
//     // scout-lint: allow(<rule-id>): <justification>
// The justification is mandatory; a malformed annotation is itself a
// violation (`lint-allow`).
//
// Output: `path:line: [rule-id] message` per finding on stdout, a
// summary on stderr. Exit 0 = clean, 1 = violations, 2 = usage/IO.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ------------------------------------------------------------------ rules

struct RuleInfo {
  const char* id;
  const char* summary;
  // Root-relative path prefixes the rule applies to (forward slashes).
  std::vector<const char*> scopes;
};

// Layers whose behaviour feeds simulated metrics: any nondeterminism
// here shows up as cross-run or cross-worker-count metric drift.
const std::vector<const char*> kResultAffectingScopes = {
    "src/geom/", "src/index/", "src/graph/", "src/prefetch/",
    "src/engine/"};

const std::vector<RuleInfo> kRules = {
    {"det-rand",
     "banned nondeterministic RNG (rand/srand/rand_r/drand48); use "
     "scout::Rng (SplitMix64) with an explicit seed",
     kResultAffectingScopes},
    {"det-random-device",
     "std::random_device is nondeterministic across runs; seed "
     "scout::Rng explicitly",
     kResultAffectingScopes},
    {"det-wall-clock",
     "wall-clock reads (time()/clock()/gettimeofday/system_clock) in a "
     "result-affecting layer; use SimClock for simulated time",
     kResultAffectingScopes},
    {"det-unordered-container",
     "unordered_map/unordered_set in a result-affecting layer: "
     "iteration order is unspecified; use a sorted container or "
     "justify a lookup-only use with an allow annotation",
     kResultAffectingScopes},
    {"layer-dag",
     "#include crosses the declared layer DAG (tools/scout_lint/"
     "layering.txt)",
     {"src/"}},
    {"cache-single-writer",
     "PrefetchCache mutating call (Insert/Evict/Clear/SetActiveSession/"
     "ConfigureSharing on a cache-named receiver) outside the "
     "whitelisted serial-apply translation units",
     {"src/"}},
    {"disk-queue-single-writer",
     "SharedDiskQueue mutating call (ServeBatch/ServeOne/Reset on a "
     "disk- or queue-named receiver) outside the whitelisted serving "
     "translation units",
     {"src/"}},
    {"ring-single-writer",
     "SPSC ring endpoint call (TryPush/TryPop on a ring/requests/"
     "completions/pipe-named receiver) outside the whitelisted pipeline "
     "translation units; a second producer or consumer voids the "
     "lock-free single-producer/single-consumer contract",
     {"src/"}},
    {"fault-injection-seam",
     "fault-schedule wiring (AttachFaults on a disk- or queue-named "
     "receiver) outside the storage TUs and the serial apply loop; "
     "scattered attach points would let faults fire outside the "
     "deterministic serving order",
     {"src/"}},
    {"real-io-isolation",
     "file/OS I/O call (open/pread/fstream/...) in src/ outside the "
     "real-I/O backend TU; everything else serves through the "
     "PageStore/FilePageStore seams so the simulated oracle stays "
     "I/O-free",
     {"src/"}},
    {"simd-isolation",
     "raw vector intrinsics (_mm256_* calls or <immintrin.h>) outside "
     "src/common/simd.h; program against the scout::simd wrapper so the "
     "scalar-fallback build stays a pure compile-time switch",
     {"src/", "bench/", "tests/"}},
    {"hdr-pragma-once",
     "header must start with #pragma once (before any code)",
     {"src/", "bench/", "tests/"}},
    {"hdr-using-namespace",
     "using namespace in a header leaks into every includer",
     {"src/", "bench/", "tests/"}},
    {"no-float",
     "float in geometry/sim-metric code; simulated metrics are defined "
     "over double (bit-identity contract)",
     {"src/geom/", "src/engine/", "src/common/"}},
    {"lint-allow",
     "malformed scout-lint allow annotation (unknown rule id or "
     "missing justification)",
     {"src/", "bench/", "tests/"}},
};

// Translation units allowed to mutate a (potentially shared)
// PrefetchCache. multi_client_engine.cc owns the serial apply loop;
// query_executor.cc is the single-stream owner path driven from it;
// cache.cc is the implementation itself.
const std::vector<const char*> kCacheWriterWhitelist = {
    "src/storage/cache.cc",
    "src/engine/query_executor.cc",
    "src/engine/multi_client_engine.cc",
};

// Translation units allowed to mutate the SharedDiskQueue. All disk
// traffic funnels through the serving layer so queueing delay is
// attributed once: shared_disk.cc is the implementation,
// query_executor.cc issues the per-session batches, and
// multi_client_engine.cc owns Reset between experiments.
const std::vector<const char*> kDiskQueueWriterWhitelist = {
    "src/storage/shared_disk.cc",
    "src/engine/query_executor.cc",
    "src/engine/multi_client_engine.cc",
};

// Translation units allowed to wire a FaultSchedule into storage
// (AttachFaults). Keeping the seam here — the storage implementations
// plus the two TUs that own the deterministic serving order — means a
// fault can only ever fire inside the serial apply loop's timeline, so
// injected failures stay bit-identical across worker counts.
const std::vector<const char*> kFaultSeamWhitelist = {
    "src/storage/disk_model.cc",
    "src/storage/shared_disk.cc",
    "src/engine/query_executor.cc",
    "src/engine/multi_client_engine.cc",
};

// Translation units allowed to call SPSC ring endpoints (TryPush /
// TryPop on a ring-named receiver). The async prefetch pipeline is the
// only producer AND the only consumer broker: it owns which thread
// holds each end, which is the whole lock-free contract. A second call
// site would silently turn SPSC into MPSC and corrupt the ring.
const std::vector<const char*> kRingWriterWhitelist = {
    "src/prefetch/async_pipeline.cc",
};

// The single translation unit in src/ allowed to perform real file/OS
// I/O. Everything else reads pages through the PageStore/FilePageStore
// seams, which keeps the simulated oracle I/O-free and makes the
// backend switch (IoBackend::kSimulated vs kFile) a pure config flag.
const std::vector<const char*> kRealIoWhitelist = {
    "src/storage/file_page_store.cc",
};

// The single translation unit allowed to touch raw vector intrinsics:
// the portable SIMD wrapper itself. Everything else goes through its
// scout::simd:: operations, which is what makes SCOUT_SIMD=scalar a
// pure compile-time backend switch instead of a porting project.
const char kSimdWrapperHome[] = "src/common/simd.h";

const RuleInfo* FindRule(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

bool InScope(const std::string& rel, const std::vector<const char*>& scopes) {
  for (const char* s : scopes) {
    if (rel.rfind(s, 0) == 0) return true;
  }
  return false;
}

// -------------------------------------------------------------- layering

struct LayerSpec {
  // layer -> layers it may #include from (always contains itself).
  std::map<std::string, std::set<std::string>> allowed;
};

std::optional<LayerSpec> LoadLayerSpec(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  LayerSpec spec;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string head;
    if (!(ss >> head)) continue;
    if (head.back() != ':') return std::nullopt;
    head.pop_back();
    std::set<std::string>& deps = spec.allowed[head];
    deps.insert(head);
    std::string dep;
    while (ss >> dep) deps.insert(dep);
  }
  return spec.allowed.empty() ? std::nullopt : std::optional(spec);
}

// ---------------------------------------------------------- file scanning

struct Violation {
  std::string file;  // as given on the command line / found by walk
  int line = 0;
  std::string rule;
  std::string message;
};

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Calls fn(column) for every word-bounded occurrence of `word`.
template <typename Fn>
void ForEachWord(const std::string& line, const std::string& word, Fn fn) {
  size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) fn(pos);
    pos = end;
  }
}

bool WordFollowedByParen(const std::string& line, size_t col, size_t len) {
  size_t p = col + len;
  while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
  return p < line.size() && line[p] == '(';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

// Strips comments and blanks string/char literal contents, keeping
// line lengths stable so columns still line up with the raw text.
// `in_block` carries /* ... */ state across lines. Raw strings are not
// handled (the tree has none); this is a line-level scanner by design.
std::string StripLine(const std::string& raw, bool* in_block) {
  std::string out = raw;
  size_t i = 0;
  while (i < out.size()) {
    if (*in_block) {
      if (out[i] == '*' && i + 1 < out.size() && out[i + 1] == '/') {
        out[i] = out[i + 1] = ' ';
        i += 2;
        *in_block = false;
      } else {
        out[i++] = ' ';
      }
      continue;
    }
    const char c = out[i];
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      for (size_t j = i; j < out.size(); ++j) out[j] = ' ';
      break;
    }
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      out[i] = out[i + 1] = ' ';
      i += 2;
      *in_block = true;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < out.size()) {
        if (out[i] == '\\' && i + 1 < out.size()) {
          out[i] = out[i + 1] = ' ';
          i += 2;
          continue;
        }
        if (out[i] == quote) {
          ++i;
          break;
        }
        out[i++] = ' ';
      }
      continue;
    }
    ++i;
  }
  return out;
}

struct AllowAnnotation {
  std::string rule;
  bool well_formed = false;  // has a known shape AND a justification
  int line = 0;              // 1-based line the annotation sits on
  bool standalone = false;   // comment-only line: applies to next line
};

// Parses `scout-lint: allow(<rule>): <justification>` out of a raw
// line, if present.
std::optional<AllowAnnotation> ParseAllow(const std::string& raw, int line_no,
                                          const std::string& stripped) {
  const std::string marker = "scout-lint: allow(";
  const size_t at = raw.find(marker);
  if (at == std::string::npos) return std::nullopt;
  AllowAnnotation a;
  a.line = line_no;
  a.standalone = Trim(stripped).empty();
  const size_t open = at + marker.size();
  const size_t close = raw.find(')', open);
  if (close == std::string::npos) return a;  // malformed
  a.rule = raw.substr(open, close - open);
  // Require `): ` + non-empty justification text.
  size_t p = close + 1;
  if (p >= raw.size() || raw[p] != ':') return a;
  const std::string justification = Trim(raw.substr(p + 1));
  a.well_formed = !justification.empty() && FindRule(a.rule) != nullptr;
  return a;
}

bool IsHeaderPath(const std::string& rel) {
  return rel.size() > 2 && (rel.rfind(".h") == rel.size() - 2 ||
                            (rel.size() > 4 && rel.rfind(".hpp") == rel.size() - 4));
}

class FileScanner {
 public:
  FileScanner(const LayerSpec& layers, std::vector<Violation>* out)
      : layers_(layers), out_(out) {}

  // `display` is the path printed in findings; `rel` the root-relative
  // path (forward slashes) used for scoping.
  bool Scan(const fs::path& file, const std::string& display,
            const std::string& rel) {
    std::ifstream in(file);
    if (!in) return false;
    raw_.clear();
    stripped_.clear();
    std::string line;
    bool in_block = false;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      raw_.push_back(line);
      stripped_.push_back(StripLine(line, &in_block));
    }
    display_ = display;
    rel_ = rel;
    CollectAllows();
    CheckDeterminism();
    CheckLayering();
    CheckSingleWriter();
    CheckRealIoIsolation();
    CheckSimdIsolation();
    CheckHygiene();
    return true;
  }

 private:
  void Report(int line, const std::string& rule, const std::string& msg) {
    if (Allowed(line, rule)) return;
    // One finding per (line, rule): several tokens on one line are the
    // same defect, and the allow annotation works at line granularity.
    if (!reported_.insert({line, rule}).second) return;
    out_->push_back({display_, line, rule, msg});
  }

  bool Allowed(int line, const std::string& rule) const {
    auto it = allows_.find(line);
    return it != allows_.end() && it->second.count(rule) > 0;
  }

  void CollectAllows() {
    allows_.clear();
    reported_.clear();
    for (size_t i = 0; i < raw_.size(); ++i) {
      const int line_no = static_cast<int>(i) + 1;
      auto a = ParseAllow(raw_[i], line_no, stripped_[i]);
      if (!a) continue;
      if (!a->well_formed) {
        // The lint-allow rule polices annotations everywhere the
        // scanner looks, independent of per-rule scopes.
        out_->push_back(
            {display_, line_no, "lint-allow",
             "malformed allow annotation: need "
             "`scout-lint: allow(<known-rule>): <justification>`"});
        continue;
      }
      // A comment-only annotation covers the next code line, so the
      // justification may span several comment lines.
      int target = line_no;
      if (a->standalone) {
        size_t j = i + 1;
        while (j < stripped_.size() && Trim(stripped_[j]).empty()) ++j;
        target = static_cast<int>(j) + 1;
      }
      allows_[target].insert(a->rule);
    }
  }

  bool RuleApplies(const char* id) const {
    const RuleInfo* r = FindRule(id);
    return r != nullptr && InScope(rel_, r->scopes);
  }

  bool LineIsInclude(size_t i) const {
    return Trim(stripped_[i]).rfind("#include", 0) == 0;
  }

  void CheckDeterminism() {
    const bool rand_on = RuleApplies("det-rand");
    const bool dev_on = RuleApplies("det-random-device");
    const bool clock_on = RuleApplies("det-wall-clock");
    const bool unord_on = RuleApplies("det-unordered-container");
    if (!rand_on && !dev_on && !clock_on && !unord_on) return;
    for (size_t i = 0; i < stripped_.size(); ++i) {
      const std::string& s = stripped_[i];
      const int n = static_cast<int>(i) + 1;
      if (rand_on) {
        for (const char* w : {"rand", "srand", "rand_r", "drand48"}) {
          ForEachWord(s, w, [&](size_t col) {
            if (WordFollowedByParen(s, col, std::string(w).size())) {
              Report(n, "det-rand",
                     std::string("call to nondeterministic `") + w + "`");
            }
          });
        }
      }
      if (dev_on) {
        ForEachWord(s, "random_device", [&](size_t) {
          Report(n, "det-random-device", "use of std::random_device");
        });
      }
      if (clock_on) {
        ForEachWord(s, "system_clock", [&](size_t) {
          Report(n, "det-wall-clock", "use of std::chrono::system_clock");
        });
        ForEachWord(s, "gettimeofday", [&](size_t) {
          Report(n, "det-wall-clock", "call to gettimeofday");
        });
        for (const char* w : {"time", "clock"}) {
          ForEachWord(s, w, [&](size_t col) {
            if (WordFollowedByParen(s, col, std::string(w).size())) {
              Report(n, "det-wall-clock",
                     std::string("wall-clock call `") + w + "()`");
            }
          });
        }
      }
      if (unord_on && !LineIsInclude(i)) {
        for (const char* w : {"unordered_map", "unordered_set"}) {
          ForEachWord(s, w, [&](size_t) {
            Report(n, "det-unordered-container",
                   std::string("use of std::") + w +
                       " (unspecified iteration order)");
          });
        }
      }
    }
  }

  void CheckLayering() {
    if (!RuleApplies("layer-dag")) return;
    // Layer = path component after src/.
    const std::string prefix = "src/";
    const size_t slash = rel_.find('/', prefix.size());
    if (slash == std::string::npos) return;
    const std::string layer = rel_.substr(prefix.size(), slash - prefix.size());
    auto it = layers_.allowed.find(layer);
    if (it == layers_.allowed.end()) {
      Report(1, "layer-dag",
             "layer `" + layer + "` is not declared in layering.txt");
      return;
    }
    for (size_t i = 0; i < stripped_.size(); ++i) {
      if (!LineIsInclude(i)) continue;
      // The path itself was blanked with the other string literals;
      // recover it from the raw text.
      const std::string& raw = raw_[i];
      const size_t q1 = raw.find('"');
      if (q1 == std::string::npos) continue;  // <system> include
      const size_t q2 = raw.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      const std::string inc = raw.substr(q1 + 1, q2 - q1 - 1);
      const size_t inc_slash = inc.find('/');
      if (inc_slash == std::string::npos) continue;  // same-dir include
      const std::string target = inc.substr(0, inc_slash);
      if (layers_.allowed.count(target) == 0) continue;  // not a layer path
      if (it->second.count(target) == 0) {
        Report(static_cast<int>(i) + 1, "layer-dag",
               "layer `" + layer + "` may not include `" + target +
                   "` (declared DAG: tools/scout_lint/layering.txt)");
      }
    }
  }

  // Shared body of the single-writer rules: a call to one of `methods`
  // through a `.`/`->` receiver whose lowercased identifier contains
  // one of `recv_keys` is a finding (token-level approximation of "a
  // mutating call on the shared object") unless the file is
  // whitelisted.
  void CheckWriterRule(const char* rule,
                       const std::vector<const char*>& whitelist,
                       const std::vector<const char*>& methods,
                       const std::vector<const char*>& recv_keys,
                       const char* what) {
    if (!RuleApplies(rule)) return;
    for (const char* ok : whitelist) {
      if (rel_ == ok) return;
    }
    for (size_t i = 0; i < stripped_.size(); ++i) {
      const std::string& s = stripped_[i];
      const int n = static_cast<int>(i) + 1;
      for (const char* m : methods) {
        ForEachWord(s, m, [&](size_t col) {
          if (!WordFollowedByParen(s, col, std::string(m).size())) return;
          size_t p = col;
          while (p > 0 && (s[p - 1] == ' ' || s[p - 1] == '\t')) --p;
          size_t recv_end;
          if (p >= 1 && s[p - 1] == '.') {
            recv_end = p - 1;
          } else if (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>') {
            recv_end = p - 2;
          } else {
            return;
          }
          size_t recv_begin = recv_end;
          while (recv_begin > 0 && IsWordChar(s[recv_begin - 1])) --recv_begin;
          const std::string recv =
              Lower(s.substr(recv_begin, recv_end - recv_begin));
          bool named = false;
          for (const char* key : recv_keys) {
            if (recv.find(key) != std::string::npos) named = true;
          }
          if (!named) return;
          Report(n, rule,
                 std::string("`") + s.substr(recv_begin, recv_end - recv_begin) +
                     "` mutated via " + m + "() outside the " + what +
                     " whitelist");
        });
      }
    }
  }

  void CheckSingleWriter() {
    CheckWriterRule("cache-single-writer", kCacheWriterWhitelist,
                    {"Insert", "Evict", "Clear", "SetActiveSession",
                     "ConfigureSharing"},
                    {"cache"}, "serial-apply");
    CheckWriterRule("disk-queue-single-writer", kDiskQueueWriterWhitelist,
                    {"ServeBatch", "ServeOne", "Reset"}, {"disk", "queue"},
                    "serving-layer");
    CheckWriterRule("fault-injection-seam", kFaultSeamWhitelist,
                    {"AttachFaults"}, {"disk", "queue"}, "fault-seam");
    CheckWriterRule("ring-single-writer", kRingWriterWhitelist,
                    {"TryPush", "TryPop"},
                    {"ring", "requests", "completions", "pipe"},
                    "ring-writer");
  }

  // Real file/OS I/O is confined to the one backend TU; the rest of
  // src/ reads pages through the PageStore seams. Matched as calls
  // (token followed by `(`) for the C/POSIX surface plus bare
  // mentions of the std stream types, which only appear when a TU
  // opens files itself.
  void CheckRealIoIsolation() {
    if (!RuleApplies("real-io-isolation")) return;
    for (const char* ok : kRealIoWhitelist) {
      if (rel_ == ok) return;
    }
    static const std::vector<const char*> kCallTokens = {
        "open",  "creat",  "pread",  "pwrite",     "mmap",
        "munmap", "fopen", "fread",  "fwrite",     "fsync",
        "fdatasync"};
    static const std::vector<const char*> kTypeTokens = {
        "ifstream", "ofstream", "fstream"};
    for (size_t i = 0; i < stripped_.size(); ++i) {
      const std::string& s = stripped_[i];
      const int n = static_cast<int>(i) + 1;
      for (const char* t : kCallTokens) {
        ForEachWord(s, t, [&](size_t col) {
          if (!WordFollowedByParen(s, col, std::string(t).size())) return;
          Report(n, "real-io-isolation",
                 std::string(t) +
                     "() call outside the real-I/O backend TU "
                     "(src/storage/file_page_store.cc)");
        });
      }
      for (const char* t : kTypeTokens) {
        ForEachWord(s, t, [&](size_t) {
          Report(n, "real-io-isolation",
                 std::string("std::") + t +
                     " outside the real-I/O backend TU "
                     "(src/storage/file_page_store.cc)");
        });
      }
    }
  }

  void CheckSimdIsolation() {
    if (!RuleApplies("simd-isolation")) return;
    if (rel_ == kSimdWrapperHome) return;
    for (size_t i = 0; i < stripped_.size(); ++i) {
      const std::string& s = stripped_[i];
      const int n = static_cast<int>(i) + 1;
      // Any identifier starting with the AVX2 intrinsic prefix. The
      // vector *types* (__m256d) are deliberately not matched: they
      // cannot appear without an intrinsic producing them anyway.
      size_t pos = 0;
      while ((pos = s.find("_mm256_", pos)) != std::string::npos) {
        if (pos == 0 || !IsWordChar(s[pos - 1])) {
          Report(n, "simd-isolation",
                 "raw _mm256_* intrinsic outside " +
                     std::string(kSimdWrapperHome));
        }
        pos += 7;
      }
      // The include line's path survives in the raw text (<...> is not
      // a string literal, but recover from raw for uniformity).
      if (LineIsInclude(i) &&
          raw_[i].find("immintrin.h") != std::string::npos) {
        Report(n, "simd-isolation",
               "#include <immintrin.h> outside " +
                   std::string(kSimdWrapperHome));
      }
    }
  }

  void CheckHygiene() {
    const bool is_header = IsHeaderPath(rel_);
    if (is_header && RuleApplies("hdr-pragma-once")) {
      for (size_t i = 0; i < stripped_.size(); ++i) {
        const std::string code = Trim(stripped_[i]);
        if (code.empty()) continue;
        if (code.rfind("#pragma once", 0) != 0) {
          Report(static_cast<int>(i) + 1, "hdr-pragma-once",
                 "first code line of a header must be #pragma once");
        }
        break;
      }
    }
    if (is_header && RuleApplies("hdr-using-namespace")) {
      for (size_t i = 0; i < stripped_.size(); ++i) {
        ForEachWord(stripped_[i], "using", [&](size_t col) {
          size_t p = col + 5;
          while (p < stripped_[i].size() && std::isspace(static_cast<unsigned char>(stripped_[i][p]))) ++p;
          if (stripped_[i].compare(p, 9, "namespace") == 0) {
            Report(static_cast<int>(i) + 1, "hdr-using-namespace",
                   "using namespace in a header");
          }
        });
      }
    }
    if (RuleApplies("no-float")) {
      for (size_t i = 0; i < stripped_.size(); ++i) {
        ForEachWord(stripped_[i], "float", [&](size_t) {
          Report(static_cast<int>(i) + 1, "no-float",
                 "float in geometry/sim-metric code (use double)");
        });
      }
    }
  }

  const LayerSpec& layers_;
  std::vector<Violation>* out_;
  std::string display_;
  std::string rel_;
  std::vector<std::string> raw_;
  std::vector<std::string> stripped_;
  std::map<int, std::set<std::string>> allows_;
  std::set<std::pair<int, std::string>> reported_;
};

// ------------------------------------------------------------------ driver

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

void CollectFiles(const fs::path& dir, std::vector<fs::path>* out) {
  if (!fs::exists(dir)) return;
  for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
    // Committed lint fixtures contain deliberate violations; they are
    // only scanned when named explicitly (by the self-tests).
    if (it->is_directory() && it->path().filename() == "fixtures") {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && HasSourceExtension(it->path())) {
      out->push_back(it->path());
    }
  }
}

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--root DIR] [--layering FILE] [--list-rules] [path...]\n"
         "  Scans src/, bench/, tests/ under --root (default: cwd) for\n"
         "  violations of the scout static contracts. Explicit paths\n"
         "  (files or directories) override the default scan set;\n"
         "  scoping is still computed relative to --root.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string layering_path;
  std::vector<std::string> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--layering" && i + 1 < argc) {
      layering_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::cout << r.id << ": " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      explicit_paths.push_back(arg);
    }
  }
  root = fs::absolute(root).lexically_normal();
  if (layering_path.empty()) {
    layering_path = (root / "tools/scout_lint/layering.txt").string();
  }

  const std::optional<LayerSpec> layers = LoadLayerSpec(layering_path);
  if (!layers) {
    std::cerr << "scout_lint: cannot load layering spec: " << layering_path
              << "\n";
    return 2;
  }

  std::vector<fs::path> files;
  if (explicit_paths.empty()) {
    for (const char* sub : {"src", "bench", "tests"}) {
      CollectFiles(root / sub, &files);
    }
  } else {
    for (const std::string& p : explicit_paths) {
      const fs::path fp(p);
      if (fs::is_directory(fp)) {
        CollectFiles(fp, &files);
      } else if (fs::is_regular_file(fp)) {
        files.push_back(fp);
      } else {
        std::cerr << "scout_lint: no such file: " << p << "\n";
        return 2;
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  FileScanner scanner(*layers, &violations);
  for (const fs::path& f : files) {
    const fs::path abs = fs::absolute(f).lexically_normal();
    const std::string rel = abs.lexically_relative(root).generic_string();
    if (!scanner.Scan(f, rel, rel)) {
      std::cerr << "scout_lint: cannot read " << f << "\n";
      return 2;
    }
  }

  std::stable_sort(violations.begin(), violations.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  for (const Violation& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  std::cerr << "scout_lint: scanned " << files.size() << " file(s), "
            << violations.size() << " violation(s)\n";
  return violations.empty() ? 0 : 1;
}
