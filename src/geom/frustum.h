#pragma once

#include <array>
#include <cstdint>

#include "geom/aabb.h"
#include "geom/vec3.h"

namespace scout {

/// A rectangular view frustum used for the walkthrough-visualization
/// workload (paper §7.2.3): the volume enclosing everything potentially
/// visible from an eye point looking along a direction. Defined by apex,
/// view direction, near/far distances and the half-extent of the far
/// rectangle (square cross-section).
class Frustum {
 public:
  /// Unit default frustum (apex at the origin looking along +z, far
  /// distance 1). Planes and cached bounds are fully initialized, so a
  /// default-constructed frustum behaves like any other.
  Frustum() { ComputePlanes(); }

  /// Builds a frustum from `apex` looking along `dir` (need not be
  /// normalized). The cross-section is square, growing linearly from
  /// near_half at distance `near` to far_half at distance `far`.
  Frustum(const Vec3& apex, const Vec3& dir, double near_dist,
          double far_dist, double near_half, double far_half);

  /// Frustum with the given total volume whose centroid is at `center`,
  /// looking along `dir`, with a 2:1 far/near cross-section ratio. This is
  /// how the visualization benchmarks create queries of a target volume.
  static Frustum WithVolume(const Vec3& center, const Vec3& dir,
                            double volume);

  const Vec3& apex() const { return apex_; }
  const Vec3& direction() const { return dir_; }
  double near_distance() const { return near_; }
  double far_distance() const { return far_; }
  double near_half_extent() const { return near_half_; }
  double far_half_extent() const { return far_half_; }

  /// Exact point-containment test against the six planes.
  bool Contains(const Vec3& p) const;

  /// Conservative frustum-box overlap: false only if the box is entirely
  /// outside one of the six planes (the standard culling test; may report
  /// rare false positives, never false negatives). The loop picks each
  /// plane's p-vertex through a precomputed sign mask instead of
  /// re-testing normal signs per call.
  bool Intersects(const Aabb& box) const;

  /// Tighter conservative overlap test: Intersects() preceded by an AABB
  /// prefilter on the frustum's corner hull, so boxes away from the
  /// frustum are rejected with as little as one comparison. Still never a
  /// false negative, but it filters the rare plane-test false positives
  /// (boxes that straddle the near/far slab far outside the hull), so its
  /// accept set is a strict subset of Intersects(). This IS the query
  /// path since the seed2 baseline re-seed: Region::Intersects and the
  /// index directory walks apply it, which is why seed2-era simulated
  /// results are not comparable with seed-era snapshots (README
  /// "Semantic changes & baseline re-seeds"). Plain Intersects() remains
  /// as the reference the differential tests diff against.
  bool IntersectsPrefiltered(const Aabb& box) const;

  /// Batch form of the corner-hull AABB prefilter inside
  /// IntersectsPrefiltered(): tests `count` (<= 64) boxes stored in a
  /// blocked-SoA slot array at slots [base, base + count) against
  /// Bounds() and returns a bitmask (bit i = box at base + i overlaps
  /// the hull). `base` must be simd::kLanes-aligned, and each lane
  /// group occupies 24 contiguous doubles at blocks[slot * 6]:
  /// min_x[4] min_y[4] min_z[4] max_x[4] max_y[4] max_z[4] (BoxRTree's
  /// slot-block layout; tail lanes must be padded). Survivors still
  /// need the exact plane test (Intersects) to reproduce the
  /// prefiltered accept set.
  uint64_t HullOverlapBits(const double* blocks, uint32_t base,
                           uint32_t count) const;

  /// Exact full-containment test: true iff every corner of the box lies
  /// inside all six planes (the frustum is their intersection). Uses the
  /// precomputed n-vertex (min-dot corner) per plane.
  bool ContainsBox(const Aabb& box) const;

  /// Bounding box of the eight corners (precomputed at construction).
  const Aabb& Bounds() const { return bounds_; }

  /// Exact volume of the frustum (prismatoid formula).
  double Volume() const;

  /// The eight corner points (4 near, 4 far).
  std::array<Vec3, 8> Corners() const;

  /// Centroid (volume-weighted center along the axis).
  Vec3 Centroid() const;

 private:
  struct Plane {
    // Points with normal.Dot(p) + d >= 0 are inside.
    Vec3 normal;
    double d = 0.0;
  };

  void ComputePlanes();

  Vec3 apex_;
  Vec3 dir_{0.0, 0.0, 1.0};  // Unit view direction.
  Vec3 right_{1.0, 0.0, 0.0};
  Vec3 up_{0.0, 1.0, 0.0};
  double near_ = 0.0;
  double far_ = 1.0;
  double near_half_ = 0.5;
  double far_half_ = 1.0;
  std::array<Plane, 6> planes_;
  // Bit i of pmask_[p] is set iff planes_[p].normal's i-th component is
  // >= 0; selects the p-vertex (and, inverted, the n-vertex) of a box
  // without re-testing normal signs per call.
  std::array<uint8_t, 6> pmask_{};
  Aabb bounds_;  // Corner hull, cached for Bounds() and the prefilter.
};

}  // namespace scout

