#include "geom/hilbert.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace scout {

namespace {

// Skilling's "transpose" Hilbert algorithm (J. Skilling, "Programming the
// Hilbert curve", AIP 2004). Coordinates are transformed in place between
// the axes-representation and the transposed Hilbert representation.

// Converts coordinates in X[0..n) (each `bits` wide) from axes to
// transposed Hilbert form.
void AxesToTranspose(uint32_t* X, int bits, int n) {
  uint32_t M = 1u << (bits - 1);
  // Inverse undo.
  for (uint32_t Q = M; Q > 1; Q >>= 1) {
    const uint32_t P = Q - 1;
    for (int i = 0; i < n; ++i) {
      if (X[i] & Q) {
        X[0] ^= P;  // invert
      } else {
        const uint32_t t = (X[0] ^ X[i]) & P;
        X[0] ^= t;
        X[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) X[i] ^= X[i - 1];
  uint32_t t = 0;
  for (uint32_t Q = M; Q > 1; Q >>= 1) {
    if (X[n - 1] & Q) t ^= Q - 1;
  }
  for (int i = 0; i < n; ++i) X[i] ^= t;
}

// Inverse of AxesToTranspose.
void TransposeToAxes(uint32_t* X, int bits, int n) {
  const uint32_t N = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = X[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) X[i] ^= X[i - 1];
  X[0] ^= t;
  // Undo excess work.
  for (uint32_t Q = 2; Q != N; Q <<= 1) {
    const uint32_t P = Q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (X[i] & Q) {
        X[0] ^= P;
      } else {
        t = (X[0] ^ X[i]) & P;
        X[0] ^= t;
        X[i] ^= t;
      }
    }
  }
}

// Interleaves the transposed representation into a single index: bit b of
// X[i] becomes bit (b * n + (n - 1 - i)) of the output.
uint64_t InterleaveTransposed(const uint32_t* X, int bits, int n) {
  uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < n; ++i) {
      index = (index << 1) | ((X[i] >> b) & 1u);
    }
  }
  return index;
}

void DeinterleaveTransposed(uint64_t index, int bits, int n, uint32_t* X) {
  for (int i = 0; i < n; ++i) X[i] = 0;
  int shift = bits * n - 1;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < n; ++i) {
      X[i] |= static_cast<uint32_t>((index >> shift) & 1u) << b;
      --shift;
    }
  }
}

uint32_t QuantizeCoord(double v, double lo, double hi, int bits) {
  const uint32_t cells = 1u << bits;
  if (hi <= lo) return 0;
  double f = (v - lo) / (hi - lo);
  f = std::clamp(f, 0.0, 1.0);
  uint32_t c = static_cast<uint32_t>(f * static_cast<double>(cells));
  return std::min(c, cells - 1);
}

}  // namespace

uint64_t HilbertEncode3(uint32_t x, uint32_t y, uint32_t z, int bits) {
  assert(bits >= 1 && bits <= 21);
  uint32_t X[3] = {x, y, z};
  AxesToTranspose(X, bits, 3);
  return InterleaveTransposed(X, bits, 3);
}

void HilbertDecode3(uint64_t index, int bits, uint32_t* x, uint32_t* y,
                    uint32_t* z) {
  assert(bits >= 1 && bits <= 21);
  uint32_t X[3];
  DeinterleaveTransposed(index, bits, 3, X);
  TransposeToAxes(X, bits, 3);
  *x = X[0];
  *y = X[1];
  *z = X[2];
}

uint64_t HilbertEncode2(uint32_t x, uint32_t y, int bits) {
  assert(bits >= 1 && bits <= 31);
  uint32_t X[2] = {x, y};
  AxesToTranspose(X, bits, 2);
  return InterleaveTransposed(X, bits, 2);
}

void HilbertDecode2(uint64_t index, int bits, uint32_t* x, uint32_t* y) {
  assert(bits >= 1 && bits <= 31);
  uint32_t X[2];
  DeinterleaveTransposed(index, bits, 2, X);
  TransposeToAxes(X, bits, 2);
  *x = X[0];
  *y = X[1];
}

uint64_t HilbertIndexOfPoint(const Vec3& p, const Aabb& bounds, int bits) {
  const uint32_t x = QuantizeCoord(p.x, bounds.min().x, bounds.max().x, bits);
  const uint32_t y = QuantizeCoord(p.y, bounds.min().y, bounds.max().y, bits);
  const uint32_t z = QuantizeCoord(p.z, bounds.min().z, bounds.max().z, bits);
  return HilbertEncode3(x, y, z, bits);
}

Vec3 PointOfHilbertIndex(uint64_t index, const Aabb& bounds, int bits) {
  uint32_t x;
  uint32_t y;
  uint32_t z;
  HilbertDecode3(index, bits, &x, &y, &z);
  const double cells = static_cast<double>(1u << bits);
  const Vec3 ext = bounds.Extents();
  return Vec3(bounds.min().x + (x + 0.5) / cells * ext.x,
              bounds.min().y + (y + 0.5) / cells * ext.y,
              bounds.min().z + (z + 0.5) / cells * ext.z);
}

}  // namespace scout
