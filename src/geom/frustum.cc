#include "geom/frustum.h"

#include <cassert>
#include <cmath>

#include "common/simd.h"

namespace scout {

namespace {

// Builds an orthonormal basis around `dir` (unit). Any stable choice works;
// we pick the axis least aligned with dir as the helper.
void MakeBasis(const Vec3& dir, Vec3* right, Vec3* up) {
  Vec3 helper = std::abs(dir.x) < 0.9 ? Vec3(1, 0, 0) : Vec3(0, 1, 0);
  *right = dir.Cross(helper).Normalized();
  *up = right->Cross(dir).Normalized();
}

}  // namespace

Frustum::Frustum(const Vec3& apex, const Vec3& dir, double near_dist,
                 double far_dist, double near_half, double far_half)
    : apex_(apex),
      near_(near_dist),
      far_(far_dist),
      near_half_(near_half),
      far_half_(far_half) {
  assert(far_dist > near_dist && near_dist >= 0.0);
  assert(far_half >= near_half && near_half >= 0.0);
  dir_ = dir.Normalized();
  if (dir_ == Vec3()) dir_ = Vec3(0, 0, 1);
  MakeBasis(dir_, &right_, &up_);
  ComputePlanes();
}

Frustum Frustum::WithVolume(const Vec3& center, const Vec3& dir,
                            double volume) {
  assert(volume > 0.0);
  // Square cross sections with far side s and near side s/2; depth = s.
  // Prismatoid volume: V = h/3 * (A_near + A_far + sqrt(A_near * A_far))
  //   = s/3 * (s^2/4 + s^2 + s^2/2) = s^3 * 7/12.
  const double s = std::cbrt(volume * 12.0 / 7.0);
  const double depth = s;
  const double far_half = s * 0.5;
  const double near_half = s * 0.25;
  const Vec3 d = dir.Normalized() == Vec3() ? Vec3(0, 0, 1) : dir.Normalized();
  // Place the prismatoid so its axis midpoint is at `center`; apex sits
  // behind the near plane at the cone apex (near_half : far_half = 1 : 2
  // means the apex is one depth behind the near plane).
  const double near_dist = depth;  // Apex-to-near distance.
  const double far_dist = near_dist + depth;
  const Vec3 apex = center - d * (near_dist + depth * 0.5);
  return Frustum(apex, d, near_dist, far_dist, near_half, far_half);
}

void Frustum::ComputePlanes() {
  // Near plane: inside means beyond the near distance along dir.
  planes_[0].normal = dir_;
  planes_[0].d = -dir_.Dot(apex_ + dir_ * near_);
  // Far plane: inside means before the far distance.
  planes_[1].normal = -dir_;
  planes_[1].d = dir_.Dot(apex_ + dir_ * far_);

  // Side planes pass through the apex. The half-extent grows linearly
  // with distance t from the apex as: half(t) = far_half_ / far_ * t
  // (using the far rectangle to define the aperture; when near_half_ is
  // consistent, i.e. near_half_/near_ == far_half_/far_, the frustum is a
  // truncated pyramid with apex at apex_).
  const double slope = far_half_ / far_;
  const std::array<Vec3, 4> lateral = {right_, -right_, up_, -up_};
  for (int i = 0; i < 4; ++i) {
    // Plane normal tilts inward: n = -lateral + slope-projected dir,
    // normalized. A point p is inside iff lateral.Dot(p - apex) <=
    // slope * dir.Dot(p - apex).
    Vec3 n = (dir_ * slope - lateral[i]).Normalized();
    planes_[2 + i].normal = n;
    planes_[2 + i].d = -n.Dot(apex_);
  }

  // Precompute each plane's p-vertex sign mask and the corner hull, so
  // the box tests need no per-call normal-sign branches and directory
  // walks can reject far-away boxes on the bounds alone.
  for (int i = 0; i < 6; ++i) {
    const Vec3& n = planes_[i].normal;
    pmask_[i] = static_cast<uint8_t>((n.x >= 0 ? 1 : 0) |
                                     (n.y >= 0 ? 2 : 0) |
                                     (n.z >= 0 ? 4 : 0));
  }
  bounds_ = Aabb();
  for (const Vec3& c : Corners()) bounds_.Extend(c);
}

bool Frustum::Contains(const Vec3& p) const {
  for (const Plane& plane : planes_) {
    if (plane.normal.Dot(p) + plane.d < 0.0) return false;
  }
  return true;
}

bool Frustum::Intersects(const Aabb& box) const {
  if (box.IsEmpty()) return false;
  const Vec3& bmin = box.min();
  const Vec3& bmax = box.max();
  for (int i = 0; i < 6; ++i) {
    // The box corner most aligned with the plane normal (the p-vertex,
    // via the precomputed sign mask); if even that corner is outside,
    // the whole box is outside.
    const Plane& plane = planes_[i];
    const uint8_t m = pmask_[i];
    const Vec3 p((m & 1) ? bmax.x : bmin.x, (m & 2) ? bmax.y : bmin.y,
                 (m & 4) ? bmax.z : bmin.z);
    if (plane.normal.Dot(p) + plane.d < 0.0) return false;
  }
  return true;
}

bool Frustum::IntersectsPrefiltered(const Aabb& box) const {
  if (box.IsEmpty()) return false;
  const Vec3& bmin = box.min();
  const Vec3& bmax = box.max();
  // AABB prefilter: the frustum lies inside bounds_, so a box disjoint
  // from bounds_ cannot intersect it; the first comparison already
  // rejects most directory-walk candidates.
  if (bmax.x < bounds_.min().x || bmin.x > bounds_.max().x ||
      bmax.y < bounds_.min().y || bmin.y > bounds_.max().y ||
      bmax.z < bounds_.min().z || bmin.z > bounds_.max().z) {
    return false;
  }
  return Intersects(box);
}

uint64_t Frustum::HullOverlapBits(const double* blocks, uint32_t base,
                                  uint32_t count) const {
  // Lane-parallel form of the scalar reject in IntersectsPrefiltered:
  // box overlaps the hull iff max >= hull.min and min <= hull.max on all
  // three axes. Identical comparisons, so the bitmask matches the scalar
  // test lane for lane on both SIMD backends.
  const simd::Vec4d hminx = simd::Broadcast(bounds_.min().x);
  const simd::Vec4d hminy = simd::Broadcast(bounds_.min().y);
  const simd::Vec4d hminz = simd::Broadcast(bounds_.min().z);
  const simd::Vec4d hmaxx = simd::Broadcast(bounds_.max().x);
  const simd::Vec4d hmaxy = simd::Broadcast(bounds_.max().y);
  const simd::Vec4d hmaxz = simd::Broadcast(bounds_.max().z);
  uint64_t bits = 0;
  const double* blk = blocks + base * 6;
  for (uint32_t g = 0; g < count; g += simd::kLanes, blk += 24) {
    const simd::Mask4 m = simd::And(
        simd::And(simd::And(simd::CmpGe(simd::Load(blk + 12), hminx),
                            simd::CmpLe(simd::Load(blk), hmaxx)),
                  simd::And(simd::CmpGe(simd::Load(blk + 16), hminy),
                            simd::CmpLe(simd::Load(blk + 4), hmaxy))),
        simd::And(simd::CmpGe(simd::Load(blk + 20), hminz),
                  simd::CmpLe(simd::Load(blk + 8), hmaxz)));
    bits |= static_cast<uint64_t>(simd::Bits(m)) << g;
  }
  return count >= 64 ? bits : bits & ((1ull << count) - 1);
}

bool Frustum::ContainsBox(const Aabb& box) const {
  if (box.IsEmpty()) return false;
  const Vec3& bmin = box.min();
  const Vec3& bmax = box.max();
  for (int i = 0; i < 6; ++i) {
    // The corner least aligned with the plane normal (the n-vertex,
    // inverted sign mask); if it is inside the plane, every corner is.
    const Plane& plane = planes_[i];
    const uint8_t m = pmask_[i];
    const Vec3 nv((m & 1) ? bmin.x : bmax.x, (m & 2) ? bmin.y : bmax.y,
                  (m & 4) ? bmin.z : bmax.z);
    if (plane.normal.Dot(nv) + plane.d < 0.0) return false;
  }
  return true;
}

std::array<Vec3, 8> Frustum::Corners() const {
  std::array<Vec3, 8> corners;
  const Vec3 near_center = apex_ + dir_ * near_;
  const Vec3 far_center = apex_ + dir_ * far_;
  int idx = 0;
  for (double dist : {0.0, 1.0}) {
    const Vec3 center = dist == 0.0 ? near_center : far_center;
    const double half = dist == 0.0 ? near_half_ : far_half_;
    for (int sx : {-1, 1}) {
      for (int sy : {-1, 1}) {
        corners[idx++] = center + right_ * (half * sx) + up_ * (half * sy);
      }
    }
  }
  return corners;
}

double Frustum::Volume() const {
  const double h = far_ - near_;
  const double a_near = 4.0 * near_half_ * near_half_;
  const double a_far = 4.0 * far_half_ * far_half_;
  return h / 3.0 * (a_near + a_far + std::sqrt(a_near * a_far));
}

Vec3 Frustum::Centroid() const {
  // Midpoint of the axis between near and far planes; close enough to the
  // volume centroid for query-placement purposes.
  return apex_ + dir_ * ((near_ + far_) * 0.5);
}

}  // namespace scout
