#include "geom/frustum.h"

#include <cassert>
#include <cmath>

namespace scout {

namespace {

// Builds an orthonormal basis around `dir` (unit). Any stable choice works;
// we pick the axis least aligned with dir as the helper.
void MakeBasis(const Vec3& dir, Vec3* right, Vec3* up) {
  Vec3 helper = std::abs(dir.x) < 0.9 ? Vec3(1, 0, 0) : Vec3(0, 1, 0);
  *right = dir.Cross(helper).Normalized();
  *up = right->Cross(dir).Normalized();
}

}  // namespace

Frustum::Frustum(const Vec3& apex, const Vec3& dir, double near_dist,
                 double far_dist, double near_half, double far_half)
    : apex_(apex),
      near_(near_dist),
      far_(far_dist),
      near_half_(near_half),
      far_half_(far_half) {
  assert(far_dist > near_dist && near_dist >= 0.0);
  assert(far_half >= near_half && near_half >= 0.0);
  dir_ = dir.Normalized();
  if (dir_ == Vec3()) dir_ = Vec3(0, 0, 1);
  MakeBasis(dir_, &right_, &up_);
  ComputePlanes();
}

Frustum Frustum::WithVolume(const Vec3& center, const Vec3& dir,
                            double volume) {
  assert(volume > 0.0);
  // Square cross sections with far side s and near side s/2; depth = s.
  // Prismatoid volume: V = h/3 * (A_near + A_far + sqrt(A_near * A_far))
  //   = s/3 * (s^2/4 + s^2 + s^2/2) = s^3 * 7/12.
  const double s = std::cbrt(volume * 12.0 / 7.0);
  const double depth = s;
  const double far_half = s * 0.5;
  const double near_half = s * 0.25;
  const Vec3 d = dir.Normalized() == Vec3() ? Vec3(0, 0, 1) : dir.Normalized();
  // Place the prismatoid so its axis midpoint is at `center`; apex sits
  // behind the near plane at the cone apex (near_half : far_half = 1 : 2
  // means the apex is one depth behind the near plane).
  const double near_dist = depth;  // Apex-to-near distance.
  const double far_dist = near_dist + depth;
  const Vec3 apex = center - d * (near_dist + depth * 0.5);
  return Frustum(apex, d, near_dist, far_dist, near_half, far_half);
}

void Frustum::ComputePlanes() {
  // Near plane: inside means beyond the near distance along dir.
  planes_[0].normal = dir_;
  planes_[0].d = -dir_.Dot(apex_ + dir_ * near_);
  // Far plane: inside means before the far distance.
  planes_[1].normal = -dir_;
  planes_[1].d = dir_.Dot(apex_ + dir_ * far_);

  // Side planes pass through the apex. The half-extent grows linearly
  // with distance t from the apex as: half(t) = far_half_ / far_ * t
  // (using the far rectangle to define the aperture; when near_half_ is
  // consistent, i.e. near_half_/near_ == far_half_/far_, the frustum is a
  // truncated pyramid with apex at apex_).
  const double slope = far_half_ / far_;
  const std::array<Vec3, 4> lateral = {right_, -right_, up_, -up_};
  for (int i = 0; i < 4; ++i) {
    // Plane normal tilts inward: n = -lateral + slope-projected dir,
    // normalized. A point p is inside iff lateral.Dot(p - apex) <=
    // slope * dir.Dot(p - apex).
    Vec3 n = (dir_ * slope - lateral[i]).Normalized();
    planes_[2 + i].normal = n;
    planes_[2 + i].d = -n.Dot(apex_);
  }
}

bool Frustum::Contains(const Vec3& p) const {
  for (const Plane& plane : planes_) {
    if (plane.normal.Dot(p) + plane.d < 0.0) return false;
  }
  return true;
}

bool Frustum::Intersects(const Aabb& box) const {
  if (box.IsEmpty()) return false;
  for (const Plane& plane : planes_) {
    // Find the box corner most aligned with the plane normal (p-vertex);
    // if even that corner is outside, the whole box is outside.
    const Vec3 p(plane.normal.x >= 0 ? box.max().x : box.min().x,
                 plane.normal.y >= 0 ? box.max().y : box.min().y,
                 plane.normal.z >= 0 ? box.max().z : box.min().z);
    if (plane.normal.Dot(p) + plane.d < 0.0) return false;
  }
  return true;
}

bool Frustum::ContainsBox(const Aabb& box) const {
  if (box.IsEmpty()) return false;
  for (const Plane& plane : planes_) {
    // The corner least aligned with the plane normal (n-vertex); if it is
    // inside the plane, every corner is.
    const Vec3 n(plane.normal.x >= 0 ? box.min().x : box.max().x,
                 plane.normal.y >= 0 ? box.min().y : box.max().y,
                 plane.normal.z >= 0 ? box.min().z : box.max().z);
    if (plane.normal.Dot(n) + plane.d < 0.0) return false;
  }
  return true;
}

std::array<Vec3, 8> Frustum::Corners() const {
  std::array<Vec3, 8> corners;
  const Vec3 near_center = apex_ + dir_ * near_;
  const Vec3 far_center = apex_ + dir_ * far_;
  int idx = 0;
  for (double dist : {0.0, 1.0}) {
    const Vec3 center = dist == 0.0 ? near_center : far_center;
    const double half = dist == 0.0 ? near_half_ : far_half_;
    for (int sx : {-1, 1}) {
      for (int sy : {-1, 1}) {
        corners[idx++] = center + right_ * (half * sx) + up_ * (half * sy);
      }
    }
  }
  return corners;
}

Aabb Frustum::Bounds() const {
  Aabb box;
  for (const Vec3& c : Corners()) box.Extend(c);
  return box;
}

double Frustum::Volume() const {
  const double h = far_ - near_;
  const double a_near = 4.0 * near_half_ * near_half_;
  const double a_far = 4.0 * far_half_ * far_half_;
  return h / 3.0 * (a_near + a_far + std::sqrt(a_near * a_far));
}

Vec3 Frustum::Centroid() const {
  // Midpoint of the axis between near and far planes; close enough to the
  // volume centroid for query-placement purposes.
  return apex_ + dir_ * ((near_ + far_) * 0.5);
}

}  // namespace scout
