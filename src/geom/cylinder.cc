#include "geom/cylinder.h"

#include <numbers>

namespace scout {

double Cylinder::Volume() const {
  // Truncated cone: V = pi/3 * h * (r0^2 + r0*r1 + r1^2).
  const double h = Length();
  return std::numbers::pi / 3.0 * h * (r0_ * r0_ + r0_ * r1_ + r1_ * r1_);
}

}  // namespace scout
