#pragma once

#include <array>
#include <cstdint>

#include "geom/aabb.h"
#include "geom/vec3.h"

namespace scout {

/// Hilbert space-filling curve encode/decode (Skilling's transpose
/// algorithm), used by the Hilbert-Prefetch baseline (paper §2.1) and by
/// the FLAT-style index to lay result pages out in a locality-preserving
/// order.
///
/// Grid coordinates use `bits` bits per dimension; indices fit in 64 bits
/// as long as dims * bits <= 64.

/// Maps grid coordinates (x, y, z), each in [0, 2^bits), to the position
/// along the 3-D Hilbert curve.
uint64_t HilbertEncode3(uint32_t x, uint32_t y, uint32_t z, int bits);

/// Inverse of HilbertEncode3.
void HilbertDecode3(uint64_t index, int bits, uint32_t* x, uint32_t* y,
                    uint32_t* z);

/// 2-D variants (used for planar datasets such as road networks).
uint64_t HilbertEncode2(uint32_t x, uint32_t y, int bits);
void HilbertDecode2(uint64_t index, int bits, uint32_t* x, uint32_t* y);

/// Maps a point inside `bounds` onto the 3-D Hilbert curve with the given
/// per-dimension resolution. Points outside are clamped to the boundary.
uint64_t HilbertIndexOfPoint(const Vec3& p, const Aabb& bounds, int bits);

/// Inverse mapping: the center of the Hilbert cell with the given index.
Vec3 PointOfHilbertIndex(uint64_t index, const Aabb& bounds, int bits);

}  // namespace scout

