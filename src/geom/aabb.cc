#include "geom/aabb.h"

#include <cmath>
#include <cstdio>

namespace scout {

Aabb Aabb::CubeWithVolume(const Vec3& center, double volume) {
  const double half = std::cbrt(volume) * 0.5;
  return FromCenterHalfExtents(center, Vec3(half, half, half));
}

std::string Vec3::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%.3f, %.3f, %.3f)", x, y, z);
  return std::string(buf);
}

std::string Aabb::ToString() const {
  if (IsEmpty()) return "[empty]";
  return "[" + min_.ToString() + " .. " + max_.ToString() + "]";
}

}  // namespace scout
