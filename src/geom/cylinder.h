#pragma once

#include "geom/aabb.h"
#include "geom/segment.h"
#include "geom/vec3.h"

namespace scout {

/// A (truncated-cone) cylinder: two endpoints with a radius at each, as in
/// the Blue Brain neuron models ("each cylinder is described by two end
/// points and a radius for each endpoint", paper §7.1). Treated as a
/// capsule for conservative geometric tests.
class Cylinder {
 public:
  Cylinder() = default;
  Cylinder(const Vec3& p0, const Vec3& p1, double r0, double r1)
      : axis_(p0, p1), r0_(r0), r1_(r1) {}

  /// Uniform-radius convenience constructor.
  Cylinder(const Vec3& p0, const Vec3& p1, double r)
      : Cylinder(p0, p1, r, r) {}

  const Segment& axis() const { return axis_; }
  const Vec3& p0() const { return axis_.a; }
  const Vec3& p1() const { return axis_.b; }
  double r0() const { return r0_; }
  double r1() const { return r1_; }
  double max_radius() const { return r0_ > r1_ ? r0_ : r1_; }

  Vec3 Centroid() const { return axis_.Midpoint(); }
  double Length() const { return axis_.Length(); }

  /// Volume of the truncated cone.
  double Volume() const;

  /// Conservative bounding box: the axis bounds expanded by the larger
  /// radius on every side.
  Aabb Bounds() const { return axis_.Bounds().Expanded(max_radius()); }

  /// The straight-line simplification SCOUT uses for grid hashing
  /// (paper §4.2 / Figure 4).
  const Segment& AsLine() const { return axis_; }

  /// Conservative cylinder-box overlap test: true if the axis segment
  /// passes within max_radius of the box.
  bool Intersects(const Aabb& box) const {
    return axis_.Intersects(box.Expanded(max_radius()));
  }

  /// Minimum distance between the surfaces of two cylinders (capsule
  /// approximation). Negative values indicate overlap. This is the
  /// "computationally expensive" branch-proximity primitive of the model
  /// building use case (paper §3.1).
  double SurfaceDistanceTo(const Cylinder& other) const {
    return axis_.DistanceTo(other.axis_) - max_radius() - other.max_radius();
  }

 private:
  Segment axis_;
  double r0_ = 0.0;
  double r1_ = 0.0;
};

}  // namespace scout

