#pragma once

#include "geom/aabb.h"
#include "geom/vec3.h"

namespace scout {

/// A 3-D line segment from `a` to `b`. This is the geometry
/// simplification SCOUT uses for cylinders (paper §4.2): a cylinder is
/// reduced to its axis segment for grid hashing and graph building.
struct Segment {
  Vec3 a;
  Vec3 b;

  Segment() = default;
  Segment(const Vec3& a_in, const Vec3& b_in) : a(a_in), b(b_in) {}

  double Length() const { return a.DistanceTo(b); }
  double LengthSquared() const { return a.DistanceSquaredTo(b); }

  Vec3 Midpoint() const { return (a + b) * 0.5; }

  /// Unit direction from a to b (zero vector for degenerate segments).
  Vec3 Direction() const { return (b - a).Normalized(); }

  /// Point at parameter t in [0, 1]: a + t * (b - a).
  Vec3 PointAt(double t) const { return Lerp(a, b, t); }

  Aabb Bounds() const { return Aabb::FromPoints(a, b); }

  /// Parameter t in [0, 1] of the point on the segment closest to `p`.
  double ClosestParameterTo(const Vec3& p) const;

  /// Point on the segment closest to `p`.
  Vec3 ClosestPointTo(const Vec3& p) const {
    return PointAt(ClosestParameterTo(p));
  }

  double DistanceTo(const Vec3& p) const {
    return ClosestPointTo(p).DistanceTo(p);
  }
  double DistanceSquaredTo(const Vec3& p) const {
    return ClosestPointTo(p).DistanceSquaredTo(p);
  }

  /// Minimum distance between two segments (robust for parallel and
  /// degenerate cases). This underlies both graph construction by
  /// proximity and the synapse-placement (model building) use case.
  double DistanceTo(const Segment& other) const;
  double DistanceSquaredTo(const Segment& other) const;

  /// True if the segment intersects the box (clips the parametric line
  /// against the slabs).
  bool Intersects(const Aabb& box) const;

  /// Clips the segment to the box. Returns false if no part is inside;
  /// otherwise sets [t_min, t_max] to the parametric overlap interval.
  bool ClipToBox(const Aabb& box, double* t_min, double* t_max) const;
};

}  // namespace scout

