#pragma once

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "geom/segment.h"
#include "geom/vec3.h"

namespace scout {

/// Integer cell coordinates in a UniformGrid.
struct CellCoords {
  int32_t x = 0;
  int32_t y = 0;
  int32_t z = 0;

  bool operator==(const CellCoords& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};

/// A uniform 3-D grid over a bounding box — the "spatial grid hashing"
/// machinery of paper §4.2. Objects (reduced to line segments or boxes)
/// are mapped to the cells they touch; objects sharing a cell become graph
/// neighbors. The grid resolution (total cell count) is the knob studied
/// in Figure 13(e).
class UniformGrid {
 public:
  /// Grid over `bounds` with the given cell counts per axis (>= 1 each).
  UniformGrid(const Aabb& bounds, int nx, int ny, int nz);

  /// Grid over `bounds` with approximately `total_cells` equi-volume cubic
  /// cells (per-axis counts chosen proportionally to the extents).
  static UniformGrid WithTotalCells(const Aabb& bounds, int64_t total_cells);

  const Aabb& bounds() const { return bounds_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int64_t TotalCells() const {
    return static_cast<int64_t>(nx_) * ny_ * nz_;
  }
  Vec3 CellSize() const { return cell_size_; }

  /// Cell containing the point (clamped to the grid for points outside).
  CellCoords CellOf(const Vec3& p) const;

  /// Flat index of a cell: x + nx * (y + ny * z).
  int64_t FlatIndex(const CellCoords& c) const {
    return static_cast<int64_t>(c.x) +
           static_cast<int64_t>(nx_) *
               (static_cast<int64_t>(c.y) +
                static_cast<int64_t>(ny_) * static_cast<int64_t>(c.z));
  }

  CellCoords CoordsOf(int64_t flat_index) const;

  /// Bounding box of a cell.
  Aabb CellBounds(const CellCoords& c) const;

  /// Appends the flat indices of all cells overlapped by `box`
  /// (intersected with the grid bounds) to `out`.
  void CellsOverlapping(const Aabb& box, std::vector<int64_t>* out) const;

  /// Appends the flat indices of cells traversed by the segment (3-D DDA
  /// voxel walk; clips the segment to the grid bounds first). This is how
  /// a cylinder-reduced-to-a-line is hashed to grid cells (Figure 4).
  void CellsAlongSegment(const Segment& seg, std::vector<int64_t>* out) const;

 private:
  Aabb bounds_;
  int nx_;
  int ny_;
  int nz_;
  Vec3 cell_size_;
};

}  // namespace scout

