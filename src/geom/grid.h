#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/simd.h"
#include "geom/aabb.h"
#include "geom/segment.h"
#include "geom/vec3.h"

namespace scout {

/// Integer cell coordinates in a UniformGrid.
struct CellCoords {
  int32_t x = 0;
  int32_t y = 0;
  int32_t z = 0;

  bool operator==(const CellCoords& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};

/// A uniform 3-D grid over a bounding box — the "spatial grid hashing"
/// machinery of paper §4.2. Objects (reduced to line segments or boxes)
/// are mapped to the cells they touch; objects sharing a cell become graph
/// neighbors. The grid resolution (total cell count) is the knob studied
/// in Figure 13(e).
class UniformGrid {
 public:
  /// Grid over `bounds` with the given cell counts per axis (>= 1 each).
  UniformGrid(const Aabb& bounds, int nx, int ny, int nz);

  /// Grid over `bounds` with approximately `total_cells` equi-volume cubic
  /// cells (per-axis counts chosen proportionally to the extents).
  static UniformGrid WithTotalCells(const Aabb& bounds, int64_t total_cells);

  const Aabb& bounds() const { return bounds_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int64_t TotalCells() const {
    return static_cast<int64_t>(nx_) * ny_ * nz_;
  }
  Vec3 CellSize() const { return cell_size_; }

  /// Cell containing the point (clamped to the grid for points outside).
  CellCoords CellOf(const Vec3& p) const;

  /// Flat index of a cell: x + nx * (y + ny * z).
  int64_t FlatIndex(const CellCoords& c) const {
    return static_cast<int64_t>(c.x) +
           static_cast<int64_t>(nx_) *
               (static_cast<int64_t>(c.y) +
                static_cast<int64_t>(ny_) * static_cast<int64_t>(c.z));
  }

  CellCoords CoordsOf(int64_t flat_index) const;

  /// Bounding box of a cell.
  Aabb CellBounds(const CellCoords& c) const;

  /// Appends the flat indices of all cells overlapped by `box`
  /// (intersected with the grid bounds) to `out`.
  void CellsOverlapping(const Aabb& box, std::vector<int64_t>* out) const;

  /// Appends the flat indices of cells traversed by the segment (3-D DDA
  /// voxel walk; clips the segment to the grid bounds first). This is how
  /// a cylinder-reduced-to-a-line is hashed to grid cells (Figure 4).
  void CellsAlongSegment(const Segment& seg, std::vector<int64_t>* out) const;

  /// The DDA voxel walk behind CellsAlongSegment, generic over the sink:
  /// `emit(int64_t flat_cell)` is called once per traversed cell, in
  /// walk order. Callers that post-process every cell (the grid-hash
  /// graph builder packs each one into a radix key) inline their sink
  /// here instead of staging through a vector; the emitted cell sequence
  /// is identical either way.
  template <typename Emit>
  void WalkCellsAlongSegment(const Segment& seg, const Emit& emit) const {
    double t0 = 0.0;
    double t1 = 1.0;
    // Segments with both endpoints inside the grid (the common case for
    // scene-scale grids) clip to exactly [0, 1]: per axis the near slab
    // parameter is <= 0 and the far one >= 1, and IEEE rounding is
    // monotone, so ClipToBox would return these values bit-for-bit. Skip
    // the six slab divisions; everything downstream (PointAt(0),
    // PointAt(1), the DDA) is computed identically either way.
    if (!(bounds_.Contains(seg.a) && bounds_.Contains(seg.b)) &&
        !seg.ClipToBox(bounds_, &t0, &t1)) {
      return;
    }
    const Vec3 start = seg.PointAt(t0);
    const Vec3 end = seg.PointAt(t1);

    // Both endpoints' cell coordinates, with the six CellOf divisions
    // issued as two SIMD divisions. Every lane computes exactly the
    // scalar expression floor((v - lo) / size) with IEEE-identical
    // division and floor, so the coordinates match CellOf bit for bit;
    // degenerate (zero-extent) cell sizes take the scalar path, which
    // CellOf guards per axis.
    CellCoords cur;
    CellCoords last;
    if (cell_size_.x > 0.0 && cell_size_.y > 0.0 && cell_size_.z > 0.0) {
      double q[8];
      simd::Store(
          q, simd::Floor(simd::Div(
                 simd::Sub(simd::Set(start.x, start.y, start.z, end.x),
                           simd::Set(bounds_.min().x, bounds_.min().y,
                                     bounds_.min().z, bounds_.min().x)),
                 simd::Set(cell_size_.x, cell_size_.y, cell_size_.z,
                           cell_size_.x))));
      simd::Store(
          q + 4, simd::Floor(simd::Div(
                     simd::Sub(simd::Set(end.y, end.z, 0.0, 0.0),
                               simd::Set(bounds_.min().y, bounds_.min().z,
                                         0.0, 0.0)),
                     simd::Set(cell_size_.y, cell_size_.z, 1.0, 1.0))));
      cur = CellCoords{std::clamp(static_cast<int>(q[0]), 0, nx_ - 1),
                       std::clamp(static_cast<int>(q[1]), 0, ny_ - 1),
                       std::clamp(static_cast<int>(q[2]), 0, nz_ - 1)};
      last = CellCoords{std::clamp(static_cast<int>(q[3]), 0, nx_ - 1),
                        std::clamp(static_cast<int>(q[4]), 0, ny_ - 1),
                        std::clamp(static_cast<int>(q[5]), 0, nz_ - 1)};
    } else {
      cur = CellOf(start);
      last = CellOf(end);
    }
    emit(FlatIndex(cur));
    if (cur == last) return;

    // Amanatides & Woo 3-D DDA traversal.
    const Vec3 d = end - start;
    const double dir[3] = {d.x, d.y, d.z};
    const double size[3] = {cell_size_.x, cell_size_.y, cell_size_.z};
    const double origin[3] = {start.x, start.y, start.z};
    const double lo[3] = {bounds_.min().x, bounds_.min().y, bounds_.min().z};
    int32_t pos[3] = {cur.x, cur.y, cur.z};
    const int32_t target[3] = {last.x, last.y, last.z};
    const int32_t limit[3] = {nx_ - 1, ny_ - 1, nz_ - 1};

    // Setup is branch-free on the direction signs (they are effectively
    // random per axis, so sign branches mispredict half the time): step
    // comes from setcc arithmetic, the six divisions issue as two SIMD
    // divisions, and negative-direction t_delta is recovered with fabs
    // — IEEE rounding is sign-symmetric, so |size / dir| equals the
    // original -size / dir bit for bit (size / dir is negative exactly
    // when dir < 0). Zero direction lanes divide by a patched 1.0 and
    // are overwritten with the sentinel on the (cold) step == 0 branch.
    int step[3];
    double t_max[3];
    double t_delta[3];
    double num[3];
    double dsafe[3];
    for (int i = 0; i < 3; ++i) {
      const int up = dir[i] > 0 ? 1 : 0;
      const int down = dir[i] < 0 ? 1 : 0;
      step[i] = up - down;
      num[i] = lo[i] + (pos[i] + up) * size[i] - origin[i];
      dsafe[i] = step[i] != 0 ? dir[i] : 1.0;
    }
    double qd[8];
    simd::Store(qd,
                simd::Div(simd::Set(num[0], num[1], num[2], size[0]),
                          simd::Set(dsafe[0], dsafe[1], dsafe[2], dsafe[0])));
    simd::Store(qd + 4, simd::Div(simd::Set(size[1], size[2], 1.0, 1.0),
                                  simd::Set(dsafe[1], dsafe[2], 1.0, 1.0)));
    const double td[3] = {qd[3], qd[4], qd[5]};
    for (int i = 0; i < 3; ++i) {
      t_max[i] = qd[i];
      t_delta[i] = std::fabs(td[i]);
      if (step[i] == 0) {
        t_max[i] = std::numeric_limits<double>::max();
        t_delta[i] = std::numeric_limits<double>::max();
      }
    }

    // Cap iterations defensively; a straight walk can visit at most
    // nx+ny+nz cells. The flat index is maintained incrementally (each
    // step moves one cell along one axis, i.e. one stride), replacing
    // the two multiplies of FlatIndex per emitted cell with one add —
    // the integer result is identical by construction. State lives in
    // scalars and every per-step choice is a select (the stepped axis
    // is data-dependent-random, so an axis branch would mispredict most
    // iterations); the axis comparisons replicate the reference
    // `axis = 0; if (t_max[1] < t_max[axis]) axis = 1; if (t_max[2] <
    // t_max[axis]) axis = 2;` chain exactly, strict < keeping the
    // earlier axis on ties.
    const int64_t jump[3] = {step[0], step[1] * static_cast<int64_t>(nx_),
                             step[2] * static_cast<int64_t>(nx_) * ny_};
    int64_t flat = FlatIndex(cur);
    double tmx = t_max[0];
    double tmy = t_max[1];
    double tmz = t_max[2];
    int px = pos[0];
    int py = pos[1];
    int pz = pos[2];
    const int max_steps = nx_ + ny_ + nz_ + 3;
    for (int it = 0; it < max_steps; ++it) {
      const int axis01 = tmy < tmx ? 1 : 0;
      const double tm01 = tmy < tmx ? tmy : tmx;
      const int axis = tmz < tm01 ? 2 : axis01;
      const int npx = px + (axis == 0 ? step[0] : 0);
      const int npy = py + (axis == 1 ? step[1] : 0);
      const int npz = pz + (axis == 2 ? step[2] : 0);
      const int moved = axis == 0 ? npx : (axis == 1 ? npy : npz);
      const int lim = axis == 0 ? limit[0] : (axis == 1 ? limit[1] : limit[2]);
      px = npx;
      py = npy;
      pz = npz;
      if (moved < 0 || moved > lim) break;
      tmx = axis == 0 ? tmx + t_delta[0] : tmx;
      tmy = axis == 1 ? tmy + t_delta[1] : tmy;
      tmz = axis == 2 ? tmz + t_delta[2] : tmz;
      flat += axis == 0 ? jump[0] : (axis == 1 ? jump[1] : jump[2]);
      emit(flat);
      if (((px ^ target[0]) | (py ^ target[1]) | (pz ^ target[2])) == 0) {
        break;
      }
    }
  }

 private:
  Aabb bounds_;
  int nx_;
  int ny_;
  int nz_;
  Vec3 cell_size_;
};

}  // namespace scout

