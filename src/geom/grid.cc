#include "geom/grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/simd.h"

namespace scout {

UniformGrid::UniformGrid(const Aabb& bounds, int nx, int ny, int nz)
    : bounds_(bounds), nx_(nx), ny_(ny), nz_(nz) {
  assert(nx >= 1 && ny >= 1 && nz >= 1);
  assert(!bounds.IsEmpty());
  const Vec3 ext = bounds.Extents();
  cell_size_ = Vec3(ext.x / nx, ext.y / ny, ext.z / nz);
}

UniformGrid UniformGrid::WithTotalCells(const Aabb& bounds,
                                        int64_t total_cells) {
  assert(total_cells >= 1);
  const Vec3 ext = bounds.Extents();
  // Choose per-axis counts so cells are as cubic as possible:
  // n_axis ~ ext_axis / s where s = (V / total)^(1/3).
  const double volume = std::max(bounds.Volume(), 1e-30);
  const double s = std::cbrt(volume / static_cast<double>(total_cells));
  auto count = [&](double e) {
    return std::max(1, static_cast<int>(std::round(e / s)));
  };
  int nx = count(ext.x);
  int ny = count(ext.y);
  int nz = count(ext.z);
  return UniformGrid(bounds, nx, ny, nz);
}

CellCoords UniformGrid::CellOf(const Vec3& p) const {
  auto coord = [](double v, double lo, double size, int n) {
    if (size <= 0.0) return 0;
    int c = static_cast<int>(std::floor((v - lo) / size));
    return std::clamp(c, 0, n - 1);
  };
  return CellCoords{coord(p.x, bounds_.min().x, cell_size_.x, nx_),
                    coord(p.y, bounds_.min().y, cell_size_.y, ny_),
                    coord(p.z, bounds_.min().z, cell_size_.z, nz_)};
}

CellCoords UniformGrid::CoordsOf(int64_t flat_index) const {
  assert(flat_index >= 0 && flat_index < TotalCells());
  CellCoords c;
  c.x = static_cast<int32_t>(flat_index % nx_);
  flat_index /= nx_;
  c.y = static_cast<int32_t>(flat_index % ny_);
  c.z = static_cast<int32_t>(flat_index / ny_);
  return c;
}

Aabb UniformGrid::CellBounds(const CellCoords& c) const {
  const Vec3 lo(bounds_.min().x + c.x * cell_size_.x,
                bounds_.min().y + c.y * cell_size_.y,
                bounds_.min().z + c.z * cell_size_.z);
  return Aabb(lo, lo + cell_size_);
}

void UniformGrid::CellsOverlapping(const Aabb& box,
                                   std::vector<int64_t>* out) const {
  const Aabb clipped = box.Intersection(bounds_);
  if (clipped.IsEmpty()) return;
  const CellCoords lo = CellOf(clipped.min());
  const CellCoords hi = CellOf(clipped.max());
  for (int32_t z = lo.z; z <= hi.z; ++z) {
    for (int32_t y = lo.y; y <= hi.y; ++y) {
      for (int32_t x = lo.x; x <= hi.x; ++x) {
        out->push_back(FlatIndex(CellCoords{x, y, z}));
      }
    }
  }
}

void UniformGrid::CellsAlongSegment(const Segment& seg,
                                    std::vector<int64_t>* out) const {
  WalkCellsAlongSegment(seg, [out](int64_t cell) { out->push_back(cell); });
}

}  // namespace scout
