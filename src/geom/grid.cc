#include "geom/grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace scout {

UniformGrid::UniformGrid(const Aabb& bounds, int nx, int ny, int nz)
    : bounds_(bounds), nx_(nx), ny_(ny), nz_(nz) {
  assert(nx >= 1 && ny >= 1 && nz >= 1);
  assert(!bounds.IsEmpty());
  const Vec3 ext = bounds.Extents();
  cell_size_ = Vec3(ext.x / nx, ext.y / ny, ext.z / nz);
}

UniformGrid UniformGrid::WithTotalCells(const Aabb& bounds,
                                        int64_t total_cells) {
  assert(total_cells >= 1);
  const Vec3 ext = bounds.Extents();
  // Choose per-axis counts so cells are as cubic as possible:
  // n_axis ~ ext_axis / s where s = (V / total)^(1/3).
  const double volume = std::max(bounds.Volume(), 1e-30);
  const double s = std::cbrt(volume / static_cast<double>(total_cells));
  auto count = [&](double e) {
    return std::max(1, static_cast<int>(std::round(e / s)));
  };
  int nx = count(ext.x);
  int ny = count(ext.y);
  int nz = count(ext.z);
  return UniformGrid(bounds, nx, ny, nz);
}

CellCoords UniformGrid::CellOf(const Vec3& p) const {
  auto coord = [](double v, double lo, double size, int n) {
    if (size <= 0.0) return 0;
    int c = static_cast<int>(std::floor((v - lo) / size));
    return std::clamp(c, 0, n - 1);
  };
  return CellCoords{coord(p.x, bounds_.min().x, cell_size_.x, nx_),
                    coord(p.y, bounds_.min().y, cell_size_.y, ny_),
                    coord(p.z, bounds_.min().z, cell_size_.z, nz_)};
}

CellCoords UniformGrid::CoordsOf(int64_t flat_index) const {
  assert(flat_index >= 0 && flat_index < TotalCells());
  CellCoords c;
  c.x = static_cast<int32_t>(flat_index % nx_);
  flat_index /= nx_;
  c.y = static_cast<int32_t>(flat_index % ny_);
  c.z = static_cast<int32_t>(flat_index / ny_);
  return c;
}

Aabb UniformGrid::CellBounds(const CellCoords& c) const {
  const Vec3 lo(bounds_.min().x + c.x * cell_size_.x,
                bounds_.min().y + c.y * cell_size_.y,
                bounds_.min().z + c.z * cell_size_.z);
  return Aabb(lo, lo + cell_size_);
}

void UniformGrid::CellsOverlapping(const Aabb& box,
                                   std::vector<int64_t>* out) const {
  const Aabb clipped = box.Intersection(bounds_);
  if (clipped.IsEmpty()) return;
  const CellCoords lo = CellOf(clipped.min());
  const CellCoords hi = CellOf(clipped.max());
  for (int32_t z = lo.z; z <= hi.z; ++z) {
    for (int32_t y = lo.y; y <= hi.y; ++y) {
      for (int32_t x = lo.x; x <= hi.x; ++x) {
        out->push_back(FlatIndex(CellCoords{x, y, z}));
      }
    }
  }
}

void UniformGrid::CellsAlongSegment(const Segment& seg,
                                    std::vector<int64_t>* out) const {
  double t0;
  double t1;
  if (!seg.ClipToBox(bounds_, &t0, &t1)) return;
  const Vec3 start = seg.PointAt(t0);
  const Vec3 end = seg.PointAt(t1);

  CellCoords cur = CellOf(start);
  const CellCoords last = CellOf(end);
  out->push_back(FlatIndex(cur));
  if (cur == last) return;

  // Amanatides & Woo 3-D DDA traversal.
  const Vec3 d = end - start;
  const double dir[3] = {d.x, d.y, d.z};
  const double size[3] = {cell_size_.x, cell_size_.y, cell_size_.z};
  const double origin[3] = {start.x, start.y, start.z};
  const double lo[3] = {bounds_.min().x, bounds_.min().y, bounds_.min().z};
  int32_t pos[3] = {cur.x, cur.y, cur.z};
  const int32_t target[3] = {last.x, last.y, last.z};
  const int32_t limit[3] = {nx_ - 1, ny_ - 1, nz_ - 1};

  int step[3];
  double t_max[3];
  double t_delta[3];
  for (int i = 0; i < 3; ++i) {
    if (dir[i] > 0) {
      step[i] = 1;
      const double next_boundary = lo[i] + (pos[i] + 1) * size[i];
      t_max[i] = (next_boundary - origin[i]) / dir[i];
      t_delta[i] = size[i] / dir[i];
    } else if (dir[i] < 0) {
      step[i] = -1;
      const double next_boundary = lo[i] + pos[i] * size[i];
      t_max[i] = (next_boundary - origin[i]) / dir[i];
      t_delta[i] = -size[i] / dir[i];
    } else {
      step[i] = 0;
      t_max[i] = std::numeric_limits<double>::max();
      t_delta[i] = std::numeric_limits<double>::max();
    }
  }

  // Cap iterations defensively; a straight walk can visit at most
  // nx+ny+nz cells.
  const int max_steps = nx_ + ny_ + nz_ + 3;
  for (int it = 0; it < max_steps; ++it) {
    int axis = 0;
    if (t_max[1] < t_max[axis]) axis = 1;
    if (t_max[2] < t_max[axis]) axis = 2;
    pos[axis] += step[axis];
    if (pos[axis] < 0 || pos[axis] > limit[axis]) break;
    t_max[axis] += t_delta[axis];
    out->push_back(
        FlatIndex(CellCoords{pos[0], pos[1], pos[2]}));
    if (pos[0] == target[0] && pos[1] == target[1] && pos[2] == target[2]) {
      break;
    }
  }
}

}  // namespace scout
