#pragma once

#include <algorithm>
#include <limits>
#include <string>

#include "geom/vec3.h"

namespace scout {

/// Axis-aligned bounding box. An empty box (default constructed) has
/// min > max and behaves as the identity for Union.
class Aabb {
 public:
  /// Constructs an empty box.
  Aabb()
      : min_(std::numeric_limits<double>::max(),
             std::numeric_limits<double>::max(),
             std::numeric_limits<double>::max()),
        max_(std::numeric_limits<double>::lowest(),
             std::numeric_limits<double>::lowest(),
             std::numeric_limits<double>::lowest()) {}

  Aabb(const Vec3& min, const Vec3& max) : min_(min), max_(max) {}

  /// Box centered at `center` with half-extents `half` (all components
  /// must be >= 0).
  static Aabb FromCenterHalfExtents(const Vec3& center, const Vec3& half) {
    return Aabb(center - half, center + half);
  }

  /// Cube centered at `center` with the given total volume.
  static Aabb CubeWithVolume(const Vec3& center, double volume);

  /// Smallest box containing both points.
  static Aabb FromPoints(const Vec3& a, const Vec3& b) {
    return Aabb(Vec3::Min(a, b), Vec3::Max(a, b));
  }

  const Vec3& min() const { return min_; }
  const Vec3& max() const { return max_; }

  bool IsEmpty() const {
    return min_.x > max_.x || min_.y > max_.y || min_.z > max_.z;
  }

  Vec3 Center() const { return (min_ + max_) * 0.5; }
  Vec3 Extents() const { return max_ - min_; }
  Vec3 HalfExtents() const { return (max_ - min_) * 0.5; }

  double Volume() const {
    if (IsEmpty()) return 0.0;
    const Vec3 e = Extents();
    return e.x * e.y * e.z;
  }

  double SurfaceArea() const {
    if (IsEmpty()) return 0.0;
    const Vec3 e = Extents();
    return 2.0 * (e.x * e.y + e.y * e.z + e.z * e.x);
  }

  bool Contains(const Vec3& p) const {
    return p.x >= min_.x && p.x <= max_.x && p.y >= min_.y && p.y <= max_.y &&
           p.z >= min_.z && p.z <= max_.z;
  }

  bool Contains(const Aabb& o) const {
    return !o.IsEmpty() && Contains(o.min_) && Contains(o.max_);
  }

  bool Intersects(const Aabb& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return min_.x <= o.max_.x && max_.x >= o.min_.x && min_.y <= o.max_.y &&
           max_.y >= o.min_.y && min_.z <= o.max_.z && max_.z >= o.min_.z;
  }

  /// Grows the box to include the point.
  void Extend(const Vec3& p) {
    min_ = Vec3::Min(min_, p);
    max_ = Vec3::Max(max_, p);
  }

  /// Grows the box to include another box.
  void Extend(const Aabb& o) {
    if (o.IsEmpty()) return;
    min_ = Vec3::Min(min_, o.min_);
    max_ = Vec3::Max(max_, o.max_);
  }

  /// Box grown by `margin` on every side (margin may be negative; the
  /// result may become empty).
  Aabb Expanded(double margin) const {
    const Vec3 m(margin, margin, margin);
    return Aabb(min_ - m, max_ + m);
  }

  /// Intersection of two boxes (possibly empty).
  Aabb Intersection(const Aabb& o) const {
    return Aabb(Vec3::Max(min_, o.min_), Vec3::Min(max_, o.max_));
  }

  /// Union of two boxes.
  Aabb Union(const Aabb& o) const {
    Aabb result = *this;
    result.Extend(o);
    return result;
  }

  /// Translated copy.
  Aabb Translated(const Vec3& d) const { return Aabb(min_ + d, max_ + d); }

  /// Closest point inside the box to `p` (p itself if contained).
  Vec3 ClosestPoint(const Vec3& p) const {
    return Vec3(std::clamp(p.x, min_.x, max_.x),
                std::clamp(p.y, min_.y, max_.y),
                std::clamp(p.z, min_.z, max_.z));
  }

  /// Squared distance from `p` to the box (0 if inside).
  double DistanceSquaredTo(const Vec3& p) const {
    return ClosestPoint(p).DistanceSquaredTo(p);
  }
  double DistanceTo(const Vec3& p) const {
    return std::sqrt(DistanceSquaredTo(p));
  }

  bool operator==(const Aabb& o) const {
    return min_ == o.min_ && max_ == o.max_;
  }

  std::string ToString() const;

 private:
  Vec3 min_;
  Vec3 max_;
};

}  // namespace scout

