#pragma once

#include <variant>

#include "geom/aabb.h"
#include "geom/frustum.h"
#include "geom/vec3.h"

namespace scout {

/// A spatial query region: either an axis-aligned box (ad-hoc queries,
/// model building) or a view frustum (walkthrough visualization). The
/// whole query/prefetch pipeline is written against this type so that
/// both aspect shapes from the paper's Figure 10 run through identical
/// code paths.
class Region {
 public:
  Region() : shape_(Aabb()) {}
  explicit Region(const Aabb& box) : shape_(box) {}
  explicit Region(const Frustum& frustum) : shape_(frustum) {}

  /// Cube with the given volume centered at `center`.
  static Region CubeAt(const Vec3& center, double volume) {
    return Region(Aabb::CubeWithVolume(center, volume));
  }

  /// Frustum with the given volume centered at `center`, looking along
  /// `dir`.
  static Region FrustumAt(const Vec3& center, const Vec3& dir,
                          double volume) {
    return Region(Frustum::WithVolume(center, dir, volume));
  }

  bool is_box() const { return std::holds_alternative<Aabb>(shape_); }
  bool is_frustum() const { return std::holds_alternative<Frustum>(shape_); }

  const Aabb& box() const { return std::get<Aabb>(shape_); }
  const Frustum& frustum() const { return std::get<Frustum>(shape_); }

  /// Bounding box of the region.
  Aabb Bounds() const;

  /// True if the point lies inside the region.
  bool Contains(const Vec3& p) const;

  /// Conservative region-box overlap test (never false negative). For
  /// frustum regions this is the AABB-prefiltered test (seed2 query-path
  /// semantics): a strict subset of the plain six-plane accept set.
  bool Intersects(const Aabb& box) const;

  /// Conservative full-containment test (never a false positive): true
  /// only if the whole box lies inside the region. Index traversals use
  /// it to bulk-accept subtrees without per-entry tests.
  bool ContainsBox(const Aabb& box) const;

  double Volume() const;

  /// Representative center of the region (cube center / frustum axis
  /// midpoint). Baseline prefetchers extrapolate these.
  Vec3 Center() const;

  /// A region of the same shape and size re-centered at `center` (frustum
  /// keeps its orientation unless `new_dir` is non-null).
  Region RecenteredAt(const Vec3& center, const Vec3* new_dir = nullptr) const;

 private:
  std::variant<Aabb, Frustum> shape_;
};

}  // namespace scout

