#include "geom/segment.h"

#include <algorithm>
#include <cmath>

namespace scout {

double Segment::ClosestParameterTo(const Vec3& p) const {
  const Vec3 d = b - a;
  const double len_sq = d.NormSquared();
  if (len_sq == 0.0) return 0.0;
  return std::clamp((p - a).Dot(d) / len_sq, 0.0, 1.0);
}

double Segment::DistanceSquaredTo(const Segment& other) const {
  // Standard robust segment-segment closest-point computation
  // (Ericson, "Real-Time Collision Detection", §5.1.9).
  const Vec3 d1 = b - a;
  const Vec3 d2 = other.b - other.a;
  const Vec3 r = a - other.a;
  const double a11 = d1.NormSquared();
  const double a22 = d2.NormSquared();
  const double f = d2.Dot(r);

  double s = 0.0;
  double t = 0.0;
  constexpr double kEps = 1e-12;

  if (a11 <= kEps && a22 <= kEps) {
    // Both segments degenerate to points.
    return r.NormSquared();
  }
  if (a11 <= kEps) {
    s = 0.0;
    t = std::clamp(f / a22, 0.0, 1.0);
  } else {
    const double c = d1.Dot(r);
    if (a22 <= kEps) {
      t = 0.0;
      s = std::clamp(-c / a11, 0.0, 1.0);
    } else {
      const double a12 = d1.Dot(d2);
      const double denom = a11 * a22 - a12 * a12;
      if (denom > kEps) {
        s = std::clamp((a12 * f - c * a22) / denom, 0.0, 1.0);
      } else {
        s = 0.0;  // Parallel: pick an arbitrary point on this segment.
      }
      t = (a12 * s + f) / a22;
      if (t < 0.0) {
        t = 0.0;
        s = std::clamp(-c / a11, 0.0, 1.0);
      } else if (t > 1.0) {
        t = 1.0;
        s = std::clamp((a12 - c) / a11, 0.0, 1.0);
      }
    }
  }
  const Vec3 closest1 = a + d1 * s;
  const Vec3 closest2 = other.a + d2 * t;
  return closest1.DistanceSquaredTo(closest2);
}

double Segment::DistanceTo(const Segment& other) const {
  return std::sqrt(DistanceSquaredTo(other));
}

bool Segment::ClipToBox(const Aabb& box, double* t_min, double* t_max) const {
  double t0 = 0.0;
  double t1 = 1.0;
  const Vec3 d = b - a;
  const double origin[3] = {a.x, a.y, a.z};
  const double dir[3] = {d.x, d.y, d.z};
  const double lo[3] = {box.min().x, box.min().y, box.min().z};
  const double hi[3] = {box.max().x, box.max().y, box.max().z};

  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(dir[axis]) < 1e-15) {
      // Parallel to the slab: reject if the origin is outside.
      if (origin[axis] < lo[axis] || origin[axis] > hi[axis]) return false;
      continue;
    }
    double near = (lo[axis] - origin[axis]) / dir[axis];
    double far = (hi[axis] - origin[axis]) / dir[axis];
    if (near > far) std::swap(near, far);
    t0 = std::max(t0, near);
    t1 = std::min(t1, far);
    if (t0 > t1) return false;
  }
  if (t_min != nullptr) *t_min = t0;
  if (t_max != nullptr) *t_max = t1;
  return true;
}

bool Segment::Intersects(const Aabb& box) const {
  return ClipToBox(box, nullptr, nullptr);
}

}  // namespace scout
