#pragma once

#include <cmath>
#include <string>

namespace scout {

/// Three-dimensional vector / point with double precision. The library
/// works in micrometers (µm), matching the paper's datasets.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_in, double y_in, double z_in)
      : x(x_in), y(y_in), z(z_in) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return Vec3(x + o.x, y + o.y, z + o.z);
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return Vec3(x - o.x, y - o.y, z - o.z);
  }
  constexpr Vec3 operator*(double s) const { return Vec3(x * s, y * s, z * s); }
  constexpr Vec3 operator/(double s) const { return Vec3(x / s, y / s, z / s); }
  constexpr Vec3 operator-() const { return Vec3(-x, -y, -z); }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }

  constexpr double Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 Cross(const Vec3& o) const {
    return Vec3(y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x);
  }

  constexpr double NormSquared() const { return Dot(*this); }
  double Norm() const { return std::sqrt(NormSquared()); }

  /// Unit vector in the same direction; returns (0,0,0) for the zero
  /// vector rather than dividing by zero.
  Vec3 Normalized() const {
    const double n = Norm();
    if (n == 0.0) return Vec3();
    return *this / n;
  }

  double DistanceTo(const Vec3& o) const { return (*this - o).Norm(); }
  constexpr double DistanceSquaredTo(const Vec3& o) const {
    return (*this - o).NormSquared();
  }

  /// Component-wise minimum / maximum.
  static constexpr Vec3 Min(const Vec3& a, const Vec3& b) {
    return Vec3(a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
                a.z < b.z ? a.z : b.z);
  }
  static constexpr Vec3 Max(const Vec3& a, const Vec3& b) {
    return Vec3(a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y,
                a.z > b.z ? a.z : b.z);
  }

  std::string ToString() const;
};

inline constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// Linear interpolation: a + t * (b - a).
inline constexpr Vec3 Lerp(const Vec3& a, const Vec3& b, double t) {
  return a + (b - a) * t;
}

}  // namespace scout

