#include "geom/region.h"

#include <cmath>

namespace scout {

Aabb Region::Bounds() const {
  if (is_box()) return box();
  return frustum().Bounds();
}

bool Region::Contains(const Vec3& p) const {
  if (is_box()) return box().Contains(p);
  return frustum().Contains(p);
}

bool Region::Intersects(const Aabb& other) const {
  if (is_box()) return box().Intersects(other);
  return frustum().Intersects(other);
}

bool Region::ContainsBox(const Aabb& other) const {
  if (is_box()) return box().Contains(other);
  return frustum().ContainsBox(other);
}

double Region::Volume() const {
  if (is_box()) return box().Volume();
  return frustum().Volume();
}

Vec3 Region::Center() const {
  if (is_box()) return box().Center();
  return frustum().Centroid();
}

Region Region::RecenteredAt(const Vec3& center, const Vec3* new_dir) const {
  if (is_box()) {
    return Region(Aabb::FromCenterHalfExtents(center, box().HalfExtents()));
  }
  const Frustum& f = frustum();
  const Vec3 dir = new_dir != nullptr ? *new_dir : f.direction();
  return Region(Frustum::WithVolume(center, dir, f.Volume()));
}

}  // namespace scout
