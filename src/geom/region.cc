#include "geom/region.h"

#include <cmath>

namespace scout {

Aabb Region::Bounds() const {
  if (is_box()) return box();
  return frustum().Bounds();
}

bool Region::Contains(const Vec3& p) const {
  if (is_box()) return box().Contains(p);
  return frustum().Contains(p);
}

bool Region::Intersects(const Aabb& other) const {
  if (is_box()) return box().Intersects(other);
  // The AABB-prefiltered test is the query-path overlap test since the
  // seed2 baseline re-seed: it rejects far-away boxes on the frustum's
  // corner hull with as little as one comparison AND removes the rare
  // plane-test false positives, so frustum result sets are a strict
  // subset of the plain six-plane test's (never a false negative; see
  // Frustum::IntersectsPrefiltered and README "Semantic changes &
  // baseline re-seeds").
  return frustum().IntersectsPrefiltered(other);
}

bool Region::ContainsBox(const Aabb& other) const {
  if (is_box()) return box().Contains(other);
  return frustum().ContainsBox(other);
}

double Region::Volume() const {
  if (is_box()) return box().Volume();
  return frustum().Volume();
}

Vec3 Region::Center() const {
  if (is_box()) return box().Center();
  return frustum().Centroid();
}

Region Region::RecenteredAt(const Vec3& center, const Vec3* new_dir) const {
  if (is_box()) {
    return Region(Aabb::FromCenterHalfExtents(center, box().HalfExtents()));
  }
  const Frustum& f = frustum();
  const Vec3 dir = new_dir != nullptr ? *new_dir : f.direction();
  return Region(Frustum::WithVolume(center, dir, f.Volume()));
}

}  // namespace scout
