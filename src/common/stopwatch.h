#pragma once

#include <chrono>
#include <cstdint>

namespace scout {

/// Wall-clock stopwatch for measuring real CPU-side costs (graph building,
/// traversal) reported alongside simulated-time results. Not used for any
/// decision-making inside the engine, only for reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds (double precision).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace scout

