#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

namespace scout {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All randomness in the library flows through this type so
/// that datasets, query sequences and experiments are exactly reproducible
/// from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5c0075c007ull) { Seed(seed); }

  /// Re-seeds the generator. Two Rng instances seeded identically produce
  /// identical streams.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBounded(uint64_t n) {
    assert(n > 0);
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible
    // for our n << 2^64 use cases and determinism is what matters here.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextUint64()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (uses two uniforms per pair; caches
  /// the spare value).
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u;
    double v;
    double s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Forks an independent, deterministic child stream. Useful to give each
  /// structure/sequence its own stream so changing one parameter does not
  /// perturb unrelated random draws.
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace scout

