#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace scout {

/// Error codes used across the library. The public API never throws;
/// operations that can fail return a Status (or StatusOr<T>), following
/// the conventions of production storage engines.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  kUnavailable,
};

/// Human-readable name for a StatusCode ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success/error result. Cheap to construct and copy in the
/// success case (no allocation); the error case carries a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error result aborts in debug builds; callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status to the caller. Usage:
///   SCOUT_RETURN_IF_ERROR(DoThing());
#define SCOUT_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::scout::Status _scout_status = (expr);          \
    if (!_scout_status.ok()) return _scout_status;   \
  } while (0)

}  // namespace scout

