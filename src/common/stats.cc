#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace scout {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

PercentileSummary ComputePercentiles(std::vector<double> samples) {
  PercentileSummary out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  out.max = samples.back();
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

}  // namespace scout
