#include "common/status.h"

namespace scout {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace scout
