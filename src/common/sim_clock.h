#pragma once

#include <cassert>
#include <cstdint>

namespace scout {

/// Simulated time in microseconds. All engine-level accounting (disk
/// reads, prefetch windows, prediction cost) advances a SimClock rather
/// than reading wall-clock time, which makes every experiment exactly
/// reproducible and independent of the host machine.
using SimMicros = int64_t;

/// A monotonically advancing simulated clock.
class SimClock {
 public:
  SimClock() = default;

  /// Current simulated time in microseconds since the clock's epoch.
  SimMicros now() const { return now_us_; }

  /// Advances the clock by `delta_us` (must be >= 0).
  void Advance(SimMicros delta_us) {
    assert(delta_us >= 0);
    now_us_ += delta_us;
  }

  /// Resets the clock to zero.
  void Reset() { now_us_ = 0; }

 private:
  SimMicros now_us_ = 0;
};

}  // namespace scout

