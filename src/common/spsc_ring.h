#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace scout {

/// Fixed-capacity single-producer/single-consumer ring buffer: the
/// lock-free handoff lane of the asynchronous prefetch pipeline
/// (prefedge's per-thread pipe, C++-ified). Exactly ONE thread may ever
/// call TryPush and exactly ONE thread may ever call TryPop — the
/// `ring-single-writer` lint rule keeps those call sites in the
/// whitelisted pipeline TUs.
///
/// The implementation is the classic monotonically-counting ring:
/// head_/tail_ are free-running uint64 counters (never wrapped), the
/// slot index is `counter & (kCapacity - 1)`. A push publishes its slot
/// write with a release store of head_; a pop acquires it before
/// reading the slot. Capacity must be a power of two.
template <typename T, size_t kCapacity>
class SpscRing {
  static_assert(kCapacity >= 2 && (kCapacity & (kCapacity - 1)) == 0,
                "SpscRing capacity must be a power of two");

 public:
  SpscRing() = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full (the caller
  /// decides whether to retry — the pipeline blocks, preserving the
  /// superset-ordering contract, instead of dropping predictions).
  bool TryPush(const T& value) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= kCapacity) return false;
    slots_[head & kMask] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    *out = slots_[tail & kMask];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Entries currently buffered. Exact when called from the producer or
  /// consumer thread; a racing snapshot otherwise.
  size_t SizeApprox() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<size_t>(head - tail);
  }

  bool Empty() const { return SizeApprox() == 0; }

  static constexpr size_t Capacity() { return kCapacity; }

 private:
  static constexpr uint64_t kMask = kCapacity - 1;

  alignas(64) std::atomic<uint64_t> head_{0};  ///< Next producer slot.
  alignas(64) std::atomic<uint64_t> tail_{0};  ///< Next consumer slot.
  alignas(64) T slots_[kCapacity] = {};
};

}  // namespace scout
