#pragma once

#include <functional>
#include <thread>
#include <vector>

namespace scout::internal {

/// Runs `work` on `workers` threads and joins them (inline when
/// workers <= 1). The closure claims its own tasks (typically through an
/// atomic counter over a preallocated slot array), so any execution
/// order yields identical results — the engine's pure fan-out primitive,
/// shared by RunBatch and the multi-client engine's prepare/baseline
/// phases.
inline void RunOnPool(uint32_t workers, const std::function<void()>& work) {
  if (workers <= 1) {
    work();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
}

}  // namespace scout::internal

