#pragma once

// Portable 4-wide double-lane SIMD wrapper. This header is the ONLY
// place raw vector intrinsics may appear (scout_lint `simd-isolation`);
// everything else programs against the scout::simd:: operations below.
//
// Dispatch is purely compile-time: the AVX2 implementation is selected
// when the build enables it (CMake option SCOUT_SIMD=auto|avx2 defines
// SCOUT_SIMD_AVX2 and passes -mavx2), otherwise a scalar implementation
// with identical semantics compiles in — same API, same results, so a
// scalar-fallback build (SCOUT_SIMD=scalar, CI-enforced) differs only
// in speed. kLaneName feeds the bench snapshot metadata: baseline rows
// recorded with different lane widths are not comparable, and the
// recorder labels each snapshot so such diffs are visible.
//
// All comparisons are quiet-ordered on the AVX2 side and use plain
// C++ comparison operators on the scalar side; both return false for
// NaN operands, so lane masks are bit-identical across backends.

#include <cmath>
#include <cstdint>

#if defined(SCOUT_SIMD_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#define SCOUT_SIMD_IS_AVX2 1
#else
#define SCOUT_SIMD_IS_AVX2 0
#endif

namespace scout::simd {

/// Lane count of the wide type (fixed: the SoA layouts pad to it).
inline constexpr int kLanes = 4;

/// Name of the compiled lane backend, recorded in snapshot metadata.
inline constexpr const char* kLaneName = SCOUT_SIMD_IS_AVX2 ? "avx2"
                                                           : "scalar";

#if SCOUT_SIMD_IS_AVX2

/// Four double lanes.
struct Vec4d {
  __m256d v;
};

/// Predicate over four lanes (result of comparisons; combined with
/// And/Or; materialized as 4 bits by Bits()).
struct Mask4 {
  __m256d m;
};

inline Vec4d Load(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void Store(double* p, Vec4d a) { _mm256_storeu_pd(p, a.v); }
inline Vec4d Broadcast(double x) { return {_mm256_set1_pd(x)}; }
inline Vec4d Set(double a, double b, double c, double d) {
  return {_mm256_setr_pd(a, b, c, d)};
}
inline Vec4d Add(Vec4d a, Vec4d b) { return {_mm256_add_pd(a.v, b.v)}; }
inline Vec4d Sub(Vec4d a, Vec4d b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline Vec4d Mul(Vec4d a, Vec4d b) { return {_mm256_mul_pd(a.v, b.v)}; }
/// Lane-wise IEEE division. Correctly rounded per lane, so results are
/// bit-identical to the scalar `/` operator on every backend.
inline Vec4d Div(Vec4d a, Vec4d b) { return {_mm256_div_pd(a.v, b.v)}; }
/// Lane-wise floor; identical to std::floor per lane (round toward
/// negative infinity, exceptions suppressed).
inline Vec4d Floor(Vec4d a) {
  return {_mm256_round_pd(a.v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)};
}

/// Lane-wise a <= b (false when either operand is NaN).
inline Mask4 CmpLe(Vec4d a, Vec4d b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
}
/// Lane-wise a >= b (false when either operand is NaN).
inline Mask4 CmpGe(Vec4d a, Vec4d b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}
inline Mask4 And(Mask4 a, Mask4 b) { return {_mm256_and_pd(a.m, b.m)}; }

/// Lane predicate bits: bit i set iff lane i is true.
inline uint32_t Bits(Mask4 m) {
  return static_cast<uint32_t>(_mm256_movemask_pd(m.m));
}

#else  // scalar fallback: same API, same lane semantics.

struct Vec4d {
  double v[4];
};

struct Mask4 {
  uint32_t bits;
};

inline Vec4d Load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void Store(double* p, Vec4d a) {
  p[0] = a.v[0];
  p[1] = a.v[1];
  p[2] = a.v[2];
  p[3] = a.v[3];
}
inline Vec4d Broadcast(double x) { return {{x, x, x, x}}; }
inline Vec4d Set(double a, double b, double c, double d) {
  return {{a, b, c, d}};
}
inline Vec4d Add(Vec4d a, Vec4d b) {
  return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
           a.v[3] + b.v[3]}};
}
inline Vec4d Sub(Vec4d a, Vec4d b) {
  return {{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2],
           a.v[3] - b.v[3]}};
}
inline Vec4d Mul(Vec4d a, Vec4d b) {
  return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2],
           a.v[3] * b.v[3]}};
}
/// Lane-wise IEEE division. Correctly rounded per lane, so results are
/// bit-identical to the scalar `/` operator on every backend.
inline Vec4d Div(Vec4d a, Vec4d b) {
  return {{a.v[0] / b.v[0], a.v[1] / b.v[1], a.v[2] / b.v[2],
           a.v[3] / b.v[3]}};
}
/// Lane-wise floor; identical to std::floor per lane (round toward
/// negative infinity, exceptions suppressed).
inline Vec4d Floor(Vec4d a) {
  return {{std::floor(a.v[0]), std::floor(a.v[1]), std::floor(a.v[2]),
           std::floor(a.v[3])}};
}

inline Mask4 CmpLe(Vec4d a, Vec4d b) {
  uint32_t bits = 0;
  for (int i = 0; i < kLanes; ++i) {
    if (a.v[i] <= b.v[i]) bits |= 1u << i;
  }
  return {bits};
}
inline Mask4 CmpGe(Vec4d a, Vec4d b) {
  uint32_t bits = 0;
  for (int i = 0; i < kLanes; ++i) {
    if (a.v[i] >= b.v[i]) bits |= 1u << i;
  }
  return {bits};
}
inline Mask4 And(Mask4 a, Mask4 b) { return {a.bits & b.bits}; }
inline uint32_t Bits(Mask4 m) { return m.bits; }

#endif

/// Bits of the lanes [0, n) for a partial group (n in [0, kLanes]).
inline uint32_t TailMask(uint32_t n) { return (1u << n) - 1u; }

}  // namespace scout::simd
