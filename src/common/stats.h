#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace scout {

/// Online accumulator for mean/min/max/stddev of a stream of samples
/// (Welford's algorithm; numerically stable).
class RunningStat {
 public:
  RunningStat() = default;

  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  void Reset() { *this = RunningStat(); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed set of percentile summaries over a collected sample vector.
struct PercentileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes percentiles from samples (copies and sorts internally).
PercentileSummary ComputePercentiles(std::vector<double> samples);

/// Formats a double with fixed precision, e.g. FormatDouble(3.14159, 2)
/// == "3.14". Small helper for table-printing benches.
std::string FormatDouble(double value, int precision);

}  // namespace scout

