#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec3.h"

namespace scout {

/// Sort-Tile-Recursive packing order (Leutenegger et al., ICDE 1997 —
/// the paper's baseline index is an "R-Tree (STR Bulkloaded)").
///
/// Returns a permutation of [0, points.size()) such that consecutive runs
/// of `capacity` indices form spatially compact tiles: the points are
/// sorted into x-slabs, each slab into y-runs, each run by z.
std::vector<size_t> StrOrder(const std::vector<Vec3>& points,
                             size_t capacity);

}  // namespace scout

