#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "index/box_rtree.h"
#include "index/spatial_index.h"
#include "storage/object.h"

namespace scout {

/// STR bulk-loaded R-tree (Leutenegger et al. [14]) — the index SCOUT is
/// coupled with in the paper's experiments. Objects are packed into leaf
/// disk pages in Sort-Tile-Recursive order (fill factor 100%, 87 objects
/// per 4 KB page); an in-memory directory of page MBRs answers range
/// queries with the page ids to read.
class RTreeIndex : public SpatialIndex {
 public:
  /// Builds the index (and its page layout) over `objects`.
  static StatusOr<std::unique_ptr<RTreeIndex>> Build(
      std::vector<SpatialObject> objects);

  std::string_view name() const override { return "rtree-str"; }
  const PageStore& store() const override { return store_; }
  void QueryPages(const Region& region,
                  std::vector<PageId>* out) const override;
  PageId NearestPage(const Vec3& p) const override;

 private:
  RTreeIndex() = default;

  PageStore store_;
  BoxRTree directory_;
};

}  // namespace scout

