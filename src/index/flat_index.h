#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "index/box_rtree.h"
#include "index/spatial_index.h"
#include "storage/object.h"

namespace scout {

/// Configuration of the FLAT-style index build.
struct FlatIndexConfig {
  /// Hilbert curve resolution (bits per dimension) used to order objects
  /// into pages with strong spatial locality.
  int hilbert_bits = 16;
  /// Two pages are neighbors if their bounds expanded by this margin (µm)
  /// intersect.
  double neighbor_margin = 1.0;
};

/// FLAT-style index (Tauheed et al. [27]): pages laid out in Hilbert
/// order with precomputed page-neighborhood links. This provides the two
/// capabilities SCOUT-OPT exploits (paper §6): retrieval of result pages
/// in a controlled spatial order (seed + crawl) and crawling *outside* a
/// query region along a structure (gap traversal).
///
/// Substitution note (DESIGN.md §2): FLAT itself is not open source; this
/// reimplementation reproduces the seed-and-crawl query execution and the
/// neighborhood metadata the paper describes.
class FlatIndex : public SpatialIndex {
 public:
  static StatusOr<std::unique_ptr<FlatIndex>> Build(
      std::vector<SpatialObject> objects, const FlatIndexConfig& config = {});

  std::string_view name() const override { return "flat"; }
  const PageStore& store() const override { return store_; }
  void QueryPages(const Region& region,
                  std::vector<PageId>* out) const override;
  PageId NearestPage(const Vec3& p) const override;

  bool SupportsNeighborhood() const override { return true; }
  const std::vector<PageId>& PageNeighbors(PageId page) const override {
    return neighbors_[page];
  }

  /// Seed-and-crawl ordered retrieval: result pages are emitted in BFS
  /// order over the neighborhood links starting from the page nearest to
  /// `start`; result pages unreachable through in-region links are
  /// appended afterwards (sorted by distance).
  void QueryPagesOrdered(const Region& region, const Vec3& start,
                         std::vector<PageId>* out) const override;

  /// Average number of neighbors per page (diagnostics / tests).
  double MeanNeighborCount() const;

 private:
  FlatIndex() = default;

  void BuildNeighbors(double margin);

  PageStore store_;
  BoxRTree directory_;
  std::vector<std::vector<PageId>> neighbors_;
};

}  // namespace scout

