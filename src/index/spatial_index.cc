#include "index/spatial_index.h"

#include <algorithm>

namespace scout {

const std::vector<PageId>& SpatialIndex::PageNeighbors(PageId page) const {
  (void)page;
  static const std::vector<PageId>* const kEmpty = new std::vector<PageId>();
  return *kEmpty;
}

void SpatialIndex::QueryPagesOrdered(const Region& region, const Vec3& start,
                                     std::vector<PageId>* out) const {
  const size_t begin = out->size();
  QueryPages(region, out);
  const PageStore& pages = store();
  std::sort(out->begin() + begin, out->end(), [&](PageId a, PageId b) {
    const double da = pages.page(a).bounds.DistanceSquaredTo(start);
    const double db = pages.page(b).bounds.DistanceSquaredTo(start);
    if (da != db) return da < db;
    return a < b;
  });
}

}  // namespace scout
