#include "index/rtree.h"

#include <utility>

#include "index/str_pack.h"

namespace scout {

StatusOr<std::unique_ptr<RTreeIndex>> RTreeIndex::Build(
    std::vector<SpatialObject> objects) {
  auto index = std::unique_ptr<RTreeIndex>(new RTreeIndex());

  std::vector<Vec3> centroids;
  centroids.reserve(objects.size());
  for (const SpatialObject& obj : objects) {
    centroids.push_back(obj.Centroid());
  }
  const std::vector<size_t> order = StrOrder(centroids, kPageCapacity);

  std::vector<SpatialObject> page_objects;
  page_objects.reserve(kPageCapacity);
  for (size_t i = 0; i < order.size(); ++i) {
    page_objects.push_back(std::move(objects[order[i]]));
    if (page_objects.size() == kPageCapacity || i + 1 == order.size()) {
      StatusOr<PageId> page = index->store_.AppendPage(std::move(page_objects));
      if (!page.ok()) return page.status();
      page_objects.clear();
      page_objects.reserve(kPageCapacity);
    }
  }

  std::vector<Aabb> boxes;
  std::vector<uint32_t> payloads;
  boxes.reserve(index->store_.NumPages());
  payloads.reserve(index->store_.NumPages());
  for (const Page& page : index->store_.pages()) {
    boxes.push_back(page.bounds);
    payloads.push_back(page.id);
  }
  index->directory_.BulkLoad(std::move(boxes), std::move(payloads));
  return index;
}

void RTreeIndex::QueryPages(const Region& region,
                            std::vector<PageId>* out) const {
  directory_.Query(region, out);
}

PageId RTreeIndex::NearestPage(const Vec3& p) const {
  uint32_t payload = kInvalidPageId;
  if (!directory_.Nearest(p, &payload)) return kInvalidPageId;
  return payload;
}

}  // namespace scout
