#pragma once

#include <string_view>
#include <vector>

#include "geom/region.h"
#include "storage/page_store.h"

namespace scout {

/// Interface of a disk-based spatial index. An index owns the physical
/// page layout of the dataset (its PageStore) and answers range queries
/// at page granularity: the engine then reads those pages (cache or
/// simulated disk) and filters objects against the region.
///
/// SCOUT "can be used with any spatial index as long as it can execute
/// spatial range queries" (paper §4); SCOUT-OPT additionally requires the
/// neighborhood capability below (paper §6, FLAT / DLS).
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  virtual std::string_view name() const = 0;

  /// The physical page layout this index created.
  virtual const PageStore& store() const = 0;

  /// Appends the ids of all pages whose bounds intersect `region`.
  /// Deterministic order (index-specific).
  virtual void QueryPages(const Region& region,
                          std::vector<PageId>* out) const = 0;

  /// True if the index maintains page-neighborhood information and can
  /// retrieve result pages in a controlled spatial order (paper §6.1).
  virtual bool SupportsNeighborhood() const { return false; }

  /// Pages physically adjacent in space to `page` (only if
  /// SupportsNeighborhood()). Default implementation returns an empty
  /// list.
  virtual const std::vector<PageId>& PageNeighbors(PageId page) const;

  /// Appends result pages ordered so that pages close to `start` come
  /// first. The default implementation queries and sorts by distance of
  /// the page bounds to `start`; neighborhood indexes override this with
  /// a seed-and-crawl traversal.
  virtual void QueryPagesOrdered(const Region& region, const Vec3& start,
                                 std::vector<PageId>* out) const;

  /// Id of the page whose bounds are nearest to `p`, or kInvalidPageId if
  /// the index is empty. Used to seed crawls.
  virtual PageId NearestPage(const Vec3& p) const = 0;
};

}  // namespace scout

