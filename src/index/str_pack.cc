#include "index/str_pack.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace scout {

std::vector<size_t> StrOrder(const std::vector<Vec3>& points,
                             size_t capacity) {
  const size_t n = points.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (n == 0 || capacity == 0) return order;

  const size_t num_leaves = (n + capacity - 1) / capacity;
  // Number of x-slabs: ceil(P^(1/3)); each slab is split into
  // ceil((P/sx)^(1/2)) y-runs; runs are packed along z.
  const size_t sx = static_cast<size_t>(
      std::ceil(std::cbrt(static_cast<double>(num_leaves))));
  const size_t leaves_per_slab = (num_leaves + sx - 1) / sx;
  const size_t sy = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaves_per_slab))));
  const size_t slab_size = leaves_per_slab * capacity;
  const size_t run_size =
      ((leaves_per_slab + sy - 1) / sy) * capacity;

  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return points[a].x < points[b].x;
  });

  for (size_t slab_start = 0; slab_start < n; slab_start += slab_size) {
    const size_t slab_end = std::min(slab_start + slab_size, n);
    std::sort(order.begin() + slab_start, order.begin() + slab_end,
              [&](size_t a, size_t b) { return points[a].y < points[b].y; });
    for (size_t run_start = slab_start; run_start < slab_end;
         run_start += run_size) {
      const size_t run_end = std::min(run_start + run_size, slab_end);
      std::sort(order.begin() + run_start, order.begin() + run_end,
                [&](size_t a, size_t b) {
                  return points[a].z < points[b].z;
                });
    }
  }
  return order;
}

}  // namespace scout
