#include "index/box_rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace scout {

void BoxRTree::BulkLoad(std::vector<Aabb> boxes,
                        std::vector<uint32_t> payloads) {
  assert(boxes.size() == payloads.size());
  nodes_.clear();
  entry_boxes_ = std::move(boxes);
  entry_payloads_ = std::move(payloads);
  leaf_count_ = entry_boxes_.size();
  if (leaf_count_ == 0) return;

  // Level 0: leaf nodes covering runs of kFanout entries.
  std::vector<uint32_t> level;
  for (size_t start = 0; start < leaf_count_; start += kFanout) {
    const size_t end = std::min(start + kFanout, leaf_count_);
    Node node;
    node.is_leaf = true;
    node.first_child = static_cast<uint32_t>(start);
    node.count = static_cast<uint32_t>(end - start);
    node.entry_begin = static_cast<uint32_t>(start);
    node.entry_end = static_cast<uint32_t>(end);
    for (size_t i = start; i < end; ++i) node.bounds.Extend(entry_boxes_[i]);
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }
  // Build upper levels until a single root remains.
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t start = 0; start < level.size(); start += kFanout) {
      const size_t end = std::min(start + kFanout, level.size());
      Node node;
      node.is_leaf = false;
      node.first_child = level[start];
      node.count = static_cast<uint32_t>(end - start);
      node.entry_begin = nodes_[level[start]].entry_begin;
      node.entry_end = nodes_[level[end - 1]].entry_end;
      for (size_t i = start; i < end; ++i) {
        node.bounds.Extend(nodes_[level[i]].bounds);
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
    level = std::move(next);
  }
  root_ = level[0];
}

template <typename Overlaps, typename Contains>
void BoxRTree::Walk(const Overlaps& overlaps, const Contains& contains,
                    std::vector<uint32_t>* out) const {
  if (leaf_count_ == 0) return;
  out->reserve(out->size() + kFanout);
  // Iterative DFS over a fixed stack (no per-query allocation). Children
  // are pushed in reverse so entries are emitted in bulk-load order.
  uint32_t stack[kMaxTraversalStack];
  size_t top = 0;
  stack[top++] = root_;
  while (top > 0) {
    const Node& node = nodes_[stack[--top]];
    if (!overlaps(node.bounds)) continue;
    if (contains(node.bounds)) {
      // Whole subtree inside the query: batch-append its entry run.
      out->insert(out->end(), entry_payloads_.begin() + node.entry_begin,
                  entry_payloads_.begin() + node.entry_end);
      continue;
    }
    if (node.is_leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t entry = node.first_child + i;
        if (overlaps(entry_boxes_[entry])) {
          out->push_back(entry_payloads_[entry]);
        }
      }
    } else {
      assert(top + node.count <= kMaxTraversalStack);
      for (uint32_t i = node.count; i > 0; --i) {
        stack[top++] = node.first_child + i - 1;
      }
    }
  }
}

void BoxRTree::Query(const Region& region, std::vector<uint32_t>* out) const {
  if (region.is_box()) {
    // Skip the per-node variant dispatch for the common cube aspect.
    Query(region.box(), out);
    return;
  }
  // Frustum aspect: bind the frustum once so the walk hits the p-vertex
  // fast path directly instead of re-dispatching the variant per node.
  const Frustum& frustum = region.frustum();
  Walk([&](const Aabb& b) { return frustum.Intersects(b); },
       [&](const Aabb& b) { return frustum.ContainsBox(b); }, out);
}

void BoxRTree::Query(const Aabb& box, std::vector<uint32_t>* out) const {
  if (box.IsEmpty()) return;
  // Entry and node boxes are never empty (they bound real objects), and
  // the query box was just checked, so the per-box IsEmpty gates inside
  // Aabb::Intersects/Contains can be hoisted out of the walk.
  const Vec3 qmin = box.min();
  const Vec3 qmax = box.max();
  Walk(
      [&](const Aabb& b) {
        return qmin.x <= b.max().x && qmax.x >= b.min().x &&
               qmin.y <= b.max().y && qmax.y >= b.min().y &&
               qmin.z <= b.max().z && qmax.z >= b.min().z;
      },
      [&](const Aabb& b) {
        return qmin.x <= b.min().x && qmax.x >= b.max().x &&
               qmin.y <= b.min().y && qmax.y >= b.max().y &&
               qmin.z <= b.min().z && qmax.z >= b.max().z;
      },
      out);
}

bool BoxRTree::Nearest(const Vec3& p, uint32_t* payload) const {
  if (leaf_count_ == 0) return false;
  // Best-first search over node distances.
  struct Item {
    double dist;
    uint32_t index;
    bool is_entry;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.push({nodes_[root_].bounds.DistanceSquaredTo(p), root_, false});
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    if (item.is_entry) {
      *payload = entry_payloads_[item.index];
      return true;
    }
    const Node& node = nodes_[item.index];
    if (node.is_leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t entry = node.first_child + i;
        heap.push({entry_boxes_[entry].DistanceSquaredTo(p), entry, true});
      }
    } else {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t child = node.first_child + i;
        heap.push({nodes_[child].bounds.DistanceSquaredTo(p), child, false});
      }
    }
  }
  return false;
}

}  // namespace scout
