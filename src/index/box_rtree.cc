#include "index/box_rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace scout {

void BoxRTree::BulkLoad(std::vector<Aabb> boxes,
                        std::vector<uint32_t> payloads, size_t fanout) {
  assert(boxes.size() == payloads.size());
  // A fanout below 2 cannot shrink the level list (the upper-level build
  // would loop forever growing nodes_); clamp hard rather than relying
  // on a compiled-out assert now that the knob is public API.
  fanout = std::max<size_t>(2, fanout);
  nodes_.clear();
  slot_min_x_.clear();
  slot_min_y_.clear();
  slot_min_z_.clear();
  slot_max_x_.clear();
  slot_max_y_.clear();
  slot_max_z_.clear();
  entry_boxes_ = std::move(boxes);
  entry_payloads_ = std::move(payloads);
  leaf_count_ = entry_boxes_.size();
  fanout_ = fanout;
  if (leaf_count_ == 0) return;

  // Level 0: leaf nodes covering runs of `fanout` entries.
  std::vector<uint32_t> level;
  for (size_t start = 0; start < leaf_count_; start += fanout) {
    const size_t end = std::min(start + fanout, leaf_count_);
    Node node;
    node.is_leaf = true;
    node.first_child = static_cast<uint32_t>(start);
    node.count = static_cast<uint32_t>(end - start);
    node.entry_begin = static_cast<uint32_t>(start);
    node.entry_end = static_cast<uint32_t>(end);
    for (size_t i = start; i < end; ++i) node.bounds.Extend(entry_boxes_[i]);
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }
  // Build upper levels until a single root remains.
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t start = 0; start < level.size(); start += fanout) {
      const size_t end = std::min(start + fanout, level.size());
      Node node;
      node.is_leaf = false;
      node.first_child = level[start];
      node.count = static_cast<uint32_t>(end - start);
      node.entry_begin = nodes_[level[start]].entry_begin;
      node.entry_end = nodes_[level[end - 1]].entry_end;
      for (size_t i = start; i < end; ++i) {
        node.bounds.Extend(nodes_[level[i]].bounds);
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
    level = std::move(next);
  }
  root_ = level[0];
  // The contained-subtree stack tag claims the node index MSB.
  assert(nodes_.size() < kContainedTag);

  // Pack every node's child AABBs into contiguous SoA slots, in child
  // order: entry boxes for leaves, child-node bounds for internal nodes.
  // The walk only ever touches these six flat arrays (plus payloads),
  // never the Aabb members scattered across Node structs.
  size_t total_slots = 0;
  for (const Node& node : nodes_) total_slots += node.count;
  slot_min_x_.reserve(total_slots);
  slot_min_y_.reserve(total_slots);
  slot_min_z_.reserve(total_slots);
  slot_max_x_.reserve(total_slots);
  slot_max_y_.reserve(total_slots);
  slot_max_z_.reserve(total_slots);
  for (Node& node : nodes_) {
    node.slot_begin = static_cast<uint32_t>(slot_min_x_.size());
    for (uint32_t i = 0; i < node.count; ++i) {
      const Aabb& box = node.is_leaf
                            ? entry_boxes_[node.entry_begin + i]
                            : nodes_[node.first_child + i].bounds;
      slot_min_x_.push_back(box.min().x);
      slot_min_y_.push_back(box.min().y);
      slot_min_z_.push_back(box.min().z);
      slot_max_x_.push_back(box.max().x);
      slot_max_y_.push_back(box.max().y);
      slot_max_z_.push_back(box.max().z);
    }
  }
}

template <typename OverlapsSlot, typename ContainsSlot>
void BoxRTree::Walk(const OverlapsSlot& overlaps, const ContainsSlot& contains,
                    std::vector<uint32_t>* out) const {
  if (leaf_count_ == 0) return;
  out->reserve(out->size() + fanout_);
  // Iterative DFS: a popped node tests all of its children in one flat
  // SoA loop and pushes the overlapping ones in reverse, so entries come
  // out in bulk-load order. Subtrees the query fully contains are pushed
  // with the contained tag and batch-append their entry run on pop. The
  // root is expanded unconditionally (its bounds are not in any slot);
  // if the query misses the tree entirely, its child tests all fail.
  uint32_t inline_stack[kMaxTraversalStack];
  uint32_t* stack = inline_stack;
  size_t capacity = kMaxTraversalStack;
  std::vector<uint32_t> heap;  // Engaged only by the spill guard below.
  size_t top = 0;
  stack[top++] = root_;
  while (top > 0) {
    const uint32_t item = stack[--top];
    const Node& node = nodes_[item & ~kContainedTag];
    if (item & kContainedTag) {
      // Whole subtree inside the query: batch-append its entry run.
      out->insert(out->end(), entry_payloads_.begin() + node.entry_begin,
                  entry_payloads_.begin() + node.entry_end);
      continue;
    }
    const uint32_t base = node.slot_begin;
    if (node.is_leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        if (overlaps(base + i)) {
          out->push_back(entry_payloads_[node.entry_begin + i]);
        }
      }
      continue;
    }
    if (top + node.count > capacity) {
      // Spill guard: a node is about to push more children than the
      // remaining fixed-stack capacity. The static bound makes this
      // unreachable for default-fanout trees (asserted); degenerate
      // runtime fanouts fall back to a heap-backed stack.
      assert(fanout_ != kFanout &&
             "default-fanout tree overflowed the static traversal bound");
      if (heap.empty()) heap.assign(stack, stack + top);
      heap.resize(std::max<size_t>(2 * capacity, top + node.count));
      stack = heap.data();
      capacity = heap.size();
    }
    for (uint32_t i = node.count; i > 0; --i) {
      const uint32_t slot = base + i - 1;
      if (overlaps(slot)) {
        const uint32_t child = node.first_child + i - 1;
        stack[top++] = contains(slot) ? (child | kContainedTag) : child;
      }
    }
  }
}

void BoxRTree::Query(const Region& region, std::vector<uint32_t>* out) const {
  if (region.is_box()) {
    // Skip the per-node variant dispatch for the common cube aspect.
    Query(region.box(), out);
    return;
  }
  // Frustum aspect: bind the frustum once so the walk hits the p-vertex
  // fast path directly instead of re-dispatching the variant per node.
  // The walk applies the prefiltered test (Frustum::IntersectsPrefiltered
  // semantics, seed2 baselines): the corner-hull AABB rejection runs
  // directly over the flat slot arrays, and only hull survivors pay the
  // six-plane test.
  const Frustum& frustum = region.frustum();
  const Vec3 hmin = frustum.Bounds().min();
  const Vec3 hmax = frustum.Bounds().max();
  const double* sminx = slot_min_x_.data();
  const double* sminy = slot_min_y_.data();
  const double* sminz = slot_min_z_.data();
  const double* smaxx = slot_max_x_.data();
  const double* smaxy = slot_max_y_.data();
  const double* smaxz = slot_max_z_.data();
  const auto slot_box = [&](uint32_t s) {
    return Aabb(Vec3(sminx[s], sminy[s], sminz[s]),
                Vec3(smaxx[s], smaxy[s], smaxz[s]));
  };
  Walk(
      [&](uint32_t s) {
        if (smaxx[s] < hmin.x || sminx[s] > hmax.x || smaxy[s] < hmin.y ||
            sminy[s] > hmax.y || smaxz[s] < hmin.z || sminz[s] > hmax.z) {
          return false;
        }
        return frustum.Intersects(slot_box(s));
      },
      [&](uint32_t s) { return frustum.ContainsBox(slot_box(s)); }, out);
}

void BoxRTree::Query(const Aabb& box, std::vector<uint32_t>* out) const {
  if (box.IsEmpty()) return;
  // Slot boxes are never empty (they bound real objects), and the query
  // box was just checked, so the per-box IsEmpty gates inside
  // Aabb::Intersects/Contains can be hoisted out of the walk. The
  // comparisons read nothing but the six flat slot arrays.
  const Vec3 qmin = box.min();
  const Vec3 qmax = box.max();
  const double* sminx = slot_min_x_.data();
  const double* sminy = slot_min_y_.data();
  const double* sminz = slot_min_z_.data();
  const double* smaxx = slot_max_x_.data();
  const double* smaxy = slot_max_y_.data();
  const double* smaxz = slot_max_z_.data();
  Walk(
      [&](uint32_t s) {
        return qmin.x <= smaxx[s] && qmax.x >= sminx[s] &&
               qmin.y <= smaxy[s] && qmax.y >= sminy[s] &&
               qmin.z <= smaxz[s] && qmax.z >= sminz[s];
      },
      [&](uint32_t s) {
        return qmin.x <= sminx[s] && qmax.x >= smaxx[s] &&
               qmin.y <= sminy[s] && qmax.y >= smaxy[s] &&
               qmin.z <= sminz[s] && qmax.z >= smaxz[s];
      },
      out);
}

bool BoxRTree::Nearest(const Vec3& p, uint32_t* payload) const {
  if (leaf_count_ == 0) return false;
  // Best-first search over node distances.
  struct Item {
    double dist;
    uint32_t index;
    bool is_entry;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.push({nodes_[root_].bounds.DistanceSquaredTo(p), root_, false});
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    if (item.is_entry) {
      *payload = entry_payloads_[item.index];
      return true;
    }
    const Node& node = nodes_[item.index];
    if (node.is_leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t entry = node.first_child + i;
        heap.push({entry_boxes_[entry].DistanceSquaredTo(p), entry, true});
      }
    } else {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t child = node.first_child + i;
        heap.push({nodes_[child].bounds.DistanceSquaredTo(p), child, false});
      }
    }
  }
  return false;
}

}  // namespace scout
