#include "index/box_rtree.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <queue>

#include "common/simd.h"

namespace scout {

// The blocked slot layout packs one SIMD lane group per block; if the
// wrapper's lane width ever changes, the layout must follow.
static_assert(BoxRTree::kSlotGroup == simd::kLanes);

namespace {

// Bits [0, count) set, for count in [0, 64].
inline uint64_t FullMask(uint32_t count) {
  return count >= 64 ? ~0ull : (1ull << count) - 1;
}

}  // namespace

void BoxRTree::BulkLoad(std::vector<Aabb> boxes,
                        std::vector<uint32_t> payloads, size_t fanout) {
  assert(boxes.size() == payloads.size());
  // A fanout below 2 cannot shrink the level list (the upper-level build
  // would loop forever growing nodes_); clamp hard rather than relying
  // on a compiled-out assert now that the knob is public API.
  fanout = std::max<size_t>(2, fanout);
  nodes_.clear();
  slot_blocks_.clear();
  entry_boxes_ = std::move(boxes);
  entry_payloads_ = std::move(payloads);
  leaf_count_ = entry_boxes_.size();
  fanout_ = fanout;
  if (leaf_count_ == 0) return;

  // Level 0: leaf nodes covering runs of `fanout` entries.
  std::vector<uint32_t> level;
  for (size_t start = 0; start < leaf_count_; start += fanout) {
    const size_t end = std::min(start + fanout, leaf_count_);
    Node node;
    node.is_leaf = true;
    node.first_child = static_cast<uint32_t>(start);
    node.count = static_cast<uint32_t>(end - start);
    node.entry_begin = static_cast<uint32_t>(start);
    node.entry_end = static_cast<uint32_t>(end);
    for (size_t i = start; i < end; ++i) node.bounds.Extend(entry_boxes_[i]);
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }
  // Build upper levels until a single root remains.
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t start = 0; start < level.size(); start += fanout) {
      const size_t end = std::min(start + fanout, level.size());
      Node node;
      node.is_leaf = false;
      node.first_child = level[start];
      node.count = static_cast<uint32_t>(end - start);
      node.entry_begin = nodes_[level[start]].entry_begin;
      node.entry_end = nodes_[level[end - 1]].entry_end;
      for (size_t i = start; i < end; ++i) {
        node.bounds.Extend(nodes_[level[i]].bounds);
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
    level = std::move(next);
  }
  root_ = level[0];
  // The contained-subtree stack tag claims the node index MSB.
  assert(nodes_.size() < kContainedTag);

  // Pack every node's child AABBs into contiguous blocked-SoA slots, in
  // child order: entry boxes for leaves, child-node bounds for internal
  // nodes. The walk only ever touches this one flat array (plus
  // payloads), never the Aabb members scattered across Node structs, so
  // each leaf scan is a single sequential cache stream. Every node's
  // slot run is padded up to a whole number of kSlotGroup-wide blocks
  // with inverted sentinel boxes (min = +huge, max = -huge): the SIMD
  // lane loads never cross into another node's slots, sentinel lanes
  // fail every overlap compare, and the mask functors clear tail bits
  // regardless.
  size_t total_slots = 0;
  for (const Node& node : nodes_) {
    total_slots += (node.count + kSlotGroup - 1) / kSlotGroup * kSlotGroup;
  }
  slot_blocks_.reserve(total_slots * 6);
  uint32_t next_slot = 0;
  for (Node& node : nodes_) {
    node.slot_begin = next_slot;
    const uint32_t padded =
        (node.count + kSlotGroup - 1) / kSlotGroup * kSlotGroup;
    next_slot += padded;
    for (uint32_t g = 0; g < padded; g += kSlotGroup) {
      for (int comp = 0; comp < 6; ++comp) {
        for (uint32_t lane = 0; lane < kSlotGroup; ++lane) {
          const uint32_t i = g + lane;
          if (i >= node.count) {
            slot_blocks_.push_back(comp < 3
                                       ? std::numeric_limits<double>::max()
                                       : std::numeric_limits<double>::lowest());
            continue;
          }
          const Aabb& box = node.is_leaf
                                ? entry_boxes_[node.entry_begin + i]
                                : nodes_[node.first_child + i].bounds;
          const Vec3& corner = comp < 3 ? box.min() : box.max();
          slot_blocks_.push_back(comp % 3 == 0   ? corner.x
                                 : comp % 3 == 1 ? corner.y
                                                 : corner.z);
        }
      }
    }
  }
}

template <typename NodeMasks>
void BoxRTree::Walk(const NodeMasks& masks, std::vector<uint32_t>* out) const {
  if (leaf_count_ == 0) return;
  out->reserve(out->size() + fanout_);
  // Iterative DFS: a popped node tests all of its children as lane-group
  // bitmasks over the flat SoA slots and pushes the overlapping ones in
  // descending bit order, so entries come out in bulk-load order.
  // Subtrees the query fully contains are pushed with the contained tag
  // and batch-append their entry run on pop. The root is expanded
  // unconditionally (its bounds are not in any slot); if the query
  // misses the tree entirely, its child masks all come back zero.
  // Degenerate runtime fanouts above 64 are chunked into <= 64-child
  // mask groups (ascending for leaves, descending for pushes).
  uint32_t inline_stack[kMaxTraversalStack];
  uint32_t* stack = inline_stack;
  size_t capacity = kMaxTraversalStack;
  std::vector<uint32_t> heap;  // Engaged only by the spill guard below.
  size_t top = 0;
  stack[top++] = root_;
  while (top > 0) {
    const uint32_t item = stack[--top];
    const Node& node = nodes_[item & ~kContainedTag];
    if (item & kContainedTag) {
      // Whole subtree inside the query: batch-append its entry run.
      out->insert(out->end(), entry_payloads_.begin() + node.entry_begin,
                  entry_payloads_.begin() + node.entry_end);
      continue;
    }
    if (node.is_leaf) {
      const uint32_t* run = entry_payloads_.data() + node.entry_begin;
      for (uint32_t chunk = 0; chunk < node.count; chunk += 64) {
        const uint32_t ccount = std::min<uint32_t>(64, node.count - chunk);
        uint64_t overlap = 0;
        uint64_t contain = 0;
        masks(node.slot_begin + chunk, ccount, /*want_contain=*/false,
              &overlap, &contain);
        if (overlap == 0) continue;
        const uint32_t* chunk_run = run + chunk;
        if (overlap == FullMask(ccount)) {
          // Every entry matched: one batch append, no bit iteration.
          out->insert(out->end(), chunk_run, chunk_run + ccount);
          continue;
        }
        const size_t write = out->size();
        out->resize(write + static_cast<size_t>(std::popcount(overlap)));
        uint32_t* dst = out->data() + write;
        while (overlap != 0) {
          *dst++ = chunk_run[std::countr_zero(overlap)];
          overlap &= overlap - 1;
        }
      }
      continue;
    }
    if (top + node.count > capacity) {
      // Spill guard: a node is about to push more children than the
      // remaining fixed-stack capacity. The static bound makes this
      // unreachable for default-fanout trees (asserted); degenerate
      // runtime fanouts fall back to a heap-backed stack.
      assert(fanout_ != kFanout &&
             "default-fanout tree overflowed the static traversal bound");
      if (heap.empty()) heap.assign(stack, stack + top);
      heap.resize(std::max<size_t>(2 * capacity, top + node.count));
      stack = heap.data();
      capacity = heap.size();
    }
    const uint32_t num_chunks = (node.count + 63) / 64;
    for (uint32_t ci = num_chunks; ci > 0; --ci) {
      const uint32_t chunk = (ci - 1) * 64;
      const uint32_t ccount = std::min<uint32_t>(64, node.count - chunk);
      uint64_t overlap = 0;
      uint64_t contain = 0;
      masks(node.slot_begin + chunk, ccount, /*want_contain=*/true, &overlap,
            &contain);
      const uint32_t child_base = node.first_child + chunk;
      while (overlap != 0) {
        const int i = 63 - std::countl_zero(overlap);
        overlap &= ~(1ull << i);
        const uint32_t child = child_base + static_cast<uint32_t>(i);
        stack[top++] = ((contain >> i) & 1) ? (child | kContainedTag) : child;
      }
    }
  }
}

void BoxRTree::Query(const Region& region, std::vector<uint32_t>* out) const {
  if (region.is_box()) {
    // Skip the per-node variant dispatch for the common cube aspect.
    Query(region.box(), out);
    return;
  }
  // Frustum aspect: bind the frustum once so the walk hits the p-vertex
  // fast path directly instead of re-dispatching the variant per node.
  // The walk applies the prefiltered test (Frustum::IntersectsPrefiltered
  // semantics, seed2 baselines): the corner-hull AABB rejection runs
  // directly over the flat slot arrays, and only hull survivors pay the
  // six-plane test.
  const Frustum& frustum = region.frustum();
  const double* blocks = slot_blocks_.data();
  const auto slot_box = [&](uint32_t s) {
    const double* blk = blocks + (s & ~(kSlotGroup - 1)) * 6;
    const uint32_t lane = s & (kSlotGroup - 1);
    return Aabb(Vec3(blk[lane], blk[kSlotGroup + lane],
                     blk[2 * kSlotGroup + lane]),
                Vec3(blk[3 * kSlotGroup + lane], blk[4 * kSlotGroup + lane],
                     blk[5 * kSlotGroup + lane]));
  };
  Walk(
      [&](uint32_t base, uint32_t count, bool want_contain, uint64_t* overlap,
          uint64_t* contain) {
        // Hull-reject the whole lane group in one SIMD pass, then run the
        // exact plane test only on hull survivors — the same accept set,
        // in the same per-slot order, as the scalar prefiltered chain.
        uint64_t hull = frustum.HullOverlapBits(blocks, base, count);
        uint64_t o = 0;
        while (hull != 0) {
          const int i = std::countr_zero(hull);
          hull &= hull - 1;
          if (frustum.Intersects(slot_box(base + i))) o |= 1ull << i;
        }
        *overlap = o;
        if (want_contain) {
          uint64_t c = 0;
          while (o != 0) {
            const int i = std::countr_zero(o);
            o &= o - 1;
            if (frustum.ContainsBox(slot_box(base + i))) c |= 1ull << i;
          }
          *contain = c;
        }
      },
      out);
}

void BoxRTree::Query(const Aabb& box, std::vector<uint32_t>* out) const {
  if (box.IsEmpty()) return;
  // Slot boxes are never empty (they bound real objects), and the query
  // box was just checked, so the per-box IsEmpty gates inside
  // Aabb::Intersects/Contains can be hoisted out of the walk. The
  // comparisons read nothing but the flat slot-block array.
  const Vec3 qmin = box.min();
  const Vec3 qmax = box.max();
  const double* blocks = slot_blocks_.data();
  const simd::Vec4d bqminx = simd::Broadcast(qmin.x);
  const simd::Vec4d bqminy = simd::Broadcast(qmin.y);
  const simd::Vec4d bqminz = simd::Broadcast(qmin.z);
  const simd::Vec4d bqmaxx = simd::Broadcast(qmax.x);
  const simd::Vec4d bqmaxy = simd::Broadcast(qmax.y);
  const simd::Vec4d bqmaxz = simd::Broadcast(qmax.z);
  Walk(
      [&](uint32_t base, uint32_t count, bool want_contain, uint64_t* overlap,
          uint64_t* contain) {
        // Same interval compares as the scalar walk, four slots per step
        // streaming one 24-double block per group; per-node sentinel
        // padding keeps tail lanes inert and the final FullMask clears
        // any bits beyond the node's children.
        uint64_t o = 0;
        uint64_t c = 0;
        const double* blk = blocks + base * 6;
        for (uint32_t g = 0; g < count; g += simd::kLanes, blk += 24) {
          const simd::Vec4d sminx = simd::Load(blk);
          const simd::Vec4d sminy = simd::Load(blk + 4);
          const simd::Vec4d sminz = simd::Load(blk + 8);
          const simd::Vec4d smaxx = simd::Load(blk + 12);
          const simd::Vec4d smaxy = simd::Load(blk + 16);
          const simd::Vec4d smaxz = simd::Load(blk + 20);
          const simd::Mask4 mo =
              simd::And(simd::And(simd::And(simd::CmpLe(bqminx, smaxx),
                                            simd::CmpGe(bqmaxx, sminx)),
                                  simd::And(simd::CmpLe(bqminy, smaxy),
                                            simd::CmpGe(bqmaxy, sminy))),
                        simd::And(simd::CmpLe(bqminz, smaxz),
                                  simd::CmpGe(bqmaxz, sminz)));
          const uint32_t ob = simd::Bits(mo);
          o |= static_cast<uint64_t>(ob) << g;
          // Containment can only hold where overlap does, so groups with
          // no overlapping lane skip the second mask entirely.
          if (want_contain && ob != 0) {
            const simd::Mask4 mc =
                simd::And(simd::And(simd::And(simd::CmpLe(bqminx, sminx),
                                              simd::CmpGe(bqmaxx, smaxx)),
                                    simd::And(simd::CmpLe(bqminy, sminy),
                                              simd::CmpGe(bqmaxy, smaxy))),
                          simd::And(simd::CmpLe(bqminz, sminz),
                                    simd::CmpGe(bqmaxz, smaxz)));
            c |= static_cast<uint64_t>(simd::Bits(mc)) << g;
          }
        }
        *overlap = o & FullMask(count);
        *contain = c & FullMask(count);
      },
      out);
}

bool BoxRTree::Nearest(const Vec3& p, uint32_t* payload) const {
  if (leaf_count_ == 0) return false;
  // Best-first search over node distances.
  struct Item {
    double dist;
    uint32_t index;
    bool is_entry;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.push({nodes_[root_].bounds.DistanceSquaredTo(p), root_, false});
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    if (item.is_entry) {
      *payload = entry_payloads_[item.index];
      return true;
    }
    const Node& node = nodes_[item.index];
    if (node.is_leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t entry = node.first_child + i;
        heap.push({entry_boxes_[entry].DistanceSquaredTo(p), entry, true});
      }
    } else {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t child = node.first_child + i;
        heap.push({nodes_[child].bounds.DistanceSquaredTo(p), child, false});
      }
    }
  }
  return false;
}

}  // namespace scout
