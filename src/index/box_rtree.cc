#include "index/box_rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace scout {

void BoxRTree::BulkLoad(std::vector<Aabb> boxes,
                        std::vector<uint32_t> payloads) {
  assert(boxes.size() == payloads.size());
  nodes_.clear();
  entry_boxes_ = std::move(boxes);
  entry_payloads_ = std::move(payloads);
  leaf_count_ = entry_boxes_.size();
  if (leaf_count_ == 0) return;

  // Level 0: leaf nodes covering runs of kFanout entries.
  std::vector<uint32_t> level;
  for (size_t start = 0; start < leaf_count_; start += kFanout) {
    const size_t end = std::min(start + kFanout, leaf_count_);
    Node node;
    node.is_leaf = true;
    node.first_child = static_cast<uint32_t>(start);
    node.count = static_cast<uint32_t>(end - start);
    for (size_t i = start; i < end; ++i) node.bounds.Extend(entry_boxes_[i]);
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }
  // Build upper levels until a single root remains.
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t start = 0; start < level.size(); start += kFanout) {
      const size_t end = std::min(start + kFanout, level.size());
      Node node;
      node.is_leaf = false;
      node.first_child = level[start];
      node.count = static_cast<uint32_t>(end - start);
      for (size_t i = start; i < end; ++i) {
        node.bounds.Extend(nodes_[level[i]].bounds);
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
    level = std::move(next);
  }
  root_ = level[0];
}

template <typename Visitor>
void BoxRTree::Visit(const Visitor& visit_entry, const Region* region,
                     const Aabb* box) const {
  if (leaf_count_ == 0) return;
  auto overlaps = [&](const Aabb& b) {
    return region != nullptr ? region->Intersects(b) : box->Intersects(b);
  };
  std::vector<uint32_t> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!overlaps(node.bounds)) continue;
    if (node.is_leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t entry = node.first_child + i;
        if (overlaps(entry_boxes_[entry])) {
          visit_entry(entry_payloads_[entry]);
        }
      }
    } else {
      // Children of an internal node are contiguous node indices.
      for (uint32_t i = 0; i < node.count; ++i) {
        stack.push_back(node.first_child + i);
      }
    }
  }
}

void BoxRTree::Query(const Region& region, std::vector<uint32_t>* out) const {
  Visit([&](uint32_t payload) { out->push_back(payload); }, &region, nullptr);
}

void BoxRTree::Query(const Aabb& box, std::vector<uint32_t>* out) const {
  Visit([&](uint32_t payload) { out->push_back(payload); }, nullptr, &box);
}

bool BoxRTree::Nearest(const Vec3& p, uint32_t* payload) const {
  if (leaf_count_ == 0) return false;
  // Best-first search over node distances.
  struct Item {
    double dist;
    uint32_t index;
    bool is_entry;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.push({nodes_[root_].bounds.DistanceSquaredTo(p), root_, false});
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    if (item.is_entry) {
      *payload = entry_payloads_[item.index];
      return true;
    }
    const Node& node = nodes_[item.index];
    if (node.is_leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t entry = node.first_child + i;
        heap.push({entry_boxes_[entry].DistanceSquaredTo(p), entry, true});
      }
    } else {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t child = node.first_child + i;
        heap.push({nodes_[child].bounds.DistanceSquaredTo(p), child, false});
      }
    }
  }
  return false;
}

}  // namespace scout
