#include "index/flat_index.h"

#include <algorithm>
#include <queue>
#include <unordered_set>
#include <utility>

#include "geom/hilbert.h"

namespace scout {

StatusOr<std::unique_ptr<FlatIndex>> FlatIndex::Build(
    std::vector<SpatialObject> objects, const FlatIndexConfig& config) {
  auto index = std::unique_ptr<FlatIndex>(new FlatIndex());

  Aabb dataset_bounds;
  for (const SpatialObject& obj : objects) dataset_bounds.Extend(obj.Bounds());

  // Order objects along the Hilbert curve of their centroids.
  std::vector<size_t> order(objects.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<uint64_t> keys(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    keys[i] = HilbertIndexOfPoint(objects[i].Centroid(), dataset_bounds,
                                  config.hilbert_bits);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return objects[a].id < objects[b].id;
  });

  std::vector<SpatialObject> page_objects;
  page_objects.reserve(kPageCapacity);
  for (size_t i = 0; i < order.size(); ++i) {
    page_objects.push_back(std::move(objects[order[i]]));
    if (page_objects.size() == kPageCapacity || i + 1 == order.size()) {
      StatusOr<PageId> page = index->store_.AppendPage(std::move(page_objects));
      if (!page.ok()) return page.status();
      page_objects.clear();
      page_objects.reserve(kPageCapacity);
    }
  }

  std::vector<Aabb> boxes;
  std::vector<uint32_t> payloads;
  boxes.reserve(index->store_.NumPages());
  payloads.reserve(index->store_.NumPages());
  for (const Page& page : index->store_.pages()) {
    boxes.push_back(page.bounds);
    payloads.push_back(page.id);
  }
  index->directory_.BulkLoad(std::move(boxes), std::move(payloads));
  index->BuildNeighbors(config.neighbor_margin);
  return index;
}

void FlatIndex::BuildNeighbors(double margin) {
  const size_t n = store_.NumPages();
  neighbors_.assign(n, {});
  std::vector<uint32_t> hits;
  for (PageId p = 0; p < n; ++p) {
    hits.clear();
    directory_.Query(store_.page(p).bounds.Expanded(margin), &hits);
    for (uint32_t q : hits) {
      if (q != p) neighbors_[p].push_back(q);
    }
    std::sort(neighbors_[p].begin(), neighbors_[p].end());
  }
}

void FlatIndex::QueryPages(const Region& region,
                           std::vector<PageId>* out) const {
  directory_.Query(region, out);
}

PageId FlatIndex::NearestPage(const Vec3& p) const {
  uint32_t payload = kInvalidPageId;
  if (!directory_.Nearest(p, &payload)) return kInvalidPageId;
  return payload;
}

void FlatIndex::QueryPagesOrdered(const Region& region, const Vec3& start,
                                  std::vector<PageId>* out) const {
  std::vector<PageId> result;
  QueryPages(region, &result);
  if (result.empty()) return;

  // scout-lint: allow(det-unordered-container): membership set; the only
  // iteration (leftovers) is re-sorted below with a total tie-broken order.
  std::unordered_set<PageId> remaining(result.begin(), result.end());

  // Seed: the result page nearest to `start`.
  PageId seed = result[0];
  double best = store_.page(seed).bounds.DistanceSquaredTo(start);
  for (PageId p : result) {
    const double d = store_.page(p).bounds.DistanceSquaredTo(start);
    if (d < best) {
      best = d;
      seed = p;
    }
  }

  // BFS crawl through neighborhood links restricted to result pages.
  std::queue<PageId> frontier;
  frontier.push(seed);
  remaining.erase(seed);
  while (!frontier.empty()) {
    const PageId p = frontier.front();
    frontier.pop();
    out->push_back(p);
    for (PageId q : neighbors_[p]) {
      auto it = remaining.find(q);
      if (it != remaining.end()) {
        remaining.erase(it);
        frontier.push(q);
      }
    }
  }

  // Disconnected leftovers: nearest-first.
  std::vector<PageId> leftovers(remaining.begin(), remaining.end());
  std::sort(leftovers.begin(), leftovers.end(), [&](PageId a, PageId b) {
    const double da = store_.page(a).bounds.DistanceSquaredTo(start);
    const double db = store_.page(b).bounds.DistanceSquaredTo(start);
    if (da != db) return da < db;
    return a < b;
  });
  out->insert(out->end(), leftovers.begin(), leftovers.end());
}

double FlatIndex::MeanNeighborCount() const {
  if (neighbors_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& list : neighbors_) total += list.size();
  return static_cast<double>(total) / static_cast<double>(neighbors_.size());
}

}  // namespace scout
