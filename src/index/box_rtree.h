#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "geom/region.h"

namespace scout {

/// An in-memory R-tree over a fixed set of boxes with uint32 payloads,
/// bulk-loaded bottom-up. Serves as (a) the directory of the STR R-tree
/// index (payload = leaf PageId) and (b) the page directory of the FLAT
/// index. Entries are packed in the order given, so callers pre-sort
/// entries with StrOrder / Hilbert order for good tiles.
///
/// The directory is laid out for the walk, not the build: every node's
/// child AABBs live in contiguous blocked structure-of-arrays slots
/// (groups of four slots, each group storing min_x[4], min_y[4],
/// min_z[4], max_x[4], max_y[4], max_z[4] contiguously), so Query tests
/// all children of a node with SIMD lane groups streaming over a single
/// flat array instead of pointer-chasing Aabb members of scattered Node
/// structs — or striding six separate arrays, which costs six concurrent
/// cache streams per leaf instead of one.
class BoxRTree {
 public:
  static constexpr size_t kFanout = 64;

  /// Slots per blocked-SoA group; equals simd::kLanes (static_asserted
  /// in the .cc so the layout and the SIMD loads cannot drift apart).
  static constexpr uint32_t kSlotGroup = 4;

  BoxRTree() = default;

  /// Bulk loads from (box, payload) entries, packed in the given order.
  /// `fanout` defaults to kFanout; other values are a tuning/testing knob
  /// (degenerate fanouts exercise the traversal-stack spill path).
  /// Values below 2 are clamped to 2 (a unary fanout cannot terminate
  /// the bottom-up build).
  void BulkLoad(std::vector<Aabb> boxes, std::vector<uint32_t> payloads,
                size_t fanout = kFanout);

  bool empty() const { return leaf_count_ == 0; }
  size_t NumEntries() const { return leaf_count_; }

  /// Appends payloads of all entries whose box intersects the region, in
  /// bulk-load entry order (so callers that pack entries with ascending
  /// payloads — both index builders do — get sorted page ids for free).
  /// Subtrees fully contained in the region are batch-appended without
  /// per-entry tests.
  void Query(const Region& region, std::vector<uint32_t>* out) const;

  /// Appends payloads of all entries whose box intersects `box`, in
  /// bulk-load entry order.
  void Query(const Aabb& box, std::vector<uint32_t>* out) const;

  /// Payload of the entry whose box is nearest to `p` (by box distance;
  /// ties broken by payload order). Returns false if the tree is empty.
  bool Nearest(const Vec3& p, uint32_t* payload) const;

  /// Number of tree nodes (for memory accounting in benches).
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    Aabb bounds;
    // Children are contiguous: [first_child, first_child + count) indices
    // into nodes_ (internal) or into entry arrays (leaf node).
    uint32_t first_child = 0;
    uint32_t count = 0;
    // Entries covered by this subtree: [entry_begin, entry_end). The STR
    // packing makes every subtree cover a contiguous entry run, which is
    // what enables batch appends of fully-contained subtrees.
    uint32_t entry_begin = 0;
    uint32_t entry_end = 0;
    // First SoA slot of this node's children: child i's AABB lives at
    // slot_begin + i of the six slot_* arrays (entry boxes for leaves,
    // child-node bounds for internal nodes).
    uint32_t slot_begin = 0;
    bool is_leaf = false;
  };

  // Inline capacity of the explicit traversal stack: at most
  // ceil(32 / log2(kFanout)) + 1 levels for 2^32 entries, each holding at
  // most kFanout pending siblings. Tied to kFanout so raising the default
  // fanout cannot silently overflow Walk's fixed stack; trees bulk-loaded
  // with a degenerate runtime fanout spill to a heap vector instead.
  static constexpr size_t kMaxTreeLevels =
      (32 + std::bit_width(kFanout) - 2) / (std::bit_width(kFanout) - 1) + 1;
  static constexpr size_t kMaxTraversalStack = kMaxTreeLevels * kFanout;

  // Stack items are node indices; the tag marks a subtree already proven
  // fully contained in the query (batch-append its entry run on pop).
  static constexpr uint32_t kContainedTag = 0x80000000u;

  // NodeMasks computes child masks for one lane group of a node:
  // masks(base, count, want_contain, &overlap, &contain) sets bit i of
  // *overlap iff the child AABB at SoA slot base + i intersects the
  // query, and (only when want_contain) bit i of *contain iff the query
  // fully contains it; count <= 64 and bits >= count must be clear. The
  // walk batch-appends full-mask leaf runs with one memcpy-style insert
  // and bit-iterates partial masks, preserving bulk-load entry order.
  template <typename NodeMasks>
  void Walk(const NodeMasks& masks, std::vector<uint32_t>* out) const;

  std::vector<Node> nodes_;
  std::vector<Aabb> entry_boxes_;  ///< AoS copy for Nearest().
  std::vector<uint32_t> entry_payloads_;
  // Child-AABB slots (blocked SoA): the walk's only per-candidate reads.
  // Every node's slot_begin is aligned to kSlotGroup (padded with inert
  // sentinel slots), and the group starting at slot s occupies the 24
  // doubles at slot_blocks_[s * 6]: min_x[4] min_y[4] min_z[4] max_x[4]
  // max_y[4] max_z[4].
  std::vector<double> slot_blocks_;
  size_t leaf_count_ = 0;
  size_t fanout_ = kFanout;
  uint32_t root_ = 0;
};

}  // namespace scout

