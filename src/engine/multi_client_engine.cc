#include "engine/multi_client_engine.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/worker_pool.h"
#include "prefetch/no_prefetch.h"

namespace scout {

using internal::RunOnPool;

uint64_t MultiClientEngine::ScaledSharedCacheBytes(
    const ExecutorConfig& config, uint32_t num_sessions) {
  const double per_session = config.serving.cache_scale_per_session;
  if (per_session <= 0.0) return config.cache_bytes;
  const double scale =
      std::max(1.0, per_session * static_cast<double>(
                                      std::max<uint32_t>(1, num_sessions)));
  return static_cast<uint64_t>(static_cast<double>(config.cache_bytes) *
                               scale);
}

MultiClientEngine::MultiClientEngine(const Dataset& dataset,
                                     const SpatialIndex& index,
                                     const PrefetcherFactory& make_prefetcher,
                                     const QuerySequenceConfig& query_config,
                                     const ExecutorConfig& executor_config,
                                     uint32_t num_sessions, uint64_t seed)
    : index_(&index),
      config_(executor_config),
      shared_cache_(
          ScaledSharedCacheBytes(executor_config,
                                 std::max<uint32_t>(1, num_sessions))),
      shared_disk_(
          DiskQueueConfig{executor_config.disk,
                          executor_config.serving.disk_channels},
          std::max<uint32_t>(1, num_sessions)) {
  // One schedule governs the whole array: the shared queue and every
  // baseline's private queue draw the same (page, channel, time) faults.
  shared_disk_.AttachFaults(executor_config.fault_schedule);
  prefetcher_name_ = std::string(make_prefetcher()->name());
  num_sessions = std::max<uint32_t>(1, num_sessions);
  sessions_.reserve(num_sessions);
  SharedDiskQueue* disk_queue =
      config_.serving.shared_disk ? &shared_disk_ : nullptr;
  Rng rng(seed);
  for (uint32_t s = 0; s < num_sessions; ++s) {
    Rng seq_rng = rng.Fork();
    sessions_.push_back(std::make_unique<ClientSession>(
        s, index_, make_prefetcher(), config_, &shared_cache_, disk_queue,
        GenerateGuidedSequence(dataset, query_config, &seq_rng)));
  }
}

MultiClientOutcome MultiClientEngine::Run(uint32_t num_workers) {
  const uint32_t n = num_sessions();
  num_workers = std::max<uint32_t>(1, num_workers);

  // Cold start: one shared-cache generation per run. Sessions must never
  // carry state across the epoch boundary, so they reset afterwards.
  shared_cache_.Clear();
  shared_cache_.ConfigureSharing(n, config_.serving.cache_quotas);
  shared_disk_.Reset();
  for (auto& session : sessions_) session->Reset();

  // ---- Phase 1 (parallel, pure): precompute every query's result pages
  // and objects. These depend only on (index, region), so any execution
  // order yields byte-identical slots.
  std::vector<std::vector<QueryExecutor::PreparedQuery>> preps(n);
  std::vector<std::pair<uint32_t, uint32_t>> flat;  // (session, step).
  for (uint32_t s = 0; s < n; ++s) {
    const size_t steps = sessions_[s]->sequence().queries.size();
    preps[s].resize(steps);
    for (size_t i = 0; i < steps; ++i) {
      flat.emplace_back(s, static_cast<uint32_t>(i));
    }
  }
  {
    // Phase 1's task shape is (session, step), so the clamp is against
    // the flat task count, not the session count.
    const uint32_t workers = static_cast<uint32_t>(std::min<size_t>(
        num_workers, std::max<size_t>(1, flat.size())));
    std::atomic<size_t> next{0};
    RunOnPool(workers, [&]() {
      while (true) {
        const size_t t = next.fetch_add(1);
        if (t >= flat.size()) return;
        const auto [s, i] = flat[t];
        QueryExecutor::Prepare(*index_,
                               sessions_[s]->sequence().queries[i],
                               &preps[s][i]);
      }
    });
  }

  // ---- Phase 1.5 (parallel, pure): precompute each session's Observe
  // graphs. Construction is a per-session dependency chain — a session's
  // Observes stay in step order — but sessions are mutually independent
  // (all graph state is per-session), so each chain runs whole on one
  // worker and sessions fan out across workers. Prefetchers whose build
  // reads sequence state (SCOUT-OPT with a neighborhood index) skip the
  // phase and keep building inside the apply loop.
  std::vector<std::vector<ObservePrep>> observe_preps(n);
  {
    const uint32_t workers = std::min(num_workers, n);
    std::atomic<uint32_t> next{0};
    RunOnPool(workers, [&]() {
      while (true) {
        const uint32_t s = next.fetch_add(1);
        if (s >= n) return;
        sessions_[s]->PrepareObserveChain(preps[s], &observe_preps[s]);
      }
    });
  }

  // ---- Phase 2 (parallel, pure): no-prefetch baselines on private
  // executor stacks. A baseline never touches the shared cache. Under
  // shared-disk serving each baseline gets a PRIVATE queue instance with
  // the same channel config, so the speedup denominator prices reads on
  // the same array — minus the cross-session contention.
  std::vector<SequenceRunStats> baselines(n);
  {
    const uint32_t workers = std::min(num_workers, n);
    std::atomic<uint32_t> next{0};
    RunOnPool(workers, [&]() {
      while (true) {
        const uint32_t s = next.fetch_add(1);
        if (s >= n) return;
        NoPrefetcher none;
        if (config_.serving.shared_disk) {
          SharedDiskQueue private_queue(shared_disk_.config(), 1);
          // The speedup denominator degrades under the same faults: the
          // schedule is stateless, so concurrent baselines may share it.
          private_queue.AttachFaults(config_.fault_schedule);
          QueryExecutor baseline(index_, &none, config_, nullptr,
                                 &private_queue, 0);
          baselines[s] = baseline.RunSequence(
              sessions_[s]->sequence().queries, preps[s]);
        } else {
          QueryExecutor baseline(index_, &none, config_);
          baselines[s] = baseline.RunSequence(
              sessions_[s]->sequence().queries, preps[s]);
        }
      }
    });
  }

  // ---- Apply loop (serial, deterministic): interleave sessions by
  // lowest next-query timestamp, ties by session id. All shared-cache
  // and disk effects happen here, in schedule order — hit and eviction
  // order is a pure function of this schedule.
  while (true) {
    ClientSession* pick = nullptr;
    for (auto& session : sessions_) {
      if (session->Done()) continue;
      if (pick == nullptr || session->next_time() < pick->next_time()) {
        pick = session.get();
      }
    }
    if (pick == nullptr) break;
    shared_cache_.SetActiveSession(pick->id());
    const uint32_t s = pick->id();
    const size_t step = pick->next_step();
    ObservePrep* observe_prep =
        observe_preps[s].empty() ? nullptr : &observe_preps[s][step];
    pick->ExecuteNext(preps[s][step], observe_prep);
  }
  shared_cache_.SetActiveSession(PrefetchCache::kNoSession);

  MultiClientOutcome outcome;
  outcome.prefetcher_name = prefetcher_name_;
  outcome.runs.reserve(n);
  for (auto& session : sessions_) outcome.runs.push_back(session->stats());
  outcome.baselines = std::move(baselines);
  outcome.cache_stats = shared_cache_.session_stats();
  outcome.disk_stats = shared_disk_.stats();
  outcome.session_disk_stats = shared_disk_.session_stats();
  return outcome;
}

}  // namespace scout
