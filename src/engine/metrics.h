#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"

namespace scout {

/// Per-query measurements taken by the executor.
struct QueryRunStats {
  size_t pages_total = 0;       ///< Result pages of the query.
  size_t pages_hit = 0;         ///< Served from the prefetch cache.
  size_t result_objects = 0;
  SimMicros residual_io_us = 0; ///< Disk time for cache misses.
  SimMicros disk_wait_us = 0;   ///< Queueing delay at the shared disk
                                ///< (residual batch + window fetches);
                                ///< 0 with a private disk model.
  SimMicros response_us = 0;    ///< Residual I/O + carried prediction
                                ///< overflow from the previous window.
  SimMicros window_us = 0;      ///< Prefetch window duration.
  SimMicros observe_us = 0;     ///< Prediction computation (simulated).
  SimMicros graph_build_us = 0; ///< Portion of observe: graph building.
  SimMicros prediction_us = 0;  ///< Portion of observe: traversal etc.
  size_t prefetch_pages = 0;    ///< Pages fetched during the window.
  size_t graph_vertices = 0;
  size_t graph_edges = 0;
  size_t graph_memory_bytes = 0;
  size_t num_candidates = 0;
  bool was_reset = false;
  /// Priced admission control rejected a prefetch insert and closed this
  /// query's window early (shared-cache QoS only).
  bool admission_closed_window = false;
  int64_t wall_graph_build_us = 0;
  int64_t wall_prediction_us = 0;

  // ---- Degraded-mode serving (fault injection) ----------------------
  /// kOk, or kDeadlineExceeded / kUnavailable when the query exhausted
  /// its deadline budget / retry budget. Partial results are still
  /// accounted; the sequence keeps running.
  StatusCode outcome = StatusCode::kOk;
  uint64_t faults_seen = 0;       ///< Transient read failures observed.
  uint32_t retries = 0;           ///< Demand-miss retry attempts issued.
  SimMicros backoff_wait_us = 0;  ///< Simulated time spent backing off.
  size_t shed_prefetches = 0;     ///< Window fetches shed in degraded mode.
};

/// Aggregates over one executed sequence.
struct SequenceRunStats {
  std::vector<QueryRunStats> queries;

  /// The paper's accuracy metric: percentage of result data (pages) read
  /// from the prefetch cache rather than from disk.
  double CacheHitRatePct() const;

  SimMicros TotalResponseUs() const;
  SimMicros TotalResidualUs() const;
  SimMicros TotalDiskWaitUs() const;
  size_t TotalAdmissionClosedWindows() const;
  SimMicros TotalGraphBuildUs() const;
  SimMicros TotalPredictionUs() const;
  size_t TotalPagesTotal() const;
  size_t TotalPagesHit() const;
  size_t TotalPrefetchPages() const;
  size_t TotalResultObjects() const;

  uint64_t TotalFaultsSeen() const;
  uint64_t TotalRetries() const;
  SimMicros TotalBackoffWaitUs() const;
  size_t TotalShedPrefetches() const;
  size_t DeadlineMisses() const;      ///< Queries ending kDeadlineExceeded.
  size_t UnavailableQueries() const;  ///< Queries ending kUnavailable.

  /// Simulated response-time percentile over the executed queries
  /// (nearest-rank; p in [0, 100]). 0 when the sequence is empty.
  SimMicros ResponsePercentileUs(double p) const;
};

}  // namespace scout

