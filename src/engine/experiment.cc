#include "engine/experiment.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "engine/multi_client_engine.h"
#include "common/worker_pool.h"
#include "prefetch/no_prefetch.h"

namespace scout {
namespace {

/// Folds one executed sequence (and its no-prefetching baseline run) into
/// the aggregate. Callers must fold sequences in generation order so the
/// result is independent of execution order (RunningStat additions do not
/// commute in floating point).
void AccumulateSequence(const SequenceRunStats& run,
                        const SequenceRunStats& base, ExperimentResult* result,
                        size_t* total_queries) {
  result->seq_hit_rate.Add(run.CacheHitRatePct());
  result->total_response_us += run.TotalResponseUs();
  result->baseline_response_us += base.TotalResponseUs();
  result->total_residual_us += run.TotalResidualUs();
  result->total_disk_wait_us += run.TotalDiskWaitUs();
  result->total_graph_build_us += run.TotalGraphBuildUs();
  result->total_prediction_us += run.TotalPredictionUs();
  result->total_pages += run.TotalPagesTotal();
  result->total_hits += run.TotalPagesHit();
  result->total_result_objects += run.TotalResultObjects();
  *total_queries += run.queries.size();
  for (const QueryRunStats& q : run.queries) {
    if (q.was_reset) ++result->total_resets;
  }
}

/// Computes the derived rates once all sequences are folded in.
void FinalizeResult(ExperimentResult* result, size_t total_queries) {
  result->total_queries = total_queries;
  if (result->total_pages > 0) {
    result->hit_rate_pct = 100.0 * static_cast<double>(result->total_hits) /
                           static_cast<double>(result->total_pages);
  }
  if (result->total_response_us > 0) {
    result->speedup = static_cast<double>(result->baseline_response_us) /
                      static_cast<double>(result->total_response_us);
  }
  if (total_queries > 0) {
    result->mean_pages_per_query = static_cast<double>(result->total_pages) /
                                   static_cast<double>(total_queries);
  }
}

}  // namespace

uint64_t ScaledCacheBytes(const PageStore& store, double fraction) {
  const uint64_t scaled =
      static_cast<uint64_t>(static_cast<double>(store.TotalBytes()) *
                            fraction);
  return std::max<uint64_t>(scaled, 64 * kPageBytes);
}

QuerySequenceConfig QueryConfigFor(const MicrobenchSpec& spec) {
  QuerySequenceConfig config;
  config.num_queries = spec.queries_in_sequence;
  config.query_volume = spec.query_volume;
  config.aspect = spec.aspect;
  config.gap_distance = spec.gap_distance;
  return config;
}

ExecutorConfig ExecutorConfigFor(const MicrobenchSpec& spec,
                                 const PageStore& store) {
  ExecutorConfig config;
  config.prefetch_window_ratio = spec.prefetch_window_ratio;
  config.cache_bytes = ScaledCacheBytes(store);
  return config;
}

ExperimentResult RunGuidedExperiment(const Dataset& dataset,
                                     const SpatialIndex& index,
                                     Prefetcher* prefetcher,
                                     const QuerySequenceConfig& query_config,
                                     const ExecutorConfig& executor_config,
                                     uint32_t num_sequences, uint64_t seed) {
  ExperimentResult result;
  result.prefetcher_name = std::string(prefetcher->name());
  result.num_sequences = num_sequences;

  NoPrefetcher baseline;
  QueryExecutor executor(&index, prefetcher, executor_config);
  QueryExecutor baseline_executor(&index, &baseline, executor_config);

  Rng rng(seed);
  size_t total_queries = 0;
  for (uint32_t s = 0; s < num_sequences; ++s) {
    Rng seq_rng = rng.Fork();
    const GuidedSequence sequence =
        GenerateGuidedSequence(dataset, query_config, &seq_rng);
    if (sequence.queries.empty()) continue;

    const SequenceRunStats run = executor.RunSequence(sequence.queries);
    const SequenceRunStats base =
        baseline_executor.RunSequence(sequence.queries);
    AccumulateSequence(run, base, &result, &total_queries);
  }
  FinalizeResult(&result, total_queries);
  return result;
}

ExperimentResult RunBatch(const Dataset& dataset, const SpatialIndex& index,
                          const PrefetcherFactory& make_prefetcher,
                          const QuerySequenceConfig& query_config,
                          const ExecutorConfig& executor_config,
                          uint32_t num_sequences, uint64_t seed,
                          uint32_t num_workers) {
  ExperimentResult result;
  result.prefetcher_name = std::string(make_prefetcher()->name());
  result.num_sequences = num_sequences;

  // Pregenerate the workloads serially: sequence s is identical to the
  // one RunGuidedExperiment generates for the same seed.
  Rng rng(seed);
  std::vector<GuidedSequence> sequences;
  sequences.reserve(num_sequences);
  for (uint32_t s = 0; s < num_sequences; ++s) {
    Rng seq_rng = rng.Fork();
    sequences.push_back(
        GenerateGuidedSequence(dataset, query_config, &seq_rng));
  }

  struct SequenceOutcome {
    SequenceRunStats run;
    SequenceRunStats base;
  };
  std::vector<SequenceOutcome> outcomes(sequences.size());

  // Each claimed sequence runs on a private executor stack (simulated
  // clock, disk model, cache, prefetcher), so workers share only the
  // read-only index and dataset.
  std::atomic<size_t> next{0};
  const auto work = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= sequences.size()) return;
      if (sequences[i].queries.empty()) continue;
      std::unique_ptr<Prefetcher> prefetcher = make_prefetcher();
      NoPrefetcher baseline;
      QueryExecutor executor(&index, prefetcher.get(), executor_config);
      QueryExecutor baseline_executor(&index, &baseline, executor_config);
      outcomes[i].run = executor.RunSequence(sequences[i].queries);
      outcomes[i].base = baseline_executor.RunSequence(sequences[i].queries);
    }
  };
  internal::RunOnPool(
      std::max<uint32_t>(1, std::min(num_workers, num_sequences)), work);

  // Aggregate in sequence order: bit-identical for any worker count.
  size_t total_queries = 0;
  for (size_t i = 0; i < sequences.size(); ++i) {
    if (sequences[i].queries.empty()) continue;
    AccumulateSequence(outcomes[i].run, outcomes[i].base, &result,
                       &total_queries);
  }
  FinalizeResult(&result, total_queries);
  return result;
}

SharedCacheResult RunSharedCacheExperiment(
    const Dataset& dataset, const SpatialIndex& index,
    const PrefetcherFactory& make_prefetcher,
    const QuerySequenceConfig& query_config,
    const ExecutorConfig& executor_config, uint32_t num_sessions,
    uint64_t seed, uint32_t num_workers) {
  MultiClientEngine engine(dataset, index, make_prefetcher, query_config,
                           executor_config, num_sessions, seed);
  const MultiClientOutcome outcome = engine.Run(num_workers);

  SharedCacheResult result;
  result.combined.prefetcher_name = outcome.prefetcher_name;
  result.combined.num_sequences = engine.num_sessions();

  // Fold sessions in id order — the aggregation twin of RunBatch's
  // sequence-order fold, so the pooled result is schedule-independent.
  size_t total_queries = 0;
  std::vector<SimMicros> pooled_responses;
  for (size_t s = 0; s < outcome.runs.size(); ++s) {
    const SequenceRunStats& run = outcome.runs[s];
    result.session_hit_rate_pct.push_back(run.CacheHitRatePct());
    result.session_response_us.push_back(run.TotalResponseUs());
    result.admission_closed_windows += run.TotalAdmissionClosedWindows();
    result.faults_seen += run.TotalFaultsSeen();
    result.retries += run.TotalRetries();
    result.backoff_wait_us += run.TotalBackoffWaitUs();
    result.shed_prefetches += run.TotalShedPrefetches();
    result.deadline_misses += run.DeadlineMisses();
    result.unavailable_queries += run.UnavailableQueries();
    for (const QueryRunStats& q : run.queries) {
      pooled_responses.push_back(q.response_us);
    }
    if (run.queries.empty()) continue;
    AccumulateSequence(run, outcome.baselines[s], &result.combined,
                       &total_queries);
  }
  FinalizeResult(&result.combined, total_queries);
  if (!pooled_responses.empty()) {
    std::sort(pooled_responses.begin(), pooled_responses.end());
    // Nearest-rank p99 (1-based rank ceil(0.99 n), in integer arithmetic).
    const size_t n = pooled_responses.size();
    const size_t rank = (99 * n + 99) / 100;
    result.p99_response_us = pooled_responses[rank == 0 ? 0 : rank - 1];
  }

  result.disk = outcome.disk_stats;
  result.session_disk_wait_us.reserve(outcome.session_disk_stats.size());
  for (const DiskQueueStats& s : outcome.session_disk_stats) {
    result.session_disk_wait_us.push_back(s.wait_us);
  }

  result.session_cache = outcome.cache_stats;
  for (const CacheSessionStats& s : outcome.cache_stats) {
    result.hits_own += s.hits_own;
    result.hits_cross += s.hits_cross;
    result.evictions += s.evictions_caused;
  }
  const uint64_t hits = result.hits_own + result.hits_cross;
  if (hits > 0) {
    result.cross_hit_share_pct =
        100.0 * static_cast<double>(result.hits_cross) /
        static_cast<double>(hits);
  }
  return result;
}

}  // namespace scout
