#include "engine/experiment.h"

#include <algorithm>

#include "prefetch/no_prefetch.h"

namespace scout {

uint64_t ScaledCacheBytes(const PageStore& store, double fraction) {
  const uint64_t scaled =
      static_cast<uint64_t>(static_cast<double>(store.TotalBytes()) *
                            fraction);
  return std::max<uint64_t>(scaled, 64 * kPageBytes);
}

QuerySequenceConfig QueryConfigFor(const MicrobenchSpec& spec) {
  QuerySequenceConfig config;
  config.num_queries = spec.queries_in_sequence;
  config.query_volume = spec.query_volume;
  config.aspect = spec.aspect;
  config.gap_distance = spec.gap_distance;
  return config;
}

ExecutorConfig ExecutorConfigFor(const MicrobenchSpec& spec,
                                 const PageStore& store) {
  ExecutorConfig config;
  config.prefetch_window_ratio = spec.prefetch_window_ratio;
  config.cache_bytes = ScaledCacheBytes(store);
  return config;
}

ExperimentResult RunGuidedExperiment(const Dataset& dataset,
                                     const SpatialIndex& index,
                                     Prefetcher* prefetcher,
                                     const QuerySequenceConfig& query_config,
                                     const ExecutorConfig& executor_config,
                                     uint32_t num_sequences, uint64_t seed) {
  ExperimentResult result;
  result.prefetcher_name = std::string(prefetcher->name());
  result.num_sequences = num_sequences;

  NoPrefetcher baseline;
  QueryExecutor executor(&index, prefetcher, executor_config);
  QueryExecutor baseline_executor(&index, &baseline, executor_config);

  Rng rng(seed);
  size_t total_queries = 0;
  for (uint32_t s = 0; s < num_sequences; ++s) {
    Rng seq_rng = rng.Fork();
    const GuidedSequence sequence =
        GenerateGuidedSequence(dataset, query_config, &seq_rng);
    if (sequence.queries.empty()) continue;

    const SequenceRunStats run = executor.RunSequence(sequence.queries);
    const SequenceRunStats base =
        baseline_executor.RunSequence(sequence.queries);

    result.seq_hit_rate.Add(run.CacheHitRatePct());
    result.total_response_us += run.TotalResponseUs();
    result.baseline_response_us += base.TotalResponseUs();
    result.total_residual_us += run.TotalResidualUs();
    result.total_graph_build_us += run.TotalGraphBuildUs();
    result.total_prediction_us += run.TotalPredictionUs();
    result.total_pages += run.TotalPagesTotal();
    result.total_hits += run.TotalPagesHit();
    result.total_result_objects += run.TotalResultObjects();
    total_queries += run.queries.size();
    for (const QueryRunStats& q : run.queries) {
      if (q.was_reset) ++result.total_resets;
    }
  }
  result.total_queries = total_queries;

  if (result.total_pages > 0) {
    result.hit_rate_pct = 100.0 * static_cast<double>(result.total_hits) /
                          static_cast<double>(result.total_pages);
  }
  if (result.total_response_us > 0) {
    result.speedup = static_cast<double>(result.baseline_response_us) /
                     static_cast<double>(result.total_response_us);
  }
  if (total_queries > 0) {
    result.mean_pages_per_query = static_cast<double>(result.total_pages) /
                                  static_cast<double>(total_queries);
  }
  return result;
}

}  // namespace scout
