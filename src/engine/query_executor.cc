#include "engine/query_executor.h"

#include <algorithm>

namespace scout {
namespace {

/// Restores ascending order of a page list that arrives as a
/// concatenation of ascending runs. Both index builders emit QueryPages
/// results in bulk-load (= page id) order, so the common case is a single
/// run and costs one O(n) scan instead of a full std::sort; genuinely
/// unsorted input degrades to balanced run merging, O(n log runs).
void MergeSortedRuns(std::vector<PageId>* pages) {
  std::vector<PageId>& p = *pages;
  if (p.size() < 2) return;
  // Allocation-free fast path: already one sorted run.
  size_t first_descent = p.size();
  for (size_t i = 1; i < p.size(); ++i) {
    if (p[i] < p[i - 1]) {
      first_descent = i;
      break;
    }
  }
  if (first_descent == p.size()) return;
  std::vector<size_t> bounds;  // Run boundaries: 0, ..., p.size().
  bounds.push_back(0);
  bounds.push_back(first_descent);
  for (size_t i = first_descent + 1; i < p.size(); ++i) {
    if (p[i] < p[i - 1]) bounds.push_back(i);
  }
  bounds.push_back(p.size());
  while (bounds.size() > 2) {
    std::vector<size_t> next;
    next.push_back(0);
    for (size_t i = 0; i + 2 < bounds.size(); i += 2) {
      std::inplace_merge(p.begin() + bounds[i], p.begin() + bounds[i + 1],
                         p.begin() + bounds[i + 2]);
      next.push_back(bounds[i + 2]);
    }
    if (bounds.size() % 2 == 0) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

}  // namespace

/// PrefetchIo implementation that charges fetches against the window
/// budget. The window also closes when the cache is full: a small cache
/// halts prefetching prematurely (paper §7.4.4).
class QueryExecutor::WindowIo : public PrefetchIo {
 public:
  WindowIo(QueryExecutor* executor, SimMicros budget)
      : executor_(executor), remaining_(budget) {}

  void QueryPages(const Region& region, std::vector<PageId>* out) override {
    executor_->index_->QueryPages(region, out);
  }

  bool IsCached(PageId page) const override {
    return executor_->cache_.Contains(page);
  }

  bool FetchPage(PageId page) override {
    if (executor_->cache_.Contains(page)) return true;
    if (remaining_ <= 0) return false;
    if (executor_->cache_.Full()) {
      remaining_ = 0;  // Prefetching halts once the cache is full.
      return false;
    }
    // A read started while the window is open completes even if the user
    // issues the next query meanwhile; the window then closes.
    const SimMicros cost = executor_->disk_.ReadPage(page);
    executor_->cache_.Insert(page);
    remaining_ -= cost;
    ++pages_fetched_;
    return true;
  }

  bool WindowOpen() const override { return remaining_ > 0; }

  size_t pages_fetched() const { return pages_fetched_; }

 private:
  QueryExecutor* executor_;
  SimMicros remaining_;
  size_t pages_fetched_ = 0;
};

QueryExecutor::QueryExecutor(const SpatialIndex* index,
                             Prefetcher* prefetcher,
                             const ExecutorConfig& config)
    : index_(index),
      prefetcher_(prefetcher),
      config_(config),
      disk_(config.disk, &clock_),
      cache_(config.cache_bytes) {}

SimMicros QueryExecutor::ColdReadCost(
    const std::vector<PageId>& sorted_pages) const {
  SimMicros cost = 0;
  PageId prev = kInvalidPageId;
  for (PageId page : sorted_pages) {
    const bool sequential = prev != kInvalidPageId && page == prev + 1;
    cost += sequential ? config_.disk.sequential_read_us
                       : config_.disk.random_read_us;
    prev = page;
  }
  return cost;
}

SequenceRunStats QueryExecutor::RunSequence(std::span<const Region> queries) {
  SequenceRunStats stats;
  stats.queries.reserve(queries.size());

  // Cold start, as between the paper's measurement runs (§7.1: caches and
  // disk buffers cleared after each sequence).
  cache_.Clear();
  disk_.Reset();
  clock_.Reset();
  prefetcher_->BeginSequence();

  SimMicros carried_overflow = 0;  // Prediction overflow delays the next
                                   // query's response.

  std::vector<PageId> pages;
  std::vector<GraphInput> result_objects;
  for (const Region& region : queries) {
    QueryRunStats q;

    // --- Execute the query: cache hits first, misses from disk. ---
    pages.clear();
    index_->QueryPages(region, &pages);
    MergeSortedRuns(&pages);
    q.pages_total = pages.size();

    for (PageId page : pages) {
      if (cache_.TouchIfPresent(page)) {
        ++q.pages_hit;
      } else {
        q.residual_io_us += disk_.ReadPage(page);
        if (config_.cache_residual_reads) cache_.Insert(page);
      }
    }

    // Collect the result objects (filter page contents by the region).
    result_objects.clear();
    for (PageId page : pages) {
      const Page& p = index_->store().page(page);
      for (const SpatialObject& obj : p.objects) {
        if (region.Intersects(obj.Bounds())) {
          result_objects.push_back(GraphInput{&obj, page});
        }
      }
    }
    q.result_objects = result_objects.size();

    q.response_us = q.residual_io_us + carried_overflow;
    carried_overflow = 0;
    // Graph building is part of the user-visible response (the Figure 14
    // breakdown): it is interleaved with result retrieval, so it extends
    // query execution, not the idle window.
    // (Added below once the breakdown is known.)

    // --- Prediction computation + prefetch window (Figure 2). ---
    const SimMicros d_cold = ColdReadCost(pages);
    q.window_us = static_cast<SimMicros>(config_.prefetch_window_ratio *
                                         static_cast<double>(d_cold));

    QueryResultView view;
    view.region = &region;
    view.objects = std::span<const GraphInput>(result_objects);
    view.pages = std::span<const PageId>(pages);
    q.observe_us = prefetcher_->Observe(view);

    const ObserveBreakdown& breakdown = prefetcher_->last_observe();
    q.graph_build_us = breakdown.graph_build_us;
    q.prediction_us = breakdown.prediction_us;
    q.graph_vertices = breakdown.graph_vertices;
    q.graph_edges = breakdown.graph_edges;
    q.graph_memory_bytes = breakdown.graph_memory_bytes;
    q.num_candidates = breakdown.num_candidates;
    q.was_reset = breakdown.was_reset;
    q.wall_graph_build_us = breakdown.wall_graph_build_us;
    q.wall_prediction_us = breakdown.wall_prediction_us;

    q.response_us += q.graph_build_us;

    SimMicros budget = q.window_us;
    if (config_.charge_prediction) {
      // Only the prediction (traversal) competes with the prefetch
      // window; graph building overlaps result retrieval (paper §4,
      // Figure 2) and is charged to the response above.
      const SimMicros predict_part = q.observe_us - q.graph_build_us;
      budget = std::max<SimMicros>(0, q.window_us - predict_part);
      carried_overflow = std::max<SimMicros>(0, predict_part - q.window_us);
    }

    WindowIo io(this, budget);
    prefetcher_->RunPrefetch(&io);
    q.prefetch_pages = io.pages_fetched();

    stats.queries.push_back(q);
  }
  return stats;
}

}  // namespace scout
