#include "engine/query_executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/stopwatch.h"
#include "prefetch/async_pipeline.h"
#include "storage/file_page_store.h"

namespace scout {
namespace {

/// Restores ascending order of a page list that arrives as a
/// concatenation of ascending runs. Both index builders emit QueryPages
/// results in bulk-load (= page id) order, so the common case is a single
/// run and costs one O(n) scan instead of a full std::sort; genuinely
/// unsorted input degrades to balanced run merging, O(n log runs).
void MergeSortedRuns(std::vector<PageId>* pages) {
  std::vector<PageId>& p = *pages;
  if (p.size() < 2) return;
  // Allocation-free fast path: already one sorted run.
  size_t first_descent = p.size();
  for (size_t i = 1; i < p.size(); ++i) {
    if (p[i] < p[i - 1]) {
      first_descent = i;
      break;
    }
  }
  if (first_descent == p.size()) return;
  std::vector<size_t> bounds;  // Run boundaries: 0, ..., p.size().
  bounds.push_back(0);
  bounds.push_back(first_descent);
  for (size_t i = first_descent + 1; i < p.size(); ++i) {
    if (p[i] < p[i - 1]) bounds.push_back(i);
  }
  bounds.push_back(p.size());
  while (bounds.size() > 2) {
    std::vector<size_t> next;
    next.push_back(0);
    for (size_t i = 0; i + 2 < bounds.size(); i += 2) {
      std::inplace_merge(p.begin() + bounds[i], p.begin() + bounds[i + 1],
                         p.begin() + bounds[i + 2]);
      next.push_back(bounds[i + 2]);
    }
    if (bounds.size() % 2 == 0) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

}  // namespace

/// PrefetchIo implementation that charges fetches against the window
/// budget. The window also closes when the cache is full: a small cache
/// halts prefetching prematurely (paper §7.4.4).
class QueryExecutor::WindowIo : public PrefetchIo {
 public:
  /// `window_start` is the simulated instant prefetching begins (query
  /// issue + response + prediction charge); only consulted when fetches
  /// go through a shared disk queue.
  WindowIo(QueryExecutor* executor, SimMicros budget, SimMicros window_start)
      : executor_(executor),
        budget_(budget),
        remaining_(budget),
        window_start_(window_start) {}

  void QueryPages(const Region& region, std::vector<PageId>* out) override {
    executor_->index_->QueryPages(region, out);
  }

  bool IsCached(PageId page) const override {
    return executor_->cache_->Contains(page);
  }

  bool FetchPage(PageId page) override {
    if (executor_->cache_->Contains(page)) return true;
    if (remaining_ <= 0) return false;
    const bool faulty = executor_->FaultyServing();
    const SimMicros issue = window_start_ + (budget_ - remaining_);
    if (faulty && executor_->config_.fault_policy.shed_prefetch_on_retry &&
        issue < executor_->degraded_until_) {
      // Degraded mode: prefetch I/O is shed first. Close the window —
      // the session serves on demand until the shedding window passes.
      ++shed_;
      remaining_ = 0;
      return false;
    }
    if (executor_->cache_->Full()) {
      if (executor_->owns_cache()) {
        // Single-stream mode: prefetching halts once the cache is full
        // (paper §7.4.4 — a small cache stops prefetching prematurely).
        // A *shared* serving cache is a long-lived resource instead:
        // prefetches displace a page (Insert evicts), so capacity
        // pressure between sessions shows up as evictions, not as
        // silently halted windows.
        remaining_ = 0;
        return false;
      }
      if (!executor_->AdmitPrefetchInsert()) {
        // Priced admission rejected the insert. The prefetcher's plan is
        // in decreasing expected value and the price only moves with
        // cache activity this executor cannot cause within the window,
        // so the first rejection closes the window.
        admission_closed_ = true;
        remaining_ = 0;
        return false;
      }
    }
    // A read started while the window is open completes even if the user
    // issues the next query meanwhile; the window then closes.
    SimMicros cost;
    bool failed_read = false;
    if (executor_->disk_queue_ != nullptr) {
      // Shared disk: the fetch is issued where the window has advanced
      // to; queueing behind other sessions' reads consumes window budget
      // exactly like the read itself.
      const SharedDiskQueue::BatchResult served =
          faulty ? executor_->disk_queue_->TryServeOne(
                       executor_->session_id_, issue, page, &failed_read)
                 : executor_->disk_queue_->ServeOne(executor_->session_id_,
                                                    issue, page);
      cost = served.latency_us;
      wait_us_ += served.queue_wait_us;
    } else if (faulty) {
      const DiskModel::ReadResult read = executor_->disk_.TryReadPage(page);
      cost = read.cost_us;
      failed_read = !read.status.ok();
    } else {
      cost = executor_->disk_.ReadPage(page);
    }
    if (failed_read) {
      // The transfer failed: the window time is spent but the page never
      // arrived. Prefetches are never retried (demand misses own the
      // retry budget) — note the failure, which arms shedding, and let
      // the prefetcher continue with its plan.
      ++faults_;
      executor_->NoteFailure(issue + cost);
      remaining_ -= cost;
      return true;
    }
    executor_->cache_->Insert(page);
    remaining_ -= cost;
    ++pages_fetched_;
    return true;
  }

  bool WindowOpen() const override { return remaining_ > 0; }

  size_t pages_fetched() const { return pages_fetched_; }
  SimMicros wait_us() const { return wait_us_; }
  bool admission_closed() const { return admission_closed_; }
  size_t shed() const { return shed_; }
  uint64_t faults() const { return faults_; }

 private:
  QueryExecutor* executor_;
  SimMicros budget_;
  SimMicros remaining_;
  SimMicros window_start_;
  SimMicros wait_us_ = 0;
  size_t pages_fetched_ = 0;
  bool admission_closed_ = false;
  size_t shed_ = 0;       ///< Fetches dropped in degraded mode.
  uint64_t faults_ = 0;   ///< Failed prefetch transfers.
};

void QueryExecutor::Prepare(const SpatialIndex& index, const Region& region,
                            PreparedQuery* prep) {
  prep->pages.clear();
  prep->objects.clear();
  index.QueryPages(region, &prep->pages);
  MergeSortedRuns(&prep->pages);

  for (PageId page : prep->pages) {
    const Page& p = index.store().page(page);
    if (region.ContainsBox(p.bounds)) {
      // Containment fast path: the page's bounding box (and therefore
      // every object bound inside it) lies fully inside the region, so
      // the per-object Intersects test cannot fail — batch-append.
      for (const SpatialObject& obj : p.objects) {
        prep->objects.push_back(GraphInput{&obj, page});
      }
      continue;
    }
    for (const SpatialObject& obj : p.objects) {
      if (region.Intersects(obj.Bounds())) {
        prep->objects.push_back(GraphInput{&obj, page});
      }
    }
  }
}

QueryExecutor::QueryExecutor(const SpatialIndex* index,
                             Prefetcher* prefetcher,
                             const ExecutorConfig& config)
    : QueryExecutor(index, prefetcher, config, nullptr, nullptr, 0) {}

QueryExecutor::QueryExecutor(const SpatialIndex* index,
                             Prefetcher* prefetcher,
                             const ExecutorConfig& config,
                             PrefetchCache* shared_cache)
    : QueryExecutor(index, prefetcher, config, shared_cache, nullptr, 0) {}

QueryExecutor::QueryExecutor(const SpatialIndex* index,
                             Prefetcher* prefetcher,
                             const ExecutorConfig& config,
                             PrefetchCache* shared_cache,
                             SharedDiskQueue* disk_queue, uint32_t session_id)
    : index_(index),
      prefetcher_(prefetcher),
      config_(config),
      disk_(config.disk, &clock_),
      owned_cache_(shared_cache == nullptr
                       ? std::make_unique<PrefetchCache>(config.cache_bytes)
                       : nullptr),
      cache_(shared_cache == nullptr ? owned_cache_.get() : shared_cache),
      disk_queue_(disk_queue),
      session_id_(session_id) {
  // The private disk model consults the schedule on every read; shared
  // queues are borrowed, so the owning engine attaches it there.
  disk_.AttachFaults(config.fault_schedule);
}

SimMicros QueryExecutor::ColdReadCost(
    const std::vector<PageId>& sorted_pages) const {
  SimMicros cost = 0;
  PageId prev = kInvalidPageId;
  for (PageId page : sorted_pages) {
    const bool sequential = prev != kInvalidPageId && page == prev + 1;
    cost += sequential ? config_.disk.sequential_read_us
                       : config_.disk.random_read_us;
    prev = page;
  }
  return cost;
}

void QueryExecutor::BeginSequence() {
  // Cold start, as between the paper's measurement runs (§7.1: caches and
  // disk buffers cleared after each sequence). A borrowed shared cache is
  // deliberately left alone: its contents belong to all sessions and its
  // lifecycle to the serving engine.
  if (owned_cache_) owned_cache_->Clear();
  disk_.Reset();
  clock_.Reset();
  sequence_now_ = 0;
  carried_overflow_ = 0;
  degraded_until_ = 0;
  // Per-session derived jitter stream (mirrors how sessions derive their
  // prefetcher streams): independent across sessions, identical across
  // reruns. Only ever drawn from when retries actually happen, so the
  // seeding is free in fault-free runs.
  retry_rng_.Seed(FaultSchedule::SessionJitterSeed(
      config_.fault_schedule != nullptr ? config_.fault_schedule->config().seed
                                        : 0,
      session_id_));
  prefetcher_->BeginSequence();
}

SimMicros QueryExecutor::RetryBackoffUs(uint32_t attempt) {
  const FaultPolicy& policy = config_.fault_policy;
  // Exponential in the round, capped to keep the shift defined.
  const uint32_t shift = std::min<uint32_t>(attempt, 20);
  SimMicros wait = policy.backoff_base_us << shift;
  if (policy.backoff_jitter_frac > 0.0) {
    wait += static_cast<SimMicros>(policy.backoff_jitter_frac *
                                   static_cast<double>(wait) *
                                   retry_rng_.NextDouble());
  }
  return wait;
}

void QueryExecutor::NoteFailure(SimMicros now) {
  if (!config_.fault_policy.shed_prefetch_on_retry) return;
  degraded_until_ = std::max(degraded_until_,
                             now + config_.fault_policy.degraded_window_us);
}

SimMicros QueryExecutor::ServeMissBatchWithRetries(QueryRunStats* q) {
  const FaultPolicy& policy = config_.fault_policy;
  SimMicros elapsed = 0;
  SharedDiskQueue::BatchResult served = disk_queue_->TryServeBatch(
      session_id_, sequence_now_, miss_pages_, &retry_failed_);
  elapsed += served.latency_us;
  q->disk_wait_us += served.queue_wait_us;
  q->faults_seen += retry_failed_.size();
  uint32_t attempt = 0;
  while (!retry_failed_.empty() && attempt < policy.max_retries) {
    if (policy.query_deadline_us > 0 && elapsed >= policy.query_deadline_us) {
      break;
    }
    const SimMicros backoff = RetryBackoffUs(attempt);
    elapsed += backoff;
    q->backoff_wait_us += backoff;
    ++attempt;
    ++q->retries;
    // Reissue only the failed pages, at where the response has advanced
    // to — backoff included, so the retry sees later fault draws.
    retry_pages_.swap(retry_failed_);
    served = disk_queue_->TryServeBatch(session_id_, sequence_now_ + elapsed,
                                        retry_pages_, &retry_failed_);
    elapsed += served.latency_us;
    q->disk_wait_us += served.queue_wait_us;
    q->faults_seen += retry_failed_.size();
  }
  if (!retry_failed_.empty()) {
    q->outcome =
        policy.query_deadline_us > 0 && elapsed >= policy.query_deadline_us
            ? StatusCode::kDeadlineExceeded
            : StatusCode::kUnavailable;
  }
  if (q->faults_seen > 0) NoteFailure(sequence_now_ + elapsed);
  return elapsed;
}

SimMicros QueryExecutor::ReadDemandPageWithRetries(PageId page,
                                                   SimMicros spent_so_far,
                                                   QueryRunStats* q,
                                                   bool* ok) {
  const FaultPolicy& policy = config_.fault_policy;
  SimMicros elapsed = 0;
  bool saw_failure = false;
  DiskModel::ReadResult read = disk_.TryReadPage(page);
  elapsed += read.cost_us;
  uint32_t attempt = 0;
  while (!read.status.ok()) {
    saw_failure = true;
    ++q->faults_seen;
    if (attempt >= policy.max_retries) break;
    if (policy.query_deadline_us > 0 &&
        spent_so_far + elapsed >= policy.query_deadline_us) {
      break;
    }
    const SimMicros backoff = RetryBackoffUs(attempt);
    elapsed += backoff;
    q->backoff_wait_us += backoff;
    // Advance the private disk's clock so the retry's fault draw sees a
    // later issue instant (the backoff may cross the failure burst).
    clock_.Advance(backoff);
    ++attempt;
    ++q->retries;
    read = disk_.TryReadPage(page);
    elapsed += read.cost_us;
  }
  *ok = read.status.ok();
  if (!*ok) {
    q->outcome = policy.query_deadline_us > 0 &&
                         spent_so_far + elapsed >= policy.query_deadline_us
                     ? StatusCode::kDeadlineExceeded
                     : StatusCode::kUnavailable;
  }
  if (saw_failure) NoteFailure(sequence_now_ + spent_so_far + elapsed);
  return elapsed;
}

bool QueryExecutor::AdmitPrefetchInsert() const {
  if (!config_.serving.priced_admission) return true;
  const uint32_t self = cache_->active_session();
  const uint32_t victim = cache_->PeekVictimOwner();
  if (self == PrefetchCache::kNoSession ||
      victim == PrefetchCache::kNoSession || victim == self) {
    return true;
  }
  const std::vector<CacheSessionStats>& stats = cache_->session_stats();
  return config_.serving.admission.Admit(
      stats[self].inserts, stats[self].hits_own, stats[victim].inserts,
      stats[victim].hits_own, config_.disk.random_read_us);
}

QueryRunStats QueryExecutor::ExecuteQuery(const Region& region,
                                          const PreparedQuery& prep) {
  return ExecuteQuery(region, prep, nullptr);
}

QueryRunStats QueryExecutor::ExecuteQuery(const Region& region,
                                          const PreparedQuery& prep,
                                          ObservePrep* observe_prep) {
  QueryRunStats q;

  // --- Execute the query: cache hits first, misses from disk. ---
  q.pages_total = prep.pages.size();
  if (disk_queue_ != nullptr) {
    // Shared disk: collect the misses and serve them as ONE batch the
    // elevator scan may reorder; the residual I/O is the batch latency
    // (slowest page completion), which includes any queueing behind
    // other sessions' reads.
    miss_pages_.clear();
    for (PageId page : prep.pages) {
      if (cache_->TouchIfPresent(page)) {
        ++q.pages_hit;
      } else {
        miss_pages_.push_back(page);
      }
    }
    if (!miss_pages_.empty()) {
      if (!FaultyServing()) {
        const SharedDiskQueue::BatchResult served =
            disk_queue_->ServeBatch(session_id_, sequence_now_, miss_pages_);
        q.residual_io_us = served.latency_us;
        q.disk_wait_us = served.queue_wait_us;
        if (config_.cache_residual_reads) {
          for (PageId page : miss_pages_) cache_->Insert(page);
        }
      } else {
        q.residual_io_us = ServeMissBatchWithRetries(&q);
        if (config_.cache_residual_reads) {
          // Pages still failed after the retry budget never arrived.
          for (PageId page : miss_pages_) {
            if (std::find(retry_failed_.begin(), retry_failed_.end(), page) ==
                retry_failed_.end()) {
              cache_->Insert(page);
            }
          }
        }
      }
    }
  } else if (!FaultyServing()) {
    for (PageId page : prep.pages) {
      if (cache_->TouchIfPresent(page)) {
        ++q.pages_hit;
      } else {
        q.residual_io_us += disk_.ReadPage(page);
        if (config_.cache_residual_reads) cache_->Insert(page);
      }
    }
  } else {
    for (PageId page : prep.pages) {
      if (cache_->TouchIfPresent(page)) {
        ++q.pages_hit;
        continue;
      }
      bool ok = false;
      q.residual_io_us +=
          ReadDemandPageWithRetries(page, q.residual_io_us, &q, &ok);
      if (ok && config_.cache_residual_reads) cache_->Insert(page);
    }
  }
  q.result_objects = prep.objects.size();

  q.response_us = q.residual_io_us + carried_overflow_;
  carried_overflow_ = 0;
  // Graph building is part of the user-visible response (the Figure 14
  // breakdown): it is interleaved with result retrieval, so it extends
  // query execution, not the idle window.
  // (Added below once the breakdown is known.)

  // --- Prediction computation + prefetch window (Figure 2). ---
  const SimMicros d_cold = ColdReadCost(prep.pages);
  q.window_us = static_cast<SimMicros>(config_.prefetch_window_ratio *
                                       static_cast<double>(d_cold));

  QueryResultView view;
  view.region = &region;
  view.objects = std::span<const GraphInput>(prep.objects);
  view.pages = std::span<const PageId>(prep.pages);
  q.observe_us = prefetcher_->Observe(view, observe_prep);

  const ObserveBreakdown& breakdown = prefetcher_->last_observe();
  q.graph_build_us = breakdown.graph_build_us;
  q.prediction_us = breakdown.prediction_us;
  q.graph_vertices = breakdown.graph_vertices;
  q.graph_edges = breakdown.graph_edges;
  q.graph_memory_bytes = breakdown.graph_memory_bytes;
  q.num_candidates = breakdown.num_candidates;
  q.was_reset = breakdown.was_reset;
  q.wall_graph_build_us = breakdown.wall_graph_build_us;
  q.wall_prediction_us = breakdown.wall_prediction_us;

  q.response_us += q.graph_build_us;

  // The deadline never truncates work (simulated metrics stay identical
  // whether or not anyone watches the budget) — it reports: a query whose
  // full response overran the budget ends kDeadlineExceeded.
  if (config_.fault_policy.query_deadline_us > 0 &&
      q.outcome == StatusCode::kOk &&
      q.response_us > config_.fault_policy.query_deadline_us) {
    q.outcome = StatusCode::kDeadlineExceeded;
  }

  SimMicros budget = q.window_us;
  if (config_.charge_prediction) {
    // Only the prediction (traversal) competes with the prefetch
    // window; graph building overlaps result retrieval (paper §4,
    // Figure 2) and is charged to the response above.
    const SimMicros predict_part = q.observe_us - q.graph_build_us;
    budget = std::max<SimMicros>(0, q.window_us - predict_part);
    carried_overflow_ = std::max<SimMicros>(0, predict_part - q.window_us);
  }

  // Prefetching starts after the response and whatever window share the
  // prediction consumed (Figure 2 timeline, in this stream's simulated
  // time — only the shared disk queue reads the absolute instant).
  const SimMicros window_start =
      sequence_now_ + q.response_us + (q.window_us - budget);
  WindowIo io(this, budget, window_start);
  prefetcher_->RunPrefetch(&io);
  q.prefetch_pages = io.pages_fetched();
  q.disk_wait_us += io.wait_us();
  q.admission_closed_window = io.admission_closed();
  q.shed_prefetches = io.shed();
  q.faults_seen += io.faults();

  // Advance this stream's issue timeline exactly like ClientSession: the
  // user sees the response, computes for the window, then issues the
  // next query.
  sequence_now_ += q.response_us + q.window_us;
  return q;
}

SequenceRunStats QueryExecutor::RunSequence(std::span<const Region> queries) {
  SequenceRunStats stats;
  stats.queries.reserve(queries.size());
  BeginSequence();
  PreparedQuery prep;
  for (const Region& region : queries) {
    Prepare(*index_, region, &prep);
    stats.queries.push_back(ExecuteQuery(region, prep));
  }
  return stats;
}

SequenceRunStats QueryExecutor::RunSequence(
    std::span<const Region> queries, std::span<const PreparedQuery> preps) {
  assert(preps.size() >= queries.size());
  SequenceRunStats stats;
  stats.queries.reserve(queries.size());
  BeginSequence();
  for (size_t i = 0; i < queries.size(); ++i) {
    stats.queries.push_back(ExecuteQuery(queries[i], preps[i]));
  }
  return stats;
}

// ===================================================================
// Real-I/O (file backend) serving. See RunSequenceFile's declaration
// for the contract; the short version: the PrefetchCache remains a
// purely LOGICAL plane driven through the exact same operation sequence
// in sync and async mode (so hits, evictions and fetch sets are
// bit-identical and rerun-deterministic), while bytes travel through
// frames_ — inline in sync mode, via the AsyncPrefetchPipeline's fetch
// worker in async mode. The worker never touches the cache; every cache
// mutation below runs on the executor thread.
// ===================================================================

namespace {

/// Executor-side wait granularity while a needed page is in flight.
constexpr std::chrono::microseconds kAwaitPoll{20};

uint64_t Fnv1a(uint64_t h, const void* bytes, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FnvDouble(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Fnv1a(h, &bits, sizeof(bits));
}

/// True when `sub` appears within `seq` in order (not necessarily
/// contiguously) — the shape the worker's issue log must have relative
/// to the plan order.
[[maybe_unused]] bool IsSubsequence(const std::vector<PageId>& sub,
                                    const std::vector<PageId>& seq) {
  size_t matched = 0;
  for (PageId p : seq) {
    if (matched < sub.size() && sub[matched] == p) ++matched;
  }
  return matched == sub.size();
}

}  // namespace

uint64_t QueryExecutor::HashResultObject(uint64_t h, const SpatialObject& obj,
                                         PageId page) {
  h = Fnv1a(h, &obj.id, sizeof(obj.id));
  h = Fnv1a(h, &obj.structure_id, sizeof(obj.structure_id));
  h = Fnv1a(h, &obj.path_index, sizeof(obj.path_index));
  const Vec3 p0 = obj.geom.p0();
  const Vec3 p1 = obj.geom.p1();
  h = FnvDouble(h, p0.x);
  h = FnvDouble(h, p0.y);
  h = FnvDouble(h, p0.z);
  h = FnvDouble(h, p1.x);
  h = FnvDouble(h, p1.y);
  h = FnvDouble(h, p1.z);
  h = FnvDouble(h, obj.geom.r0());
  h = FnvDouble(h, obj.geom.r1());
  return Fnv1a(h, &page, sizeof(page));
}

uint64_t QueryExecutor::HashPreparedObjects(
    uint64_t h, std::span<const GraphInput> objects) {
  for (const GraphInput& g : objects) {
    h = HashResultObject(h, *g.object, g.page);
  }
  return h;
}

double FileSequenceStats::CacheHitRatePct() const {
  const size_t total = TotalPagesTotal();
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(TotalPagesHit()) /
                          static_cast<double>(total);
}

size_t FileSequenceStats::TotalPagesTotal() const {
  size_t v = 0;
  for (const FileQueryStats& q : queries) v += q.pages_total;
  return v;
}

size_t FileSequenceStats::TotalPagesHit() const {
  size_t v = 0;
  for (const FileQueryStats& q : queries) v += q.pages_hit;
  return v;
}

size_t FileSequenceStats::TotalDemandReads() const {
  size_t v = 0;
  for (const FileQueryStats& q : queries) v += q.demand_reads;
  return v;
}

size_t FileSequenceStats::TotalPrefetchPlanned() const {
  size_t v = 0;
  for (const FileQueryStats& q : queries) v += q.prefetch_planned;
  return v;
}

size_t FileSequenceStats::TotalLateHitWaits() const {
  size_t v = 0;
  for (const FileQueryStats& q : queries) v += q.late_hit_waits;
  return v;
}

uint64_t FileSequenceStats::TotalFaultsSeen() const {
  uint64_t v = 0;
  for (const FileQueryStats& q : queries) v += q.faults_seen;
  return v;
}

uint32_t FileSequenceStats::TotalRetries() const {
  uint32_t v = 0;
  for (const FileQueryStats& q : queries) v += q.retries;
  return v;
}

size_t FileSequenceStats::UnavailableQueries() const {
  size_t v = 0;
  for (const FileQueryStats& q : queries) {
    v += q.outcome == StatusCode::kUnavailable ? 1 : 0;
  }
  return v;
}

/// PrefetchIo implementation for the file backend: captures the
/// prefetcher's plan (in plan order, deduplicated against the logical
/// cache and the plan itself) instead of performing I/O. The window is
/// a fixed page budget — the file backend has no simulated clock, and a
/// deterministic budget is what keeps sync and async runs planning
/// identical fetch sets.
class QueryExecutor::FilePlanIo : public PrefetchIo {
 public:
  FilePlanIo(QueryExecutor* executor, size_t budget,
             std::vector<PageId>* plan)
      : executor_(executor), budget_(budget), plan_(plan) {}

  void QueryPages(const Region& region, std::vector<PageId>* out) override {
    executor_->index_->QueryPages(region, out);
  }

  bool IsCached(PageId page) const override {
    return executor_->cache_->Contains(page) ||
           std::find(plan_->begin(), plan_->end(), page) != plan_->end();
  }

  bool FetchPage(PageId page) override {
    if (IsCached(page)) return true;
    if (plan_->size() >= budget_) return false;
    plan_->push_back(page);
    return true;
  }

  bool WindowOpen() const override { return plan_->size() < budget_; }

 private:
  QueryExecutor* executor_;
  size_t budget_;
  std::vector<PageId>* plan_;
};

bool QueryExecutor::ApplyCompletion(AsyncFetchResult&& r, FileQueryStats* q) {
  if (!r.status.ok()) {
    // The transfer failed, so the page never arrived: withdraw its
    // logical cache entry (mirrors the sync path's erase-on-failure).
    cache_->Erase(r.page);
    if (q != nullptr) ++q->faults_seen;
    return false;
  }
  if (frames_[r.page] == nullptr) {
    frames_[r.page] = std::make_unique<Page>(std::move(r.data));
  }
  return true;
}

const Page* QueryExecutor::AwaitFramePage(PageId page,
                                          AsyncPrefetchPipeline* pipeline,
                                          FileQueryStats* q) {
  if (frames_[page] != nullptr) return frames_[page].get();
  if (pipeline == nullptr) return nullptr;
  // The page is logically cached but its bytes are still in flight — a
  // "late hit": keep draining completions (applying them serially on
  // this thread) until it lands or its fetch is known to have failed.
  bool waited = false;
  while (frames_[page] == nullptr) {
    AsyncFetchResult r;
    if (pipeline->TryDrainOne(&r)) {
      const PageId done = r.page;
      const bool ok = ApplyCompletion(std::move(r), q);
      if (done == page && !ok) break;
      continue;
    }
    if (pipeline->pending() == 0) break;  // Not in flight: never coming.
    std::this_thread::sleep_for(kAwaitPoll);
    waited = true;
  }
  if (waited) ++q->late_hit_waits;
  return frames_[page] == nullptr ? nullptr : frames_[page].get();
}

const Page* QueryExecutor::DemandReadFilePage(PageId page,
                                              AsyncPrefetchPipeline* pipeline,
                                              FileQueryStats* q,
                                              FileSequenceStats* stats) {
  FilePageStore* store = config_.io.store;
  ++q->demand_reads;
  stats->demand_order.push_back(page);
  const uint32_t max_retries = config_.fault_policy.max_retries;
  for (uint32_t attempt = 0;; ++attempt) {
    AsyncFetchResult r;
    if (pipeline != nullptr) {
      // Demand promotion: issued ahead of the prediction backlog.
      r = pipeline->FetchDemand(page);
    } else {
      r.page = page;
      r.status = store->ReadPage(page, &r.data);
    }
    if (r.status.ok()) {
      if (frames_[page] == nullptr) {
        frames_[page] = std::make_unique<Page>(std::move(r.data));
      }
      return frames_[page].get();
    }
    ++q->faults_seen;
    // Only transient (kUnavailable) failures are worth retrying; the
    // file backend has no simulated clock, so retries are immediate
    // (each attempt advances the fault schedule's op timeline).
    if (r.status.code() != StatusCode::kUnavailable ||
        attempt >= max_retries) {
      q->outcome = r.status.code();
      return nullptr;
    }
    ++q->retries;
  }
}

FileSequenceStats QueryExecutor::RunSequenceFile(
    std::span<const Region> queries) {
  return RunSequenceFile(queries, FileRunOptions{});
}

FileSequenceStats QueryExecutor::RunSequenceFile(
    std::span<const Region> queries, const FileRunOptions& options) {
  FileSequenceStats stats;
  FilePageStore* store = config_.io.store;
  assert(config_.io.backend == IoBackend::kFile && store != nullptr);
  assert(disk_queue_ == nullptr && "file serving uses the page file, not "
                                   "the simulated shared disk");
  const size_t num_pages = store->NumPages();
  if (!options.warm_start || frames_.size() != num_pages) {
    // A borrowed shared cache is never cleared (its contents belong to
    // all sessions); stale logical entries whose bytes we don't hold
    // degrade gracefully into demand reads.
    if (owns_cache()) owned_cache_->Clear();
    frames_.clear();
    frames_.resize(num_pages);
  }
  // Shared-cache attribution: every cache operation below runs on this
  // thread — including completions applied from the async pipeline — so
  // one bracket covers the whole sequence and the fetch worker can
  // never race SetActiveSession.
  if (!owns_cache()) cache_->SetActiveSession(session_id_);
  prefetcher_->BeginSequence();

  std::unique_ptr<AsyncPrefetchPipeline> pipeline;
  if (config_.io.async_prefetch) {
    AsyncPrefetchPipeline::Options popt;
    popt.max_in_flight = config_.io.max_in_flight;
    pipeline = std::make_unique<AsyncPrefetchPipeline>(store, popt);
    pipeline->Start();
  }

  uint64_t hash = kResultHashSeed;
  const Stopwatch total_sw;
  stats.queries.reserve(queries.size());
  PreparedQuery prep;
  for (const Region& region : queries) {
    Prepare(*index_, region, &prep);
    FileQueryStats q;
    const Stopwatch q_sw;
    q.pages_total = prep.pages.size();
    file_objects_.clear();
    if (options.collect_results) stats.results.emplace_back();

    // --- Execute: serve result pages, decode, filter. ----------------
    for (PageId page : prep.pages) {
      const Page* data = nullptr;
      if (cache_->TouchIfPresent(page)) {
        ++q.pages_hit;
        data = AwaitFramePage(page, pipeline.get(), &q);
      }
      if (data == nullptr) {
        data = DemandReadFilePage(page, pipeline.get(), &q, &stats);
        if (data != nullptr && config_.cache_residual_reads) {
          cache_->Insert(page);
        }
      }
      if (data == nullptr) continue;  // Degraded: partial results.
      // Filter exactly like Prepare (containment fast path, then the
      // per-object Intersects test) so decoded results are
      // object-for-object identical to the in-memory oracle.
      if (region.ContainsBox(data->bounds)) {
        for (const SpatialObject& obj : data->objects) {
          file_objects_.push_back(GraphInput{&obj, page});
        }
      } else {
        for (const SpatialObject& obj : data->objects) {
          if (region.Intersects(obj.Bounds())) {
            file_objects_.push_back(GraphInput{&obj, page});
          }
        }
      }
    }
    q.result_objects = file_objects_.size();
    for (const GraphInput& g : file_objects_) {
      hash = HashResultObject(hash, *g.object, g.page);
      if (options.collect_results) stats.results.back().push_back(*g.object);
    }
    q.wall_response_us = q_sw.ElapsedMicros();

    // --- Predict + capture the plan. ---------------------------------
    QueryResultView view;
    view.region = &region;
    view.objects = std::span<const GraphInput>(file_objects_);
    view.pages = std::span<const PageId>(prep.pages);
    prefetcher_->Observe(view);
    file_plan_.clear();
    FilePlanIo io(this, config_.io.prefetch_budget_pages, &file_plan_);
    prefetcher_->RunPrefetch(&io);
    q.prefetch_planned = file_plan_.size();

    // --- Fetch the plan. The logical Insert happens at the same
    // operation position in both modes; only the bytes' transport
    // differs. Async transport is HYBRID: until the next query arrives
    // (think_time_us after the response) the executor is idle anyway —
    // sync spends exactly that gap fetching inline — so leading plan
    // pages are read inline here and only the overflow is handed to
    // the worker. The two device channels (executor + worker) then
    // fetch concurrently, and the pages the next query touches first
    // are the ones guaranteed present. -------------------------------
    for (PageId page : file_plan_) {
      cache_->Insert(page);
      stats.prefetch_order.push_back(page);
      const bool think_gap_spent =
          q_sw.ElapsedMicros() - q.wall_response_us >=
          config_.io.think_time_us;
      if (pipeline != nullptr && think_gap_spent) {
        while (!pipeline->TryEnqueue(page)) {
          // Backpressure: drain completions (serially, here) until the
          // in-flight budget frees a slot. Predictions are never
          // dropped, preserving the superset-ordering contract.
          AsyncFetchResult r;
          if (pipeline->TryDrainOne(&r)) {
            ApplyCompletion(std::move(r), &q);
          } else {
            std::this_thread::sleep_for(kAwaitPoll);
          }
        }
      } else {
        Page tmp;
        const Status st = store->ReadPage(page, &tmp);
        if (!st.ok()) {
          ++q.faults_seen;
          cache_->Erase(page);  // Mirrors the async failed-completion path.
        } else if (frames_[page] == nullptr) {
          frames_[page] = std::make_unique<Page>(std::move(tmp));
        }
      }
    }

    // --- Think time: the user issues the next query think_time_us
    // after seeing the response. Prediction and (sync) plan fetching
    // run inside that gap and delay the next query when they overrun
    // it — the overrun is exactly what async mode hides. -------------
    const int64_t after_response = q_sw.ElapsedMicros() - q.wall_response_us;
    if (config_.io.think_time_us > after_response) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.io.think_time_us - after_response));
    }
    q.wall_total_us = q_sw.ElapsedMicros();
    stats.queries.push_back(q);
  }

  if (pipeline != nullptr) {
    // Quiesce: let the worker finish the final plan, then apply the
    // remaining completions on this thread.
    pipeline->WaitWorkerIdle();
    FileQueryStats* tail =
        stats.queries.empty() ? nullptr : &stats.queries.back();
    AsyncFetchResult r;
    while (pipeline->TryDrainOne(&r)) ApplyCompletion(std::move(r), tail);
    // Superset-ordering contract: the worker issued exactly the
    // non-inline plan pages, in plan order — its log must be a
    // subsequence of the plan.
    assert(IsSubsequence(pipeline->IssueLog(), stats.prefetch_order));
    pipeline->Stop();
  }
  if (!owns_cache()) cache_->SetActiveSession(PrefetchCache::kNoSession);
  stats.result_hash = hash;
  stats.wall_total_us = total_sw.ElapsedMicros();
  return stats;
}

}  // namespace scout
