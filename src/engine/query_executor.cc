#include "engine/query_executor.h"

#include <algorithm>
#include <cassert>

namespace scout {
namespace {

/// Restores ascending order of a page list that arrives as a
/// concatenation of ascending runs. Both index builders emit QueryPages
/// results in bulk-load (= page id) order, so the common case is a single
/// run and costs one O(n) scan instead of a full std::sort; genuinely
/// unsorted input degrades to balanced run merging, O(n log runs).
void MergeSortedRuns(std::vector<PageId>* pages) {
  std::vector<PageId>& p = *pages;
  if (p.size() < 2) return;
  // Allocation-free fast path: already one sorted run.
  size_t first_descent = p.size();
  for (size_t i = 1; i < p.size(); ++i) {
    if (p[i] < p[i - 1]) {
      first_descent = i;
      break;
    }
  }
  if (first_descent == p.size()) return;
  std::vector<size_t> bounds;  // Run boundaries: 0, ..., p.size().
  bounds.push_back(0);
  bounds.push_back(first_descent);
  for (size_t i = first_descent + 1; i < p.size(); ++i) {
    if (p[i] < p[i - 1]) bounds.push_back(i);
  }
  bounds.push_back(p.size());
  while (bounds.size() > 2) {
    std::vector<size_t> next;
    next.push_back(0);
    for (size_t i = 0; i + 2 < bounds.size(); i += 2) {
      std::inplace_merge(p.begin() + bounds[i], p.begin() + bounds[i + 1],
                         p.begin() + bounds[i + 2]);
      next.push_back(bounds[i + 2]);
    }
    if (bounds.size() % 2 == 0) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

}  // namespace

/// PrefetchIo implementation that charges fetches against the window
/// budget. The window also closes when the cache is full: a small cache
/// halts prefetching prematurely (paper §7.4.4).
class QueryExecutor::WindowIo : public PrefetchIo {
 public:
  WindowIo(QueryExecutor* executor, SimMicros budget)
      : executor_(executor), remaining_(budget) {}

  void QueryPages(const Region& region, std::vector<PageId>* out) override {
    executor_->index_->QueryPages(region, out);
  }

  bool IsCached(PageId page) const override {
    return executor_->cache_->Contains(page);
  }

  bool FetchPage(PageId page) override {
    if (executor_->cache_->Contains(page)) return true;
    if (remaining_ <= 0) return false;
    if (executor_->cache_->Full() && executor_->owns_cache()) {
      // Single-stream mode: prefetching halts once the cache is full
      // (paper §7.4.4 — a small cache stops prefetching prematurely).
      // A *shared* serving cache is a long-lived resource instead:
      // prefetches displace the LRU page (Insert evicts), so capacity
      // pressure between sessions shows up as cross-session evictions,
      // not as silently halted windows.
      remaining_ = 0;
      return false;
    }
    // A read started while the window is open completes even if the user
    // issues the next query meanwhile; the window then closes.
    const SimMicros cost = executor_->disk_.ReadPage(page);
    executor_->cache_->Insert(page);
    remaining_ -= cost;
    ++pages_fetched_;
    return true;
  }

  bool WindowOpen() const override { return remaining_ > 0; }

  size_t pages_fetched() const { return pages_fetched_; }

 private:
  QueryExecutor* executor_;
  SimMicros remaining_;
  size_t pages_fetched_ = 0;
};

void QueryExecutor::Prepare(const SpatialIndex& index, const Region& region,
                            PreparedQuery* prep) {
  prep->pages.clear();
  prep->objects.clear();
  index.QueryPages(region, &prep->pages);
  MergeSortedRuns(&prep->pages);

  for (PageId page : prep->pages) {
    const Page& p = index.store().page(page);
    if (region.ContainsBox(p.bounds)) {
      // Containment fast path: the page's bounding box (and therefore
      // every object bound inside it) lies fully inside the region, so
      // the per-object Intersects test cannot fail — batch-append.
      for (const SpatialObject& obj : p.objects) {
        prep->objects.push_back(GraphInput{&obj, page});
      }
      continue;
    }
    for (const SpatialObject& obj : p.objects) {
      if (region.Intersects(obj.Bounds())) {
        prep->objects.push_back(GraphInput{&obj, page});
      }
    }
  }
}

QueryExecutor::QueryExecutor(const SpatialIndex* index,
                             Prefetcher* prefetcher,
                             const ExecutorConfig& config)
    : index_(index),
      prefetcher_(prefetcher),
      config_(config),
      disk_(config.disk, &clock_),
      owned_cache_(std::make_unique<PrefetchCache>(config.cache_bytes)),
      cache_(owned_cache_.get()) {}

QueryExecutor::QueryExecutor(const SpatialIndex* index,
                             Prefetcher* prefetcher,
                             const ExecutorConfig& config,
                             PrefetchCache* shared_cache)
    : index_(index),
      prefetcher_(prefetcher),
      config_(config),
      disk_(config.disk, &clock_),
      cache_(shared_cache) {}

SimMicros QueryExecutor::ColdReadCost(
    const std::vector<PageId>& sorted_pages) const {
  SimMicros cost = 0;
  PageId prev = kInvalidPageId;
  for (PageId page : sorted_pages) {
    const bool sequential = prev != kInvalidPageId && page == prev + 1;
    cost += sequential ? config_.disk.sequential_read_us
                       : config_.disk.random_read_us;
    prev = page;
  }
  return cost;
}

void QueryExecutor::BeginSequence() {
  // Cold start, as between the paper's measurement runs (§7.1: caches and
  // disk buffers cleared after each sequence). A borrowed shared cache is
  // deliberately left alone: its contents belong to all sessions and its
  // lifecycle to the serving engine.
  if (owned_cache_) owned_cache_->Clear();
  disk_.Reset();
  clock_.Reset();
  carried_overflow_ = 0;
  prefetcher_->BeginSequence();
}

QueryRunStats QueryExecutor::ExecuteQuery(const Region& region,
                                          const PreparedQuery& prep) {
  return ExecuteQuery(region, prep, nullptr);
}

QueryRunStats QueryExecutor::ExecuteQuery(const Region& region,
                                          const PreparedQuery& prep,
                                          ObservePrep* observe_prep) {
  QueryRunStats q;

  // --- Execute the query: cache hits first, misses from disk. ---
  q.pages_total = prep.pages.size();
  for (PageId page : prep.pages) {
    if (cache_->TouchIfPresent(page)) {
      ++q.pages_hit;
    } else {
      q.residual_io_us += disk_.ReadPage(page);
      if (config_.cache_residual_reads) cache_->Insert(page);
    }
  }
  q.result_objects = prep.objects.size();

  q.response_us = q.residual_io_us + carried_overflow_;
  carried_overflow_ = 0;
  // Graph building is part of the user-visible response (the Figure 14
  // breakdown): it is interleaved with result retrieval, so it extends
  // query execution, not the idle window.
  // (Added below once the breakdown is known.)

  // --- Prediction computation + prefetch window (Figure 2). ---
  const SimMicros d_cold = ColdReadCost(prep.pages);
  q.window_us = static_cast<SimMicros>(config_.prefetch_window_ratio *
                                       static_cast<double>(d_cold));

  QueryResultView view;
  view.region = &region;
  view.objects = std::span<const GraphInput>(prep.objects);
  view.pages = std::span<const PageId>(prep.pages);
  q.observe_us = prefetcher_->Observe(view, observe_prep);

  const ObserveBreakdown& breakdown = prefetcher_->last_observe();
  q.graph_build_us = breakdown.graph_build_us;
  q.prediction_us = breakdown.prediction_us;
  q.graph_vertices = breakdown.graph_vertices;
  q.graph_edges = breakdown.graph_edges;
  q.graph_memory_bytes = breakdown.graph_memory_bytes;
  q.num_candidates = breakdown.num_candidates;
  q.was_reset = breakdown.was_reset;
  q.wall_graph_build_us = breakdown.wall_graph_build_us;
  q.wall_prediction_us = breakdown.wall_prediction_us;

  q.response_us += q.graph_build_us;

  SimMicros budget = q.window_us;
  if (config_.charge_prediction) {
    // Only the prediction (traversal) competes with the prefetch
    // window; graph building overlaps result retrieval (paper §4,
    // Figure 2) and is charged to the response above.
    const SimMicros predict_part = q.observe_us - q.graph_build_us;
    budget = std::max<SimMicros>(0, q.window_us - predict_part);
    carried_overflow_ = std::max<SimMicros>(0, predict_part - q.window_us);
  }

  WindowIo io(this, budget);
  prefetcher_->RunPrefetch(&io);
  q.prefetch_pages = io.pages_fetched();
  return q;
}

SequenceRunStats QueryExecutor::RunSequence(std::span<const Region> queries) {
  SequenceRunStats stats;
  stats.queries.reserve(queries.size());
  BeginSequence();
  PreparedQuery prep;
  for (const Region& region : queries) {
    Prepare(*index_, region, &prep);
    stats.queries.push_back(ExecuteQuery(region, prep));
  }
  return stats;
}

SequenceRunStats QueryExecutor::RunSequence(
    std::span<const Region> queries, std::span<const PreparedQuery> preps) {
  assert(preps.size() >= queries.size());
  SequenceRunStats stats;
  stats.queries.reserve(queries.size());
  BeginSequence();
  for (size_t i = 0; i < queries.size(); ++i) {
    stats.queries.push_back(ExecuteQuery(queries[i], preps[i]));
  }
  return stats;
}

}  // namespace scout
