#pragma once

#include <cstdint>
#include <memory>

#include "engine/query_executor.h"
#include "workload/query_gen.h"

namespace scout {

/// One client's query stream in a multi-client serving engine: the
/// session owns everything per-stream — its guided sequence, prefetcher
/// (bound via Prefetcher::BindSession so no candidate-graph or RNG state
/// leaks across sessions), shared-cache executor (simulated clock + disk
/// channel) and accumulated stats — while the prefetch cache itself is
/// shared across sessions and owned by the engine.
///
/// A session's timeline follows the paper's Figure 2 cycle: the user
/// issues a query at next_time(), waits response_us for the result,
/// computes on it for window_us (the prefetch window), then issues the
/// next query. The engine interleaves sessions by executing whichever
/// session's next query has the lowest simulated timestamp.
class ClientSession {
 public:
  /// `shared_cache` and `disk_queue` are owned by the engine
  /// (`disk_queue` may be null: the session then simulates a private
  /// disk); `prefetcher` is owned here and bound to `id`.
  ClientSession(uint32_t id, const SpatialIndex* index,
                std::unique_ptr<Prefetcher> prefetcher,
                const ExecutorConfig& config, PrefetchCache* shared_cache,
                SharedDiskQueue* disk_queue, GuidedSequence sequence);

  uint32_t id() const { return id_; }
  const GuidedSequence& sequence() const { return sequence_; }

  /// Simulated time at which this session issues its next query.
  SimMicros next_time() const { return next_time_; }
  bool Done() const { return next_step_ >= sequence_.queries.size(); }
  size_t next_step() const { return next_step_; }

  /// Rewinds the session to a cold start: step 0, simulated time 0,
  /// executor/prefetcher sequence state reset. The shared cache is NOT
  /// touched (the engine clears it once per run).
  void Reset();

  /// Executes the session's next query against the shared cache using
  /// its precomputed pure part, records the stats and advances the
  /// session's timeline by the query's response + prefetch window.
  /// `observe_prep` (optional) carries the pure part of the prefetcher's
  /// Observe precomputed by PrepareObserveChain.
  void ExecuteNext(const QueryExecutor::PreparedQuery& prep,
                   ObservePrep* observe_prep = nullptr);

  /// Precomputes the pure Observe part of every step, in step order (a
  /// session's Observes form a dependency chain; cross-session order is
  /// free because all graph state is per-session). Leaves `out` empty
  /// when this session's prefetcher cannot prepare ahead (its graph
  /// build reads sequence state). Runs on worker threads: touches only
  /// this session's prefetcher configuration and the precomputed preps.
  void PrepareObserveChain(std::span<const QueryExecutor::PreparedQuery> preps,
                           std::vector<ObservePrep>* out) const;

  /// Stats of the queries executed since the last Reset.
  const SequenceRunStats& stats() const { return stats_; }

 private:
  uint32_t id_;
  std::unique_ptr<Prefetcher> prefetcher_;
  QueryExecutor executor_;
  GuidedSequence sequence_;
  SequenceRunStats stats_;
  size_t next_step_ = 0;
  SimMicros next_time_ = 0;
};

}  // namespace scout

