#include "engine/client_session.h"

#include <utility>

namespace scout {

ClientSession::ClientSession(uint32_t id, const SpatialIndex* index,
                             std::unique_ptr<Prefetcher> prefetcher,
                             const ExecutorConfig& config,
                             PrefetchCache* shared_cache,
                             SharedDiskQueue* disk_queue,
                             GuidedSequence sequence)
    : id_(id),
      prefetcher_(std::move(prefetcher)),
      executor_(index, prefetcher_.get(), config, shared_cache, disk_queue,
                id),
      sequence_(std::move(sequence)) {
  prefetcher_->BindSession(id_);
  stats_.queries.reserve(sequence_.queries.size());
}

void ClientSession::Reset() {
  stats_.queries.clear();
  next_step_ = 0;
  next_time_ = 0;
  executor_.BeginSequence();
}

void ClientSession::PrepareObserveChain(
    std::span<const QueryExecutor::PreparedQuery> preps,
    std::vector<ObservePrep>* out) const {
  out->clear();
  if (!prefetcher_->SupportsPreparedObserve()) return;
  out->resize(preps.size());
  for (size_t i = 0; i < preps.size(); ++i) {
    QueryResultView view;
    view.region = &sequence_.queries[i];
    view.objects = std::span<const GraphInput>(preps[i].objects);
    view.pages = std::span<const PageId>(preps[i].pages);
    prefetcher_->PrepareObserve(view, &(*out)[i]);
  }
}

void ClientSession::ExecuteNext(const QueryExecutor::PreparedQuery& prep,
                                ObservePrep* observe_prep) {
  const Region& region = sequence_.queries[next_step_];
  const QueryRunStats q = executor_.ExecuteQuery(region, prep, observe_prep);
  // The user sees the response, then computes on the result for the
  // prefetch-window duration before issuing the next query (Figure 2).
  next_time_ += q.response_us + q.window_us;
  stats_.queries.push_back(q);
  ++next_step_;
}

}  // namespace scout
