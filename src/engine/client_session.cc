#include "engine/client_session.h"

#include <utility>

namespace scout {

ClientSession::ClientSession(uint32_t id, const SpatialIndex* index,
                             std::unique_ptr<Prefetcher> prefetcher,
                             const ExecutorConfig& config,
                             PrefetchCache* shared_cache,
                             GuidedSequence sequence)
    : id_(id),
      prefetcher_(std::move(prefetcher)),
      executor_(index, prefetcher_.get(), config, shared_cache),
      sequence_(std::move(sequence)) {
  prefetcher_->BindSession(id_);
  stats_.queries.reserve(sequence_.queries.size());
}

void ClientSession::Reset() {
  stats_.queries.clear();
  next_step_ = 0;
  next_time_ = 0;
  executor_.BeginSequence();
}

void ClientSession::ExecuteNext(const QueryExecutor::PreparedQuery& prep) {
  const Region& region = sequence_.queries[next_step_];
  const QueryRunStats q = executor_.ExecuteQuery(region, prep);
  // The user sees the response, then computes on the result for the
  // prefetch-window duration before issuing the next query (Figure 2).
  next_time_ += q.response_us + q.window_us;
  stats_.queries.push_back(q);
  ++next_step_;
}

}  // namespace scout
