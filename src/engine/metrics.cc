#include "engine/metrics.h"

#include <algorithm>
#include <cmath>

namespace scout {

double SequenceRunStats::CacheHitRatePct() const {
  const size_t total = TotalPagesTotal();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(TotalPagesHit()) /
         static_cast<double>(total);
}

SimMicros SequenceRunStats::TotalResponseUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.response_us;
  return sum;
}

SimMicros SequenceRunStats::TotalResidualUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.residual_io_us;
  return sum;
}

SimMicros SequenceRunStats::TotalDiskWaitUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.disk_wait_us;
  return sum;
}

size_t SequenceRunStats::TotalAdmissionClosedWindows() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.admission_closed_window ? 1 : 0;
  return sum;
}

SimMicros SequenceRunStats::TotalGraphBuildUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.graph_build_us;
  return sum;
}

SimMicros SequenceRunStats::TotalPredictionUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.prediction_us;
  return sum;
}

size_t SequenceRunStats::TotalPagesTotal() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.pages_total;
  return sum;
}

size_t SequenceRunStats::TotalPagesHit() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.pages_hit;
  return sum;
}

size_t SequenceRunStats::TotalPrefetchPages() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.prefetch_pages;
  return sum;
}

size_t SequenceRunStats::TotalResultObjects() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.result_objects;
  return sum;
}

uint64_t SequenceRunStats::TotalFaultsSeen() const {
  uint64_t sum = 0;
  for (const auto& q : queries) sum += q.faults_seen;
  return sum;
}

uint64_t SequenceRunStats::TotalRetries() const {
  uint64_t sum = 0;
  for (const auto& q : queries) sum += q.retries;
  return sum;
}

SimMicros SequenceRunStats::TotalBackoffWaitUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.backoff_wait_us;
  return sum;
}

size_t SequenceRunStats::TotalShedPrefetches() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.shed_prefetches;
  return sum;
}

size_t SequenceRunStats::DeadlineMisses() const {
  size_t sum = 0;
  for (const auto& q : queries) {
    sum += q.outcome == StatusCode::kDeadlineExceeded ? 1 : 0;
  }
  return sum;
}

size_t SequenceRunStats::UnavailableQueries() const {
  size_t sum = 0;
  for (const auto& q : queries) {
    sum += q.outcome == StatusCode::kUnavailable ? 1 : 0;
  }
  return sum;
}

SimMicros SequenceRunStats::ResponsePercentileUs(double p) const {
  if (queries.empty()) return 0;
  std::vector<SimMicros> responses;
  responses.reserve(queries.size());
  for (const auto& q : queries) responses.push_back(q.response_us);
  std::sort(responses.begin(), responses.end());
  if (p <= 0.0) return responses.front();
  if (p >= 100.0) return responses.back();
  // Nearest-rank: ceil(p/100 * n), 1-based.
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(responses.size())));
  return responses[rank == 0 ? 0 : rank - 1];
}

}  // namespace scout
