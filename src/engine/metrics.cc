#include "engine/metrics.h"

namespace scout {

double SequenceRunStats::CacheHitRatePct() const {
  const size_t total = TotalPagesTotal();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(TotalPagesHit()) /
         static_cast<double>(total);
}

SimMicros SequenceRunStats::TotalResponseUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.response_us;
  return sum;
}

SimMicros SequenceRunStats::TotalResidualUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.residual_io_us;
  return sum;
}

SimMicros SequenceRunStats::TotalDiskWaitUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.disk_wait_us;
  return sum;
}

size_t SequenceRunStats::TotalAdmissionClosedWindows() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.admission_closed_window ? 1 : 0;
  return sum;
}

SimMicros SequenceRunStats::TotalGraphBuildUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.graph_build_us;
  return sum;
}

SimMicros SequenceRunStats::TotalPredictionUs() const {
  SimMicros sum = 0;
  for (const auto& q : queries) sum += q.prediction_us;
  return sum;
}

size_t SequenceRunStats::TotalPagesTotal() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.pages_total;
  return sum;
}

size_t SequenceRunStats::TotalPagesHit() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.pages_hit;
  return sum;
}

size_t SequenceRunStats::TotalPrefetchPages() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.prefetch_pages;
  return sum;
}

size_t SequenceRunStats::TotalResultObjects() const {
  size_t sum = 0;
  for (const auto& q : queries) sum += q.result_objects;
  return sum;
}

}  // namespace scout
