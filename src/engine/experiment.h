#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/stats.h"
#include "engine/query_executor.h"
#include "workload/dataset.h"
#include "workload/query_gen.h"

namespace scout {

/// One microbenchmark row of the paper's Figure 10.
struct MicrobenchSpec {
  std::string_view name;
  uint32_t queries_in_sequence;
  double query_volume;  ///< µm³.
  QueryAspect aspect;
  double gap_distance;  ///< µm.
  double prefetch_window_ratio;
};

/// The seven microbenchmarks of Figure 10, verbatim.
inline constexpr MicrobenchSpec kMicrobenchmarks[] = {
    {"adhoc-stat", 25, 80000.0, QueryAspect::kCube, 0.0, 0.8},
    {"adhoc-pattern", 25, 80000.0, QueryAspect::kCube, 0.0, 1.4},
    {"model-building", 35, 20000.0, QueryAspect::kCube, 0.0, 2.0},
    {"vis-low-quality", 65, 30000.0, QueryAspect::kFrustum, 0.0, 1.2},
    {"vis-high-quality", 65, 30000.0, QueryAspect::kFrustum, 0.0, 1.6},
    {"vis-gaps-high", 65, 30000.0, QueryAspect::kFrustum, 25.0, 1.2},
    {"vis-gaps-low", 65, 30000.0, QueryAspect::kFrustum, 25.0, 1.6},
};

/// Indices of the no-gap microbenchmarks (Figure 11) and the gap ones
/// (Figure 12) in kMicrobenchmarks.
inline constexpr int kNoGapBenchCount = 5;
inline constexpr int kGapBenchFirst = 5;

/// Aggregated outcome of running one prefetcher over many sequences.
struct ExperimentResult {
  std::string prefetcher_name;
  double hit_rate_pct = 0.0;       ///< Pooled over all sequences.
  double speedup = 1.0;            ///< vs the no-prefetching baseline.
  RunningStat seq_hit_rate;        ///< Per-sequence hit-rate spread.
  SimMicros total_response_us = 0;
  SimMicros baseline_response_us = 0;
  SimMicros total_residual_us = 0;
  SimMicros total_disk_wait_us = 0;  ///< Shared-disk queueing delay.
  SimMicros total_graph_build_us = 0;
  SimMicros total_prediction_us = 0;
  size_t total_pages = 0;
  size_t total_hits = 0;
  size_t total_result_objects = 0;
  size_t num_sequences = 0;
  size_t total_queries = 0;
  size_t total_resets = 0;  ///< Candidate-set resets (SCOUT variants).
  double mean_pages_per_query = 0.0;
};

/// Prefetch-cache capacity scaled to the dataset like the paper's
/// 4 GB-for-33 GB setup (fraction defaults to ~12%).
uint64_t ScaledCacheBytes(const PageStore& store, double fraction = 0.12);

/// Runs `num_sequences` guided sequences (identical for a given seed and
/// dataset, regardless of the prefetcher) through the executor, measuring
/// hit rate and speedup vs a NoPrefetcher baseline run on the very same
/// sequences.
ExperimentResult RunGuidedExperiment(const Dataset& dataset,
                                     const SpatialIndex& index,
                                     Prefetcher* prefetcher,
                                     const QuerySequenceConfig& query_config,
                                     const ExecutorConfig& executor_config,
                                     uint32_t num_sequences, uint64_t seed);

/// QuerySequenceConfig + ExecutorConfig for a Figure-10 microbenchmark.
QuerySequenceConfig QueryConfigFor(const MicrobenchSpec& spec);
ExecutorConfig ExecutorConfigFor(const MicrobenchSpec& spec,
                                 const PageStore& store);

/// Makes a fresh prefetcher instance. RunBatch builds one executor stack
/// (clock, disk model, cache, prefetcher) per sequence, so prefetchers
/// must be constructible from scratch rather than shared across clients.
using PrefetcherFactory = std::function<std::unique_ptr<Prefetcher>()>;

/// Multi-client entry point: runs the same guided sequences as
/// RunGuidedExperiment (identical per-sequence workloads for a given
/// seed) but executes independent sequences concurrently on a pool of
/// `num_workers` threads. Every sequence gets its own simulated clock,
/// disk, cache and prefetcher (from `make_prefetcher`), and results are
/// aggregated in sequence order — so the outcome is bit-identical for
/// any worker count. `num_workers` is clamped to [1, num_sequences].
ExperimentResult RunBatch(const Dataset& dataset, const SpatialIndex& index,
                          const PrefetcherFactory& make_prefetcher,
                          const QuerySequenceConfig& query_config,
                          const ExecutorConfig& executor_config,
                          uint32_t num_sequences, uint64_t seed,
                          uint32_t num_workers);

/// Outcome of serving N sessions over one shared prefetch cache.
/// `combined` pools all sessions exactly like RunBatch pools sequences
/// (folded in session-id order); the sharing fields split the shared
/// cache's behavior into constructive sharing (cross-session hits: a
/// session served by another session's prefetch) vs contention
/// (evictions inflicted across sessions).
struct SharedCacheResult {
  ExperimentResult combined;
  std::vector<double> session_hit_rate_pct;     ///< Per session.
  std::vector<SimMicros> session_response_us;   ///< Per session.
  std::vector<CacheSessionStats> session_cache;  ///< Per session.
  uint64_t hits_own = 0;
  uint64_t hits_cross = 0;
  uint64_t evictions = 0;
  /// Share of all cache hits served from another session's prefetch.
  double cross_hit_share_pct = 0.0;
  /// Shared-disk contention (zeros under Legacy() serving).
  DiskQueueStats disk;
  std::vector<SimMicros> session_disk_wait_us;  ///< Per session.
  /// Windows closed early by priced admission control (QoS serving).
  size_t admission_closed_windows = 0;

  // ---- Degraded-mode serving aggregates (all zero without an armed
  // fault schedule; see FaultSchedule / FaultPolicy). -----------------
  uint64_t faults_seen = 0;        ///< Transient read failures observed.
  uint64_t retries = 0;            ///< Demand-miss retry rounds issued.
  SimMicros backoff_wait_us = 0;   ///< Simulated backoff time served.
  size_t shed_prefetches = 0;      ///< Window fetches shed while degraded.
  size_t deadline_misses = 0;      ///< Queries ending kDeadlineExceeded.
  size_t unavailable_queries = 0;  ///< Queries ending kUnavailable.
  /// Simulated p99 response over every session's queries (nearest-rank,
  /// pooled in session-id order) — the tail metric degraded-mode
  /// serving is designed to protect.
  SimMicros p99_response_us = 0;
};

/// Multi-client shared-cache entry point: serves `num_sessions` query
/// streams (session s's workload = fork s of Rng(seed), identical to the
/// sequences RunBatch runs) interleaved over ONE shared PrefetchCache,
/// under the deterministic simulated-time scheduler of MultiClientEngine
/// and the serving semantics of `executor_config.serving` (QoS quotas +
/// priced admission + scaled capacity + shared disk by default;
/// SharedServingConfig::Legacy() for the pre-QoS model). Bit-identical
/// for any `num_workers` and across reruns. One deliberate policy
/// difference vs the private caches of RunBatch: a full *shared* cache
/// evicts pages on prefetch (capacity contention between sessions) where
/// a full private cache halts prefetching (paper §7.4.4) — under
/// Legacy() serving with a cache that never fills, num_sessions = 1 is
/// bit-identical to RunBatch(num_sequences = 1).
SharedCacheResult RunSharedCacheExperiment(
    const Dataset& dataset, const SpatialIndex& index,
    const PrefetcherFactory& make_prefetcher,
    const QuerySequenceConfig& query_config,
    const ExecutorConfig& executor_config, uint32_t num_sessions,
    uint64_t seed, uint32_t num_workers);

}  // namespace scout

