#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/client_session.h"
#include "engine/experiment.h"

namespace scout {

/// What one multi-client serving run produced, in session-id order.
/// Baselines are the same sequences run with NoPrefetcher on private
/// caches (the paper's speedup denominator; with residual caching off a
/// baseline never populates a cache, so private vs shared is moot).
struct MultiClientOutcome {
  std::string prefetcher_name;
  std::vector<SequenceRunStats> runs;
  std::vector<SequenceRunStats> baselines;
  /// Shared-cache attribution: hits_own/hits_cross measure constructive
  /// sharing, evictions_caused/pages_evicted measure contention.
  std::vector<CacheSessionStats> cache_stats;
  /// Shared-disk contention (zeros when serving.shared_disk is off).
  DiskQueueStats disk_stats;
  std::vector<DiskQueueStats> session_disk_stats;  ///< Per session.
};

/// Serves N client sessions over ONE shared PrefetchCache (paper §8
/// outlook: many scientists exploring the same dataset concurrently).
///
/// Determinism contract: all engine state advances on simulated time.
/// The scheduler is a deterministic interleaver — the next event is
/// always the session with the lowest next-query SimClock timestamp,
/// ties broken by lowest session id — and every shared-cache/disk effect
/// is applied serially in that schedule order (single-writer apply
/// loop). Worker threads only ever compute the *pure* per-query work
/// (index lookups + result filtering, the prefetchers' Observe graph
/// construction — chained in step order per session, fanned out across
/// sessions — and the no-prefetch baselines), whose results are
/// independent of execution order. Outcomes are therefore
/// bit-identical for any worker count, any number of reruns, and any
/// host machine — the same contract the single-stream engine keeps.
///
/// Granularity caveat: a session's step (query execution + prediction +
/// its whole prefetch window) is applied *atomically* at its query-issue
/// timestamp. Two sessions whose windows overlap in simulated time do
/// not interleave individual page fetches; whichever query was issued
/// earlier lands its full window first, so a session may hit pages a
/// peer fetched later within an overlapping window than a page-granular
/// timeline would allow. This biases cross-session hit rates upward by
/// at most one window of slack; making fetches event-granular is a
/// future refinement that would re-seed the fig_multiclient baselines.
class MultiClientEngine {
 public:
  /// Pregenerates session s's workload as fork s of Rng(seed) — exactly
  /// the sequences RunBatch/RunGuidedExperiment generate for the same
  /// seed, so shared-cache serving is apples-to-apples comparable with
  /// private-cache runs.
  ///
  /// Serving semantics follow `executor_config.serving`: the shared
  /// cache holds cache_bytes scaled by the session count (Legacy(): the
  /// fixed cache_bytes), evicts by quota-segmented LRU with priced
  /// admission (Legacy(): pure global LRU), and all reads — including
  /// the no-prefetch baselines, each on a private queue instance so the
  /// speedup denominator sees the same disk — go through one shared
  /// 4-channel disk queue (Legacy(): a private DiskModel per session).
  MultiClientEngine(const Dataset& dataset, const SpatialIndex& index,
                    const PrefetcherFactory& make_prefetcher,
                    const QuerySequenceConfig& query_config,
                    const ExecutorConfig& executor_config,
                    uint32_t num_sessions, uint64_t seed);

  /// Runs every session to completion, interleaved over the shared
  /// cache. Rerunnable: each call cold-starts the cache and sessions.
  /// `num_workers` caps the thread count of the pure phases (clamped
  /// per phase to the task count) and does not affect results.
  MultiClientOutcome Run(uint32_t num_workers);

  uint32_t num_sessions() const {
    return static_cast<uint32_t>(sessions_.size());
  }
  const PrefetchCache& shared_cache() const { return shared_cache_; }
  const SharedDiskQueue& shared_disk() const { return shared_disk_; }

  /// Shared-cache capacity for `num_sessions` under `config.serving`
  /// (cache_bytes scaled per session; the legacy fixed capacity when
  /// cache_scale_per_session is 0).
  static uint64_t ScaledSharedCacheBytes(const ExecutorConfig& config,
                                         uint32_t num_sessions);

 private:
  const SpatialIndex* index_;
  ExecutorConfig config_;
  std::string prefetcher_name_;
  PrefetchCache shared_cache_;
  SharedDiskQueue shared_disk_;
  std::vector<std::unique_ptr<ClientSession>> sessions_;
};

}  // namespace scout

