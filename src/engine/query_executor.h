#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "engine/metrics.h"
#include "index/spatial_index.h"
#include "prefetch/cost_model.h"
#include "prefetch/prefetcher.h"
#include "storage/cache.h"
#include "storage/disk_model.h"
#include "storage/fault_model.h"
#include "storage/shared_disk.h"

namespace scout {

class FilePageStore;          // storage/file_page_store.h
class AsyncPrefetchPipeline;  // prefetch/async_pipeline.h
struct AsyncFetchResult;      // prefetch/async_pipeline.h

/// Degraded-mode serving policy: what a session does when the storage
/// layer reports transient failures (see FaultSchedule). All budgets are
/// simulated time, so policy decisions are bit-identical across reruns
/// and worker counts. With no fault schedule attached none of these
/// knobs changes any simulated metric.
struct FaultPolicy {
  /// Per-query response deadline. A query whose accumulated response
  /// time exceeds the budget stops retrying and reports
  /// kDeadlineExceeded (partial results are still accounted; the
  /// sequence keeps running). 0 disables the deadline.
  SimMicros query_deadline_us = 0;
  /// Retry budget for demand (residual) misses. Retries exhausted with
  /// failures outstanding report kUnavailable.
  uint32_t max_retries = 3;
  /// Exponential backoff between retry rounds: the k-th retry waits
  /// backoff_base_us << k, plus jitter.
  SimMicros backoff_base_us = 1000;
  /// Uniform jitter fraction added to each backoff wait (decorrelates
  /// sessions retrying into the same outage; drawn from a per-session
  /// seeded stream, so still fully deterministic).
  double backoff_jitter_frac = 0.25;
  /// Shed prefetch I/O while the session is under retry pressure:
  /// window fetches are dropped (the session falls back to on-demand
  /// serving) until degraded_window_us of simulated time passes without
  /// new failures. Demand misses are never shed — prefetches go first.
  bool shed_prefetch_on_retry = true;
  /// How long after the last observed failure the session keeps
  /// shedding prefetches.
  SimMicros degraded_window_us = 100000;
};

/// Multi-client serving-quality (QoS) knobs: how the ONE shared cache
/// and the ONE shared disk behave when N sessions contend. Consumed by
/// MultiClientEngine / RunSharedCacheExperiment; single-stream executors
/// (private cache, private disk) ignore it entirely.
///
/// The defaults are the QoS serving model (the `post-qos` baseline
/// family): quota-segmented eviction + priced admission on the shared
/// cache, per-session capacity scaling, and all reads through the shared
/// 4-channel disk queue. Legacy() restores the `post-multiclient`-era
/// semantics (pure global LRU, fixed capacity, one private simulated
/// disk per session) bit-identically — the `pre-qos` anchor proves it.
struct SharedServingConfig {
  /// Quota-segmented shared-cache eviction (PrefetchCache QoS mode).
  bool cache_quotas = true;
  /// Priced admission control for prefetch inserts into a full shared
  /// cache: reject inserts whose expected value does not cover the
  /// expected loss of the cross-session eviction they would cause.
  bool priced_admission = true;
  /// Pricing parameters for `priced_admission`.
  PrefetchAdmission admission;
  /// Shared-cache capacity multiplier per active session: the engine
  /// sizes the cache to cache_bytes * max(1, scale * num_sessions), so a
  /// serving deployment provisions cache with its session count. 0 keeps
  /// the legacy fixed `cache_bytes` capacity.
  double cache_scale_per_session = 1.0;
  /// Serve every session's reads through one shared SharedDiskQueue
  /// (cross-session head contention) instead of per-session DiskModels.
  bool shared_disk = true;
  /// Channel count of the shared disk array (the paper's 4-disk stripe).
  uint32_t disk_channels = 4;

  /// The pre-QoS serving semantics (global LRU, fixed capacity, private
  /// per-session disks): bit-identical to the `post-multiclient` era.
  static SharedServingConfig Legacy() {
    SharedServingConfig legacy;
    legacy.cache_quotas = false;
    legacy.priced_admission = false;
    legacy.cache_scale_per_session = 0.0;
    legacy.shared_disk = false;
    return legacy;
  }
};

/// Which backend serves page reads.
enum class IoBackend {
  /// DiskModel/SharedDiskQueue simulated time — the deterministic
  /// oracle; every published figure's simulated metrics come from here.
  kSimulated,
  /// FilePageStore real reads (RunSequenceFile): wall-clock measured
  /// serving over an on-disk page file.
  kFile,
};

/// Real-I/O serving configuration (consulted only by RunSequenceFile).
struct FileIoConfig {
  IoBackend backend = IoBackend::kSimulated;
  /// The on-disk page store to serve from. Borrowed, never owned;
  /// required when backend == kFile.
  FilePageStore* store = nullptr;
  /// Decoupled async prefetching: plan pages are enqueued to a
  /// dedicated fetch worker instead of being fetched inline, so fetch
  /// overlaps prediction, think time and the next query's execution.
  bool async_prefetch = false;
  /// Prefetch budget per window, in pages. The file backend has no
  /// simulated clock, so the window is bounded by page count rather
  /// than simulated time — fixed at a budget so sync and async modes
  /// plan identical fetch sets (the differential contract).
  size_t prefetch_budget_pages = 16;
  /// Async pipeline in-flight bound (pages accepted but not yet
  /// drained); enqueueing backpressures beyond it.
  size_t max_in_flight = 64;
  /// Emulated user think time between response delivery and the next
  /// query (wall microseconds). The sync path fetches its plan inside
  /// this gap and overruns it when the plan is slow; the async path
  /// always sleeps the full gap while the worker fetches.
  int64_t think_time_us = 0;
};

/// Per-query measurements of a real-I/O (file backend) run. Counters
/// (pages, hits, demand reads, faults) are deterministic at a fixed
/// configuration; wall_* fields are measured time.
struct FileQueryStats {
  size_t pages_total = 0;
  size_t pages_hit = 0;       ///< Logical prefetch-cache hits.
  size_t result_objects = 0;
  size_t demand_reads = 0;    ///< Reads issued for logical misses.
  size_t prefetch_planned = 0;  ///< Plan pages fetched/enqueued.
  size_t late_hit_waits = 0;  ///< Hits whose bytes were still in flight.
  uint64_t faults_seen = 0;
  uint32_t retries = 0;
  StatusCode outcome = StatusCode::kOk;
  int64_t wall_response_us = 0;  ///< Demand I/O + decode + filter.
  int64_t wall_total_us = 0;     ///< Response + prediction + fetch/think.
};

/// Whole-sequence measurements of a real-I/O run.
struct FileSequenceStats {
  std::vector<FileQueryStats> queries;
  int64_t wall_total_us = 0;
  /// FNV-1a over every query's decoded result objects, in order: the
  /// bit-identity fingerprint the differential tests compare across
  /// backends and modes.
  uint64_t result_hash = 0;
  /// Pages in the order prefetch reads were ISSUED (executor order in
  /// sync mode, fetch-worker order in async mode).
  std::vector<PageId> prefetch_order;
  /// Pages in the order demand reads were issued.
  std::vector<PageId> demand_order;
  /// Decoded result objects per query; filled only when
  /// FileRunOptions::collect_results is set (tests).
  std::vector<std::vector<SpatialObject>> results;

  double CacheHitRatePct() const;
  size_t TotalPagesTotal() const;
  size_t TotalPagesHit() const;
  size_t TotalDemandReads() const;
  size_t TotalPrefetchPlanned() const;
  size_t TotalLateHitWaits() const;
  uint64_t TotalFaultsSeen() const;
  uint32_t TotalRetries() const;
  size_t UnavailableQueries() const;
};

/// Options of one RunSequenceFile call.
struct FileRunOptions {
  /// Keep the prefetch cache and decoded frames from the previous run
  /// (the "warm cache" scenario); default is a cold start.
  bool warm_start = false;
  /// Copy every query's decoded result objects into
  /// FileSequenceStats::results (tests only; benches keep it off).
  bool collect_results = false;
};

/// Executor configuration. The prefetch window follows the paper's model
/// (§7.2): if d is the time to retrieve one query's data cold from disk
/// and u the user/compute time on the result, the window ratio is
/// r = u/d. r <= 1 is I/O bound, r > 1 CPU bound.
struct ExecutorConfig {
  double prefetch_window_ratio = 1.0;
  /// Prefetch cache capacity (the paper allows 4 GB for the 33 GB
  /// dataset; scaled down here with the datasets). In shared-cache mode
  /// this is the capacity of the one cache all sessions contend for.
  uint64_t cache_bytes = 64ull << 20;
  DiskConfig disk;
  /// Whether residual (cache-miss) reads also populate the prefetch
  /// cache. Off by default: the cache then holds prefetched data only, so
  /// the hit rate measures *prediction* accuracy — with it on, the page
  /// overlap between adjacent queries puts a high hit-rate floor under
  /// every policy (including no-prediction ones), which is inconsistent
  /// with the baseline accuracies the paper reports.
  bool cache_residual_reads = false;
  /// Charge the prediction computation against the prefetch window
  /// (Figure 2); prediction overflow beyond the window delays the next
  /// query's response.
  bool charge_prediction = true;
  /// Multi-client serving-quality knobs (ignored by single-stream runs).
  SharedServingConfig serving;
  /// Degraded-mode serving policy (only consulted when `fault_schedule`
  /// is attached and armed, except the deadline which always reports).
  FaultPolicy fault_policy;
  /// Deterministic storage fault schedule. Borrowed, never owned; null
  /// (the default) means fault-free serving with every simulated metric
  /// bit-identical to builds without the fault machinery (pinned by
  /// fault_differential_test). The executor attaches it to its private
  /// DiskModel; the owning engine attaches it to shared disk queues.
  const FaultSchedule* fault_schedule = nullptr;
  /// Real-I/O backend switch (RunSequenceFile only; the simulated
  /// paths never consult it, so attaching a file store changes no
  /// simulated metric).
  FileIoConfig io;
};

/// Runs guided query sequences against an index + simulated disk +
/// prefetch cache, modelling the resource timeline of the paper's
/// Figure 2: execute query (cache hits + residual I/O), run the
/// prediction computation, then prefetch during the idle window until
/// the user issues the next query.
///
/// The executor either owns its prefetch cache (single-stream mode, the
/// default) or borrows a shared one (multi-client serving): pass an
/// external PrefetchCache to serve this stream's queries over a cache
/// other sessions populate too. In borrowed mode the executor never
/// clears the cache — the owning engine controls its lifetime.
class QueryExecutor {
 public:
  /// The pure, cache-independent part of one query: its result pages
  /// (sorted ascending) and result objects. A PreparedQuery depends only
  /// on (index, region), so multi-client engines precompute them on
  /// worker threads while the deterministic apply loop serializes all
  /// cache/disk effects.
  struct PreparedQuery {
    std::vector<PageId> pages;
    std::vector<GraphInput> objects;
  };

  /// Computes the result pages (merged into ascending order) and result
  /// objects of `region`. Pages whose bounds the region fully contains
  /// skip the per-object filter: every object on such a page intersects
  /// the region by containment, so the batch-append keeps result sets
  /// exactly identical while avoiding the dominant per-object
  /// Intersects() tests on interior pages.
  static void Prepare(const SpatialIndex& index, const Region& region,
                      PreparedQuery* prep);

  /// Single-stream executor owning its prefetch cache.
  QueryExecutor(const SpatialIndex* index, Prefetcher* prefetcher,
                const ExecutorConfig& config);

  /// Shared-cache executor: serves this stream over `shared_cache`
  /// (not owned, never cleared by the executor).
  QueryExecutor(const SpatialIndex* index, Prefetcher* prefetcher,
                const ExecutorConfig& config, PrefetchCache* shared_cache);

  /// Full serving-engine form: `shared_cache` may be null (the executor
  /// then owns a private cache) and `disk_queue` may be null (reads then
  /// go through the private DiskModel). With a queue, all reads are
  /// issued to it at this stream's simulated timeline position under
  /// `session_id`, and residual misses are served as one elevator batch.
  /// Neither borrowed resource is reset by the executor.
  QueryExecutor(const SpatialIndex* index, Prefetcher* prefetcher,
                const ExecutorConfig& config, PrefetchCache* shared_cache,
                SharedDiskQueue* disk_queue, uint32_t session_id);

  /// Resets the per-stream state for a cold sequence start: simulated
  /// clock, disk model, carried prediction overflow and the prefetcher
  /// (BeginSequence). Clears the cache only when the executor owns it.
  void BeginSequence();

  /// Executes one query of the running sequence: serves `prep.pages`
  /// from the cache (misses from simulated disk), charges the prediction
  /// computation and drains the prefetcher during the idle window
  /// (paper's Figure 2 timeline). `prep` must be Prepare()d from
  /// `region` on the same index.
  QueryRunStats ExecuteQuery(const Region& region, const PreparedQuery& prep);

  /// Same, with the pure part of the prefetcher's Observe precomputed
  /// (PrepareObserve on a worker thread). `observe_prep` may be null or
  /// invalid — the prefetcher then builds its graph inline; simulated
  /// outcomes are identical either way.
  QueryRunStats ExecuteQuery(const Region& region, const PreparedQuery& prep,
                             ObservePrep* observe_prep);

  /// Executes one sequence cold (BeginSequence + Prepare/ExecuteQuery
  /// per query).
  SequenceRunStats RunSequence(std::span<const Region> queries);

  /// Same, but with the pure per-query work precomputed (one
  /// PreparedQuery per region, from the same index).
  SequenceRunStats RunSequence(std::span<const Region> queries,
                               std::span<const PreparedQuery> preps);

  /// Executes one sequence over the REAL-I/O backend (config().io must
  /// name a FilePageStore): result pages are decoded from the on-disk
  /// page file, the prefetch cache tracks the same logical plan as the
  /// simulated path, and wall-clock serving time is measured. With
  /// io.async_prefetch the plan is fetched by a decoupled worker
  /// (prefetch overlaps execution); without it, fetches block the query
  /// loop. Both modes drive the prefetch cache through an identical
  /// logical operation sequence, so hits, fetch sets and decoded
  /// results are bit-identical between them (fault-free; pinned by
  /// engine_async_differential_test). Single-stream executors only
  /// (owned cache, private disk).
  FileSequenceStats RunSequenceFile(std::span<const Region> queries);
  FileSequenceStats RunSequenceFile(std::span<const Region> queries,
                                    const FileRunOptions& options);

  /// FNV-1a fold of one result object (raw double bits + ids + page):
  /// the fingerprint primitive behind FileSequenceStats::result_hash.
  /// Exposed so tests and benches hash a simulated-oracle result set
  /// with the exact same encoding.
  static uint64_t HashResultObject(uint64_t h, const SpatialObject& obj,
                                   PageId page);
  /// Folds a whole Prepare() result (the simulated oracle's objects).
  static uint64_t HashPreparedObjects(uint64_t h,
                                      std::span<const GraphInput> objects);
  /// Seed of the result-hash fold.
  static constexpr uint64_t kResultHashSeed = 1469598103934665603ull;

  const PrefetchCache& cache() const { return *cache_; }
  const DiskModel& disk() const { return disk_; }
  bool owns_cache() const { return owned_cache_ != nullptr; }

 private:
  class WindowIo;
  class FilePlanIo;

  /// Cold-read cost of the given pages in sorted order (first page
  /// random, then sequential whenever physically adjacent).
  SimMicros ColdReadCost(const std::vector<PageId>& sorted_pages) const;

  /// Priced admission (shared-cache QoS): whether to pay for one more
  /// prefetch insert into the full shared cache, given who the eviction
  /// victim would be. Self- and unattributed-victim inserts are always
  /// admitted — only cross-session harm is priced.
  bool AdmitPrefetchInsert() const;

  /// True when a fault schedule is attached and armed: the failure-aware
  /// read paths and the degraded-mode policy are live.
  bool FaultyServing() const {
    return config_.fault_schedule != nullptr &&
           config_.fault_schedule->Armed();
  }

  /// Simulated backoff wait before retry round `attempt` (0-based):
  /// exponential in the round plus seeded uniform jitter.
  SimMicros RetryBackoffUs(uint32_t attempt);

  /// Records that a failure was observed at simulated instant `now`:
  /// extends the prefetch-shedding window (when the policy sheds).
  void NoteFailure(SimMicros now);

  /// Serves the residual-miss batch in `miss_pages_` through the shared
  /// queue with retries, backoff, deadline accounting and shedding
  /// bookkeeping. Returns the total simulated serving time (attempts +
  /// backoff waits); fault counters land in `q`.
  SimMicros ServeMissBatchWithRetries(QueryRunStats* q);

  /// Same for the private-disk path: one page, demand-miss retry loop.
  /// `*ok` reports whether the page finally arrived.
  SimMicros ReadDemandPageWithRetries(PageId page, SimMicros spent_so_far,
                                      QueryRunStats* q, bool* ok);

  // ---- Real-I/O (file backend) serving; see RunSequenceFile. --------

  /// Applies one async completion on the executor thread: decoded bytes
  /// land in frames_; a failed fetch erases the page's logical cache
  /// entry (it never arrived). Returns status.ok(). The worker never
  /// touches the cache — this is the serial-apply seam.
  bool ApplyCompletion(AsyncFetchResult&& r, FileQueryStats* q);

  /// Bytes of a logically-cached page: served from frames_, or (async)
  /// awaited from the in-flight pipeline, draining completions while
  /// waiting. Null when the page's fetch failed (caller demand-reads).
  const Page* AwaitFramePage(PageId page, AsyncPrefetchPipeline* pipeline,
                             FileQueryStats* q);

  /// Demand read with retries (fault_policy.max_retries), promoted past
  /// the prediction backlog in async mode. Null after retry exhaustion
  /// (outcome is set on `q`).
  const Page* DemandReadFilePage(PageId page, AsyncPrefetchPipeline* pipeline,
                                 FileQueryStats* q, FileSequenceStats* stats);

  const SpatialIndex* index_;
  Prefetcher* prefetcher_;
  ExecutorConfig config_;
  SimClock clock_;
  DiskModel disk_;
  std::unique_ptr<PrefetchCache> owned_cache_;  ///< Null in shared mode.
  PrefetchCache* cache_;                        ///< Owned or borrowed.
  SharedDiskQueue* disk_queue_ = nullptr;  ///< Borrowed; null = private disk.
  uint32_t session_id_ = 0;                ///< Queue attribution id.
  SimMicros sequence_now_ = 0;  ///< This stream's query-issue timeline
                                ///< (mirrors ClientSession::next_time).
  std::vector<PageId> miss_pages_;  ///< Residual-batch scratch buffer.
  SimMicros carried_overflow_ = 0;  ///< Prediction overflow delaying the
                                    ///< next query's response.
  Rng retry_rng_;                   ///< Backoff jitter stream (per-session
                                    ///< derived seed; see BeginSequence).
  SimMicros degraded_until_ = 0;    ///< Prefetch shedding active until this
                                    ///< instant of the stream's timeline.
  std::vector<PageId> retry_failed_;  ///< Failed-page scratch buffer.
  std::vector<PageId> retry_pages_;   ///< Retry-batch scratch buffer.

  // ---- Real-I/O (file backend) state; live only inside
  // RunSequenceFile runs. -------------------------------------------
  /// Decoded-page frames, indexed by PageId: the data plane of file
  /// serving. The PrefetchCache stays the (logical) metadata plane that
  /// decides which reads happen; frames just hold bytes that already
  /// arrived, so entries are never invalidated (the page file is
  /// immutable for the life of a sequence) and result-object pointers
  /// stay stable for the prefetcher's Observe.
  std::vector<std::unique_ptr<Page>> frames_;
  std::vector<PageId> file_plan_;     ///< Plan-capture scratch buffer.
  std::vector<GraphInput> file_objects_;  ///< Result scratch buffer.
};

}  // namespace scout

