#ifndef SCOUT_ENGINE_QUERY_EXECUTOR_H_
#define SCOUT_ENGINE_QUERY_EXECUTOR_H_

#include <span>
#include <vector>

#include "common/sim_clock.h"
#include "engine/metrics.h"
#include "index/spatial_index.h"
#include "prefetch/prefetcher.h"
#include "storage/cache.h"
#include "storage/disk_model.h"

namespace scout {

/// Executor configuration. The prefetch window follows the paper's model
/// (§7.2): if d is the time to retrieve one query's data cold from disk
/// and u the user/compute time on the result, the window ratio is
/// r = u/d. r <= 1 is I/O bound, r > 1 CPU bound.
struct ExecutorConfig {
  double prefetch_window_ratio = 1.0;
  /// Prefetch cache capacity (the paper allows 4 GB for the 33 GB
  /// dataset; scaled down here with the datasets).
  uint64_t cache_bytes = 64ull << 20;
  DiskConfig disk;
  /// Whether residual (cache-miss) reads also populate the prefetch
  /// cache. Off by default: the cache then holds prefetched data only, so
  /// the hit rate measures *prediction* accuracy — with it on, the page
  /// overlap between adjacent queries puts a high hit-rate floor under
  /// every policy (including no-prediction ones), which is inconsistent
  /// with the baseline accuracies the paper reports.
  bool cache_residual_reads = false;
  /// Charge the prediction computation against the prefetch window
  /// (Figure 2); prediction overflow beyond the window delays the next
  /// query's response.
  bool charge_prediction = true;
};

/// Runs guided query sequences against an index + simulated disk +
/// prefetch cache, modelling the resource timeline of the paper's
/// Figure 2: execute query (cache hits + residual I/O), run the
/// prediction computation, then prefetch during the idle window until
/// the user issues the next query.
class QueryExecutor {
 public:
  QueryExecutor(const SpatialIndex* index, Prefetcher* prefetcher,
                const ExecutorConfig& config);

  /// Executes one sequence cold (cache and disk state cleared first).
  SequenceRunStats RunSequence(std::span<const Region> queries);

  const PrefetchCache& cache() const { return cache_; }
  const DiskModel& disk() const { return disk_; }

 private:
  class WindowIo;

  /// Cold-read cost of the given pages in sorted order (first page
  /// random, then sequential whenever physically adjacent).
  SimMicros ColdReadCost(const std::vector<PageId>& sorted_pages) const;

  const SpatialIndex* index_;
  Prefetcher* prefetcher_;
  ExecutorConfig config_;
  SimClock clock_;
  DiskModel disk_;
  PrefetchCache cache_;
};

}  // namespace scout

#endif  // SCOUT_ENGINE_QUERY_EXECUTOR_H_
