#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/sim_clock.h"
#include "engine/metrics.h"
#include "index/spatial_index.h"
#include "prefetch/prefetcher.h"
#include "storage/cache.h"
#include "storage/disk_model.h"

namespace scout {

/// Executor configuration. The prefetch window follows the paper's model
/// (§7.2): if d is the time to retrieve one query's data cold from disk
/// and u the user/compute time on the result, the window ratio is
/// r = u/d. r <= 1 is I/O bound, r > 1 CPU bound.
struct ExecutorConfig {
  double prefetch_window_ratio = 1.0;
  /// Prefetch cache capacity (the paper allows 4 GB for the 33 GB
  /// dataset; scaled down here with the datasets). In shared-cache mode
  /// this is the capacity of the one cache all sessions contend for.
  uint64_t cache_bytes = 64ull << 20;
  DiskConfig disk;
  /// Whether residual (cache-miss) reads also populate the prefetch
  /// cache. Off by default: the cache then holds prefetched data only, so
  /// the hit rate measures *prediction* accuracy — with it on, the page
  /// overlap between adjacent queries puts a high hit-rate floor under
  /// every policy (including no-prediction ones), which is inconsistent
  /// with the baseline accuracies the paper reports.
  bool cache_residual_reads = false;
  /// Charge the prediction computation against the prefetch window
  /// (Figure 2); prediction overflow beyond the window delays the next
  /// query's response.
  bool charge_prediction = true;
};

/// Runs guided query sequences against an index + simulated disk +
/// prefetch cache, modelling the resource timeline of the paper's
/// Figure 2: execute query (cache hits + residual I/O), run the
/// prediction computation, then prefetch during the idle window until
/// the user issues the next query.
///
/// The executor either owns its prefetch cache (single-stream mode, the
/// default) or borrows a shared one (multi-client serving): pass an
/// external PrefetchCache to serve this stream's queries over a cache
/// other sessions populate too. In borrowed mode the executor never
/// clears the cache — the owning engine controls its lifetime.
class QueryExecutor {
 public:
  /// The pure, cache-independent part of one query: its result pages
  /// (sorted ascending) and result objects. A PreparedQuery depends only
  /// on (index, region), so multi-client engines precompute them on
  /// worker threads while the deterministic apply loop serializes all
  /// cache/disk effects.
  struct PreparedQuery {
    std::vector<PageId> pages;
    std::vector<GraphInput> objects;
  };

  /// Computes the result pages (merged into ascending order) and result
  /// objects of `region`. Pages whose bounds the region fully contains
  /// skip the per-object filter: every object on such a page intersects
  /// the region by containment, so the batch-append keeps result sets
  /// exactly identical while avoiding the dominant per-object
  /// Intersects() tests on interior pages.
  static void Prepare(const SpatialIndex& index, const Region& region,
                      PreparedQuery* prep);

  /// Single-stream executor owning its prefetch cache.
  QueryExecutor(const SpatialIndex* index, Prefetcher* prefetcher,
                const ExecutorConfig& config);

  /// Shared-cache executor: serves this stream over `shared_cache`
  /// (not owned, never cleared by the executor).
  QueryExecutor(const SpatialIndex* index, Prefetcher* prefetcher,
                const ExecutorConfig& config, PrefetchCache* shared_cache);

  /// Resets the per-stream state for a cold sequence start: simulated
  /// clock, disk model, carried prediction overflow and the prefetcher
  /// (BeginSequence). Clears the cache only when the executor owns it.
  void BeginSequence();

  /// Executes one query of the running sequence: serves `prep.pages`
  /// from the cache (misses from simulated disk), charges the prediction
  /// computation and drains the prefetcher during the idle window
  /// (paper's Figure 2 timeline). `prep` must be Prepare()d from
  /// `region` on the same index.
  QueryRunStats ExecuteQuery(const Region& region, const PreparedQuery& prep);

  /// Same, with the pure part of the prefetcher's Observe precomputed
  /// (PrepareObserve on a worker thread). `observe_prep` may be null or
  /// invalid — the prefetcher then builds its graph inline; simulated
  /// outcomes are identical either way.
  QueryRunStats ExecuteQuery(const Region& region, const PreparedQuery& prep,
                             ObservePrep* observe_prep);

  /// Executes one sequence cold (BeginSequence + Prepare/ExecuteQuery
  /// per query).
  SequenceRunStats RunSequence(std::span<const Region> queries);

  /// Same, but with the pure per-query work precomputed (one
  /// PreparedQuery per region, from the same index).
  SequenceRunStats RunSequence(std::span<const Region> queries,
                               std::span<const PreparedQuery> preps);

  const PrefetchCache& cache() const { return *cache_; }
  const DiskModel& disk() const { return disk_; }
  bool owns_cache() const { return owned_cache_ != nullptr; }

 private:
  class WindowIo;

  /// Cold-read cost of the given pages in sorted order (first page
  /// random, then sequential whenever physically adjacent).
  SimMicros ColdReadCost(const std::vector<PageId>& sorted_pages) const;

  const SpatialIndex* index_;
  Prefetcher* prefetcher_;
  ExecutorConfig config_;
  SimClock clock_;
  DiskModel disk_;
  std::unique_ptr<PrefetchCache> owned_cache_;  ///< Null in shared mode.
  PrefetchCache* cache_;                        ///< Owned or borrowed.
  SimMicros carried_overflow_ = 0;  ///< Prediction overflow delaying the
                                    ///< next query's response.
};

}  // namespace scout

