#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "engine/metrics.h"
#include "index/spatial_index.h"
#include "prefetch/cost_model.h"
#include "prefetch/prefetcher.h"
#include "storage/cache.h"
#include "storage/disk_model.h"
#include "storage/fault_model.h"
#include "storage/shared_disk.h"

namespace scout {

/// Degraded-mode serving policy: what a session does when the storage
/// layer reports transient failures (see FaultSchedule). All budgets are
/// simulated time, so policy decisions are bit-identical across reruns
/// and worker counts. With no fault schedule attached none of these
/// knobs changes any simulated metric.
struct FaultPolicy {
  /// Per-query response deadline. A query whose accumulated response
  /// time exceeds the budget stops retrying and reports
  /// kDeadlineExceeded (partial results are still accounted; the
  /// sequence keeps running). 0 disables the deadline.
  SimMicros query_deadline_us = 0;
  /// Retry budget for demand (residual) misses. Retries exhausted with
  /// failures outstanding report kUnavailable.
  uint32_t max_retries = 3;
  /// Exponential backoff between retry rounds: the k-th retry waits
  /// backoff_base_us << k, plus jitter.
  SimMicros backoff_base_us = 1000;
  /// Uniform jitter fraction added to each backoff wait (decorrelates
  /// sessions retrying into the same outage; drawn from a per-session
  /// seeded stream, so still fully deterministic).
  double backoff_jitter_frac = 0.25;
  /// Shed prefetch I/O while the session is under retry pressure:
  /// window fetches are dropped (the session falls back to on-demand
  /// serving) until degraded_window_us of simulated time passes without
  /// new failures. Demand misses are never shed — prefetches go first.
  bool shed_prefetch_on_retry = true;
  /// How long after the last observed failure the session keeps
  /// shedding prefetches.
  SimMicros degraded_window_us = 100000;
};

/// Multi-client serving-quality (QoS) knobs: how the ONE shared cache
/// and the ONE shared disk behave when N sessions contend. Consumed by
/// MultiClientEngine / RunSharedCacheExperiment; single-stream executors
/// (private cache, private disk) ignore it entirely.
///
/// The defaults are the QoS serving model (the `post-qos` baseline
/// family): quota-segmented eviction + priced admission on the shared
/// cache, per-session capacity scaling, and all reads through the shared
/// 4-channel disk queue. Legacy() restores the `post-multiclient`-era
/// semantics (pure global LRU, fixed capacity, one private simulated
/// disk per session) bit-identically — the `pre-qos` anchor proves it.
struct SharedServingConfig {
  /// Quota-segmented shared-cache eviction (PrefetchCache QoS mode).
  bool cache_quotas = true;
  /// Priced admission control for prefetch inserts into a full shared
  /// cache: reject inserts whose expected value does not cover the
  /// expected loss of the cross-session eviction they would cause.
  bool priced_admission = true;
  /// Pricing parameters for `priced_admission`.
  PrefetchAdmission admission;
  /// Shared-cache capacity multiplier per active session: the engine
  /// sizes the cache to cache_bytes * max(1, scale * num_sessions), so a
  /// serving deployment provisions cache with its session count. 0 keeps
  /// the legacy fixed `cache_bytes` capacity.
  double cache_scale_per_session = 1.0;
  /// Serve every session's reads through one shared SharedDiskQueue
  /// (cross-session head contention) instead of per-session DiskModels.
  bool shared_disk = true;
  /// Channel count of the shared disk array (the paper's 4-disk stripe).
  uint32_t disk_channels = 4;

  /// The pre-QoS serving semantics (global LRU, fixed capacity, private
  /// per-session disks): bit-identical to the `post-multiclient` era.
  static SharedServingConfig Legacy() {
    SharedServingConfig legacy;
    legacy.cache_quotas = false;
    legacy.priced_admission = false;
    legacy.cache_scale_per_session = 0.0;
    legacy.shared_disk = false;
    return legacy;
  }
};

/// Executor configuration. The prefetch window follows the paper's model
/// (§7.2): if d is the time to retrieve one query's data cold from disk
/// and u the user/compute time on the result, the window ratio is
/// r = u/d. r <= 1 is I/O bound, r > 1 CPU bound.
struct ExecutorConfig {
  double prefetch_window_ratio = 1.0;
  /// Prefetch cache capacity (the paper allows 4 GB for the 33 GB
  /// dataset; scaled down here with the datasets). In shared-cache mode
  /// this is the capacity of the one cache all sessions contend for.
  uint64_t cache_bytes = 64ull << 20;
  DiskConfig disk;
  /// Whether residual (cache-miss) reads also populate the prefetch
  /// cache. Off by default: the cache then holds prefetched data only, so
  /// the hit rate measures *prediction* accuracy — with it on, the page
  /// overlap between adjacent queries puts a high hit-rate floor under
  /// every policy (including no-prediction ones), which is inconsistent
  /// with the baseline accuracies the paper reports.
  bool cache_residual_reads = false;
  /// Charge the prediction computation against the prefetch window
  /// (Figure 2); prediction overflow beyond the window delays the next
  /// query's response.
  bool charge_prediction = true;
  /// Multi-client serving-quality knobs (ignored by single-stream runs).
  SharedServingConfig serving;
  /// Degraded-mode serving policy (only consulted when `fault_schedule`
  /// is attached and armed, except the deadline which always reports).
  FaultPolicy fault_policy;
  /// Deterministic storage fault schedule. Borrowed, never owned; null
  /// (the default) means fault-free serving with every simulated metric
  /// bit-identical to builds without the fault machinery (pinned by
  /// fault_differential_test). The executor attaches it to its private
  /// DiskModel; the owning engine attaches it to shared disk queues.
  const FaultSchedule* fault_schedule = nullptr;
};

/// Runs guided query sequences against an index + simulated disk +
/// prefetch cache, modelling the resource timeline of the paper's
/// Figure 2: execute query (cache hits + residual I/O), run the
/// prediction computation, then prefetch during the idle window until
/// the user issues the next query.
///
/// The executor either owns its prefetch cache (single-stream mode, the
/// default) or borrows a shared one (multi-client serving): pass an
/// external PrefetchCache to serve this stream's queries over a cache
/// other sessions populate too. In borrowed mode the executor never
/// clears the cache — the owning engine controls its lifetime.
class QueryExecutor {
 public:
  /// The pure, cache-independent part of one query: its result pages
  /// (sorted ascending) and result objects. A PreparedQuery depends only
  /// on (index, region), so multi-client engines precompute them on
  /// worker threads while the deterministic apply loop serializes all
  /// cache/disk effects.
  struct PreparedQuery {
    std::vector<PageId> pages;
    std::vector<GraphInput> objects;
  };

  /// Computes the result pages (merged into ascending order) and result
  /// objects of `region`. Pages whose bounds the region fully contains
  /// skip the per-object filter: every object on such a page intersects
  /// the region by containment, so the batch-append keeps result sets
  /// exactly identical while avoiding the dominant per-object
  /// Intersects() tests on interior pages.
  static void Prepare(const SpatialIndex& index, const Region& region,
                      PreparedQuery* prep);

  /// Single-stream executor owning its prefetch cache.
  QueryExecutor(const SpatialIndex* index, Prefetcher* prefetcher,
                const ExecutorConfig& config);

  /// Shared-cache executor: serves this stream over `shared_cache`
  /// (not owned, never cleared by the executor).
  QueryExecutor(const SpatialIndex* index, Prefetcher* prefetcher,
                const ExecutorConfig& config, PrefetchCache* shared_cache);

  /// Full serving-engine form: `shared_cache` may be null (the executor
  /// then owns a private cache) and `disk_queue` may be null (reads then
  /// go through the private DiskModel). With a queue, all reads are
  /// issued to it at this stream's simulated timeline position under
  /// `session_id`, and residual misses are served as one elevator batch.
  /// Neither borrowed resource is reset by the executor.
  QueryExecutor(const SpatialIndex* index, Prefetcher* prefetcher,
                const ExecutorConfig& config, PrefetchCache* shared_cache,
                SharedDiskQueue* disk_queue, uint32_t session_id);

  /// Resets the per-stream state for a cold sequence start: simulated
  /// clock, disk model, carried prediction overflow and the prefetcher
  /// (BeginSequence). Clears the cache only when the executor owns it.
  void BeginSequence();

  /// Executes one query of the running sequence: serves `prep.pages`
  /// from the cache (misses from simulated disk), charges the prediction
  /// computation and drains the prefetcher during the idle window
  /// (paper's Figure 2 timeline). `prep` must be Prepare()d from
  /// `region` on the same index.
  QueryRunStats ExecuteQuery(const Region& region, const PreparedQuery& prep);

  /// Same, with the pure part of the prefetcher's Observe precomputed
  /// (PrepareObserve on a worker thread). `observe_prep` may be null or
  /// invalid — the prefetcher then builds its graph inline; simulated
  /// outcomes are identical either way.
  QueryRunStats ExecuteQuery(const Region& region, const PreparedQuery& prep,
                             ObservePrep* observe_prep);

  /// Executes one sequence cold (BeginSequence + Prepare/ExecuteQuery
  /// per query).
  SequenceRunStats RunSequence(std::span<const Region> queries);

  /// Same, but with the pure per-query work precomputed (one
  /// PreparedQuery per region, from the same index).
  SequenceRunStats RunSequence(std::span<const Region> queries,
                               std::span<const PreparedQuery> preps);

  const PrefetchCache& cache() const { return *cache_; }
  const DiskModel& disk() const { return disk_; }
  bool owns_cache() const { return owned_cache_ != nullptr; }

 private:
  class WindowIo;

  /// Cold-read cost of the given pages in sorted order (first page
  /// random, then sequential whenever physically adjacent).
  SimMicros ColdReadCost(const std::vector<PageId>& sorted_pages) const;

  /// Priced admission (shared-cache QoS): whether to pay for one more
  /// prefetch insert into the full shared cache, given who the eviction
  /// victim would be. Self- and unattributed-victim inserts are always
  /// admitted — only cross-session harm is priced.
  bool AdmitPrefetchInsert() const;

  /// True when a fault schedule is attached and armed: the failure-aware
  /// read paths and the degraded-mode policy are live.
  bool FaultyServing() const {
    return config_.fault_schedule != nullptr &&
           config_.fault_schedule->Armed();
  }

  /// Simulated backoff wait before retry round `attempt` (0-based):
  /// exponential in the round plus seeded uniform jitter.
  SimMicros RetryBackoffUs(uint32_t attempt);

  /// Records that a failure was observed at simulated instant `now`:
  /// extends the prefetch-shedding window (when the policy sheds).
  void NoteFailure(SimMicros now);

  /// Serves the residual-miss batch in `miss_pages_` through the shared
  /// queue with retries, backoff, deadline accounting and shedding
  /// bookkeeping. Returns the total simulated serving time (attempts +
  /// backoff waits); fault counters land in `q`.
  SimMicros ServeMissBatchWithRetries(QueryRunStats* q);

  /// Same for the private-disk path: one page, demand-miss retry loop.
  /// `*ok` reports whether the page finally arrived.
  SimMicros ReadDemandPageWithRetries(PageId page, SimMicros spent_so_far,
                                      QueryRunStats* q, bool* ok);

  const SpatialIndex* index_;
  Prefetcher* prefetcher_;
  ExecutorConfig config_;
  SimClock clock_;
  DiskModel disk_;
  std::unique_ptr<PrefetchCache> owned_cache_;  ///< Null in shared mode.
  PrefetchCache* cache_;                        ///< Owned or borrowed.
  SharedDiskQueue* disk_queue_ = nullptr;  ///< Borrowed; null = private disk.
  uint32_t session_id_ = 0;                ///< Queue attribution id.
  SimMicros sequence_now_ = 0;  ///< This stream's query-issue timeline
                                ///< (mirrors ClientSession::next_time).
  std::vector<PageId> miss_pages_;  ///< Residual-batch scratch buffer.
  SimMicros carried_overflow_ = 0;  ///< Prediction overflow delaying the
                                    ///< next query's response.
  Rng retry_rng_;                   ///< Backoff jitter stream (per-session
                                    ///< derived seed; see BeginSequence).
  SimMicros degraded_until_ = 0;    ///< Prefetch shedding active until this
                                    ///< instant of the stream's timeline.
  std::vector<PageId> retry_failed_;  ///< Failed-page scratch buffer.
  std::vector<PageId> retry_pages_;   ///< Retry-batch scratch buffer.
};

}  // namespace scout

