#pragma once

#include <vector>

#include "common/rng.h"
#include "geom/region.h"
#include "workload/dataset.h"

namespace scout {

/// Query shape (the paper's "Aspect Ratio" column in Figure 10).
enum class QueryAspect { kCube, kFrustum };

/// Parameters of a guided spatial query sequence (paper §7.2, Figure 10).
struct QuerySequenceConfig {
  uint32_t num_queries = 25;
  double query_volume = 80000.0;  ///< µm³.
  QueryAspect aspect = QueryAspect::kCube;
  /// Distance between consecutive query boundaries (0 = adjacent).
  double gap_distance = 0.0;
  /// Attempts to find a structure with a long enough path.
  uint32_t structure_attempts = 40;
};

/// One generated sequence plus its ground truth.
struct GuidedSequence {
  std::vector<Region> queries;
  StructureId structure = kInvalidStructureId;
  /// Arc-length positions of the query centers along the guiding path.
  std::vector<double> arc_positions;
};

/// Characteristic linear extent (center spacing at gap 0) of a query of
/// the given volume/aspect: cube side, or frustum depth.
double QueryExtent(double volume, QueryAspect aspect);

/// Generates a guided query sequence: picks a structure with a
/// sufficiently long root-to-leaf path (a random walk on the dataset's
/// structure graph) and places `num_queries` regions along it, spaced by
/// extent + gap, oriented along the path for frustum queries.
GuidedSequence GenerateGuidedSequence(const Dataset& dataset,
                                      const QuerySequenceConfig& config,
                                      Rng* rng);

}  // namespace scout

