#pragma once

#include <string>
#include <vector>

#include "geom/aabb.h"
#include "graph/graph_builder.h"
#include "storage/object.h"
#include "workload/structure.h"

namespace scout {

/// A generated spatial dataset: the objects, the ground-truth structures
/// they belong to (for query generation and evaluation only), and — for
/// mesh-like datasets — the explicit object adjacency.
struct Dataset {
  std::string name;
  Aabb bounds;
  std::vector<SpatialObject> objects;
  std::vector<Structure> structures;
  AdjacencyMap adjacency;  ///< Empty unless the dataset is mesh-like.

  /// Objects per cubic micrometer.
  double Density() const {
    const double v = bounds.Volume();
    return v > 0.0 ? static_cast<double>(objects.size()) / v : 0.0;
  }
};

}  // namespace scout

