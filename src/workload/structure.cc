#include "workload/structure.h"

#include <algorithm>
#include <cassert>

namespace scout {

std::vector<std::vector<uint32_t>> Structure::BuildChildren() const {
  std::vector<std::vector<uint32_t>> children(nodes.size());
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent >= 0) {
      children[static_cast<uint32_t>(nodes[i].parent)].push_back(i);
    }
  }
  return children;
}

std::vector<Vec3> Structure::SamplePath(Rng* rng) const {
  std::vector<Vec3> path;
  if (nodes.empty()) return path;
  const auto children = BuildChildren();
  uint32_t current = 0;  // Root is node 0 by construction.
  path.push_back(nodes[current].pos);
  while (!children[current].empty()) {
    const auto& kids = children[current];
    current = kids[rng->NextBounded(kids.size())];
    path.push_back(nodes[current].pos);
  }
  return path;
}

double Structure::LongestPathLength() const {
  if (nodes.empty()) return 0.0;
  // Length from root to every node; the max over leaves is the answer.
  std::vector<double> depth(nodes.size(), 0.0);
  double best = 0.0;
  // Nodes are emitted parents-first by the generators.
  for (uint32_t i = 1; i < nodes.size(); ++i) {
    const int32_t p = nodes[i].parent;
    assert(p >= 0 && static_cast<uint32_t>(p) < i);
    depth[i] = depth[p] + nodes[i].pos.DistanceTo(nodes[p].pos);
    best = std::max(best, depth[i]);
  }
  return best;
}

PolylineWalk::PolylineWalk(std::vector<Vec3> points)
    : points_(std::move(points)) {
  cumulative_.reserve(points_.size());
  cumulative_.push_back(0.0);
  for (size_t i = 1; i < points_.size(); ++i) {
    total_ += points_[i].DistanceTo(points_[i - 1]);
    cumulative_.push_back(total_);
  }
}

size_t PolylineWalk::SegmentAt(double s, double* local) const {
  if (points_.size() < 2) {
    *local = 0.0;
    return 0;
  }
  s = std::clamp(s, 0.0, total_);
  // Binary search for the segment containing arc length s.
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  size_t seg = static_cast<size_t>(it - cumulative_.begin());
  seg = std::min(std::max<size_t>(seg, 1), points_.size() - 1) - 1;
  const double seg_len = cumulative_[seg + 1] - cumulative_[seg];
  *local = seg_len > 0.0 ? (s - cumulative_[seg]) / seg_len : 0.0;
  return seg;
}

Vec3 PolylineWalk::ArcPoint(double s) const {
  if (points_.empty()) return Vec3();
  if (points_.size() == 1) return points_[0];
  double local = 0.0;
  const size_t seg = SegmentAt(s, &local);
  return Lerp(points_[seg], points_[seg + 1], local);
}

Vec3 PolylineWalk::ArcTangent(double s) const {
  if (points_.size() < 2) return Vec3(1, 0, 0);
  double local = 0.0;
  const size_t seg = SegmentAt(s, &local);
  return (points_[seg + 1] - points_[seg]).Normalized();
}

void EmitStructureObjects(const Structure& structure, ObjectId* next_id,
                          std::vector<SpatialObject>* objects) {
  for (uint32_t i = 1; i < structure.nodes.size(); ++i) {
    const StructureNode& node = structure.nodes[i];
    if (node.parent < 0) continue;
    const StructureNode& parent =
        structure.nodes[static_cast<uint32_t>(node.parent)];
    SpatialObject obj;
    obj.id = (*next_id)++;
    obj.structure_id = structure.id;
    obj.path_index = i;
    obj.geom = Cylinder(parent.pos, node.pos, parent.radius, node.radius);
    objects->push_back(obj);
  }
}

}  // namespace scout
