#pragma once

#include <cstdint>

#include "workload/dataset.h"

namespace scout {

/// Synthetic brain-tissue model (substitution for the Blue Brain Project
/// dataset, DESIGN.md §2): neurons with somas and recursively bifurcating,
/// meandering branches built from short cylinders. Tortuosity
/// (turn_stddev) and bifurcation rate control how hard the trajectories
/// are to extrapolate — the property the paper's evaluation hinges on.
struct NeuronGenConfig {
  /// Defaults give ~345k objects in 600³ µm — the same spatial density as
  /// the paper's 450M-cylinder / 285 mm³ tissue model (1.6e-3 obj/µm³).
  Aabb bounds = Aabb(Vec3(0, 0, 0), Vec3(600, 600, 600));
  uint32_t num_neurons = 18;
  uint32_t primary_branches_min = 2;
  uint32_t primary_branches_max = 4;
  double step_length = 4.0;        ///< Cylinder length (µm).
  double turn_stddev = 0.35;       ///< Direction noise per step (radians).
  double bifurcation_prob = 0.012; ///< Per-step branching probability.
  uint32_t max_depth = 3;          ///< Maximum bifurcation depth.
  uint32_t steps_min = 500;        ///< Primary branch length (steps).
  uint32_t steps_max = 800;
  double radius = 0.6;             ///< Cylinder radius (µm).
  uint64_t seed = 1;
};
Dataset GenerateNeuronTissue(const NeuronGenConfig& config);

/// Returns a NeuronGenConfig whose expected object count approximates
/// `target_objects` by scaling the neuron count (used for the density
/// sweeps of Figures 13b and 14).
NeuronGenConfig NeuronConfigForObjectCount(uint64_t target_objects,
                                           uint64_t seed = 1);

/// Synthetic arterial tree (substitution for the pig-heart model [11]):
/// smooth, gently arcing branches with Murray-style radius decay. Smooth
/// structures are the case where curve extrapolation shines with small
/// queries (paper §8.4).
struct VascularGenConfig {
  Aabb bounds = Aabb(Vec3(0, 0, 0), Vec3(500, 500, 500));
  uint32_t num_trees = 8;
  uint32_t levels = 9;             ///< Bifurcation generations.
  double root_branch_length = 420.0;
  double length_decay = 0.80;
  double step_length = 3.0;
  double arc_curvature = 0.015;    ///< Radians of drift per step (smooth).
  double turn_stddev = 0.01;       ///< Tiny noise; arteries are smooth.
  double branch_angle = 0.5;       ///< Bifurcation half-angle (radians).
  double root_radius = 6.0;
  double radius_decay = 0.78;
  uint64_t seed = 2;
};
Dataset GenerateArterialTree(const VascularGenConfig& config);

/// Synthetic lung-airway tree (substitution for [1]): like the arterial
/// tree but with *explicit* mesh adjacency between consecutive and
/// sibling segments, exercising SCOUT's explicit-graph code path
/// (paper §4.2, polygon-mesh case).
struct AirwayGenConfig {
  Aabb bounds = Aabb(Vec3(0, 0, 0), Vec3(500, 500, 500));
  uint32_t num_trees = 2;
  uint32_t levels = 11;
  double root_branch_length = 380.0;
  double length_decay = 0.83;
  double step_length = 3.0;
  double arc_curvature = 0.02;
  double turn_stddev = 0.04;
  double branch_angle = 0.6;
  double root_radius = 8.0;
  double radius_decay = 0.80;
  uint64_t seed = 3;
};
Dataset GenerateLungAirway(const AirwayGenConfig& config);

/// Synthetic road network (substitution for the North-America roads
/// dataset [15]): a jittered Manhattan grid plus diagonal highways, all
/// 2-D segments embedded at a thin z-slab. Exercises the planar case and
/// the mobile-navigation use case of §8.4.
struct RoadGenConfig {
  double width = 2400.0;
  double height = 2400.0;
  double thickness = 4.0;   ///< z extent of the slab.
  uint32_t num_avenues = 60;   ///< North-south roads.
  uint32_t num_streets = 60;   ///< East-west roads.
  uint32_t num_highways = 16;  ///< Long diagonals.
  double step_length = 8.0;
  double jitter = 1.2;      ///< Lateral meander of roads (µm).
  double radius = 0.8;
  uint64_t seed = 4;
};
Dataset GenerateRoadNetwork(const RoadGenConfig& config);

}  // namespace scout

