#include "workload/query_gen.h"

#include <algorithm>
#include <cmath>

namespace scout {

double QueryExtent(double volume, QueryAspect aspect) {
  if (aspect == QueryAspect::kFrustum) {
    // Depth of the standard prismatoid used by Frustum::WithVolume.
    return std::cbrt(volume * 12.0 / 7.0);
  }
  return std::cbrt(volume);
}

GuidedSequence GenerateGuidedSequence(const Dataset& dataset,
                                      const QuerySequenceConfig& config,
                                      Rng* rng) {
  GuidedSequence result;
  if (dataset.structures.empty() || config.num_queries == 0) return result;

  const double extent = QueryExtent(config.query_volume, config.aspect);
  const double step = extent + config.gap_distance;
  // Chord spacing consumes more arc than step on curvy paths; budget 60%
  // extra so the walk does not run out before the last query.
  const double needed =
      (extent + step * static_cast<double>(config.num_queries - 1)) * 1.6;

  // Random walk on the structure set: sample paths until one is long
  // enough; remember the longest as a fallback.
  std::vector<Vec3> best_path;
  double best_len = -1.0;
  StructureId best_structure = kInvalidStructureId;
  for (uint32_t attempt = 0; attempt < config.structure_attempts;
       ++attempt) {
    const Structure& s =
        dataset.structures[rng->NextBounded(dataset.structures.size())];
    std::vector<Vec3> path = s.SamplePath(rng);
    double len = 0.0;
    for (size_t i = 1; i < path.size(); ++i) {
      len += path[i].DistanceTo(path[i - 1]);
    }
    if (len > best_len) {
      best_len = len;
      best_path = std::move(path);
      best_structure = s.id;
    }
    if (best_len >= needed) break;
  }
  if (best_path.size() < 2) return result;

  const PolylineWalk walk(std::move(best_path));
  result.structure = best_structure;

  // Random start offset if the path has slack; otherwise start at the
  // beginning and clamp at the end (queries bunch at the tip).
  const double slack = std::max(0.0, walk.TotalLength() - needed);
  double s = extent * 0.5 + (slack > 0.0 ? rng->Uniform(0.0, slack) : 0.0);

  result.queries.reserve(config.num_queries);
  Vec3 prev_center;
  for (uint32_t q = 0; q < config.num_queries; ++q) {
    if (q > 0 && s >= walk.TotalLength()) break;  // Path exhausted:
                                                  // truncate, don't repeat.
    double arc = std::min(s, walk.TotalLength());
    Vec3 center = walk.ArcPoint(arc);
    if (q > 0) {
      // Advance along the arc until the *chord* distance from the
      // previous center reaches the step, so consecutive queries are
      // adjacent (sharing a boundary) rather than overlapping whenever
      // the path curves — "adjacent to each other, slightly overlapping
      // or with small gaps" (paper §1).
      const double arc_increment = step * 0.05;
      while (arc < walk.TotalLength() &&
             center.DistanceTo(prev_center) < step) {
        arc = std::min(arc + arc_increment, walk.TotalLength());
        center = walk.ArcPoint(arc);
      }
    }
    result.arc_positions.push_back(arc);
    if (config.aspect == QueryAspect::kFrustum) {
      result.queries.push_back(
          Region::FrustumAt(center, walk.ArcTangent(arc),
                            config.query_volume));
    } else {
      result.queries.push_back(Region::CubeAt(center, config.query_volume));
    }
    prev_center = center;
    s = arc + step;
  }
  return result;
}

}  // namespace scout
