#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/vec3.h"
#include "storage/object.h"

namespace scout {

/// One point of a structure's centerline tree.
struct StructureNode {
  Vec3 pos;
  double radius = 1.0;
  int32_t parent = -1;  ///< Index of the parent node, -1 for the root.
};

/// A guiding structure: a tree-shaped centerline (neuron branch system,
/// arterial tree, airway, road). Spatial objects are generated along its
/// edges; guided query sequences follow root-to-leaf paths through it.
/// This is ground truth — prefetchers never see it.
struct Structure {
  StructureId id = kInvalidStructureId;
  std::vector<StructureNode> nodes;

  /// Children lists derived from `parent` pointers.
  std::vector<std::vector<uint32_t>> BuildChildren() const;

  /// Samples a root-to-leaf path: at every bifurcation a uniformly random
  /// child is chosen. Returns the polyline of node positions.
  std::vector<Vec3> SamplePath(Rng* rng) const;

  /// Total polyline length of the longest root-to-leaf path.
  double LongestPathLength() const;
};

/// Arc-length parameterized walk along a polyline. `ArcPoint(s)` returns
/// the point at curve length s (clamped to the ends); `ArcTangent(s)` the
/// unit tangent there.
class PolylineWalk {
 public:
  explicit PolylineWalk(std::vector<Vec3> points);

  double TotalLength() const { return total_; }
  Vec3 ArcPoint(double s) const;
  Vec3 ArcTangent(double s) const;

 private:
  size_t SegmentAt(double s, double* local) const;

  std::vector<Vec3> points_;
  std::vector<double> cumulative_;  // cumulative_[i] = length up to point i
  double total_ = 0.0;
};

/// Emits one cylinder object per tree edge of `structure`, appending to
/// `objects` with sequential ids starting at *next_id (incremented).
/// `path_index` records the child-node index for ground-truth ordering.
void EmitStructureObjects(const Structure& structure, ObjectId* next_id,
                          std::vector<SpatialObject>* objects);

}  // namespace scout

