#include "workload/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace scout {

namespace {

// Reflects `pos` into `bounds`, flipping the matching direction
// components, so growing fibers stay inside the dataset volume.
void ReflectIntoBounds(const Aabb& bounds, Vec3* pos, Vec3* dir) {
  double* p[3] = {&pos->x, &pos->y, &pos->z};
  double* d[3] = {&dir->x, &dir->y, &dir->z};
  const double lo[3] = {bounds.min().x, bounds.min().y, bounds.min().z};
  const double hi[3] = {bounds.max().x, bounds.max().y, bounds.max().z};
  for (int axis = 0; axis < 3; ++axis) {
    if (*p[axis] < lo[axis]) {
      *p[axis] = 2.0 * lo[axis] - *p[axis];
      *d[axis] = -*d[axis];
    } else if (*p[axis] > hi[axis]) {
      *p[axis] = 2.0 * hi[axis] - *p[axis];
      *d[axis] = -*d[axis];
    }
  }
}

Vec3 RandomUnitVector(Rng* rng) {
  // Rejection sampling inside the unit sphere.
  while (true) {
    const Vec3 v(rng->Uniform(-1, 1), rng->Uniform(-1, 1),
                 rng->Uniform(-1, 1));
    const double n = v.NormSquared();
    if (n > 1e-4 && n <= 1.0) return v / std::sqrt(n);
  }
}

// Rotates `v` by `angle` around unit `axis` (Rodrigues).
Vec3 Rotate(const Vec3& v, const Vec3& axis, double angle) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return v * c + axis.Cross(v) * s + axis * (axis.Dot(v) * (1.0 - c));
}

// Shared tree-growing parameters for the vascular-style generators.
struct TreeParams {
  Aabb bounds;
  uint32_t levels;
  double root_branch_length;
  double length_decay;
  double step_length;
  double arc_curvature;
  double turn_stddev;
  double branch_angle;
  double root_radius;
  double radius_decay;
};

// Grows one smooth bifurcating tree into `structure`. Every branch is an
// arc with per-branch fixed curvature axis plus small noise; at the end
// of a branch two children split off at +-branch_angle.
void GrowSmoothTree(const TreeParams& p, const Vec3& root_pos,
                    const Vec3& root_dir, Rng* rng, Structure* structure) {
  struct Work {
    uint32_t parent_node;
    Vec3 dir;
    double length;
    double radius;
    uint32_t level;
  };

  structure->nodes.push_back(StructureNode{root_pos, p.root_radius, -1});
  std::vector<Work> stack;
  stack.push_back(Work{0, root_dir, p.root_branch_length, p.root_radius, 0});

  while (!stack.empty()) {
    Work w = stack.back();
    stack.pop_back();

    const Vec3 arc_axis = RandomUnitVector(rng);
    Vec3 dir = w.dir;
    Vec3 pos = structure->nodes[w.parent_node].pos;
    uint32_t parent = w.parent_node;
    const uint32_t steps = std::max<uint32_t>(
        2, static_cast<uint32_t>(w.length / p.step_length));
    for (uint32_t i = 0; i < steps; ++i) {
      dir = Rotate(dir, arc_axis, p.arc_curvature);
      if (p.turn_stddev > 0.0) {
        dir += Vec3(rng->Gaussian(0, p.turn_stddev),
                    rng->Gaussian(0, p.turn_stddev),
                    rng->Gaussian(0, p.turn_stddev));
        dir = dir.Normalized();
      }
      pos += dir * p.step_length;
      ReflectIntoBounds(p.bounds, &pos, &dir);
      structure->nodes.push_back(
          StructureNode{pos, w.radius, static_cast<int32_t>(parent)});
      parent = static_cast<uint32_t>(structure->nodes.size() - 1);
    }

    if (w.level + 1 < p.levels) {
      const Vec3 split_axis = dir.Cross(RandomUnitVector(rng)).Normalized();
      for (int sign : {+1, -1}) {
        Work child;
        child.parent_node = parent;
        child.dir =
            Rotate(dir, split_axis, sign * p.branch_angle).Normalized();
        child.length = w.length * p.length_decay;
        child.radius = w.radius * p.radius_decay;
        child.level = w.level + 1;
        stack.push_back(child);
      }
    }
  }
}

// Fills `dataset->adjacency` with the tree adjacency of every structure:
// edge objects sharing a centerline node are adjacent (the mesh case).
void BuildTreeAdjacency(Dataset* dataset) {
  // Objects were emitted with path_index = child-node index; map
  // (structure, node) -> object id.
  for (const Structure& s : dataset->structures) {
    std::unordered_map<uint32_t, ObjectId> edge_of_node;
    for (const SpatialObject& obj : dataset->objects) {
      if (obj.structure_id == s.id) edge_of_node[obj.path_index] = obj.id;
    }
    auto connect = [&](uint32_t node_a, uint32_t node_b) {
      auto a = edge_of_node.find(node_a);
      auto b = edge_of_node.find(node_b);
      if (a == edge_of_node.end() || b == edge_of_node.end()) return;
      dataset->adjacency[a->second].push_back(b->second);
      dataset->adjacency[b->second].push_back(a->second);
    };
    const auto children = s.BuildChildren();
    for (uint32_t i = 0; i < s.nodes.size(); ++i) {
      // Parent edge of node i meets every child edge at node i.
      for (uint32_t c : children[i]) {
        if (s.nodes[i].parent >= 0) connect(i, c);
      }
      // Sibling edges also share node i.
      for (size_t a = 0; a < children[i].size(); ++a) {
        for (size_t b = a + 1; b < children[i].size(); ++b) {
          connect(children[i][a], children[i][b]);
        }
      }
    }
  }
}

Dataset GenerateTreeDataset(const TreeParams& params, uint32_t num_trees,
                            uint64_t seed, const std::string& name) {
  Dataset dataset;
  dataset.name = name;
  dataset.bounds = params.bounds;
  Rng rng(seed);
  ObjectId next_id = 0;
  for (uint32_t t = 0; t < num_trees; ++t) {
    Structure structure;
    structure.id = static_cast<StructureId>(t);
    // Roots start near the boundary pointing inward so trees span the
    // volume.
    const Vec3 margin = params.bounds.Extents() * 0.08;
    const Vec3 root(
        rng.Uniform(params.bounds.min().x + margin.x,
                    params.bounds.max().x - margin.x),
        rng.Uniform(params.bounds.min().y + margin.y,
                    params.bounds.max().y - margin.y),
        params.bounds.min().z + margin.z);
    Vec3 dir = (params.bounds.Center() - root).Normalized();
    dir = (dir + RandomUnitVector(&rng) * 0.3).Normalized();
    Rng tree_rng = rng.Fork();
    GrowSmoothTree(params, root, dir, &tree_rng, &structure);
    EmitStructureObjects(structure, &next_id, &dataset.objects);
    dataset.structures.push_back(std::move(structure));
  }
  return dataset;
}

}  // namespace

Dataset GenerateNeuronTissue(const NeuronGenConfig& config) {
  Dataset dataset;
  dataset.name = "neuron-tissue";
  dataset.bounds = config.bounds;
  Rng rng(config.seed);
  ObjectId next_id = 0;

  for (uint32_t n = 0; n < config.num_neurons; ++n) {
    Structure structure;
    structure.id = static_cast<StructureId>(n);
    Rng neuron_rng = rng.Fork();

    const Vec3 margin = config.bounds.Extents() * 0.05;
    const Vec3 soma(
        neuron_rng.Uniform(config.bounds.min().x + margin.x,
                           config.bounds.max().x - margin.x),
        neuron_rng.Uniform(config.bounds.min().y + margin.y,
                           config.bounds.max().y - margin.y),
        neuron_rng.Uniform(config.bounds.min().z + margin.z,
                           config.bounds.max().z - margin.z));
    structure.nodes.push_back(
        StructureNode{soma, config.radius * 2.5, -1});

    struct Work {
      uint32_t parent_node;
      Vec3 dir;
      uint32_t steps;
      uint32_t depth;
    };
    std::vector<Work> stack;
    const uint32_t primaries = static_cast<uint32_t>(neuron_rng.UniformInt(
        config.primary_branches_min, config.primary_branches_max));
    for (uint32_t b = 0; b < primaries; ++b) {
      const uint32_t steps = static_cast<uint32_t>(
          neuron_rng.UniformInt(config.steps_min, config.steps_max));
      stack.push_back(Work{0, RandomUnitVector(&neuron_rng), steps, 0});
    }

    while (!stack.empty()) {
      Work w = stack.back();
      stack.pop_back();
      Vec3 dir = w.dir;
      Vec3 pos = structure.nodes[w.parent_node].pos;
      uint32_t parent = w.parent_node;
      for (uint32_t i = 0; i < w.steps; ++i) {
        dir += Vec3(neuron_rng.Gaussian(0, config.turn_stddev),
                    neuron_rng.Gaussian(0, config.turn_stddev),
                    neuron_rng.Gaussian(0, config.turn_stddev));
        dir = dir.Normalized();
        pos += dir * config.step_length;
        ReflectIntoBounds(config.bounds, &pos, &dir);
        structure.nodes.push_back(
            StructureNode{pos, config.radius, static_cast<int32_t>(parent)});
        parent = static_cast<uint32_t>(structure.nodes.size() - 1);

        const uint32_t remaining = w.steps - i - 1;
        if (w.depth < config.max_depth && remaining > 20 &&
            neuron_rng.Bernoulli(config.bifurcation_prob)) {
          Work child;
          child.parent_node = parent;
          child.dir =
              (dir + RandomUnitVector(&neuron_rng) * 0.8).Normalized();
          child.steps = static_cast<uint32_t>(remaining * 0.7);
          child.depth = w.depth + 1;
          stack.push_back(child);
        }
      }
    }

    EmitStructureObjects(structure, &next_id, &dataset.objects);
    dataset.structures.push_back(std::move(structure));
  }
  return dataset;
}

NeuronGenConfig NeuronConfigForObjectCount(uint64_t target_objects,
                                           uint64_t seed) {
  NeuronGenConfig config;
  config.seed = seed;
  // Measured expectation with the default branch parameters (primaries,
  // step counts and recursive bifurcation expansion included).
  constexpr double kObjectsPerNeuron = 19200.0;
  config.num_neurons = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::llround(static_cast<double>(target_objects) /
                          kObjectsPerNeuron)));
  return config;
}

Dataset GenerateArterialTree(const VascularGenConfig& config) {
  TreeParams params;
  params.bounds = config.bounds;
  params.levels = config.levels;
  params.root_branch_length = config.root_branch_length;
  params.length_decay = config.length_decay;
  params.step_length = config.step_length;
  params.arc_curvature = config.arc_curvature;
  params.turn_stddev = config.turn_stddev;
  params.branch_angle = config.branch_angle;
  params.root_radius = config.root_radius;
  params.radius_decay = config.radius_decay;
  return GenerateTreeDataset(params, config.num_trees, config.seed,
                             "arterial-tree");
}

Dataset GenerateLungAirway(const AirwayGenConfig& config) {
  TreeParams params;
  params.bounds = config.bounds;
  params.levels = config.levels;
  params.root_branch_length = config.root_branch_length;
  params.length_decay = config.length_decay;
  params.step_length = config.step_length;
  params.arc_curvature = config.arc_curvature;
  params.turn_stddev = config.turn_stddev;
  params.branch_angle = config.branch_angle;
  params.root_radius = config.root_radius;
  params.radius_decay = config.radius_decay;
  Dataset dataset = GenerateTreeDataset(params, config.num_trees,
                                        config.seed, "lung-airway");
  BuildTreeAdjacency(&dataset);
  return dataset;
}

Dataset GenerateRoadNetwork(const RoadGenConfig& config) {
  Dataset dataset;
  dataset.name = "road-network";
  const double z_mid = config.thickness * 0.5;
  dataset.bounds = Aabb(Vec3(0, 0, 0),
                        Vec3(config.width, config.height, config.thickness));
  Rng rng(config.seed);
  ObjectId next_id = 0;
  StructureId next_structure = 0;

  auto emit_road = [&](Vec3 start, Vec3 end) {
    Structure road;
    road.id = next_structure++;
    const double length = start.DistanceTo(end);
    const uint32_t steps = std::max<uint32_t>(
        2, static_cast<uint32_t>(length / config.step_length));
    const Vec3 dir = (end - start).Normalized();
    // A lateral axis in-plane for jitter.
    const Vec3 lateral = Vec3(-dir.y, dir.x, 0).Normalized();
    road.nodes.push_back(StructureNode{start, config.radius, -1});
    for (uint32_t i = 1; i <= steps; ++i) {
      const double t = static_cast<double>(i) / steps;
      Vec3 pos = Lerp(start, end, t) +
                 lateral * rng.Gaussian(0, config.jitter);
      pos.z = z_mid;
      pos.x = std::clamp(pos.x, 0.0, config.width);
      pos.y = std::clamp(pos.y, 0.0, config.height);
      road.nodes.push_back(
          StructureNode{pos, config.radius, static_cast<int32_t>(i - 1)});
    }
    EmitStructureObjects(road, &next_id, &dataset.objects);
    dataset.structures.push_back(std::move(road));
  };

  for (uint32_t a = 0; a < config.num_avenues; ++a) {
    const double x =
        (a + 0.5) / config.num_avenues * config.width +
        rng.Gaussian(0, config.width / config.num_avenues * 0.15);
    emit_road(Vec3(std::clamp(x, 0.0, config.width), 0, z_mid),
              Vec3(std::clamp(x, 0.0, config.width), config.height, z_mid));
  }
  for (uint32_t s = 0; s < config.num_streets; ++s) {
    const double y =
        (s + 0.5) / config.num_streets * config.height +
        rng.Gaussian(0, config.height / config.num_streets * 0.15);
    emit_road(Vec3(0, std::clamp(y, 0.0, config.height), z_mid),
              Vec3(config.width, std::clamp(y, 0.0, config.height), z_mid));
  }
  for (uint32_t h = 0; h < config.num_highways; ++h) {
    // Random long chords across the extent.
    const Vec3 start(rng.Uniform(0, config.width * 0.3),
                     rng.Uniform(0, config.height), z_mid);
    const Vec3 end(rng.Uniform(config.width * 0.7, config.width),
                   rng.Uniform(0, config.height), z_mid);
    emit_road(start, end);
  }
  return dataset;
}

}  // namespace scout
