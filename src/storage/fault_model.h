#pragma once

#include <cstdint>

#include "common/sim_clock.h"
#include "storage/page.h"

namespace scout {

/// Knobs of the deterministic storage fault injector. All probabilities
/// are per independent draw; a config with every probability at 0 is the
/// explicit "no faults" schedule — attaching it must leave every
/// simulated metric bit-identical to running with no schedule at all
/// (pinned by fault_differential_test).
struct FaultConfig {
  /// Root seed of the schedule. Every draw mixes it SplitMix64-style
  /// with the (page, channel, time-window) coordinates, so faults are
  /// pure functions of (seed, page, channel, simulated time) — never of
  /// thread timing, worker count, or call order.
  uint64_t seed = 0;

  /// Probability that reading a page transiently fails (bad transfer;
  /// the attempt still occupies the disk for its full service time).
  double read_failure_prob = 0.0;
  /// Failures are drawn per (page, time-burst) window: once a page's
  /// draw fails, every read of it within the same burst window fails
  /// too — a transient error persists for a while instead of
  /// flickering per attempt. Must be > 0.
  SimMicros read_failure_burst_us = 2000;

  /// Probability that a channel suffers an outage within each
  /// `channel_outage_period_us` window of simulated time. During an
  /// outage the channel serves nothing: a read dispatched to it waits
  /// until the outage ends (its busy_until jumps past the window).
  double channel_outage_prob = 0.0;
  SimMicros channel_outage_period_us = 200000;
  /// Outage duration (clamped to the period).
  SimMicros channel_outage_us = 50000;

  /// Probability that a read's service time spikes (deep queue inside
  /// the drive, remapped sector): the read costs
  /// `latency_spike_multiplier` times its base service time.
  double latency_spike_prob = 0.0;
  double latency_spike_multiplier = 8.0;
};

/// Deterministic storage fault schedule. The schedule is immutable and
/// stateless after construction: every query is a pure hash draw over
/// (seed, page/channel, simulated time), so it is safe to share one
/// const instance across the engine's parallel pure phases (baselines)
/// and the serial apply loop, and reruns at any worker count see the
/// exact same fault pattern. Storage components take the schedule via
/// AttachFaults(const FaultSchedule*) — the only mutation seam, gated
/// by the `fault-injection-seam` lint rule.
class FaultSchedule {
 public:
  explicit FaultSchedule(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }

  /// True when any fault class is armed (all-zero probabilities make
  /// the schedule a no-op that storage may skip entirely).
  bool Armed() const { return armed_; }

  /// Whether a read of `page` issued at simulated time `now` fails.
  /// Constant within each read_failure_burst_us window of a page.
  bool ReadFails(PageId page, SimMicros now) const;

  /// Extra service time of a read of `page` issued at `now` whose base
  /// service cost is `base_cost_us` (0 when no spike fires).
  SimMicros LatencySpikeExtraUs(PageId page, SimMicros now,
                                SimMicros base_cost_us) const;

  /// End of the outage covering simulated time `now` on `channel`, or 0
  /// when the channel is serving normally at `now`.
  SimMicros ChannelOutageEndUs(uint32_t channel, SimMicros now) const;

  /// Derived per-session seed for engine-side randomized policies
  /// (retry backoff jitter), mirroring the per-session stream
  /// derivation the prefetchers use: independent across sessions,
  /// reproducible across reruns.
  static uint64_t SessionJitterSeed(uint64_t seed, uint32_t session);

 private:
  FaultConfig config_;
  bool armed_ = false;
};

}  // namespace scout
