#ifndef SCOUT_STORAGE_CACHE_H_
#define SCOUT_STORAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/page.h"

namespace scout {

/// Page-granular prefetch cache with LRU eviction and a byte capacity
/// (the paper allows 4 GB of RAM for prefetched data, §7.1; benches use a
/// scaled-down capacity). Pages inserted by the prefetcher are served to
/// subsequent queries as cache hits; the cache-hit rate is the paper's
/// primary accuracy metric.
class PrefetchCache {
 public:
  explicit PrefetchCache(uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  PrefetchCache(const PrefetchCache&) = delete;
  PrefetchCache& operator=(const PrefetchCache&) = delete;

  /// True if the page is currently cached (does not touch LRU order).
  bool Contains(PageId page) const { return entries_.contains(page); }

  /// Inserts a page (kPageBytes); evicts least-recently-used pages if the
  /// capacity is exceeded. Inserting an existing page refreshes its LRU
  /// position. Returns false if the page cannot fit at all.
  bool Insert(PageId page);

  /// Marks a page as recently used (call on every cache hit).
  void Touch(PageId page);

  /// Removes a single page if present.
  void Erase(PageId page);

  /// Drops everything (done between sequences, like the paper's cache
  /// clearing between runs).
  void Clear();

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t size_bytes() const {
    return static_cast<uint64_t>(entries_.size()) * kPageBytes;
  }
  size_t NumPages() const { return entries_.size(); }
  bool Full() const { return size_bytes() + kPageBytes > capacity_bytes_; }

  uint64_t evictions() const { return evictions_; }

 private:
  uint64_t capacity_bytes_;
  // LRU list: front = most recent. Map holds iterators into the list.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> entries_;
  uint64_t evictions_ = 0;
};

}  // namespace scout

#endif  // SCOUT_STORAGE_CACHE_H_
