#pragma once

#include <cstdint>
#include <vector>

#ifndef NDEBUG
#include <atomic>
#include <cassert>
#endif

#include "storage/page.h"

namespace scout {

/// Per-session cache attribution counters in shared (multi-client) mode.
/// Hits are attributed by who *inserted* the page: a cross hit means the
/// session was served by another session's prefetch (constructive
/// sharing), an eviction caused/suffered pair measures contention.
struct CacheSessionStats {
  uint64_t inserts = 0;           ///< Pages this session inserted.
  uint64_t hits_own = 0;          ///< Hits on pages it inserted itself.
  uint64_t hits_cross = 0;        ///< Hits on pages another session inserted.
  uint64_t evictions_caused = 0;  ///< Evictions its inserts triggered.
  uint64_t pages_evicted = 0;     ///< Its pages evicted by anyone.
};

/// Page-granular prefetch cache with LRU eviction and a byte capacity
/// (the paper allows 4 GB of RAM for prefetched data, §7.1; benches use a
/// scaled-down capacity). Pages inserted by the prefetcher are served to
/// subsequent queries as cache hits; the cache-hit rate is the paper's
/// primary accuracy metric.
///
/// Layout: one fixed slab of slots (page id + intrusive doubly-linked LRU
/// order, slots never move) plus an open-addressed table of slot handles
/// (linear probing, backward-shift deletion). No per-entry allocation and
/// a single probe per Insert/Touch/Erase; storage is allocated lazily on
/// the first insert so idle caches stay cheap.
///
/// Concurrency contract (shared multi-client mode): the cache is mutated
/// by exactly one thread at a time — the engine's deterministic apply
/// loop, which executes session steps in simulated-schedule order
/// (lowest SimClock timestamp first, ties by session id). Hit and
/// eviction order is therefore a pure function of the simulated schedule,
/// never of real thread timing. Debug builds enforce the single-writer
/// discipline with an atomic guard (tripped under TSan/Debug if two
/// threads ever mutate concurrently).
class PrefetchCache {
 public:
  explicit PrefetchCache(uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes),
        capacity_pages_(capacity_bytes / kPageBytes) {}

  PrefetchCache(const PrefetchCache&) = delete;
  PrefetchCache& operator=(const PrefetchCache&) = delete;

  /// True if the page is currently cached (does not touch LRU order).
  bool Contains(PageId page) const {
    return !table_.empty() && table_[FindPos(page)] != kEmptyWord;
  }

  /// Inserts a page (kPageBytes); evicts least-recently-used pages if the
  /// capacity is exceeded. Inserting an existing page refreshes its LRU
  /// position. Returns false if the page cannot fit at all.
  bool Insert(PageId page);

  /// Marks a page as recently used (call on every cache hit).
  void Touch(PageId page);

  /// Combined hit test + LRU refresh in a single table probe: returns
  /// true and marks the page recently used iff it is cached. This is the
  /// executor's hot path for serving query pages. In shared mode the hit
  /// is attributed to the active session (own vs cross by inserter).
  bool TouchIfPresent(PageId page) {
    if (table_.empty()) return false;
    const ScopedWriter guard(this);
    const uint64_t word = table_[FindPos(page)];
    if (word == kEmptyWord) return false;
    const uint32_t slot = EntrySlot(word);
    if (!session_stats_.empty() && active_session_ != kNoSession) {
      CacheSessionStats& s = session_stats_[active_session_];
      if (slots_[slot].owner == active_session_) {
        ++s.hits_own;
      } else {
        ++s.hits_cross;
      }
    }
    MoveToFront(slot);
    return true;
  }

  // ----------------------------------------------------------------
  // Shared (multi-client) mode. The engine enables sharing once per run,
  // then brackets each session's step with SetActiveSession so inserts
  // and hits are attributed. Single-stream users never call these and
  // pay nothing (attribution is one predictable branch on the hot path).

  /// Sentinel for "no session bound" (attribution disabled).
  static constexpr uint32_t kNoSession = 0xffffffffu;

  /// Enables per-session attribution for `num_sessions` sessions and
  /// zeroes all attribution state. Pass 0 to disable shared mode.
  ///
  /// With `quota_eviction` set, eviction switches from one global LRU to
  /// a quota-segmented LRU (cache QoS): capacity is split into
  /// per-session page quotas (capacity_pages / num_sessions, remainder
  /// to the lowest ids), pages owned by sessions that left shared mode
  /// (owner kNoSession) form an unattributed pseudo-group with quota 0,
  /// and a full cache picks the victim by occupancy vs quota:
  ///   - an inserter at or over its quota evicts its OWN LRU page
  ///     (self-eviction — it can never push out a peer's page);
  ///   - an inserter under quota evicts the LRU page of the group
  ///     furthest over its quota (ties to the lowest group id).
  /// When the cache is full, some group is always at or over quota (the
  /// quotas sum to the capacity), so a session within its quota never
  /// loses pages to a peer. Recency order is preserved per owner; hit
  /// attribution and all counters are identical to global-LRU mode.
  void ConfigureSharing(uint32_t num_sessions, bool quota_eviction);
  void ConfigureSharing(uint32_t num_sessions) {
    ConfigureSharing(num_sessions, false);
  }

  /// Attributes subsequent Insert/TouchIfPresent calls to `session`
  /// (must be < the configured session count, or kNoSession to detach).
  /// An out-of-range id detaches attribution instead of letting the hot
  /// paths index session_stats_ out of bounds.
  void SetActiveSession(uint32_t session) {
#ifndef NDEBUG
    assert(session == kNoSession || session < session_stats_.size());
#endif
    active_session_ =
        session < session_stats_.size() ? session : kNoSession;
  }

  /// Per-session attribution counters (empty unless sharing is enabled).
  const std::vector<CacheSessionStats>& session_stats() const {
    return session_stats_;
  }

  /// Session currently attributed (kNoSession when detached).
  uint32_t active_session() const { return active_session_; }

  /// True when quota-segmented (QoS) eviction is enabled.
  bool quota_eviction() const { return !owner_lru_.empty(); }

  /// Page quota of `session` (0 unless quota eviction is enabled).
  uint64_t session_quota(uint32_t session) const {
    return session < session_stats_.size() && quota_eviction()
               ? owner_lru_[session].quota
               : 0;
  }

  /// Pages `session` currently owns (0 unless quota eviction is enabled).
  uint64_t session_occupancy(uint32_t session) const {
    return session < session_stats_.size() && quota_eviction()
               ? owner_lru_[session].occupancy
               : 0;
  }

  /// Pages owned by no registered session (quota eviction only).
  uint64_t unattributed_occupancy() const {
    return quota_eviction() ? owner_lru_.back().occupancy : 0;
  }

  /// Owner of the page the active session's next new-page insert would
  /// evict, or kNoSession when nothing would be evicted (cache not full)
  /// or the victim is unattributed. This is the victim preview the
  /// engine's priced admission control consults before paying for a
  /// prefetch read; it mirrors the eviction policy exactly (global LRU
  /// tail, or the quota-segmented pick when QoS eviction is on).
  uint32_t PeekVictimOwner() const {
    if (num_pages_ == 0 || num_pages_ < capacity_pages_) return kNoSession;
    const uint32_t victim = quota_eviction() ? PickVictimSlot() : tail_;
    return victim == kNil ? kNoSession : slots_[victim].owner;
  }

  /// Number of completed Clear() generations. Sessions must never carry
  /// cached-page assumptions across an epoch boundary; engines
  /// sanity-check this when reusing a cache across runs.
  uint64_t epoch() const { return epoch_; }

  /// Removes a single page if present.
  void Erase(PageId page);

  /// Drops everything (done between sequences, like the paper's cache
  /// clearing between runs). A cleared cache is indistinguishable from a
  /// fresh one: contents, per-session attribution stats and the lifetime
  /// eviction counter all reset (quotas persist — Clear keeps the
  /// sharing configuration), so admission control re-warms from scratch.
  void Clear();

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t size_bytes() const { return num_pages_ * kPageBytes; }
  size_t NumPages() const { return num_pages_; }

  /// True when no further page fits. A capacity below one page is always
  /// full (and never underflows: all arithmetic is in whole pages).
  bool Full() const { return num_pages_ >= capacity_pages_; }

  uint64_t evictions() const { return evictions_; }

 private:
  /// Slot handle / LRU-link sentinel ("no slot").
  static constexpr uint32_t kNil = 0xffffffffu;
  /// Empty hash-table word. Valid entries always carry a slot handle
  /// below capacity, so the all-ones word is unambiguous.
  static constexpr uint64_t kEmptyWord = ~0ull;

  struct Slot {
    PageId page = kInvalidPageId;
    uint32_t prev = kNil;   ///< Towards MRU.
    uint32_t next = kNil;   ///< Towards LRU; free-list link when free.
    uint32_t owner = kNoSession;  ///< Inserting session (shared mode).
    uint32_t oprev = kNil;  ///< Owner-chain link (quota eviction only).
    uint32_t onext = kNil;  ///< Owner-chain link (quota eviction only).
  };

  /// Per-owner recency chain + quota accounting (quota eviction only).
  /// Group s < num_sessions is session s; the last group collects
  /// unattributed pages (owner kNoSession) with quota 0.
  struct OwnerLru {
    uint32_t head = kNil;    ///< Owner's MRU slot.
    uint32_t tail = kNil;    ///< Owner's LRU slot.
    uint64_t quota = 0;      ///< Page quota (0 for the pseudo-group).
    uint64_t occupancy = 0;  ///< Pages currently owned.
  };

  /// Debug-only single-writer assertion (see the class comment): every
  /// mutating entry point claims the guard, so two threads mutating
  /// concurrently trip the assert in Debug/TSan builds instead of
  /// corrupting the slab silently. Compiled out in release builds.
#ifndef NDEBUG
  class ScopedWriter {
   public:
    explicit ScopedWriter(const PrefetchCache* cache) : cache_(cache) {
      const bool was_busy =
          cache_->writer_busy_.exchange(true, std::memory_order_acquire);
      assert(!was_busy && "PrefetchCache: concurrent mutation detected");
      (void)was_busy;
    }
    ~ScopedWriter() {
      cache_->writer_busy_.store(false, std::memory_order_release);
    }

   private:
    const PrefetchCache* cache_;
  };
#else
  class ScopedWriter {
   public:
    explicit ScopedWriter(const PrefetchCache*) {}
  };
#endif

  /// Hash-table words pack (page << 32 | slot) so a probe compares pages
  /// without dereferencing the slab.
  static constexpr uint64_t PackEntry(PageId page, uint32_t slot) {
    return (static_cast<uint64_t>(page) << 32) | slot;
  }
  static constexpr PageId EntryPage(uint64_t word) {
    return static_cast<PageId>(word >> 32);
  }
  static constexpr uint32_t EntrySlot(uint64_t word) {
    return static_cast<uint32_t>(word);
  }

  /// Allocates the slab and hash table on first use.
  void EnsureStorage();

  size_t HashPos(PageId page) const {
    // Fibonacci multiplicative hash onto the power-of-two table.
    return static_cast<size_t>((page * 0x9e3779b97f4a7c15ull) >> shift_);
  }

  /// Probe position holding `page`, or the empty position where it would
  /// be inserted. Requires storage to be allocated.
  size_t FindPos(PageId page) const {
    size_t pos = HashPos(page);
    while (table_[pos] != kEmptyWord && EntryPage(table_[pos]) != page) {
      pos = (pos + 1) & mask_;
    }
    return pos;
  }

  /// Empties table position `pos` and backward-shifts the cluster behind
  /// it so linear probing stays correct without tombstones.
  void RemoveTableEntry(size_t pos);

  void LinkFront(uint32_t slot);
  void Unlink(uint32_t slot);
  void MoveToFront(uint32_t slot) {
    if (head_ != slot) {
      Unlink(slot);
      LinkFront(slot);
    }
    if (!owner_lru_.empty()) OwnerMoveToFront(slot);
  }

  /// Owner-group index of `owner` (unattributed pseudo-group for
  /// kNoSession or anything out of range).
  size_t GroupOf(uint32_t owner) const {
    return owner < session_stats_.size() ? owner : owner_lru_.size() - 1;
  }

  void OwnerLinkFront(uint32_t slot);
  void OwnerLinkBack(uint32_t slot);
  void OwnerUnlink(uint32_t slot);
  void OwnerMoveToFront(uint32_t slot) {
    const size_t g = GroupOf(slots_[slot].owner);
    if (owner_lru_[g].head == slot) return;
    OwnerUnlink(slot);
    OwnerLinkFront(slot);
  }

  /// Victim of the next new-page insert under quota-segmented eviction
  /// (see ConfigureSharing). Requires a full, quota-mode cache.
  uint32_t PickVictimSlot() const;

  /// Evicts the page in `slot`, attributing the eviction. Requires an
  /// occupied slot.
  void EvictSlot(uint32_t slot);

  uint64_t capacity_bytes_;
  uint64_t capacity_pages_;
  std::vector<Slot> slots_;      ///< Fixed slab, one slot per capacity page.
  std::vector<uint64_t> table_;  ///< Open-addressed packed (page, slot).
  size_t mask_ = 0;              ///< table_.size() - 1.
  int shift_ = 0;                ///< 64 - log2(table_.size()).
  uint32_t head_ = kNil;         ///< MRU slot.
  uint32_t tail_ = kNil;         ///< LRU slot.
  uint32_t free_head_ = kNil;    ///< Free-slot list through Slot::next.
  uint64_t num_pages_ = 0;
  uint64_t evictions_ = 0;

  // Shared-mode state. All of it is reinitialized by Clear() (counters
  // zeroed, epoch bumped) so back-to-back runs stay bit-identical.
  std::vector<CacheSessionStats> session_stats_;  ///< Empty = unshared.
  std::vector<OwnerLru> owner_lru_;  ///< Empty = global-LRU eviction.
  uint32_t active_session_ = kNoSession;
  uint64_t epoch_ = 0;
#ifndef NDEBUG
  mutable std::atomic<bool> writer_busy_{false};
#endif
};

}  // namespace scout

