#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace scout {

/// Owner of all disk pages of a dataset. Index builders (STR R-tree,
/// FLAT) decide which objects go on which page — the store just holds the
/// layout in physical order. In a real deployment this would be the
/// on-disk heap file; here pages live in memory while the DiskModel
/// charges simulated I/O time for reading them.
class PageStore {
 public:
  PageStore() = default;

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;
  PageStore(PageStore&&) = default;
  PageStore& operator=(PageStore&&) = default;

  /// Appends a page holding `objects` (at most kPageCapacity of them) at
  /// the next physical position. Returns its PageId.
  StatusOr<PageId> AppendPage(std::vector<SpatialObject> objects);

  size_t NumPages() const { return pages_.size(); }

  const Page& page(PageId id) const { return pages_[id]; }

  /// Bounds-checked page access for callers holding ids of uncertain
  /// provenance (deserialized layouts, future real-I/O backends where a
  /// stale id must surface as an error instead of undefined behavior).
  /// The hot paths keep using page() — index lookups only produce ids
  /// the store handed out.
  StatusOr<const Page*> CheckedPage(PageId id) const {
    if (id >= pages_.size()) {
      return Status(StatusCode::kOutOfRange, "page id out of range");
    }
    return &pages_[id];
  }

  /// All pages in physical order.
  const std::vector<Page>& pages() const { return pages_; }

  /// Total number of stored objects.
  size_t NumObjects() const { return num_objects_; }

  /// Total dataset size charged to disk (pages * kPageBytes).
  uint64_t TotalBytes() const {
    return static_cast<uint64_t>(pages_.size()) * kPageBytes;
  }

 private:
  std::vector<Page> pages_;
  size_t num_objects_ = 0;
};

}  // namespace scout

