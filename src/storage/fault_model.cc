#include "storage/fault_model.h"

#include <algorithm>

namespace scout {
namespace {

// Domain-separation salts: each fault class draws from its own stream so
// enabling one class never perturbs another's pattern.
constexpr uint64_t kReadFailureSalt = 0x52454144464c5453ull;   // "READFLTS"
constexpr uint64_t kLatencySpikeSalt = 0x53504b4546415444ull;  // "SPKEFATD"
constexpr uint64_t kOutageSalt = 0x4f55544147455344ull;        // "OUTAGESD"
constexpr uint64_t kOutageOffsetSalt = 0x4f55544f46465354ull;  // "OUTOFFST"
constexpr uint64_t kJitterSalt = 0x4a49545445525344ull;        // "JITTERSD"

/// SplitMix64 finalizer — the same mixing constants Rng::Seed expands
/// seeds with, reused here as a stateless hash so draws need no mutable
/// generator state.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Hash3(uint64_t seed, uint64_t salt, uint64_t a, uint64_t b) {
  return Mix(Mix(Mix(seed ^ salt) ^ a) ^ b);
}

/// Uniform [0, 1) from a hash word (same mapping as Rng::NextDouble).
double Unit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultSchedule::FaultSchedule(const FaultConfig& config) : config_(config) {
  config_.read_failure_burst_us =
      std::max<SimMicros>(1, config_.read_failure_burst_us);
  config_.channel_outage_period_us =
      std::max<SimMicros>(1, config_.channel_outage_period_us);
  config_.channel_outage_us =
      std::clamp<SimMicros>(config_.channel_outage_us, 0,
                            config_.channel_outage_period_us);
  armed_ = config_.read_failure_prob > 0.0 ||
           (config_.channel_outage_prob > 0.0 &&
            config_.channel_outage_us > 0) ||
           config_.latency_spike_prob > 0.0;
}

bool FaultSchedule::ReadFails(PageId page, SimMicros now) const {
  if (config_.read_failure_prob <= 0.0) return false;
  const uint64_t burst =
      static_cast<uint64_t>(now / config_.read_failure_burst_us);
  const uint64_t h = Hash3(config_.seed, kReadFailureSalt, page, burst);
  return Unit(h) < config_.read_failure_prob;
}

SimMicros FaultSchedule::LatencySpikeExtraUs(PageId page, SimMicros now,
                                             SimMicros base_cost_us) const {
  if (config_.latency_spike_prob <= 0.0) return 0;
  const uint64_t h = Hash3(config_.seed, kLatencySpikeSalt, page,
                           static_cast<uint64_t>(now));
  if (Unit(h) >= config_.latency_spike_prob) return 0;
  const double extra = static_cast<double>(base_cost_us) *
                       (std::max(1.0, config_.latency_spike_multiplier) - 1.0);
  return static_cast<SimMicros>(extra);
}

SimMicros FaultSchedule::ChannelOutageEndUs(uint32_t channel,
                                            SimMicros now) const {
  if (config_.channel_outage_prob <= 0.0 || config_.channel_outage_us <= 0) {
    return 0;
  }
  const SimMicros period = config_.channel_outage_period_us;
  const SimMicros duration = config_.channel_outage_us;
  // An outage lies entirely within its period window, so only the window
  // containing `now` can cover it.
  const uint64_t window = static_cast<uint64_t>(now / period);
  const uint64_t h = Hash3(config_.seed, kOutageSalt, channel, window);
  if (Unit(h) >= config_.channel_outage_prob) return 0;
  // Deterministic start offset within the window (so outages are not all
  // phase-locked to window boundaries across channels).
  const SimMicros slack = period - duration;
  SimMicros offset = 0;
  if (slack > 0) {
    const uint64_t oh =
        Hash3(config_.seed, kOutageOffsetSalt, channel, window);
    offset = static_cast<SimMicros>(
        oh % static_cast<uint64_t>(slack + 1));
  }
  const SimMicros start =
      static_cast<SimMicros>(window) * period + offset;
  const SimMicros end = start + duration;
  return (now >= start && now < end) ? end : 0;
}

uint64_t FaultSchedule::SessionJitterSeed(uint64_t seed, uint32_t session) {
  return Hash3(seed, kJitterSalt, session, 0);
}

}  // namespace scout
