#pragma once

#include <cstdint>
#include <span>
#include <vector>

#ifndef NDEBUG
#include <atomic>
#include <cassert>
#endif

#include "common/sim_clock.h"
#include "storage/disk_model.h"
#include "storage/fault_model.h"
#include "storage/page.h"

namespace scout {

/// Configuration of the shared disk array all sessions contend for.
struct DiskQueueConfig {
  /// Per-read cost parameters (same meaning as the private DiskModel).
  DiskConfig disk;
  /// Independent service channels — the paper's 4-disk SAS stripe. Reads
  /// dispatch to the channel that frees up first, so up to `channels`
  /// reads overlap in simulated time.
  uint32_t channels = 4;
};

/// Aggregate (or per-session) counters of the shared disk queue.
struct DiskQueueStats {
  uint64_t requests = 0;          ///< Pages served.
  uint64_t batches = 0;           ///< ServeBatch/ServeOne calls.
  uint64_t random_reads = 0;
  uint64_t sequential_reads = 0;
  uint64_t reordered_pages = 0;   ///< Served out of arrival order.
  uint64_t failed_reads = 0;      ///< Transient read failures (injected).
  SimMicros service_us = 0;       ///< Summed per-read service time.
  SimMicros wait_us = 0;          ///< Summed head-of-line queueing delay.
  SimMicros outage_wait_us = 0;   ///< Delay spent behind channel outages.
};

/// Deterministic shared-disk queueing model: ONE disk array serves every
/// session's reads instead of each session simulating a private disk.
/// Cross-session contention becomes a measurable simulated cost — a read
/// issued while all channels are busy with other sessions' work waits
/// until a channel frees up.
///
/// Service model:
///   - A request issued at simulated time `now` starts on the channel
///     with the earliest free time (ties to the lowest channel id), at
///     max(now, channel free time), and occupies it for the read cost.
///   - Batches are reordered by a C-SCAN elevator scan before service:
///     ascending page order starting from the array's current head
///     position, wrapping to the lowest page. Sorted adjacent pages
///     price as sequential transfers exactly like DiskModel (adjacency
///     is tracked array-wide: striping distributes load, the head
///     position is one).
///   - A batch's latency is the completion of its slowest page minus
///     `now`; its queue wait is the delay before any page starts.
///
/// Determinism contract: identical to PrefetchCache — all state advances
/// on simulated time supplied by the caller, and the queue is mutated by
/// exactly one thread at a time (the engine's serial apply loop, or a
/// single worker owning a private instance). Debug builds enforce the
/// single-writer discipline with an atomic guard.
class SharedDiskQueue {
 public:
  /// Result of serving one batch of reads issued at the same instant.
  struct BatchResult {
    SimMicros latency_us = 0;     ///< Slowest page completion - issue.
    SimMicros service_us = 0;     ///< Summed per-read service time.
    SimMicros queue_wait_us = 0;  ///< Delay before the first read started.
  };

  SharedDiskQueue(const DiskQueueConfig& config, uint32_t num_sessions);

  SharedDiskQueue(const SharedDiskQueue&) = delete;
  SharedDiskQueue& operator=(const SharedDiskQueue&) = delete;

  /// Serves `pages` (any order; reordered by the elevator scan) for
  /// `session`, issued at simulated time `now`. `now` need not be
  /// monotone across sessions — an earlier-issued request simply finds
  /// busier channels. Infallible entry point: with a fault schedule
  /// attached, failed transfers are charged but not reported.
  BatchResult ServeBatch(uint32_t session, SimMicros now,
                         std::span<const PageId> pages) {
    return TryServeBatch(session, now, pages, nullptr);
  }

  /// Failure-aware batch serve: identical timing arithmetic to
  /// ServeBatch (bit-identical with no schedule attached), with the
  /// pages whose transfer transiently failed appended to `*failed`
  /// (cleared first; may be null to ignore failures). A failed page
  /// still occupies its channel for the full attempt cost; channel
  /// outages delay dispatch (the channel's busy time jumps past the
  /// outage window) and latency spikes inflate individual reads.
  BatchResult TryServeBatch(uint32_t session, SimMicros now,
                            std::span<const PageId> pages,
                            std::vector<PageId>* failed);

  /// Serves a single read (the prefetch-window path).
  BatchResult ServeOne(uint32_t session, SimMicros now, PageId page);

  /// Failure-aware single read: `*failed` is set iff the transfer
  /// transiently failed (the attempt cost is charged either way).
  BatchResult TryServeOne(uint32_t session, SimMicros now, PageId page,
                          bool* failed);

  /// Attaches (or detaches, with nullptr) the deterministic fault
  /// schedule consulted on every serve. Borrowed, never owned; must
  /// outlive the queue. Survives Reset (the schedule is configuration,
  /// not state).
  void AttachFaults(const FaultSchedule* faults) { faults_ = faults; }
  const FaultSchedule* faults() const { return faults_; }

  /// Forgets head position and busy times and zeroes all counters (the
  /// owning engine cold-starts the array once per run).
  void Reset();

  const DiskQueueConfig& config() const { return config_; }
  const DiskQueueStats& stats() const { return stats_; }
  const std::vector<DiskQueueStats>& session_stats() const {
    return session_stats_;
  }

 private:
#ifndef NDEBUG
  class ScopedWriter {
   public:
    explicit ScopedWriter(const SharedDiskQueue* queue) : queue_(queue) {
      const bool was_busy =
          queue_->writer_busy_.exchange(true, std::memory_order_acquire);
      assert(!was_busy && "SharedDiskQueue: concurrent mutation detected");
      (void)was_busy;
    }
    ~ScopedWriter() {
      queue_->writer_busy_.store(false, std::memory_order_release);
    }

   private:
    const SharedDiskQueue* queue_;
  };
#else
  class ScopedWriter {
   public:
    explicit ScopedWriter(const SharedDiskQueue*) {}
  };
#endif

  /// Channel with the earliest free time, ties to the lowest id.
  uint32_t PickChannel() const;

  DiskQueueConfig config_;
  const FaultSchedule* faults_ = nullptr;  ///< Borrowed; null = no faults.
  std::vector<SimMicros> channel_free_us_;  ///< Per-channel free time.
  bool has_position_ = false;
  PageId head_page_ = kInvalidPageId;  ///< Array-wide head position.
  DiskQueueStats stats_;
  std::vector<DiskQueueStats> session_stats_;
  std::vector<PageId> scratch_;  ///< Elevator ordering buffer.
  std::vector<PageId> failed_scratch_;  ///< TryServeOne failure buffer.
#ifndef NDEBUG
  mutable std::atomic<bool> writer_busy_{false};
#endif
};

}  // namespace scout
