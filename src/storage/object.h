#pragma once

#include <cstdint>
#include <vector>

#include "geom/cylinder.h"

namespace scout {

/// Identifier of a spatial object within a dataset.
using ObjectId = uint64_t;

/// Ground-truth identifier of the structure (neuron branch, artery, road,
/// airway) an object belongs to. Used ONLY by workload generators and by
/// evaluation metrics — prefetchers never see it (they must infer
/// structure from geometry, which is the whole point of the paper).
using StructureId = uint32_t;

/// Sentinel for "no structure".
inline constexpr StructureId kInvalidStructureId = 0xffffffffu;

/// One spatial object: a cylinder (the paper's datasets model everything
/// — neuron segments, arteries, roads, mesh faces — as small cylinders /
/// segments with radii).
struct SpatialObject {
  ObjectId id = 0;
  StructureId structure_id = kInvalidStructureId;
  Cylinder geom;

  /// Index of this object along its structure's path (monotone along the
  /// guiding structure). Ground truth for generators/metrics only.
  uint32_t path_index = 0;

  Aabb Bounds() const { return geom.Bounds(); }
  Vec3 Centroid() const { return geom.Centroid(); }
};

/// On-disk footprint of one object. The paper's tissue model stores 450M
/// cylinders in 33 GB with 87 objects per 4 KB page => ~47 bytes of
/// geometry per object; we use the same packing.
inline constexpr size_t kObjectDiskBytes = 47;

}  // namespace scout

