#include "storage/shared_disk.h"

#include <algorithm>

namespace scout {

SharedDiskQueue::SharedDiskQueue(const DiskQueueConfig& config,
                                 uint32_t num_sessions)
    : config_(config),
      channel_free_us_(std::max<uint32_t>(1, config.channels), 0),
      session_stats_(num_sessions) {}

uint32_t SharedDiskQueue::PickChannel() const {
  uint32_t best = 0;
  for (uint32_t c = 1; c < channel_free_us_.size(); ++c) {
    if (channel_free_us_[c] < channel_free_us_[best]) best = c;
  }
  return best;
}

SharedDiskQueue::BatchResult SharedDiskQueue::TryServeBatch(
    uint32_t session, SimMicros now, std::span<const PageId> pages,
    std::vector<PageId>* failed) {
  BatchResult result;
  if (failed != nullptr) failed->clear();
  if (pages.empty()) return result;
  const ScopedWriter guard(this);
  const bool inject = faults_ != nullptr && faults_->Armed();

  // Elevator (C-SCAN) ordering: ascending from the current head
  // position, wrapping to the lowest page. Callers usually pass sorted
  // pages, so the sort is one verification scan.
  scratch_.assign(pages.begin(), pages.end());
  std::sort(scratch_.begin(), scratch_.end());
  size_t split = 0;
  if (has_position_) {
    while (split < scratch_.size() && scratch_[split] <= head_page_) {
      ++split;
    }
  }
  if (split == scratch_.size()) split = 0;

  DiskQueueStats* per_session =
      session < session_stats_.size() ? &session_stats_[session] : nullptr;
  SimMicros earliest_start = 0;
  SimMicros completion = 0;
  uint64_t reordered = 0;
  uint64_t failures = 0;
  SimMicros outage_wait = 0;
  for (size_t i = 0; i < scratch_.size(); ++i) {
    const size_t k = (split + i) % scratch_.size();
    const PageId page = scratch_[k];
    if (page != pages[i]) ++reordered;
    const bool sequential =
        has_position_ && page == head_page_ + 1;
    SimMicros cost = sequential ? config_.disk.sequential_read_us
                                : config_.disk.random_read_us;
    const uint32_t channel = PickChannel();
    SimMicros start = std::max(now, channel_free_us_[channel]);
    if (inject) {
      // A channel mid-outage serves nothing: dispatch waits out the
      // window (the channel's busy time jumps past it).
      const SimMicros outage_end =
          faults_->ChannelOutageEndUs(channel, start);
      if (outage_end > start) {
        outage_wait += outage_end - start;
        start = outage_end;
      }
      // Per-read latency spike, drawn on (page, issue instant) so every
      // queue (shared or per-baseline private) prices the same read the
      // same way.
      cost += faults_->LatencySpikeExtraUs(page, now, cost);
    }
    channel_free_us_[channel] = start + cost;
    head_page_ = page;
    has_position_ = true;
    earliest_start = i == 0 ? start : std::min(earliest_start, start);
    completion = std::max(completion, start + cost);
    result.service_us += cost;
    ++stats_.requests;
    stats_.service_us += cost;
    if (sequential) {
      ++stats_.sequential_reads;
      if (per_session != nullptr) ++per_session->sequential_reads;
    } else {
      ++stats_.random_reads;
      if (per_session != nullptr) ++per_session->random_reads;
    }
    if (inject && faults_->ReadFails(page, now)) {
      // The transfer went bad: the channel time is spent either way, the
      // data just never arrives.
      ++failures;
      if (failed != nullptr) failed->push_back(page);
    }
  }
  result.latency_us = completion - now;
  result.queue_wait_us = std::max<SimMicros>(0, earliest_start - now);

  ++stats_.batches;
  stats_.wait_us += result.queue_wait_us;
  stats_.reordered_pages += reordered;
  stats_.failed_reads += failures;
  stats_.outage_wait_us += outage_wait;
  if (per_session != nullptr) {
    per_session->requests += scratch_.size();
    ++per_session->batches;
    per_session->service_us += result.service_us;
    per_session->wait_us += result.queue_wait_us;
    per_session->reordered_pages += reordered;
    per_session->failed_reads += failures;
    per_session->outage_wait_us += outage_wait;
  }
  return result;
}

SharedDiskQueue::BatchResult SharedDiskQueue::ServeOne(uint32_t session,
                                                       SimMicros now,
                                                       PageId page) {
  return ServeBatch(session, now, std::span<const PageId>(&page, 1));
}

SharedDiskQueue::BatchResult SharedDiskQueue::TryServeOne(uint32_t session,
                                                          SimMicros now,
                                                          PageId page,
                                                          bool* failed) {
  failed_scratch_.clear();
  const BatchResult result = TryServeBatch(
      session, now, std::span<const PageId>(&page, 1), &failed_scratch_);
  if (failed != nullptr) *failed = !failed_scratch_.empty();
  return result;
}

void SharedDiskQueue::Reset() {
  const ScopedWriter guard(this);
  std::fill(channel_free_us_.begin(), channel_free_us_.end(), 0);
  has_position_ = false;
  head_page_ = kInvalidPageId;
  stats_ = DiskQueueStats{};
  std::fill(session_stats_.begin(), session_stats_.end(), DiskQueueStats{});
}

}  // namespace scout
