#include "storage/shared_disk.h"

#include <algorithm>

namespace scout {

SharedDiskQueue::SharedDiskQueue(const DiskQueueConfig& config,
                                 uint32_t num_sessions)
    : config_(config),
      channel_free_us_(std::max<uint32_t>(1, config.channels), 0),
      session_stats_(num_sessions) {}

uint32_t SharedDiskQueue::PickChannel() const {
  uint32_t best = 0;
  for (uint32_t c = 1; c < channel_free_us_.size(); ++c) {
    if (channel_free_us_[c] < channel_free_us_[best]) best = c;
  }
  return best;
}

SharedDiskQueue::BatchResult SharedDiskQueue::ServeBatch(
    uint32_t session, SimMicros now, std::span<const PageId> pages) {
  BatchResult result;
  if (pages.empty()) return result;
  const ScopedWriter guard(this);

  // Elevator (C-SCAN) ordering: ascending from the current head
  // position, wrapping to the lowest page. Callers usually pass sorted
  // pages, so the sort is one verification scan.
  scratch_.assign(pages.begin(), pages.end());
  std::sort(scratch_.begin(), scratch_.end());
  size_t split = 0;
  if (has_position_) {
    while (split < scratch_.size() && scratch_[split] <= head_page_) {
      ++split;
    }
  }
  if (split == scratch_.size()) split = 0;

  DiskQueueStats* per_session =
      session < session_stats_.size() ? &session_stats_[session] : nullptr;
  SimMicros earliest_start = 0;
  SimMicros completion = 0;
  uint64_t reordered = 0;
  for (size_t i = 0; i < scratch_.size(); ++i) {
    const size_t k = (split + i) % scratch_.size();
    const PageId page = scratch_[k];
    if (page != pages[i]) ++reordered;
    const bool sequential =
        has_position_ && page == head_page_ + 1;
    const SimMicros cost = sequential ? config_.disk.sequential_read_us
                                      : config_.disk.random_read_us;
    const uint32_t channel = PickChannel();
    const SimMicros start = std::max(now, channel_free_us_[channel]);
    channel_free_us_[channel] = start + cost;
    head_page_ = page;
    has_position_ = true;
    earliest_start = i == 0 ? start : std::min(earliest_start, start);
    completion = std::max(completion, start + cost);
    result.service_us += cost;
    ++stats_.requests;
    stats_.service_us += cost;
    if (sequential) {
      ++stats_.sequential_reads;
      if (per_session != nullptr) ++per_session->sequential_reads;
    } else {
      ++stats_.random_reads;
      if (per_session != nullptr) ++per_session->random_reads;
    }
  }
  result.latency_us = completion - now;
  result.queue_wait_us = std::max<SimMicros>(0, earliest_start - now);

  ++stats_.batches;
  stats_.wait_us += result.queue_wait_us;
  stats_.reordered_pages += reordered;
  if (per_session != nullptr) {
    per_session->requests += scratch_.size();
    ++per_session->batches;
    per_session->service_us += result.service_us;
    per_session->wait_us += result.queue_wait_us;
    per_session->reordered_pages += reordered;
  }
  return result;
}

SharedDiskQueue::BatchResult SharedDiskQueue::ServeOne(uint32_t session,
                                                       SimMicros now,
                                                       PageId page) {
  return ServeBatch(session, now, std::span<const PageId>(&page, 1));
}

void SharedDiskQueue::Reset() {
  const ScopedWriter guard(this);
  std::fill(channel_free_us_.begin(), channel_free_us_.end(), 0);
  has_position_ = false;
  head_page_ = kInvalidPageId;
  stats_ = DiskQueueStats{};
  std::fill(session_stats_.begin(), session_stats_.end(), DiskQueueStats{});
}

}  // namespace scout
