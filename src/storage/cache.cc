#include "storage/cache.h"

#include <algorithm>
#include <bit>

namespace scout {

void PrefetchCache::EnsureStorage() {
  if (!table_.empty() || capacity_pages_ == 0) return;
  slots_.resize(capacity_pages_);
  // Load factor <= 0.5 keeps linear-probe clusters short.
  const size_t table_size =
      std::bit_ceil(std::max<size_t>(capacity_pages_ * 2, 8));
  table_.assign(table_size, kEmptyWord);
  mask_ = table_size - 1;
  shift_ = 64 - std::countr_zero(table_size);
  for (size_t i = 0; i + 1 < slots_.size(); ++i) {
    slots_[i].next = static_cast<uint32_t>(i + 1);
  }
  slots_.back().next = kNil;
  free_head_ = 0;
}

void PrefetchCache::LinkFront(uint32_t slot) {
  slots_[slot].prev = kNil;
  slots_[slot].next = head_;
  if (head_ != kNil) slots_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void PrefetchCache::Unlink(uint32_t slot) {
  const Slot& s = slots_[slot];
  if (s.prev != kNil) slots_[s.prev].next = s.next;
  if (s.next != kNil) slots_[s.next].prev = s.prev;
  if (head_ == slot) head_ = s.next;
  if (tail_ == slot) tail_ = s.prev;
}

void PrefetchCache::RemoveTableEntry(size_t pos) {
  table_[pos] = kEmptyWord;
  size_t hole = pos;
  size_t j = pos;
  while (true) {
    j = (j + 1) & mask_;
    if (table_[j] == kEmptyWord) return;
    const size_t ideal = HashPos(EntryPage(table_[j]));
    // The entry at j may fill the hole iff the hole lies on its probe
    // path, i.e. strictly closer (cyclically) to its ideal position.
    if (((hole - ideal) & mask_) < ((j - ideal) & mask_)) {
      table_[hole] = table_[j];
      table_[j] = kEmptyWord;
      hole = j;
    }
  }
}

void PrefetchCache::EvictTail() {
  const uint32_t victim = tail_;
  if (!session_stats_.empty()) {
    const uint32_t owner = slots_[victim].owner;
    if (owner < session_stats_.size()) ++session_stats_[owner].pages_evicted;
    if (active_session_ != kNoSession) {
      ++session_stats_[active_session_].evictions_caused;
    }
  }
  RemoveTableEntry(FindPos(slots_[victim].page));
  Unlink(victim);
  slots_[victim].page = kInvalidPageId;
  slots_[victim].owner = kNoSession;
  slots_[victim].next = free_head_;
  free_head_ = victim;
  --num_pages_;
  ++evictions_;
}

bool PrefetchCache::Insert(PageId page) {
  if (capacity_pages_ == 0) return false;
  const ScopedWriter guard(this);
  EnsureStorage();
  size_t pos = FindPos(page);
  if (table_[pos] != kEmptyWord) {
    // Re-inserting a cached page only refreshes its LRU position; the
    // original inserter keeps the ownership attribution.
    MoveToFront(EntrySlot(table_[pos]));
    return true;
  }
  if (num_pages_ >= capacity_pages_) {
    EvictTail();
    pos = FindPos(page);  // Eviction backward-shifts table entries.
  }
  const uint32_t slot = free_head_;
  free_head_ = slots_[slot].next;
  slots_[slot].page = page;
  slots_[slot].owner = active_session_;
  if (!session_stats_.empty() && active_session_ != kNoSession) {
    ++session_stats_[active_session_].inserts;
  }
  LinkFront(slot);
  table_[pos] = PackEntry(page, slot);
  ++num_pages_;
  return true;
}

void PrefetchCache::Touch(PageId page) {
  if (table_.empty()) return;
  const ScopedWriter guard(this);
  const size_t pos = FindPos(page);
  if (table_[pos] != kEmptyWord) MoveToFront(EntrySlot(table_[pos]));
}

void PrefetchCache::Erase(PageId page) {
  if (table_.empty()) return;
  const ScopedWriter guard(this);
  const size_t pos = FindPos(page);
  if (table_[pos] == kEmptyWord) return;
  const uint32_t slot = EntrySlot(table_[pos]);
  RemoveTableEntry(pos);
  Unlink(slot);
  slots_[slot].page = kInvalidPageId;
  slots_[slot].owner = kNoSession;
  slots_[slot].next = free_head_;
  free_head_ = slot;
  --num_pages_;
}

void PrefetchCache::ConfigureSharing(uint32_t num_sessions) {
  const ScopedWriter guard(this);
  session_stats_.assign(num_sessions, CacheSessionStats{});
  active_session_ = kNoSession;
}

void PrefetchCache::Clear() {
  const ScopedWriter guard(this);
  // Shared-mode state resets unconditionally (even on a never-used
  // cache): a cleared cache must be indistinguishable from a fresh one,
  // or back-to-back shared runs diverge on attribution counters.
  ++epoch_;
  std::fill(session_stats_.begin(), session_stats_.end(),
            CacheSessionStats{});
  active_session_ = kNoSession;
  if (table_.empty()) {
    num_pages_ = 0;
    return;
  }
  std::fill(table_.begin(), table_.end(), kEmptyWord);
  for (size_t i = 0; i + 1 < slots_.size(); ++i) {
    slots_[i].page = kInvalidPageId;
    slots_[i].owner = kNoSession;
    slots_[i].next = static_cast<uint32_t>(i + 1);
  }
  slots_.back().page = kInvalidPageId;
  slots_.back().owner = kNoSession;
  slots_.back().next = kNil;
  free_head_ = 0;
  head_ = kNil;
  tail_ = kNil;
  num_pages_ = 0;
}

}  // namespace scout
