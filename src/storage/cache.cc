#include "storage/cache.h"

#include <algorithm>
#include <bit>

namespace scout {

void PrefetchCache::EnsureStorage() {
  if (!table_.empty() || capacity_pages_ == 0) return;
  slots_.resize(capacity_pages_);
  // Load factor <= 0.5 keeps linear-probe clusters short.
  const size_t table_size =
      std::bit_ceil(std::max<size_t>(capacity_pages_ * 2, 8));
  table_.assign(table_size, kEmptyWord);
  mask_ = table_size - 1;
  shift_ = 64 - std::countr_zero(table_size);
  for (size_t i = 0; i + 1 < slots_.size(); ++i) {
    slots_[i].next = static_cast<uint32_t>(i + 1);
  }
  slots_.back().next = kNil;
  free_head_ = 0;
}

void PrefetchCache::LinkFront(uint32_t slot) {
  slots_[slot].prev = kNil;
  slots_[slot].next = head_;
  if (head_ != kNil) slots_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void PrefetchCache::Unlink(uint32_t slot) {
  const Slot& s = slots_[slot];
  if (s.prev != kNil) slots_[s.prev].next = s.next;
  if (s.next != kNil) slots_[s.next].prev = s.prev;
  if (head_ == slot) head_ = s.next;
  if (tail_ == slot) tail_ = s.prev;
}

void PrefetchCache::RemoveTableEntry(size_t pos) {
  table_[pos] = kEmptyWord;
  size_t hole = pos;
  size_t j = pos;
  while (true) {
    j = (j + 1) & mask_;
    if (table_[j] == kEmptyWord) return;
    const size_t ideal = HashPos(EntryPage(table_[j]));
    // The entry at j may fill the hole iff the hole lies on its probe
    // path, i.e. strictly closer (cyclically) to its ideal position.
    if (((hole - ideal) & mask_) < ((j - ideal) & mask_)) {
      table_[hole] = table_[j];
      table_[j] = kEmptyWord;
      hole = j;
    }
  }
}

void PrefetchCache::OwnerLinkFront(uint32_t slot) {
  OwnerLru& o = owner_lru_[GroupOf(slots_[slot].owner)];
  slots_[slot].oprev = kNil;
  slots_[slot].onext = o.head;
  if (o.head != kNil) slots_[o.head].oprev = slot;
  o.head = slot;
  if (o.tail == kNil) o.tail = slot;
  ++o.occupancy;
}

void PrefetchCache::OwnerLinkBack(uint32_t slot) {
  OwnerLru& o = owner_lru_[GroupOf(slots_[slot].owner)];
  slots_[slot].onext = kNil;
  slots_[slot].oprev = o.tail;
  if (o.tail != kNil) slots_[o.tail].onext = slot;
  o.tail = slot;
  if (o.head == kNil) o.head = slot;
  ++o.occupancy;
}

void PrefetchCache::OwnerUnlink(uint32_t slot) {
  OwnerLru& o = owner_lru_[GroupOf(slots_[slot].owner)];
  const Slot& s = slots_[slot];
  if (s.oprev != kNil) slots_[s.oprev].onext = s.onext;
  if (s.onext != kNil) slots_[s.onext].oprev = s.oprev;
  if (o.head == slot) o.head = s.onext;
  if (o.tail == slot) o.tail = s.oprev;
  --o.occupancy;
}

uint32_t PrefetchCache::PickVictimSlot() const {
  // An inserter at or over its quota pays for its own appetite: its own
  // LRU page goes, never a peer's.
  const OwnerLru& mine = owner_lru_[GroupOf(active_session_)];
  if (mine.occupancy >= mine.quota && mine.tail != kNil) return mine.tail;
  // Under-quota inserter: shrink the group furthest over its quota, ties
  // to the lowest group id (the unattributed pseudo-group, quota 0, is
  // the last group). A full cache always has an over-quota group — the
  // quotas sum to the capacity.
  size_t victim = owner_lru_.size();
  uint64_t best_excess = 0;
  for (size_t g = 0; g < owner_lru_.size(); ++g) {
    const OwnerLru& o = owner_lru_[g];
    if (o.occupancy > o.quota && o.occupancy - o.quota > best_excess) {
      victim = g;
      best_excess = o.occupancy - o.quota;
    }
  }
  if (victim < owner_lru_.size()) return owner_lru_[victim].tail;
  return tail_;  // Unreachable on a full cache; safe fallback otherwise.
}

void PrefetchCache::EvictSlot(uint32_t victim) {
  if (!session_stats_.empty()) {
    const uint32_t owner = slots_[victim].owner;
    if (owner < session_stats_.size()) ++session_stats_[owner].pages_evicted;
    if (active_session_ != kNoSession) {
      ++session_stats_[active_session_].evictions_caused;
    }
  }
  RemoveTableEntry(FindPos(slots_[victim].page));
  Unlink(victim);
  if (!owner_lru_.empty()) OwnerUnlink(victim);
  slots_[victim].page = kInvalidPageId;
  slots_[victim].owner = kNoSession;
  slots_[victim].next = free_head_;
  free_head_ = victim;
  --num_pages_;
  ++evictions_;
}

bool PrefetchCache::Insert(PageId page) {
  if (capacity_pages_ == 0) return false;
  const ScopedWriter guard(this);
  EnsureStorage();
  size_t pos = FindPos(page);
  if (table_[pos] != kEmptyWord) {
    // Re-inserting a cached page only refreshes its LRU position; the
    // original inserter keeps the ownership attribution.
    MoveToFront(EntrySlot(table_[pos]));
    return true;
  }
  if (num_pages_ >= capacity_pages_) {
    EvictSlot(owner_lru_.empty() ? tail_ : PickVictimSlot());
    pos = FindPos(page);  // Eviction backward-shifts table entries.
  }
  const uint32_t slot = free_head_;
  free_head_ = slots_[slot].next;
  slots_[slot].page = page;
  slots_[slot].owner = active_session_;
  if (!session_stats_.empty() && active_session_ != kNoSession) {
    ++session_stats_[active_session_].inserts;
  }
  LinkFront(slot);
  if (!owner_lru_.empty()) OwnerLinkFront(slot);
  table_[pos] = PackEntry(page, slot);
  ++num_pages_;
  return true;
}

void PrefetchCache::Touch(PageId page) {
  if (table_.empty()) return;
  const ScopedWriter guard(this);
  const size_t pos = FindPos(page);
  if (table_[pos] != kEmptyWord) MoveToFront(EntrySlot(table_[pos]));
}

void PrefetchCache::Erase(PageId page) {
  if (table_.empty()) return;
  const ScopedWriter guard(this);
  const size_t pos = FindPos(page);
  if (table_[pos] == kEmptyWord) return;
  const uint32_t slot = EntrySlot(table_[pos]);
  RemoveTableEntry(pos);
  Unlink(slot);
  if (!owner_lru_.empty()) OwnerUnlink(slot);
  slots_[slot].page = kInvalidPageId;
  slots_[slot].owner = kNoSession;
  slots_[slot].next = free_head_;
  free_head_ = slot;
  --num_pages_;
}

void PrefetchCache::ConfigureSharing(uint32_t num_sessions,
                                     bool quota_eviction) {
  const ScopedWriter guard(this);
  session_stats_.assign(num_sessions, CacheSessionStats{});
  active_session_ = kNoSession;
  owner_lru_.clear();
  if (!quota_eviction || num_sessions == 0) return;
  // Quota-segmented eviction: split the capacity into per-session page
  // quotas (remainder to the lowest session ids, so the quotas sum
  // exactly to the capacity); the trailing pseudo-group holds
  // unattributed pages at quota 0.
  owner_lru_.assign(num_sessions + 1, OwnerLru{});
  const uint64_t base = capacity_pages_ / num_sessions;
  const uint64_t remainder = capacity_pages_ % num_sessions;
  for (uint32_t s = 0; s < num_sessions; ++s) {
    owner_lru_[s].quota = base + (s < remainder ? 1 : 0);
  }
  // Rebuild the owner chains for pages already cached (usually none: the
  // engine clears before configuring). Walking MRU -> LRU and appending
  // at the back preserves each owner's recency order.
  for (uint32_t slot = head_; slot != kNil; slot = slots_[slot].next) {
    OwnerLinkBack(slot);
  }
}

void PrefetchCache::Clear() {
  const ScopedWriter guard(this);
  // Shared-mode state resets unconditionally (even on a never-used
  // cache): a cleared cache must be indistinguishable from a fresh one,
  // or back-to-back shared runs diverge on attribution counters.
  ++epoch_;
  std::fill(session_stats_.begin(), session_stats_.end(),
            CacheSessionStats{});
  // The lifetime eviction counter resets with the generation too: priced
  // admission warms up from observed insert/hit rates, so any counter
  // surviving Clear would leak one run's pressure estimate into the
  // next run's admission decisions.
  evictions_ = 0;
  active_session_ = kNoSession;
  for (OwnerLru& o : owner_lru_) {
    o.head = kNil;
    o.tail = kNil;
    o.occupancy = 0;  // Quotas persist: Clear keeps the sharing config.
  }
  if (table_.empty()) {
    num_pages_ = 0;
    return;
  }
  std::fill(table_.begin(), table_.end(), kEmptyWord);
  for (size_t i = 0; i + 1 < slots_.size(); ++i) {
    slots_[i].page = kInvalidPageId;
    slots_[i].owner = kNoSession;
    slots_[i].next = static_cast<uint32_t>(i + 1);
  }
  slots_.back().page = kInvalidPageId;
  slots_.back().owner = kNoSession;
  slots_.back().next = kNil;
  free_head_ = 0;
  head_ = kNil;
  tail_ = kNil;
  num_pages_ = 0;
}

}  // namespace scout
