#include "storage/cache.h"

namespace scout {

bool PrefetchCache::Insert(PageId page) {
  if (kPageBytes > capacity_bytes_) return false;
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  while (size_bytes() + kPageBytes > capacity_bytes_) {
    const PageId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(page);
  entries_[page] = lru_.begin();
  return true;
}

void PrefetchCache::Touch(PageId page) {
  auto it = entries_.find(page);
  if (it == entries_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second);
}

void PrefetchCache::Erase(PageId page) {
  auto it = entries_.find(page);
  if (it == entries_.end()) return;
  lru_.erase(it->second);
  entries_.erase(it);
}

void PrefetchCache::Clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace scout
