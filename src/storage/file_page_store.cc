#include "storage/file_page_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

namespace scout {
namespace {

// Little helpers over raw byte buffers. memcpy keeps the encoding
// bit-exact for doubles (the round-trip contract) and avoids any
// alignment assumptions on the block buffer.
template <typename T>
void EncodeAt(std::vector<char>* buf, size_t offset, T value) {
  std::memcpy(buf->data() + offset, &value, sizeof(T));
}

template <typename T>
T DecodeAt(const char* buf, size_t offset) {
  T value;
  std::memcpy(&value, buf + offset, sizeof(T));
  return value;
}

size_t EncodeObject(std::vector<char>* buf, size_t offset,
                    const SpatialObject& obj) {
  EncodeAt<uint64_t>(buf, offset, obj.id);
  EncodeAt<uint32_t>(buf, offset + 8, obj.structure_id);
  EncodeAt<uint32_t>(buf, offset + 12, obj.path_index);
  const Vec3 p0 = obj.geom.p0();
  const Vec3 p1 = obj.geom.p1();
  EncodeAt<double>(buf, offset + 16, p0.x);
  EncodeAt<double>(buf, offset + 24, p0.y);
  EncodeAt<double>(buf, offset + 32, p0.z);
  EncodeAt<double>(buf, offset + 40, p1.x);
  EncodeAt<double>(buf, offset + 48, p1.y);
  EncodeAt<double>(buf, offset + 56, p1.z);
  EncodeAt<double>(buf, offset + 64, obj.geom.r0());
  EncodeAt<double>(buf, offset + 72, obj.geom.r1());
  return offset + FilePageStore::kObjectRecordBytes;
}

SpatialObject DecodeObject(const char* buf, size_t offset) {
  SpatialObject obj;
  obj.id = DecodeAt<uint64_t>(buf, offset);
  obj.structure_id = DecodeAt<uint32_t>(buf, offset + 8);
  obj.path_index = DecodeAt<uint32_t>(buf, offset + 12);
  const Vec3 p0(DecodeAt<double>(buf, offset + 16),
                DecodeAt<double>(buf, offset + 24),
                DecodeAt<double>(buf, offset + 32));
  const Vec3 p1(DecodeAt<double>(buf, offset + 40),
                DecodeAt<double>(buf, offset + 48),
                DecodeAt<double>(buf, offset + 56));
  obj.geom = Cylinder(p0, p1, DecodeAt<double>(buf, offset + 64),
                      DecodeAt<double>(buf, offset + 72));
  return obj;
}

Status ErrnoStatus(const std::string& what, int err) {
  const std::string msg = what + ": " + std::strerror(err);
  // EIO is the transient media-error class the retry policy handles;
  // everything else (bad fd, ENOSPC, ...) is a programming or
  // environment error the caller should not retry.
  if (err == EIO || err == EAGAIN || err == EINTR) {
    return Status::Unavailable(msg);
  }
  return Status::Internal(msg);
}

}  // namespace

Status FilePageStore::WriteFile(const PageStore& store,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot create page file: " + path);
  }
  std::vector<char> header(kHeaderBytes, 0);
  EncodeAt<uint64_t>(&header, 0, kMagic);
  EncodeAt<uint32_t>(&header, 8, kFormatVersion);
  EncodeAt<uint32_t>(&header, 12, static_cast<uint32_t>(kBlockBytes));
  EncodeAt<uint32_t>(&header, 16, static_cast<uint32_t>(store.NumPages()));
  EncodeAt<uint64_t>(&header, 24, static_cast<uint64_t>(store.NumObjects()));
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  std::vector<char> block;
  for (const Page& page : store.pages()) {
    if (page.objects.size() > kPageCapacity) {
      return Status::InvalidArgument("page " + std::to_string(page.id) +
                                     " overflows kPageCapacity");
    }
    block.assign(kBlockBytes, 0);
    EncodeAt<uint32_t>(&block, 0, page.id);
    EncodeAt<uint32_t>(&block, 4, static_cast<uint32_t>(page.objects.size()));
    size_t offset = 8;
    for (const SpatialObject& obj : page.objects) {
      offset = EncodeObject(&block, offset, obj);
    }
    out.write(block.data(), static_cast<std::streamsize>(block.size()));
  }
  out.flush();
  if (!out) {
    return Status::Internal("short write to page file: " + path);
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path, const FilePageStoreOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return ErrnoStatus("cannot open page file " + path, errno);
  }
  std::vector<char> header(kHeaderBytes);
  const ssize_t got = ::pread(fd, header.data(), header.size(), 0);
  if (got != static_cast<ssize_t>(header.size())) {
    const int err = errno;
    ::close(fd);
    return got < 0 ? ErrnoStatus("cannot read page-file header", err)
                   : Status::Internal("truncated page-file header: " + path);
  }
  if (DecodeAt<uint64_t>(header.data(), 0) != kMagic) {
    ::close(fd);
    return Status::InvalidArgument("not a scout page file: " + path);
  }
  if (DecodeAt<uint32_t>(header.data(), 8) != kFormatVersion) {
    ::close(fd);
    return Status::InvalidArgument("unsupported page-file version: " + path);
  }
  if (DecodeAt<uint32_t>(header.data(), 12) != kBlockBytes) {
    ::close(fd);
    return Status::InvalidArgument("unexpected page-file block size: " + path);
  }
  std::unique_ptr<FilePageStore> store(new FilePageStore());
  store->fd_ = fd;
  store->page_count_ = DecodeAt<uint32_t>(header.data(), 16);
  store->object_count_ = DecodeAt<uint64_t>(header.data(), 24);
  store->options_ = options;
  return store;
}

FilePageStore::~FilePageStore() {
  if (fd_ >= 0) ::close(fd_);
}

void FilePageStore::EnableFetchLog() {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  log_fetches_ = true;
  fetch_log_.clear();
}

std::vector<PageId> FilePageStore::FetchLog() const {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  return fetch_log_;
}

Status FilePageStore::ReadPage(PageId page, Page* out) {
  if (page >= page_count_) {
    return Status::OutOfRange("page id out of range");
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (log_fetches_) {
    const std::lock_guard<std::mutex> lock(log_mutex_);
    fetch_log_.push_back(page);
  }
  // The emulated device latency is charged per attempt, success or not —
  // a failed transfer occupies the device exactly like a good one (the
  // same accounting the simulated DiskModel uses). Each thread is its
  // own device channel, paced against an absolute deadline: sleep_for
  // overshoots by a kernel-tick-sized, run-varying amount (~40% of a
  // 300 us sleep on some hosts), so back-to-back reads instead extend a
  // per-thread deadline by exactly one latency each and sleep_until it —
  // the overshoot of one read is absorbed by the next, N queued reads
  // take N * latency, and the wall-clock figures stop inheriting the
  // scheduler's per-run jitter. Idle gaps reset the deadline (no credit
  // for time the channel spent unused).
  if (options_.device_latency_us > 0) {
    thread_local const FilePageStore* channel_store = nullptr;
    thread_local std::chrono::steady_clock::time_point channel_next{};
    const auto now = std::chrono::steady_clock::now();
    if (channel_store != this || channel_next < now) {
      channel_store = this;
      channel_next = now;
    }
    channel_next += std::chrono::microseconds(options_.device_latency_us);
    std::this_thread::sleep_until(channel_next);
  }
  if (faults_ != nullptr && faults_->Armed()) {
    const uint64_t op = fault_ops_.fetch_add(1, std::memory_order_relaxed);
    if (faults_->ReadFails(page, static_cast<SimMicros>(op) *
                                     kFaultOpSpacingUs)) {
      failed_reads_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("injected read fault on page " +
                                 std::to_string(page));
    }
  }
  char block[kBlockBytes];
  const off_t offset =
      static_cast<off_t>(kHeaderBytes) + static_cast<off_t>(page) * kBlockBytes;
  const ssize_t got = ::pread(fd_, block, kBlockBytes, offset);
  if (got < 0) {
    failed_reads_.fetch_add(1, std::memory_order_relaxed);
    return ErrnoStatus("pread of page " + std::to_string(page), errno);
  }
  if (got != static_cast<ssize_t>(kBlockBytes)) {
    failed_reads_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("short read of page " + std::to_string(page));
  }
  const uint32_t stored_id = DecodeAt<uint32_t>(block, 0);
  const uint32_t num_objects = DecodeAt<uint32_t>(block, 4);
  if (stored_id != page || num_objects > kPageCapacity) {
    failed_reads_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("corrupt page block " + std::to_string(page));
  }
  out->id = page;
  out->objects.clear();
  out->objects.reserve(num_objects);
  size_t record = 8;
  for (uint32_t i = 0; i < num_objects; ++i) {
    out->objects.push_back(DecodeObject(block, record));
    record += kObjectRecordBytes;
  }
  out->RecomputeBounds();
  return Status::OK();
}

}  // namespace scout
