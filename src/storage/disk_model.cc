#include "storage/disk_model.h"

namespace scout {

SimMicros DiskModel::ReadPage(PageId page) {
  const SimMicros cost = PeekCost(page);
  if (IsSequential(page)) {
    ++sequential_reads_;
  } else {
    ++random_reads_;
  }
  ++pages_read_;
  last_page_ = page;
  has_position_ = true;
  total_read_time_ += cost;
  clock_->Advance(cost);
  return cost;
}

SimMicros DiskModel::EstimateColdReadCost(size_t n) const {
  if (n == 0) return 0;
  return config_.random_read_us +
         static_cast<SimMicros>(n - 1) * config_.sequential_read_us;
}

void DiskModel::Reset() {
  has_position_ = false;
  last_page_ = kInvalidPageId;
  pages_read_ = 0;
  random_reads_ = 0;
  sequential_reads_ = 0;
  total_read_time_ = 0;
}

}  // namespace scout
