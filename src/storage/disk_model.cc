#include "storage/disk_model.h"

namespace scout {

DiskModel::ReadResult DiskModel::TryReadPage(PageId page) {
  ReadResult result;
  // The issue instant must be read before the clock advances: fault draws
  // are pure functions of (seed, page, issue time).
  const SimMicros issue = clock_->now();
  SimMicros cost = PeekCost(page);
  const bool inject = faults_ != nullptr && faults_->Armed();
  if (inject) {
    cost += faults_->LatencySpikeExtraUs(page, issue, cost);
  }
  if (IsSequential(page)) {
    ++sequential_reads_;
  } else {
    ++random_reads_;
  }
  ++pages_read_;
  last_page_ = page;
  has_position_ = true;
  total_read_time_ += cost;
  clock_->Advance(cost);
  result.cost_us = cost;
  if (inject && faults_->ReadFails(page, issue)) {
    ++failed_reads_;
    result.status = Status(StatusCode::kUnavailable, std::string());
  }
  return result;
}

SimMicros DiskModel::EstimateColdReadCost(size_t n) const {
  if (n == 0) return 0;
  return config_.random_read_us +
         static_cast<SimMicros>(n - 1) * config_.sequential_read_us;
}

void DiskModel::Reset() {
  has_position_ = false;
  last_page_ = kInvalidPageId;
  pages_read_ = 0;
  random_reads_ = 0;
  sequential_reads_ = 0;
  failed_reads_ = 0;
  total_read_time_ = 0;
}

}  // namespace scout
