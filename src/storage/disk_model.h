#pragma once

#include <cstdint>

#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/fault_model.h"
#include "storage/page.h"

namespace scout {

/// Cost parameters of the simulated disk. Defaults approximate the
/// paper's 4-disk SAS stripe: ~5 ms average seek + rotational delay for a
/// random 4 KB read, and high sequential bandwidth (~0.02 ms per 4 KB page
/// at ~200 MB/s aggregate).
struct DiskConfig {
  /// Cost of a random page read (seek + rotation + transfer).
  SimMicros random_read_us = 5000;
  /// Cost of reading the physically next page (sequential transfer).
  SimMicros sequential_read_us = 20;
};

/// Deterministic simulated disk. Reading page p right after page p-1
/// costs a sequential transfer; any other read costs a full random
/// access. All time is charged to a SimClock, making experiments exactly
/// reproducible and hardware independent (substitution for the paper's
/// SAS array; see DESIGN.md §2).
class DiskModel {
 public:
  DiskModel(DiskConfig config, SimClock* clock)
      : config_(config), clock_(clock) {}

  /// Outcome of one failure-aware read attempt. The attempt's cost is
  /// charged whether or not it succeeded: a failed transfer occupies the
  /// disk just like a good one, the data merely never arrives.
  struct ReadResult {
    Status status;        ///< OK, or kUnavailable on a transient failure.
    SimMicros cost_us = 0;  ///< Simulated duration charged to the clock.
  };

  /// Charges the simulated cost of reading `page` and advances the clock.
  /// Returns the charged duration. Infallible entry point: with a fault
  /// schedule attached, failures are charged but not reported — callers
  /// that must react to them use TryReadPage.
  SimMicros ReadPage(PageId page) { return TryReadPage(page).cost_us; }

  /// Failure-aware read: identical arithmetic to ReadPage (bit-identical
  /// costs and counters with no schedule attached, or a disarmed one),
  /// plus the fault outcome. Latency spikes inflate the charged cost;
  /// transient failures return kUnavailable after charging the attempt.
  ReadResult TryReadPage(PageId page);

  /// Attaches (or detaches, with nullptr) the deterministic fault
  /// schedule consulted by TryReadPage. The schedule is borrowed, never
  /// owned, and must outlive the model.
  void AttachFaults(const FaultSchedule* faults) { faults_ = faults; }
  const FaultSchedule* faults() const { return faults_; }

  /// Cost of reading `page` right now without performing the read.
  SimMicros PeekCost(PageId page) const {
    return IsSequential(page) ? config_.sequential_read_us
                              : config_.random_read_us;
  }

  /// Cost of reading `n` pages cold, assuming the worst case of all-random
  /// positioning is false and the typical mix: first page random, the
  /// rest charged per their layout adjacency is unknowable ahead of time —
  /// so this helper charges 1 random + (n-1) sequential as the *best*
  /// cold-read estimate and is used only for prefetch-window sizing.
  SimMicros EstimateColdReadCost(size_t n) const;

  const DiskConfig& config() const { return config_; }

  uint64_t pages_read() const { return pages_read_; }
  uint64_t random_reads() const { return random_reads_; }
  uint64_t sequential_reads() const { return sequential_reads_; }
  uint64_t failed_reads() const { return failed_reads_; }
  SimMicros total_read_time() const { return total_read_time_; }

  /// Forgets the head position and zeroes the counters.
  void Reset();

 private:
  bool IsSequential(PageId page) const {
    return has_position_ && page == last_page_ + 1;
  }

  DiskConfig config_;
  SimClock* clock_;
  const FaultSchedule* faults_ = nullptr;  ///< Borrowed; null = no faults.
  bool has_position_ = false;
  PageId last_page_ = kInvalidPageId;
  uint64_t pages_read_ = 0;
  uint64_t random_reads_ = 0;
  uint64_t sequential_reads_ = 0;
  uint64_t failed_reads_ = 0;
  SimMicros total_read_time_ = 0;
};

}  // namespace scout

