#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/fault_model.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace scout {

/// Tuning knobs of the file-backed page store.
struct FilePageStoreOptions {
  /// Emulated per-read device latency, in wall-clock microseconds, added
  /// to every page read (including reads that fail). A locally generated
  /// page file sits in the OS page cache, where a 4 KB pread costs ~1 µs
  /// — too fast for prefetch overlap to be measurable or for the
  /// wall-clock figures to be stable. This knob restores a realistic
  /// device service time (an enterprise SAS/low-end NVMe read is in the
  /// 100–200 µs range), so fig_wallclock measures real thread overlap
  /// over an emulated device latency. 0 disables the emulation (tests).
  int64_t device_latency_us = 0;
};

/// File-backed PageStore: the real-I/O twin of the in-memory PageStore.
///
/// WriteFile serializes an STR-packed PageStore (the layout an index
/// build produced) into an on-disk page file; Open maps it back and
/// serves pread-based page reads. Pages keep their simulated identity
/// (4 KB / 87 objects accounting) but occupy fixed 8 KB physical blocks
/// on disk: geometry is stored as full-precision raw doubles (80 bytes
/// per object, vs the paper's 47-byte packed form) so a decode
/// round-trips bit-identically — the differential tests compare decoded
/// results against the in-memory oracle double-for-double.
///
/// Error seams follow PR 8's Status contract: a failed or short pread
/// maps EIO onto kUnavailable (transient, retryable) and everything
/// else onto kInternal; a stale page id returns kOutOfRange exactly like
/// PageStore::CheckedPage. An attached FaultSchedule injects
/// deterministic read failures on top (ReadFails drawn over a
/// monotonically-spaced operation counter), so the fault-storm soaks
/// exercise the same degraded-mode semantics as the simulated disk.
///
/// Thread safety: ReadPage is safe to call concurrently (pread carries
/// its own offset; counters are atomic; the optional fetch log takes a
/// mutex). The fault-draw operation counter is atomic too — injected
/// faults are deterministic for single-threaded read streams (the soak
/// tests), while concurrent readers see an interleaving-dependent but
/// still schedule-bounded draw sequence.
class FilePageStore {
 public:
  /// On-disk layout constants. Native-endian, single-machine contract:
  /// the page file is generated into the build tree by the bench/test
  /// that reads it, never committed or shipped.
  static constexpr uint64_t kMagic = 0x314750'54554F4353ull;  // "SCOUTPG1"
  static constexpr uint32_t kFormatVersion = 1;
  static constexpr size_t kHeaderBytes = 4096;
  static constexpr size_t kBlockBytes = 8192;
  static constexpr size_t kObjectRecordBytes = 80;

  /// Serializes `store` (every page in physical order) into the page
  /// file at `path`, replacing any existing file.
  static Status WriteFile(const PageStore& store, const std::string& path);

  /// Opens a page file written by WriteFile and validates its header.
  static StatusOr<std::unique_ptr<FilePageStore>> Open(
      const std::string& path, const FilePageStoreOptions& options);
  static StatusOr<std::unique_ptr<FilePageStore>> Open(
      const std::string& path) {
    return Open(path, FilePageStoreOptions{});
  }

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;
  ~FilePageStore();

  /// Reads and decodes one page (pread at the page's block offset).
  /// Charges the emulated device latency, draws the injected-fault
  /// schedule, then performs the read. `out` is valid only on OK.
  Status ReadPage(PageId page, Page* out);

  uint32_t NumPages() const { return page_count_; }
  uint64_t NumObjects() const { return object_count_; }

  /// Attaches (or detaches, with nullptr) a deterministic fault schedule
  /// consulted by ReadPage: reads draw ReadFails over an op-counter
  /// timeline (kFaultOpSpacingUs apart), reusing the burst-window
  /// semantics of the simulated disk. Borrowed, never owned.
  void AttachFaults(const FaultSchedule* faults) { faults_ = faults; }
  const FaultSchedule* faults() const { return faults_; }

  /// Spacing of consecutive fault draws on the op-counter timeline.
  static constexpr SimMicros kFaultOpSpacingUs = 1000;

  /// Turns on the fetch log: every ReadPage appends its page id, in
  /// global issue order across all reader threads. The differential
  /// tests use it to prove the async pipeline issues a
  /// superset-ordering of the sync plan.
  void EnableFetchLog();

  /// Snapshot of the fetch log. Callers must quiesce concurrent readers
  /// first if they need a complete order.
  std::vector<PageId> FetchLog() const;

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t failed_reads() const {
    return failed_reads_.load(std::memory_order_relaxed);
  }

 private:
  FilePageStore() = default;

  int fd_ = -1;
  uint32_t page_count_ = 0;
  uint64_t object_count_ = 0;
  FilePageStoreOptions options_;
  const FaultSchedule* faults_ = nullptr;  ///< Borrowed; null = no faults.
  std::atomic<uint64_t> fault_ops_{0};     ///< Fault-draw timeline position.
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> failed_reads_{0};
  bool log_fetches_ = false;
  mutable std::mutex log_mutex_;
  std::vector<PageId> fetch_log_;
};

}  // namespace scout
