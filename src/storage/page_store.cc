#include "storage/page_store.h"

#include <utility>

namespace scout {

StatusOr<PageId> PageStore::AppendPage(std::vector<SpatialObject> objects) {
  if (objects.size() > kPageCapacity) {
    return Status::InvalidArgument("page overflow: " +
                                   std::to_string(objects.size()) +
                                   " objects > capacity");
  }
  if (pages_.size() >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  Page page;
  page.id = static_cast<PageId>(pages_.size());
  page.objects = std::move(objects);
  page.RecomputeBounds();
  num_objects_ += page.objects.size();
  pages_.push_back(std::move(page));
  return pages_.back().id;
}

}  // namespace scout
