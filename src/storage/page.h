#pragma once

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "storage/object.h"

namespace scout {

/// Identifier of a disk page. Page ids are assigned in physical layout
/// order: page i+1 is physically adjacent to page i, so the disk model
/// can distinguish sequential from random reads.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// Disk page size and fanout, matching the paper's setup (§7.1: "4KB page
/// size and a fanout of 87 objects per page").
inline constexpr size_t kPageBytes = 4096;
inline constexpr size_t kPageCapacity = 87;

/// A disk page holding up to kPageCapacity spatial objects plus its
/// minimum bounding box.
struct Page {
  PageId id = kInvalidPageId;
  std::vector<SpatialObject> objects;
  Aabb bounds;

  size_t NumObjects() const { return objects.size(); }

  /// Recomputes `bounds` from the objects.
  void RecomputeBounds() {
    bounds = Aabb();
    for (const SpatialObject& obj : objects) bounds.Extend(obj.Bounds());
  }
};

}  // namespace scout

