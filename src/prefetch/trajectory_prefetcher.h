#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "prefetch/incremental_plan.h"
#include "prefetch/prefetcher.h"

namespace scout {

/// Common machinery of the trajectory-extrapolation baselines (paper
/// §2.2): they observe only the *positions* of past queries, predict the
/// next query center from them, and prefetch incrementally along the
/// predicted movement axis. Subclasses implement PredictNextCenter().
class TrajectoryPrefetcher : public Prefetcher {
 public:
  void BeginSequence() override;
  SimMicros Observe(const QueryResultView& result) override;
  void RunPrefetch(PrefetchIo* io) override;

 protected:
  /// Predicted center of the next query given `history` (oldest first),
  /// or nullopt if not enough history yet.
  virtual std::optional<Vec3> PredictNextCenter(
      const std::vector<Vec3>& history) const = 0;

  /// Number of past centers to retain.
  virtual size_t HistoryLimit() const { return 8; }

 private:
  std::vector<Vec3> history_;
  Region last_region_;
  bool has_region_ = false;
  IncrementalPlan plan_;
  /// Reusable result-page buffer for the window drain (zero-copy result
  /// path: no per-call vector growth in steady state).
  std::vector<PageId> drain_pages_;
};

/// Straight Line Extrapolation [26]: next = last + (last - second_last).
class StraightLinePrefetcher : public TrajectoryPrefetcher {
 public:
  std::string_view name() const override { return "straight-line"; }

 protected:
  std::optional<Vec3> PredictNextCenter(
      const std::vector<Vec3>& history) const override;
};

/// Polynomial extrapolation [4, 5]: fits a degree-d polynomial per axis
/// through the last d+1 centers (pure interpolation, as in the paper's
/// motivation experiment) and evaluates it one step ahead.
class PolynomialPrefetcher : public TrajectoryPrefetcher {
 public:
  explicit PolynomialPrefetcher(int degree);

  std::string_view name() const override { return name_; }

 protected:
  std::optional<Vec3> PredictNextCenter(
      const std::vector<Vec3>& history) const override;
  size_t HistoryLimit() const override {
    return static_cast<size_t>(degree_) + 1;
  }

 private:
  int degree_;
  std::string name_;
};

/// EWMA [7]: exponentially weighted moving average of the movement
/// vectors; the last movement is weighted lambda, the one before
/// (1-lambda)*lambda, and so on. Predicts next = last + v_ewma.
class EwmaPrefetcher : public TrajectoryPrefetcher {
 public:
  explicit EwmaPrefetcher(double lambda);

  std::string_view name() const override { return name_; }

 protected:
  std::optional<Vec3> PredictNextCenter(
      const std::vector<Vec3>& history) const override;
  size_t HistoryLimit() const override { return 16; }

 private:
  double lambda_;
  std::string name_;
};

}  // namespace scout

