#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"
#include "common/status.h"
#include "storage/file_page_store.h"
#include "storage/page.h"

namespace scout {

/// One completed fetch handed back from the fetch worker to the
/// executor. Ownership travels through the completion ring as a raw
/// pointer; TryDrainOne rewraps it before the executor sees it.
struct AsyncFetchResult {
  PageId page = kInvalidPageId;
  Status status;
  Page data;  ///< Valid only when status.ok().
};

/// Decoupled asynchronous prefetch pipeline over a FilePageStore
/// (prefedge's prefetcher thread + per-thread pipes, C++-ified): ONE
/// dedicated fetch worker drains a bounded SPSC ring of predicted page
/// ids, performs the real reads, and hands each completed page back
/// through a second SPSC ring. The executor thread is the only producer
/// of requests and the only consumer of completions, so both rings run
/// under the strict SPSC contract (the `ring-single-writer` lint rule
/// pins all TryPush/TryPop call sites to this translation unit).
///
/// Division of labour, by design:
///   * The worker ONLY reads pages and publishes completions. It never
///     touches the PrefetchCache (whose attribution via SetActiveSession
///     and LRU state are single-writer, serial-apply structures) — all
///     cache mutations happen on the executor thread when it drains
///     completions. This is what makes async serving race-free against
///     the shared-cache serial apply loop (TSan-pinned).
///   * Backpressure, never loss: TryEnqueue refuses (rather than drops)
///     when the in-flight budget or the ring is full, and the executor
///     retries after draining. Every accepted prediction is eventually
///     fetched in FIFO order, so the pipeline's issue order is exactly
///     the plan order — the superset-ordering contract the differential
///     test checks.
///   * Demand promotion: a demand miss must not wait behind the
///     prediction backlog. FetchDemand bypasses the ring entirely and
///     issues the read immediately on the calling thread, concurrently
///     with the worker's in-flight prefetch (a real device serves queue
///     depth 2 happily) — the "jump the queue" lane.
class AsyncPrefetchPipeline {
 public:
  struct Options {
    /// Bound on pages accepted into the pipeline but not yet drained
    /// (queued + in flight + completed-undrained). Clamped to the ring
    /// capacity, which also guarantees the worker can always publish a
    /// completion without blocking.
    size_t max_in_flight = 64;
  };

  AsyncPrefetchPipeline(FilePageStore* store, const Options& options);
  AsyncPrefetchPipeline(const AsyncPrefetchPipeline&) = delete;
  AsyncPrefetchPipeline& operator=(const AsyncPrefetchPipeline&) = delete;
  ~AsyncPrefetchPipeline();

  /// Spawns the fetch worker (idempotent).
  void Start();
  /// Joins the fetch worker (idempotent). Undrained completions remain
  /// drainable afterwards.
  void Stop();

  /// Submits a predicted page to the fetch worker. Executor (producer)
  /// thread only. Returns false when the in-flight budget is exhausted —
  /// the caller drains completions and retries; predictions are never
  /// dropped.
  bool TryEnqueue(PageId page);

  /// Pops one completed fetch, if any. Executor (consumer) thread only.
  bool TryDrainOne(AsyncFetchResult* out);

  /// Demand promotion: reads `page` immediately on the calling thread,
  /// jumping the prediction backlog (see class comment). Retries are the
  /// caller's policy.
  AsyncFetchResult FetchDemand(PageId page);

  /// Pages accepted but not yet drained. Executor thread only (reads
  /// producer-side counters).
  size_t pending() const { return enqueued_ - drained_; }

  /// True once the worker has completed every accepted request (the
  /// completions may still be waiting to be drained). Executor thread
  /// only.
  bool WorkerIdle() const {
    return completed_.load(std::memory_order_acquire) == enqueued_;
  }

  /// Blocks (polling) until WorkerIdle(). Executor thread only.
  void WaitWorkerIdle() const;

  /// Page ids in the order the WORKER issued them (= FIFO plan order).
  /// Executor thread only, and only while the worker is idle — the
  /// acquire on the completion counter is what publishes the entries.
  const std::vector<PageId>& IssueLog() const { return issue_log_; }

  uint64_t enqueued() const { return enqueued_; }
  uint64_t demand_promotions() const { return demand_promotions_; }
  uint64_t failed_fetches() const {
    return failed_fetches_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kRingCapacity = 256;

  void WorkerLoop();

  FilePageStore* store_;  ///< Borrowed.
  Options options_;

  SpscRing<PageId, kRingCapacity> requests_;
  SpscRing<AsyncFetchResult*, kRingCapacity> completions_;

  std::thread worker_;
  std::atomic<bool> stop_{false};
  bool running_ = false;

  // Producer-side (executor thread) counters; plain because one thread
  // reads and writes them.
  uint64_t enqueued_ = 0;
  uint64_t drained_ = 0;
  uint64_t demand_promotions_ = 0;

  /// Requests the worker has fully processed (fetched + completion
  /// published). The release increment / acquire load pair also
  /// publishes issue_log_ entries to the executor.
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_fetches_{0};

  std::vector<PageId> issue_log_;  ///< Worker-only appends; see IssueLog().
};

}  // namespace scout
