#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/region.h"

namespace scout {

/// One extrapolation axis to prefetch along: starting at `origin`
/// (normally a structure exit location E), advancing in `direction`.
/// `start_offset` skips an initial stretch (the estimated gap distance),
/// and `weight` is the fraction of the per-step volume dedicated to this
/// axis (broad prefetching splits the budget across axes, §5.2.2).
struct PrefetchAxis {
  Vec3 origin;
  Vec3 direction;
  double start_offset = 0.0;
  double weight = 1.0;
};

/// Generates the incremental prefetch queries p1, p2, ... of paper §5.1 /
/// Figure 6: small regions first, close to the exit location, each
/// subsequent region bigger and shifted further along the extrapolated
/// axis. Multiple axes are served round-robin (broad prefetching,
/// Figure 7b); a single axis implements deep prefetching (Figure 7a).
class IncrementalPlan {
 public:
  IncrementalPlan() = default;

  /// Installs a new plan. `base` is the current query region (the
  /// prefetch regions reuse its shape and volume) and `max_steps` bounds
  /// the number of regions emitted per axis.
  void Reset(std::vector<PrefetchAxis> axes, const Region& base,
             uint32_t max_steps);

  /// Next prefetch region, or nullopt when the plan is exhausted.
  std::optional<Region> Next();

  bool Exhausted() const;
  size_t NumAxes() const { return axes_.size(); }

 private:
  struct AxisState {
    PrefetchAxis axis;
    uint32_t step = 0;
    double distance = 0.0;  // Advance along the axis so far.
  };

  std::vector<AxisState> states_;
  std::vector<PrefetchAxis> axes_;
  Region base_;
  double base_volume_ = 0.0;
  uint32_t max_steps_ = 0;
  size_t next_axis_ = 0;
};

}  // namespace scout

