#include "prefetch/scout_prefetcher.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/stopwatch.h"
#include "graph/kmeans.h"

namespace scout {

ScoutPrefetcher::ScoutPrefetcher(const ScoutConfig& config)
    : config_(config), session_seed_(config.rng_seed), rng_(config.rng_seed) {}

void ScoutPrefetcher::BindSession(uint32_t session_id) {
  if (session_id == 0) {
    // Session 0 keeps the configured stream: a one-session serving engine
    // is then bit-identical to the single-stream executor.
    session_seed_ = config_.rng_seed;
  } else {
    // SplitMix64 finalizer over (seed, session) so each session draws an
    // independent deterministic stream.
    uint64_t z = config_.rng_seed + 0x9e3779b97f4a7c15ull * session_id;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    session_seed_ = z ^ (z >> 31);
  }
  rng_.Seed(session_seed_);
}

void ScoutPrefetcher::BeginSequence() {
  predictions_.clear();
  pending_axes_.clear();
  plan_ = IncrementalPlan();
  has_last_region_ = false;
  has_prev_center_ = false;
  has_prev_region_ = false;
  has_movement_ = false;
  gap_estimate_ = 0.0;
  last_result_pages_ = 0;
  breakdown_ = ObserveBreakdown{};
  last_exits_.clear();
  rng_.Seed(session_seed_);
}

double ScoutPrefetcher::RegionExtent(const Region& region) {
  if (region.is_frustum()) {
    return region.frustum().far_distance() -
           region.frustum().near_distance();
  }
  return std::cbrt(std::max(region.Volume(), 0.0));
}

GraphBuildStats ScoutPrefetcher::BuildResultGraph(
    const QueryResultView& result, SpatialGraph* graph) const {
  if (config_.explicit_adjacency != nullptr) {
    // Mesh dataset: the graph is explicit — connect result objects that
    // the dataset lists as adjacent (paper §4.2, polygon-mesh case).
    GraphBuildStats stats;
    // scout-lint: allow(det-unordered-container): point lookups only; the
    // vertex/edge emit order follows result.objects, never this map.
    std::unordered_map<ObjectId, VertexId> by_object;
    by_object.reserve(result.objects.size() * 2);
    graph->ReserveVertices(result.objects.size());
    for (const GraphInput& in : result.objects) {
      GraphVertex v;
      v.object_id = in.object->id;
      v.page_id = in.page;
      v.line = in.object->geom.AsLine();
      by_object[in.object->id] = graph->AddVertex(v);
    }
    const AdjacencyMap& adj = *config_.explicit_adjacency;
    for (const GraphInput& in : result.objects) {
      auto it = adj.find(in.object->id);
      if (it == adj.end()) continue;
      const VertexId v = by_object[in.object->id];
      for (ObjectId nb : it->second) {
        ++stats.pair_comparisons;
        auto jt = by_object.find(nb);
        if (jt == by_object.end()) continue;
        graph->AddEdge(v, jt->second);
        ++stats.edges_created;
      }
      ++stats.objects_hashed;
    }
    graph->Finalize();
    return stats;
  }
  if (config_.use_brute_force_graph) {
    return BuildGraphBruteForce(result.objects, config_.brute_force_epsilon,
                                graph);
  }
  return BuildGraphGridHash(result.objects, result.region->Bounds(),
                            config_.grid_cells, graph);
}

void ScoutPrefetcher::PrepareObserve(const QueryResultView& result,
                                     ObservePrep* prep) const {
  Stopwatch wall;
  prep->graph = SpatialGraph();
  prep->build_stats = BuildResultGraph(result, &prep->graph);
  prep->wall_graph_build_us = wall.ElapsedMicros();
  prep->valid = true;
}

SimMicros ScoutPrefetcher::Observe(const QueryResultView& result) {
  return Observe(result, nullptr);
}

SimMicros ScoutPrefetcher::Observe(const QueryResultView& result,
                                   ObservePrep* prep) {
  Stopwatch wall;
  breakdown_ = ObserveBreakdown{};
  breakdown_.result_objects = result.objects.size();

  last_region_ = *result.region;
  has_last_region_ = true;
  last_result_pages_ = result.pages.size();
  const Vec3 center = result.region->Center();
  const double extent = RegionExtent(last_region_);

  if (has_prev_center_) {
    const Vec3 move = center - prev_center_;
    const double travel = move.Norm();
    if (travel > 1e-9) {
      movement_dir_ = move / travel;
      has_movement_ = true;
    }
    // Gap between query boundaries: centers are `extent + gap` apart for
    // adjacent-shape sequences; the same spacing is assumed next (§5.3).
    gap_estimate_ = std::max(0.0, travel - extent);
  } else {
    gap_estimate_ = 0.0;
  }

  // --- Graph construction (interleaved with retrieval in the paper;
  // charged against the prefetch window here). A valid prep carries the
  // graph a worker thread already built — bit-identical to building it
  // here, only the wall-clock diagnostic reflects the worker's time. ---
  SpatialGraph local_graph;
  const SpatialGraph* graph_ptr;
  GraphBuildStats build_stats;
  if (prep != nullptr && prep->valid) {
    graph_ptr = &prep->graph;
    build_stats = prep->build_stats;
    breakdown_.wall_graph_build_us = prep->wall_graph_build_us;
  } else {
    build_stats = BuildResultGraph(result, &local_graph);
    graph_ptr = &local_graph;
    breakdown_.wall_graph_build_us = wall.ElapsedMicros();
  }
  const SpatialGraph& graph = *graph_ptr;
  const SimMicros build_us = config_.costs.GraphBuildCost(build_stats);
  breakdown_.graph_build_us = build_us;
  breakdown_.graph_vertices = graph.NumVertices();
  breakdown_.graph_edges = graph.NumEdges();
  breakdown_.graph_memory_bytes = graph.MemoryBytes();

  Stopwatch predict_wall;

  uint32_t num_components = 0;
  const std::vector<uint32_t> component_of =
      LabelComponents(graph, &num_components);

  // --- Iterative candidate pruning (§4.3): structures entering this
  // query near a predicted entry location stay candidates. ---
  std::vector<VertexId> seeds;
  const double match_radius = extent * config_.match_radius_factor;
  if (!predictions_.empty()) {
    for (const PredictedEntry& entry : predictions_) {
      VerticesNearPoint(graph, entry.point, match_radius, &seeds);
    }
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  }
  if (seeds.empty() && has_prev_region_) {
    // Prediction matching failed — rebuild the candidate set from the
    // structures *entering* this query on the previous query's side
    // (the enter-set of §4.3), which is far tighter than "everything".
    EnteringVertices(graph, last_region_, prev_region_bounds_,
                     0.3 * extent, &seeds);
  }
  const bool reset = seeds.empty();
  breakdown_.was_reset = reset;
  if (reset) seeds.clear();

  // Candidate count = distinct components among the seeds (or all).
  if (reset) {
    breakdown_.num_candidates = num_components;
  } else {
    // scout-lint: allow(det-unordered-container): distinct-count only
    // (.size()); the set is never iterated.
    std::unordered_set<uint32_t> comps;
    for (VertexId v : seeds) comps.insert(component_of[v]);
    breakdown_.num_candidates = comps.size();
  }

  // --- Walk candidate structures to their exit locations (§4.4). ---
  std::vector<ExitPoint> exits;
  const TraversalStats traversal =
      FindExits(graph, component_of, last_region_, seeds, &exits);
  SimMicros predict_us =
      config_.costs.TraversalCost(traversal) +
      static_cast<SimMicros>(config_.costs.base_us);

  // Drop exits pointing back toward where we came from; if that empties
  // the set (e.g. a U-turning structure) keep the unfiltered exits.
  if (has_movement_ && !exits.empty()) {
    std::vector<ExitPoint> forward;
    for (const ExitPoint& e : exits) {
      if (e.direction.Dot(movement_dir_) >= 0.25) forward.push_back(e);
    }
    if (!forward.empty()) exits.swap(forward);
  }

  // Merge exits at (nearly) the same boundary location: a tortuous
  // structure weaving across the boundary produces several crossings of
  // the same physical exit, which must not each claim prefetch budget.
  if (exits.size() > 1) {
    const double merge_radius = 0.12 * extent;
    std::vector<ExitPoint> merged;
    std::vector<uint32_t> counts;
    for (const ExitPoint& e : exits) {
      bool absorbed = false;
      for (size_t m = 0; m < merged.size(); ++m) {
        if (merged[m].position.DistanceTo(e.position) <= merge_radius) {
          merged[m].position =
              (merged[m].position * counts[m] + e.position) /
              static_cast<double>(counts[m] + 1);
          merged[m].direction += e.direction;
          ++counts[m];
          absorbed = true;
          break;
        }
      }
      if (!absorbed) {
        merged.push_back(e);
        counts.push_back(1);
      }
    }
    for (ExitPoint& m : merged) m.direction = m.direction.Normalized();
    exits.swap(merged);
  }
  breakdown_.num_exits = exits.size();
  last_exits_ = exits;

  // --- Choose prefetch locations (§5.2). ---
  std::vector<const ExitPoint*> selected;
  if (!exits.empty()) {
    if (exits.size() > config_.max_prefetch_locations) {
      // Cluster exit locations and pick one exit per cluster (§5.2.2).
      std::vector<Vec3> points;
      points.reserve(exits.size());
      for (const ExitPoint& e : exits) points.push_back(e.position);
      const KMeansResult clusters =
          KMeans(points, config_.max_prefetch_locations, &rng_);
      predict_us +=
          config_.costs.KMeansCost(points.size(), clusters.iterations);
      std::vector<std::vector<size_t>> members(clusters.centers.size());
      for (size_t i = 0; i < exits.size(); ++i) {
        members[clusters.assignment[i]].push_back(i);
      }
      for (const auto& cluster : members) {
        if (cluster.empty()) continue;
        const size_t pick = cluster[rng_.NextBounded(cluster.size())];
        selected.push_back(&exits[pick]);
      }
    } else {
      for (const ExitPoint& e : exits) selected.push_back(&e);
    }
    if (config_.strategy == ScoutConfig::Strategy::kDeep &&
        selected.size() > 1) {
      const size_t pick = rng_.NextBounded(selected.size());
      const ExitPoint* chosen = selected[pick];
      selected.clear();
      selected.push_back(chosen);
    }
  }

  pending_axes_.clear();
  if (!selected.empty()) {
    const double weight = 1.0 / static_cast<double>(selected.size());
    for (const ExitPoint* e : selected) {
      PrefetchAxis axis;
      axis.origin = e->position;
      axis.direction = e->direction;
      axis.start_offset = gap_estimate_;
      axis.weight = weight;
      pending_axes_.push_back(axis);
    }
  } else if (has_movement_) {
    // Backup: no structure exits found (e.g. all objects fully inside the
    // region) — fall back to straight-line extrapolation of the centers.
    PrefetchAxis axis;
    axis.direction = movement_dir_;
    axis.origin = center + movement_dir_ * (0.5 * extent);
    axis.start_offset = gap_estimate_;
    axis.weight = 1.0;
    pending_axes_.push_back(axis);
  }

  // --- Predicted entry locations for the next pruning round: linear
  // extrapolation of every exit across the estimated gap. ---
  predictions_.clear();
  for (const ExitPoint& e : exits) {
    if (predictions_.size() >= config_.max_predictions) break;
    predictions_.push_back(
        PredictedEntry{e.position + e.direction * gap_estimate_,
                       e.direction});
  }

  prev_center_ = center;
  has_prev_center_ = true;
  prev_region_bounds_ = last_region_.Bounds();
  has_prev_region_ = true;

  breakdown_.prediction_us = predict_us;
  breakdown_.wall_prediction_us = predict_wall.ElapsedMicros();

  // Consume the prep: release its graph now that the last read is done,
  // so a multi-client engine's precomputed chains only hold memory for
  // the not-yet-applied steps, not the whole run.
  if (prep != nullptr && prep->valid) {
    prep->graph = SpatialGraph();
    prep->valid = false;
  }
  return build_us + predict_us;
}

void ScoutPrefetcher::RunPrefetch(PrefetchIo* io) {
  if (!has_last_region_) return;
  RefineAxes(io);
  plan_.Reset(pending_axes_, last_region_, config_.max_steps_per_axis);
  while (io->WindowOpen()) {
    const std::optional<Region> region = plan_.Next();
    if (!region.has_value()) return;
    drain_pages_.clear();
    io->QueryPages(*region, &drain_pages_);
    for (PageId page : drain_pages_) {
      if (!io->FetchPage(page)) return;
    }
  }
}

}  // namespace scout
