#include "prefetch/trajectory_prefetcher.h"

#include <cmath>
#include <cstdio>

namespace scout {

namespace {

/// Simulated cost of a position-only prediction: negligible compared to
/// graph-based prediction, but non-zero.
constexpr SimMicros kTrajectoryPredictCostUs = 2;

std::string FormatLambda(double lambda) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", lambda);
  return std::string(buf);
}

}  // namespace

void TrajectoryPrefetcher::BeginSequence() {
  history_.clear();
  has_region_ = false;
  plan_ = IncrementalPlan();
}

SimMicros TrajectoryPrefetcher::Observe(const QueryResultView& result) {
  last_region_ = *result.region;
  has_region_ = true;
  history_.push_back(result.region->Center());
  if (history_.size() > HistoryLimit()) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<long>(HistoryLimit()));
  }

  std::vector<PrefetchAxis> axes;
  const std::optional<Vec3> predicted = PredictNextCenter(history_);
  if (predicted.has_value()) {
    const Vec3 current = history_.back();
    Vec3 dir = (*predicted - current).Normalized();
    if (dir == Vec3()) dir = Vec3(1, 0, 0);
    // Anchor the axis so the first (smallest) prefetch region lands on
    // the predicted center: origin is half the predicted travel back from
    // the prediction.
    PrefetchAxis axis;
    axis.direction = dir;
    const double travel = (*predicted - current).Norm();
    axis.origin = current + dir * (travel * 0.5);
    axis.start_offset = 0.0;
    axis.weight = 1.0;
    axes.push_back(axis);
  }
  plan_.Reset(std::move(axes), last_region_, /*max_steps=*/12);
  return kTrajectoryPredictCostUs;
}

void TrajectoryPrefetcher::RunPrefetch(PrefetchIo* io) {
  if (!has_region_) return;
  while (io->WindowOpen()) {
    const std::optional<Region> region = plan_.Next();
    if (!region.has_value()) return;
    drain_pages_.clear();
    io->QueryPages(*region, &drain_pages_);
    for (PageId page : drain_pages_) {
      if (!io->FetchPage(page)) return;
    }
  }
}

std::optional<Vec3> StraightLinePrefetcher::PredictNextCenter(
    const std::vector<Vec3>& history) const {
  const size_t n = history.size();
  if (n < 2) return std::nullopt;
  return history[n - 1] + (history[n - 1] - history[n - 2]);
}

PolynomialPrefetcher::PolynomialPrefetcher(int degree)
    : degree_(degree), name_("polynomial-" + std::to_string(degree)) {}

std::optional<Vec3> PolynomialPrefetcher::PredictNextCenter(
    const std::vector<Vec3>& history) const {
  const size_t needed = static_cast<size_t>(degree_) + 1;
  if (history.size() < needed) {
    // Degrade gracefully to straight-line while warming up.
    if (history.size() >= 2) {
      const size_t n = history.size();
      return history[n - 1] + (history[n - 1] - history[n - 2]);
    }
    return std::nullopt;
  }
  // Interpolate through the last degree+1 points at t = 0..degree and
  // evaluate at t = degree+1 using Lagrange basis polynomials per axis.
  const size_t base = history.size() - needed;
  const double t_eval = static_cast<double>(degree_) + 1.0;
  Vec3 result;
  for (size_t i = 0; i < needed; ++i) {
    double basis = 1.0;
    for (size_t j = 0; j < needed; ++j) {
      if (i == j) continue;
      basis *= (t_eval - static_cast<double>(j)) /
               (static_cast<double>(i) - static_cast<double>(j));
    }
    result += history[base + i] * basis;
  }
  return result;
}

EwmaPrefetcher::EwmaPrefetcher(double lambda)
    : lambda_(lambda),
      name_("ewma-" + FormatLambda(lambda)) {}

std::optional<Vec3> EwmaPrefetcher::PredictNextCenter(
    const std::vector<Vec3>& history) const {
  const size_t n = history.size();
  if (n < 2) return std::nullopt;
  // Weighted sum of movement vectors: most recent gets lambda, the one
  // before (1-lambda)*lambda, etc. Normalize by the total weight so the
  // prediction is a proper average of movements.
  Vec3 weighted;
  double total_weight = 0.0;
  double weight = lambda_;
  for (size_t k = n - 1; k >= 1; --k) {
    const Vec3 move = history[k] - history[k - 1];
    weighted += move * weight;
    total_weight += weight;
    weight *= (1.0 - lambda_);
    if (weight < 1e-6) break;
  }
  if (total_weight <= 0.0) return std::nullopt;
  return history[n - 1] + weighted / total_weight;
}

}  // namespace scout
