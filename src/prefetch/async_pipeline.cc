#include "prefetch/async_pipeline.h"

#include <algorithm>
#include <chrono>

namespace scout {
namespace {

/// Idle-poll granularity of the worker and of WaitWorkerIdle. Far below
/// the emulated device latency, so polling never dominates; coarse
/// enough that an idle pipeline costs ~nothing.
constexpr std::chrono::microseconds kIdlePoll{20};

}  // namespace

AsyncPrefetchPipeline::AsyncPrefetchPipeline(FilePageStore* store,
                                             const Options& options)
    : store_(store), options_(options) {
  // The in-flight bound may not exceed the ring capacity: it is what
  // guarantees the completion ring always has room, so the worker's
  // publish never blocks (and the executor never deadlocks against it).
  options_.max_in_flight =
      std::max<size_t>(1, std::min(options_.max_in_flight, kRingCapacity));
}

AsyncPrefetchPipeline::~AsyncPrefetchPipeline() {
  Stop();
  // Free any completions the executor never drained.
  AsyncFetchResult* r = nullptr;
  while (completions_.TryPop(&r)) delete r;
}

void AsyncPrefetchPipeline::Start() {
  if (running_) return;
  stop_.store(false, std::memory_order_release);
  worker_ = std::thread([this] { WorkerLoop(); });
  running_ = true;
}

void AsyncPrefetchPipeline::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  worker_.join();
  running_ = false;
}

bool AsyncPrefetchPipeline::TryEnqueue(PageId page) {
  if (pending() >= options_.max_in_flight) return false;
  if (!requests_.TryPush(page)) return false;
  ++enqueued_;
  return true;
}

bool AsyncPrefetchPipeline::TryDrainOne(AsyncFetchResult* out) {
  AsyncFetchResult* r = nullptr;
  if (!completions_.TryPop(&r)) return false;
  *out = std::move(*r);
  delete r;
  ++drained_;
  return true;
}

AsyncFetchResult AsyncPrefetchPipeline::FetchDemand(PageId page) {
  // Promotion lane: issued right here on the caller's thread, ahead of
  // everything still queued in requests_. The store's ReadPage is
  // thread-safe, so this read proceeds concurrently with the worker's
  // current prefetch — demand never waits behind the backlog.
  ++demand_promotions_;
  AsyncFetchResult r;
  r.page = page;
  r.status = store_->ReadPage(page, &r.data);
  if (!r.status.ok()) failed_fetches_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

void AsyncPrefetchPipeline::WaitWorkerIdle() const {
  while (!WorkerIdle()) std::this_thread::sleep_for(kIdlePoll);
}

void AsyncPrefetchPipeline::WorkerLoop() {
  PageId page = kInvalidPageId;
  while (true) {
    if (!requests_.TryPop(&page)) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(kIdlePoll);
      continue;
    }
    auto r = std::make_unique<AsyncFetchResult>();
    r->page = page;
    issue_log_.push_back(page);
    r->status = store_->ReadPage(page, &r->data);
    if (!r->status.ok()) {
      failed_fetches_.fetch_add(1, std::memory_order_relaxed);
    }
    // Never full: outstanding completions are bounded by the in-flight
    // budget, which is clamped to the ring capacity. The defensive spin
    // keeps even a violated invariant from losing a page.
    while (!completions_.TryPush(r.get())) {
      std::this_thread::sleep_for(kIdlePoll);
    }
    r.release();
    completed_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace scout
