#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/sim_clock.h"
#include "geom/region.h"
#include "graph/graph_builder.h"
#include "storage/page.h"

namespace scout {

/// What a prefetcher sees of a finished query: the region, the result
/// objects (with the page each lives on) and the result pages in
/// retrieval order. Note there is deliberately no access to ground-truth
/// structure ids — prefetchers must infer structure from geometry.
struct QueryResultView {
  const Region* region = nullptr;
  std::span<const GraphInput> objects;
  std::span<const PageId> pages;
};

/// I/O service handed to the prefetcher during the prefetch window. All
/// reads charge simulated disk time against the window budget; FetchPage
/// returns false exactly when the window closes (the user issued the next
/// query), implementing the paper's incremental prefetching contract
/// (§5.1: prefetching "stops once the user issues the next range query").
class PrefetchIo {
 public:
  virtual ~PrefetchIo() = default;

  /// Ids of pages whose bounds intersect `region` (via the index; no I/O
  /// is charged for directory lookups, which are memory-resident).
  virtual void QueryPages(const Region& region,
                          std::vector<PageId>* out) = 0;

  /// True if the page is already in the prefetch cache.
  virtual bool IsCached(PageId page) const = 0;

  /// Reads the page into the prefetch cache, charging its disk cost to
  /// the window. Returns false iff the window budget is exhausted (the
  /// page is then NOT fetched). Already-cached pages cost nothing.
  virtual bool FetchPage(PageId page) = 0;

  /// True while window budget remains.
  virtual bool WindowOpen() const = 0;
};

/// Precomputed pure portion of one Observe() call: the result graph a
/// content-aware prefetcher would otherwise build inside Observe. A
/// multi-client engine computes these on worker threads (one chain per
/// session, a session's steps in order) and hands each back to the
/// matching Observe in its serial apply loop, so the dominant prediction
/// cost leaves the single-writer path without changing any simulated
/// outcome.
/// Observe(result, prep) CONSUMES a valid prep (the graph is released
/// once its last read is done), so an engine's precomputed chains hold
/// memory only for the not-yet-applied steps.
struct ObservePrep {
  SpatialGraph graph;           ///< Finalized result graph.
  GraphBuildStats build_stats;  ///< Work counters of the build.
  int64_t wall_graph_build_us = 0;  ///< Worker-side wall build time.
  bool valid = false;           ///< False: Observe builds the graph itself.
};

/// Diagnostics of the last Observe() call, filled in by content-aware
/// prefetchers for the paper's cost experiments (Figures 14-16).
struct ObserveBreakdown {
  SimMicros graph_build_us = 0;   ///< Simulated graph-construction time.
  SimMicros prediction_us = 0;    ///< Simulated traversal/prediction time.
  int64_t wall_graph_build_us = 0;  ///< Measured wall-clock build time.
  int64_t wall_prediction_us = 0;   ///< Measured wall-clock predict time.
  size_t result_objects = 0;
  size_t graph_vertices = 0;
  size_t graph_edges = 0;
  size_t graph_memory_bytes = 0;
  size_t num_candidates = 0;  ///< Candidate structures after pruning.
  size_t num_exits = 0;       ///< Exit locations found.
  bool was_reset = 0;         ///< Candidate set was reset this query.
};

/// Interface of all prefetching policies. Lifecycle per query sequence:
///   BeginSequence();
///   for each query q:  (engine executes q, then)
///     cost = Observe(result of q);          // prediction computation
///     RunPrefetch(io);                      // until window closes
///
/// Observe returns the simulated CPU cost of prediction, which the engine
/// charges against the prefetch window (Figure 2's "Prediction
/// Computation" slice).
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  virtual std::string_view name() const = 0;

  /// Binds the prefetcher to a serving session. Multi-client engines
  /// call this once per session so per-session state (candidate graphs,
  /// RNG streams) is owned by exactly one stream and decorrelated across
  /// sessions deterministically; BeginSequence/Reset then only ever
  /// rewind *this* session's state. Session 0 keeps the configured
  /// stream, so single-session serving is bit-compatible with the
  /// single-stream engine. Default: no-op (stateless baselines).
  virtual void BindSession(uint32_t session_id) { (void)session_id; }

  /// Resets all sequence state (new sequence, cold cache). Session-scoped:
  /// after BindSession, this rewinds only the bound session's stream.
  virtual void BeginSequence() = 0;

  /// Digests the result of the query that just executed.
  virtual SimMicros Observe(const QueryResultView& result) = 0;

  /// True when PrepareObserve computes the same graph Observe would —
  /// i.e. this prefetcher's result-graph construction is a pure function
  /// of (configuration, result) and may run ahead of the session's
  /// Observe chain on a worker thread. Policies whose construction reads
  /// sequence state (SCOUT-OPT's sparse build uses the previous query's
  /// predictions) must answer false and keep building inside Observe.
  virtual bool SupportsPreparedObserve() const { return false; }

  /// Precomputes the pure part of Observe(result) into `prep`. Must be
  /// called only when SupportsPreparedObserve() is true; thread-safe
  /// against other PrepareObserve calls on other prefetcher instances
  /// (it reads only immutable configuration). Default: leaves `prep`
  /// invalid (baselines have no pure part).
  virtual void PrepareObserve(const QueryResultView& result,
                              ObservePrep* prep) const {
    (void)result;
    prep->valid = false;
  }

  /// Observe with the pure part precomputed. `prep` may be null or
  /// invalid, in which case this is exactly Observe(result). Simulated
  /// outcomes are identical either way — only wall-clock diagnostics
  /// move from the caller's thread to the worker that ran
  /// PrepareObserve.
  virtual SimMicros Observe(const QueryResultView& result,
                            ObservePrep* prep) {
    (void)prep;
    return Observe(result);
  }

  /// Issues prefetch I/O until the plan is exhausted or the window
  /// closes.
  virtual void RunPrefetch(PrefetchIo* io) = 0;

  /// Diagnostics of the last Observe (zeros for baselines).
  virtual const ObserveBreakdown& last_observe() const {
    static const ObserveBreakdown kEmpty{};
    return kEmpty;
  }
};

}  // namespace scout

