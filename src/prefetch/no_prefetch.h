#pragma once

#include "prefetch/prefetcher.h"

namespace scout {

/// The do-nothing policy: every query pays full residual I/O. This is the
/// paper's speedup baseline ("compared to not using prefetching at all",
/// Figure 11b).
class NoPrefetcher : public Prefetcher {
 public:
  std::string_view name() const override { return "none"; }
  void BeginSequence() override {}
  SimMicros Observe(const QueryResultView& result) override {
    (void)result;
    return 0;
  }
  void RunPrefetch(PrefetchIo* io) override { (void)io; }
};

}  // namespace scout

