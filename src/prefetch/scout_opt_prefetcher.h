#pragma once

#include "index/spatial_index.h"
#include "prefetch/scout_prefetcher.h"

namespace scout {

/// Extra knobs of SCOUT-OPT (paper §6).
struct ScoutOptConfig {
  /// Gap-traversal I/O budget as a fraction of the last result's page
  /// count ("a fixed I/O budget of 10% of the pages used in the recent
  /// query", §7.4.6).
  double gap_io_budget_fraction = 0.10;

  /// Floor on the gap budget in pages. At laptop-scale datasets a query
  /// touches only a handful of pages, where a strict 10% would round the
  /// budget to nothing; the paper's queries touch thousands.
  int64_t min_gap_budget_pages = 2;

  /// Gaps smaller than this fraction of the query extent are bridged by
  /// plain linear extrapolation (no traversal I/O).
  double gap_threshold_factor = 0.05;

  /// Corridor half-width (fraction of query extent) within which pages /
  /// objects count as following the candidate structure through the gap.
  double corridor_factor = 0.75;
};

/// SCOUT-OPT: SCOUT coupled with a neighborhood-aware index (FLAT/DLS).
/// It adds two optimizations:
///  - Sparse graph construction (§6.2): only the result pages reachable
///    from the previous query's exit locations through page-neighborhood
///    links contribute to the graph, cutting build cost and memory.
///  - Gap traversal (§6.3): for sequences with gaps, it crawls the pages
///    between the current query and the predicted next one along the
///    candidate structure, trading a bounded amount of extra I/O for a
///    much better prediction than linear extrapolation.
///
/// In the absence of gaps SCOUT-OPT predicts like SCOUT (paper footnote
/// 2); only its construction cost differs.
class ScoutOptPrefetcher : public ScoutPrefetcher {
 public:
  /// `index` must outlive the prefetcher and should support neighborhood
  /// information; without it, SCOUT-OPT silently degrades to SCOUT.
  ScoutOptPrefetcher(const ScoutConfig& config, const SpatialIndex* index,
                     const ScoutOptConfig& opt = {});

  std::string_view name() const override { return "scout-opt"; }

  /// Sparse construction reads the previous Observe's predictions, so
  /// the graph build is only pure (precomputable ahead of the session's
  /// Observe chain) when the sparse path cannot engage: no neighborhood
  /// links to crawl, or an explicit mesh adjacency (whose build reads
  /// configuration only). Mirrors BuildResultGraph's fallback condition.
  bool SupportsPreparedObserve() const override {
    return index_ == nullptr || !index_->SupportsNeighborhood() ||
           config_.explicit_adjacency != nullptr;
  }

  /// Pages fetched by gap traversal over the sequence so far.
  uint64_t gap_pages_fetched() const { return gap_pages_fetched_; }
  void BeginSequence() override;

 protected:
  GraphBuildStats BuildResultGraph(const QueryResultView& result,
                                   SpatialGraph* graph) const override;
  void RefineAxes(PrefetchIo* io) override;

 private:
  const SpatialIndex* index_;
  ScoutOptConfig opt_;
  uint64_t gap_pages_fetched_ = 0;
};

}  // namespace scout

