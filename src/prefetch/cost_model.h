#pragma once

#include "common/sim_clock.h"
#include "graph/graph_builder.h"
#include "graph/traversal.h"

namespace scout {

/// Converts algorithmic work counters into simulated CPU time. Keeping
/// prediction cost on the simulated clock (instead of wall-clock) makes
/// experiments deterministic; the unit costs below are calibrated so that
/// graph building is ~15% and prediction <= ~6% of query response time at
/// the paper's default density (Figure 14).
struct CostModel {
  double hash_object_us = 5.0;      ///< Per object mapped to grid cells.
  double cell_insert_us = 0.6;      ///< Per (object, cell) insertion.
  double edge_create_us = 0.8;      ///< Per created edge (pre-dedup).
  double visit_vertex_us = 1.0;     ///< Per vertex visited in traversal.
  double traverse_edge_us = 0.4;    ///< Per edge relaxed in traversal.
  double kmeans_point_iter_us = 0.1;  ///< Per point per Lloyd iteration.
  double base_us = 5.0;             ///< Fixed bookkeeping per query.

  SimMicros GraphBuildCost(const GraphBuildStats& s) const {
    const double us = static_cast<double>(s.objects_hashed) * hash_object_us +
                      static_cast<double>(s.cell_inserts) * cell_insert_us +
                      static_cast<double>(s.edges_created) * edge_create_us;
    return static_cast<SimMicros>(us);
  }

  SimMicros TraversalCost(const TraversalStats& s) const {
    const double us =
        static_cast<double>(s.vertices_visited) * visit_vertex_us +
        static_cast<double>(s.edges_traversed) * traverse_edge_us;
    return static_cast<SimMicros>(us);
  }

  SimMicros KMeansCost(size_t points, uint32_t iterations) const {
    return static_cast<SimMicros>(static_cast<double>(points) * iterations *
                                  kmeans_point_iter_us);
  }
};

/// Priced admission control for prefetch inserts into a full shared
/// cache (cache QoS). Inserting one more page evicts a victim, so the
/// insert is only worth paying for when its expected I/O saving covers
/// the expected loss of the eviction — both priced in simulated disk
/// time with the same unit the CostModel's disk uses for a random read.
///
/// The expected value of one cached page of session s is the random-read
/// cost weighted by s's prefetch efficiency so far (own-hits per
/// insert): a session whose predictions keep hitting holds valuable
/// pages; one that sprays pages nobody reads holds cheap ones. Sessions
/// with fewer than `warmup_inserts` inserts are admitted optimistically
/// (no efficiency signal yet). The decision only prices CROSS-session
/// evictions — the engine admits self- and unattributed-victim inserts
/// unconditionally, as they cannot harm a peer.
struct PrefetchAdmission {
  /// Inserts below which a session is admitted without a price check.
  uint64_t warmup_inserts = 64;
  /// Admit while (inserter value) >= ratio * (victim value). Above 1.0
  /// the inserter must be strictly more efficient than the victim.
  double victim_value_ratio = 1.0;

  /// Expected simulated-I/O value of one cached page for a session with
  /// the given insert/own-hit history (optimistic before any inserts).
  double ExpectedPageValueUs(uint64_t inserts, uint64_t hits_own,
                             SimMicros random_read_us) const {
    if (inserts == 0) return static_cast<double>(random_read_us);
    return static_cast<double>(random_read_us) *
           static_cast<double>(hits_own) / static_cast<double>(inserts);
  }

  /// True when the inserter's expected gain justifies evicting the
  /// victim's page.
  bool Admit(uint64_t inserter_inserts, uint64_t inserter_hits_own,
             uint64_t victim_inserts, uint64_t victim_hits_own,
             SimMicros random_read_us) const {
    if (inserter_inserts < warmup_inserts) return true;
    const double gain = ExpectedPageValueUs(inserter_inserts,
                                            inserter_hits_own,
                                            random_read_us);
    const double loss = ExpectedPageValueUs(victim_inserts, victim_hits_own,
                                            random_read_us);
    return gain >= victim_value_ratio * loss;
  }
};

}  // namespace scout

