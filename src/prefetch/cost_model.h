#pragma once

#include "common/sim_clock.h"
#include "graph/graph_builder.h"
#include "graph/traversal.h"

namespace scout {

/// Converts algorithmic work counters into simulated CPU time. Keeping
/// prediction cost on the simulated clock (instead of wall-clock) makes
/// experiments deterministic; the unit costs below are calibrated so that
/// graph building is ~15% and prediction <= ~6% of query response time at
/// the paper's default density (Figure 14).
struct CostModel {
  double hash_object_us = 5.0;      ///< Per object mapped to grid cells.
  double cell_insert_us = 0.6;      ///< Per (object, cell) insertion.
  double edge_create_us = 0.8;      ///< Per created edge (pre-dedup).
  double visit_vertex_us = 1.0;     ///< Per vertex visited in traversal.
  double traverse_edge_us = 0.4;    ///< Per edge relaxed in traversal.
  double kmeans_point_iter_us = 0.1;  ///< Per point per Lloyd iteration.
  double base_us = 5.0;             ///< Fixed bookkeeping per query.

  SimMicros GraphBuildCost(const GraphBuildStats& s) const {
    const double us = static_cast<double>(s.objects_hashed) * hash_object_us +
                      static_cast<double>(s.cell_inserts) * cell_insert_us +
                      static_cast<double>(s.edges_created) * edge_create_us;
    return static_cast<SimMicros>(us);
  }

  SimMicros TraversalCost(const TraversalStats& s) const {
    const double us =
        static_cast<double>(s.vertices_visited) * visit_vertex_us +
        static_cast<double>(s.edges_traversed) * traverse_edge_us;
    return static_cast<SimMicros>(us);
  }

  SimMicros KMeansCost(size_t points, uint32_t iterations) const {
    return static_cast<SimMicros>(static_cast<double>(points) * iterations *
                                  kmeans_point_iter_us);
  }
};

}  // namespace scout

