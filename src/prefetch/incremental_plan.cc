#include "prefetch/incremental_plan.h"

#include <algorithm>
#include <cmath>

namespace scout {

void IncrementalPlan::Reset(std::vector<PrefetchAxis> axes,
                            const Region& base, uint32_t max_steps) {
  axes_ = std::move(axes);
  base_ = base;
  base_volume_ = base.Volume();
  max_steps_ = max_steps;
  next_axis_ = 0;
  states_.clear();
  states_.reserve(axes_.size());
  for (const PrefetchAxis& axis : axes_) {
    AxisState state;
    state.axis = axis;
    state.distance = axis.start_offset;
    states_.push_back(state);
  }
}

bool IncrementalPlan::Exhausted() const {
  for (const AxisState& s : states_) {
    if (s.step < max_steps_) return false;
  }
  return true;
}

std::optional<Region> IncrementalPlan::Next() {
  if (states_.empty() || base_volume_ <= 0.0) return std::nullopt;
  // Round-robin over axes with steps remaining.
  for (size_t tried = 0; tried < states_.size(); ++tried) {
    AxisState& s = states_[next_axis_];
    next_axis_ = (next_axis_ + 1) % states_.size();
    if (s.step >= max_steps_) continue;

    // Volume schedule: start at 40% of the (weighted) query volume and
    // grow to 120%, so early prefetches stay near the exit location and
    // later ones cover prediction slack (paper §5.1).
    const double growth = std::min(0.4 + 0.2 * s.step, 1.2);
    const double volume = base_volume_ * s.axis.weight * growth;
    const double side = std::cbrt(volume);

    // Center the region so that it starts at the current axis distance,
    // then advance by 70% of its side (adjacent regions overlap slightly,
    // already-cached pages cost nothing to re-request).
    const Vec3 center =
        s.axis.origin + s.axis.direction * (s.distance + 0.5 * side);
    s.distance += 0.7 * side;
    ++s.step;

    Region region = base_.is_frustum()
                        ? Region::FrustumAt(center, s.axis.direction, volume)
                        : Region::CubeAt(center, volume);
    return region;
  }
  return std::nullopt;
}

}  // namespace scout
