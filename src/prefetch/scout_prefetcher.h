#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "graph/spatial_graph.h"
#include "graph/traversal.h"
#include "prefetch/cost_model.h"
#include "prefetch/incremental_plan.h"
#include "prefetch/prefetcher.h"

namespace scout {

/// Configuration of the SCOUT prefetcher.
struct ScoutConfig {
  /// Target number of grid cells for the per-query graph (the resolution
  /// knob of Figure 13e; default matches the paper's finest setting).
  int64_t grid_cells = 32768;

  /// Candidate matching radius as a fraction of the query extent: a
  /// structure "enters" the new query if it passes within this distance
  /// of a predicted entry location (iterative candidate pruning, §4.3).
  /// Must stay on the order of the extrapolation slop — making it large
  /// matches unrelated structures and defeats pruning.
  double match_radius_factor = 0.18;

  /// Upper bound on predicted entry locations carried to the next query
  /// (guards against degenerate exit explosions in pathological graphs).
  size_t max_predictions = 64;

  /// Multiple-candidate strategy (§5.2): broad splits the prefetch budget
  /// across all predicted locations; deep gambles everything on one
  /// randomly chosen candidate.
  enum class Strategy { kBroad, kDeep };
  Strategy strategy = Strategy::kBroad;

  /// Cap `d` on the number of prefetch locations; when more candidate
  /// structures exit the query, their exits are clustered with k-means
  /// and one exit per cluster is used (§5.2.2).
  uint32_t max_prefetch_locations = 6;

  /// Incremental prefetch regions emitted per axis before giving up.
  uint32_t max_steps_per_axis = 12;

  /// Seed for the deep-strategy random pick and k-means.
  uint64_t rng_seed = 42;

  /// Optional explicit mesh adjacency (lung airway case). Not owned.
  const AdjacencyMap* explicit_adjacency = nullptr;

  /// Ablation: use the O(n^2) brute-force graph instead of grid hashing.
  bool use_brute_force_graph = false;
  double brute_force_epsilon = 1.5;

  CostModel costs;
};

/// SCOUT (paper §4-§5): a structure-aware prefetcher. Per query it
/// reduces the result's spatial objects to an approximate graph (grid
/// hashing), prunes the candidate set of structures the user may be
/// following by matching structures that enter this query against the
/// previous query's predicted exits, walks the candidate structures to
/// their exit locations, and prefetches incrementally along the linearly
/// extrapolated exits.
class ScoutPrefetcher : public Prefetcher {
 public:
  explicit ScoutPrefetcher(const ScoutConfig& config);

  std::string_view name() const override { return "scout"; }
  void BindSession(uint32_t session_id) override;
  void BeginSequence() override;
  SimMicros Observe(const QueryResultView& result) override;
  /// SCOUT's grid-hash construction is a pure function of (config,
  /// result), so the graph may be prebuilt on a worker thread.
  bool SupportsPreparedObserve() const override { return true; }
  void PrepareObserve(const QueryResultView& result,
                      ObservePrep* prep) const override;
  SimMicros Observe(const QueryResultView& result,
                    ObservePrep* prep) override;
  void RunPrefetch(PrefetchIo* io) override;
  const ObserveBreakdown& last_observe() const override {
    return breakdown_;
  }

  /// Exit locations found by the last Observe (for tests/examples).
  const std::vector<ExitPoint>& last_exits() const { return last_exits_; }

 protected:
  /// Where the guiding structure is predicted to enter the next query.
  struct PredictedEntry {
    Vec3 point;
    Vec3 direction;
  };

  /// Builds the result graph. Overridden by SCOUT-OPT with sparse
  /// construction (§6.2). Const: reads configuration (and, in SCOUT-OPT,
  /// the prediction state of the previous Observe) without mutating —
  /// which is what lets PrepareObserve run it on a worker thread for
  /// prefetchers whose build is pure (see SupportsPreparedObserve).
  virtual GraphBuildStats BuildResultGraph(const QueryResultView& result,
                                           SpatialGraph* graph) const;

  /// Hook run at the start of the prefetch window, before the incremental
  /// plan is drained. SCOUT-OPT overrides this with gap traversal (§6.3),
  /// which may fetch pages and refine `pending_axes_`.
  virtual void RefineAxes(PrefetchIo* io) { (void)io; }

  /// Characteristic linear extent of a region (cube side / frustum
  /// depth), used for gap estimation and matching radii.
  static double RegionExtent(const Region& region);

  ScoutConfig config_;
  /// Seed BeginSequence rewinds rng_ to. Defaults to config_.rng_seed;
  /// BindSession replaces it with a deterministic per-session mix so
  /// concurrent sessions draw decorrelated streams (session 0 keeps the
  /// config seed for single-stream bit-compatibility).
  uint64_t session_seed_;
  Rng rng_;

  // Sequence state.
  std::vector<PredictedEntry> predictions_;
  std::vector<PrefetchAxis> pending_axes_;
  IncrementalPlan plan_;
  Region last_region_;
  bool has_last_region_ = false;
  Vec3 prev_center_;
  bool has_prev_center_ = false;
  Aabb prev_region_bounds_;
  bool has_prev_region_ = false;
  Vec3 movement_dir_;
  bool has_movement_ = false;
  double gap_estimate_ = 0.0;
  size_t last_result_pages_ = 0;

  ObserveBreakdown breakdown_;
  std::vector<ExitPoint> last_exits_;
  /// Reusable result-page buffer for the window drain (the zero-copy
  /// result path: QueryPages fills a caller-provided buffer, so steady
  /// state pays no per-call vector growth).
  std::vector<PageId> drain_pages_;
};

}  // namespace scout

