#pragma once

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "prefetch/prefetcher.h"

namespace scout {

/// Configuration shared by the static (position-heuristic) prefetchers.
struct StaticPrefetchConfig {
  /// Bounds of the whole dataset (the static grid is laid over these).
  Aabb dataset_bounds;
  /// Grid resolution in bits per dimension: 2^bits cells per axis.
  int grid_bits = 5;
  /// How many cells to prefetch around the current one per window.
  uint32_t max_cells = 16;
};

/// Hilbert-Prefetch [22] (paper §2.1): lays a grid over the dataset,
/// assigns each cell its Hilbert value and prefetches the cells whose
/// Hilbert values neighbor the current query's cell (value ±1, ±2, ...).
class HilbertPrefetcher : public Prefetcher {
 public:
  explicit HilbertPrefetcher(const StaticPrefetchConfig& config)
      : config_(config) {}

  std::string_view name() const override { return "hilbert"; }
  void BeginSequence() override;
  SimMicros Observe(const QueryResultView& result) override;
  void RunPrefetch(PrefetchIo* io) override;

 private:
  StaticPrefetchConfig config_;
  std::vector<Aabb> pending_cells_;
  /// Reusable result-page buffer for the window drain (zero-copy result
  /// path: no per-call vector growth in steady state).
  std::vector<PageId> drain_pages_;
};

/// Layered [31] (paper §2.1): segments space into a grid and prefetches
/// all cells surrounding the current query's cell, nearest first.
class LayeredPrefetcher : public Prefetcher {
 public:
  explicit LayeredPrefetcher(const StaticPrefetchConfig& config)
      : config_(config) {}

  std::string_view name() const override { return "layered"; }
  void BeginSequence() override;
  SimMicros Observe(const QueryResultView& result) override;
  void RunPrefetch(PrefetchIo* io) override;

 private:
  StaticPrefetchConfig config_;
  std::vector<Aabb> pending_cells_;
  /// Reusable result-page buffer for the window drain (zero-copy result
  /// path: no per-call vector growth in steady state).
  std::vector<PageId> drain_pages_;
};

}  // namespace scout

