#include "prefetch/scout_opt_prefetcher.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace scout {

ScoutOptPrefetcher::ScoutOptPrefetcher(const ScoutConfig& config,
                                       const SpatialIndex* index,
                                       const ScoutOptConfig& opt)
    : ScoutPrefetcher(config), index_(index), opt_(opt) {}

void ScoutOptPrefetcher::BeginSequence() {
  ScoutPrefetcher::BeginSequence();
  gap_pages_fetched_ = 0;
}

GraphBuildStats ScoutOptPrefetcher::BuildResultGraph(
    const QueryResultView& result, SpatialGraph* graph) const {
  if (predictions_.empty() || index_ == nullptr ||
      !index_->SupportsNeighborhood() ||
      config_.explicit_adjacency != nullptr) {
    return ScoutPrefetcher::BuildResultGraph(result, graph);
  }

  // Sparse construction (§6.2): start from the result pages nearest to
  // the predicted entry locations and crawl page-neighborhood links
  // within the result set. Only objects on reached pages enter the graph
  // — the pages irrelevant for prediction are skipped entirely.
  // scout-lint: allow(det-unordered-container): membership test only
  // (result_pages.contains in the crawl); never iterated.
  std::unordered_set<PageId> result_pages(result.pages.begin(),
                                          result.pages.end());
  const PageStore& store = index_->store();

  // scout-lint: allow(det-unordered-container): visited-set for the BFS;
  // the frontier queue fixes the traversal order, reached is lookups only.
  std::unordered_set<PageId> reached;
  std::queue<PageId> frontier;
  for (const PredictedEntry& entry : predictions_) {
    PageId best = kInvalidPageId;
    double best_d = std::numeric_limits<double>::max();
    for (PageId p : result.pages) {
      const double d = store.page(p).bounds.DistanceSquaredTo(entry.point);
      if (d < best_d) {
        best_d = d;
        best = p;
      }
    }
    if (best != kInvalidPageId && reached.insert(best).second) {
      frontier.push(best);
    }
  }
  if (reached.empty()) {
    return ScoutPrefetcher::BuildResultGraph(result, graph);
  }
  while (!frontier.empty()) {
    const PageId p = frontier.front();
    frontier.pop();
    for (PageId q : index_->PageNeighbors(p)) {
      if (result_pages.contains(q) && reached.insert(q).second) {
        frontier.push(q);
      }
    }
  }

  std::vector<GraphInput> sparse_inputs;
  sparse_inputs.reserve(result.objects.size());
  for (const GraphInput& in : result.objects) {
    if (reached.contains(in.page)) sparse_inputs.push_back(in);
  }
  if (sparse_inputs.empty()) {
    return ScoutPrefetcher::BuildResultGraph(result, graph);
  }
  return BuildGraphGridHash(sparse_inputs, result.region->Bounds(),
                            config_.grid_cells, graph);
}

void ScoutOptPrefetcher::RefineAxes(PrefetchIo* io) {
  if (index_ == nullptr || !index_->SupportsNeighborhood()) return;
  if (pending_axes_.empty() || !has_last_region_) return;
  const double extent = RegionExtent(last_region_);
  if (gap_estimate_ <= opt_.gap_threshold_factor * extent) return;

  // Gap traversal (§6.3): follow the candidate structure through the gap
  // by crawling page-neighborhood links, under an I/O budget of a
  // fraction of the last result's pages.
  int64_t budget = std::max<int64_t>(
      opt_.min_gap_budget_pages,
      static_cast<int64_t>(opt_.gap_io_budget_fraction *
                           static_cast<double>(last_result_pages_)));
  const double corridor = opt_.corridor_factor * extent;

  // How close an object endpoint must be to the tracked position to count
  // as the continuation of the structure (consecutive fiber segments
  // share endpoints, so this can be tight).
  const double continuity = std::max(0.08 * extent, 1.0);

  for (PrefetchAxis& axis : pending_axes_) {
    if (budget <= 0 || !io->WindowOpen()) break;

    Vec3 pos = axis.origin;
    Vec3 dir = axis.direction;
    double progress = 0.0;
    std::vector<const SpatialObject*> pool;
    // scout-lint: allow(det-unordered-container): insert/lookup visited-set
    // for the axis crawl loop; never iterated.
    std::unordered_set<PageId> visited;
    PageId current =
        index_->NearestPage(pos + dir * (0.05 * extent));

    while (budget > 0 && current != kInvalidPageId &&
           visited.insert(current).second) {
      // Only pages that actually cost I/O count against the gap budget.
      const bool was_cached = io->IsCached(current);
      if (!io->FetchPage(current)) return;  // Window closed mid-crawl.
      if (!was_cached) {
        --budget;
        ++gap_pages_fetched_;
      }
      for (const SpatialObject& obj :
           index_->store().page(current).objects) {
        pool.push_back(&obj);
      }

      // Walk the structure chain through the pooled objects: repeatedly
      // hop to the object whose endpoint touches the tracked position
      // and extends it forward.
      bool advanced = true;
      while (advanced) {
        advanced = false;
        for (const SpatialObject* obj : pool) {
          const Segment& line = obj->geom.AsLine();
          const double da = line.a.DistanceTo(pos);
          const double db = line.b.DistanceTo(pos);
          if (std::min(da, db) > continuity) continue;
          const Vec3& far_end = da < db ? line.b : line.a;
          const Vec3 v = far_end - axis.origin;
          const double proj = v.Dot(axis.direction);
          const double perp = (v - axis.direction * proj).Norm();
          if (perp > corridor) continue;
          if (proj > progress + 1e-6) {
            dir = (far_end - pos).Normalized();
            pos = far_end;
            progress = proj;
            advanced = true;
          }
        }
      }
      if (progress >= gap_estimate_) break;  // Gap bridged.

      // Continue crawling toward the tracked position: the unvisited
      // neighbor page nearest to just ahead of it.
      const Vec3 probe = pos + dir * (0.05 * extent);
      PageId next = kInvalidPageId;
      double best_d = std::numeric_limits<double>::max();
      for (PageId q : index_->PageNeighbors(current)) {
        if (visited.contains(q)) continue;
        const double d =
            index_->store().page(q).bounds.DistanceSquaredTo(probe);
        if (d < best_d) {
          best_d = d;
          next = q;
        }
      }
      current = next;
    }

    if (progress > 0.0) {
      // Re-anchor the axis at the furthest confirmed structure position;
      // only the remaining (unconfirmed) part of the gap is skipped
      // blindly.
      axis.origin = pos;
      axis.direction = dir;
      axis.start_offset = std::max(0.0, gap_estimate_ - progress);
    }
  }
}

}  // namespace scout
