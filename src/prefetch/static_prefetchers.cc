#include "prefetch/static_prefetchers.h"

#include <algorithm>
#include <cmath>

#include "geom/grid.h"
#include "geom/hilbert.h"

namespace scout {

namespace {

constexpr SimMicros kStaticPredictCostUs = 1;

// `pages` is the caller's reusable buffer (zero-copy result path: no
// per-call vector growth in steady state).
void DrainCells(const std::vector<Aabb>& cells, PrefetchIo* io,
                std::vector<PageId>* pages) {
  for (const Aabb& cell : cells) {
    if (!io->WindowOpen()) return;
    pages->clear();
    io->QueryPages(Region(cell), pages);
    for (PageId page : *pages) {
      if (!io->FetchPage(page)) return;
    }
  }
}

}  // namespace

void HilbertPrefetcher::BeginSequence() { pending_cells_.clear(); }

SimMicros HilbertPrefetcher::Observe(const QueryResultView& result) {
  pending_cells_.clear();
  const Vec3 center = result.region->Center();
  const int bits = config_.grid_bits;
  const uint64_t h =
      HilbertIndexOfPoint(center, config_.dataset_bounds, bits);
  const uint64_t max_index = 1ull << (3 * bits);

  // Cells at Hilbert distance 1, 2, ... from the current cell, nearest
  // distance first (alternating +/-).
  const double cells_per_axis = static_cast<double>(1u << bits);
  const Vec3 ext = config_.dataset_bounds.Extents();
  const Vec3 cell_size = ext / cells_per_axis;
  for (uint32_t k = 1; pending_cells_.size() < config_.max_cells; ++k) {
    bool any = false;
    for (int sign : {+1, -1}) {
      const int64_t idx = static_cast<int64_t>(h) + sign * static_cast<int64_t>(k);
      if (idx < 0 || idx >= static_cast<int64_t>(max_index)) continue;
      const Vec3 cell_center = PointOfHilbertIndex(
          static_cast<uint64_t>(idx), config_.dataset_bounds, bits);
      pending_cells_.push_back(
          Aabb::FromCenterHalfExtents(cell_center, cell_size * 0.5));
      any = true;
      if (pending_cells_.size() >= config_.max_cells) break;
    }
    if (!any) break;
  }
  return kStaticPredictCostUs;
}

void HilbertPrefetcher::RunPrefetch(PrefetchIo* io) {
  DrainCells(pending_cells_, io, &drain_pages_);
}

void LayeredPrefetcher::BeginSequence() { pending_cells_.clear(); }

SimMicros LayeredPrefetcher::Observe(const QueryResultView& result) {
  pending_cells_.clear();
  const Vec3 center = result.region->Center();
  const int n = 1 << config_.grid_bits;
  const UniformGrid grid(config_.dataset_bounds, n, n, n);
  const CellCoords cur = grid.CellOf(center);

  struct Candidate {
    double dist_sq;
    Aabb bounds;
  };
  std::vector<Candidate> candidates;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const CellCoords c{cur.x + dx, cur.y + dy, cur.z + dz};
        if (c.x < 0 || c.x >= n || c.y < 0 || c.y >= n || c.z < 0 ||
            c.z >= n) {
          continue;
        }
        const Aabb bounds = grid.CellBounds(c);
        candidates.push_back({bounds.Center().DistanceSquaredTo(center),
                              bounds});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.dist_sq < b.dist_sq;
            });
  for (const Candidate& c : candidates) {
    if (pending_cells_.size() >= config_.max_cells) break;
    pending_cells_.push_back(c.bounds);
  }
  return kStaticPredictCostUs;
}

void LayeredPrefetcher::RunPrefetch(PrefetchIo* io) {
  DrainCells(pending_cells_, io, &drain_pages_);
}

}  // namespace scout
