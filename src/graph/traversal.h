#pragma once

#include <cstdint>
#include <vector>

#include "geom/region.h"
#include "graph/spatial_graph.h"

namespace scout {

/// A location where a structure in the query result leaves the query
/// region (paper §4.4): the point on the region boundary plus the outward
/// direction of the structure there. Exit points are what SCOUT
/// extrapolates to predict the next query location.
struct ExitPoint {
  Vec3 position;      ///< Point on (or just outside) the region boundary.
  Vec3 direction;     ///< Unit outward direction of the structure.
  uint32_t component = 0;  ///< Component (structure) id within the graph.
  VertexId vertex = kInvalidVertexId;  ///< The crossing vertex.
};

/// Work counters of a traversal, for cost accounting (Fig. 14/16).
struct TraversalStats {
  uint64_t vertices_visited = 0;
  uint64_t edges_traversed = 0;

  TraversalStats& operator+=(const TraversalStats& o) {
    vertices_visited += o.vertices_visited;
    edges_traversed += o.edges_traversed;
    return *this;
  }
};

/// Depth-first traversal from `start_vertices` that finds every location
/// where the reachable subgraph exits `region`. A vertex produces an exit
/// when its line segment crosses the region boundary (one endpoint
/// inside, one outside — or clipped in the middle). Each visited vertex
/// and edge is counted for cost accounting.
///
/// If `start_vertices` is empty, the traversal starts from every vertex
/// (all structures are candidates — the reset case of §4.3).
TraversalStats FindExits(const SpatialGraph& graph,
                         const std::vector<uint32_t>& component_of,
                         const Region& region,
                         const std::vector<VertexId>& start_vertices,
                         std::vector<ExitPoint>* exits);

/// Vertices whose segment comes within `radius` of `point`. Used to match
/// predicted entry locations against the new query's structures
/// (iterative candidate pruning, §4.3).
void VerticesNearPoint(const SpatialGraph& graph, const Vec3& point,
                       double radius, std::vector<VertexId>* out);

/// If the vertex's segment crosses the boundary of `region`, fills `exit`
/// with the crossing point and the outward direction and returns true.
bool ComputeBoundaryCrossing(const GraphVertex& v, const Region& region,
                             ExitPoint* exit);

/// Vertices whose segments cross the boundary of `region` at a point
/// within `margin` of `source_bounds` — the structures *entering* the
/// query from the side of the previous query. Used to rebuild the
/// candidate set when prediction matching fails (§4.3's enter-set).
void EnteringVertices(const SpatialGraph& graph, const Region& region,
                      const Aabb& source_bounds, double margin,
                      std::vector<VertexId>* out);

}  // namespace scout

