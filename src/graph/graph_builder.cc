#include "graph/graph_builder.h"

#include <algorithm>
#include <unordered_map>

#include "geom/grid.h"

namespace scout {

namespace {

// Adds all inputs as vertices; returns the count.
VertexId AddVertices(std::span<const GraphInput> inputs, SpatialGraph* graph) {
  for (const GraphInput& in : inputs) {
    GraphVertex v;
    v.object_id = in.object->id;
    v.page_id = in.page;
    v.line = in.object->geom.AsLine();
    graph->AddVertex(v);
  }
  return static_cast<VertexId>(inputs.size());
}

}  // namespace

GraphBuildStats BuildGraphGridHash(std::span<const GraphInput> inputs,
                                   const Aabb& bounds, int64_t total_cells,
                                   SpatialGraph* graph) {
  GraphBuildStats stats;
  if (inputs.empty() || bounds.IsEmpty()) return stats;
  AddVertices(inputs, graph);

  const UniformGrid grid = UniformGrid::WithTotalCells(bounds, total_cells);

  // Map cell -> vertices that touch it. A hash map keeps memory
  // proportional to occupied cells, not total cells.
  std::unordered_map<int64_t, std::vector<VertexId>> buckets;
  buckets.reserve(inputs.size() * 2);
  std::vector<int64_t> cells;
  for (VertexId v = 0; v < inputs.size(); ++v) {
    cells.clear();
    grid.CellsAlongSegment(graph->vertex(v).line, &cells);
    ++stats.objects_hashed;
    for (int64_t cell : cells) {
      buckets[cell].push_back(v);
      ++stats.cell_inserts;
    }
  }

  // Objects mapped to the same cell are connected pairwise (Figure 4).
  for (auto& [cell, members] : buckets) {
    (void)cell;
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        ++stats.pair_comparisons;
        graph->AddEdge(members[i], members[j]);
        ++stats.edges_created;
      }
    }
  }
  graph->DedupEdges();
  return stats;
}

GraphBuildStats BuildGraphBruteForce(std::span<const GraphInput> inputs,
                                     double epsilon, SpatialGraph* graph) {
  GraphBuildStats stats;
  AddVertices(inputs, graph);
  const double eps_sq = epsilon * epsilon;
  for (VertexId i = 0; i < inputs.size(); ++i) {
    for (VertexId j = i + 1; j < inputs.size(); ++j) {
      ++stats.pair_comparisons;
      if (graph->vertex(i).line.DistanceSquaredTo(graph->vertex(j).line) <=
          eps_sq) {
        graph->AddEdge(i, j);
        ++stats.edges_created;
      }
    }
  }
  graph->DedupEdges();
  return stats;
}

GraphBuildStats BuildGraphExplicit(
    std::span<const GraphInput> inputs,
    std::span<const std::pair<ObjectId, ObjectId>> adjacency,
    SpatialGraph* graph) {
  GraphBuildStats stats;
  AddVertices(inputs, graph);
  std::unordered_map<ObjectId, VertexId> by_object;
  by_object.reserve(inputs.size() * 2);
  for (VertexId v = 0; v < inputs.size(); ++v) {
    by_object[graph->vertex(v).object_id] = v;
  }
  for (const auto& [a, b] : adjacency) {
    ++stats.pair_comparisons;
    auto ia = by_object.find(a);
    auto ib = by_object.find(b);
    if (ia == by_object.end() || ib == by_object.end()) continue;
    graph->AddEdge(ia->second, ib->second);
    ++stats.edges_created;
  }
  graph->DedupEdges();
  return stats;
}

}  // namespace scout
