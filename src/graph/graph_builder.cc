#include "graph/graph_builder.h"

#include <unordered_map>

#include "geom/grid.h"

namespace scout {

namespace {

// Adds all inputs as vertices; returns the count.
VertexId AddVertices(std::span<const GraphInput> inputs, SpatialGraph* graph) {
  graph->ReserveVertices(inputs.size());
  for (const GraphInput& in : inputs) {
    GraphVertex v;
    v.object_id = in.object->id;
    v.page_id = in.page;
    v.line = in.object->geom.AsLine();
    graph->AddVertex(v);
  }
  return static_cast<VertexId>(inputs.size());
}

// 64-bit finalizer (splitmix64) used to hash grid-cell keys and packed
// edge keys into the open-addressed tables below.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline size_t NextPow2(size_t v) {
  size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

// Open-addressed set of undirected edges packed as (min << 32) | max,
// used to dedup cell-pair edges during the sweep (min < max always, so
// the all-ones key is free to mark empty slots). Linear probing, grows by
// rehashing at ~70% load.
class EdgeSet {
 public:
  explicit EdgeSet(size_t expected) {
    capacity_ = NextPow2(expected * 2);
    slots_.assign(capacity_, kEmpty);
  }

  // Returns true if the edge was not present yet.
  bool Insert(uint64_t key) {
    if ((size_ + 1) * 10 >= capacity_ * 7) Grow();
    uint64_t* slot = FindSlot(slots_.data(), capacity_, key);
    if (*slot == key) return false;
    *slot = key;
    ++size_;
    return true;
  }

 private:
  static constexpr uint64_t kEmpty = ~0ull;

  static uint64_t* FindSlot(uint64_t* slots, size_t capacity, uint64_t key) {
    const size_t mask = capacity - 1;
    size_t i = Mix64(key) & mask;
    while (slots[i] != kEmpty && slots[i] != key) i = (i + 1) & mask;
    return &slots[i];
  }

  void Grow() {
    std::vector<uint64_t> grown(capacity_ * 2, kEmpty);
    for (uint64_t key : slots_) {
      if (key != kEmpty) *FindSlot(grown.data(), grown.size(), key) = key;
    }
    slots_.swap(grown);
    capacity_ = slots_.size();
  }

  std::vector<uint64_t> slots_;
  size_t capacity_;
  size_t size_ = 0;
};

}  // namespace

GraphBuildStats BuildGraphGridHash(std::span<const GraphInput> inputs,
                                   const Aabb& bounds, int64_t total_cells,
                                   SpatialGraph* graph) {
  GraphBuildStats stats;
  if (inputs.empty() || bounds.IsEmpty()) return stats;
  AddVertices(inputs, graph);

  const UniformGrid grid = UniformGrid::WithTotalCells(bounds, total_cells);
  const uint32_t n = static_cast<uint32_t>(inputs.size());

  // Hash every vertex line to the cells it traverses, into one contiguous
  // (cell, vertex) arena: cell ids are appended per vertex and
  // cell_end[v] marks the end of vertex v's run. Reading the lines out of
  // the vertex array once into a flat segment array keeps the DDA walks
  // streaming over 48-byte segments instead of striding 72-byte vertices.
  std::vector<Segment> lines(n);
  for (uint32_t v = 0; v < n; ++v) lines[v] = graph->vertex(v).line;

  std::vector<int64_t> cell_arena;
  cell_arena.reserve(static_cast<size_t>(n) * 4);
  std::vector<uint32_t> cell_end(n);
  for (uint32_t v = 0; v < n; ++v) {
    grid.CellsAlongSegment(lines[v], &cell_arena);
    ++stats.objects_hashed;
    cell_end[v] = static_cast<uint32_t>(cell_arena.size());
  }
  stats.cell_inserts = cell_arena.size();

  // Assign each distinct occupied cell a dense id through a flat
  // open-addressed table (memory stays proportional to occupied cells,
  // like the hash-map it replaces, but with no per-bucket allocations).
  const size_t table_cap = NextPow2(cell_arena.size() * 2);
  const size_t table_mask = table_cap - 1;
  std::vector<int64_t> table_keys(table_cap, -1);
  std::vector<uint32_t> table_ids(table_cap);
  std::vector<uint32_t> dense(cell_arena.size());
  std::vector<uint32_t> cell_counts;
  for (size_t i = 0; i < cell_arena.size(); ++i) {
    const int64_t cell = cell_arena[i];
    size_t slot = Mix64(static_cast<uint64_t>(cell)) & table_mask;
    while (table_keys[slot] != -1 && table_keys[slot] != cell) {
      slot = (slot + 1) & table_mask;
    }
    if (table_keys[slot] == -1) {
      table_keys[slot] = cell;
      table_ids[slot] = static_cast<uint32_t>(cell_counts.size());
      cell_counts.push_back(0);
    }
    dense[i] = table_ids[slot];
    ++cell_counts[dense[i]];
  }

  // Counting-sort the arena into per-cell member runs. Vertices are
  // scanned in ascending order and the DDA emits each cell of a segment
  // once, so every run comes out sorted and duplicate-free — the
  // per-bucket sort + unique of the old map-based builder is implicit.
  const size_t num_cells = cell_counts.size();
  std::vector<uint32_t> cell_offsets(num_cells + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    cell_offsets[c + 1] = cell_offsets[c] + cell_counts[c];
  }
  std::vector<VertexId> members(cell_arena.size());
  {
    std::vector<uint32_t> cursor(cell_offsets.begin(), cell_offsets.end() - 1);
    uint32_t begin = 0;
    for (uint32_t v = 0; v < n; ++v) {
      for (uint32_t i = begin; i < cell_end[v]; ++i) {
        members[cursor[dense[i]]++] = v;
      }
      begin = cell_end[v];
    }
  }

  // Objects mapped to the same cell are connected pairwise (Figure 4).
  // Cell-pair edges are dedup'ed during the sweep; the work counters
  // still count every considered pair (identical to the pre-CSR builder,
  // which created all of them and dedup'ed afterwards).
  EdgeSet seen(static_cast<size_t>(n) * 2);
  for (size_t c = 0; c < num_cells; ++c) {
    const uint32_t begin = cell_offsets[c];
    const uint32_t end = cell_offsets[c + 1];
    for (uint32_t i = begin; i < end; ++i) {
      const uint64_t hi = static_cast<uint64_t>(members[i]) << 32;
      for (uint32_t j = i + 1; j < end; ++j) {
        ++stats.pair_comparisons;
        ++stats.edges_created;
        if (seen.Insert(hi | members[j])) {
          graph->AddEdge(members[i], members[j]);
        }
      }
    }
  }
  graph->Finalize();
  return stats;
}

GraphBuildStats BuildGraphBruteForce(std::span<const GraphInput> inputs,
                                     double epsilon, SpatialGraph* graph) {
  GraphBuildStats stats;
  AddVertices(inputs, graph);
  const double eps_sq = epsilon * epsilon;
  for (VertexId i = 0; i < inputs.size(); ++i) {
    for (VertexId j = i + 1; j < inputs.size(); ++j) {
      ++stats.pair_comparisons;
      if (graph->vertex(i).line.DistanceSquaredTo(graph->vertex(j).line) <=
          eps_sq) {
        graph->AddEdge(i, j);
        ++stats.edges_created;
      }
    }
  }
  graph->Finalize();
  return stats;
}

GraphBuildStats BuildGraphExplicit(
    std::span<const GraphInput> inputs,
    std::span<const std::pair<ObjectId, ObjectId>> adjacency,
    SpatialGraph* graph) {
  GraphBuildStats stats;
  AddVertices(inputs, graph);
  // scout-lint: allow(det-unordered-container): point lookups only; edges
  // are emitted in the caller-provided adjacency order.
  std::unordered_map<ObjectId, VertexId> by_object;
  by_object.reserve(inputs.size() * 2);
  for (VertexId v = 0; v < inputs.size(); ++v) {
    by_object[graph->vertex(v).object_id] = v;
  }
  for (const auto& [a, b] : adjacency) {
    ++stats.pair_comparisons;
    auto ia = by_object.find(a);
    auto ib = by_object.find(b);
    if (ia == by_object.end() || ib == by_object.end()) continue;
    graph->AddEdge(ia->second, ib->second);
    ++stats.edges_created;
  }
  graph->Finalize();
  return stats;
}

}  // namespace scout
