#include "graph/graph_builder.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <thread>
#include <type_traits>
#include <unordered_map>

#include "common/worker_pool.h"
#include "geom/grid.h"

namespace scout {

namespace {

// Adds all inputs as vertices; returns the count.
VertexId AddVertices(std::span<const GraphInput> inputs, SpatialGraph* graph) {
  std::span<GraphVertex> out = graph->AppendVertices(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const GraphInput& in = inputs[i];
    GraphVertex& v = out[i];
    v.object_id = in.object->id;
    v.page_id = in.page;
    v.line = in.object->geom.AsLine();
  }
  return static_cast<VertexId>(inputs.size());
}

// 64-bit finalizer (splitmix64) used to hash grid-cell keys and packed
// edge keys into the open-addressed tables below.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline size_t NextPow2(size_t v) {
  size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

// Open-addressed set of undirected edges packed as (min << 32) | max,
// used to dedup cell-pair edges during the sweep (min < max always, so
// the all-ones key is free to mark empty slots). Linear probing, grows by
// rehashing at ~70% load.
class EdgeSet {
 public:
  explicit EdgeSet(size_t expected) {
    capacity_ = NextPow2(expected * 2);
    slots_.assign(capacity_, kEmpty);
  }

  // Returns true if the edge was not present yet.
  bool Insert(uint64_t key) {
    if ((size_ + 1) * 10 >= capacity_ * 7) Grow();
    uint64_t* slot = FindSlot(slots_.data(), capacity_, key);
    if (*slot == key) return false;
    *slot = key;
    ++size_;
    return true;
  }

 private:
  static constexpr uint64_t kEmpty = ~0ull;

  static uint64_t* FindSlot(uint64_t* slots, size_t capacity, uint64_t key) {
    const size_t mask = capacity - 1;
    size_t i = Mix64(key) & mask;
    while (slots[i] != kEmpty && slots[i] != key) i = (i + 1) & mask;
    return &slots[i];
  }

  void Grow() {
    std::vector<uint64_t> grown(capacity_ * 2, kEmpty);
    for (uint64_t key : slots_) {
      if (key != kEmpty) *FindSlot(grown.data(), grown.size(), key) = key;
    }
    slots_.swap(grown);
    capacity_ = slots_.size();
  }

  std::vector<uint64_t> slots_;
  size_t capacity_;
  size_t size_ = 0;
};

// Grid-cell counts at or below this are grouped by a stable LSD radix
// sort over packed (cell << 32 | vertex) keys (<= 3 byte passes over
// sequential streams) instead of an open-addressed dense-id table.
// Radix groups cells in ascending flat-index order rather than the
// serial builder's first-touch order, which cannot change any output:
// the stats counters are order-independent sums over cells, the dedup'ed
// edge *set* is the union over cells, and SpatialGraph::Finalize sorts
// and dedups the buffered edges, so the CSR is invariant to the order
// cells are swept in (the differential tests pin this).
constexpr int64_t kDirectIndexCells = int64_t{1} << 20;

// Open-addressed edge set over persistent scratch storage: the slot
// array stays allocated (and kEmpty-filled) across calls, and the
// destructor clears only the slots written this call (tracked in a
// dirty list), so a rebuild touches memory proportional to the edges it
// inserted instead of re-allocating and zero-filling the whole table.
// Same probe sequence and same dedup answers as EdgeSet above.
class ScratchEdgeSet {
 public:
  ScratchEdgeSet(size_t expected, std::vector<uint64_t>* slots,
                 std::vector<uint32_t>* dirty)
      : slots_(slots), dirty_(dirty) {
    const size_t want = NextPow2(expected * 2);
    if (slots_->size() < want) slots_->assign(want, kEmpty);
    dirty_->clear();
  }

  ~ScratchEdgeSet() {
    for (const uint32_t i : *dirty_) (*slots_)[i] = kEmpty;
    dirty_->clear();
  }

  // Returns true if the edge was not present yet.
  bool Insert(uint64_t key) {
    if ((dirty_->size() + 1) * 10 >= slots_->size() * 7) Grow();
    const size_t mask = slots_->size() - 1;
    uint64_t* data = slots_->data();
    size_t i = Mix64(key) & mask;
    while (data[i] != kEmpty && data[i] != key) i = (i + 1) & mask;
    if (data[i] == key) return false;
    data[i] = key;
    dirty_->push_back(static_cast<uint32_t>(i));
    return true;
  }

 private:
  static constexpr uint64_t kEmpty = ~0ull;

  void Grow() {
    std::vector<uint64_t> grown(slots_->size() * 2, kEmpty);
    const size_t mask = grown.size() - 1;
    for (uint32_t& di : *dirty_) {
      const uint64_t key = (*slots_)[di];
      size_t i = Mix64(key) & mask;
      while (grown[i] != kEmpty) i = (i + 1) & mask;
      grown[i] = key;
      di = static_cast<uint32_t>(i);
    }
    slots_->swap(grown);
  }

  std::vector<uint64_t>* slots_;
  std::vector<uint32_t>* dirty_;
};

// Per-thread reusable buffers for the tiled grid-hash builder. The
// recorder and the engine rebuild graphs back to back; keeping the flat
// tables and arenas warm across calls removes the allocation and
// page-fault tax from every rebuild without changing any result (every
// buffer is fully (re)initialized per call, the direct-index tables by
// epoch marking).
struct GridHashScratch {
  std::vector<Segment> lines;
  std::vector<int64_t> cell_arena;
  std::vector<uint32_t> cell_end;
  std::vector<std::vector<int64_t>> tile_arenas;
  std::vector<std::vector<uint32_t>> tile_ends;
  std::vector<uint64_t> keys;      ///< Radix mode: packed (cell, vertex).
  std::vector<uint64_t> keys_tmp;  ///< Radix mode: ping-pong buffer.
  std::vector<uint32_t> keys32;      ///< Compact radix mode (see below).
  std::vector<uint32_t> keys32_tmp;  ///< Compact radix ping-pong buffer.
  std::vector<uint32_t> dense;
  std::vector<uint32_t> cell_counts;
  std::vector<uint32_t> cell_offsets;
  std::vector<uint32_t> cursor;
  std::vector<VertexId> members;
  std::vector<uint64_t> edge_slots;  ///< ScratchEdgeSet storage.
  std::vector<uint32_t> edge_dirty;  ///< ScratchEdgeSet dirty-slot list.
};

GridHashScratch& LocalScratch() {
  thread_local GridHashScratch scratch;
  return scratch;
}

}  // namespace

GraphBuildStats BuildGraphGridHash(std::span<const GraphInput> inputs,
                                   const Aabb& bounds, int64_t total_cells,
                                   SpatialGraph* graph) {
  // One tile per available core, capped: the DDA shards are roughly
  // equal cost, so more tiles than cores only adds merge traffic. The
  // tile count cannot change the output (see BuildGraphGridHashTiled).
  const uint32_t cores = std::max(1u, std::thread::hardware_concurrency());
  return BuildGraphGridHashTiled(inputs, bounds, total_cells,
                                 std::min(cores, 8u), graph);
}

GraphBuildStats BuildGraphGridHashTiled(std::span<const GraphInput> inputs,
                                        const Aabb& bounds,
                                        int64_t total_cells, uint32_t tiles,
                                        SpatialGraph* graph) {
  GraphBuildStats stats;
  if (inputs.empty() || bounds.IsEmpty()) return stats;
  AddVertices(inputs, graph);

  const UniformGrid grid = UniformGrid::WithTotalCells(bounds, total_cells);
  const uint32_t n = static_cast<uint32_t>(inputs.size());
  GridHashScratch& s = LocalScratch();

  tiles = std::clamp<uint32_t>(tiles, 1, n);
  const bool direct = grid.TotalCells() <= kDirectIndexCells;
  const uint32_t cell_bits = static_cast<uint32_t>(
      std::bit_width(static_cast<uint64_t>(grid.TotalCells() - 1)));
  const uint32_t vbits = static_cast<uint32_t>(std::bit_width(n - 1));
  const uint32_t passes = std::max(1u, (cell_bits + 7) / 8);
  // When cell id and vertex id together fit in 32 bits the fused route
  // packs (cell << vbits | vertex) into uint32 keys — half the key
  // traffic through the radix passes and the sweep. A stable radix over
  // the cell bits leaves within-cell order equal to emission order for
  // either key width, so the sorted (cell, vertex) sequence — and hence
  // everything downstream — is identical to the 64-bit route's.
  const bool fused32 = direct && tiles == 1 && cell_bits + vbits <= 32;
  uint32_t hist[3][256] = {};
  size_t arena_size = 0;

  // Phase 1: DDA-hash every line to the cells it traverses. The
  // single-tile direct-grid shape (the recorder and every build on a
  // 1-core host) fuses the radix-key packing and byte histograms into
  // the walk's emit, so each (cell, vertex) pair is produced, packed
  // and counted in one touch with no staging arena; the emit is
  // specialized on the radix pass count so it only feeds the
  // histograms a pass will consume. Multi-tile builds stage per-tile
  // arenas fanned out over the worker pool and concatenate them in
  // ascending tile order — the serial append order element for element
  // — then pack; either route feeds the radix passes the same key
  // multiset, so the output cannot differ.
  if (fused32) {
    // Emission goes through a bump pointer instead of push_back: one
    // segment emits at most nx+ny+nz+4 cells, so a single capacity
    // check per segment (not per cell) keeps the emit down to a store
    // and the histogram touches. The buffer persists across calls, so
    // steady state never grows.
    const size_t per_seg =
        static_cast<size_t>(grid.nx()) + grid.ny() + grid.nz() + 4;
    if (s.keys32.size() < per_seg * 2) s.keys32.resize(per_seg * 2);
    uint32_t* base = s.keys32.data();
    uint32_t* cur = base;
    // Stage the lines flat so the walks stream over 48-byte segments
    // instead of striding 72-byte vertices (same trick as the serial
    // builder).
    s.lines.resize(n);
    for (uint32_t v = 0; v < n; ++v) s.lines[v] = graph->vertex(v).line;
    const auto fused_walk = [&](auto pass_count) {
      constexpr uint32_t kPasses = decltype(pass_count)::value;
      for (uint32_t v = 0; v < n; ++v) {
        if (s.keys32.size() - static_cast<size_t>(cur - base) < per_seg) {
          const size_t used = static_cast<size_t>(cur - base);
          s.keys32.resize(std::max(s.keys32.size() * 2, used + per_seg));
          base = s.keys32.data();
          cur = base + used;
        }
        const Segment& line = s.lines[v];
        grid.WalkCellsAlongSegment(line, [&cur, &hist, v,
                                          vbits](int64_t cell) {
          const uint32_t key = (static_cast<uint32_t>(cell) << vbits) | v;
          *cur++ = key;
          ++hist[0][(key >> vbits) & 255];
          if constexpr (kPasses >= 2) ++hist[1][(key >> (vbits + 8)) & 255];
          if constexpr (kPasses >= 3) ++hist[2][(key >> (vbits + 16)) & 255];
        });
      }
    };
    if (passes == 1) {
      fused_walk(std::integral_constant<uint32_t, 1>{});
    } else if (passes == 2) {
      fused_walk(std::integral_constant<uint32_t, 2>{});
    } else {
      fused_walk(std::integral_constant<uint32_t, 3>{});
    }
    arena_size = static_cast<size_t>(cur - base);
  } else if (direct && tiles == 1) {
    s.keys.clear();
    for (uint32_t v = 0; v < n; ++v) {
      const Segment line = graph->vertex(v).line;
      grid.WalkCellsAlongSegment(line, [&s, &hist, v](int64_t cell) {
        const uint64_t key = (static_cast<uint64_t>(cell) << 32) | v;
        s.keys.push_back(key);
        ++hist[0][(key >> 32) & 255];
        ++hist[1][(key >> 40) & 255];
        ++hist[2][(key >> 48) & 255];
      });
    }
    arena_size = s.keys.size();
  } else if (tiles == 1) {
    s.lines.resize(n);
    for (uint32_t v = 0; v < n; ++v) s.lines[v] = graph->vertex(v).line;
    s.cell_end.resize(n);
    s.cell_arena.clear();
    for (uint32_t v = 0; v < n; ++v) {
      grid.CellsAlongSegment(s.lines[v], &s.cell_arena);
      s.cell_end[v] = static_cast<uint32_t>(s.cell_arena.size());
    }
    arena_size = s.cell_arena.size();
  } else {
    s.lines.resize(n);
    for (uint32_t v = 0; v < n; ++v) s.lines[v] = graph->vertex(v).line;
    s.cell_end.resize(n);
    if (s.tile_arenas.size() < tiles) {
      s.tile_arenas.resize(tiles);
      s.tile_ends.resize(tiles);
    }
    std::atomic<uint32_t> next_tile{0};
    internal::RunOnPool(tiles, [&] {
      for (uint32_t t = next_tile.fetch_add(1); t < tiles;
           t = next_tile.fetch_add(1)) {
        const uint32_t lo = static_cast<uint32_t>(uint64_t{t} * n / tiles);
        const uint32_t hi =
            static_cast<uint32_t>(uint64_t{t + 1} * n / tiles);
        std::vector<int64_t>& arena = s.tile_arenas[t];
        std::vector<uint32_t>& ends = s.tile_ends[t];
        arena.clear();
        ends.clear();
        for (uint32_t v = lo; v < hi; ++v) {
          grid.CellsAlongSegment(s.lines[v], &arena);
          ends.push_back(static_cast<uint32_t>(arena.size()));
        }
      }
    });
    size_t total = 0;
    for (uint32_t t = 0; t < tiles; ++t) total += s.tile_arenas[t].size();
    s.cell_arena.resize(total);
    size_t offset = 0;
    uint32_t v = 0;
    for (uint32_t t = 0; t < tiles; ++t) {
      const std::vector<int64_t>& arena = s.tile_arenas[t];
      std::copy(arena.begin(), arena.end(), s.cell_arena.begin() + offset);
      for (const uint32_t end : s.tile_ends[t]) {
        s.cell_end[v++] = static_cast<uint32_t>(offset + end);
      }
      offset += arena.size();
    }
    arena_size = total;
  }
  stats.objects_hashed = n;
  stats.cell_inserts = arena_size;

  // Phases 2+3: group the pairs into per-cell member runs, each run in
  // ascending vertex order (emission is vertex-major and a segment's
  // DDA emits each cell once, so stable grouping keeps runs sorted and
  // duplicate-free). Dense grids LSD-radix the packed
  // (cell << 32 | vertex) keys over the cell bytes — a few sequential
  // streaming passes instead of a random-access hash per entry. Runs
  // come out in ascending cell order rather than the serial builder's
  // first-touch order; that order is unobservable (see
  // kDirectIndexCells above).
  const uint64_t* sorted_keys = nullptr;
  const uint32_t* sorted32 = nullptr;
  size_t num_cells = 0;  // Sparse mode only.
  if (fused32) {
    s.keys32_tmp.resize(arena_size);
    uint32_t* src = s.keys32.data();
    uint32_t* dst = s.keys32_tmp.data();
    for (uint32_t p = 0; p < passes; ++p) {
      uint32_t* h = hist[p];
      uint32_t sum = 0;
      for (int b = 0; b < 256; ++b) {
        const uint32_t c = h[b];
        h[b] = sum;
        sum += c;
      }
      const uint32_t shift = vbits + 8 * p;
      for (size_t i = 0; i < arena_size; ++i) {
        const uint32_t k = src[i];
        dst[h[(k >> shift) & 255]++] = k;
      }
      std::swap(src, dst);
    }
    sorted32 = src;
  } else if (direct) {
    if (tiles != 1) {
      // Staged route: pack and count the merged arena now.
      s.keys.resize(arena_size);
      uint32_t begin = 0;
      for (uint32_t v = 0; v < n; ++v) {
        for (uint32_t i = begin; i < s.cell_end[v]; ++i) {
          const uint64_t key =
              (static_cast<uint64_t>(s.cell_arena[i]) << 32) | v;
          s.keys[i] = key;
          ++hist[0][(key >> 32) & 255];
          ++hist[1][(key >> 40) & 255];
          ++hist[2][(key >> 48) & 255];
        }
        begin = s.cell_end[v];
      }
    }
    s.keys_tmp.resize(arena_size);
    uint64_t* src = s.keys.data();
    uint64_t* dst = s.keys_tmp.data();
    for (uint32_t p = 0; p < passes; ++p) {
      uint32_t* h = hist[p];
      uint32_t sum = 0;
      for (int b = 0; b < 256; ++b) {
        const uint32_t c = h[b];
        h[b] = sum;
        sum += c;
      }
      const uint32_t shift = 32 + 8 * p;
      for (size_t i = 0; i < arena_size; ++i) {
        const uint64_t k = src[i];
        dst[h[(k >> shift) & 255]++] = k;
      }
      std::swap(src, dst);
    }
    sorted_keys = src;
  } else {
    // Sparse grids fall back to the serial builder's open-addressed
    // dense-id table (memory proportional to occupied cells, not the
    // grid) followed by a counting sort into member runs.
    s.dense.resize(arena_size);
    s.cell_counts.clear();
    const size_t table_cap = NextPow2(arena_size * 2);
    const size_t table_mask = table_cap - 1;
    std::vector<int64_t> table_keys(table_cap, -1);
    std::vector<uint32_t> table_ids(table_cap);
    for (size_t i = 0; i < arena_size; ++i) {
      const int64_t cell = s.cell_arena[i];
      size_t slot = Mix64(static_cast<uint64_t>(cell)) & table_mask;
      while (table_keys[slot] != -1 && table_keys[slot] != cell) {
        slot = (slot + 1) & table_mask;
      }
      if (table_keys[slot] == -1) {
        table_keys[slot] = cell;
        table_ids[slot] = static_cast<uint32_t>(s.cell_counts.size());
        s.cell_counts.push_back(0);
      }
      s.dense[i] = table_ids[slot];
      ++s.cell_counts[s.dense[i]];
    }
    num_cells = s.cell_counts.size();
    s.cell_offsets.resize(num_cells + 1);
    s.cell_offsets[0] = 0;
    for (size_t c = 0; c < num_cells; ++c) {
      s.cell_offsets[c + 1] = s.cell_offsets[c] + s.cell_counts[c];
    }
    s.members.resize(arena_size);
    s.cursor.assign(s.cell_offsets.begin(), s.cell_offsets.end() - 1);
    uint32_t begin = 0;
    for (uint32_t v = 0; v < n; ++v) {
      for (uint32_t i = begin; i < s.cell_end[v]; ++i) {
        s.members[s.cursor[s.dense[i]]++] = v;
      }
      begin = s.cell_end[v];
    }
  }

  // Phase 4: pairwise sweep — the same pairs and the same counter
  // increments as the serial builder, whichever grouping mode ran. The
  // sorted-key sweeps skip the in-sweep hash dedup entirely: Finalize
  // sorts and uniques the buffered edges anyway, both counters count
  // every considered pair unconditionally, and the dedup'ed edge set is
  // the same set either way, so buffering duplicates changes no output.
  // The edge buffer then holds one entry per pair instead of per unique
  // edge — bounded by pair_comparisons, the work the sweep already does.
  {
    if (sorted32 != nullptr) {
      // Flat scan over the compact keys: two keys share a cell iff
      // their XOR has no bits at or above vbits. Most entries are
      // single-member runs, so the common path is one compare per
      // entry; the run machinery only engages on a same-cell hit.
      const uint64_t same_cell = uint64_t{1} << vbits;
      const uint32_t vmask = static_cast<uint32_t>(same_cell - 1);
      size_t i = 0;
      while (i + 1 < arena_size) {
        if ((sorted32[i] ^ sorted32[i + 1]) >= same_cell) {
          ++i;
          continue;
        }
        size_t end = i + 2;
        while (end < arena_size && (sorted32[i] ^ sorted32[end]) < same_cell) {
          ++end;
        }
        for (size_t a = i; a < end; ++a) {
          const VertexId va = sorted32[a] & vmask;
          for (size_t b = a + 1; b < end; ++b) {
            ++stats.pair_comparisons;
            ++stats.edges_created;
            graph->AddEdge(va, sorted32[b] & vmask);
          }
        }
        i = end;
      }
    } else if (sorted_keys != nullptr) {
      size_t i = 0;
      while (i < arena_size) {
        const uint64_t cell = sorted_keys[i] >> 32;
        size_t end = i + 1;
        while (end < arena_size && (sorted_keys[end] >> 32) == cell) ++end;
        for (size_t a = i; a < end; ++a) {
          const VertexId va = static_cast<VertexId>(sorted_keys[a]);
          for (size_t b = a + 1; b < end; ++b) {
            ++stats.pair_comparisons;
            ++stats.edges_created;
            graph->AddEdge(va, static_cast<VertexId>(sorted_keys[b]));
          }
        }
        i = end;
      }
    } else {
      ScratchEdgeSet seen(static_cast<size_t>(n) * 2, &s.edge_slots,
                          &s.edge_dirty);
      for (size_t c = 0; c < num_cells; ++c) {
        const uint32_t begin = s.cell_offsets[c];
        const uint32_t end = s.cell_offsets[c + 1];
        for (uint32_t i = begin; i < end; ++i) {
          const uint64_t hi = static_cast<uint64_t>(s.members[i]) << 32;
          for (uint32_t j = i + 1; j < end; ++j) {
            ++stats.pair_comparisons;
            ++stats.edges_created;
            if (seen.Insert(hi | s.members[j])) {
              graph->AddEdge(s.members[i], s.members[j]);
            }
          }
        }
      }
    }
  }
  graph->Finalize();
  return stats;
}

GraphBuildStats BuildGraphGridHashSerial(std::span<const GraphInput> inputs,
                                         const Aabb& bounds,
                                         int64_t total_cells,
                                         SpatialGraph* graph) {
  GraphBuildStats stats;
  if (inputs.empty() || bounds.IsEmpty()) return stats;
  AddVertices(inputs, graph);

  const UniformGrid grid = UniformGrid::WithTotalCells(bounds, total_cells);
  const uint32_t n = static_cast<uint32_t>(inputs.size());

  // Hash every vertex line to the cells it traverses, into one contiguous
  // (cell, vertex) arena: cell ids are appended per vertex and
  // cell_end[v] marks the end of vertex v's run. Reading the lines out of
  // the vertex array once into a flat segment array keeps the DDA walks
  // streaming over 48-byte segments instead of striding 72-byte vertices.
  std::vector<Segment> lines(n);
  for (uint32_t v = 0; v < n; ++v) lines[v] = graph->vertex(v).line;

  std::vector<int64_t> cell_arena;
  cell_arena.reserve(static_cast<size_t>(n) * 4);
  std::vector<uint32_t> cell_end(n);
  for (uint32_t v = 0; v < n; ++v) {
    grid.CellsAlongSegment(lines[v], &cell_arena);
    ++stats.objects_hashed;
    cell_end[v] = static_cast<uint32_t>(cell_arena.size());
  }
  stats.cell_inserts = cell_arena.size();

  // Assign each distinct occupied cell a dense id through a flat
  // open-addressed table (memory stays proportional to occupied cells,
  // like the hash-map it replaces, but with no per-bucket allocations).
  const size_t table_cap = NextPow2(cell_arena.size() * 2);
  const size_t table_mask = table_cap - 1;
  std::vector<int64_t> table_keys(table_cap, -1);
  std::vector<uint32_t> table_ids(table_cap);
  std::vector<uint32_t> dense(cell_arena.size());
  std::vector<uint32_t> cell_counts;
  for (size_t i = 0; i < cell_arena.size(); ++i) {
    const int64_t cell = cell_arena[i];
    size_t slot = Mix64(static_cast<uint64_t>(cell)) & table_mask;
    while (table_keys[slot] != -1 && table_keys[slot] != cell) {
      slot = (slot + 1) & table_mask;
    }
    if (table_keys[slot] == -1) {
      table_keys[slot] = cell;
      table_ids[slot] = static_cast<uint32_t>(cell_counts.size());
      cell_counts.push_back(0);
    }
    dense[i] = table_ids[slot];
    ++cell_counts[dense[i]];
  }

  // Counting-sort the arena into per-cell member runs. Vertices are
  // scanned in ascending order and the DDA emits each cell of a segment
  // once, so every run comes out sorted and duplicate-free — the
  // per-bucket sort + unique of the old map-based builder is implicit.
  const size_t num_cells = cell_counts.size();
  std::vector<uint32_t> cell_offsets(num_cells + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    cell_offsets[c + 1] = cell_offsets[c] + cell_counts[c];
  }
  std::vector<VertexId> members(cell_arena.size());
  {
    std::vector<uint32_t> cursor(cell_offsets.begin(), cell_offsets.end() - 1);
    uint32_t begin = 0;
    for (uint32_t v = 0; v < n; ++v) {
      for (uint32_t i = begin; i < cell_end[v]; ++i) {
        members[cursor[dense[i]]++] = v;
      }
      begin = cell_end[v];
    }
  }

  // Objects mapped to the same cell are connected pairwise (Figure 4).
  // Cell-pair edges are dedup'ed during the sweep; the work counters
  // still count every considered pair (identical to the pre-CSR builder,
  // which created all of them and dedup'ed afterwards).
  EdgeSet seen(static_cast<size_t>(n) * 2);
  for (size_t c = 0; c < num_cells; ++c) {
    const uint32_t begin = cell_offsets[c];
    const uint32_t end = cell_offsets[c + 1];
    for (uint32_t i = begin; i < end; ++i) {
      const uint64_t hi = static_cast<uint64_t>(members[i]) << 32;
      for (uint32_t j = i + 1; j < end; ++j) {
        ++stats.pair_comparisons;
        ++stats.edges_created;
        if (seen.Insert(hi | members[j])) {
          graph->AddEdge(members[i], members[j]);
        }
      }
    }
  }
  graph->Finalize();
  return stats;
}

GraphBuildStats BuildGraphBruteForce(std::span<const GraphInput> inputs,
                                     double epsilon, SpatialGraph* graph) {
  GraphBuildStats stats;
  AddVertices(inputs, graph);
  const double eps_sq = epsilon * epsilon;
  for (VertexId i = 0; i < inputs.size(); ++i) {
    for (VertexId j = i + 1; j < inputs.size(); ++j) {
      ++stats.pair_comparisons;
      if (graph->vertex(i).line.DistanceSquaredTo(graph->vertex(j).line) <=
          eps_sq) {
        graph->AddEdge(i, j);
        ++stats.edges_created;
      }
    }
  }
  graph->Finalize();
  return stats;
}

GraphBuildStats BuildGraphExplicit(
    std::span<const GraphInput> inputs,
    std::span<const std::pair<ObjectId, ObjectId>> adjacency,
    SpatialGraph* graph) {
  GraphBuildStats stats;
  AddVertices(inputs, graph);
  // scout-lint: allow(det-unordered-container): point lookups only; edges
  // are emitted in the caller-provided adjacency order.
  std::unordered_map<ObjectId, VertexId> by_object;
  by_object.reserve(inputs.size() * 2);
  for (VertexId v = 0; v < inputs.size(); ++v) {
    by_object[graph->vertex(v).object_id] = v;
  }
  for (const auto& [a, b] : adjacency) {
    ++stats.pair_comparisons;
    auto ia = by_object.find(a);
    auto ib = by_object.find(b);
    if (ia == by_object.end() || ib == by_object.end()) continue;
    graph->AddEdge(ia->second, ib->second);
    ++stats.edges_created;
  }
  graph->Finalize();
  return stats;
}

}  // namespace scout
