#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geom/aabb.h"
#include "graph/spatial_graph.h"
#include "storage/object.h"

namespace scout {

/// Work counters produced while building / traversing graphs. The engine
/// converts these into simulated CPU time through a CostModel, and tests
/// use them to verify algorithmic behaviour (e.g. sparse construction
/// doing strictly less work). The counters are part of the deterministic
/// simulation contract: for identical inputs they must not change across
/// implementations (graph_stats_guard_test pins them), so `edges_created`
/// keeps counting every considered pair even though the builders now
/// dedup edges during the sweep instead of afterwards.
struct GraphBuildStats {
  uint64_t objects_hashed = 0;   ///< Objects mapped to grid cells.
  uint64_t cell_inserts = 0;     ///< (object, cell) insertions.
  uint64_t pair_comparisons = 0; ///< Pairwise connections considered.
  uint64_t edges_created = 0;    ///< Edge creations (pre-dedup count).

  GraphBuildStats& operator+=(const GraphBuildStats& o) {
    objects_hashed += o.objects_hashed;
    cell_inserts += o.cell_inserts;
    pair_comparisons += o.pair_comparisons;
    edges_created += o.edges_created;
    return *this;
  }
};

/// Explicit adjacency of a mesh dataset: object id -> adjacent object
/// ids. Datasets with an underlying graph (polygon meshes, paper §4.2)
/// provide this so the result graph can be read off directly instead of
/// grid hashing.
// scout-lint: allow(det-unordered-container): lookup-only mesh adjacency;
// consumers iterate result objects (deterministic order), never this map.
using AdjacencyMap = std::unordered_map<ObjectId, std::vector<ObjectId>>;

/// Reference to an object participating in graph construction.
struct GraphInput {
  const SpatialObject* object = nullptr;
  PageId page = kInvalidPageId;
};

/// Builds the approximate graph by spatial grid hashing (paper §4.2,
/// Figure 4): the bounding box `bounds` (normally the query region's
/// bounds) is partitioned into ~`total_cells` equi-volume cells; every
/// object's line simplification is mapped to the cells it traverses and
/// objects sharing a cell are connected. Returns stats for cost
/// accounting. The returned graph is finalized (CSR, read-only).
///
/// Implementation: one contiguous (cell, vertex) arena + a flat
/// open-addressed cell table (no per-bucket vectors), with cell-pair
/// edges dedup'ed during the sweep through an open-addressed edge set.
///
/// The resolution knob reproduces Figure 13(e): too coarse creates excess
/// edges (false structures), too fine leaves the graph disconnected.
GraphBuildStats BuildGraphGridHash(std::span<const GraphInput> inputs,
                                   const Aabb& bounds, int64_t total_cells,
                                   SpatialGraph* graph);

/// The tiled builder behind BuildGraphGridHash, with the tile count
/// explicit (testing / tuning knob). The per-object DDA hashing is
/// sharded into `tiles` contiguous vertex ranges fanned out over the
/// engine worker pool, and the per-tile (cell, vertex) arenas are
/// concatenated in ascending tile order — exactly the order the serial
/// builder appends them — before the shared grouping / sweep phases
/// run. Dense grids group the arena into per-cell runs by a stable
/// radix sort over packed (cell, vertex) keys; sweeping cells in
/// ascending-index order instead of the serial builder's first-touch
/// order is unobservable, because the stats counters are
/// order-independent sums and SpatialGraph::Finalize sorts and dedups
/// the edge buffer. The graph CSR and every stats counter are therefore
/// bit-identical to BuildGraphGridHashSerial for every tile count (the
/// parallel differential tests pin this across 1/2/4/8 tiles).
GraphBuildStats BuildGraphGridHashTiled(std::span<const GraphInput> inputs,
                                        const Aabb& bounds,
                                        int64_t total_cells, uint32_t tiles,
                                        SpatialGraph* graph);

/// Reference single-threaded grid-hash implementation, kept as the
/// differential oracle the tiled builder is diffed against. No scratch
/// reuse, no tiling — the shape that is easiest to audit against the
/// paper's Figure 4 description.
GraphBuildStats BuildGraphGridHashSerial(std::span<const GraphInput> inputs,
                                         const Aabb& bounds,
                                         int64_t total_cells,
                                         SpatialGraph* graph);

/// Reference O(n^2) construction connecting objects whose line segments
/// pass within `epsilon` of each other. Used by tests as ground truth for
/// the grid-hash approximation and by the brute-force ablation.
GraphBuildStats BuildGraphBruteForce(std::span<const GraphInput> inputs,
                                     double epsilon, SpatialGraph* graph);

/// Builds the graph from explicit adjacency information (the polygon-mesh
/// case of §4.2 where the dataset already is a graph). `adjacency` holds
/// pairs of ObjectIds; objects absent from `inputs` are ignored.
GraphBuildStats BuildGraphExplicit(
    std::span<const GraphInput> inputs,
    std::span<const std::pair<ObjectId, ObjectId>> adjacency,
    SpatialGraph* graph);

}  // namespace scout

