#include "graph/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace scout {

KMeansResult KMeans(const std::vector<Vec3>& points, uint32_t k, Rng* rng,
                    uint32_t max_iterations) {
  KMeansResult result;
  const size_t n = points.size();
  if (n == 0 || k == 0) return result;
  k = std::min<uint32_t>(k, static_cast<uint32_t>(n));

  // k-means++ seeding: first center uniform, then proportional to the
  // squared distance to the nearest chosen center.
  result.centers.push_back(points[rng->NextBounded(n)]);
  std::vector<double> dist_sq(n, std::numeric_limits<double>::max());
  while (result.centers.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      dist_sq[i] = std::min(
          dist_sq[i], points[i].DistanceSquaredTo(result.centers.back()));
      total += dist_sq[i];
    }
    if (total <= 0.0) break;  // All remaining points coincide with centers.
    double target = rng->NextDouble() * total;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      target -= dist_sq[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centers.push_back(points[chosen]);
  }

  const uint32_t actual_k = static_cast<uint32_t>(result.centers.size());
  result.assignment.assign(n, 0);

  for (uint32_t iter = 0; iter < max_iterations; ++iter) {
    ++result.iterations;
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      uint32_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (uint32_t c = 0; c < actual_k; ++c) {
        const double d = points[i].DistanceSquaredTo(result.centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    std::vector<Vec3> sums(actual_k);
    std::vector<uint32_t> counts(actual_k, 0);
    for (size_t i = 0; i < n; ++i) {
      sums[result.assignment[i]] += points[i];
      ++counts[result.assignment[i]];
    }
    for (uint32_t c = 0; c < actual_k; ++c) {
      if (counts[c] > 0) {
        result.centers[c] = sums[c] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }
  return result;
}

}  // namespace scout
