#ifndef SCOUT_GRAPH_SPATIAL_GRAPH_H_
#define SCOUT_GRAPH_SPATIAL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "geom/segment.h"
#include "storage/object.h"
#include "storage/page.h"

namespace scout {

/// Dense local vertex index within a SpatialGraph.
using VertexId = uint32_t;

inline constexpr VertexId kInvalidVertexId = 0xffffffffu;

/// One vertex of the approximate structure graph: a spatial object
/// reduced to its line-segment simplification (paper §4.2, Figure 4).
struct GraphVertex {
  ObjectId object_id = 0;
  PageId page_id = kInvalidPageId;
  Segment line;
};

/// The approximate graph SCOUT builds from a query result: vertices are
/// objects, edges connect objects that hashed to a common grid cell (or
/// that are explicitly adjacent, for mesh datasets). Stored as a compact
/// adjacency list; memory usage is part of the paper's evaluation
/// (§8.2: ~24% of result size for SCOUT, ~6% for SCOUT-OPT).
class SpatialGraph {
 public:
  SpatialGraph() = default;

  /// Adds a vertex and returns its dense id.
  VertexId AddVertex(const GraphVertex& v) {
    vertices_.push_back(v);
    adjacency_.emplace_back();
    return static_cast<VertexId>(vertices_.size() - 1);
  }

  /// Adds an undirected edge. Duplicate edges may be inserted during grid
  /// hashing; call DedupEdges() once after construction.
  void AddEdge(VertexId a, VertexId b) {
    if (a == b) return;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    num_edges_ += 1;
  }

  /// Sorts adjacency lists and removes duplicate edges.
  void DedupEdges();

  size_t NumVertices() const { return vertices_.size(); }
  /// Number of undirected edges (after DedupEdges this is exact).
  size_t NumEdges() const { return num_edges_; }

  const GraphVertex& vertex(VertexId v) const { return vertices_[v]; }
  const std::vector<VertexId>& neighbors(VertexId v) const {
    return adjacency_[v];
  }

  /// Approximate heap footprint of the adjacency structure in bytes
  /// (vertices + edge endpoints), for the memory-overhead experiment.
  size_t MemoryBytes() const;

  void Clear();

 private:
  std::vector<GraphVertex> vertices_;
  std::vector<std::vector<VertexId>> adjacency_;
  size_t num_edges_ = 0;
};

/// Connected-component labeling. Returns the component id of every vertex
/// (ids are dense, in [0, *num_components)).
std::vector<uint32_t> LabelComponents(const SpatialGraph& graph,
                                      uint32_t* num_components);

}  // namespace scout

#endif  // SCOUT_GRAPH_SPATIAL_GRAPH_H_
