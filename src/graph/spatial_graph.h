#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geom/segment.h"
#include "storage/object.h"
#include "storage/page.h"

namespace scout {

/// Dense local vertex index within a SpatialGraph.
using VertexId = uint32_t;

inline constexpr VertexId kInvalidVertexId = 0xffffffffu;

/// One vertex of the approximate structure graph: a spatial object
/// reduced to its line-segment simplification (paper §4.2, Figure 4).
struct GraphVertex {
  ObjectId object_id = 0;
  PageId page_id = kInvalidPageId;
  Segment line;
};

/// The approximate graph SCOUT builds from a query result: vertices are
/// objects, edges connect objects that hashed to a common grid cell (or
/// that are explicitly adjacent, for mesh datasets).
///
/// The adjacency is stored in CSR form (an offsets array plus one flat
/// neighbor array) because the graph is built once per query and then
/// only read: construction buffers undirected edges, and Finalize()
/// compacts them into sorted, dedup'ed per-vertex neighbor runs. The
/// two-phase contract is strict: AddVertex/AddEdge only before
/// Finalize(), neighbors() only after. Memory usage is part of the
/// paper's evaluation (§8.2: ~24% of result size for SCOUT, ~6% for
/// SCOUT-OPT); MemoryBytes() reports the CSR arrays exactly.
class SpatialGraph {
 public:
  SpatialGraph() = default;

  /// Pre-sizes the vertex array (so MemoryBytes reports no growth slack).
  void ReserveVertices(size_t n) { vertices_.reserve(n); }

  /// Adds a vertex and returns its dense id. Only valid before Finalize().
  VertexId AddVertex(const GraphVertex& v) {
    assert(!finalized_);
    vertices_.push_back(v);
    return static_cast<VertexId>(vertices_.size() - 1);
  }

  /// Bulk form of AddVertex for builders: appends `n` default-constructed
  /// vertices and returns the span to fill in place (skips the per-push
  /// bookkeeping and copy). Only valid before Finalize().
  std::span<GraphVertex> AppendVertices(size_t n) {
    assert(!finalized_);
    const size_t old = vertices_.size();
    vertices_.resize(old + n);
    return std::span<GraphVertex>(vertices_.data() + old, n);
  }

  /// Buffers an undirected edge. Self-loops are ignored; duplicates are
  /// removed by Finalize(). Only valid before Finalize().
  void AddEdge(VertexId a, VertexId b) {
    assert(!finalized_);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    pending_edges_.push_back((static_cast<uint64_t>(a) << 32) | b);
  }

  /// Builds the CSR adjacency from the buffered edges: per-vertex
  /// neighbor runs, sorted ascending, duplicate edges removed. After the
  /// first call the graph is read-only; further calls are no-ops.
  void Finalize();

  bool finalized() const { return finalized_; }

  size_t NumVertices() const { return vertices_.size(); }

  /// Number of undirected edges. Exact (dedup'ed) after Finalize();
  /// before that it counts buffered edges, duplicates included.
  size_t NumEdges() const {
    return finalized_ ? num_edges_ : pending_edges_.size();
  }

  const GraphVertex& vertex(VertexId v) const { return vertices_[v]; }

  /// Neighbors of `v` in ascending order. Only valid after Finalize().
  std::span<const VertexId> neighbors(VertexId v) const {
    assert(finalized_);
    return std::span<const VertexId>(neighbors_.data() + offsets_[v],
                                     offsets_[v + 1] - offsets_[v]);
  }

  /// Heap footprint of the graph in bytes (vertices + CSR offsets +
  /// neighbor array), for the §8.2 memory-overhead experiment.
  size_t MemoryBytes() const;

  void Clear();

 private:
  std::vector<GraphVertex> vertices_;
  // Construction buffer: undirected edges packed as (min << 32) | max.
  // Finalize() releases it.
  std::vector<uint64_t> pending_edges_;
  // CSR adjacency: neighbors of v live at neighbors_[offsets_[v] ..
  // offsets_[v + 1]).
  std::vector<uint32_t> offsets_;
  std::vector<VertexId> neighbors_;
  size_t num_edges_ = 0;
  bool finalized_ = false;
};

/// Connected-component labeling. Returns the component id of every vertex
/// (ids are dense, in [0, *num_components)). Requires a finalized graph.
std::vector<uint32_t> LabelComponents(const SpatialGraph& graph,
                                      uint32_t* num_components);

}  // namespace scout

