#include "graph/spatial_graph.h"

#include <algorithm>

namespace scout {

void SpatialGraph::DedupEdges() {
  size_t directed = 0;
  for (auto& list : adjacency_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    directed += list.size();
  }
  num_edges_ = directed / 2;
}

size_t SpatialGraph::MemoryBytes() const {
  size_t bytes = vertices_.size() * sizeof(GraphVertex);
  bytes += adjacency_.size() * sizeof(std::vector<VertexId>);
  for (const auto& list : adjacency_) {
    bytes += list.capacity() * sizeof(VertexId);
  }
  return bytes;
}

void SpatialGraph::Clear() {
  vertices_.clear();
  adjacency_.clear();
  num_edges_ = 0;
}

std::vector<uint32_t> LabelComponents(const SpatialGraph& graph,
                                      uint32_t* num_components) {
  const size_t n = graph.NumVertices();
  std::vector<uint32_t> label(n, 0xffffffffu);
  uint32_t next = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (label[start] != 0xffffffffu) continue;
    const uint32_t comp = next++;
    stack.push_back(start);
    label[start] = comp;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : graph.neighbors(v)) {
        if (label[u] == 0xffffffffu) {
          label[u] = comp;
          stack.push_back(u);
        }
      }
    }
  }
  if (num_components != nullptr) *num_components = next;
  return label;
}

}  // namespace scout
