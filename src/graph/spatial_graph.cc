#include "graph/spatial_graph.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace scout {

namespace {

// Ascending sort of packed (min << 32) | max edge keys by LSD radix:
// stable byte passes over the max half then the min half give exactly
// the numeric order std::sort produces, in a handful of sequential
// streaming passes instead of comparison-sorting random data. Only the
// bytes a vertex id can occupy are passed over (ids are < num_vertices,
// and both halves span the same id range).
void RadixSortEdges(std::vector<uint64_t>* edges, size_t num_vertices) {
  const uint32_t id_bytes = std::max<uint32_t>(
      1, (std::bit_width(static_cast<uint64_t>(num_vertices - 1)) + 7) / 8);
  std::vector<uint64_t> tmp(edges->size());
  uint64_t* src = edges->data();
  uint64_t* dst = tmp.data();
  uint32_t hist[256];
  for (uint32_t p = 0; p < 2 * id_bytes; ++p) {
    const uint32_t shift = p < id_bytes ? 8 * p : 32 + 8 * (p - id_bytes);
    std::memset(hist, 0, sizeof(hist));
    for (size_t i = 0; i < edges->size(); ++i) {
      ++hist[(src[i] >> shift) & 255];
    }
    uint32_t sum = 0;
    for (int b = 0; b < 256; ++b) {
      const uint32_t c = hist[b];
      hist[b] = sum;
      sum += c;
    }
    for (size_t i = 0; i < edges->size(); ++i) {
      const uint64_t k = src[i];
      dst[hist[(k >> shift) & 255]++] = k;
    }
    std::swap(src, dst);
  }
  // 2 * id_bytes passes is even, so the data ends up back in `edges`;
  // the copy below only runs if that invariant is ever broken.
  if (src != edges->data()) {
    std::copy(src, src + edges->size(), edges->data());
  }
}

}  // namespace

void SpatialGraph::Finalize() {
  // Idempotent: a second call must not rebuild from the (now released)
  // edge buffer and silently drop the adjacency in NDEBUG builds.
  if (finalized_) return;
  const size_t n = vertices_.size();
  offsets_.assign(n + 1, 0);

  // Dedup: edges are packed (min << 32) | max, so one sort + unique over
  // the flat buffer removes parallel edges in both orientations. Tiny
  // buffers comparison-sort (identical order either way); larger ones
  // radix-sort.
  if (pending_edges_.size() < 64) {
    std::sort(pending_edges_.begin(), pending_edges_.end());
  } else {
    RadixSortEdges(&pending_edges_, n);
  }
  pending_edges_.erase(
      std::unique(pending_edges_.begin(), pending_edges_.end()),
      pending_edges_.end());
  num_edges_ = pending_edges_.size();

  // Count degrees, then prefix-sum into CSR offsets.
  for (uint64_t e : pending_edges_) {
    ++offsets_[(e >> 32) + 1];
    ++offsets_[(e & 0xffffffffu) + 1];
  }
  for (size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  neighbors_.resize(2 * num_edges_);

  // Two scatter passes over the sorted edges leave every neighbor run
  // sorted without a per-run sort: pass 1 appends each vertex's smaller
  // neighbors (for fixed max, mins ascend in the sorted order), pass 2
  // its larger neighbors (for fixed min, maxes are contiguous ascending),
  // and every pass-1 value < v < every pass-2 value.
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint64_t e : pending_edges_) {
    neighbors_[cursor[e & 0xffffffffu]++] = static_cast<VertexId>(e >> 32);
  }
  for (uint64_t e : pending_edges_) {
    neighbors_[cursor[e >> 32]++] = static_cast<VertexId>(e & 0xffffffffu);
  }

  pending_edges_.clear();
  pending_edges_.shrink_to_fit();
  finalized_ = true;
}

size_t SpatialGraph::MemoryBytes() const {
  size_t bytes = vertices_.capacity() * sizeof(GraphVertex);
  bytes += offsets_.capacity() * sizeof(uint32_t);
  bytes += neighbors_.capacity() * sizeof(VertexId);
  bytes += pending_edges_.capacity() * sizeof(uint64_t);
  return bytes;
}

void SpatialGraph::Clear() {
  vertices_.clear();
  pending_edges_.clear();
  offsets_.clear();
  neighbors_.clear();
  num_edges_ = 0;
  finalized_ = false;
}

std::vector<uint32_t> LabelComponents(const SpatialGraph& graph,
                                      uint32_t* num_components) {
  const size_t n = graph.NumVertices();
  std::vector<uint32_t> label(n, 0xffffffffu);
  uint32_t next = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (label[start] != 0xffffffffu) continue;
    const uint32_t comp = next++;
    stack.push_back(start);
    label[start] = comp;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : graph.neighbors(v)) {
        if (label[u] == 0xffffffffu) {
          label[u] = comp;
          stack.push_back(u);
        }
      }
    }
  }
  if (num_components != nullptr) *num_components = next;
  return label;
}

}  // namespace scout
