#include "graph/spatial_graph.h"

#include <algorithm>

namespace scout {

void SpatialGraph::Finalize() {
  // Idempotent: a second call must not rebuild from the (now released)
  // edge buffer and silently drop the adjacency in NDEBUG builds.
  if (finalized_) return;
  const size_t n = vertices_.size();
  offsets_.assign(n + 1, 0);

  // Dedup: edges are packed (min << 32) | max, so one sort + unique over
  // the flat buffer removes parallel edges in both orientations.
  std::sort(pending_edges_.begin(), pending_edges_.end());
  pending_edges_.erase(
      std::unique(pending_edges_.begin(), pending_edges_.end()),
      pending_edges_.end());
  num_edges_ = pending_edges_.size();

  // Count degrees, then prefix-sum into CSR offsets.
  for (uint64_t e : pending_edges_) {
    ++offsets_[(e >> 32) + 1];
    ++offsets_[(e & 0xffffffffu) + 1];
  }
  for (size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  neighbors_.resize(2 * num_edges_);

  // Two scatter passes over the sorted edges leave every neighbor run
  // sorted without a per-run sort: pass 1 appends each vertex's smaller
  // neighbors (for fixed max, mins ascend in the sorted order), pass 2
  // its larger neighbors (for fixed min, maxes are contiguous ascending),
  // and every pass-1 value < v < every pass-2 value.
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint64_t e : pending_edges_) {
    neighbors_[cursor[e & 0xffffffffu]++] = static_cast<VertexId>(e >> 32);
  }
  for (uint64_t e : pending_edges_) {
    neighbors_[cursor[e >> 32]++] = static_cast<VertexId>(e & 0xffffffffu);
  }

  pending_edges_.clear();
  pending_edges_.shrink_to_fit();
  finalized_ = true;
}

size_t SpatialGraph::MemoryBytes() const {
  size_t bytes = vertices_.capacity() * sizeof(GraphVertex);
  bytes += offsets_.capacity() * sizeof(uint32_t);
  bytes += neighbors_.capacity() * sizeof(VertexId);
  bytes += pending_edges_.capacity() * sizeof(uint64_t);
  return bytes;
}

void SpatialGraph::Clear() {
  vertices_.clear();
  pending_edges_.clear();
  offsets_.clear();
  neighbors_.clear();
  num_edges_ = 0;
  finalized_ = false;
}

std::vector<uint32_t> LabelComponents(const SpatialGraph& graph,
                                      uint32_t* num_components) {
  const size_t n = graph.NumVertices();
  std::vector<uint32_t> label(n, 0xffffffffu);
  uint32_t next = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (label[start] != 0xffffffffu) continue;
    const uint32_t comp = next++;
    stack.push_back(start);
    label[start] = comp;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : graph.neighbors(v)) {
        if (label[u] == 0xffffffffu) {
          label[u] = comp;
          stack.push_back(u);
        }
      }
    }
  }
  if (num_components != nullptr) *num_components = next;
  return label;
}

}  // namespace scout
