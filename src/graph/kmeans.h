#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/vec3.h"

namespace scout {

/// Result of a k-means clustering run.
struct KMeansResult {
  std::vector<Vec3> centers;          ///< k (or fewer) cluster centers.
  std::vector<uint32_t> assignment;   ///< Cluster of every input point.
  uint32_t iterations = 0;            ///< Lloyd iterations executed.
};

/// Lloyd's k-means over 3-D points, seeded with k-means++ style sampling.
/// SCOUT uses this to cap the number of broad-prefetch locations when the
/// candidate set is large (paper §5.2.2: "we use a k-means approach to
/// find d clusters"). Deterministic given the Rng state.
KMeansResult KMeans(const std::vector<Vec3>& points, uint32_t k, Rng* rng,
                    uint32_t max_iterations = 20);

}  // namespace scout

