#include "graph/traversal.h"

#include <algorithm>

namespace scout {

bool ComputeBoundaryCrossing(const GraphVertex& v, const Region& region,
                             ExitPoint* exit) {
  const bool a_in = region.Contains(v.line.a);
  const bool b_in = region.Contains(v.line.b);
  if (a_in == b_in) return false;
  const Vec3& inside = a_in ? v.line.a : v.line.b;
  const Vec3& outside = a_in ? v.line.b : v.line.a;
  // Bisect for the boundary crossing (works for box and frustum alike,
  // and the segments are short so a handful of iterations suffices).
  double lo = 0.0;
  double hi = 1.0;
  for (int it = 0; it < 16; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (region.Contains(Lerp(inside, outside, mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  exit->position = Lerp(inside, outside, hi);
  exit->direction = (outside - inside).Normalized();
  exit->vertex = kInvalidVertexId;
  return true;
}

TraversalStats FindExits(const SpatialGraph& graph,
                         const std::vector<uint32_t>& component_of,
                         const Region& region,
                         const std::vector<VertexId>& start_vertices,
                         std::vector<ExitPoint>* exits) {
  TraversalStats stats;
  const size_t n = graph.NumVertices();
  if (n == 0) return stats;

  std::vector<char> visited(n, 0);
  std::vector<VertexId> stack;
  if (start_vertices.empty()) {
    stack.reserve(n);
    for (VertexId v = 0; v < n; ++v) {
      visited[v] = 1;
      stack.push_back(v);
    }
  } else {
    // Seeds may contain duplicates (a vertex can match several predicted
    // entry points); push each vertex exactly once to keep the DFS linear.
    for (VertexId v : start_vertices) {
      if (!visited[v]) {
        visited[v] = 1;
        stack.push_back(v);
      }
    }
  }

  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    ++stats.vertices_visited;

    ExitPoint exit;
    if (ComputeBoundaryCrossing(graph.vertex(v), region, &exit)) {
      exit.component = component_of[v];
      exit.vertex = v;
      exits->push_back(exit);
    }
    for (VertexId u : graph.neighbors(v)) {
      ++stats.edges_traversed;
      if (!visited[u]) {
        visited[u] = 1;
        stack.push_back(u);
      }
    }
  }
  return stats;
}

void EnteringVertices(const SpatialGraph& graph, const Region& region,
                      const Aabb& source_bounds, double margin,
                      std::vector<VertexId>* out) {
  const Aabb near_source = source_bounds.Expanded(margin);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    ExitPoint crossing;
    if (!ComputeBoundaryCrossing(graph.vertex(v), region, &crossing)) {
      continue;
    }
    if (near_source.Contains(crossing.position)) out->push_back(v);
  }
}

void VerticesNearPoint(const SpatialGraph& graph, const Vec3& point,
                       double radius, std::vector<VertexId>* out) {
  const double r_sq = radius * radius;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (graph.vertex(v).line.DistanceSquaredTo(point) <= r_sq) {
      out->push_back(v);
    }
  }
}

}  // namespace scout
