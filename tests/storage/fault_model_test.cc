// FaultSchedule tests: purity (same coordinates -> same draw), seed and
// domain separation, burst persistence of read failures, outage window
// geometry, latency-spike arithmetic, and the all-zero no-op contract.

#include "storage/fault_model.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

FaultConfig AllOn(uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.read_failure_prob = 0.3;
  config.read_failure_burst_us = 2000;
  config.channel_outage_prob = 0.5;
  config.channel_outage_period_us = 100000;
  config.channel_outage_us = 25000;
  config.latency_spike_prob = 0.2;
  config.latency_spike_multiplier = 8.0;
  return config;
}

TEST(FaultScheduleTest, AllZeroConfigIsDisarmed) {
  const FaultSchedule none{FaultConfig{}};
  EXPECT_FALSE(none.Armed());
  EXPECT_FALSE(none.ReadFails(7, 12345));
  EXPECT_EQ(none.LatencySpikeExtraUs(7, 12345, 5000), 0);
  EXPECT_EQ(none.ChannelOutageEndUs(0, 12345), 0);
}

TEST(FaultScheduleTest, AnyPositiveProbabilityArms) {
  FaultConfig read_only;
  read_only.read_failure_prob = 0.01;
  EXPECT_TRUE(FaultSchedule(read_only).Armed());
  FaultConfig spike_only;
  spike_only.latency_spike_prob = 0.01;
  EXPECT_TRUE(FaultSchedule(spike_only).Armed());
  FaultConfig outage_only;
  outage_only.channel_outage_prob = 0.01;
  EXPECT_TRUE(FaultSchedule(outage_only).Armed());
  // Zero-duration outages can never fire: still disarmed.
  outage_only.channel_outage_us = 0;
  EXPECT_FALSE(FaultSchedule(outage_only).Armed());
}

TEST(FaultScheduleTest, DrawsArePureFunctionsOfCoordinates) {
  const FaultSchedule a{AllOn(42)};
  const FaultSchedule b{AllOn(42)};  // Independent instance, same seed.
  for (PageId page = 0; page < 200; ++page) {
    for (SimMicros now : {0, 999, 123456, 98765432}) {
      ASSERT_EQ(a.ReadFails(page, now), b.ReadFails(page, now));
      ASSERT_EQ(a.LatencySpikeExtraUs(page, now, 5000),
                b.LatencySpikeExtraUs(page, now, 5000));
    }
  }
  for (uint32_t channel = 0; channel < 8; ++channel) {
    for (SimMicros now : {0, 50000, 123456, 98765432}) {
      ASSERT_EQ(a.ChannelOutageEndUs(channel, now),
                b.ChannelOutageEndUs(channel, now));
    }
  }
}

TEST(FaultScheduleTest, DifferentSeedsGiveDifferentPatterns) {
  const FaultSchedule a{AllOn(1)};
  const FaultSchedule b{AllOn(2)};
  int diff = 0;
  for (PageId page = 0; page < 500; ++page) {
    if (a.ReadFails(page, 0) != b.ReadFails(page, 0)) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(FaultScheduleTest, FailureRateTracksTheConfiguredProbability) {
  const FaultSchedule s{AllOn(7)};
  int failures = 0;
  constexpr int kPages = 20000;
  for (PageId page = 0; page < kPages; ++page) {
    if (s.ReadFails(page, 0)) ++failures;
  }
  // 30% +- generous slack (deterministic, so this cannot flake).
  EXPECT_GT(failures, kPages / 5);
  EXPECT_LT(failures, kPages / 2);
}

TEST(FaultScheduleTest, ReadFailurePersistsWithinItsBurstWindow) {
  const FaultSchedule s{AllOn(11)};
  const SimMicros burst = s.config().read_failure_burst_us;
  // Find a (page, burst-window) pair that fails, then require the draw to
  // be constant across the whole window.
  for (PageId page = 0; page < 1000; ++page) {
    if (!s.ReadFails(page, 0)) continue;
    for (SimMicros t = 0; t < burst; t += burst / 8) {
      ASSERT_TRUE(s.ReadFails(page, t)) << "page " << page << " t " << t;
    }
    return;
  }
  FAIL() << "no failing page found at 30% failure rate";
}

TEST(FaultScheduleTest, OutageIsAContiguousWindowWithinItsPeriod) {
  const FaultSchedule s{AllOn(3)};
  const SimMicros period = s.config().channel_outage_period_us;
  const SimMicros duration = s.config().channel_outage_us;
  // Scan a few periods of channel 0; wherever an outage covers `now`, the
  // reported end must be consistent and the covered span exactly
  // `duration` long within one period.
  for (int w = 0; w < 20; ++w) {
    const SimMicros base = static_cast<SimMicros>(w) * period;
    SimMicros first_covered = -1;
    SimMicros end = 0;
    for (SimMicros t = base; t < base + period; t += 500) {
      const SimMicros e = s.ChannelOutageEndUs(0, t);
      if (e > 0) {
        ASSERT_GT(e, t);
        ASSERT_LE(e, base + period);
        if (first_covered < 0) {
          first_covered = t;
          end = e;
        } else {
          ASSERT_EQ(e, end);  // One outage, one end, per window.
        }
        // Exactly at the end the channel serves again (unless the end
        // coincides with the next window, which draws independently).
        if (e < base + period) ASSERT_EQ(s.ChannelOutageEndUs(0, e), 0);
      }
    }
    if (first_covered >= 0) {
      // The covered span is at most the duration (sampled at 500 µs).
      ASSERT_LE(end - first_covered, duration);
      return;
    }
  }
  FAIL() << "no outage found in 20 windows at 50% outage probability";
}

TEST(FaultScheduleTest, LatencySpikeScalesTheBaseCost) {
  const FaultSchedule s{AllOn(5)};
  for (PageId page = 0; page < 2000; ++page) {
    const SimMicros extra = s.LatencySpikeExtraUs(page, 0, 5000);
    if (extra > 0) {
      // multiplier 8.0: extra = base * 7.
      EXPECT_EQ(extra, 5000 * 7);
      // Scales with the base cost (sequential reads spike too, cheaply).
      EXPECT_EQ(s.LatencySpikeExtraUs(page, 0, 20), 20 * 7);
      return;
    }
  }
  FAIL() << "no spike found at 20% spike probability";
}

TEST(FaultScheduleTest, ConfigClampsDegenerateValues) {
  FaultConfig config;
  config.read_failure_prob = 0.5;
  config.read_failure_burst_us = 0;      // Clamped to 1.
  config.channel_outage_prob = 0.5;
  config.channel_outage_period_us = 0;   // Clamped to 1.
  config.channel_outage_us = 99;         // Clamped to the period.
  const FaultSchedule s{config};
  EXPECT_EQ(s.config().read_failure_burst_us, 1);
  EXPECT_EQ(s.config().channel_outage_period_us, 1);
  EXPECT_LE(s.config().channel_outage_us,
            s.config().channel_outage_period_us);
  // Must not divide by zero.
  (void)s.ReadFails(1, 1000);
  (void)s.ChannelOutageEndUs(0, 1000);
}

TEST(FaultScheduleTest, SessionJitterSeedsAreStableAndDistinct) {
  const uint64_t a0 = FaultSchedule::SessionJitterSeed(99, 0);
  EXPECT_EQ(a0, FaultSchedule::SessionJitterSeed(99, 0));
  EXPECT_NE(a0, FaultSchedule::SessionJitterSeed(99, 1));
  EXPECT_NE(a0, FaultSchedule::SessionJitterSeed(100, 0));
}

}  // namespace
}  // namespace scout
