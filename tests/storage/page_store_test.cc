#include "storage/page_store.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

SpatialObject MakeObject(ObjectId id, double x) {
  SpatialObject obj;
  obj.id = id;
  obj.structure_id = 0;
  obj.geom = Cylinder(Vec3(x, 0, 0), Vec3(x + 1, 0, 0), 0.5);
  return obj;
}

TEST(PageStoreTest, AppendAssignsSequentialIds) {
  PageStore store;
  for (int i = 0; i < 5; ++i) {
    StatusOr<PageId> page = store.AppendPage({MakeObject(i, i * 10.0)});
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(*page, static_cast<PageId>(i));
  }
  EXPECT_EQ(store.NumPages(), 5u);
  EXPECT_EQ(store.NumObjects(), 5u);
  EXPECT_EQ(store.TotalBytes(), 5 * kPageBytes);
}

TEST(PageStoreTest, PageBoundsCoverObjects) {
  PageStore store;
  std::vector<SpatialObject> objects = {MakeObject(0, 0.0),
                                        MakeObject(1, 100.0)};
  ASSERT_TRUE(store.AppendPage(std::move(objects)).ok());
  const Page& page = store.page(0);
  EXPECT_EQ(page.NumObjects(), 2u);
  for (const SpatialObject& obj : page.objects) {
    EXPECT_TRUE(page.bounds.Contains(obj.Bounds()));
  }
}

TEST(PageStoreTest, RejectsOverfullPage) {
  PageStore store;
  std::vector<SpatialObject> objects;
  for (size_t i = 0; i <= kPageCapacity; ++i) {
    objects.push_back(MakeObject(i, static_cast<double>(i)));
  }
  StatusOr<PageId> page = store.AppendPage(std::move(objects));
  EXPECT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.NumPages(), 0u);
}

TEST(PageStoreTest, AcceptsExactlyFullPage) {
  PageStore store;
  std::vector<SpatialObject> objects;
  for (size_t i = 0; i < kPageCapacity; ++i) {
    objects.push_back(MakeObject(i, static_cast<double>(i)));
  }
  EXPECT_TRUE(store.AppendPage(std::move(objects)).ok());
  EXPECT_EQ(store.page(0).NumObjects(), kPageCapacity);
}

TEST(PageStoreTest, PageSizeConstantsMatchPaper) {
  // 4 KB pages with a fanout of 87 objects (paper §7.1).
  EXPECT_EQ(kPageBytes, 4096u);
  EXPECT_EQ(kPageCapacity, 87u);
}

}  // namespace
}  // namespace scout
