#include "storage/cache.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(CacheTest, InsertAndContains) {
  PrefetchCache cache(10 * kPageBytes);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Insert(1));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.NumPages(), 1u);
  EXPECT_EQ(cache.size_bytes(), kPageBytes);
}

TEST(CacheTest, EvictsLeastRecentlyUsed) {
  PrefetchCache cache(3 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  cache.Insert(4);  // Evicts 1.
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(CacheTest, TouchProtectsFromEviction) {
  PrefetchCache cache(3 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  cache.Touch(1);   // 2 is now the LRU.
  cache.Insert(4);  // Evicts 2.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(CacheTest, ReinsertRefreshesLruPosition) {
  PrefetchCache cache(3 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  cache.Insert(1);  // Refresh, no growth.
  EXPECT_EQ(cache.NumPages(), 3u);
  cache.Insert(4);  // Evicts 2 (oldest untouched).
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(CacheTest, EraseRemovesPage) {
  PrefetchCache cache(3 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Erase(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.NumPages(), 1u);
  cache.Erase(99);  // Erasing an absent page is a no-op.
  EXPECT_EQ(cache.NumPages(), 1u);
}

TEST(CacheTest, ClearEmptiesEverything) {
  PrefetchCache cache(4 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Clear();
  EXPECT_EQ(cache.NumPages(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(CacheTest, FullSignal) {
  PrefetchCache cache(2 * kPageBytes);
  EXPECT_FALSE(cache.Full());
  cache.Insert(1);
  EXPECT_FALSE(cache.Full());
  cache.Insert(2);
  EXPECT_TRUE(cache.Full());
}

TEST(CacheTest, ZeroCapacityRejectsInserts) {
  PrefetchCache cache(0);
  EXPECT_TRUE(cache.Full());  // Nothing can ever fit.
  EXPECT_FALSE(cache.Insert(1));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size_bytes(), 0u);
  cache.Touch(1);  // No-ops must not crash on an unallocated cache.
  cache.Erase(1);
  cache.Clear();
  EXPECT_EQ(cache.NumPages(), 0u);
}

TEST(CacheTest, SubPageCapacityIsAlwaysFullAndRejectsInserts) {
  // A capacity below one page can never hold anything; Full() must say so
  // without underflowing (all capacity arithmetic is in whole pages).
  PrefetchCache cache(kPageBytes - 1);
  EXPECT_TRUE(cache.Full());
  EXPECT_FALSE(cache.Insert(7));
  EXPECT_FALSE(cache.Contains(7));
  EXPECT_EQ(cache.NumPages(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Touch(7);
  cache.Erase(7);
  cache.Clear();
  EXPECT_TRUE(cache.Full());
}

TEST(CacheTest, OnePageCapacityKeepsOnlyTheNewestPage) {
  PrefetchCache cache(kPageBytes);
  EXPECT_FALSE(cache.Full());
  EXPECT_TRUE(cache.Insert(1));
  EXPECT_TRUE(cache.Full());
  EXPECT_TRUE(cache.Insert(2));  // Evicts 1.
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.NumPages(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Insert(2));  // Refresh, no eviction.
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(CacheTest, OddCapacityRoundsDownToWholePages) {
  PrefetchCache cache(2 * kPageBytes + kPageBytes / 2);
  EXPECT_TRUE(cache.Insert(1));
  EXPECT_TRUE(cache.Insert(2));
  EXPECT_TRUE(cache.Full());  // 2.5 pages of capacity hold 2 pages.
  cache.Insert(3);
  EXPECT_EQ(cache.NumPages(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(CacheTest, ManyInsertionsBoundedBySize) {
  PrefetchCache cache(8 * kPageBytes);
  for (PageId p = 0; p < 1000; ++p) cache.Insert(p);
  EXPECT_EQ(cache.NumPages(), 8u);
  // The most recent 8 pages survive.
  for (PageId p = 992; p < 1000; ++p) EXPECT_TRUE(cache.Contains(p));
  EXPECT_EQ(cache.evictions(), 992u);
}

// ---------------------------------------------------------------- shared mode

TEST(CacheSharedModeTest, HitsAttributeToInsertingSession) {
  PrefetchCache cache(8 * kPageBytes);
  cache.ConfigureSharing(2);

  cache.SetActiveSession(0);
  cache.Insert(1);
  cache.Insert(2);
  cache.SetActiveSession(1);
  cache.Insert(3);

  // Session 1 hits its own page and two of session 0's prefetches
  // (constructive sharing).
  EXPECT_TRUE(cache.TouchIfPresent(3));
  EXPECT_TRUE(cache.TouchIfPresent(1));
  EXPECT_TRUE(cache.TouchIfPresent(2));
  EXPECT_FALSE(cache.TouchIfPresent(99));  // Misses attribute nothing.

  const auto& stats = cache.session_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].inserts, 2u);
  EXPECT_EQ(stats[1].inserts, 1u);
  EXPECT_EQ(stats[1].hits_own, 1u);
  EXPECT_EQ(stats[1].hits_cross, 2u);
  EXPECT_EQ(stats[0].hits_own, 0u);
  EXPECT_EQ(stats[0].hits_cross, 0u);
}

TEST(CacheSharedModeTest, ReinsertKeepsOriginalOwner) {
  PrefetchCache cache(8 * kPageBytes);
  cache.ConfigureSharing(2);
  cache.SetActiveSession(0);
  cache.Insert(7);
  cache.SetActiveSession(1);
  cache.Insert(7);  // Refresh only: ownership stays with session 0.
  EXPECT_TRUE(cache.TouchIfPresent(7));
  const auto& stats = cache.session_stats();
  EXPECT_EQ(stats[1].hits_cross, 1u);
  EXPECT_EQ(stats[1].hits_own, 0u);
  EXPECT_EQ(stats[1].inserts, 0u);  // A refresh is not a new insert.
  EXPECT_EQ(stats[0].inserts, 1u);
}

TEST(CacheSharedModeTest, EvictionContentionIsAttributedBothWays) {
  PrefetchCache cache(2 * kPageBytes);
  cache.ConfigureSharing(2);
  cache.SetActiveSession(0);
  cache.Insert(1);
  cache.Insert(2);
  cache.SetActiveSession(1);
  cache.Insert(3);  // Evicts session 0's LRU page 1.
  EXPECT_FALSE(cache.Contains(1));
  const auto& stats = cache.session_stats();
  EXPECT_EQ(stats[1].evictions_caused, 1u);
  EXPECT_EQ(stats[0].pages_evicted, 1u);
  EXPECT_EQ(stats[1].pages_evicted, 0u);
}

TEST(CacheSharedModeTest, UnattributedOpsCountNothing) {
  // Sharing configured but no active session (e.g. engine-internal
  // maintenance): operations must work and attribute to no one.
  PrefetchCache cache(4 * kPageBytes);
  cache.ConfigureSharing(2);
  cache.Insert(1);
  EXPECT_TRUE(cache.TouchIfPresent(1));
  for (const auto& s : cache.session_stats()) {
    EXPECT_EQ(s.inserts, 0u);
    EXPECT_EQ(s.hits_own, 0u);
    EXPECT_EQ(s.hits_cross, 0u);
  }
}

TEST(CacheSharedModeTest, ClearReinitializesAllSharedState) {
  // The back-to-back determinism contract: after Clear, a shared cache
  // must be indistinguishable from a freshly configured one — stats
  // zeroed, active session detached, epoch advanced.
  PrefetchCache cache(2 * kPageBytes);
  cache.ConfigureSharing(2);
  const uint64_t epoch0 = cache.epoch();
  cache.SetActiveSession(0);
  cache.Insert(1);
  cache.Insert(2);
  cache.SetActiveSession(1);
  cache.Insert(3);              // Eviction: all counter kinds non-zero.
  cache.TouchIfPresent(2);
  cache.Clear();

  EXPECT_EQ(cache.epoch(), epoch0 + 1);
  ASSERT_EQ(cache.session_stats().size(), 2u);  // Sharing stays enabled.
  for (const auto& s : cache.session_stats()) {
    EXPECT_EQ(s.inserts, 0u);
    EXPECT_EQ(s.hits_own, 0u);
    EXPECT_EQ(s.hits_cross, 0u);
    EXPECT_EQ(s.evictions_caused, 0u);
    EXPECT_EQ(s.pages_evicted, 0u);
  }
  // The active session was detached: new inserts attribute to no one.
  cache.Insert(9);
  EXPECT_EQ(cache.session_stats()[0].inserts, 0u);
  EXPECT_EQ(cache.session_stats()[1].inserts, 0u);

  // A second identical round over the cleared cache produces identical
  // attribution (bit-identical back-to-back sequences).
  cache.Clear();
  cache.SetActiveSession(0);
  cache.Insert(1);
  cache.Insert(2);
  cache.SetActiveSession(1);
  cache.Insert(3);
  cache.TouchIfPresent(2);
  EXPECT_EQ(cache.session_stats()[1].evictions_caused, 1u);
  EXPECT_EQ(cache.session_stats()[0].pages_evicted, 1u);
  EXPECT_EQ(cache.session_stats()[1].hits_cross, 1u);
}

TEST(CacheSharedModeTest, EpochAdvancesOnEveryClearEvenWhenEmpty) {
  PrefetchCache cache(4 * kPageBytes);
  const uint64_t epoch0 = cache.epoch();
  cache.Clear();  // Never-used cache: still a new generation.
  cache.Clear();
  EXPECT_EQ(cache.epoch(), epoch0 + 2);
}

TEST(CacheSharedModeTest, SessionsReattachCleanlyAfterMidExperimentClear) {
  // A Clear in the middle of a serving run must move the epoch and the
  // per-session counters TOGETHER: a session that was attached before
  // the clear cannot leak stale identity into the new generation.
  PrefetchCache cache(2 * kPageBytes);
  cache.ConfigureSharing(2);
  cache.SetActiveSession(0);
  cache.Insert(1);
  const uint64_t epoch_before = cache.epoch();
  cache.Clear();
  EXPECT_EQ(cache.epoch(), epoch_before + 1);
  // The clear detached attribution: an insert before re-attaching is
  // unowned rather than charged to the pre-clear session.
  cache.Insert(2);
  EXPECT_EQ(cache.session_stats()[0].inserts, 0u);
  // Re-attaching resumes attribution against the zeroed counters.
  cache.SetActiveSession(0);
  cache.Insert(3);
  EXPECT_EQ(cache.session_stats()[0].inserts, 1u);
  EXPECT_EQ(cache.session_stats()[0].pages_evicted, 0u);
}

TEST(CacheSharedModeDeathTest, NeverRegisteredSessionIsRejected) {
  PrefetchCache cache(4 * kPageBytes);
  cache.ConfigureSharing(2);
  // Registered ids and the detach sentinel are accepted.
  cache.SetActiveSession(1);
  EXPECT_EQ(cache.active_session(), 1u);
  cache.SetActiveSession(PrefetchCache::kNoSession);
  EXPECT_EQ(cache.active_session(), PrefetchCache::kNoSession);
  // A never-registered id is a caller bug: debug builds assert instead
  // of silently mis-attributing the session's inserts and hits.
  EXPECT_DEBUG_DEATH(cache.SetActiveSession(2), "session");
#ifdef NDEBUG
  // Release builds detach attribution rather than indexing out of range.
  cache.SetActiveSession(7);
  EXPECT_EQ(cache.active_session(), PrefetchCache::kNoSession);
  cache.Insert(1);
  EXPECT_EQ(cache.session_stats()[0].inserts, 0u);
  EXPECT_EQ(cache.session_stats()[1].inserts, 0u);
#endif
}

}  // namespace
}  // namespace scout
