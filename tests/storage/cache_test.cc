#include "storage/cache.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(CacheTest, InsertAndContains) {
  PrefetchCache cache(10 * kPageBytes);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Insert(1));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.NumPages(), 1u);
  EXPECT_EQ(cache.size_bytes(), kPageBytes);
}

TEST(CacheTest, EvictsLeastRecentlyUsed) {
  PrefetchCache cache(3 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  cache.Insert(4);  // Evicts 1.
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(CacheTest, TouchProtectsFromEviction) {
  PrefetchCache cache(3 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  cache.Touch(1);   // 2 is now the LRU.
  cache.Insert(4);  // Evicts 2.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(CacheTest, ReinsertRefreshesLruPosition) {
  PrefetchCache cache(3 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  cache.Insert(1);  // Refresh, no growth.
  EXPECT_EQ(cache.NumPages(), 3u);
  cache.Insert(4);  // Evicts 2 (oldest untouched).
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(CacheTest, EraseRemovesPage) {
  PrefetchCache cache(3 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Erase(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.NumPages(), 1u);
  cache.Erase(99);  // Erasing an absent page is a no-op.
  EXPECT_EQ(cache.NumPages(), 1u);
}

TEST(CacheTest, ClearEmptiesEverything) {
  PrefetchCache cache(4 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Clear();
  EXPECT_EQ(cache.NumPages(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(CacheTest, FullSignal) {
  PrefetchCache cache(2 * kPageBytes);
  EXPECT_FALSE(cache.Full());
  cache.Insert(1);
  EXPECT_FALSE(cache.Full());
  cache.Insert(2);
  EXPECT_TRUE(cache.Full());
}

TEST(CacheTest, ZeroCapacityRejectsInserts) {
  PrefetchCache cache(0);
  EXPECT_TRUE(cache.Full());  // Nothing can ever fit.
  EXPECT_FALSE(cache.Insert(1));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size_bytes(), 0u);
  cache.Touch(1);  // No-ops must not crash on an unallocated cache.
  cache.Erase(1);
  cache.Clear();
  EXPECT_EQ(cache.NumPages(), 0u);
}

TEST(CacheTest, SubPageCapacityIsAlwaysFullAndRejectsInserts) {
  // A capacity below one page can never hold anything; Full() must say so
  // without underflowing (all capacity arithmetic is in whole pages).
  PrefetchCache cache(kPageBytes - 1);
  EXPECT_TRUE(cache.Full());
  EXPECT_FALSE(cache.Insert(7));
  EXPECT_FALSE(cache.Contains(7));
  EXPECT_EQ(cache.NumPages(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Touch(7);
  cache.Erase(7);
  cache.Clear();
  EXPECT_TRUE(cache.Full());
}

TEST(CacheTest, OnePageCapacityKeepsOnlyTheNewestPage) {
  PrefetchCache cache(kPageBytes);
  EXPECT_FALSE(cache.Full());
  EXPECT_TRUE(cache.Insert(1));
  EXPECT_TRUE(cache.Full());
  EXPECT_TRUE(cache.Insert(2));  // Evicts 1.
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.NumPages(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Insert(2));  // Refresh, no eviction.
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(CacheTest, OddCapacityRoundsDownToWholePages) {
  PrefetchCache cache(2 * kPageBytes + kPageBytes / 2);
  EXPECT_TRUE(cache.Insert(1));
  EXPECT_TRUE(cache.Insert(2));
  EXPECT_TRUE(cache.Full());  // 2.5 pages of capacity hold 2 pages.
  cache.Insert(3);
  EXPECT_EQ(cache.NumPages(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(CacheTest, ManyInsertionsBoundedBySize) {
  PrefetchCache cache(8 * kPageBytes);
  for (PageId p = 0; p < 1000; ++p) cache.Insert(p);
  EXPECT_EQ(cache.NumPages(), 8u);
  // The most recent 8 pages survive.
  for (PageId p = 992; p < 1000; ++p) EXPECT_TRUE(cache.Contains(p));
  EXPECT_EQ(cache.evictions(), 992u);
}

}  // namespace
}  // namespace scout
