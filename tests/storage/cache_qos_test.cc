// Quota-segmented (QoS) eviction tests for the shared PrefetchCache: the
// capacity split, the self-eviction rule, peer protection, the
// unattributed pseudo-group, the victim preview — and a randomized
// property test pinning the occupancy invariants under interleavings.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "prefetch/cost_model.h"
#include "storage/cache.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(CacheQosTest, QuotaSplitDistributesRemainderToLowestIds) {
  // 10 pages over 3 sessions: 10/3 = 3 each, remainder 1 to session 0.
  PrefetchCache cache(10 * kPageBytes);
  cache.ConfigureSharing(3, /*quota_eviction=*/true);
  EXPECT_TRUE(cache.quota_eviction());
  EXPECT_EQ(cache.session_quota(0), 4u);
  EXPECT_EQ(cache.session_quota(1), 3u);
  EXPECT_EQ(cache.session_quota(2), 3u);
  // Quotas sum exactly to the capacity: a full cache always has a group
  // at or over quota, which is what makes under-quota sessions safe.
  EXPECT_EQ(cache.session_quota(0) + cache.session_quota(1) +
                cache.session_quota(2),
            10u);
}

TEST(CacheQosTest, QuotaEvictionOffKeepsGlobalLru) {
  PrefetchCache cache(4 * kPageBytes);
  cache.ConfigureSharing(2, /*quota_eviction=*/false);
  EXPECT_FALSE(cache.quota_eviction());
  EXPECT_EQ(cache.session_quota(0), 0u);
  EXPECT_EQ(cache.session_occupancy(0), 0u);
}

TEST(CacheQosTest, SessionAtQuotaEvictsItsOwnLruPage) {
  PrefetchCache cache(4 * kPageBytes);
  cache.ConfigureSharing(2, /*quota_eviction=*/true);  // Quota 2 each.
  cache.SetActiveSession(0);
  cache.Insert(1);
  cache.Insert(2);
  cache.SetActiveSession(1);
  cache.Insert(3);
  cache.Insert(4);

  // Session 0 is at quota: its next insert evicts its OWN LRU page (1),
  // never session 1's pages — under global LRU the victim would also be
  // page 1 here, so push session 0's pages to the global LRU tail first.
  cache.TouchIfPresent(3);
  cache.TouchIfPresent(4);  // Global LRU order is now 1, 2, 3, 4.
  cache.SetActiveSession(0);
  cache.Insert(5);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_TRUE(cache.Contains(5));
  EXPECT_EQ(cache.session_occupancy(0), 2u);
  EXPECT_EQ(cache.session_occupancy(1), 2u);
  // Self-eviction is attributed both ways to the same session.
  EXPECT_EQ(cache.session_stats()[0].evictions_caused, 1u);
  EXPECT_EQ(cache.session_stats()[0].pages_evicted, 1u);
  EXPECT_EQ(cache.session_stats()[1].pages_evicted, 0u);
}

TEST(CacheQosTest, UnderQuotaSessionEvictsTheMostOverQuotaGroup) {
  PrefetchCache cache(4 * kPageBytes);
  cache.ConfigureSharing(2, /*quota_eviction=*/true);  // Quota 2 each.
  // Session 0 overfills while the cache has room (occupancy may exceed
  // quota as long as nothing needs evicting).
  cache.SetActiveSession(0);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  cache.Insert(4);
  EXPECT_EQ(cache.session_occupancy(0), 4u);

  // Session 1 is under quota: it reclaims from the over-quota group
  // rather than evicting its own (nonexistent) pages.
  cache.SetActiveSession(1);
  cache.Insert(5);
  EXPECT_FALSE(cache.Contains(1));  // Session 0's LRU page.
  EXPECT_EQ(cache.session_occupancy(0), 3u);
  EXPECT_EQ(cache.session_occupancy(1), 1u);
  EXPECT_EQ(cache.session_stats()[1].evictions_caused, 1u);
  EXPECT_EQ(cache.session_stats()[0].pages_evicted, 1u);
}

TEST(CacheQosTest, SessionExactlyAtQuotaNeverLosesToAPeer) {
  PrefetchCache cache(4 * kPageBytes);
  cache.ConfigureSharing(2, /*quota_eviction=*/true);  // Quota 2 each.
  cache.SetActiveSession(0);
  cache.Insert(1);
  cache.Insert(2);
  cache.SetActiveSession(1);
  cache.Insert(3);
  cache.Insert(4);
  // Both sessions sit exactly at quota. Session 1 keeps inserting: every
  // eviction is a self-eviction; session 0's pages are untouchable even
  // though page 1 is the global LRU victim.
  for (PageId p = 5; p < 10; ++p) cache.Insert(p);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.session_occupancy(0), 2u);
  EXPECT_EQ(cache.session_occupancy(1), 2u);
  EXPECT_EQ(cache.session_stats()[0].pages_evicted, 0u);
  EXPECT_EQ(cache.session_stats()[1].pages_evicted, 5u);
}

TEST(CacheQosTest, UnattributedPagesFormAZeroQuotaGroup) {
  PrefetchCache cache(4 * kPageBytes);
  cache.ConfigureSharing(2, /*quota_eviction=*/true);
  // No active session: pages land in the unattributed pseudo-group.
  cache.Insert(1);
  cache.Insert(2);
  EXPECT_EQ(cache.unattributed_occupancy(), 2u);

  cache.SetActiveSession(0);
  cache.Insert(3);
  cache.Insert(4);  // Full. Session 0 exactly at quota.

  // Session 1 is under quota; the pseudo-group (quota 0, occupancy 2) is
  // the only over-quota group, so it pays.
  cache.SetActiveSession(1);
  cache.Insert(5);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.unattributed_occupancy(), 1u);
  EXPECT_EQ(cache.session_occupancy(0), 2u);
  EXPECT_EQ(cache.session_occupancy(1), 1u);
}

TEST(CacheQosTest, ConfigureSharingAdoptsPreexistingPagesAsUnattributed) {
  // Enabling quota mode on a warm cache rebuilds the owner chains from
  // the live LRU order instead of forgetting resident pages.
  PrefetchCache cache(4 * kPageBytes);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  cache.ConfigureSharing(2, /*quota_eviction=*/true);
  EXPECT_EQ(cache.unattributed_occupancy(), 3u);
  EXPECT_EQ(cache.NumPages(), 3u);
  // The adopted pages keep their LRU order within the pseudo-group: an
  // unattributed insert on a full cache self-evicts the oldest (1).
  cache.Insert(4);
  cache.Insert(5);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.unattributed_occupancy(), 4u);
}

TEST(CacheQosTest, ClearKeepsQuotasAndZeroesOccupancy) {
  PrefetchCache cache(4 * kPageBytes);
  cache.ConfigureSharing(2, /*quota_eviction=*/true);
  cache.SetActiveSession(0);
  cache.Insert(1);
  cache.Insert(2);
  cache.Clear();
  EXPECT_TRUE(cache.quota_eviction());
  EXPECT_EQ(cache.session_quota(0), 2u);
  EXPECT_EQ(cache.session_quota(1), 2u);
  EXPECT_EQ(cache.session_occupancy(0), 0u);
  EXPECT_EQ(cache.unattributed_occupancy(), 0u);
}

TEST(CacheQosTest, ClearAndConfigureSharingResetAdmissionInputs) {
  // Priced admission is stateless — its warmup and efficiency signals
  // are the cache's per-session stats and eviction counter. Both resets
  // must zero them, or one run's pressure estimate leaks into the next
  // run's admission decisions.
  PrefetchCache cache(4 * kPageBytes);
  cache.ConfigureSharing(2, /*quota_eviction=*/true);
  cache.SetActiveSession(0);
  const PrefetchAdmission admission;
  // Push session 0 well past warmup with zero own-hits: against any
  // efficient victim its inserts are now rejected.
  for (PageId p = 0; p < 100; ++p) cache.Insert(p);
  {
    const CacheSessionStats& s0 = cache.session_stats()[0];
    ASSERT_GE(s0.inserts, admission.warmup_inserts);
    EXPECT_FALSE(admission.Admit(s0.inserts, s0.hits_own,
                                 /*victim_inserts=*/10,
                                 /*victim_hits_own=*/10, 5000));
  }
  EXPECT_GT(cache.evictions(), 0u);

  cache.Clear();
  // Cleared cache = fresh cache: warmup restarts, eviction count gone.
  EXPECT_EQ(cache.session_stats()[0].inserts, 0u);
  EXPECT_EQ(cache.session_stats()[0].hits_own, 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(admission.Admit(cache.session_stats()[0].inserts,
                              cache.session_stats()[0].hits_own, 10, 10,
                              5000));

  // ConfigureSharing (re-sharding for a new session count) resets too.
  cache.SetActiveSession(0);
  for (PageId p = 0; p < 100; ++p) cache.Insert(p);
  ASSERT_GT(cache.session_stats()[0].inserts, 0u);
  cache.ConfigureSharing(2, /*quota_eviction=*/true);
  EXPECT_EQ(cache.session_stats()[0].inserts, 0u);
  EXPECT_EQ(cache.session_stats()[0].pages_evicted, 0u);
}

TEST(CacheQosTest, PeekVictimOwnerPreviewsTheEvictionPolicy) {
  PrefetchCache cache(4 * kPageBytes);
  cache.ConfigureSharing(2, /*quota_eviction=*/true);
  EXPECT_EQ(cache.PeekVictimOwner(), PrefetchCache::kNoSession);  // Not full.

  cache.SetActiveSession(0);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);  // Session 0 over quota.
  cache.SetActiveSession(1);
  cache.Insert(4);  // Full; session 1 under quota.

  // Under-quota session 1 would evict from over-quota session 0.
  EXPECT_EQ(cache.PeekVictimOwner(), 0u);
  // Session 0 (over quota) would self-evict.
  cache.SetActiveSession(0);
  EXPECT_EQ(cache.PeekVictimOwner(), 0u);
  // Without quota eviction, the preview is the global LRU tail's owner.
  PrefetchCache lru(2 * kPageBytes);
  lru.ConfigureSharing(2, /*quota_eviction=*/false);
  lru.SetActiveSession(0);
  lru.Insert(1);
  lru.Insert(2);
  lru.SetActiveSession(1);
  EXPECT_EQ(lru.PeekVictimOwner(), 0u);
}

TEST(CacheQosTest, SingleSessionQuotaModeMatchesGlobalLru) {
  // With one session owning every insert, the quota equals the whole
  // capacity, so self-eviction degenerates to global LRU: both caches
  // must agree on every resident page and eviction count.
  PrefetchCache qos(8 * kPageBytes);
  qos.ConfigureSharing(1, /*quota_eviction=*/true);
  qos.SetActiveSession(0);
  PrefetchCache lru(8 * kPageBytes);

  Rng rng(42);
  for (int step = 0; step < 2000; ++step) {
    const PageId page = static_cast<PageId>(rng.NextUint64() % 24);
    if (rng.NextUint64() % 4 == 0) {
      qos.TouchIfPresent(page);
      lru.TouchIfPresent(page);
    } else {
      qos.Insert(page);
      lru.Insert(page);
    }
    ASSERT_EQ(qos.NumPages(), lru.NumPages());
    ASSERT_EQ(qos.evictions(), lru.evictions());
    for (PageId p = 0; p < 24; ++p) {
      ASSERT_EQ(qos.Contains(p), lru.Contains(p)) << "page " << p;
    }
  }
}

// ---------------------------------------------------------------- property

/// Occupancy of every owner group (sessions + the pseudo-group last).
std::vector<uint64_t> Occupancies(const PrefetchCache& cache, uint32_t n) {
  std::vector<uint64_t> occ(n + 1);
  for (uint32_t s = 0; s < n; ++s) occ[s] = cache.session_occupancy(s);
  occ[n] = cache.unattributed_occupancy();
  return occ;
}

TEST(CacheQosTest, QuotaInvariantsHoldUnderRandomizedInterleavings) {
  constexpr uint32_t kSessions = 4;
  constexpr uint64_t kCapacityPages = 16;
  constexpr PageId kUniverse = 48;

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    PrefetchCache cache(kCapacityPages * kPageBytes);
    cache.ConfigureSharing(kSessions, /*quota_eviction=*/true);
    std::vector<uint64_t> quota(kSessions + 1, 0);
    for (uint32_t s = 0; s < kSessions; ++s) quota[s] = cache.session_quota(s);

    Rng rng(seed);
    for (int step = 0; step < 4000; ++step) {
      // Pick an actor: sessions 0..3, occasionally detached (pseudo).
      const uint32_t actor = static_cast<uint32_t>(rng.NextUint64() % 5);
      const uint32_t inserter_group = actor;  // 4 == pseudo-group.
      cache.SetActiveSession(actor < kSessions ? actor
                                               : PrefetchCache::kNoSession);
      const PageId page = static_cast<PageId>(rng.NextUint64() % kUniverse);
      const uint64_t op = rng.NextUint64() % 16;

      if (op < 2) {
        cache.TouchIfPresent(page);
      } else if (op < 3) {
        cache.Erase(page);
      } else {
        const bool fresh = !cache.Contains(page);
        const bool full = cache.NumPages() == kCapacityPages;
        const std::vector<uint64_t> before = Occupancies(cache, kSessions);
        const uint32_t peek = cache.PeekVictimOwner();
        const uint64_t evictions_before = cache.evictions();

        ASSERT_TRUE(cache.Insert(page));

        const std::vector<uint64_t> after = Occupancies(cache, kSessions);
        if (fresh && full) {
          // An insert into a full cache evicted exactly one page.
          ASSERT_EQ(cache.evictions(), evictions_before + 1);
          // Identify the victim group from the occupancy deltas: the
          // inserter gained a page, the victim lost one.
          uint32_t victim_group = inserter_group;
          for (uint32_t g = 0; g <= kSessions; ++g) {
            if (g == inserter_group) continue;
            if (after[g] + 1 == before[g]) victim_group = g;
          }
          // The preview promised exactly this victim.
          const uint32_t promised = victim_group < kSessions
                                        ? victim_group
                                        : PrefetchCache::kNoSession;
          ASSERT_EQ(peek, promised);
          // Protection: a group STRICTLY under quota never pays for
          // someone else's insert. (A victim exactly at quota can occur
          // only on the global-LRU fallback: an unattributed insert
          // while every group sits exactly at quota — then someone at
          // quota must pay, picked by global recency.)
          if (victim_group != inserter_group) {
            ASSERT_GE(before[victim_group], quota[victim_group]);
          }
          // Self-eviction: an inserter at or over quota with pages of
          // its own always takes the hit itself.
          if (before[inserter_group] >= quota[inserter_group] &&
              before[inserter_group] > 0) {
            ASSERT_EQ(victim_group, inserter_group);
            ASSERT_EQ(after[inserter_group], before[inserter_group]);
          }
        } else if (fresh) {
          ASSERT_EQ(cache.evictions(), evictions_before);
          ASSERT_EQ(after[inserter_group], before[inserter_group] + 1);
        }
      }

      // Global accounting: group occupancies partition the resident set
      // and never exceed capacity.
      const std::vector<uint64_t> occ = Occupancies(cache, kSessions);
      uint64_t sum = 0;
      for (const uint64_t o : occ) sum += o;
      ASSERT_EQ(sum, cache.NumPages());
      ASSERT_LE(cache.NumPages(), kCapacityPages);
    }
  }
}

}  // namespace
}  // namespace scout
