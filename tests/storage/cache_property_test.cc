/// Property test for the slab-based PrefetchCache: randomized
/// Insert/Touch/Erase/Clear interleavings are checked step-by-step
/// against a naive reference LRU (std::list + linear search). After
/// every operation the two must agree on contents, size, eviction count
/// and Full(), and the byte-size invariant must hold.

#include <algorithm>
#include <list>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/cache.h"

namespace scout {
namespace {

/// Minimal, obviously-correct LRU with a byte capacity (mirrors the
/// PrefetchCache contract; front of the list = most recent).
class ReferenceLru {
 public:
  explicit ReferenceLru(uint64_t capacity_bytes)
      : capacity_pages_(capacity_bytes / kPageBytes) {}

  bool Contains(PageId page) const {
    return std::find(lru_.begin(), lru_.end(), page) != lru_.end();
  }

  bool Insert(PageId page) {
    if (capacity_pages_ == 0) return false;
    auto it = std::find(lru_.begin(), lru_.end(), page);
    if (it != lru_.end()) {
      lru_.splice(lru_.begin(), lru_, it);
      return true;
    }
    if (lru_.size() >= capacity_pages_) {
      lru_.pop_back();
      ++evictions_;
    }
    lru_.push_front(page);
    return true;
  }

  void Touch(PageId page) {
    auto it = std::find(lru_.begin(), lru_.end(), page);
    if (it != lru_.end()) lru_.splice(lru_.begin(), lru_, it);
  }

  void Erase(PageId page) {
    auto it = std::find(lru_.begin(), lru_.end(), page);
    if (it != lru_.end()) lru_.erase(it);
  }

  void Clear() {
    // Mirrors PrefetchCache::Clear: a cleared cache is indistinguishable
    // from a fresh one, eviction counter included.
    lru_.clear();
    evictions_ = 0;
  }

  size_t NumPages() const { return lru_.size(); }
  uint64_t evictions() const { return evictions_; }
  bool Full() const { return lru_.size() >= capacity_pages_; }
  const std::list<PageId>& pages() const { return lru_; }

 private:
  uint64_t capacity_pages_;
  std::list<PageId> lru_;
  uint64_t evictions_ = 0;
};

void CheckAgreement(const PrefetchCache& cache, const ReferenceLru& ref,
                    uint64_t capacity_bytes, PageId max_page) {
  ASSERT_EQ(cache.NumPages(), ref.NumPages());
  ASSERT_EQ(cache.evictions(), ref.evictions());
  ASSERT_EQ(cache.Full(), ref.Full());
  ASSERT_EQ(cache.size_bytes(), ref.NumPages() * kPageBytes);
  ASSERT_LE(cache.size_bytes(), capacity_bytes);
  // Same contents: every reference page is cached; counts match, so the
  // sets are equal. Probing the full page universe also catches stale
  // entries the reference no longer holds.
  for (PageId p = 0; p <= max_page; ++p) {
    ASSERT_EQ(cache.Contains(p), ref.Contains(p)) << "page " << p;
  }
}

class CachePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CachePropertyTest, RandomInterleavingsMatchReferenceLru) {
  // Capacities include zero, sub-page, one-page and odd-remainder sizes.
  const uint64_t capacity_bytes = GetParam();
  PrefetchCache cache(capacity_bytes);
  ReferenceLru ref(capacity_bytes);

  constexpr PageId kMaxPage = 96;  // Working set ~1.5x the largest capacity.
  Rng rng(capacity_bytes ^ 0xc0ffee);
  constexpr int kOps = 4000;
  for (int op = 0; op < kOps; ++op) {
    const PageId page = static_cast<PageId>(rng.NextBounded(kMaxPage + 1));
    const uint64_t kind = rng.NextBounded(100);
    if (kind < 55) {
      ASSERT_EQ(cache.Insert(page), ref.Insert(page));
    } else if (kind < 80) {
      cache.Touch(page);
      ref.Touch(page);
    } else if (kind < 97) {
      cache.Erase(page);
      ref.Erase(page);
    } else {
      cache.Clear();
      ref.Clear();
    }
    // Invariant after every step: never over capacity.
    ASSERT_LE(cache.size_bytes(),
              capacity_bytes - capacity_bytes % kPageBytes);
    if (op % 7 == 0 || op + 1 == kOps) {
      CheckAgreement(cache, ref, capacity_bytes, kMaxPage);
    }
  }
  CheckAgreement(cache, ref, capacity_bytes, kMaxPage);

  // Same *eviction order* from here: overflow with fresh pages one at a
  // time and require identical victims (observed through contents).
  for (PageId p = 1000; p < 1000 + 2 * kMaxPage; ++p) {
    ASSERT_EQ(cache.Insert(p), ref.Insert(p));
    for (PageId probe = 0; probe <= kMaxPage; ++probe) {
      ASSERT_EQ(cache.Contains(probe), ref.Contains(probe));
    }
  }
  ASSERT_EQ(cache.evictions(), ref.evictions());
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, CachePropertyTest,
    ::testing::Values(0ull, kPageBytes / 2, kPageBytes, kPageBytes + 1,
                      3 * kPageBytes, 7 * kPageBytes + 123,
                      64 * kPageBytes));

}  // namespace
}  // namespace scout
