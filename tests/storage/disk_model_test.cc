#include "storage/disk_model.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(DiskModelTest, FirstReadIsRandom) {
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  EXPECT_EQ(disk.ReadPage(10), 5000);
  EXPECT_EQ(clock.now(), 5000);
  EXPECT_EQ(disk.random_reads(), 1u);
  EXPECT_EQ(disk.sequential_reads(), 0u);
}

TEST(DiskModelTest, AdjacentPageIsSequential) {
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  disk.ReadPage(10);
  EXPECT_EQ(disk.ReadPage(11), 20);
  EXPECT_EQ(disk.ReadPage(12), 20);
  EXPECT_EQ(disk.sequential_reads(), 2u);
  EXPECT_EQ(clock.now(), 5040);
}

TEST(DiskModelTest, BackwardOrSkipIsRandom) {
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  disk.ReadPage(10);
  EXPECT_EQ(disk.ReadPage(9), 5000);    // Backward.
  EXPECT_EQ(disk.ReadPage(11), 5000);   // Skip (9 -> 11).
  EXPECT_EQ(disk.ReadPage(11), 5000);   // Same page again: no movement.
  EXPECT_EQ(disk.random_reads(), 4u);
}

TEST(DiskModelTest, PeekDoesNotMoveHead) {
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  disk.ReadPage(10);
  EXPECT_EQ(disk.PeekCost(11), 20);
  EXPECT_EQ(disk.PeekCost(50), 5000);
  EXPECT_EQ(disk.PeekCost(11), 20);  // Still sequential: peek is pure.
  EXPECT_EQ(clock.now(), 5000);
}

TEST(DiskModelTest, EstimateColdReadCost) {
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  EXPECT_EQ(disk.EstimateColdReadCost(0), 0);
  EXPECT_EQ(disk.EstimateColdReadCost(1), 5000);
  EXPECT_EQ(disk.EstimateColdReadCost(10), 5000 + 9 * 20);
}

TEST(DiskModelTest, EstimateColdReadCostOfZeroPagesIsZero) {
  // The n == 0 edge must short-circuit BEFORE the (n - 1) arithmetic:
  // without the guard, the size_t subtraction wraps and the estimate
  // explodes, which would make window sizing refuse every prefetch.
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  EXPECT_EQ(disk.EstimateColdReadCost(0), 0);
  // The estimate is pure: no head movement, no counters, no clock.
  EXPECT_EQ(disk.pages_read(), 0u);
  EXPECT_EQ(clock.now(), 0);
  // And the edge is config-independent.
  DiskModel other(DiskConfig{123456, 789}, &clock);
  EXPECT_EQ(other.EstimateColdReadCost(0), 0);
}

TEST(DiskModelTest, EstimateColdReadCostOfOnePageIsOneRandomRead) {
  // n == 1 charges exactly the positioning cost: one random read and
  // zero sequential transfers (the (n - 1) term must vanish).
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  EXPECT_EQ(disk.EstimateColdReadCost(1), 5000);
  DiskModel other(DiskConfig{777, 33}, &clock);
  EXPECT_EQ(other.EstimateColdReadCost(1), 777);
}

TEST(DiskModelTest, ResetForgetsPositionAndCounters) {
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  disk.ReadPage(10);
  disk.ReadPage(11);
  disk.Reset();
  EXPECT_EQ(disk.pages_read(), 0u);
  EXPECT_EQ(disk.total_read_time(), 0);
  // After reset, even page 12 (adjacent to the forgotten head) is random.
  EXPECT_EQ(disk.ReadPage(12), 5000);
}

TEST(DiskModelTest, TotalReadTimeAccumulates) {
  SimClock clock;
  DiskModel disk(DiskConfig{100, 1}, &clock);
  disk.ReadPage(0);
  disk.ReadPage(1);
  disk.ReadPage(2);
  disk.ReadPage(9);
  EXPECT_EQ(disk.total_read_time(), 100 + 1 + 1 + 100);
  EXPECT_EQ(disk.pages_read(), 4u);
}

TEST(DiskModelTest, TryReadPageWithoutScheduleMatchesReadPage) {
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  const DiskModel::ReadResult r = disk.TryReadPage(10);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.cost_us, 5000);
  EXPECT_EQ(disk.TryReadPage(11).cost_us, 20);
  EXPECT_EQ(disk.failed_reads(), 0u);
}

TEST(DiskModelTest, TransientFailureChargesTheAttemptAndMovesTheHead) {
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  FaultConfig config;
  config.seed = 17;
  config.read_failure_prob = 1.0;  // Every read fails.
  const FaultSchedule faults{config};
  disk.AttachFaults(&faults);
  const DiskModel::ReadResult r = disk.TryReadPage(10);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  // The attempt occupies the disk like a good read: cost charged, clock
  // advanced, head moved, counters bumped.
  EXPECT_EQ(r.cost_us, 5000);
  EXPECT_EQ(clock.now(), 5000);
  EXPECT_EQ(disk.pages_read(), 1u);
  EXPECT_EQ(disk.failed_reads(), 1u);
  EXPECT_EQ(disk.PeekCost(11), 20);  // Head is at 10.
  // The infallible wrapper still charges failures silently.
  EXPECT_EQ(disk.ReadPage(50), 5000);
  EXPECT_EQ(disk.failed_reads(), 2u);
  disk.Reset();
  EXPECT_EQ(disk.failed_reads(), 0u);
}

TEST(DiskModelTest, LatencySpikeInflatesTheChargedCost) {
  SimClock clock;
  DiskModel disk(DiskConfig{5000, 20}, &clock);
  FaultConfig config;
  config.seed = 17;
  config.latency_spike_prob = 1.0;  // Every read spikes.
  config.latency_spike_multiplier = 8.0;
  const FaultSchedule faults{config};
  disk.AttachFaults(&faults);
  const DiskModel::ReadResult r = disk.TryReadPage(10);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.cost_us, 8 * 5000);
  EXPECT_EQ(clock.now(), 8 * 5000);
  EXPECT_EQ(disk.total_read_time(), 8 * 5000);
}

TEST(DiskModelTest, DisarmedScheduleIsBitIdenticalToNoSchedule) {
  SimClock clock_a;
  DiskModel plain(DiskConfig{5000, 20}, &clock_a);
  SimClock clock_b;
  DiskModel attached(DiskConfig{5000, 20}, &clock_b);
  const FaultSchedule zero{FaultConfig{}};  // All probabilities 0.
  attached.AttachFaults(&zero);
  for (PageId page : {10u, 11u, 3u, 4u, 5u, 900u}) {
    ASSERT_EQ(plain.ReadPage(page), attached.TryReadPage(page).cost_us);
  }
  EXPECT_EQ(clock_a.now(), clock_b.now());
  EXPECT_EQ(plain.total_read_time(), attached.total_read_time());
  EXPECT_EQ(attached.failed_reads(), 0u);
}

TEST(SimClockTest, AdvanceAndReset) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Advance(50);
  clock.Advance(25);
  EXPECT_EQ(clock.now(), 75);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0);
}

}  // namespace
}  // namespace scout
