// SharedDiskQueue tests: elevator (C-SCAN) ordering, array-wide
// sequential pricing, channel parallelism, cross-session queueing delay,
// per-session attribution, cold-start determinism, edge configurations
// (1 channel, more channels than batch pages, empty batches) and the
// fault hooks (transient failures, outages, Reset mid-outage).

#include <vector>

#include "storage/fault_model.h"
#include "storage/shared_disk.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

DiskQueueConfig TestConfig(uint32_t channels) {
  DiskQueueConfig config;
  config.disk.random_read_us = 5000;
  config.disk.sequential_read_us = 20;
  config.channels = channels;
  return config;
}

TEST(SharedDiskQueueTest, ColdBatchOverlapsAcrossAllChannels) {
  SharedDiskQueue disk(TestConfig(4), 1);
  const std::vector<PageId> pages = {0, 100, 200, 300};
  const auto r = disk.ServeBatch(0, 0, pages);
  // Four random reads on four idle channels start together: the batch
  // takes one random read of wall time but four of service time.
  EXPECT_EQ(r.latency_us, 5000);
  EXPECT_EQ(r.service_us, 4 * 5000);
  EXPECT_EQ(r.queue_wait_us, 0);
  EXPECT_EQ(disk.stats().requests, 4u);
  EXPECT_EQ(disk.stats().random_reads, 4u);
  EXPECT_EQ(disk.stats().sequential_reads, 0u);
  EXPECT_EQ(disk.stats().batches, 1u);
}

TEST(SharedDiskQueueTest, AdjacentPagesPriceSequentially) {
  SharedDiskQueue disk(TestConfig(4), 1);
  const std::vector<PageId> pages = {10, 11, 12, 13};
  const auto r = disk.ServeBatch(0, 0, pages);
  // The head position is array-wide: page 11 follows 10 even though the
  // two reads land on different channels (striping distributes load; the
  // logical layout adjacency is one).
  EXPECT_EQ(disk.stats().random_reads, 1u);
  EXPECT_EQ(disk.stats().sequential_reads, 3u);
  EXPECT_EQ(r.service_us, 5000 + 3 * 20);
  EXPECT_EQ(r.latency_us, 5000);  // The one random read dominates.
}

TEST(SharedDiskQueueTest, ElevatorServesAscendingFromHeadThenWraps) {
  SharedDiskQueue disk(TestConfig(1), 2);
  disk.ServeOne(0, 0, 100);  // Head now at page 100.
  // Pages at or below the head are served after the upward sweep: the
  // scan visits 101 (sequential) then wraps to 50 (random).
  const std::vector<PageId> pages = {50, 101};
  disk.ServeBatch(1, 5000, pages);
  EXPECT_EQ(disk.stats().sequential_reads, 1u);
  EXPECT_EQ(disk.stats().random_reads, 2u);  // Cold read + wrapped 50.
  // Both pages moved relative to arrival order [50, 101] -> [101, 50].
  EXPECT_EQ(disk.stats().reordered_pages, 2u);
}

TEST(SharedDiskQueueTest, PresortedBatchIsNotCountedAsReordered) {
  SharedDiskQueue disk(TestConfig(2), 1);
  const std::vector<PageId> pages = {3, 7, 9};
  disk.ServeBatch(0, 0, pages);
  EXPECT_EQ(disk.stats().reordered_pages, 0u);
}

TEST(SharedDiskQueueTest, BusyChannelChargesQueueWait) {
  SharedDiskQueue disk(TestConfig(1), 2);
  // Session 0 occupies the only channel until t=5000.
  const auto first = disk.ServeOne(0, 0, 10);
  EXPECT_EQ(first.latency_us, 5000);
  EXPECT_EQ(first.queue_wait_us, 0);
  // Session 1 issues at t=1000 and must wait for the channel.
  const auto second = disk.ServeOne(1, 1000, 500);
  EXPECT_EQ(second.queue_wait_us, 4000);
  EXPECT_EQ(second.latency_us, 4000 + 5000);
  // The wait is attributed to the session that suffered it.
  EXPECT_EQ(disk.session_stats()[0].wait_us, 0);
  EXPECT_EQ(disk.session_stats()[1].wait_us, 4000);
  EXPECT_EQ(disk.stats().wait_us, 4000);
}

TEST(SharedDiskQueueTest, NonMonotoneIssueTimesAreServedAsArrived) {
  // The apply loop orders sessions by next-query time, but windows can
  // overshoot: a request issued "earlier" than the previous one simply
  // finds the channels as the earlier arrival left them.
  SharedDiskQueue disk(TestConfig(1), 2);
  disk.ServeOne(0, 10000, 10);  // Channel busy until 15000.
  const auto r = disk.ServeOne(1, 2000, 500);
  EXPECT_EQ(r.queue_wait_us, 13000);
  EXPECT_EQ(r.latency_us, 13000 + 5000);
}

TEST(SharedDiskQueueTest, PerSessionAttributionSplitsTheAggregate) {
  SharedDiskQueue disk(TestConfig(4), 2);
  const std::vector<PageId> a = {1, 2};
  const std::vector<PageId> b = {600, 601, 602};
  disk.ServeBatch(0, 0, a);
  disk.ServeBatch(1, 0, b);
  const auto& s0 = disk.session_stats()[0];
  const auto& s1 = disk.session_stats()[1];
  EXPECT_EQ(s0.requests, 2u);
  EXPECT_EQ(s1.requests, 3u);
  EXPECT_EQ(s0.batches, 1u);
  EXPECT_EQ(s1.batches, 1u);
  EXPECT_EQ(s0.requests + s1.requests, disk.stats().requests);
  EXPECT_EQ(s0.service_us + s1.service_us, disk.stats().service_us);
  // An out-of-range session id still serves (aggregate only).
  disk.ServeOne(99, 0, 7);
  EXPECT_EQ(disk.stats().requests, 6u);
}

TEST(SharedDiskQueueTest, EmptyBatchIsFreeAndCountsNothing) {
  SharedDiskQueue disk(TestConfig(4), 1);
  const auto r = disk.ServeBatch(0, 1000, {});
  EXPECT_EQ(r.latency_us, 0);
  EXPECT_EQ(r.service_us, 0);
  EXPECT_EQ(r.queue_wait_us, 0);
  EXPECT_EQ(disk.stats().batches, 0u);
  EXPECT_EQ(disk.stats().requests, 0u);
}

TEST(SharedDiskQueueTest, ZeroChannelConfigClampsToOne) {
  SharedDiskQueue disk(TestConfig(0), 1);
  const std::vector<PageId> pages = {1, 500};
  const auto r = disk.ServeBatch(0, 0, pages);
  // One channel: the two random reads serialize.
  EXPECT_EQ(r.latency_us, 2 * 5000);
}

TEST(SharedDiskQueueTest, SingleChannelSerializesTheWholeBatch) {
  SharedDiskQueue disk(TestConfig(1), 1);
  const std::vector<PageId> pages = {0, 100, 200};
  const auto r = disk.ServeBatch(0, 0, pages);
  // One channel: three random reads back to back.
  EXPECT_EQ(r.latency_us, 3 * 5000);
  EXPECT_EQ(r.service_us, 3 * 5000);
  EXPECT_EQ(r.queue_wait_us, 0);
}

TEST(SharedDiskQueueTest, MoreChannelsThanPagesLeavesChannelsIdle) {
  SharedDiskQueue disk(TestConfig(16), 1);
  const std::vector<PageId> pages = {0, 100};
  const auto r = disk.ServeBatch(0, 0, pages);
  // Two pages on sixteen idle channels: full overlap, fourteen idle.
  EXPECT_EQ(r.latency_us, 5000);
  EXPECT_EQ(r.service_us, 2 * 5000);
  // A later one-page batch still lands on an idle channel immediately.
  const auto next = disk.ServeOne(0, 100, 900);
  EXPECT_EQ(next.queue_wait_us, 0);
}

TEST(SharedDiskQueueTest, TryServeBatchReportsFailedPages) {
  SharedDiskQueue disk(TestConfig(2), 2);
  FaultConfig config;
  config.seed = 5;
  config.read_failure_prob = 1.0;  // Every transfer fails.
  const FaultSchedule faults{config};
  disk.AttachFaults(&faults);
  const std::vector<PageId> pages = {7, 300};
  std::vector<PageId> failed;
  const auto r = disk.TryServeBatch(0, 0, pages, &failed);
  // Failures are fully charged: timing identical to good transfers.
  EXPECT_EQ(r.latency_us, 5000);
  EXPECT_EQ(r.service_us, 2 * 5000);
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_EQ(disk.stats().failed_reads, 2u);
  EXPECT_EQ(disk.session_stats()[0].failed_reads, 2u);
  EXPECT_EQ(disk.session_stats()[1].failed_reads, 0u);
  // The infallible wrapper charges the same and reports nothing.
  const auto silent = disk.ServeBatch(1, 10000, pages);
  EXPECT_EQ(silent.service_us, 2 * 5000);
  EXPECT_EQ(disk.stats().failed_reads, 4u);
}

TEST(SharedDiskQueueTest, TryServeOneFlagsTheFailure) {
  SharedDiskQueue disk(TestConfig(1), 1);
  FaultConfig config;
  config.seed = 5;
  config.read_failure_prob = 1.0;
  const FaultSchedule faults{config};
  disk.AttachFaults(&faults);
  bool failed = false;
  const auto r = disk.TryServeOne(0, 0, 7, &failed);
  EXPECT_TRUE(failed);
  EXPECT_EQ(r.latency_us, 5000);
}

TEST(SharedDiskQueueTest, OutageDelaysDispatchAndCountsTheWait) {
  SharedDiskQueue disk(TestConfig(1), 1);
  FaultConfig config;
  config.seed = 1;
  config.channel_outage_prob = 1.0;  // Every period window has an outage.
  config.channel_outage_period_us = 100000;
  config.channel_outage_us = 100000;  // Wall-to-wall: offset is forced to 0.
  const FaultSchedule faults{config};
  disk.AttachFaults(&faults);
  // Issue at t=0: the channel is down until 100000, the read runs after.
  const auto r = disk.ServeOne(0, 0, 7);
  EXPECT_EQ(r.latency_us, 100000 + 5000);
  EXPECT_EQ(disk.stats().outage_wait_us, 100000);
  EXPECT_EQ(disk.session_stats()[0].outage_wait_us, 100000);
}

TEST(SharedDiskQueueTest, ResetMidOutageForgetsQueueStateNotTheSchedule) {
  SharedDiskQueue disk(TestConfig(1), 1);
  FaultConfig config;
  config.seed = 1;
  config.channel_outage_prob = 1.0;
  config.channel_outage_period_us = 100000;
  config.channel_outage_us = 100000;
  const FaultSchedule faults{config};
  disk.AttachFaults(&faults);
  const auto before = disk.ServeOne(0, 0, 7);
  disk.Reset();
  // Reset clears counters and busy times but keeps the attachment: the
  // schedule is configuration. The outage is a pure function of (seed,
  // channel, time), so the same issue instant waits out the same window.
  EXPECT_EQ(disk.stats().outage_wait_us, 0);
  EXPECT_EQ(disk.faults(), &faults);
  const auto after = disk.ServeOne(0, 0, 7);
  EXPECT_EQ(after.latency_us, before.latency_us);
  EXPECT_EQ(disk.stats().outage_wait_us, 100000);
}

TEST(SharedDiskQueueTest, DisarmedScheduleIsBitIdenticalToNoSchedule) {
  SharedDiskQueue plain(TestConfig(4), 2);
  SharedDiskQueue attached(TestConfig(4), 2);
  const FaultSchedule zero{FaultConfig{}};
  attached.AttachFaults(&zero);
  const std::vector<PageId> a = {10, 11, 12, 500};
  const std::vector<PageId> b = {50, 200};
  std::vector<PageId> failed;
  for (int round = 0; round < 3; ++round) {
    const SimMicros now = static_cast<SimMicros>(round) * 7000;
    const auto rp = plain.ServeBatch(0, now, a);
    const auto ra = attached.TryServeBatch(0, now, a, &failed);
    ASSERT_EQ(rp.latency_us, ra.latency_us);
    ASSERT_EQ(rp.service_us, ra.service_us);
    ASSERT_EQ(rp.queue_wait_us, ra.queue_wait_us);
    ASSERT_TRUE(failed.empty());
    const auto sp = plain.ServeBatch(1, now + 100, b);
    const auto sa = attached.ServeBatch(1, now + 100, b);
    ASSERT_EQ(sp.latency_us, sa.latency_us);
  }
  EXPECT_EQ(plain.stats().service_us, attached.stats().service_us);
  EXPECT_EQ(plain.stats().wait_us, attached.stats().wait_us);
  EXPECT_EQ(attached.stats().failed_reads, 0u);
  EXPECT_EQ(attached.stats().outage_wait_us, 0);
}

TEST(SharedDiskQueueTest, ResetRestoresTheColdState) {
  SharedDiskQueue disk(TestConfig(2), 2);
  const std::vector<PageId> pages = {10, 11, 12};
  const auto warm = disk.ServeBatch(0, 0, pages);
  disk.Reset();
  EXPECT_EQ(disk.stats().requests, 0u);
  EXPECT_EQ(disk.session_stats()[0].requests, 0u);
  // Same issue after Reset: identical result (head position forgotten,
  // channels idle) — the engine's rerun determinism depends on this.
  const auto cold = disk.ServeBatch(0, 0, pages);
  EXPECT_EQ(cold.latency_us, warm.latency_us);
  EXPECT_EQ(cold.service_us, warm.service_us);
  EXPECT_EQ(cold.queue_wait_us, warm.queue_wait_us);
  EXPECT_EQ(disk.stats().random_reads, 1u);
  EXPECT_EQ(disk.stats().sequential_reads, 2u);
}

}  // namespace
}  // namespace scout
