#include "storage/file_page_store.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "geom/aabb.h"
#include "gtest/gtest.h"
#include "index/rtree.h"
#include "storage/fault_model.h"
#include "testing/test_util.h"

namespace scout {
namespace {

/// Exact bit equality for doubles — the round-trip contract is stronger
/// than value equality (it must survive NaN payloads and -0.0 too).
bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectObjectBitIdentical(const SpatialObject& got,
                              const SpatialObject& want) {
  EXPECT_EQ(got.id, want.id);
  EXPECT_EQ(got.structure_id, want.structure_id);
  EXPECT_EQ(got.path_index, want.path_index);
  EXPECT_TRUE(BitEq(got.geom.p0().x, want.geom.p0().x));
  EXPECT_TRUE(BitEq(got.geom.p0().y, want.geom.p0().y));
  EXPECT_TRUE(BitEq(got.geom.p0().z, want.geom.p0().z));
  EXPECT_TRUE(BitEq(got.geom.p1().x, want.geom.p1().x));
  EXPECT_TRUE(BitEq(got.geom.p1().y, want.geom.p1().y));
  EXPECT_TRUE(BitEq(got.geom.p1().z, want.geom.p1().z));
  EXPECT_TRUE(BitEq(got.geom.r0(), want.geom.r0()));
  EXPECT_TRUE(BitEq(got.geom.r1(), want.geom.r1()));
}

class FilePageStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto objects = testing::MakeFiber(Vec3(5, 50, 50), Vec3(1, 0, 0), 150,
                                      2.0, 0, 0, 41);
    auto clutter = testing::MakeRandomObjects(
        400, Aabb(Vec3(0, 0, 0), Vec3(320, 100, 100)), 42);
    for (auto& obj : clutter) {
      obj.id += 10000;
      objects.push_back(obj);
    }
    auto built = RTreeIndex::Build(objects);
    ASSERT_TRUE(built.ok()) << built.status().message();
    index_ = std::move(built).value();
    path_ = ::testing::TempDir() + "scout_fps_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".pages";
    const Status st = FilePageStore::WriteFile(index_->store(), path_);
    ASSERT_TRUE(st.ok()) << st.message();
  }

  std::unique_ptr<FilePageStore> OpenOrDie() {
    auto opened = FilePageStore::Open(path_);
    EXPECT_TRUE(opened.ok()) << opened.status().message();
    return std::move(opened).value();
  }

  std::unique_ptr<RTreeIndex> index_;
  std::string path_;
};

TEST_F(FilePageStoreTest, HeaderCountsMatchSourceStore) {
  auto store = OpenOrDie();
  EXPECT_EQ(store->NumPages(), index_->store().NumPages());
  EXPECT_EQ(store->NumObjects(), index_->store().NumObjects());
  EXPECT_GT(store->NumPages(), 1u);
}

TEST_F(FilePageStoreTest, RoundTripIsBitIdentical) {
  auto store = OpenOrDie();
  const PageStore& mem = index_->store();
  for (PageId id = 0; id < store->NumPages(); ++id) {
    Page page;
    const Status st = store->ReadPage(id, &page);
    ASSERT_TRUE(st.ok()) << st.message();
    const Page& want = mem.pages()[id];
    EXPECT_EQ(page.id, want.id);
    ASSERT_EQ(page.objects.size(), want.objects.size());
    for (size_t i = 0; i < page.objects.size(); ++i) {
      ExpectObjectBitIdentical(page.objects[i], want.objects[i]);
    }
    // Bounds are recomputed from bit-identical objects, so they must be
    // bit-identical too.
    EXPECT_TRUE(BitEq(page.bounds.min().x, want.bounds.min().x));
    EXPECT_TRUE(BitEq(page.bounds.max().z, want.bounds.max().z));
  }
  EXPECT_EQ(store->reads(), store->NumPages());
  EXPECT_EQ(store->failed_reads(), 0u);
}

TEST_F(FilePageStoreTest, OutOfRangePageIdIsRejected) {
  auto store = OpenOrDie();
  Page page;
  const Status st = store->ReadPage(store->NumPages(), &page);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST_F(FilePageStoreTest, MissingFileFailsToOpen) {
  auto opened = FilePageStore::Open(path_ + ".does-not-exist");
  EXPECT_FALSE(opened.ok());
}

TEST_F(FilePageStoreTest, BadMagicIsRejected) {
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const char garbage[8] = {'N', 'O', 'T', 'S', 'C', 'O', 'U', 'T'};
    f.write(garbage, sizeof(garbage));
  }
  auto opened = FilePageStore::Open(path_);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FilePageStoreTest, WrongVersionIsRejected) {
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(8);
    const uint32_t bad_version = FilePageStore::kFormatVersion + 1;
    f.write(reinterpret_cast<const char*>(&bad_version), sizeof(bad_version));
  }
  auto opened = FilePageStore::Open(path_);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FilePageStoreTest, FetchLogRecordsIssueOrder) {
  auto store = OpenOrDie();
  store->EnableFetchLog();
  Page page;
  const std::vector<PageId> order = {2, 0, 1, 0};
  for (PageId id : order) {
    ASSERT_TRUE(store->ReadPage(id, &page).ok());
  }
  EXPECT_EQ(store->FetchLog(), order);
}

// Fault storm: the schedule draws over the store's own op counter, so a
// fresh Open replays the exact same ok/fail pattern — the determinism
// the engine-level soak and the degraded-mode tests build on.
TEST_F(FilePageStoreTest, FaultStormIsDeterministicAcrossFreshOpens) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.read_failure_prob = 0.3;
  cfg.read_failure_burst_us = 1000;
  const FaultSchedule faults(cfg);
  ASSERT_TRUE(faults.Armed());

  auto sweep = [&](FilePageStore* store) {
    std::vector<bool> pattern;
    Page page;
    for (int round = 0; round < 3; ++round) {
      for (PageId id = 0; id < store->NumPages(); ++id) {
        const Status st = store->ReadPage(id, &page);
        if (!st.ok()) {
          EXPECT_EQ(st.code(), StatusCode::kUnavailable);
        }
        pattern.push_back(st.ok());
      }
    }
    return pattern;
  };

  auto a = OpenOrDie();
  a->AttachFaults(&faults);
  const std::vector<bool> first = sweep(a.get());

  auto b = OpenOrDie();
  b->AttachFaults(&faults);
  const std::vector<bool> second = sweep(b.get());

  EXPECT_EQ(first, second);
  EXPECT_EQ(a->failed_reads(), b->failed_reads());
  EXPECT_GT(a->failed_reads(), 0u);
  EXPECT_GT(a->reads(), a->failed_reads());  // Some reads still succeed.
}

}  // namespace
}  // namespace scout
