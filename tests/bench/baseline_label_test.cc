/// Tests of the baseline-recorder write path: appending a snapshot whose
/// label already exists in the target JSON must be refused (silent
/// duplicate labels would make the perf trajectory ambiguous and corrupt
/// every diff made against it), with --force as the deliberate override.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace scout::bench {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string OneRowSnapshot(const std::string& label) {
  BaselineFigRow fig;
  fig.bench = "fig_test";
  fig.scenario = "scenario";
  fig.prefetcher = "scout";
  BaselineMicroRow micro;
  micro.name = "micro_test";
  micro.ops = 1;
  return BaselineSnapshotJson(label, /*tiny=*/true, {fig}, {micro});
}

TEST(BaselineLabelTest, ContainsLabelMatchesSerializedField) {
  const std::string snapshot = OneRowSnapshot("seed2-pre");
  EXPECT_TRUE(BaselineContainsLabel(snapshot, "seed2-pre"));
  EXPECT_FALSE(BaselineContainsLabel(snapshot, "seed2"));
  EXPECT_FALSE(BaselineContainsLabel(snapshot, "seed2-pre-prefilter"));
  EXPECT_FALSE(BaselineContainsLabel("", "seed2-pre"));
  // Labels with JSON-escaped characters match their serialized form.
  const std::string quoted = OneRowSnapshot("with \"quotes\"");
  EXPECT_TRUE(BaselineContainsLabel(quoted, "with \"quotes\""));
}

TEST(BaselineLabelTest, AppendRefusesDuplicateLabel) {
  const std::string path = TempPath("baseline_dup_label.json");
  std::remove(path.c_str());
  std::string error;

  // Fresh write, then an append under a different label: both succeed.
  ASSERT_TRUE(RecordBaselineSnapshot(path, /*append=*/false, /*force=*/false,
                                     "first", OneRowSnapshot("first"),
                                     &error))
      << error;
  ASSERT_TRUE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/false,
                                     "second", OneRowSnapshot("second"),
                                     &error))
      << error;

  // Appending an existing label is refused and leaves the file unchanged.
  const std::string before = ReadFileOrEmpty(path);
  EXPECT_FALSE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/false,
                                      "first", OneRowSnapshot("first"),
                                      &error));
  EXPECT_NE(error.find("first"), std::string::npos) << error;
  EXPECT_NE(error.find("--force"), std::string::npos) << error;
  EXPECT_EQ(ReadFileOrEmpty(path), before);

  // --force is the deliberate override.
  error.clear();
  EXPECT_TRUE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/true,
                                     "first", OneRowSnapshot("first"),
                                     &error))
      << error;
  std::remove(path.c_str());
}

TEST(BaselineLabelTest, RewriteIgnoresExistingLabels) {
  // A non-append write replaces the file wholesale; the duplicate check
  // only guards the trajectory-extending append path.
  const std::string path = TempPath("baseline_rewrite_label.json");
  std::remove(path.c_str());
  std::string error;
  ASSERT_TRUE(RecordBaselineSnapshot(path, /*append=*/false, /*force=*/false,
                                     "same", OneRowSnapshot("same"), &error));
  EXPECT_TRUE(RecordBaselineSnapshot(path, /*append=*/false, /*force=*/false,
                                     "same", OneRowSnapshot("same"), &error))
      << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace scout::bench
