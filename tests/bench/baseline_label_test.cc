/// Tests of the baseline-recorder write path: appending a snapshot whose
/// label already exists in the target JSON must be refused (silent
/// duplicate labels would make the perf trajectory ambiguous and corrupt
/// every diff made against it), with --force as the deliberate override.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace scout::bench {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string OneRowSnapshot(const std::string& label) {
  BaselineFigRow fig;
  fig.bench = "fig_test";
  fig.scenario = "scenario";
  fig.prefetcher = "scout";
  BaselineMicroRow micro;
  micro.name = "micro_test";
  micro.ops = 1;
  return BaselineSnapshotJson(label, /*tiny=*/true, {fig}, {micro});
}

TEST(BaselineLabelTest, ContainsLabelMatchesSerializedField) {
  const std::string snapshot = OneRowSnapshot("seed2-pre");
  EXPECT_TRUE(BaselineContainsLabel(snapshot, "seed2-pre"));
  EXPECT_FALSE(BaselineContainsLabel(snapshot, "seed2"));
  EXPECT_FALSE(BaselineContainsLabel(snapshot, "seed2-pre-prefilter"));
  EXPECT_FALSE(BaselineContainsLabel("", "seed2-pre"));
  // Labels with JSON-escaped characters match their serialized form.
  const std::string quoted = OneRowSnapshot("with \"quotes\"");
  EXPECT_TRUE(BaselineContainsLabel(quoted, "with \"quotes\""));
}

TEST(BaselineLabelTest, AppendRefusesDuplicateLabel) {
  const std::string path = TempPath("baseline_dup_label.json");
  std::remove(path.c_str());
  std::string error;

  // Fresh write, then an append under a different label: both succeed.
  ASSERT_TRUE(RecordBaselineSnapshot(path, /*append=*/false, /*force=*/false,
                                     "first", OneRowSnapshot("first"),
                                     &error))
      << error;
  ASSERT_TRUE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/false,
                                     "second", OneRowSnapshot("second"),
                                     &error))
      << error;

  // Appending an existing label is refused and leaves the file unchanged.
  const std::string before = ReadFileOrEmpty(path);
  EXPECT_FALSE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/false,
                                      "first", OneRowSnapshot("first"),
                                      &error));
  EXPECT_NE(error.find("first"), std::string::npos) << error;
  EXPECT_NE(error.find("--force"), std::string::npos) << error;
  EXPECT_EQ(ReadFileOrEmpty(path), before);

  // --force is the deliberate override.
  error.clear();
  EXPECT_TRUE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/true,
                                     "first", OneRowSnapshot("first"),
                                     &error))
      << error;
  std::remove(path.c_str());
}

TEST(BaselineLabelTest, Seed3FlipLabelsRequireThePreQosAnchor) {
  // The seed3 (cache-QoS re-seed) family must land in trajectory order:
  // the neutral legacy-serving anchor first, then the flip snapshots.
  // Appending a flip label into a file without the anchor is refused.
  const std::string path = TempPath("baseline_seed3_order.json");
  std::remove(path.c_str());
  std::string error;
  ASSERT_TRUE(RecordBaselineSnapshot(path, /*append=*/false, /*force=*/false,
                                     "post-multiclient",
                                     OneRowSnapshot("post-multiclient"),
                                     &error))
      << error;

  for (const char* label : {"qos-cache-only", "post-qos"}) {
    error.clear();
    EXPECT_FALSE(RecordBaselineSnapshot(path, /*append=*/true,
                                        /*force=*/false, label,
                                        OneRowSnapshot(label), &error))
        << label;
    EXPECT_NE(error.find("pre-qos"), std::string::npos) << error;
    EXPECT_NE(error.find(label), std::string::npos) << error;
  }

  // Once the anchor lands, the family appends in order.
  ASSERT_TRUE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/false,
                                     "pre-qos", OneRowSnapshot("pre-qos"),
                                     &error))
      << error;
  EXPECT_TRUE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/false,
                                     "qos-cache-only",
                                     OneRowSnapshot("qos-cache-only"),
                                     &error))
      << error;
  EXPECT_TRUE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/false,
                                     "post-qos", OneRowSnapshot("post-qos"),
                                     &error))
      << error;
  std::remove(path.c_str());
}

TEST(BaselineLabelTest, Seed3OrderingGuardGatesOnlyTheAppendPath) {
  const std::string path = TempPath("baseline_seed3_force.json");
  std::remove(path.c_str());
  std::string error;
  // A rewrite replaces the file wholesale; ordering applies to appends.
  EXPECT_TRUE(RecordBaselineSnapshot(path, /*append=*/false, /*force=*/false,
                                     "post-qos", OneRowSnapshot("post-qos"),
                                     &error))
      << error;
  // --force is the deliberate out-of-order override.
  std::remove(path.c_str());
  ASSERT_TRUE(RecordBaselineSnapshot(path, /*append=*/false, /*force=*/false,
                                     "first", OneRowSnapshot("first"),
                                     &error))
      << error;
  EXPECT_TRUE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/true,
                                     "post-qos", OneRowSnapshot("post-qos"),
                                     &error))
      << error;
  // The anchor label itself is never gated (it IS the prerequisite).
  EXPECT_TRUE(RecordBaselineSnapshot(path, /*append=*/true, /*force=*/false,
                                     "pre-qos", OneRowSnapshot("pre-qos"),
                                     &error))
      << error;
  std::remove(path.c_str());
}

TEST(BaselineLabelTest, SnapshotIsStampedWithTheCompiledSimdLane) {
  // Micro rows recorded under different SIMD backends measure different
  // code; the snapshot must carry the lane label of the binary that
  // recorded it so cross-backend diffs are visible, and it must be the
  // backend this test binary was actually compiled with.
  const std::string json = OneRowSnapshot("lane-label");
  EXPECT_NE(json.find(std::string("\"simd\": \"") + simd::kLaneName + "\""),
            std::string::npos)
      << json;
  const std::string lane = simd::kLaneName;
  EXPECT_TRUE(lane == "avx2" || lane == "scalar") << lane;
}

TEST(BaselineLabelTest, MulticlientRowsSerializeServingExtras) {
  // fig_multiclient rows carry the QoS serving extras; single-client
  // rows must keep the exact field set earlier snapshots were recorded
  // with (diff tooling matches rows positionally by key).
  BaselineFigRow plain;
  plain.bench = "fig11_microbenchmarks";
  plain.scenario = "model-building";
  plain.prefetcher = "scout";
  BaselineFigRow multi = plain;
  multi.bench = "fig_multiclient";
  multi.scenario = "model-building@N8";
  multi.multiclient = true;
  multi.evictions_per_session = 12.5;
  multi.sim_disk_wait_us = 4200;
  multi.cross_hit_share_pct = 3.75;
  const std::string json =
      BaselineSnapshotJson("x", /*tiny=*/true, {plain, multi}, {});
  EXPECT_EQ(json.find("evictions_per_session"),
            json.rfind("evictions_per_session"));
  EXPECT_NE(json.find("\"evictions_per_session\": 12.50"), std::string::npos);
  EXPECT_NE(json.find("\"sim_disk_wait_us\": 4200"), std::string::npos);
  EXPECT_NE(json.find("\"cross_hit_share_pct\": 3.75"), std::string::npos);
}

TEST(BaselineLabelTest, RewriteIgnoresExistingLabels) {
  // A non-append write replaces the file wholesale; the duplicate check
  // only guards the trajectory-extending append path.
  const std::string path = TempPath("baseline_rewrite_label.json");
  std::remove(path.c_str());
  std::string error;
  ASSERT_TRUE(RecordBaselineSnapshot(path, /*append=*/false, /*force=*/false,
                                     "same", OneRowSnapshot("same"), &error));
  EXPECT_TRUE(RecordBaselineSnapshot(path, /*append=*/false, /*force=*/false,
                                     "same", OneRowSnapshot("same"), &error))
      << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace scout::bench
