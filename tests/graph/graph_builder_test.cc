#include "graph/graph_builder.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace scout {
namespace {

using testing::MakeFiber;

std::vector<GraphInput> ToInputs(const std::vector<SpatialObject>& objects) {
  std::vector<GraphInput> inputs;
  for (const SpatialObject& obj : objects) {
    inputs.push_back(GraphInput{&obj, 0});
  }
  return inputs;
}

Aabb BoundsOf(const std::vector<SpatialObject>& objects) {
  Aabb box;
  for (const SpatialObject& obj : objects) box.Extend(obj.Bounds());
  return box;
}

TEST(GraphBuilderTest, FiberFormsSingleComponentWithGridHash) {
  const std::vector<SpatialObject> fiber =
      MakeFiber(Vec3(0, 0, 0), Vec3(1, 0, 0), 50);
  SpatialGraph graph;
  const GraphBuildStats stats = BuildGraphGridHash(
      ToInputs(fiber), BoundsOf(fiber).Expanded(1.0), 32768, &graph);
  EXPECT_EQ(graph.NumVertices(), 50u);
  EXPECT_GT(stats.objects_hashed, 0u);
  EXPECT_GT(stats.cell_inserts, 0u);
  uint32_t components = 0;
  LabelComponents(graph, &components);
  EXPECT_EQ(components, 1u);
}

TEST(GraphBuilderTest, DistantFibersStayDisconnected) {
  std::vector<SpatialObject> objects =
      MakeFiber(Vec3(0, 0, 0), Vec3(1, 0, 0), 30, 2.0, 0, 0);
  const std::vector<SpatialObject> other =
      MakeFiber(Vec3(0, 40, 0), Vec3(1, 0, 0), 30, 2.0, 100, 1);
  objects.insert(objects.end(), other.begin(), other.end());
  SpatialGraph graph;
  BuildGraphGridHash(ToInputs(objects), BoundsOf(objects).Expanded(1.0),
                     32768, &graph);
  uint32_t components = 0;
  LabelComponents(graph, &components);
  EXPECT_EQ(components, 2u);
}

TEST(GraphBuilderTest, CoarseResolutionCreatesMoreEdges) {
  std::vector<SpatialObject> objects =
      MakeFiber(Vec3(0, 0, 0), Vec3(1, 0, 0), 40, 2.0, 0, 0);
  const std::vector<SpatialObject> other =
      MakeFiber(Vec3(0, 15, 0), Vec3(1, 0, 0), 40, 2.0, 100, 1);
  objects.insert(objects.end(), other.begin(), other.end());
  const Aabb bounds = BoundsOf(objects).Expanded(1.0);

  SpatialGraph fine;
  const GraphBuildStats fine_stats =
      BuildGraphGridHash(ToInputs(objects), bounds, 32768, &fine);
  SpatialGraph coarse;
  const GraphBuildStats coarse_stats =
      BuildGraphGridHash(ToInputs(objects), bounds, 1, &coarse);
  // Too coarse a grid connects everything (excess edges, paper §4.2).
  EXPECT_GT(coarse.NumEdges(), fine.NumEdges());
  EXPECT_GT(coarse_stats.pair_comparisons, fine_stats.pair_comparisons);
  uint32_t coarse_components = 0;
  LabelComponents(coarse, &coarse_components);
  EXPECT_EQ(coarse_components, 1u);  // The two fibers merge: misleading.
}

TEST(GraphBuilderTest, BruteForceMatchesGridHashOnChain) {
  const std::vector<SpatialObject> fiber =
      MakeFiber(Vec3(0, 0, 0), Vec3(1, 0, 0), 30);
  SpatialGraph brute;
  BuildGraphBruteForce(ToInputs(fiber), 0.5, &brute);
  // Consecutive fiber segments share endpoints: the chain must be fully
  // connected in the exact graph too.
  uint32_t components = 0;
  LabelComponents(brute, &components);
  EXPECT_EQ(components, 1u);
  // Exact chain: each interior vertex connects to its neighbors.
  EXPECT_GE(brute.NumEdges(), 29u);
}

TEST(GraphBuilderTest, BruteForceEpsilonControlsConnectivity) {
  // Two parallel fibers 5 apart: connected iff epsilon >= 5ish.
  std::vector<SpatialObject> objects;
  SpatialObject a;
  a.id = 0;
  a.geom = Cylinder(Vec3(0, 0, 0), Vec3(10, 0, 0), 0.2);
  SpatialObject b;
  b.id = 1;
  b.geom = Cylinder(Vec3(0, 5, 0), Vec3(10, 5, 0), 0.2);
  objects = {a, b};

  SpatialGraph tight;
  BuildGraphBruteForce(ToInputs(objects), 1.0, &tight);
  EXPECT_EQ(tight.NumEdges(), 0u);

  SpatialGraph loose;
  BuildGraphBruteForce(ToInputs(objects), 6.0, &loose);
  EXPECT_EQ(loose.NumEdges(), 1u);
}

TEST(GraphBuilderTest, ExplicitAdjacencyBuild) {
  const std::vector<SpatialObject> fiber =
      MakeFiber(Vec3(0, 0, 0), Vec3(1, 0, 0), 10);
  std::vector<std::pair<ObjectId, ObjectId>> adjacency;
  for (ObjectId i = 0; i + 1 < 10; ++i) adjacency.emplace_back(i, i + 1);
  // Reference to an object missing from the result set must be ignored.
  adjacency.emplace_back(3, 999);

  SpatialGraph graph;
  const GraphBuildStats stats =
      BuildGraphExplicit(ToInputs(fiber), adjacency, &graph);
  EXPECT_EQ(graph.NumVertices(), 10u);
  EXPECT_EQ(graph.NumEdges(), 9u);
  EXPECT_EQ(stats.edges_created, 9u);
  uint32_t components = 0;
  LabelComponents(graph, &components);
  EXPECT_EQ(components, 1u);
}

TEST(GraphBuilderTest, EmptyInputsYieldEmptyGraph) {
  SpatialGraph graph;
  const GraphBuildStats stats = BuildGraphGridHash(
      {}, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 64, &graph);
  EXPECT_EQ(graph.NumVertices(), 0u);
  EXPECT_EQ(stats.objects_hashed, 0u);
}

TEST(GraphBuilderTest, StatsAccumulate) {
  GraphBuildStats a{1, 2, 3, 4};
  const GraphBuildStats b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.objects_hashed, 11u);
  EXPECT_EQ(a.cell_inserts, 22u);
  EXPECT_EQ(a.pair_comparisons, 33u);
  EXPECT_EQ(a.edges_created, 44u);
}

}  // namespace
}  // namespace scout
