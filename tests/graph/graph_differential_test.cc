/// Differential tests of the graph layer: the grid-hash builder against
/// the brute-force oracle (edge recall/precision), the CSR adjacency
/// against a reference vector<vector> build (exact neighbor-set
/// equality), and LabelComponents against a reference union-find — all on
/// randomized fixed-seed inputs, so the flat-table/CSR rewrite stays
/// pinned to the semantics of the straightforward implementations.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/grid.h"
#include "graph/graph_builder.h"
#include "testing/test_util.h"

namespace scout {
namespace {

using testing::MakeFiber;
using testing::MakeRandomObjects;

std::vector<GraphInput> ToInputs(const std::vector<SpatialObject>& objects) {
  std::vector<GraphInput> inputs;
  inputs.reserve(objects.size());
  for (const SpatialObject& obj : objects) {
    inputs.push_back(GraphInput{&obj, 0});
  }
  return inputs;
}

// Mixed workload: several wiggly fibers (chained, touching segments) plus
// scattered clutter, like a query result over neuron tissue.
std::vector<SpatialObject> FibersAndClutter(uint64_t seed) {
  Rng rng(seed);
  std::vector<SpatialObject> objects;
  for (int f = 0; f < 6; ++f) {
    const Vec3 start(rng.Uniform(2, 20), rng.Uniform(2, 20),
                     rng.Uniform(2, 20));
    const Vec3 dir(rng.Gaussian(0, 1), rng.Gaussian(0, 1),
                   rng.Gaussian(0, 1));
    const std::vector<SpatialObject> fiber =
        MakeFiber(start, dir, 12, 2.0, objects.size(),
                  static_cast<StructureId>(f), /*seed=*/seed + f);
    objects.insert(objects.end(), fiber.begin(), fiber.end());
  }
  const Aabb bounds(Vec3(0, 0, 0), Vec3(40, 40, 40));
  std::vector<SpatialObject> clutter =
      MakeRandomObjects(60, bounds, seed + 100);
  for (SpatialObject& obj : clutter) {
    obj.id += objects.size();
    objects.push_back(obj);
  }
  return objects;
}

std::set<std::pair<VertexId, VertexId>> EdgeSetOf(const SpatialGraph& g) {
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      edges.emplace(std::min(v, u), std::max(v, u));
    }
  }
  return edges;
}

// Every pair of objects whose segments touch (the brute-force oracle at
// epsilon ~ 0) shares at least one grid cell, so the grid-hash graph must
// contain every oracle edge: recall is exact, not statistical.
TEST(GraphDifferentialTest, GridHashRecallsAllTouchingPairs) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    const std::vector<SpatialObject> objects = FibersAndClutter(seed);
    const std::vector<GraphInput> inputs = ToInputs(objects);
    Aabb bounds;
    for (const SpatialObject& obj : objects) bounds.Extend(obj.Bounds());
    bounds = bounds.Expanded(1.0);

    SpatialGraph grid;
    BuildGraphGridHash(inputs, bounds, 32768, &grid);
    SpatialGraph oracle;
    BuildGraphBruteForce(inputs, /*epsilon=*/1e-9, &oracle);
    ASSERT_GT(oracle.NumEdges(), 0u) << "oracle found nothing at seed "
                                     << seed;

    const auto grid_edges = EdgeSetOf(grid);
    for (const auto& e : EdgeSetOf(oracle)) {
      EXPECT_TRUE(grid_edges.contains(e))
          << "touching pair (" << e.first << ", " << e.second
          << ") missing from grid-hash graph at seed " << seed;
    }
  }
}

// Precision bound: objects connected by grid hashing shared a cell, so
// their segments are within one cell diagonal of each other.
TEST(GraphDifferentialTest, GridHashEdgesAreWithinCellDiagonal) {
  const std::vector<SpatialObject> objects = FibersAndClutter(44);
  const std::vector<GraphInput> inputs = ToInputs(objects);
  Aabb bounds;
  for (const SpatialObject& obj : objects) bounds.Extend(obj.Bounds());
  bounds = bounds.Expanded(1.0);
  const int64_t total_cells = 32768;

  SpatialGraph grid;
  BuildGraphGridHash(inputs, bounds, total_cells, &grid);
  const Vec3 cell = UniformGrid::WithTotalCells(bounds, total_cells)
                        .CellSize();
  const double diagonal = cell.Norm();
  for (const auto& [a, b] : EdgeSetOf(grid)) {
    EXPECT_LE(
        grid.vertex(a).line.DistanceTo(grid.vertex(b).line), diagonal)
        << "edge (" << a << ", " << b << ")";
  }
}

// The CSR adjacency must equal a reference vector<vector> adjacency built
// from the same randomized edge stream (duplicates, both orientations,
// self-loops): sorted, dedup'ed, self-loop-free neighbor runs.
TEST(GraphDifferentialTest, CsrMatchesReferenceAdjacency) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    Rng rng(seed);
    const uint32_t n = 2 + static_cast<uint32_t>(rng.NextBounded(120));
    const uint32_t m = static_cast<uint32_t>(rng.NextBounded(600));

    SpatialGraph g;
    for (uint32_t v = 0; v < n; ++v) {
      GraphVertex vertex;
      vertex.object_id = v;
      g.AddVertex(vertex);
    }
    std::vector<std::vector<VertexId>> reference(n);
    std::set<std::pair<VertexId, VertexId>> unique_edges;
    for (uint32_t e = 0; e < m; ++e) {
      const VertexId a = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId b = static_cast<VertexId>(rng.NextBounded(n));
      g.AddEdge(a, b);
      if (a == b) continue;
      reference[a].push_back(b);
      reference[b].push_back(a);
      unique_edges.emplace(std::min(a, b), std::max(a, b));
    }
    g.Finalize();

    EXPECT_EQ(g.NumEdges(), unique_edges.size());
    for (VertexId v = 0; v < n; ++v) {
      std::sort(reference[v].begin(), reference[v].end());
      reference[v].erase(
          std::unique(reference[v].begin(), reference[v].end()),
          reference[v].end());
      const auto got = g.neighbors(v);
      ASSERT_EQ(got.size(), reference[v].size()) << "vertex " << v;
      EXPECT_TRUE(std::equal(got.begin(), got.end(), reference[v].begin()))
          << "vertex " << v;
    }
  }
}

// LabelComponents on the CSR graph must produce the same partition as a
// reference union-find over the raw edge list, with dense first-seen ids.
TEST(GraphDifferentialTest, LabelComponentsMatchesUnionFind) {
  for (uint64_t seed : {13u, 14u}) {
    Rng rng(seed);
    const uint32_t n = 2 + static_cast<uint32_t>(rng.NextBounded(200));
    const uint32_t m = static_cast<uint32_t>(rng.NextBounded(220));

    SpatialGraph g;
    for (uint32_t v = 0; v < n; ++v) g.AddVertex(GraphVertex{});
    std::vector<uint32_t> parent(n);
    for (uint32_t v = 0; v < n; ++v) parent[v] = v;
    auto find = [&](uint32_t v) {
      while (parent[v] != v) v = parent[v] = parent[parent[v]];
      return v;
    };
    for (uint32_t e = 0; e < m; ++e) {
      const VertexId a = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId b = static_cast<VertexId>(rng.NextBounded(n));
      g.AddEdge(a, b);
      if (a != b) parent[find(a)] = find(b);
    }
    g.Finalize();

    uint32_t num_components = 0;
    const std::vector<uint32_t> label = LabelComponents(g, &num_components);
    // Same partition…
    for (uint32_t v = 0; v < n; ++v) {
      for (uint32_t u = v + 1; u < n; ++u) {
        EXPECT_EQ(label[v] == label[u], find(v) == find(u))
            << "vertices " << v << ", " << u;
      }
    }
    // …with dense ids assigned in first-seen vertex order.
    uint32_t next_expected = 0;
    std::vector<char> seen(num_components, 0);
    for (uint32_t v = 0; v < n; ++v) {
      ASSERT_LT(label[v], num_components);
      if (!seen[label[v]]) {
        EXPECT_EQ(label[v], next_expected++);
        seen[label[v]] = 1;
      }
    }
    EXPECT_EQ(next_expected, num_components);
  }
}

// The component labeling is invariant under the order edges were added:
// Finalize canonicalizes the adjacency, so a scrambled insertion order
// yields bit-identical labels.
TEST(GraphDifferentialTest, LabelsInvariantUnderEdgeInsertionOrder) {
  Rng rng(21);
  const uint32_t n = 150;
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (uint32_t e = 0; e < 300; ++e) {
    edges.emplace_back(static_cast<VertexId>(rng.NextBounded(n)),
                       static_cast<VertexId>(rng.NextBounded(n)));
  }
  auto build = [&](const std::vector<std::pair<VertexId, VertexId>>& list) {
    SpatialGraph g;
    for (uint32_t v = 0; v < n; ++v) g.AddVertex(GraphVertex{});
    for (const auto& [a, b] : list) g.AddEdge(a, b);
    g.Finalize();
    uint32_t count = 0;
    return LabelComponents(g, &count);
  };
  const std::vector<uint32_t> forward = build(edges);
  std::vector<std::pair<VertexId, VertexId>> scrambled(edges.rbegin(),
                                                       edges.rend());
  // Also flip every orientation.
  for (auto& [a, b] : scrambled) std::swap(a, b);
  EXPECT_EQ(forward, build(scrambled));
}

}  // namespace
}  // namespace scout
