/// Deterministic work-counter guard (tier1): pins the exact
/// GraphBuildStats counters of the grid-hash builder for a fixed-seed
/// scenario. The counters feed CostModel::GraphBuildCost, i.e. simulated
/// prediction time, so an algorithmic regression (or an accidental
/// semantics change in a rewrite) fails this test loudly instead of
/// hiding inside ±10% wall-clock noise. If a future PR deliberately
/// changes the algorithm's work profile, it must re-pin these constants
/// and re-seed the perf baselines in the same change.

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "testing/test_util.h"

namespace scout {
namespace {

using testing::MakeFiber;
using testing::MakeRandomObjects;

// Fixed-seed scenario: four fibers threading through uniform clutter.
std::vector<SpatialObject> GuardScenario() {
  std::vector<SpatialObject> objects;
  for (int f = 0; f < 4; ++f) {
    const std::vector<SpatialObject> fiber =
        MakeFiber(Vec3(3.0 + 4.0 * f, 2.0, 2.0 + 3.0 * f), Vec3(1, 0.3, 0.2),
                  20, 2.0, objects.size(), static_cast<StructureId>(f),
                  /*seed=*/60 + f);
    objects.insert(objects.end(), fiber.begin(), fiber.end());
  }
  const Aabb bounds(Vec3(0, 0, 0), Vec3(50, 50, 50));
  std::vector<SpatialObject> clutter =
      MakeRandomObjects(120, bounds, /*seed=*/17);
  for (SpatialObject& obj : clutter) {
    obj.id += objects.size();
    objects.push_back(obj);
  }
  return objects;
}

TEST(GraphStatsGuardTest, GridHashCountersArePinned) {
  const std::vector<SpatialObject> objects = GuardScenario();
  std::vector<GraphInput> inputs;
  for (const SpatialObject& obj : objects) {
    inputs.push_back(GraphInput{&obj, 0});
  }
  const Aabb bounds(Vec3(0, 0, 0), Vec3(50, 50, 50));
  SpatialGraph graph;
  const GraphBuildStats stats =
      BuildGraphGridHash(inputs, bounds, 32768, &graph);

  // Golden values for this exact scenario, recorded on the CI toolchain
  // (x86-64, -O2). The cell counts derive from FP grid walks, so a
  // toolchain with different FP contraction (e.g. fused FMA) could move
  // a boundary-grazing segment by one cell — like the committed
  // simulated results in BENCH_baseline.json, the exact values assume
  // that codegen. Across reruns and refactors on one toolchain they are
  // exact, and they may only shrink with an intentional algorithm
  // change (see file comment).
  EXPECT_EQ(stats.objects_hashed, 200u);
  EXPECT_EQ(stats.cell_inserts, 555u);
  EXPECT_EQ(stats.pair_comparisons, 83u);
  EXPECT_EQ(stats.edges_created, 83u);
  EXPECT_EQ(graph.NumVertices(), 200u);
  // 83 considered pairs contain one duplicate (a pair sharing two cells).
  EXPECT_EQ(graph.NumEdges(), 82u);
}

TEST(GraphStatsGuardTest, CountersDeterministicAcrossReruns) {
  const std::vector<SpatialObject> objects = GuardScenario();
  std::vector<GraphInput> inputs;
  for (const SpatialObject& obj : objects) {
    inputs.push_back(GraphInput{&obj, 0});
  }
  const Aabb bounds(Vec3(0, 0, 0), Vec3(50, 50, 50));
  GraphBuildStats first;
  for (int run = 0; run < 3; ++run) {
    SpatialGraph graph;
    const GraphBuildStats stats =
        BuildGraphGridHash(inputs, bounds, 32768, &graph);
    if (run == 0) {
      first = stats;
    } else {
      EXPECT_EQ(stats.objects_hashed, first.objects_hashed);
      EXPECT_EQ(stats.cell_inserts, first.cell_inserts);
      EXPECT_EQ(stats.pair_comparisons, first.pair_comparisons);
      EXPECT_EQ(stats.edges_created, first.edges_created);
    }
  }
}

TEST(GraphStatsGuardTest, BruteForceCountersAreAnalytic) {
  const std::vector<SpatialObject> objects = GuardScenario();
  std::vector<GraphInput> inputs;
  for (const SpatialObject& obj : objects) {
    inputs.push_back(GraphInput{&obj, 0});
  }
  SpatialGraph graph;
  const GraphBuildStats stats =
      BuildGraphBruteForce(inputs, /*epsilon=*/0.5, &graph);
  const uint64_t n = objects.size();
  EXPECT_EQ(stats.pair_comparisons, n * (n - 1) / 2);
  // Brute force enumerates each unordered pair once, so created edges
  // are already unique: Finalize must not drop any.
  EXPECT_EQ(graph.NumEdges(), stats.edges_created);
}

}  // namespace
}  // namespace scout
