/// Differential tests pinning the tiled grid-hash builder to the serial
/// oracle: for every tile count the GraphBuildStats counters and the
/// finalized CSR (offsets + neighbor runs, compared byte-for-byte via
/// the per-vertex spans) must be identical — the tiled build is a pure
/// performance transform, not a semantic one. Covers the fused 32-bit
/// single-tile path (tiles=1), the staged 64-bit multi-tile path
/// (tiles>1 on a dense grid), and the sparse cell-table path (cell
/// count above the direct-index threshold).

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_builder.h"
#include "testing/test_util.h"

namespace scout {
namespace {

using testing::MakeRandomObjects;

std::vector<GraphInput> ToInputs(const std::vector<SpatialObject>& objects) {
  std::vector<GraphInput> inputs;
  inputs.reserve(objects.size());
  for (const SpatialObject& obj : objects) {
    inputs.push_back(GraphInput{&obj, static_cast<PageId>(obj.id / 8)});
  }
  return inputs;
}

void ExpectStatsEqual(const GraphBuildStats& a, const GraphBuildStats& b) {
  EXPECT_EQ(a.objects_hashed, b.objects_hashed);
  EXPECT_EQ(a.cell_inserts, b.cell_inserts);
  EXPECT_EQ(a.pair_comparisons, b.pair_comparisons);
  EXPECT_EQ(a.edges_created, b.edges_created);
}

void ExpectGraphsIdentical(const SpatialGraph& a, const SpatialGraph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    const GraphVertex& va = a.vertex(v);
    const GraphVertex& vb = b.vertex(v);
    EXPECT_EQ(va.object_id, vb.object_id) << "vertex " << v;
    EXPECT_EQ(va.page_id, vb.page_id) << "vertex " << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()))
        << "vertex " << v;
  }
}

void DiffTiledAgainstSerial(size_t num_objects, int64_t total_cells,
                            uint64_t seed) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(43, 43, 43));
  const std::vector<SpatialObject> objects =
      MakeRandomObjects(num_objects, bounds, seed);
  const std::vector<GraphInput> inputs = ToInputs(objects);

  SpatialGraph serial;
  const GraphBuildStats serial_stats =
      BuildGraphGridHashSerial(inputs, bounds, total_cells, &serial);

  for (const uint32_t tiles : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(::testing::Message()
                 << "tiles=" << tiles << " objects=" << num_objects
                 << " cells=" << total_cells << " seed=" << seed);
    SpatialGraph tiled;
    const GraphBuildStats tiled_stats =
        BuildGraphGridHashTiled(inputs, bounds, total_cells, tiles, &tiled);
    ExpectStatsEqual(tiled_stats, serial_stats);
    ExpectGraphsIdentical(tiled, serial);
  }
}

// Dense grid, recorder-row shape: tiles=1 takes the fused 32-bit packed
// key path, tiles>1 the staged 64-bit path; all must equal the oracle.
TEST(GraphParallelDifferentialTest, DenseGridMatchesSerialAcrossTileCounts) {
  DiffTiledAgainstSerial(/*num_objects=*/512, /*total_cells=*/32768,
                         /*seed=*/3);
  DiffTiledAgainstSerial(/*num_objects=*/777, /*total_cells=*/32768,
                         /*seed=*/55);
}

// Coarse grid: many objects per cell, so the pair sweep dominates and
// duplicate edges (objects sharing several cells) are common.
TEST(GraphParallelDifferentialTest, CoarseGridMatchesSerialAcrossTileCounts) {
  DiffTiledAgainstSerial(/*num_objects=*/400, /*total_cells=*/512,
                         /*seed=*/7);
}

// Cell count above the direct-index threshold: the sparse cell-table
// path, whose dense-id assignment must also be tile-count-invariant.
TEST(GraphParallelDifferentialTest, SparseGridMatchesSerialAcrossTileCounts) {
  DiffTiledAgainstSerial(/*num_objects=*/300, /*total_cells=*/int64_t{1} << 21,
                         /*seed=*/11);
}

// Degenerate inputs: empty, a single object, and fewer objects than
// tiles (some tiles get zero vertices).
TEST(GraphParallelDifferentialTest, DegenerateInputsMatchSerial) {
  DiffTiledAgainstSerial(/*num_objects=*/0, /*total_cells=*/32768,
                         /*seed=*/1);
  DiffTiledAgainstSerial(/*num_objects=*/1, /*total_cells=*/32768,
                         /*seed=*/2);
  DiffTiledAgainstSerial(/*num_objects=*/5, /*total_cells=*/32768,
                         /*seed=*/4);
}

}  // namespace
}  // namespace scout
