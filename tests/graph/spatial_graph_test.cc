#include "graph/spatial_graph.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

GraphVertex V(double x) {
  GraphVertex v;
  v.object_id = static_cast<ObjectId>(x);
  v.line = Segment(Vec3(x, 0, 0), Vec3(x + 1, 0, 0));
  return v;
}

TEST(SpatialGraphTest, AddVerticesAndEdges) {
  SpatialGraph g;
  const VertexId a = g.AddVertex(V(0));
  const VertexId b = g.AddVertex(V(1));
  const VertexId c = g.AddVertex(V(2));
  EXPECT_EQ(g.NumVertices(), 3u);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.Finalize();
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.neighbors(b).size(), 2u);
  EXPECT_EQ(g.neighbors(a).size(), 1u);
  EXPECT_EQ(g.neighbors(a)[0], b);
}

TEST(SpatialGraphTest, SelfLoopsIgnored) {
  SpatialGraph g;
  const VertexId a = g.AddVertex(V(0));
  g.AddEdge(a, a);
  g.Finalize();
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.neighbors(a).empty());
}

TEST(SpatialGraphTest, FinalizeRemovesParallelEdges) {
  SpatialGraph g;
  const VertexId a = g.AddVertex(V(0));
  const VertexId b = g.AddVertex(V(1));
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  g.AddEdge(b, a);  // Same undirected edge in the other orientation.
  EXPECT_EQ(g.NumEdges(), 3u);  // Buffered count, duplicates included.
  g.Finalize();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.neighbors(a).size(), 1u);
  EXPECT_EQ(g.neighbors(b).size(), 1u);
}

TEST(SpatialGraphTest, NeighborsAreSortedAscending) {
  SpatialGraph g;
  for (int i = 0; i < 6; ++i) g.AddVertex(V(i));
  // Insert edges of vertex 3 in scrambled order and both orientations.
  g.AddEdge(3, 5);
  g.AddEdge(0, 3);
  g.AddEdge(4, 3);
  g.AddEdge(3, 1);
  g.Finalize();
  const auto nb = g.neighbors(3);
  ASSERT_EQ(nb.size(), 4u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 1u);
  EXPECT_EQ(nb[2], 4u);
  EXPECT_EQ(nb[3], 5u);
}

TEST(SpatialGraphTest, MemoryBytesGrowsWithContent) {
  SpatialGraph g;
  const size_t empty = g.MemoryBytes();
  for (int i = 0; i < 100; ++i) g.AddVertex(V(i));
  for (int i = 0; i + 1 < 100; ++i) g.AddEdge(i, i + 1);
  g.Finalize();
  EXPECT_GT(g.MemoryBytes(), empty + 100 * sizeof(GraphVertex));
}

TEST(SpatialGraphTest, MemoryBytesReportsCsrTightly) {
  SpatialGraph g;
  g.ReserveVertices(10);
  for (int i = 0; i < 10; ++i) g.AddVertex(V(i));
  for (int i = 0; i + 1 < 10; ++i) g.AddEdge(i, i + 1);
  g.Finalize();
  // 10 vertices + 11 offsets + 2 * 9 directed neighbor entries. The
  // lower bound is exact; the upper bound allows a little allocator
  // slack (shrink_to_fit is non-binding, assign/resize may round up) but
  // still fails if the construction buffer or per-vertex vectors were
  // left behind.
  const size_t csr_bytes = 10 * sizeof(GraphVertex) +
                           11 * sizeof(uint32_t) + 18 * sizeof(VertexId);
  EXPECT_GE(g.MemoryBytes(), csr_bytes);
  EXPECT_LE(g.MemoryBytes(), csr_bytes + 128);
}

TEST(SpatialGraphTest, ClearResetsAndAllowsRebuild) {
  SpatialGraph g;
  g.AddVertex(V(0));
  g.AddVertex(V(1));
  g.AddEdge(0, 1);
  g.Finalize();
  g.Clear();
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_FALSE(g.finalized());
  // A cleared graph accepts a fresh build cycle.
  g.AddVertex(V(2));
  g.AddVertex(V(3));
  g.AddEdge(0, 1);
  g.Finalize();
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(ComponentsTest, ChainIsOneComponent) {
  SpatialGraph g;
  for (int i = 0; i < 10; ++i) g.AddVertex(V(i));
  for (int i = 0; i + 1 < 10; ++i) g.AddEdge(i, i + 1);
  g.Finalize();
  uint32_t count = 0;
  const std::vector<uint32_t> label = LabelComponents(g, &count);
  EXPECT_EQ(count, 1u);
  for (uint32_t l : label) EXPECT_EQ(l, label[0]);
}

TEST(ComponentsTest, DisjointPiecesGetDistinctLabels) {
  SpatialGraph g;
  for (int i = 0; i < 9; ++i) g.AddVertex(V(i));
  // Three chains: {0,1,2}, {3,4}, {5}, plus {6,7,8}.
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  g.AddEdge(6, 7);
  g.AddEdge(7, 8);
  g.Finalize();
  uint32_t count = 0;
  const std::vector<uint32_t> label = LabelComponents(g, &count);
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(label[0], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_NE(label[5], label[6]);
  EXPECT_EQ(label[6], label[8]);
}

TEST(ComponentsTest, EmptyGraph) {
  SpatialGraph g;
  g.Finalize();
  uint32_t count = 7;
  EXPECT_TRUE(LabelComponents(g, &count).empty());
  EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace scout
