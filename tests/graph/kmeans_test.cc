#include "graph/kmeans.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(KMeansTest, EmptyInput) {
  Rng rng(1);
  const KMeansResult r = KMeans({}, 3, &rng);
  EXPECT_TRUE(r.centers.empty());
}

TEST(KMeansTest, KZero) {
  Rng rng(1);
  const KMeansResult r = KMeans({Vec3(1, 1, 1)}, 0, &rng);
  EXPECT_TRUE(r.centers.empty());
}

TEST(KMeansTest, FewerPointsThanK) {
  Rng rng(2);
  const std::vector<Vec3> points = {Vec3(0, 0, 0), Vec3(10, 0, 0)};
  const KMeansResult r = KMeans(points, 5, &rng);
  EXPECT_LE(r.centers.size(), 2u);
  EXPECT_EQ(r.assignment.size(), 2u);
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Rng data_rng(3);
  std::vector<Vec3> points;
  const Vec3 centers[3] = {Vec3(0, 0, 0), Vec3(100, 0, 0), Vec3(0, 100, 0)};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) {
      points.push_back(centers[c] + Vec3(data_rng.Gaussian(0, 2),
                                         data_rng.Gaussian(0, 2),
                                         data_rng.Gaussian(0, 2)));
    }
  }
  Rng rng(4);
  const KMeansResult r = KMeans(points, 3, &rng);
  ASSERT_EQ(r.centers.size(), 3u);
  // Every true center has a recovered center nearby.
  for (const Vec3& truth : centers) {
    double best = 1e30;
    for (const Vec3& got : r.centers) {
      best = std::min(best, got.DistanceTo(truth));
    }
    EXPECT_LT(best, 5.0);
  }
  // Points in the same true cluster share an assignment.
  for (int c = 0; c < 3; ++c) {
    const uint32_t first = r.assignment[c * 40];
    for (int i = 1; i < 40; ++i) {
      EXPECT_EQ(r.assignment[c * 40 + i], first);
    }
  }
}

TEST(KMeansTest, DeterministicGivenRngState) {
  std::vector<Vec3> points;
  Rng data_rng(5);
  for (int i = 0; i < 100; ++i) {
    points.emplace_back(data_rng.Uniform(0, 50), data_rng.Uniform(0, 50),
                        data_rng.Uniform(0, 50));
  }
  Rng rng1(7);
  Rng rng2(7);
  const KMeansResult a = KMeans(points, 4, &rng1);
  const KMeansResult b = KMeans(points, 4, &rng2);
  ASSERT_EQ(a.centers.size(), b.centers.size());
  for (size_t i = 0; i < a.centers.size(); ++i) {
    EXPECT_EQ(a.centers[i], b.centers[i]);
  }
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMeansTest, AllIdenticalPoints) {
  const std::vector<Vec3> points(10, Vec3(3, 3, 3));
  Rng rng(8);
  const KMeansResult r = KMeans(points, 4, &rng);
  ASSERT_GE(r.centers.size(), 1u);
  EXPECT_EQ(r.centers[0], Vec3(3, 3, 3));
}

TEST(KMeansTest, AssignmentPointsToNearestCenter) {
  Rng data_rng(9);
  std::vector<Vec3> points;
  for (int i = 0; i < 200; ++i) {
    points.emplace_back(data_rng.Uniform(0, 100), data_rng.Uniform(0, 100),
                        data_rng.Uniform(0, 100));
  }
  Rng rng(10);
  const KMeansResult r = KMeans(points, 5, &rng);
  for (size_t i = 0; i < points.size(); ++i) {
    const double assigned =
        points[i].DistanceSquaredTo(r.centers[r.assignment[i]]);
    for (const Vec3& c : r.centers) {
      EXPECT_LE(assigned, points[i].DistanceSquaredTo(c) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace scout
