#include "graph/traversal.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace scout {
namespace {

using testing::MakeFiber;

// Builds a chain graph from a fiber.
SpatialGraph ChainGraph(const std::vector<SpatialObject>& fiber) {
  SpatialGraph g;
  for (const SpatialObject& obj : fiber) {
    GraphVertex v;
    v.object_id = obj.id;
    v.line = obj.geom.AsLine();
    g.AddVertex(v);
  }
  for (VertexId i = 0; i + 1 < g.NumVertices(); ++i) g.AddEdge(i, i + 1);
  g.Finalize();
  return g;
}

TEST(TraversalTest, FindsExitOfCrossingFiber) {
  // Fiber running straight through a cube; it crosses the boundary twice
  // (enters and leaves).
  const std::vector<SpatialObject> fiber =
      MakeFiber(Vec3(-20, 5, 5), Vec3(1, 0, 0), 30, 2.0, 0, 0, /*seed=*/99);
  const SpatialGraph g = ChainGraph(fiber);
  const Region region = Region(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)));
  uint32_t num_components = 0;
  const std::vector<uint32_t> comp = LabelComponents(g, &num_components);

  std::vector<ExitPoint> exits;
  const TraversalStats stats = FindExits(g, comp, region, {}, &exits);
  EXPECT_EQ(stats.vertices_visited, g.NumVertices());
  ASSERT_EQ(exits.size(), 2u);
  // Both crossings lie on the x faces of the box.
  for (const ExitPoint& e : exits) {
    const bool on_x_face = std::abs(e.position.x - 0.0) < 0.5 ||
                           std::abs(e.position.x - 10.0) < 0.5;
    EXPECT_TRUE(on_x_face) << e.position.ToString();
    EXPECT_NEAR(e.direction.Norm(), 1.0, 1e-9);
  }
}

TEST(TraversalTest, ExitDirectionPointsOutward) {
  SpatialGraph g;
  GraphVertex v;
  v.line = Segment(Vec3(9, 5, 5), Vec3(12, 5, 5));  // Leaves through x=10.
  g.AddVertex(v);
  g.Finalize();
  const Region region = Region(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)));
  std::vector<uint32_t> comp = {0};
  std::vector<ExitPoint> exits;
  FindExits(g, comp, region, {}, &exits);
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_NEAR(exits[0].position.x, 10.0, 0.01);
  EXPECT_GT(exits[0].direction.x, 0.9);
}

TEST(TraversalTest, SeededTraversalOnlyVisitsReachable) {
  // Two disjoint chains; seeding in one must not visit the other.
  // (Everything is added before the single Finalize(): the CSR graph is
  // read-only afterwards.)
  std::vector<SpatialObject> objects =
      MakeFiber(Vec3(0, 2, 2), Vec3(1, 0, 0), 10, 2.0, 0, 0);
  const std::vector<SpatialObject> fiber_b =
      MakeFiber(Vec3(0, 8, 8), Vec3(1, 0, 0), 10, 2.0, 100, 1);
  objects.insert(objects.end(), fiber_b.begin(), fiber_b.end());
  SpatialGraph g;
  for (const SpatialObject& obj : objects) {
    GraphVertex v;
    v.object_id = obj.id;
    v.line = obj.geom.AsLine();
    g.AddVertex(v);
  }
  // Chain edges within each fiber; none across: vertices 0..9 and 10..19.
  for (VertexId i = 0; i + 1 < 10; ++i) g.AddEdge(i, i + 1);
  for (VertexId i = 10; i + 1 < 20; ++i) g.AddEdge(i, i + 1);
  g.Finalize();

  uint32_t num_components = 0;
  const std::vector<uint32_t> comp = LabelComponents(g, &num_components);
  EXPECT_EQ(num_components, 2u);

  const Region region = Region(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)));
  std::vector<ExitPoint> exits;
  const TraversalStats stats = FindExits(g, comp, region, {0}, &exits);
  EXPECT_EQ(stats.vertices_visited, 10u);
  for (const ExitPoint& e : exits) EXPECT_EQ(e.component, comp[0]);
}

TEST(TraversalTest, DuplicateSeedsVisitOnce) {
  const std::vector<SpatialObject> fiber =
      MakeFiber(Vec3(0, 5, 5), Vec3(1, 0, 0), 10);
  SpatialGraph g = ChainGraph(fiber);
  uint32_t nc = 0;
  const std::vector<uint32_t> comp = LabelComponents(g, &nc);
  const Region region = Region(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)));
  std::vector<ExitPoint> exits;
  const TraversalStats stats =
      FindExits(g, comp, region, {0, 0, 0, 1, 1}, &exits);
  EXPECT_EQ(stats.vertices_visited, g.NumVertices());
}

TEST(TraversalTest, FullyInsideGraphHasNoExits) {
  const std::vector<SpatialObject> fiber =
      MakeFiber(Vec3(4, 5, 5), Vec3(1, 0, 0), 2, 0.5);
  const SpatialGraph g = ChainGraph(fiber);
  uint32_t nc = 0;
  const std::vector<uint32_t> comp = LabelComponents(g, &nc);
  const Region region = Region(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)));
  std::vector<ExitPoint> exits;
  FindExits(g, comp, region, {}, &exits);
  EXPECT_TRUE(exits.empty());
}

TEST(TraversalTest, VerticesNearPoint) {
  const std::vector<SpatialObject> fiber =
      MakeFiber(Vec3(0, 0, 0), Vec3(1, 0, 0), 20, 2.0);
  const SpatialGraph g = ChainGraph(fiber);
  std::vector<VertexId> near;
  VerticesNearPoint(g, Vec3(10, 0, 0), 3.0, &near);
  EXPECT_FALSE(near.empty());
  for (VertexId v : near) {
    EXPECT_LE(g.vertex(v).line.DistanceTo(Vec3(10, 0, 0)), 3.0);
  }
  std::vector<VertexId> far;
  VerticesNearPoint(g, Vec3(0, 100, 0), 3.0, &far);
  EXPECT_TRUE(far.empty());
}

TEST(TraversalTest, EnteringVerticesFiltersBySourceSide) {
  // A fiber crossing the region from the left (source side) and another
  // crossing from the top.
  SpatialGraph g;
  GraphVertex from_left;
  from_left.line = Segment(Vec3(-2, 5, 5), Vec3(2, 5, 5));
  g.AddVertex(from_left);
  GraphVertex from_top;
  from_top.line = Segment(Vec3(5, 12, 5), Vec3(5, 8, 5));
  g.AddVertex(from_top);
  g.Finalize();

  const Region region = Region(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)));
  const Aabb source(Vec3(-10, 0, 0), Vec3(0, 10, 10));  // Left of region.
  std::vector<VertexId> entering;
  EnteringVertices(g, region, source, 1.0, &entering);
  ASSERT_EQ(entering.size(), 1u);
  EXPECT_EQ(entering[0], 0u);
}

TEST(TraversalTest, StatsAccumulate) {
  TraversalStats a{3, 5};
  a += TraversalStats{7, 11};
  EXPECT_EQ(a.vertices_visited, 10u);
  EXPECT_EQ(a.edges_traversed, 16u);
}

}  // namespace
}  // namespace scout
