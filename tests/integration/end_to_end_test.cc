/// Integration tests running the full stack — generator -> index ->
/// executor -> prefetcher — and checking the paper's qualitative claims
/// on small workloads.

#include <gtest/gtest.h>

#include "engine/experiment.h"
#include "index/flat_index.h"
#include "index/rtree.h"
#include "prefetch/no_prefetch.h"
#include "prefetch/scout_opt_prefetcher.h"
#include "prefetch/scout_prefetcher.h"
#include "prefetch/static_prefetchers.h"
#include "prefetch/trajectory_prefetcher.h"
#include "workload/generators.h"

namespace scout {
namespace {

struct Stack {
  Dataset dataset;
  std::unique_ptr<RTreeIndex> rtree;
  std::unique_ptr<FlatIndex> flat;
  QuerySequenceConfig qcfg;
  ExecutorConfig ecfg;

  explicit Stack(uint64_t objects = 80000) {
    dataset = GenerateNeuronTissue(NeuronConfigForObjectCount(objects, 5));
    rtree = std::move(*RTreeIndex::Build(dataset.objects));
    flat = std::move(*FlatIndex::Build(dataset.objects));
    qcfg.num_queries = 20;
    qcfg.query_volume = 80000.0;
    ecfg.cache_bytes = ScaledCacheBytes(rtree->store());
    ecfg.prefetch_window_ratio = 1.4;
  }
};

TEST(EndToEndTest, ScoutBeatsEveryBaseline) {
  Stack stack;
  ScoutPrefetcher scout{ScoutConfig{}};
  StraightLinePrefetcher straight;
  EwmaPrefetcher ewma(0.3);
  PolynomialPrefetcher poly(2);
  StaticPrefetchConfig scfg;
  scfg.dataset_bounds = stack.dataset.bounds;
  HilbertPrefetcher hilbert(scfg);

  const double scout_hit =
      RunGuidedExperiment(stack.dataset, *stack.rtree, &scout, stack.qcfg,
                          stack.ecfg, 6, 42)
          .hit_rate_pct;
  for (Prefetcher* baseline :
       {static_cast<Prefetcher*>(&straight), static_cast<Prefetcher*>(&ewma),
        static_cast<Prefetcher*>(&poly),
        static_cast<Prefetcher*>(&hilbert)}) {
    const double hit =
        RunGuidedExperiment(stack.dataset, *stack.rtree, baseline,
                            stack.qcfg, stack.ecfg, 6, 42)
            .hit_rate_pct;
    EXPECT_GT(scout_hit, hit) << "baseline " << baseline->name();
  }
}

TEST(EndToEndTest, EveryPrefetcherBeatsNoPrefetching) {
  Stack stack;
  ScoutPrefetcher scout{ScoutConfig{}};
  StraightLinePrefetcher straight;
  EwmaPrefetcher ewma(0.3);
  for (Prefetcher* p :
       {static_cast<Prefetcher*>(&scout), static_cast<Prefetcher*>(&straight),
        static_cast<Prefetcher*>(&ewma)}) {
    const ExperimentResult r = RunGuidedExperiment(
        stack.dataset, *stack.rtree, p, stack.qcfg, stack.ecfg, 4, 77);
    EXPECT_GT(r.speedup, 1.0) << p->name();
  }
}

TEST(EndToEndTest, ScoutOptMatchesScoutWithoutGaps) {
  // Paper footnote 2: "In the absence of gaps SCOUT and SCOUT-OPT have
  // the same performance."
  Stack stack;
  ScoutPrefetcher scout{ScoutConfig{}};
  ScoutOptPrefetcher opt{ScoutConfig{}, stack.flat.get()};
  const double scout_hit =
      RunGuidedExperiment(stack.dataset, *stack.flat, &scout, stack.qcfg,
                          stack.ecfg, 5, 91)
          .hit_rate_pct;
  const double opt_hit =
      RunGuidedExperiment(stack.dataset, *stack.flat, &opt, stack.qcfg,
                          stack.ecfg, 5, 91)
          .hit_rate_pct;
  EXPECT_NEAR(opt_hit, scout_hit, 12.0);
  EXPECT_EQ(opt.gap_pages_fetched(), 0u);
}

TEST(EndToEndTest, ScoutOptBeatsScoutWithGaps) {
  // Figure 12 / 13(f) property: once the gap is large relative to the
  // query extent, linear extrapolation fails and gap traversal pays off.
  Stack stack;
  QuerySequenceConfig gapped = stack.qcfg;
  gapped.query_volume = 30000.0;
  gapped.gap_distance = 45.0;

  ScoutPrefetcher scout{ScoutConfig{}};
  ScoutOptPrefetcher opt{ScoutConfig{}, stack.flat.get()};
  const double scout_hit =
      RunGuidedExperiment(stack.dataset, *stack.flat, &scout, gapped,
                          stack.ecfg, 6, 13)
          .hit_rate_pct;
  const double opt_hit =
      RunGuidedExperiment(stack.dataset, *stack.flat, &opt, gapped,
                          stack.ecfg, 6, 13)
          .hit_rate_pct;
  EXPECT_GT(opt.gap_pages_fetched(), 0u);
  EXPECT_GT(opt_hit, scout_hit - 2.0);  // At least on par; normally above.
}

TEST(EndToEndTest, LongerSequencesImproveScout) {
  // Figure 13(c) property: candidate pruning needs queries to converge.
  Stack stack;
  QuerySequenceConfig short_seq = stack.qcfg;
  short_seq.num_queries = 5;
  QuerySequenceConfig long_seq = stack.qcfg;
  long_seq.num_queries = 35;

  ScoutPrefetcher s1{ScoutConfig{}};
  ScoutPrefetcher s2{ScoutConfig{}};
  const double short_hit =
      RunGuidedExperiment(stack.dataset, *stack.rtree, &s1, short_seq,
                          stack.ecfg, 6, 3)
          .hit_rate_pct;
  const double long_hit =
      RunGuidedExperiment(stack.dataset, *stack.rtree, &s2, long_seq,
                          stack.ecfg, 6, 3)
          .hit_rate_pct;
  EXPECT_GT(long_hit, short_hit);
}

TEST(EndToEndTest, WorksOnRoadNetwork) {
  RoadGenConfig road_cfg;
  road_cfg.num_avenues = 20;
  road_cfg.num_streets = 20;
  road_cfg.num_highways = 5;
  const Dataset roads = GenerateRoadNetwork(road_cfg);
  auto index = std::move(*RTreeIndex::Build(roads.objects));

  QuerySequenceConfig qcfg;
  qcfg.num_queries = 15;
  // Scale query volume to the thin slab dataset.
  qcfg.query_volume = roads.bounds.Volume() * 5e-4;
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(index->store());

  ScoutPrefetcher scout{ScoutConfig{}};
  const ExperimentResult r = RunGuidedExperiment(roads, *index, &scout,
                                                 qcfg, ecfg, 4, 7);
  EXPECT_GT(r.hit_rate_pct, 0.0);
  EXPECT_GT(r.speedup, 1.0);
}

TEST(EndToEndTest, WorksOnLungAirwayWithExplicitAdjacency) {
  AirwayGenConfig air_cfg;
  air_cfg.num_trees = 1;
  air_cfg.levels = 8;
  const Dataset lung = GenerateLungAirway(air_cfg);
  ASSERT_FALSE(lung.adjacency.empty());
  auto index = std::move(*RTreeIndex::Build(lung.objects));

  ScoutConfig scfg;
  scfg.explicit_adjacency = &lung.adjacency;
  ScoutPrefetcher scout{scfg};

  QuerySequenceConfig qcfg;
  qcfg.num_queries = 12;
  qcfg.query_volume = lung.bounds.Volume() * 5e-5;
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(index->store());

  const ExperimentResult r =
      RunGuidedExperiment(lung, *index, &scout, qcfg, ecfg, 4, 7);
  EXPECT_GT(r.hit_rate_pct, 0.0);
}

}  // namespace
}  // namespace scout
