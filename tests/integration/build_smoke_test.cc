/// Build smoke test: every example binary must link and survive both
/// `--help` and its default tiny scenario without crashing. The directory
/// holding the built examples is passed in via the SCOUT_EXAMPLES_DIR
/// environment variable (set by CMake on the ctest registration); when the
/// examples are not built, the tests skip rather than fail.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace scout {
namespace {

const char* kExamples[] = {
    "quickstart",        "diagnose",        "neuron_walkthrough",
    "synapse_detection", "road_navigation",
};

class ExampleSmokeTest : public ::testing::TestWithParam<const char*> {
 protected:
  // Returns the shell command for the example, or "" to skip.
  std::string Command(const std::string& args) const {
    const char* dir = std::getenv("SCOUT_EXAMPLES_DIR");
    if (dir == nullptr || *dir == '\0') return "";
#ifdef _WIN32
    return std::string(dir) + "\\" + GetParam() + " " + args + " > NUL 2>&1";
#else
    return std::string(dir) + "/" + GetParam() + " " + args +
           " > /dev/null 2>&1";
#endif
  }

  void RunAndExpectSuccess(const std::string& args) const {
    const std::string cmd = Command(args);
    if (cmd.empty()) {
      GTEST_SKIP() << "SCOUT_EXAMPLES_DIR not set; examples not built";
    }
    const int rc = std::system(cmd.c_str());
    EXPECT_EQ(rc, 0) << "example exited non-zero: " << cmd;
  }
};

TEST_P(ExampleSmokeTest, HelpExitsZero) { RunAndExpectSuccess("--help"); }

TEST_P(ExampleSmokeTest, DefaultScenarioRuns) { RunAndExpectSuccess(""); }

INSTANTIATE_TEST_SUITE_P(AllExamples, ExampleSmokeTest,
                         ::testing::ValuesIn(kExamples),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace scout
