#include "common/spsc_ring.h"

#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace scout {
namespace {

TEST(SpscRingTest, StartsEmpty) {
  SpscRing<int, 4> ring;
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.SizeApprox(), 0u);
  EXPECT_EQ(ring.Capacity(), 4u);
  int v = 0;
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(SpscRingTest, FifoOrderAndFullRejection) {
  SpscRing<int, 4> ring;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  // Full: the push is REFUSED, not dropped — the pipeline's
  // backpressure-never-loss contract builds on this.
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_EQ(ring.SizeApprox(), 4u);
  for (int i = 0; i < 4; ++i) {
    int v = -1;
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  int v = -1;
  EXPECT_FALSE(ring.TryPop(&v));
  EXPECT_TRUE(ring.Empty());
}

// Free-running counters must index slots correctly long after the
// counter exceeds the capacity (the ring never resets).
TEST(SpscRingTest, WraparoundPreservesValues) {
  SpscRing<uint64_t, 8> ring;
  uint64_t next_push = 0;
  uint64_t next_pop = 0;
  // Irregular push/pop cadence so head/tail hit every alignment.
  for (int round = 0; round < 500; ++round) {
    const int pushes = 1 + (round % 5);
    for (int i = 0; i < pushes; ++i) {
      if (ring.TryPush(next_push)) ++next_push;
    }
    const int pops = 1 + (round % 3);
    for (int i = 0; i < pops; ++i) {
      uint64_t v = 0;
      if (!ring.TryPop(&v)) break;
      ASSERT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  uint64_t v = 0;
  while (ring.TryPop(&v)) {
    ASSERT_EQ(v, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_GT(next_push, 8u * 50);  // Counters wrapped the capacity many times.
}

TEST(SpscRingTest, SizeApproxTracksOccupancy) {
  SpscRing<int, 16> ring;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.TryPush(i));
  EXPECT_EQ(ring.SizeApprox(), 10u);
  int v = 0;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(ring.SizeApprox(), 6u);
  EXPECT_FALSE(ring.Empty());
}

// The SPSC contract under real concurrency: one producer, one consumer,
// every value arrives exactly once and in order. Runs under TSan in CI,
// which also checks the acquire/release publication of slot writes.
TEST(SpscRingTest, TwoThreadTransferIsLosslessAndOrdered) {
  constexpr uint64_t kItems = 100000;
  SpscRing<uint64_t, 64> ring;
  std::vector<uint64_t> received;
  received.reserve(kItems);

  std::thread consumer([&] {
    uint64_t v = 0;
    while (received.size() < kItems) {
      if (ring.TryPop(&v)) {
        received.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (uint64_t i = 0; i < kItems; ++i) {
    while (!ring.TryPush(i)) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(received.size(), kItems);
  for (uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[i], i) << "out-of-order or lost at " << i;
  }
  EXPECT_TRUE(ring.Empty());
}

}  // namespace
}  // namespace scout
