#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MatchesDirectComputation) {
  const double xs[] = {1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  RunningStat s;
  double sum = 0.0;
  for (double x : xs) {
    s.Add(x);
    sum += x;
  }
  const double mean = sum / 6.0;
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), m2 / 5.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(m2 / 5.0), 1e-12);
  EXPECT_EQ(s.min(), -2.0);
  EXPECT_EQ(s.max(), 7.5);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStatTest, MergeEqualsSingleStream) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptyIsNoop) {
  RunningStat a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStat b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(PercentilesTest, KnownDistribution) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const PercentileSummary p = ComputePercentiles(xs);
  EXPECT_NEAR(p.p50, 50.5, 0.01);
  EXPECT_NEAR(p.p90, 90.1, 0.2);
  EXPECT_NEAR(p.p99, 99.01, 0.2);
  EXPECT_EQ(p.max, 100.0);
}

TEST(PercentilesTest, EmptyInput) {
  const PercentileSummary p = ComputePercentiles({});
  EXPECT_EQ(p.p50, 0.0);
  EXPECT_EQ(p.max, 0.0);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-1.005, 1), "-1.0");
}

}  // namespace
}  // namespace scout
