#include "common/rng.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, NextBoundedCoversRangeUniformly) {
  Rng rng(11);
  constexpr uint64_t kBuckets = 10;
  int counts[kBuckets] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (uint64_t b = 0; b < kBuckets; ++b) {
    // Each bucket should be within 10% of the expectation.
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t x = rng.UniformInt(3, 6);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 6);
    saw_lo |= (x == 3);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int heads = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent1(42);
  Rng parent2(42);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  // Same parent seed -> same child stream.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.NextUint64(), child2.NextUint64());
  }
  // Child stream differs from parent stream.
  Rng parent3(42);
  Rng child3 = parent3.Fork();
  EXPECT_NE(child3.NextUint64(), parent3.NextUint64());
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(5);
  const uint64_t first = rng.NextUint64();
  rng.NextUint64();
  rng.Seed(5);
  EXPECT_EQ(rng.NextUint64(), first);
}

}  // namespace
}  // namespace scout
