#include "common/status.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad page size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad page size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad page size");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  // Exhaustive round-trip: every enumerator has a distinct, non-fallback
  // name. A new code added without a ToString case fails here instead of
  // silently printing "Unknown".
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyTypesWork) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

Status FailingOperation() { return Status::Internal("boom"); }

Status Chained() {
  SCOUT_RETURN_IF_ERROR(FailingOperation());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Chained().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace scout
