/// Differential tests pinning the SIMD directory walk to its scalar
/// semantics: BoxRTree::Query (box and frustum-region forms) against a
/// brute-force scan over the loaded entries, and the batched corner-hull
/// prefilter (Frustum::HullOverlapBits) against the per-box scalar test.
/// The populations and queries deliberately include degenerate boxes
/// (zero extent in one, two, or all three axes) and straddling boxes
/// (thin slivers spanning the whole domain) so partial lane groups, tail
/// masks, and touching-boundary comparisons are all exercised — exactly
/// the places a vectorized rewrite could drift from the scalar walk.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/simd.h"
#include "geom/frustum.h"
#include "index/box_rtree.h"

namespace scout {
namespace {

// A mixed population: ordinary small boxes, degenerate points/segments/
// plates, and domain-straddling slivers, all inside [0, 100]^3.
std::vector<Aabb> MixedBoxes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Aabb> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Vec3 c(rng.Uniform(0, 100), rng.Uniform(0, 100),
                 rng.Uniform(0, 100));
    switch (rng.NextBounded(8)) {
      case 0:  // Point (all extents zero).
        boxes.emplace_back(c, c);
        break;
      case 1:  // Axis-aligned segment (two extents zero).
        boxes.emplace_back(c, c + Vec3(rng.Uniform(0, 10), 0, 0));
        break;
      case 2:  // Plate (one extent zero).
        boxes.emplace_back(
            c, c + Vec3(rng.Uniform(0, 5), rng.Uniform(0, 5), 0));
        break;
      case 3:  // Straddling sliver: spans the whole domain on one axis.
        boxes.emplace_back(Vec3(0, c.y, c.z),
                           Vec3(100, c.y + rng.Uniform(0, 0.5),
                                c.z + rng.Uniform(0, 0.5)));
        break;
      default:  // Ordinary small box.
        boxes.push_back(Aabb::FromCenterHalfExtents(
            c, Vec3(rng.Uniform(0.1, 3), rng.Uniform(0.1, 3),
                    rng.Uniform(0.1, 3))));
        break;
    }
  }
  return boxes;
}

// Query mix: ordinary boxes, degenerate point/plane probes, thin slabs,
// and occasional huge boxes that fully contain subtrees (stressing the
// contained-run batch append).
Aabb NextQuery(Rng* rng) {
  const Vec3 c(rng->Uniform(-5, 105), rng->Uniform(-5, 105),
               rng->Uniform(-5, 105));
  switch (rng->NextBounded(8)) {
    case 0:  // Point probe.
      return Aabb(c, c);
    case 1:  // Axis-aligned plane probe (zero thickness).
      return Aabb(Vec3(0, 0, c.z), Vec3(100, 100, c.z));
    case 2:  // Thin slab across the whole domain.
      return Aabb(Vec3(0, c.y, 0), Vec3(100, c.y + 0.25, 100));
    case 3:  // Huge box: contains most of the tree.
      return Aabb::FromCenterHalfExtents(c, Vec3(60, 60, 60));
    default:
      return Aabb::FromCenterHalfExtents(
          c, Vec3(rng->Uniform(1, 20), rng->Uniform(1, 20),
                  rng->Uniform(1, 20)));
  }
}

BoxRTree TreeOver(const std::vector<Aabb>& boxes, size_t fanout) {
  std::vector<uint32_t> payloads(boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) {
    payloads[i] = static_cast<uint32_t>(i);
  }
  BoxRTree tree;
  tree.BulkLoad(boxes, payloads, fanout);
  return tree;
}

// 1k randomized box queries: the walk must return exactly the entries a
// scalar brute-force scan accepts, in bulk-load entry order.
TEST(SimdWalkDifferentialTest, BoxQueryMatchesBruteForceOn1kQueries) {
  const std::vector<Aabb> boxes = MixedBoxes(5000, /*seed=*/101);
  const BoxRTree tree = TreeOver(boxes, BoxRTree::kFanout);
  Rng rng(102);
  std::vector<uint32_t> got;
  std::vector<uint32_t> expected;
  for (int q = 0; q < 1000; ++q) {
    const Aabb query = NextQuery(&rng);
    got.clear();
    tree.Query(query, &got);
    expected.clear();
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (query.Intersects(boxes[i])) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    ASSERT_EQ(got, expected) << "query " << q;
  }
}

// Same differential with a degenerate fanout: partial lane groups at
// every node (count < kLanes) plus the traversal-stack spill path.
TEST(SimdWalkDifferentialTest, BoxQueryMatchesBruteForceAtTinyFanout) {
  const std::vector<Aabb> boxes = MixedBoxes(600, /*seed=*/103);
  const BoxRTree tree = TreeOver(boxes, /*fanout=*/3);
  Rng rng(104);
  std::vector<uint32_t> got;
  std::vector<uint32_t> expected;
  for (int q = 0; q < 250; ++q) {
    const Aabb query = NextQuery(&rng);
    got.clear();
    tree.Query(query, &got);
    expected.clear();
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (query.Intersects(boxes[i])) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    ASSERT_EQ(got, expected) << "query " << q;
  }
}

// Frustum-region queries walk the same SoA slots through the batched
// hull prefilter + plane tests; the accept set must equal the scalar
// per-entry prefiltered test.
TEST(SimdWalkDifferentialTest, FrustumQueryMatchesBruteForce) {
  const std::vector<Aabb> boxes = MixedBoxes(5000, /*seed=*/105);
  const BoxRTree tree = TreeOver(boxes, BoxRTree::kFanout);
  Rng rng(106);
  std::vector<uint32_t> got;
  std::vector<uint32_t> expected;
  for (int q = 0; q < 250; ++q) {
    Vec3 dir(rng.Gaussian(0, 1), rng.Gaussian(0, 1), rng.Gaussian(0, 1));
    if (dir == Vec3()) dir = Vec3(1, 0, 0);
    const Frustum frustum = Frustum::WithVolume(
        Vec3(rng.Uniform(10, 90), rng.Uniform(10, 90), rng.Uniform(10, 90)),
        dir, rng.Uniform(1000, 50000));
    got.clear();
    tree.Query(Region(frustum), &got);
    expected.clear();
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (frustum.IntersectsPrefiltered(boxes[i])) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    ASSERT_EQ(got, expected) << "query " << q;
  }
}

// The batched hull prefilter must agree bit-for-bit with the scalar
// per-box hull test for every chunk size in [1, 64], including counts
// that end mid lane group (tail masking).
TEST(SimdWalkDifferentialTest, HullOverlapBitsMatchesScalarHullTest) {
  const std::vector<Aabb> boxes = MixedBoxes(256, /*seed=*/107);
  // Blocked-SoA slot array, padded with inert slots (inverted boxes) so
  // tail lanes of a partial group never overlap anything.
  const size_t padded = (boxes.size() + 3) & ~size_t{3};
  std::vector<double> blocks(padded * 6);
  for (size_t slot = 0; slot < padded; ++slot) {
    const bool pad = slot >= boxes.size();
    const Aabb box = pad ? Aabb(Vec3(1, 1, 1), Vec3(0, 0, 0)) : boxes[slot];
    const size_t group = (slot & ~size_t{3}) * 6;
    const size_t lane = slot & 3;
    blocks[group + lane] = box.min().x;
    blocks[group + 4 + lane] = box.min().y;
    blocks[group + 8 + lane] = box.min().z;
    blocks[group + 12 + lane] = box.max().x;
    blocks[group + 16 + lane] = box.max().y;
    blocks[group + 20 + lane] = box.max().z;
  }
  Rng rng(108);
  for (int f = 0; f < 16; ++f) {
    Vec3 dir(rng.Gaussian(0, 1), rng.Gaussian(0, 1), rng.Gaussian(0, 1));
    if (dir == Vec3()) dir = Vec3(0, 0, 1);
    const Frustum frustum = Frustum::WithVolume(
        Vec3(rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)),
        dir, rng.Uniform(500, 80000));
    for (uint32_t count = 1; count <= 64; ++count) {
      const uint32_t base = static_cast<uint32_t>(
          rng.NextBounded((boxes.size() - count) / simd::kLanes + 1) *
          simd::kLanes);
      const uint64_t got = frustum.HullOverlapBits(blocks.data(), base, count);
      uint64_t expected = 0;
      for (uint32_t i = 0; i < count; ++i) {
        if (base + i < boxes.size() &&
            frustum.Bounds().Intersects(boxes[base + i])) {
          expected |= uint64_t{1} << i;
        }
      }
      ASSERT_EQ(got, expected)
          << "frustum " << f << " base " << base << " count " << count;
    }
  }
}

}  // namespace
}  // namespace scout
