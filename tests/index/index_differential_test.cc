/// Differential oracle test for the index layer: RTreeIndex and FlatIndex
/// lay out the same objects on different pages, but for any query region
/// the *object coverage* of their result pages must be identical — and
/// must match a brute-force scan over all objects (the ground-truth
/// oracle). Runs 1k randomized queries (cubes and frustums) over seeded
/// random datasets, guarding the traversal rework of the query core.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_executor.h"
#include "index/flat_index.h"
#include "index/rtree.h"
#include "testing/test_util.h"

namespace scout {
namespace {

using testing::MakeRandomObjects;

/// Object ids whose bounds the region intersects, collected through the
/// pages the index reports (page -> object coverage).
std::set<ObjectId> CoveredObjects(const SpatialIndex& index,
                                  const Region& region) {
  std::vector<PageId> pages;
  index.QueryPages(region, &pages);
  // The traversal contract: ascending page ids, no duplicates.
  EXPECT_TRUE(std::is_sorted(pages.begin(), pages.end()));
  EXPECT_TRUE(std::adjacent_find(pages.begin(), pages.end()) == pages.end());
  std::set<ObjectId> ids;
  for (PageId page : pages) {
    for (const SpatialObject& obj : index.store().page(page).objects) {
      if (region.Intersects(obj.Bounds())) ids.insert(obj.id);
    }
  }
  return ids;
}

/// Ground truth: brute-force scan over every object.
std::set<ObjectId> BruteForceObjects(const std::vector<SpatialObject>& objects,
                                     const Region& region) {
  std::set<ObjectId> ids;
  for (const SpatialObject& obj : objects) {
    if (region.Intersects(obj.Bounds())) ids.insert(obj.id);
  }
  return ids;
}

class IndexDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexDifferentialTest, RTreeMatchesFlatAndOracleOnRandomQueries) {
  const uint64_t dataset_seed = GetParam();
  const Aabb bounds(Vec3(0, 0, 0), Vec3(120, 120, 120));
  const std::vector<SpatialObject> objects =
      MakeRandomObjects(15000, bounds, dataset_seed);

  auto rtree_or = RTreeIndex::Build(objects);
  auto flat_or = FlatIndex::Build(objects);
  ASSERT_TRUE(rtree_or.ok());
  ASSERT_TRUE(flat_or.ok());
  const auto& rtree = *rtree_or.value();
  const auto& flat = *flat_or.value();

  Rng rng(dataset_seed * 7919 + 1);
  constexpr int kQueriesPerDataset = 340;
  size_t nonempty = 0;
  for (int q = 0; q < kQueriesPerDataset; ++q) {
    const Vec3 center(rng.Uniform(-10, 130), rng.Uniform(-10, 130),
                      rng.Uniform(-10, 130));
    // Volumes from tiny (sub-page) to large (thousands of objects).
    const double volume = rng.Uniform(10.0, 40000.0);
    Region region;
    if (q % 3 == 0) {
      Vec3 dir(rng.Gaussian(0, 1), rng.Gaussian(0, 1), rng.Gaussian(0, 1));
      if (dir == Vec3()) dir = Vec3(1, 0, 0);
      region = Region::FrustumAt(center, dir, volume);
    } else {
      region = Region::CubeAt(center, volume);
    }

    const std::set<ObjectId> via_rtree = CoveredObjects(rtree, region);
    const std::set<ObjectId> via_flat = CoveredObjects(flat, region);
    const std::set<ObjectId> oracle = BruteForceObjects(objects, region);

    ASSERT_EQ(via_rtree, via_flat)
        << "rtree/flat coverage diverged on query " << q << " (seed "
        << dataset_seed << ")";
    ASSERT_EQ(via_rtree, oracle)
        << "index coverage missed objects on query " << q << " (seed "
        << dataset_seed << ")";
    if (!oracle.empty()) ++nonempty;
  }
  // The query mix must actually exercise the indexes.
  EXPECT_GT(nonempty, static_cast<size_t>(kQueriesPerDataset / 2));
}

// 3 datasets x 340 queries = 1020 randomized differential checks.
INSTANTIATE_TEST_SUITE_P(SeededDatasets, IndexDifferentialTest,
                         ::testing::Values(101u, 202u, 303u));

TEST_P(IndexDifferentialTest, PreparedObjectsMatchNaiveResultFilter) {
  // QueryExecutor::Prepare batch-appends whole pages the region fully
  // contains, skipping the per-object Intersects filter. The result-set
  // contract: the exact object sequence (ids AND order) of the naive
  // page-by-page, object-by-object filter, for cubes and frustums alike.
  const uint64_t dataset_seed = GetParam();
  const Aabb bounds(Vec3(0, 0, 0), Vec3(120, 120, 120));
  const std::vector<SpatialObject> objects =
      MakeRandomObjects(15000, bounds, dataset_seed);
  auto rtree_or = RTreeIndex::Build(objects);
  ASSERT_TRUE(rtree_or.ok());
  const auto& rtree = *rtree_or.value();

  Rng rng(dataset_seed * 104729 + 5);
  size_t fast_path_pages = 0;
  QueryExecutor::PreparedQuery prep;
  for (int q = 0; q < 120; ++q) {
    const Vec3 center(rng.Uniform(0, 120), rng.Uniform(0, 120),
                      rng.Uniform(0, 120));
    // Large volumes so queries regularly contain whole pages.
    const double volume = rng.Uniform(1000.0, 120000.0);
    Region region;
    if (q % 3 == 0) {
      Vec3 dir(rng.Gaussian(0, 1), rng.Gaussian(0, 1), rng.Gaussian(0, 1));
      if (dir == Vec3()) dir = Vec3(1, 0, 0);
      region = Region::FrustumAt(center, dir, volume);
    } else {
      region = Region::CubeAt(center, volume);
    }

    QueryExecutor::Prepare(rtree, region, &prep);
    std::vector<ObjectId> naive;
    for (PageId page : prep.pages) {
      const Page& p = rtree.store().page(page);
      if (region.ContainsBox(p.bounds)) ++fast_path_pages;
      for (const SpatialObject& obj : p.objects) {
        if (region.Intersects(obj.Bounds())) naive.push_back(obj.id);
      }
    }
    ASSERT_EQ(prep.objects.size(), naive.size()) << "query " << q;
    for (size_t i = 0; i < naive.size(); ++i) {
      ASSERT_EQ(prep.objects[i].object->id, naive[i])
          << "query " << q << " object " << i;
    }
  }
  // The query mix must actually exercise the containment fast path.
  EXPECT_GT(fast_path_pages, 0u);
}

}  // namespace
}  // namespace scout
