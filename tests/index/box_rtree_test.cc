#include "index/box_rtree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scout {
namespace {

std::vector<Aabb> RandomBoxes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Aabb> boxes;
  for (size_t i = 0; i < n; ++i) {
    const Vec3 center(rng.Uniform(0, 100), rng.Uniform(0, 100),
                      rng.Uniform(0, 100));
    const Vec3 half(rng.Uniform(0.1, 3), rng.Uniform(0.1, 3),
                    rng.Uniform(0.1, 3));
    boxes.push_back(Aabb::FromCenterHalfExtents(center, half));
  }
  return boxes;
}

TEST(BoxRTreeTest, EmptyTree) {
  BoxRTree tree;
  EXPECT_TRUE(tree.empty());
  std::vector<uint32_t> out;
  tree.Query(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), &out);
  EXPECT_TRUE(out.empty());
  uint32_t payload;
  EXPECT_FALSE(tree.Nearest(Vec3(0, 0, 0), &payload));
}

TEST(BoxRTreeTest, QueryMatchesLinearScan) {
  const std::vector<Aabb> boxes = RandomBoxes(3000, 3);
  std::vector<uint32_t> payloads(boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) {
    payloads[i] = static_cast<uint32_t>(i);
  }
  BoxRTree tree;
  tree.BulkLoad(boxes, payloads);
  EXPECT_EQ(tree.NumEntries(), boxes.size());

  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const Aabb query = Aabb::FromCenterHalfExtents(
        Vec3(rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)),
        Vec3(rng.Uniform(1, 10), rng.Uniform(1, 10), rng.Uniform(1, 10)));
    std::vector<uint32_t> got;
    tree.Query(query, &got);
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (query.Intersects(boxes[i])) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(BoxRTreeTest, RegionQueryWithFrustum) {
  const std::vector<Aabb> boxes = RandomBoxes(2000, 5);
  std::vector<uint32_t> payloads(boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) {
    payloads[i] = static_cast<uint32_t>(i);
  }
  BoxRTree tree;
  tree.BulkLoad(boxes, payloads);

  const Region frustum =
      Region::FrustumAt(Vec3(50, 50, 50), Vec3(1, 0, 0), 20000.0);
  std::vector<uint32_t> got;
  tree.Query(frustum, &got);
  std::vector<uint32_t> expected;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (frustum.Intersects(boxes[i])) {
      expected.push_back(static_cast<uint32_t>(i));
    }
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(BoxRTreeTest, NearestMatchesLinearScan) {
  const std::vector<Aabb> boxes = RandomBoxes(1500, 7);
  std::vector<uint32_t> payloads(boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) {
    payloads[i] = static_cast<uint32_t>(i);
  }
  BoxRTree tree;
  tree.BulkLoad(boxes, payloads);

  Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec3 p(rng.Uniform(-20, 120), rng.Uniform(-20, 120),
                 rng.Uniform(-20, 120));
    uint32_t got;
    ASSERT_TRUE(tree.Nearest(p, &got));
    double best = std::numeric_limits<double>::max();
    for (const Aabb& b : boxes) best = std::min(best, b.DistanceSquaredTo(p));
    EXPECT_NEAR(boxes[got].DistanceSquaredTo(p), best, 1e-9)
        << "trial " << trial;
  }
}

TEST(BoxRTreeTest, SingleEntry) {
  BoxRTree tree;
  tree.BulkLoad({Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1))}, {42});
  std::vector<uint32_t> out;
  tree.Query(Aabb(Vec3(0.5, 0.5, 0.5), Vec3(2, 2, 2)), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
  uint32_t payload;
  ASSERT_TRUE(tree.Nearest(Vec3(9, 9, 9), &payload));
  EXPECT_EQ(payload, 42u);
}

TEST(BoxRTreeTest, TraversalStackSpillsOnDegenerateFanout) {
  // A runtime fanout this wide makes one internal node push more children
  // at once than the fixed traversal stack (sized for the default fanout)
  // can hold, forcing Walk's heap-spill fallback. 500^2 entries give a
  // root with 500 internal children; a query overlapping all of them
  // must spill and still produce the exact ascending payload sequence.
  constexpr size_t kWideFanout = 500;
  constexpr size_t n = kWideFanout * kWideFanout;
  std::vector<Aabb> boxes;
  std::vector<uint32_t> payloads;
  boxes.reserve(n);
  payloads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % 1000);
    const double y = static_cast<double>(i / 1000);
    boxes.push_back(Aabb(Vec3(x, y, 0), Vec3(x + 0.5, y + 0.5, 1)));
    payloads.push_back(static_cast<uint32_t>(i));
  }
  BoxRTree tree;
  tree.BulkLoad(boxes, payloads, kWideFanout);

  // Query 1: strictly contains every box (pure batch-append pops).
  std::vector<uint32_t> all;
  tree.Query(Aabb(Vec3(-1, -1, -1), Vec3(1001, 251, 2)), &all);
  ASSERT_EQ(all.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(all[i], static_cast<uint32_t>(i)) << "position " << i;
  }

  // Query 2: clips boxes mid-row (mixed per-entry testing), checked
  // against a linear scan.
  const Aabb clip(Vec3(100.2, 50.2, 0), Vec3(900.9, 200.9, 1));
  std::vector<uint32_t> got;
  tree.Query(clip, &got);
  std::vector<uint32_t> expected;
  for (size_t i = 0; i < n; ++i) {
    if (clip.Intersects(boxes[i])) expected.push_back(static_cast<uint32_t>(i));
  }
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got, expected);
}

TEST(BoxRTreeTest, DeepBinaryFanoutTreeKeepsEntryOrder) {
  // Fanout 2 over 4k entries builds a ~12-level tree: the deepest
  // directory shape the walk can see, exercising many partially-
  // overlapping pops per query without ever batch-appending at the root.
  constexpr size_t n = 4096;
  std::vector<Aabb> boxes;
  std::vector<uint32_t> payloads;
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    boxes.push_back(Aabb(Vec3(x, 0, 0), Vec3(x + 0.75, 1, 1)));
    payloads.push_back(static_cast<uint32_t>(i));
  }
  BoxRTree tree;
  tree.BulkLoad(boxes, payloads, /*fanout=*/2);
  std::vector<uint32_t> got;
  tree.Query(Aabb(Vec3(1000.1, 0, 0), Vec3(1010.9, 1, 1)), &got);
  std::vector<uint32_t> expected;
  for (uint32_t i = 1000; i <= 1010; ++i) expected.push_back(i);
  EXPECT_EQ(got, expected);
}

TEST(BoxRTreeTest, DeepTreeBeyondTwoLevels) {
  // > kFanout^2 entries forces at least three levels.
  const size_t n = BoxRTree::kFanout * BoxRTree::kFanout + 10;
  std::vector<Aabb> boxes;
  std::vector<uint32_t> payloads;
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    boxes.push_back(Aabb(Vec3(x, 0, 0), Vec3(x + 0.5, 1, 1)));
    payloads.push_back(static_cast<uint32_t>(i));
  }
  BoxRTree tree;
  tree.BulkLoad(boxes, payloads);
  std::vector<uint32_t> out;
  tree.Query(Aabb(Vec3(100.2, 0, 0), Vec3(102.9, 1, 1)), &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{100, 101, 102}));
}

}  // namespace
}  // namespace scout
