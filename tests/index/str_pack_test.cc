#include "index/str_pack.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/aabb.h"

namespace scout {
namespace {

TEST(StrPackTest, ReturnsPermutation) {
  Rng rng(1);
  std::vector<Vec3> points;
  for (int i = 0; i < 1000; ++i) {
    points.emplace_back(rng.Uniform(0, 100), rng.Uniform(0, 100),
                        rng.Uniform(0, 100));
  }
  std::vector<size_t> order = StrOrder(points, 16);
  ASSERT_EQ(order.size(), points.size());
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(StrPackTest, EmptyAndTrivialInputs) {
  EXPECT_TRUE(StrOrder({}, 4).empty());
  const std::vector<Vec3> one = {Vec3(1, 2, 3)};
  EXPECT_EQ(StrOrder(one, 4).size(), 1u);
}

// STR tiles must be far more compact than arbitrary (insertion-order)
// runs: compare the summed tile-bounds volume against the unpacked order.
TEST(StrPackTest, TilesAreSpatiallyCompact) {
  Rng rng(2);
  std::vector<Vec3> points;
  for (int i = 0; i < 4000; ++i) {
    points.emplace_back(rng.Uniform(0, 100), rng.Uniform(0, 100),
                        rng.Uniform(0, 100));
  }
  const size_t capacity = 64;

  auto tile_volume = [&](const std::vector<size_t>& order) {
    double total = 0.0;
    for (size_t start = 0; start < order.size(); start += capacity) {
      Aabb box;
      const size_t end = std::min(start + capacity, order.size());
      for (size_t i = start; i < end; ++i) box.Extend(points[order[i]]);
      total += box.Volume();
    }
    return total;
  };

  std::vector<size_t> identity(points.size());
  std::iota(identity.begin(), identity.end(), 0);
  const double packed = tile_volume(StrOrder(points, capacity));
  const double unpacked = tile_volume(identity);
  EXPECT_LT(packed, unpacked * 0.2);
}

// Points on a regular grid pack into near-perfect tiles: every tile's
// bounds should contain close to `capacity` points and little more.
TEST(StrPackTest, GridPointsFormDisjointishTiles) {
  std::vector<Vec3> points;
  for (int x = 0; x < 16; ++x) {
    for (int y = 0; y < 16; ++y) {
      for (int z = 0; z < 16; ++z) {
        points.emplace_back(x, y, z);
      }
    }
  }
  const size_t capacity = 64;
  const std::vector<size_t> order = StrOrder(points, capacity);
  double total_volume = 0.0;
  for (size_t start = 0; start < order.size(); start += capacity) {
    Aabb box;
    const size_t end = std::min(start + capacity, order.size());
    for (size_t i = start; i < end; ++i) box.Extend(points[order[i]]);
    total_volume += box.Volume();
  }
  // 64 tiles of 64 points each; a perfect 4x4x4 tile of unit-spaced
  // points has bounds volume 27. Allow 3x slack for slab remainders.
  EXPECT_LT(total_volume, 64 * 27.0 * 3);
}

}  // namespace
}  // namespace scout
