#include "index/rtree.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace scout {
namespace {

using testing::MakeRandomObjects;

TEST(RTreeIndexTest, BuildPacksAllObjects) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(100, 100, 100));
  auto index_or = RTreeIndex::Build(MakeRandomObjects(1000, bounds));
  ASSERT_TRUE(index_or.ok());
  const RTreeIndex& index = **index_or;
  EXPECT_EQ(index.store().NumObjects(), 1000u);
  EXPECT_EQ(index.store().NumPages(),
            (1000 + kPageCapacity - 1) / kPageCapacity);
  EXPECT_EQ(index.name(), "rtree-str");
}

// Completeness: every object intersecting the region lives on a page the
// index returns.
TEST(RTreeIndexTest, QueryPagesIsComplete) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(100, 100, 100));
  const std::vector<SpatialObject> objects =
      MakeRandomObjects(5000, bounds, 11);
  auto index_or = RTreeIndex::Build(objects);
  ASSERT_TRUE(index_or.ok());
  const RTreeIndex& index = **index_or;

  Rng rng(12);
  for (int trial = 0; trial < 30; ++trial) {
    const Region query = Region::CubeAt(
        Vec3(rng.Uniform(10, 90), rng.Uniform(10, 90), rng.Uniform(10, 90)),
        rng.Uniform(100, 5000));
    std::vector<PageId> pages;
    index.QueryPages(query, &pages);
    std::unordered_set<ObjectId> covered;
    for (PageId p : pages) {
      for (const SpatialObject& obj : index.store().page(p).objects) {
        covered.insert(obj.id);
      }
    }
    for (const SpatialObject& obj : objects) {
      if (query.Intersects(obj.Bounds())) {
        EXPECT_TRUE(covered.contains(obj.id))
            << "object " << obj.id << " missing, trial " << trial;
      }
    }
  }
}

// Efficiency sanity: a small query must not touch most of the pages.
TEST(RTreeIndexTest, SmallQueriesTouchFewPages) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(100, 100, 100));
  auto index_or = RTreeIndex::Build(MakeRandomObjects(20000, bounds, 13));
  ASSERT_TRUE(index_or.ok());
  const RTreeIndex& index = **index_or;
  std::vector<PageId> pages;
  index.QueryPages(Region::CubeAt(Vec3(50, 50, 50), 500.0), &pages);
  EXPECT_LT(pages.size(), index.store().NumPages() / 5);
  EXPECT_GT(pages.size(), 0u);
}

TEST(RTreeIndexTest, NearestPage) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(100, 100, 100));
  auto index_or = RTreeIndex::Build(MakeRandomObjects(2000, bounds, 14));
  ASSERT_TRUE(index_or.ok());
  const RTreeIndex& index = **index_or;
  const Vec3 probe(42, 42, 42);
  const PageId nearest = index.NearestPage(probe);
  ASSERT_NE(nearest, kInvalidPageId);
  const double got = index.store().page(nearest).bounds.DistanceSquaredTo(probe);
  for (const Page& page : index.store().pages()) {
    EXPECT_LE(got, page.bounds.DistanceSquaredTo(probe) + 1e-9);
  }
}

TEST(RTreeIndexTest, DefaultOrderedRetrievalSortsByDistance) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(100, 100, 100));
  auto index_or = RTreeIndex::Build(MakeRandomObjects(5000, bounds, 15));
  ASSERT_TRUE(index_or.ok());
  const RTreeIndex& index = **index_or;
  const Region query = Region::CubeAt(Vec3(50, 50, 50), 30000.0);
  const Vec3 start(30, 30, 30);
  std::vector<PageId> ordered;
  index.QueryPagesOrdered(query, start, &ordered);
  for (size_t i = 1; i < ordered.size(); ++i) {
    EXPECT_LE(index.store().page(ordered[i - 1]).bounds.DistanceSquaredTo(start),
              index.store().page(ordered[i]).bounds.DistanceSquaredTo(start) +
                  1e-9);
  }
  // Same set as the unordered query.
  std::vector<PageId> plain;
  index.QueryPages(query, &plain);
  std::sort(plain.begin(), plain.end());
  std::vector<PageId> sorted_ordered = ordered;
  std::sort(sorted_ordered.begin(), sorted_ordered.end());
  EXPECT_EQ(plain, sorted_ordered);
}

TEST(RTreeIndexTest, EmptyInput) {
  auto index_or = RTreeIndex::Build({});
  ASSERT_TRUE(index_or.ok());
  const RTreeIndex& index = **index_or;
  EXPECT_EQ(index.store().NumPages(), 0u);
  std::vector<PageId> pages;
  index.QueryPages(Region::CubeAt(Vec3(0, 0, 0), 1000.0), &pages);
  EXPECT_TRUE(pages.empty());
  EXPECT_EQ(index.NearestPage(Vec3(0, 0, 0)), kInvalidPageId);
  EXPECT_FALSE(index.SupportsNeighborhood());
}

}  // namespace
}  // namespace scout
