/// Differential tests of the seed2 query-path semantics: frustum queries
/// run through Frustum::IntersectsPrefiltered (corner-hull AABB prefilter
/// + six-plane test) instead of the plain six-plane test. The contract
/// pinned here:
///   1. Never a false negative vs the geometric ground truth — any page
///      whose bounds cover a point actually inside the frustum is still
///      reported.
///   2. The result set differs from the old (plain Intersects) path ONLY
///      by the documented false-positive removals, and every removed
///      page fails the exact corner-hull AABB test.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "index/box_rtree.h"
#include "index/flat_index.h"
#include "index/rtree.h"
#include "testing/test_util.h"

namespace scout {
namespace {

using testing::MakeRandomObjects;

std::vector<Region> FrustumQueries(const Aabb& bounds, uint64_t seed,
                                   int count) {
  Rng rng(seed);
  std::vector<Region> queries;
  for (int q = 0; q < count; ++q) {
    const Vec3 center(
        rng.Uniform(bounds.min().x - 10, bounds.max().x + 10),
        rng.Uniform(bounds.min().y - 10, bounds.max().y + 10),
        rng.Uniform(bounds.min().z - 10, bounds.max().z + 10));
    Vec3 dir(rng.Gaussian(0, 1), rng.Gaussian(0, 1), rng.Gaussian(0, 1));
    if (dir == Vec3()) dir = Vec3(1, 0, 0);
    queries.push_back(
        Region::FrustumAt(center, dir, rng.Uniform(500.0, 60000.0)));
  }
  return queries;
}

class PrefilterDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrefilterDifferentialTest,
       PrefilteredPathRemovesOnlyHullRejectedPages) {
  const uint64_t dataset_seed = GetParam();
  const Aabb bounds(Vec3(0, 0, 0), Vec3(120, 120, 120));
  const std::vector<SpatialObject> objects =
      MakeRandomObjects(15000, bounds, dataset_seed);
  auto rtree_or = RTreeIndex::Build(objects);
  auto flat_or = FlatIndex::Build(objects);
  ASSERT_TRUE(rtree_or.ok());
  ASSERT_TRUE(flat_or.ok());

  size_t removed_total = 0;
  for (const SpatialIndex* index :
       {static_cast<const SpatialIndex*>(rtree_or.value().get()),
        static_cast<const SpatialIndex*>(flat_or.value().get())}) {
    const PageStore& store = index->store();
    int q = 0;
    for (const Region& region :
         FrustumQueries(bounds, dataset_seed * 31 + 7, 150)) {
      SCOPED_TRACE(::testing::Message()
                   << index->name() << " query " << q++);
      const Frustum& frustum = region.frustum();

      std::vector<PageId> got;
      index->QueryPages(region, &got);
      const std::set<PageId> new_path(got.begin(), got.end());

      // The old path accepted exactly the pages passing the plain
      // six-plane test (conservative node tests cannot over-prune).
      std::set<PageId> old_path;
      for (PageId p = 0; p < store.NumPages(); ++p) {
        if (frustum.Intersects(store.page(p).bounds)) old_path.insert(p);
      }

      // Identity: new result == old result minus the pages the exact
      // corner-hull AABB test rejects — nothing else may move.
      std::set<PageId> expected;
      for (PageId p : old_path) {
        if (frustum.Bounds().Intersects(store.page(p).bounds)) {
          expected.insert(p);
        }
      }
      ASSERT_EQ(new_path, expected);

      // Every removed page fails the exact AABB test (and only removals
      // may be missing from the new path).
      for (PageId p : old_path) {
        if (new_path.contains(p)) continue;
        ++removed_total;
        EXPECT_FALSE(frustum.Bounds().Intersects(store.page(p).bounds))
            << "page " << p << " was removed but passes the AABB test";
      }
    }
  }
  // (Plane-test false positives are rare by nature; the handcrafted case
  // below guarantees the removal branch is exercised regardless.)
  (void)removed_total;
}

TEST_P(PrefilterDifferentialTest, NeverFalseNegativeVsGeometricOracle) {
  // Sample points genuinely inside random frustums: every page whose
  // bounds cover such a point must be reported by the prefiltered path
  // (the prefilter may only drop pages disjoint from the corner hull,
  // which cannot cover an interior point).
  const uint64_t dataset_seed = GetParam();
  const Aabb bounds(Vec3(0, 0, 0), Vec3(120, 120, 120));
  const std::vector<SpatialObject> objects =
      MakeRandomObjects(15000, bounds, dataset_seed);
  auto rtree_or = RTreeIndex::Build(objects);
  ASSERT_TRUE(rtree_or.ok());
  const auto& index = *rtree_or.value();
  const PageStore& store = index.store();

  Rng rng(dataset_seed * 53 + 11);
  size_t covered_checks = 0;
  int q = 0;
  for (const Region& region :
       FrustumQueries(bounds, dataset_seed * 17 + 3, 60)) {
    SCOPED_TRACE(::testing::Message() << "query " << q++);
    const Frustum& frustum = region.frustum();
    std::vector<PageId> got;
    index.QueryPages(region, &got);
    const std::set<PageId> reported(got.begin(), got.end());

    const Aabb hull = frustum.Bounds();
    for (int s = 0; s < 200; ++s) {
      const Vec3 p(rng.Uniform(hull.min().x, hull.max().x),
                   rng.Uniform(hull.min().y, hull.max().y),
                   rng.Uniform(hull.min().z, hull.max().z));
      if (!frustum.Contains(p)) continue;
      for (PageId page = 0; page < store.NumPages(); ++page) {
        if (!store.page(page).bounds.Contains(p)) continue;
        ++covered_checks;
        ASSERT_TRUE(reported.contains(page))
            << "page " << page << " covers an interior point but was "
            << "dropped by the prefiltered path";
      }
    }
  }
  // The sampling must actually have exercised covered pages.
  EXPECT_GT(covered_checks, 100u);
}

INSTANTIATE_TEST_SUITE_P(SeededDatasets, PrefilterDifferentialTest,
                         ::testing::Values(101u, 202u, 303u));

TEST(PrefilterDifferentialTest, HandcraftedPlaneFalsePositiveIsRemoved) {
  // The documented false-positive shape: a large box diagonally outside
  // the hull that straddles the near/far slab. Every plane's p-vertex
  // lands inside that plane (each corner satisfies SOME plane), yet the
  // box is disjoint from the frustum — the plain test accepts it, the
  // hull prefilter rejects it. Built as a directory entry to pin the
  // removal end-to-end through BoxRTree::Query.
  const Frustum frustum(Vec3(0, 0, 0), Vec3(0, 0, 1), 1.0, 5.0, 0.5, 2.5);
  const Aabb false_positive(Vec3(3, 3, -10), Vec3(10, 10, 10));
  ASSERT_TRUE(frustum.Intersects(false_positive));
  ASSERT_FALSE(frustum.Bounds().Intersects(false_positive));
  ASSERT_FALSE(frustum.IntersectsPrefiltered(false_positive));

  // A box genuinely inside the frustum must survive next to it.
  const Aabb inside(Vec3(-0.5, -0.5, 2), Vec3(0.5, 0.5, 3));

  BoxRTree tree;
  tree.BulkLoad({inside, false_positive}, {0, 1});
  std::vector<uint32_t> out;
  tree.Query(Region(frustum), &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{0}));
}

}  // namespace
}  // namespace scout
