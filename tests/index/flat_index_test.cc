#include "index/flat_index.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace scout {
namespace {

using testing::MakeRandomObjects;

TEST(FlatIndexTest, BuildAndCompleteness) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(100, 100, 100));
  const std::vector<SpatialObject> objects =
      MakeRandomObjects(5000, bounds, 21);
  auto index_or = FlatIndex::Build(objects);
  ASSERT_TRUE(index_or.ok());
  const FlatIndex& index = **index_or;
  EXPECT_EQ(index.store().NumObjects(), 5000u);
  EXPECT_TRUE(index.SupportsNeighborhood());
  EXPECT_EQ(index.name(), "flat");

  Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    const Region query = Region::CubeAt(
        Vec3(rng.Uniform(10, 90), rng.Uniform(10, 90), rng.Uniform(10, 90)),
        rng.Uniform(500, 4000));
    std::vector<PageId> pages;
    index.QueryPages(query, &pages);
    std::unordered_set<ObjectId> covered;
    for (PageId p : pages) {
      for (const SpatialObject& obj : index.store().page(p).objects) {
        covered.insert(obj.id);
      }
    }
    for (const SpatialObject& obj : objects) {
      if (query.Intersects(obj.Bounds())) {
        EXPECT_TRUE(covered.contains(obj.id));
      }
    }
  }
}

TEST(FlatIndexTest, NeighborsAreSymmetricAndSpatiallyClose) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(80, 80, 80));
  auto index_or = FlatIndex::Build(MakeRandomObjects(4000, bounds, 23));
  ASSERT_TRUE(index_or.ok());
  const FlatIndex& index = **index_or;
  const FlatIndexConfig config;  // Default margin used at build time.

  for (PageId p = 0; p < index.store().NumPages(); ++p) {
    for (PageId q : index.PageNeighbors(p)) {
      ASSERT_LT(q, index.store().NumPages());
      EXPECT_NE(q, p);
      // Symmetry.
      const auto& back = index.PageNeighbors(q);
      EXPECT_TRUE(std::find(back.begin(), back.end(), p) != back.end());
      // Proximity: expanded bounds must intersect.
      EXPECT_TRUE(index.store()
                      .page(p)
                      .bounds.Expanded(config.neighbor_margin)
                      .Intersects(index.store().page(q).bounds));
    }
  }
  EXPECT_GT(index.MeanNeighborCount(), 0.0);
}

TEST(FlatIndexTest, HilbertLayoutHasLocality) {
  // Consecutive page ids should usually be spatial neighbors — that is
  // what makes sequential disk layout worthwhile.
  const Aabb bounds(Vec3(0, 0, 0), Vec3(80, 80, 80));
  auto index_or = FlatIndex::Build(MakeRandomObjects(8000, bounds, 24));
  ASSERT_TRUE(index_or.ok());
  const FlatIndex& index = **index_or;
  size_t adjacent_pairs = 0;
  const size_t n = index.store().NumPages();
  for (PageId p = 0; p + 1 < n; ++p) {
    if (index.store().page(p).bounds.Expanded(2.0).Intersects(
            index.store().page(p + 1).bounds)) {
      ++adjacent_pairs;
    }
  }
  EXPECT_GT(adjacent_pairs, n * 7 / 10);
}

TEST(FlatIndexTest, OrderedRetrievalStartsNearSeedAndCoversResult) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(80, 80, 80));
  auto index_or = FlatIndex::Build(MakeRandomObjects(6000, bounds, 25));
  ASSERT_TRUE(index_or.ok());
  const FlatIndex& index = **index_or;
  const Region query = Region::CubeAt(Vec3(40, 40, 40), 64000.0);
  const Vec3 start(20, 40, 40);

  std::vector<PageId> ordered;
  index.QueryPagesOrdered(query, start, &ordered);
  std::vector<PageId> plain;
  index.QueryPages(query, &plain);
  ASSERT_FALSE(ordered.empty());

  // Same set.
  std::vector<PageId> a = ordered;
  std::vector<PageId> b = plain;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);

  // First emitted page is the one nearest to the start point.
  double first_d =
      index.store().page(ordered[0]).bounds.DistanceSquaredTo(start);
  for (PageId p : plain) {
    EXPECT_LE(first_d,
              index.store().page(p).bounds.DistanceSquaredTo(start) + 1e-9);
  }

  // Crawl order: early pages are on average closer to the seed than late
  // pages.
  double early = 0.0;
  double late = 0.0;
  const size_t half = ordered.size() / 2;
  for (size_t i = 0; i < ordered.size(); ++i) {
    const double d =
        index.store().page(ordered[i]).bounds.DistanceTo(start);
    (i < half ? early : late) += d;
  }
  if (half > 0 && ordered.size() - half > 0) {
    early /= static_cast<double>(half);
    late /= static_cast<double>(ordered.size() - half);
    EXPECT_LT(early, late);
  }
}

TEST(FlatIndexTest, NearestPage) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(50, 50, 50));
  auto index_or = FlatIndex::Build(MakeRandomObjects(1000, bounds, 26));
  ASSERT_TRUE(index_or.ok());
  const FlatIndex& index = **index_or;
  const PageId p = index.NearestPage(Vec3(25, 25, 25));
  ASSERT_NE(p, kInvalidPageId);
  EXPECT_LT(index.store().page(p).bounds.DistanceTo(Vec3(25, 25, 25)), 30.0);
}

TEST(FlatIndexTest, EmptyInput) {
  auto index_or = FlatIndex::Build({});
  ASSERT_TRUE(index_or.ok());
  EXPECT_EQ((*index_or)->store().NumPages(), 0u);
}

}  // namespace
}  // namespace scout
