#include "geom/hilbert.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scout {
namespace {

// Round-trip property across several curve orders.
class HilbertRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(HilbertRoundTripTest, Encode3DecodesBack) {
  const int bits = GetParam();
  Rng rng(bits);
  const uint32_t mask = (1u << bits) - 1;
  for (int i = 0; i < 500; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextUint64()) & mask;
    const uint32_t y = static_cast<uint32_t>(rng.NextUint64()) & mask;
    const uint32_t z = static_cast<uint32_t>(rng.NextUint64()) & mask;
    const uint64_t h = HilbertEncode3(x, y, z, bits);
    EXPECT_LT(h, 1ull << (3 * bits));
    uint32_t dx;
    uint32_t dy;
    uint32_t dz;
    HilbertDecode3(h, bits, &dx, &dy, &dz);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
    EXPECT_EQ(dz, z);
  }
}

TEST_P(HilbertRoundTripTest, Encode2DecodesBack) {
  const int bits = GetParam();
  Rng rng(bits * 7);
  const uint32_t mask = (1u << bits) - 1;
  for (int i = 0; i < 500; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextUint64()) & mask;
    const uint32_t y = static_cast<uint32_t>(rng.NextUint64()) & mask;
    const uint64_t h = HilbertEncode2(x, y, bits);
    uint32_t dx;
    uint32_t dy;
    HilbertDecode2(h, bits, &dx, &dy);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertRoundTripTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 21));

TEST(HilbertTest, Order1CurveIsPermutationOfAllCells) {
  std::unordered_set<uint64_t> seen;
  for (uint32_t x = 0; x < 2; ++x) {
    for (uint32_t y = 0; y < 2; ++y) {
      for (uint32_t z = 0; z < 2; ++z) {
        seen.insert(HilbertEncode3(x, y, z, 1));
      }
    }
  }
  EXPECT_EQ(seen.size(), 8u);
}

// Core Hilbert property: consecutive curve positions are adjacent cells
// (Manhattan distance exactly 1).
TEST(HilbertTest, ConsecutiveIndicesAreNeighborCells3D) {
  const int bits = 3;
  const uint64_t total = 1ull << (3 * bits);
  uint32_t px = 0;
  uint32_t py = 0;
  uint32_t pz = 0;
  HilbertDecode3(0, bits, &px, &py, &pz);
  for (uint64_t h = 1; h < total; ++h) {
    uint32_t x;
    uint32_t y;
    uint32_t z;
    HilbertDecode3(h, bits, &x, &y, &z);
    const int manhattan = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                          std::abs(static_cast<int>(y) - static_cast<int>(py)) +
                          std::abs(static_cast<int>(z) - static_cast<int>(pz));
    EXPECT_EQ(manhattan, 1) << "at h=" << h;
    px = x;
    py = y;
    pz = z;
  }
}

TEST(HilbertTest, ConsecutiveIndicesAreNeighborCells2D) {
  const int bits = 5;
  const uint64_t total = 1ull << (2 * bits);
  uint32_t px;
  uint32_t py;
  HilbertDecode2(0, bits, &px, &py);
  for (uint64_t h = 1; h < total; ++h) {
    uint32_t x;
    uint32_t y;
    HilbertDecode2(h, bits, &x, &y);
    const int manhattan = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                          std::abs(static_cast<int>(y) - static_cast<int>(py));
    EXPECT_EQ(manhattan, 1) << "at h=" << h;
    px = x;
    py = y;
  }
}

TEST(HilbertTest, PointMappingClampsOutOfBounds) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(10, 10, 10));
  const uint64_t inside = HilbertIndexOfPoint(Vec3(5, 5, 5), bounds, 4);
  EXPECT_LT(inside, 1ull << 12);
  // Outside points clamp to the boundary rather than wrapping.
  const uint64_t low = HilbertIndexOfPoint(Vec3(-100, -100, -100), bounds, 4);
  const uint64_t corner = HilbertIndexOfPoint(Vec3(0, 0, 0), bounds, 4);
  EXPECT_EQ(low, corner);
}

TEST(HilbertTest, PointRoundTripStaysInCell) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(64, 64, 64));
  const int bits = 4;  // 16 cells per axis -> cell size 4.
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p(rng.Uniform(0, 64), rng.Uniform(0, 64), rng.Uniform(0, 64));
    const uint64_t h = HilbertIndexOfPoint(p, bounds, bits);
    const Vec3 back = PointOfHilbertIndex(h, bounds, bits);
    // The reconstructed cell center is within half a cell diagonal.
    EXPECT_LT(back.DistanceTo(p), 4.0 * std::sqrt(3.0) / 2.0 + 1e-9);
  }
}

}  // namespace
}  // namespace scout
