#include "geom/segment.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scout {
namespace {

TEST(SegmentTest, LengthAndMidpoint) {
  const Segment s(Vec3(0, 0, 0), Vec3(3, 4, 0));
  EXPECT_DOUBLE_EQ(s.Length(), 5.0);
  EXPECT_DOUBLE_EQ(s.LengthSquared(), 25.0);
  EXPECT_EQ(s.Midpoint(), Vec3(1.5, 2, 0));
  EXPECT_EQ(s.PointAt(0.0), s.a);
  EXPECT_EQ(s.PointAt(1.0), s.b);
}

TEST(SegmentTest, PointDistanceInteriorAndEndpoints) {
  const Segment s(Vec3(0, 0, 0), Vec3(10, 0, 0));
  EXPECT_DOUBLE_EQ(s.DistanceTo(Vec3(5, 3, 0)), 3.0);   // Interior.
  EXPECT_DOUBLE_EQ(s.DistanceTo(Vec3(-4, 3, 0)), 5.0);  // Clamped to a.
  EXPECT_DOUBLE_EQ(s.DistanceTo(Vec3(14, 3, 0)), 5.0);  // Clamped to b.
  EXPECT_DOUBLE_EQ(s.ClosestParameterTo(Vec3(5, 3, 0)), 0.5);
}

TEST(SegmentTest, DegenerateSegmentActsAsPoint) {
  const Segment s(Vec3(1, 1, 1), Vec3(1, 1, 1));
  EXPECT_DOUBLE_EQ(s.DistanceTo(Vec3(1, 1, 4)), 3.0);
  EXPECT_DOUBLE_EQ(s.DistanceTo(Segment(Vec3(1, 5, 1), Vec3(1, 9, 1))),
                   4.0);
}

TEST(SegmentTest, SegmentSegmentKnownCases) {
  // Crossing (in projection) with vertical offset.
  const Segment a(Vec3(0, 0, 0), Vec3(10, 0, 0));
  const Segment b(Vec3(5, -5, 2), Vec3(5, 5, 2));
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 2.0);

  // Parallel.
  const Segment c(Vec3(0, 3, 0), Vec3(10, 3, 0));
  EXPECT_DOUBLE_EQ(a.DistanceTo(c), 3.0);

  // Collinear, disjoint.
  const Segment d(Vec3(12, 0, 0), Vec3(20, 0, 0));
  EXPECT_DOUBLE_EQ(a.DistanceTo(d), 2.0);

  // Intersecting.
  const Segment e(Vec3(5, -5, 0), Vec3(5, 5, 0));
  EXPECT_NEAR(a.DistanceTo(e), 0.0, 1e-12);
}

TEST(SegmentTest, SegmentDistanceSymmetric) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const Segment a(Vec3(rng.Uniform(-5, 5), rng.Uniform(-5, 5),
                         rng.Uniform(-5, 5)),
                    Vec3(rng.Uniform(-5, 5), rng.Uniform(-5, 5),
                         rng.Uniform(-5, 5)));
    const Segment b(Vec3(rng.Uniform(-5, 5), rng.Uniform(-5, 5),
                         rng.Uniform(-5, 5)),
                    Vec3(rng.Uniform(-5, 5), rng.Uniform(-5, 5),
                         rng.Uniform(-5, 5)));
    EXPECT_NEAR(a.DistanceTo(b), b.DistanceTo(a), 1e-9);
  }
}

// Property: the segment-segment distance never exceeds any point-sampled
// pairwise distance, and matches the sampled minimum closely.
TEST(SegmentTest, SegmentDistanceMatchesDenseSampling) {
  Rng rng(33);
  for (int trial = 0; trial < 50; ++trial) {
    const Segment a(Vec3(rng.Uniform(-3, 3), rng.Uniform(-3, 3),
                         rng.Uniform(-3, 3)),
                    Vec3(rng.Uniform(-3, 3), rng.Uniform(-3, 3),
                         rng.Uniform(-3, 3)));
    const Segment b(Vec3(rng.Uniform(-3, 3), rng.Uniform(-3, 3),
                         rng.Uniform(-3, 3)),
                    Vec3(rng.Uniform(-3, 3), rng.Uniform(-3, 3),
                         rng.Uniform(-3, 3)));
    const double exact = a.DistanceTo(b);
    double sampled = 1e30;
    constexpr int kSteps = 60;
    for (int i = 0; i <= kSteps; ++i) {
      for (int j = 0; j <= kSteps; ++j) {
        const double d = a.PointAt(static_cast<double>(i) / kSteps)
                             .DistanceTo(
                                 b.PointAt(static_cast<double>(j) / kSteps));
        sampled = std::min(sampled, d);
      }
    }
    EXPECT_LE(exact, sampled + 1e-9);
    EXPECT_NEAR(exact, sampled, 0.2);  // Sampling grid resolution bound.
  }
}

TEST(SegmentTest, ClipToBoxFullyInside) {
  const Aabb box(Vec3(0, 0, 0), Vec3(10, 10, 10));
  const Segment s(Vec3(1, 1, 1), Vec3(2, 2, 2));
  double t0;
  double t1;
  ASSERT_TRUE(s.ClipToBox(box, &t0, &t1));
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_DOUBLE_EQ(t1, 1.0);
}

TEST(SegmentTest, ClipToBoxCrossing) {
  const Aabb box(Vec3(0, 0, 0), Vec3(10, 10, 10));
  const Segment s(Vec3(-5, 5, 5), Vec3(15, 5, 5));
  double t0;
  double t1;
  ASSERT_TRUE(s.ClipToBox(box, &t0, &t1));
  EXPECT_NEAR(t0, 0.25, 1e-12);
  EXPECT_NEAR(t1, 0.75, 1e-12);
}

TEST(SegmentTest, ClipToBoxMiss) {
  const Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const Segment s(Vec3(5, 5, 5), Vec3(6, 6, 6));
  EXPECT_FALSE(s.ClipToBox(box, nullptr, nullptr));
  EXPECT_FALSE(s.Intersects(box));
}

TEST(SegmentTest, IntersectsAxisParallelOutside) {
  const Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  // Parallel to x axis, but y outside the slab.
  const Segment s(Vec3(-1, 2, 0.5), Vec3(2, 2, 0.5));
  EXPECT_FALSE(s.Intersects(box));
  const Segment inside(Vec3(-1, 0.5, 0.5), Vec3(2, 0.5, 0.5));
  EXPECT_TRUE(inside.Intersects(box));
}

}  // namespace
}  // namespace scout
