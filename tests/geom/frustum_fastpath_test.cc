/// Property tests of the precomputed p-vertex/n-vertex frustum-box fast
/// paths: agreement with a plane-by-plane reference that re-derives the
/// six planes from the public parameters and picks p-vertices by
/// branching on normal signs per call (the pre-optimization formulation),
/// on boxes inside / outside / straddling every plane. Also pins the
/// relations between Intersects, IntersectsPrefiltered, ContainsBox and
/// corner containment.

#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/frustum.h"

namespace scout {
namespace {

struct RefPlane {
  Vec3 normal;
  double d = 0.0;
};

// Re-derives the six planes exactly as Frustum::ComputePlanes does, from
// the public accessors (the lateral basis mirrors MakeBasis).
std::array<RefPlane, 6> ReferencePlanes(const Frustum& f) {
  const Vec3 dir = f.direction();
  const Vec3 helper = std::abs(dir.x) < 0.9 ? Vec3(1, 0, 0) : Vec3(0, 1, 0);
  const Vec3 right = dir.Cross(helper).Normalized();
  const Vec3 up = right.Cross(dir).Normalized();

  std::array<RefPlane, 6> planes;
  planes[0].normal = dir;
  planes[0].d = -dir.Dot(f.apex() + dir * f.near_distance());
  planes[1].normal = -dir;
  planes[1].d = dir.Dot(f.apex() + dir * f.far_distance());
  const double slope = f.far_half_extent() / f.far_distance();
  const std::array<Vec3, 4> lateral = {right, -right, up, -up};
  for (int i = 0; i < 4; ++i) {
    const Vec3 n = (dir * slope - lateral[i]).Normalized();
    planes[2 + i].normal = n;
    planes[2 + i].d = -n.Dot(f.apex());
  }
  return planes;
}

// The pre-optimization box test: per plane, pick the p-vertex by testing
// the normal's signs on every call.
bool ReferenceIntersects(const std::array<RefPlane, 6>& planes,
                         const Aabb& box) {
  if (box.IsEmpty()) return false;
  for (const RefPlane& plane : planes) {
    const Vec3 p(plane.normal.x >= 0 ? box.max().x : box.min().x,
                 plane.normal.y >= 0 ? box.max().y : box.min().y,
                 plane.normal.z >= 0 ? box.max().z : box.min().z);
    if (plane.normal.Dot(p) + plane.d < 0.0) return false;
  }
  return true;
}

std::vector<Frustum> TestFrustums() {
  return {
      Frustum(Vec3(0, 0, 0), Vec3(0, 0, 1), 1.0, 5.0, 0.5, 2.5),
      Frustum(Vec3(10, -4, 2), Vec3(1, 1, 0), 2.0, 9.0, 1.0, 4.5),
      Frustum::WithVolume(Vec3(5, 5, 5), Vec3(1, 2, 3), 4000.0),
      Frustum::WithVolume(Vec3(-8, 3, 0), Vec3(-1, 0.2, -0.5), 800.0),
  };
}

// Boxes of many sizes centered inside, outside and straddling every
// plane: centers are sampled around each plane's boundary along its
// normal, plus uniform samples over an enclosing volume.
std::vector<Aabb> TestBoxes(const Frustum& f, Rng* rng) {
  const std::array<RefPlane, 6> planes = ReferencePlanes(f);
  std::vector<Aabb> boxes;
  const double scale =
      std::max(1.0, f.far_distance() - f.near_distance());
  for (const RefPlane& plane : planes) {
    // A point on the plane, offset into the frustum's axis region so the
    // samples exercise the actual boundary, not the plane at infinity.
    const Vec3 anchor =
        f.Centroid() - plane.normal * (plane.normal.Dot(f.Centroid()) +
                                       plane.d);
    for (double offset : {-0.8, -0.2, -0.01, 0.0, 0.01, 0.2, 0.8}) {
      for (double half : {0.05, 0.4, 1.5}) {
        const Vec3 center = anchor + plane.normal * (offset * scale) +
                            Vec3(rng->Gaussian(0, 0.3 * scale),
                                 rng->Gaussian(0, 0.3 * scale),
                                 rng->Gaussian(0, 0.3 * scale));
        boxes.push_back(Aabb::FromCenterHalfExtents(
            center, Vec3(half, half, half) * scale));
      }
    }
  }
  const Aabb around = f.Bounds().Expanded(2.0 * scale);
  for (int i = 0; i < 400; ++i) {
    const Vec3 c(rng->Uniform(around.min().x, around.max().x),
                 rng->Uniform(around.min().y, around.max().y),
                 rng->Uniform(around.min().z, around.max().z));
    const Vec3 half(rng->Uniform(0.01, 1.0) * scale,
                    rng->Uniform(0.01, 1.0) * scale,
                    rng->Uniform(0.01, 1.0) * scale);
    boxes.push_back(Aabb::FromCenterHalfExtents(c, half));
  }
  return boxes;
}

TEST(FrustumFastPathTest, PVertexMaskAgreesWithPlaneByPlaneReference) {
  Rng rng(2024);
  for (const Frustum& f : TestFrustums()) {
    const std::array<RefPlane, 6> planes = ReferencePlanes(f);
    int hits = 0;
    const std::vector<Aabb> boxes = TestBoxes(f, &rng);
    for (const Aabb& box : boxes) {
      const bool expected = ReferenceIntersects(planes, box);
      EXPECT_EQ(f.Intersects(box), expected)
          << box.ToString() << " vs reference";
      hits += expected;
    }
    // Sanity: the sample covered both outcomes.
    EXPECT_GT(hits, 20);
    EXPECT_LT(hits, static_cast<int>(boxes.size()) - 20);
  }
}

TEST(FrustumFastPathTest, PrefilteredIsBoundsOverlapAndPlanes) {
  Rng rng(2025);
  for (const Frustum& f : TestFrustums()) {
    for (const Aabb& box : TestBoxes(f, &rng)) {
      EXPECT_EQ(f.IntersectsPrefiltered(box),
                f.Bounds().Intersects(box) && f.Intersects(box))
          << box.ToString();
    }
  }
}

// The prefilter may only remove plane-test false positives: wherever a
// point of the frustum is actually covered, both tests must say yes.
TEST(FrustumFastPathTest, PrefilteredNeverFalseNegative) {
  Rng rng(2026);
  for (const Frustum& f : TestFrustums()) {
    const Aabb bounds = f.Bounds();
    int inside = 0;
    for (int i = 0; i < 3000; ++i) {
      const Vec3 p(rng.Uniform(bounds.min().x, bounds.max().x),
                   rng.Uniform(bounds.min().y, bounds.max().y),
                   rng.Uniform(bounds.min().z, bounds.max().z));
      if (!f.Contains(p)) continue;
      ++inside;
      const Aabb tiny =
          Aabb::FromCenterHalfExtents(p, Vec3(0.01, 0.01, 0.01));
      EXPECT_TRUE(f.Intersects(tiny)) << p.ToString();
      EXPECT_TRUE(f.IntersectsPrefiltered(tiny)) << p.ToString();
    }
    EXPECT_GT(inside, 100);
  }
}

TEST(FrustumFastPathTest, ContainsBoxMatchesAllCornersAndImpliesIntersects) {
  Rng rng(2027);
  for (const Frustum& f : TestFrustums()) {
    int contained = 0;
    for (const Aabb& box : TestBoxes(f, &rng)) {
      const Vec3& mn = box.min();
      const Vec3& mx = box.max();
      bool all_corners = true;
      for (int c = 0; c < 8; ++c) {
        const Vec3 corner(c & 1 ? mx.x : mn.x, c & 2 ? mx.y : mn.y,
                          c & 4 ? mx.z : mn.z);
        all_corners = all_corners && f.Contains(corner);
      }
      // The n-vertex is the min-dot corner per plane, so the fast path is
      // exactly the all-corners test.
      EXPECT_EQ(f.ContainsBox(box), all_corners) << box.ToString();
      if (f.ContainsBox(box)) {
        ++contained;
        EXPECT_TRUE(f.Intersects(box)) << box.ToString();
        EXPECT_TRUE(f.IntersectsPrefiltered(box)) << box.ToString();
      }
    }
    EXPECT_GT(contained, 0);
  }
}

}  // namespace
}  // namespace scout
