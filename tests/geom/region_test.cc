#include "geom/region.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(RegionTest, CubeBasics) {
  const Region r = Region::CubeAt(Vec3(10, 10, 10), 1000.0);
  EXPECT_TRUE(r.is_box());
  EXPECT_FALSE(r.is_frustum());
  EXPECT_NEAR(r.Volume(), 1000.0, 1e-9);
  EXPECT_EQ(r.Center(), Vec3(10, 10, 10));
  EXPECT_TRUE(r.Contains(Vec3(10, 10, 10)));
  EXPECT_FALSE(r.Contains(Vec3(30, 10, 10)));
}

TEST(RegionTest, FrustumBasics) {
  const Region r = Region::FrustumAt(Vec3(0, 0, 0), Vec3(1, 0, 0), 7000.0);
  EXPECT_TRUE(r.is_frustum());
  EXPECT_NEAR(r.Volume(), 7000.0, 1e-6);
  EXPECT_NEAR(r.Center().DistanceTo(Vec3(0, 0, 0)), 0.0, 1e-9);
}

TEST(RegionTest, BoundsConsistentWithContains) {
  const Region cube = Region::CubeAt(Vec3(0, 0, 0), 8.0);
  EXPECT_TRUE(cube.Bounds().Contains(Vec3(0.9, 0.9, 0.9)));
  const Region fr = Region::FrustumAt(Vec3(5, 5, 5), Vec3(0, 0, 1), 100.0);
  // Everything contained in the frustum is inside its bounds.
  EXPECT_TRUE(fr.Bounds().Contains(fr.Center()));
}

TEST(RegionTest, IntersectsMatchesShape) {
  const Region cube = Region::CubeAt(Vec3(0, 0, 0), 8.0);  // side 2
  EXPECT_TRUE(cube.Intersects(Aabb(Vec3(0.5, 0.5, 0.5), Vec3(3, 3, 3))));
  EXPECT_FALSE(cube.Intersects(Aabb(Vec3(2, 2, 2), Vec3(3, 3, 3))));
}

TEST(RegionTest, RecenteredPreservesShapeAndVolume) {
  const Region cube = Region::CubeAt(Vec3(0, 0, 0), 27.0);
  const Region moved = cube.RecenteredAt(Vec3(100, 0, 0));
  EXPECT_TRUE(moved.is_box());
  EXPECT_NEAR(moved.Volume(), 27.0, 1e-9);
  EXPECT_EQ(moved.Center(), Vec3(100, 0, 0));

  const Region fr = Region::FrustumAt(Vec3(0, 0, 0), Vec3(0, 0, 1), 5000.0);
  const Vec3 new_dir(1, 0, 0);
  const Region moved_fr = fr.RecenteredAt(Vec3(50, 50, 50), &new_dir);
  EXPECT_TRUE(moved_fr.is_frustum());
  EXPECT_NEAR(moved_fr.Volume(), 5000.0, 1e-6);
  EXPECT_NEAR(moved_fr.frustum().direction().Dot(Vec3(1, 0, 0)), 1.0,
              1e-9);
}

TEST(RegionTest, DefaultRegionIsEmptyBox) {
  const Region r;
  EXPECT_TRUE(r.is_box());
  EXPECT_EQ(r.Volume(), 0.0);
}

}  // namespace
}  // namespace scout
