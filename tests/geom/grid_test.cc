#include "geom/grid.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scout {
namespace {

TEST(GridTest, CellOfCorners) {
  const UniformGrid grid(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)), 5, 5, 5);
  EXPECT_EQ(grid.CellOf(Vec3(0, 0, 0)), (CellCoords{0, 0, 0}));
  EXPECT_EQ(grid.CellOf(Vec3(9.99, 9.99, 9.99)), (CellCoords{4, 4, 4}));
  // Boundary max clamps into the last cell.
  EXPECT_EQ(grid.CellOf(Vec3(10, 10, 10)), (CellCoords{4, 4, 4}));
  // Outside points clamp.
  EXPECT_EQ(grid.CellOf(Vec3(-5, 50, 5)), (CellCoords{0, 4, 2}));
}

TEST(GridTest, FlatIndexRoundTrip) {
  const UniformGrid grid(Aabb(Vec3(0, 0, 0), Vec3(8, 8, 8)), 2, 3, 4);
  for (int64_t i = 0; i < grid.TotalCells(); ++i) {
    EXPECT_EQ(grid.FlatIndex(grid.CoordsOf(i)), i);
  }
}

TEST(GridTest, CellBoundsTileTheVolume) {
  const UniformGrid grid(Aabb(Vec3(0, 0, 0), Vec3(6, 6, 6)), 3, 3, 3);
  double total = 0.0;
  for (int64_t i = 0; i < grid.TotalCells(); ++i) {
    total += grid.CellBounds(grid.CoordsOf(i)).Volume();
  }
  EXPECT_NEAR(total, 216.0, 1e-9);
}

TEST(GridTest, WithTotalCellsApproximatesTarget) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(100, 100, 100));
  for (int64_t target : {8, 64, 512, 4096, 32768}) {
    const UniformGrid grid = UniformGrid::WithTotalCells(bounds, target);
    EXPECT_GE(grid.TotalCells(), target / 3);
    EXPECT_LE(grid.TotalCells(), target * 3);
  }
}

TEST(GridTest, WithTotalCellsHandlesAnisotropy) {
  // A flat slab should get more cells in the long axes.
  const Aabb slab(Vec3(0, 0, 0), Vec3(100, 100, 1));
  const UniformGrid grid = UniformGrid::WithTotalCells(slab, 1000);
  EXPECT_GT(grid.nx(), grid.nz());
  EXPECT_GT(grid.ny(), grid.nz());
}

TEST(GridTest, CellsOverlappingBox) {
  const UniformGrid grid(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)), 5, 5, 5);
  std::vector<int64_t> cells;
  grid.CellsOverlapping(Aabb(Vec3(0.5, 0.5, 0.5), Vec3(3.5, 1.5, 1.5)),
                        &cells);
  // x spans cells 0..1, y 0..0, z 0..0 => 2 cells.
  EXPECT_EQ(cells.size(), 2u);
  cells.clear();
  grid.CellsOverlapping(Aabb(Vec3(20, 20, 20), Vec3(30, 30, 30)), &cells);
  EXPECT_TRUE(cells.empty());
}

// Property test: the DDA walk finds exactly the cells whose bounds the
// segment passes through (verified against a brute-force scan).
TEST(GridTest, SegmentWalkMatchesBruteForce) {
  const UniformGrid grid(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)), 7, 7, 7);
  Rng rng(55);
  for (int trial = 0; trial < 300; ++trial) {
    const Segment seg(
        Vec3(rng.Uniform(-2, 12), rng.Uniform(-2, 12), rng.Uniform(-2, 12)),
        Vec3(rng.Uniform(-2, 12), rng.Uniform(-2, 12), rng.Uniform(-2, 12)));
    std::vector<int64_t> walked;
    grid.CellsAlongSegment(seg, &walked);
    const std::unordered_set<int64_t> walked_set(walked.begin(),
                                                 walked.end());

    // Brute force: every grid cell slightly expanded (to forgive exact
    // boundary-tracking differences) that the segment intersects must be
    // near the walked set; and every walked cell must be intersected by
    // the segment (expanded slightly).
    for (int64_t i = 0; i < grid.TotalCells(); ++i) {
      const Aabb cell = grid.CellBounds(grid.CoordsOf(i));
      const bool strict = seg.Intersects(cell.Expanded(-1e-9));
      if (strict) {
        EXPECT_TRUE(walked_set.contains(i))
            << "missed cell " << i << " trial " << trial;
      }
      if (walked_set.contains(i)) {
        EXPECT_TRUE(seg.Intersects(cell.Expanded(1e-9)))
            << "spurious cell " << i << " trial " << trial;
      }
    }
  }
}

TEST(GridTest, SegmentWalkAxisAligned) {
  const UniformGrid grid(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)), 5, 5, 5);
  std::vector<int64_t> cells;
  grid.CellsAlongSegment(Segment(Vec3(0.5, 1, 1), Vec3(9.5, 1, 1)), &cells);
  EXPECT_EQ(cells.size(), 5u);  // Crosses all five x cells.
}

TEST(GridTest, SegmentOutsideGridYieldsNothing) {
  const UniformGrid grid(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)), 5, 5, 5);
  std::vector<int64_t> cells;
  grid.CellsAlongSegment(Segment(Vec3(20, 20, 20), Vec3(30, 30, 30)),
                         &cells);
  EXPECT_TRUE(cells.empty());
}

TEST(GridTest, DegenerateSegmentSingleCell) {
  const UniformGrid grid(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10)), 5, 5, 5);
  std::vector<int64_t> cells;
  grid.CellsAlongSegment(Segment(Vec3(5, 5, 5), Vec3(5, 5, 5)), &cells);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], grid.FlatIndex(grid.CellOf(Vec3(5, 5, 5))));
}

}  // namespace
}  // namespace scout
