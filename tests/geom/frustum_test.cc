#include "geom/frustum.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scout {
namespace {

TEST(FrustumTest, ContainsPointsOnAxis) {
  const Frustum f(Vec3(0, 0, 0), Vec3(0, 0, 1), 1.0, 3.0, 0.5, 1.5);
  EXPECT_TRUE(f.Contains(Vec3(0, 0, 2)));
  EXPECT_FALSE(f.Contains(Vec3(0, 0, 0.5)));  // Before near plane.
  EXPECT_FALSE(f.Contains(Vec3(0, 0, 3.5)));  // Beyond far plane.
}

TEST(FrustumTest, LateralApertureGrowsWithDepth) {
  const Frustum f(Vec3(0, 0, 0), Vec3(0, 0, 1), 1.0, 3.0, 0.5, 1.5);
  // Aperture slope = far_half / far = 0.5 per unit depth.
  EXPECT_TRUE(f.Contains(Vec3(0.45, 0, 1.01)));
  EXPECT_FALSE(f.Contains(Vec3(0.7, 0, 1.01)));
  EXPECT_TRUE(f.Contains(Vec3(1.4, 0, 2.99)));
  EXPECT_FALSE(f.Contains(Vec3(1.6, 0, 2.99)));
}

TEST(FrustumTest, VolumeMatchesPrismatoidFormula) {
  const Frustum f(Vec3(0, 0, 0), Vec3(0, 0, 1), 1.0, 3.0, 0.5, 1.5);
  // h=2, A_near=1, A_far=9 -> V = 2/3 * (1 + 9 + 3) = 26/3.
  EXPECT_NEAR(f.Volume(), 26.0 / 3.0, 1e-9);
}

TEST(FrustumTest, WithVolumeProducesRequestedVolume) {
  for (double volume : {1000.0, 30000.0, 80000.0}) {
    const Frustum f =
        Frustum::WithVolume(Vec3(50, 50, 50), Vec3(1, 1, 0), volume);
    EXPECT_NEAR(f.Volume(), volume, volume * 1e-6);
    // Centroid should be near the requested center.
    EXPECT_NEAR(f.Centroid().DistanceTo(Vec3(50, 50, 50)), 0.0, 1e-6);
  }
}

TEST(FrustumTest, BoundsContainCorners) {
  const Frustum f =
      Frustum::WithVolume(Vec3(10, 10, 10), Vec3(0, 1, 0), 500.0);
  const Aabb bounds = f.Bounds();
  for (const Vec3& corner : f.Corners()) {
    EXPECT_TRUE(bounds.Expanded(1e-9).Contains(corner));
  }
}

TEST(FrustumTest, IntersectsIsConservative) {
  const Frustum f(Vec3(0, 0, 0), Vec3(0, 0, 1), 1.0, 5.0, 0.5, 2.5);
  // Box straddling the axis inside depth range must intersect.
  EXPECT_TRUE(f.Intersects(Aabb(Vec3(-0.1, -0.1, 2), Vec3(0.1, 0.1, 3))));
  // Box entirely behind the apex cannot intersect.
  EXPECT_FALSE(
      f.Intersects(Aabb(Vec3(-0.1, -0.1, -3), Vec3(0.1, 0.1, -2))));
  // Box far to the side is culled by a lateral plane.
  EXPECT_FALSE(f.Intersects(Aabb(Vec3(50, 50, 2), Vec3(51, 51, 3))));
  // Empty box never intersects.
  EXPECT_FALSE(f.Intersects(Aabb()));
}

// Property: Contains(p) implies Intersects(tiny box at p) — never a false
// negative on the conservative test.
TEST(FrustumTest, IntersectsNeverFalseNegative) {
  Rng rng(77);
  const Frustum f =
      Frustum::WithVolume(Vec3(0, 0, 0), Vec3(1, 2, 3), 10000.0);
  int inside = 0;
  for (int i = 0; i < 2000; ++i) {
    const Vec3 p(rng.Uniform(-30, 30), rng.Uniform(-30, 30),
                 rng.Uniform(-30, 30));
    if (!f.Contains(p)) continue;
    ++inside;
    const Aabb tiny = Aabb::FromCenterHalfExtents(p, Vec3(0.01, 0.01, 0.01));
    EXPECT_TRUE(f.Intersects(tiny)) << p.ToString();
  }
  EXPECT_GT(inside, 10);  // Sanity: the sample actually covered the frustum.
}

TEST(FrustumTest, DirectionIsNormalized) {
  const Frustum f(Vec3(0, 0, 0), Vec3(0, 0, 10), 1.0, 2.0, 0.3, 0.6);
  EXPECT_NEAR(f.direction().Norm(), 1.0, 1e-12);
}

// Monte-Carlo cross-check of Contains against the analytic volume.
TEST(FrustumTest, ContainsVolumeMonteCarlo) {
  const Frustum f =
      Frustum::WithVolume(Vec3(0, 0, 0), Vec3(0, 0, 1), 8000.0);
  const Aabb bounds = f.Bounds();
  Rng rng(99);
  int hits = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const Vec3 p(
        rng.Uniform(bounds.min().x, bounds.max().x),
        rng.Uniform(bounds.min().y, bounds.max().y),
        rng.Uniform(bounds.min().z, bounds.max().z));
    if (f.Contains(p)) ++hits;
  }
  const double estimated =
      bounds.Volume() * static_cast<double>(hits) / kSamples;
  EXPECT_NEAR(estimated, 8000.0, 8000.0 * 0.05);
}

}  // namespace
}  // namespace scout
