#include "geom/cylinder.h"

#include <numbers>

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(CylinderTest, Accessors) {
  const Cylinder c(Vec3(0, 0, 0), Vec3(0, 0, 10), 1.0, 2.0);
  EXPECT_EQ(c.p0(), Vec3(0, 0, 0));
  EXPECT_EQ(c.p1(), Vec3(0, 0, 10));
  EXPECT_DOUBLE_EQ(c.r0(), 1.0);
  EXPECT_DOUBLE_EQ(c.r1(), 2.0);
  EXPECT_DOUBLE_EQ(c.max_radius(), 2.0);
  EXPECT_DOUBLE_EQ(c.Length(), 10.0);
  EXPECT_EQ(c.Centroid(), Vec3(0, 0, 5));
}

TEST(CylinderTest, TruncatedConeVolume) {
  // Uniform cylinder: pi r^2 h.
  const Cylinder uniform(Vec3(0, 0, 0), Vec3(0, 0, 4), 3.0);
  EXPECT_NEAR(uniform.Volume(), std::numbers::pi * 9 * 4, 1e-9);
  // Full cone (r1 = 0): pi/3 r^2 h.
  const Cylinder cone(Vec3(0, 0, 0), Vec3(0, 0, 6), 3.0, 0.0);
  EXPECT_NEAR(cone.Volume(), std::numbers::pi / 3 * 9 * 6, 1e-9);
}

TEST(CylinderTest, BoundsEnclosesSurface) {
  const Cylinder c(Vec3(1, 1, 1), Vec3(5, 1, 1), 0.5, 0.25);
  const Aabb b = c.Bounds();
  EXPECT_EQ(b.min(), Vec3(0.5, 0.5, 0.5));
  EXPECT_EQ(b.max(), Vec3(5.5, 1.5, 1.5));
}

TEST(CylinderTest, LineSimplificationIsAxis) {
  const Cylinder c(Vec3(0, 0, 0), Vec3(1, 2, 3), 0.5);
  EXPECT_EQ(c.AsLine().a, Vec3(0, 0, 0));
  EXPECT_EQ(c.AsLine().b, Vec3(1, 2, 3));
}

TEST(CylinderTest, IntersectsBoxConservative) {
  const Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  // Axis passes 0.3 away from box, radius 0.5 -> overlaps.
  const Cylinder near(Vec3(-1, 1.3, 0.5), Vec3(2, 1.3, 0.5), 0.5);
  EXPECT_TRUE(near.Intersects(box));
  // Axis passes 2.0 away, radius 0.5 -> no overlap.
  const Cylinder far(Vec3(-1, 3.0, 0.5), Vec3(2, 3.0, 0.5), 0.5);
  EXPECT_FALSE(far.Intersects(box));
}

TEST(CylinderTest, SurfaceDistance) {
  const Cylinder a(Vec3(0, 0, 0), Vec3(10, 0, 0), 1.0);
  const Cylinder b(Vec3(0, 5, 0), Vec3(10, 5, 0), 1.0);
  // Axis distance 5, radii 1+1 -> surface distance 3.
  EXPECT_DOUBLE_EQ(a.SurfaceDistanceTo(b), 3.0);
  // Overlapping cylinders report negative distance.
  const Cylinder c(Vec3(0, 1.5, 0), Vec3(10, 1.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.SurfaceDistanceTo(c), -0.5);
}

}  // namespace
}  // namespace scout
