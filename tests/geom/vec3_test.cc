#include "geom/vec3.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(Vec3Test, Arithmetic) {
  const Vec3 a(1, 2, 3);
  const Vec3 b(4, -5, 6);
  EXPECT_EQ(a + b, Vec3(5, -3, 9));
  EXPECT_EQ(a - b, Vec3(-3, 7, -3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3Test, CompoundAssignment) {
  Vec3 v(1, 1, 1);
  v += Vec3(1, 2, 3);
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= Vec3(1, 1, 1);
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3Test, DotAndCross) {
  const Vec3 x(1, 0, 0);
  const Vec3 y(0, 1, 0);
  EXPECT_EQ(x.Dot(y), 0.0);
  EXPECT_EQ(x.Cross(y), Vec3(0, 0, 1));
  EXPECT_EQ(y.Cross(x), Vec3(0, 0, -1));
  EXPECT_EQ(Vec3(2, 3, 4).Dot(Vec3(5, 6, 7)), 2 * 5 + 3 * 6 + 4 * 7);
}

TEST(Vec3Test, NormAndDistance) {
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).NormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(Vec3(1, 1, 1).DistanceTo(Vec3(1, 1, 3)), 2.0);
  EXPECT_DOUBLE_EQ(Vec3(0, 0, 0).DistanceSquaredTo(Vec3(1, 2, 2)), 9.0);
}

TEST(Vec3Test, NormalizedUnitLength) {
  const Vec3 v = Vec3(3, -4, 12).Normalized();
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
  // Zero vector normalizes to zero instead of NaN.
  EXPECT_EQ(Vec3().Normalized(), Vec3());
}

TEST(Vec3Test, MinMax) {
  const Vec3 a(1, 5, -2);
  const Vec3 b(3, 2, -7);
  EXPECT_EQ(Vec3::Min(a, b), Vec3(1, 2, -7));
  EXPECT_EQ(Vec3::Max(a, b), Vec3(3, 5, -2));
}

TEST(Vec3Test, Lerp) {
  const Vec3 a(0, 0, 0);
  const Vec3 b(10, 20, -10);
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  EXPECT_EQ(Lerp(a, b, 0.5), Vec3(5, 10, -5));
}

TEST(Vec3Test, ToStringIsReadable) {
  EXPECT_EQ(Vec3(1, 2, 3).ToString(), "(1.000, 2.000, 3.000)");
}

}  // namespace
}  // namespace scout
