#include "geom/aabb.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(AabbTest, DefaultIsEmpty) {
  Aabb box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_EQ(box.Volume(), 0.0);
  EXPECT_EQ(box.SurfaceArea(), 0.0);
}

TEST(AabbTest, BasicGeometry) {
  const Aabb box(Vec3(0, 0, 0), Vec3(2, 4, 6));
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_EQ(box.Center(), Vec3(1, 2, 3));
  EXPECT_EQ(box.Extents(), Vec3(2, 4, 6));
  EXPECT_EQ(box.HalfExtents(), Vec3(1, 2, 3));
  EXPECT_DOUBLE_EQ(box.Volume(), 48.0);
  EXPECT_DOUBLE_EQ(box.SurfaceArea(), 2 * (8 + 24 + 12));
}

TEST(AabbTest, ContainsPointInclusiveBoundaries) {
  const Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_TRUE(box.Contains(Vec3(0.5, 0.5, 0.5)));
  EXPECT_TRUE(box.Contains(Vec3(0, 0, 0)));
  EXPECT_TRUE(box.Contains(Vec3(1, 1, 1)));
  EXPECT_FALSE(box.Contains(Vec3(1.0001, 0.5, 0.5)));
  EXPECT_FALSE(box.Contains(Vec3(0.5, -0.0001, 0.5)));
}

TEST(AabbTest, ContainsBox) {
  const Aabb outer(Vec3(0, 0, 0), Vec3(10, 10, 10));
  EXPECT_TRUE(outer.Contains(Aabb(Vec3(1, 1, 1), Vec3(2, 2, 2))));
  EXPECT_FALSE(outer.Contains(Aabb(Vec3(9, 9, 9), Vec3(11, 10, 10))));
  EXPECT_FALSE(outer.Contains(Aabb()));  // Empty box not "contained".
}

TEST(AabbTest, IntersectsSymmetric) {
  const Aabb a(Vec3(0, 0, 0), Vec3(2, 2, 2));
  const Aabb b(Vec3(1, 1, 1), Vec3(3, 3, 3));
  const Aabb c(Vec3(5, 5, 5), Vec3(6, 6, 6));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching faces count as intersecting.
  EXPECT_TRUE(a.Intersects(Aabb(Vec3(2, 0, 0), Vec3(3, 1, 1))));
  // Empty boxes intersect nothing.
  EXPECT_FALSE(a.Intersects(Aabb()));
}

TEST(AabbTest, ExtendGrowsToFit) {
  Aabb box;
  box.Extend(Vec3(1, 2, 3));
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_EQ(box.min(), Vec3(1, 2, 3));
  box.Extend(Vec3(-1, 5, 0));
  EXPECT_EQ(box.min(), Vec3(-1, 2, 0));
  EXPECT_EQ(box.max(), Vec3(1, 5, 3));
  box.Extend(Aabb(Vec3(0, 0, 0), Vec3(9, 9, 9)));
  EXPECT_EQ(box.max(), Vec3(9, 9, 9));
}

TEST(AabbTest, ExpandedAndIntersection) {
  const Aabb box(Vec3(0, 0, 0), Vec3(2, 2, 2));
  const Aabb grown = box.Expanded(1.0);
  EXPECT_EQ(grown.min(), Vec3(-1, -1, -1));
  EXPECT_EQ(grown.max(), Vec3(3, 3, 3));
  const Aabb overlap =
      box.Intersection(Aabb(Vec3(1, 1, 1), Vec3(5, 5, 5)));
  EXPECT_EQ(overlap.min(), Vec3(1, 1, 1));
  EXPECT_EQ(overlap.max(), Vec3(2, 2, 2));
  EXPECT_TRUE(
      box.Intersection(Aabb(Vec3(3, 3, 3), Vec3(4, 4, 4))).IsEmpty());
}

TEST(AabbTest, UnionCoversBoth) {
  const Aabb a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const Aabb b(Vec3(2, 2, 2), Vec3(3, 3, 3));
  const Aabb u = a.Union(b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
}

TEST(AabbTest, DistanceToPoint) {
  const Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_DOUBLE_EQ(box.DistanceTo(Vec3(0.5, 0.5, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(box.DistanceTo(Vec3(3, 0.5, 0.5)), 2.0);
  EXPECT_DOUBLE_EQ(box.DistanceSquaredTo(Vec3(2, 2, 1)), 2.0);
}

TEST(AabbTest, ClosestPointClamps) {
  const Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_EQ(box.ClosestPoint(Vec3(5, -3, 0.5)), Vec3(1, 0, 0.5));
}

TEST(AabbTest, CubeWithVolume) {
  const Aabb cube = Aabb::CubeWithVolume(Vec3(10, 10, 10), 8000.0);
  EXPECT_NEAR(cube.Volume(), 8000.0, 1e-9);
  EXPECT_EQ(cube.Center(), Vec3(10, 10, 10));
  EXPECT_NEAR(cube.Extents().x, 20.0, 1e-9);
}

TEST(AabbTest, TranslatedPreservesSize) {
  const Aabb box(Vec3(0, 0, 0), Vec3(1, 2, 3));
  const Aabb moved = box.Translated(Vec3(10, 10, 10));
  EXPECT_EQ(moved.Extents(), box.Extents());
  EXPECT_EQ(moved.min(), Vec3(10, 10, 10));
}

TEST(AabbTest, FromPointsOrdersCoordinates) {
  const Aabb box = Aabb::FromPoints(Vec3(3, -1, 2), Vec3(-3, 4, 0));
  EXPECT_EQ(box.min(), Vec3(-3, -1, 0));
  EXPECT_EQ(box.max(), Vec3(3, 4, 2));
}

}  // namespace
}  // namespace scout
