#include "prefetch/scout_opt_prefetcher.h"

#include <gtest/gtest.h>

#include "engine/experiment.h"
#include "index/flat_index.h"
#include "index/rtree.h"
#include "testing/test_util.h"
#include "workload/generators.h"

namespace scout {
namespace {

using testing::FakePrefetchIo;
using testing::MakeFiber;

std::vector<SpatialObject> FiberPlusClutter() {
  std::vector<SpatialObject> objects =
      MakeFiber(Vec3(5, 50, 50), Vec3(1, 0, 0), 120, 2.0, 0, 0, 41);
  auto clutter = testing::MakeRandomObjects(
      800, Aabb(Vec3(0, 0, 0), Vec3(260, 100, 100)), 42);
  for (auto& obj : clutter) {
    obj.id += 10000;
    obj.structure_id = 99;
    objects.push_back(obj);
  }
  return objects;
}

QueryResultView Collect(const SpatialIndex& index, const Region* region,
                        std::vector<GraphInput>* inputs,
                        std::vector<PageId>* pages) {
  index.QueryPages(*region, pages);
  for (PageId p : *pages) {
    for (const SpatialObject& obj : index.store().page(p).objects) {
      if (region->Intersects(obj.Bounds())) {
        inputs->push_back(GraphInput{&obj, p});
      }
    }
  }
  QueryResultView view;
  view.region = region;
  view.objects = std::span<const GraphInput>(*inputs);
  view.pages = std::span<const PageId>(*pages);
  return view;
}

TEST(ScoutOptTest, SparseBuildDoesLessWorkThanFull) {
  auto index_or = FlatIndex::Build(FiberPlusClutter());
  ASSERT_TRUE(index_or.ok());
  const FlatIndex& index = **index_or;

  ScoutPrefetcher full{ScoutConfig{}};
  ScoutOptPrefetcher sparse{ScoutConfig{}, &index};
  full.BeginSequence();
  sparse.BeginSequence();

  // Two queries along the fiber: the second Observe has predictions and
  // can build sparsely.
  size_t full_vertices = 0;
  size_t sparse_vertices = 0;
  for (int q = 0; q < 3; ++q) {
    const Region region =
        Region::CubeAt(Vec3(30.0 + 20.0 * q, 50, 50), 8000.0);
    std::vector<GraphInput> inputs;
    std::vector<PageId> pages;
    const QueryResultView view = Collect(index, &region, &inputs, &pages);
    full.Observe(view);
    sparse.Observe(view);
    FakePrefetchIo io1(&index, 16);
    full.RunPrefetch(&io1);
    FakePrefetchIo io2(&index, 16);
    sparse.RunPrefetch(&io2);
    if (q == 2) {
      full_vertices = full.last_observe().graph_vertices;
      sparse_vertices = sparse.last_observe().graph_vertices;
    }
  }
  EXPECT_GT(full_vertices, 0u);
  EXPECT_GT(sparse_vertices, 0u);
  // Sparse construction uses only pages reachable from the predicted
  // entries — never more vertices than the full build.
  EXPECT_LE(sparse_vertices, full_vertices);
  EXPECT_LE(sparse.last_observe().graph_memory_bytes,
            full.last_observe().graph_memory_bytes);
}

TEST(ScoutOptTest, FallsBackToFullBuildWithoutNeighborhood) {
  auto rtree_or = RTreeIndex::Build(FiberPlusClutter());
  ASSERT_TRUE(rtree_or.ok());
  const RTreeIndex& rtree = **rtree_or;
  ASSERT_FALSE(rtree.SupportsNeighborhood());

  ScoutOptPrefetcher opt{ScoutConfig{}, &rtree};
  opt.BeginSequence();
  const Region region = Region::CubeAt(Vec3(30, 50, 50), 8000.0);
  std::vector<GraphInput> inputs;
  std::vector<PageId> pages;
  const QueryResultView view = Collect(rtree, &region, &inputs, &pages);
  EXPECT_GT(opt.Observe(view), 0);
  EXPECT_GT(opt.last_observe().graph_vertices, 0u);
}

TEST(ScoutOptTest, GapTraversalFetchesGapPages) {
  // Build a neuron dataset and run gapped sequences; SCOUT-OPT should
  // fetch pages in the gaps.
  NeuronGenConfig gen = NeuronConfigForObjectCount(60000, 77);
  const Dataset dataset = GenerateNeuronTissue(gen);
  auto index_or = FlatIndex::Build(dataset.objects);
  ASSERT_TRUE(index_or.ok());
  const FlatIndex& index = **index_or;

  ScoutOptPrefetcher opt{ScoutConfig{}, &index};
  QuerySequenceConfig qcfg;
  qcfg.num_queries = 10;
  qcfg.query_volume = 30000.0;
  qcfg.gap_distance = 25.0;
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(index.store());
  ecfg.prefetch_window_ratio = 1.5;
  QueryExecutor executor(&index, &opt, ecfg);

  Rng rng(5);
  const GuidedSequence seq = GenerateGuidedSequence(dataset, qcfg, &rng);
  ASSERT_GT(seq.queries.size(), 3u);
  executor.RunSequence(seq.queries);
  EXPECT_GT(opt.gap_pages_fetched(), 0u);
}

TEST(ScoutOptTest, NoGapTraversalForAdjacentQueries) {
  NeuronGenConfig gen = NeuronConfigForObjectCount(60000, 77);
  const Dataset dataset = GenerateNeuronTissue(gen);
  auto index_or = FlatIndex::Build(dataset.objects);
  ASSERT_TRUE(index_or.ok());
  const FlatIndex& index = **index_or;

  ScoutOptPrefetcher opt{ScoutConfig{}, &index};
  QuerySequenceConfig qcfg;
  qcfg.num_queries = 10;
  qcfg.query_volume = 30000.0;
  qcfg.gap_distance = 0.0;
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(index.store());
  QueryExecutor executor(&index, &opt, ecfg);

  Rng rng(5);
  const GuidedSequence seq = GenerateGuidedSequence(dataset, qcfg, &rng);
  executor.RunSequence(seq.queries);
  EXPECT_EQ(opt.gap_pages_fetched(), 0u);
}

TEST(ScoutOptTest, NameDistinguishesVariant) {
  auto index_or = FlatIndex::Build(FiberPlusClutter());
  ScoutOptPrefetcher opt{ScoutConfig{}, index_or->get()};
  EXPECT_EQ(opt.name(), "scout-opt");
}

}  // namespace
}  // namespace scout
