/// Parameterized contract tests: invariants every Prefetcher
/// implementation must satisfy, run against the full lineup.

#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "index/flat_index.h"
#include "index/rtree.h"
#include "prefetch/no_prefetch.h"
#include "prefetch/scout_opt_prefetcher.h"
#include "prefetch/scout_prefetcher.h"
#include "prefetch/static_prefetchers.h"
#include "prefetch/trajectory_prefetcher.h"
#include "testing/test_util.h"

namespace scout {
namespace {

using testing::FakePrefetchIo;

struct ContractWorld {
  std::vector<SpatialObject> objects;
  std::unique_ptr<FlatIndex> index;  // FLAT so scout-opt is exercised too.

  ContractWorld() {
    objects = testing::MakeFiber(Vec3(5, 50, 50), Vec3(1, 0, 0), 120, 2.0,
                                 0, 0, 41);
    auto clutter = testing::MakeRandomObjects(
        900, Aabb(Vec3(0, 0, 0), Vec3(260, 100, 100)), 42);
    for (auto& obj : clutter) {
      obj.id += 10000;
      objects.push_back(obj);
    }
    index = std::move(*FlatIndex::Build(objects));
  }

  QueryResultView Collect(const Region* region,
                          std::vector<GraphInput>* inputs,
                          std::vector<PageId>* pages) const {
    index->QueryPages(*region, pages);
    for (PageId p : *pages) {
      for (const SpatialObject& obj : index->store().page(p).objects) {
        if (region->Intersects(obj.Bounds())) {
          inputs->push_back(GraphInput{&obj, p});
        }
      }
    }
    QueryResultView view;
    view.region = region;
    view.objects = std::span<const GraphInput>(*inputs);
    view.pages = std::span<const PageId>(*pages);
    return view;
  }
};

ContractWorld& World() {
  static ContractWorld* world = new ContractWorld();
  return *world;
}

struct NamedFactory {
  const char* label;
  std::function<std::unique_ptr<Prefetcher>()> make;
};

class PrefetcherContractTest
    : public ::testing::TestWithParam<NamedFactory> {};

// Runs three queries along the fiber, returning fetched page lists per
// window.
std::vector<std::vector<PageId>> Drive(Prefetcher* p, size_t budget) {
  std::vector<std::vector<PageId>> fetched;
  p->BeginSequence();
  for (int q = 0; q < 3; ++q) {
    const Region region =
        Region::CubeAt(Vec3(30.0 + 20.0 * q, 50, 50), 8000.0);
    std::vector<GraphInput> inputs;
    std::vector<PageId> pages;
    const QueryResultView view = World().Collect(&region, &inputs, &pages);
    EXPECT_GE(p->Observe(view), 0);
    FakePrefetchIo io(World().index.get(), budget);
    p->RunPrefetch(&io);
    fetched.push_back(io.fetch_order());
  }
  return fetched;
}

TEST_P(PrefetcherContractTest, RespectsWindowBudget) {
  auto p = GetParam().make();
  for (const auto& window : Drive(p.get(), 5)) {
    EXPECT_LE(window.size(), 5u);
  }
}

TEST_P(PrefetcherContractTest, FetchesNothingWithZeroBudget) {
  auto p = GetParam().make();
  for (const auto& window : Drive(p.get(), 0)) {
    EXPECT_TRUE(window.empty());
  }
}

TEST_P(PrefetcherContractTest, FetchedPagesAreValid) {
  auto p = GetParam().make();
  const size_t num_pages = World().index->store().NumPages();
  for (const auto& window : Drive(p.get(), 32)) {
    for (PageId page : window) {
      EXPECT_LT(page, num_pages);
    }
  }
}

TEST_P(PrefetcherContractTest, DeterministicAcrossSequenceRestarts) {
  auto p = GetParam().make();
  const auto first = Drive(p.get(), 16);
  const auto second = Drive(p.get(), 16);  // BeginSequence resets state.
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "window " << i;
  }
}

TEST_P(PrefetcherContractTest, NameIsNonEmptyAndStable) {
  auto p = GetParam().make();
  const std::string name(p->name());
  EXPECT_FALSE(name.empty());
  Drive(p.get(), 4);
  EXPECT_EQ(p->name(), name);
}

std::vector<NamedFactory> AllPrefetchers() {
  return {
      {"none", [] { return std::make_unique<NoPrefetcher>(); }},
      {"straight",
       [] { return std::make_unique<StraightLinePrefetcher>(); }},
      {"poly2", [] { return std::make_unique<PolynomialPrefetcher>(2); }},
      {"poly3", [] { return std::make_unique<PolynomialPrefetcher>(3); }},
      {"ewma", [] { return std::make_unique<EwmaPrefetcher>(0.3); }},
      {"hilbert",
       [] {
         StaticPrefetchConfig config;
         config.dataset_bounds = Aabb(Vec3(0, 0, 0), Vec3(260, 100, 100));
         return std::make_unique<HilbertPrefetcher>(config);
       }},
      {"layered",
       [] {
         StaticPrefetchConfig config;
         config.dataset_bounds = Aabb(Vec3(0, 0, 0), Vec3(260, 100, 100));
         return std::make_unique<LayeredPrefetcher>(config);
       }},
      {"scout", [] { return std::make_unique<ScoutPrefetcher>(ScoutConfig{}); }},
      {"scout_deep",
       [] {
         ScoutConfig config;
         config.strategy = ScoutConfig::Strategy::kDeep;
         return std::make_unique<ScoutPrefetcher>(config);
       }},
      {"scout_opt",
       [] {
         return std::make_unique<ScoutOptPrefetcher>(ScoutConfig{},
                                                     World().index.get());
       }},
  };
}

INSTANTIATE_TEST_SUITE_P(
    AllPrefetchers, PrefetcherContractTest,
    ::testing::ValuesIn(AllPrefetchers()),
    [](const ::testing::TestParamInfo<NamedFactory>& info) {
      return std::string(info.param.label);
    });

}  // namespace
}  // namespace scout
