#include "prefetch/static_prefetchers.h"

#include <gtest/gtest.h>

#include "index/rtree.h"
#include "testing/test_util.h"

namespace scout {
namespace {

using testing::FakePrefetchIo;
using testing::MakeRandomObjects;

struct World {
  Aabb bounds = Aabb(Vec3(0, 0, 0), Vec3(100, 100, 100));
  std::unique_ptr<RTreeIndex> index;

  World() {
    index = std::move(*RTreeIndex::Build(MakeRandomObjects(8000, bounds, 9)));
  }

  QueryResultView View(const Region* region) const {
    QueryResultView view;
    view.region = region;
    return view;
  }
};

TEST(HilbertPrefetcherTest, PrefetchesAroundCurrentCell) {
  World world;
  StaticPrefetchConfig config;
  config.dataset_bounds = world.bounds;
  HilbertPrefetcher prefetcher(config);
  prefetcher.BeginSequence();

  const Region query = Region::CubeAt(Vec3(50, 50, 50), 8000.0);
  EXPECT_GE(prefetcher.Observe(world.View(&query)), 0);
  FakePrefetchIo io(world.index.get(), 64);
  prefetcher.RunPrefetch(&io);
  EXPECT_FALSE(io.fetched().empty());
  // Fetched pages are reasonably near the query center (Hilbert cells
  // with adjacent values are spatially local).
  size_t nearby = 0;
  for (PageId p : io.fetched()) {
    if (world.index->store().page(p).bounds.DistanceTo(Vec3(50, 50, 50)) <
        60.0) {
      ++nearby;
    }
  }
  EXPECT_GT(nearby, io.fetched().size() / 2);
}

TEST(HilbertPrefetcherTest, RespectsWindowBudget) {
  World world;
  StaticPrefetchConfig config;
  config.dataset_bounds = world.bounds;
  HilbertPrefetcher prefetcher(config);
  prefetcher.BeginSequence();
  const Region query = Region::CubeAt(Vec3(50, 50, 50), 8000.0);
  prefetcher.Observe(world.View(&query));
  FakePrefetchIo io(world.index.get(), 3);
  prefetcher.RunPrefetch(&io);
  EXPECT_LE(io.fetched().size(), 3u);
}

TEST(LayeredPrefetcherTest, PrefetchesSurroundingCells) {
  World world;
  StaticPrefetchConfig config;
  config.dataset_bounds = world.bounds;
  config.grid_bits = 3;  // 12.5 um cells.
  config.max_cells = 26;
  LayeredPrefetcher prefetcher(config);
  prefetcher.BeginSequence();

  const Region query = Region::CubeAt(Vec3(50, 50, 50), 1000.0);
  prefetcher.Observe(world.View(&query));
  FakePrefetchIo io(world.index.get(), 256);
  prefetcher.RunPrefetch(&io);
  EXPECT_FALSE(io.fetched().empty());
  // All fetched pages intersect the 3x3x3 cell neighborhood around the
  // center cell.
  // Page tiles are larger than grid cells, so allow a page-sized margin.
  const double cell = 100.0 / 8.0;
  const Aabb neighborhood =
      Aabb::FromCenterHalfExtents(
          Vec3(50, 50, 50), Vec3(1.6 * cell, 1.6 * cell, 1.6 * cell))
          .Expanded(25.0);
  for (PageId p : io.fetched()) {
    EXPECT_TRUE(
        world.index->store().page(p).bounds.Intersects(neighborhood));
  }
}

TEST(LayeredPrefetcherTest, EdgeOfDatasetHandled) {
  World world;
  StaticPrefetchConfig config;
  config.dataset_bounds = world.bounds;
  LayeredPrefetcher prefetcher(config);
  prefetcher.BeginSequence();
  // Query at the corner: fewer neighbor cells exist, must not crash.
  const Region query = Region::CubeAt(Vec3(1, 1, 1), 1000.0);
  prefetcher.Observe(world.View(&query));
  FakePrefetchIo io(world.index.get(), 64);
  prefetcher.RunPrefetch(&io);
  SUCCEED();
}

TEST(StaticPrefetchersTest, Names) {
  StaticPrefetchConfig config;
  EXPECT_EQ(HilbertPrefetcher(config).name(), "hilbert");
  EXPECT_EQ(LayeredPrefetcher(config).name(), "layered");
}

}  // namespace
}  // namespace scout
