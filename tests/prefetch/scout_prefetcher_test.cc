#include "prefetch/scout_prefetcher.h"

#include <gtest/gtest.h>

#include "index/rtree.h"
#include "testing/test_util.h"

namespace scout {
namespace {

using testing::FakePrefetchIo;
using testing::MakeFiber;

// A dataset of one long fiber plus scattered clutter, indexed; queries
// march along the fiber.
struct FiberWorld {
  std::vector<SpatialObject> objects;
  std::unique_ptr<RTreeIndex> index;

  explicit FiberWorld(size_t fiber_len = 120) {
    objects = MakeFiber(Vec3(5, 50, 50), Vec3(1, 0, 0), fiber_len, 2.0,
                        /*first_id=*/0, /*structure=*/0, /*seed=*/41);
    auto clutter = testing::MakeRandomObjects(
        800, Aabb(Vec3(0, 0, 0), Vec3(260, 100, 100)), 42);
    for (auto& obj : clutter) {
      obj.id += 10000;
      obj.structure_id = 99;
      objects.push_back(obj);
    }
    auto index_or = RTreeIndex::Build(objects);
    index = std::move(*index_or);
  }

  // Executes `region` against the store, returning the result view data.
  void Collect(const Region& region, std::vector<GraphInput>* inputs,
               std::vector<PageId>* pages) const {
    index->QueryPages(region, pages);
    for (PageId p : *pages) {
      for (const SpatialObject& obj : index->store().page(p).objects) {
        if (region.Intersects(obj.Bounds())) {
          inputs->push_back(GraphInput{&obj, p});
        }
      }
    }
  }
};

QueryResultView MakeView(const Region* region,
                         const std::vector<GraphInput>& inputs,
                         const std::vector<PageId>& pages) {
  QueryResultView view;
  view.region = region;
  view.objects = std::span<const GraphInput>(inputs);
  view.pages = std::span<const PageId>(pages);
  return view;
}

TEST(ScoutPrefetcherTest, FindsExitsOfFollowedFiber) {
  FiberWorld world;
  ScoutPrefetcher scout{ScoutConfig{}};
  scout.BeginSequence();

  const Region q0 = Region::CubeAt(Vec3(30, 50, 50), 20.0 * 20 * 20);
  std::vector<GraphInput> inputs;
  std::vector<PageId> pages;
  world.Collect(q0, &inputs, &pages);
  ASSERT_FALSE(inputs.empty());
  const SimMicros cost = scout.Observe(MakeView(&q0, inputs, pages));
  EXPECT_GT(cost, 0);
  EXPECT_FALSE(scout.last_exits().empty());
  // At least one exit should sit near the fiber's forward boundary
  // (x = 40 face), i.e. near y=z=50.
  bool found_forward = false;
  for (const ExitPoint& e : scout.last_exits()) {
    if (std::abs(e.position.x - 40.0) < 1.0 &&
        std::abs(e.position.y - 50.0) < 8.0) {
      found_forward = true;
    }
  }
  EXPECT_TRUE(found_forward);
}

TEST(ScoutPrefetcherTest, CandidatePruningConvergesAlongSequence) {
  FiberWorld world;
  ScoutPrefetcher scout{ScoutConfig{}};
  scout.BeginSequence();

  std::vector<size_t> candidates;
  for (int q = 0; q < 6; ++q) {
    const Region region =
        Region::CubeAt(Vec3(30.0 + 20.0 * q, 50, 50), 8000.0);
    std::vector<GraphInput> inputs;
    std::vector<PageId> pages;
    world.Collect(region, &inputs, &pages);
    scout.Observe(MakeView(&region, inputs, pages));
    FakePrefetchIo io(world.index.get(), 16);
    scout.RunPrefetch(&io);
    candidates.push_back(scout.last_observe().num_candidates);
  }
  // After the first few queries the candidate set must be small.
  EXPECT_LE(candidates.back(), 3u);
  EXPECT_LT(candidates.back(), candidates.front());
}

TEST(ScoutPrefetcherTest, PrefetchCoversNextQueryPages) {
  FiberWorld world;
  ScoutPrefetcher scout{ScoutConfig{}};
  scout.BeginSequence();

  std::vector<PageId> next_pages;
  FakePrefetchIo io(world.index.get(), 64);
  for (int q = 0; q < 5; ++q) {
    const Region region =
        Region::CubeAt(Vec3(30.0 + 20.0 * q, 50, 50), 8000.0);
    std::vector<GraphInput> inputs;
    std::vector<PageId> pages;
    world.Collect(region, &inputs, &pages);
    scout.Observe(MakeView(&region, inputs, pages));
    FakePrefetchIo window(world.index.get(), 24);
    scout.RunPrefetch(&window);
    if (q == 3) {
      // Check coverage of query 4's pages by the window after query 3.
      const Region next = Region::CubeAt(Vec3(30.0 + 20.0 * 4, 50, 50),
                                         8000.0);
      std::vector<PageId> expected;
      world.index->QueryPages(next, &expected);
      size_t covered = 0;
      for (PageId p : expected) {
        if (window.fetched().contains(p)) ++covered;
      }
      EXPECT_GT(covered, expected.size() / 2)
          << covered << " of " << expected.size();
    }
    (void)next_pages;
  }
}

TEST(ScoutPrefetcherTest, DeepStrategyUsesSingleAxis) {
  FiberWorld world;
  ScoutConfig config;
  config.strategy = ScoutConfig::Strategy::kDeep;
  ScoutPrefetcher scout{config};
  scout.BeginSequence();

  const Region q0 = Region::CubeAt(Vec3(30, 50, 50), 8000.0);
  std::vector<GraphInput> inputs;
  std::vector<PageId> pages;
  world.Collect(q0, &inputs, &pages);
  scout.Observe(MakeView(&q0, inputs, pages));
  // Deep prefetching pursues one location: fetched pages should cluster.
  FakePrefetchIo io(world.index.get(), 8);
  scout.RunPrefetch(&io);
  // No crash + some prefetching happened.
  EXPECT_FALSE(io.fetched().empty());
}

TEST(ScoutPrefetcherTest, BeginSequenceClearsState) {
  FiberWorld world;
  ScoutPrefetcher scout{ScoutConfig{}};
  scout.BeginSequence();
  const Region q0 = Region::CubeAt(Vec3(30, 50, 50), 8000.0);
  std::vector<GraphInput> inputs;
  std::vector<PageId> pages;
  world.Collect(q0, &inputs, &pages);
  scout.Observe(MakeView(&q0, inputs, pages));
  EXPECT_FALSE(scout.last_exits().empty());
  scout.BeginSequence();
  EXPECT_TRUE(scout.last_exits().empty());
  // First observe after reset reports a reset.
  scout.Observe(MakeView(&q0, inputs, pages));
  EXPECT_TRUE(scout.last_observe().was_reset);
}

TEST(ScoutPrefetcherTest, ObserveCostScalesWithResultSize) {
  FiberWorld world;
  ScoutPrefetcher scout{ScoutConfig{}};
  scout.BeginSequence();
  const Region small = Region::CubeAt(Vec3(30, 50, 50), 1000.0);
  const Region big = Region::CubeAt(Vec3(30, 50, 50), 64000.0);
  std::vector<GraphInput> inputs_small;
  std::vector<PageId> pages_small;
  world.Collect(small, &inputs_small, &pages_small);
  std::vector<GraphInput> inputs_big;
  std::vector<PageId> pages_big;
  world.Collect(big, &inputs_big, &pages_big);
  ASSERT_GT(inputs_big.size(), inputs_small.size());
  const SimMicros cost_small =
      scout.Observe(MakeView(&small, inputs_small, pages_small));
  scout.BeginSequence();
  const SimMicros cost_big =
      scout.Observe(MakeView(&big, inputs_big, pages_big));
  EXPECT_GT(cost_big, cost_small);
}

TEST(ScoutPrefetcherTest, EmptyResultIsHandled) {
  ScoutPrefetcher scout{ScoutConfig{}};
  scout.BeginSequence();
  const Region region = Region::CubeAt(Vec3(0, 0, 0), 1000.0);
  std::vector<GraphInput> inputs;
  std::vector<PageId> pages;
  const SimMicros cost = scout.Observe(MakeView(&region, inputs, pages));
  EXPECT_GE(cost, 0);
  EXPECT_TRUE(scout.last_exits().empty());
}

TEST(ScoutPrefetcherTest, ExplicitAdjacencyModeBuildsFromMesh) {
  // Fiber objects with explicit chain adjacency; clutter has none.
  FiberWorld world;
  AdjacencyMap adjacency;
  for (ObjectId i = 0; i + 1 < 120; ++i) {
    adjacency[i].push_back(i + 1);
    adjacency[i + 1].push_back(i);
  }
  ScoutConfig config;
  config.explicit_adjacency = &adjacency;
  ScoutPrefetcher scout{config};
  scout.BeginSequence();

  const Region q0 = Region::CubeAt(Vec3(30, 50, 50), 8000.0);
  std::vector<GraphInput> inputs;
  std::vector<PageId> pages;
  world.Collect(q0, &inputs, &pages);
  scout.Observe(MakeView(&q0, inputs, pages));
  // The explicit graph connects only the fiber: exits exist and clutter
  // contributes isolated vertices.
  EXPECT_FALSE(scout.last_exits().empty());
  EXPECT_GT(scout.last_observe().graph_vertices,
            scout.last_observe().graph_edges);
}

}  // namespace
}  // namespace scout
