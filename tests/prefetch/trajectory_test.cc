#include "prefetch/trajectory_prefetcher.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

// Test double exposing the protected prediction hooks.
template <typename Base>
class Probe : public Base {
 public:
  using Base::Base;
  std::optional<Vec3> Predict(const std::vector<Vec3>& history) {
    return this->PredictNextCenter(history);
  }
};

TEST(StraightLineTest, ExtrapolatesLinearMotion) {
  Probe<StraightLinePrefetcher> p;
  EXPECT_FALSE(p.Predict({Vec3(0, 0, 0)}).has_value());
  const auto pred = p.Predict({Vec3(0, 0, 0), Vec3(10, 5, 0)});
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(*pred, Vec3(20, 10, 0));
}

TEST(PolynomialTest, Degree2ReproducesQuadraticExactly) {
  Probe<PolynomialPrefetcher> p(2);
  // Centers on x(t) = t^2, y(t) = 3t, z = 1.
  std::vector<Vec3> history;
  for (int t = 0; t <= 2; ++t) {
    history.emplace_back(t * t, 3.0 * t, 1.0);
  }
  const auto pred = p.Predict(history);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(pred->x, 9.0, 1e-9);
  EXPECT_NEAR(pred->y, 9.0, 1e-9);
  EXPECT_NEAR(pred->z, 1.0, 1e-9);
}

TEST(PolynomialTest, Degree3ReproducesCubicExactly) {
  Probe<PolynomialPrefetcher> p(3);
  std::vector<Vec3> history;
  for (int t = 0; t <= 3; ++t) {
    history.emplace_back(t * t * t - t, 2.0 * t, 0.0);
  }
  const auto pred = p.Predict(history);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(pred->x, 4.0 * 4 * 4 - 4, 1e-9);
  EXPECT_NEAR(pred->y, 8.0, 1e-9);
}

TEST(PolynomialTest, WarmupFallsBackToStraightLine) {
  Probe<PolynomialPrefetcher> p(3);
  const auto pred = p.Predict({Vec3(0, 0, 0), Vec3(5, 0, 0)});
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(*pred, Vec3(10, 0, 0));
  EXPECT_FALSE(p.Predict({Vec3(0, 0, 0)}).has_value());
}

TEST(EwmaTest, ConstantMotionPredictedExactly) {
  Probe<EwmaPrefetcher> p(0.3);
  std::vector<Vec3> history;
  for (int t = 0; t < 6; ++t) history.emplace_back(4.0 * t, 0, 0);
  const auto pred = p.Predict(history);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(pred->x, 24.0, 1e-9);
}

TEST(EwmaTest, RecentMovementDominates) {
  Probe<EwmaPrefetcher> p(0.7);
  // Long +x history, then a sharp turn to +y.
  std::vector<Vec3> history = {Vec3(0, 0, 0), Vec3(10, 0, 0),
                               Vec3(20, 0, 0), Vec3(20, 10, 0)};
  const auto pred = p.Predict(history);
  ASSERT_TRUE(pred.has_value());
  const Vec3 move = *pred - history.back();
  EXPECT_GT(move.y, move.x);  // Lambda 0.7 weights the turn heavily.
}

TEST(EwmaTest, LowLambdaSmoothsTurn) {
  Probe<EwmaPrefetcher> fast(0.9);
  Probe<EwmaPrefetcher> slow(0.1);
  const std::vector<Vec3> history = {Vec3(0, 0, 0), Vec3(10, 0, 0),
                                     Vec3(20, 0, 0), Vec3(20, 10, 0)};
  const Vec3 fast_move = *fast.Predict(history) - history.back();
  const Vec3 slow_move = *slow.Predict(history) - history.back();
  EXPECT_GT(fast_move.y, slow_move.y);
  EXPECT_LT(fast_move.x, slow_move.x);
}

TEST(TrajectoryNamesTest, NamesIdentifyVariant) {
  StraightLinePrefetcher s;
  PolynomialPrefetcher p2(2);
  PolynomialPrefetcher p3(3);
  EwmaPrefetcher e(0.3);
  EXPECT_EQ(s.name(), "straight-line");
  EXPECT_EQ(p2.name(), "polynomial-2");
  EXPECT_EQ(p3.name(), "polynomial-3");
  EXPECT_EQ(e.name(), "ewma-0.3");
}

}  // namespace
}  // namespace scout
