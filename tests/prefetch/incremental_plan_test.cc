#include "prefetch/incremental_plan.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

PrefetchAxis Axis(const Vec3& origin, const Vec3& dir, double offset = 0.0,
                  double weight = 1.0) {
  PrefetchAxis axis;
  axis.origin = origin;
  axis.direction = dir;
  axis.start_offset = offset;
  axis.weight = weight;
  return axis;
}

TEST(IncrementalPlanTest, EmptyPlanYieldsNothing) {
  IncrementalPlan plan;
  EXPECT_FALSE(plan.Next().has_value());
  plan.Reset({}, Region::CubeAt(Vec3(0, 0, 0), 1000.0), 5);
  EXPECT_FALSE(plan.Next().has_value());
  EXPECT_TRUE(plan.Exhausted());
}

TEST(IncrementalPlanTest, RegionsGrowAndAdvanceAlongAxis) {
  IncrementalPlan plan;
  plan.Reset({Axis(Vec3(0, 0, 0), Vec3(1, 0, 0))},
             Region::CubeAt(Vec3(0, 0, 0), 1000.0), 6);
  double prev_volume = 0.0;
  double prev_x = -1.0;
  int emitted = 0;
  while (auto region = plan.Next()) {
    ++emitted;
    EXPECT_GE(region->Volume(), prev_volume);  // Non-decreasing volumes.
    EXPECT_GT(region->Center().x, prev_x);     // Marching forward.
    EXPECT_NEAR(region->Center().y, 0.0, 1e-9);
    prev_volume = region->Volume();
    prev_x = region->Center().x;
  }
  EXPECT_EQ(emitted, 6);
  EXPECT_TRUE(plan.Exhausted());
}

TEST(IncrementalPlanTest, StartOffsetSkipsGap) {
  IncrementalPlan plan;
  plan.Reset({Axis(Vec3(0, 0, 0), Vec3(1, 0, 0), /*offset=*/25.0)},
             Region::CubeAt(Vec3(0, 0, 0), 1000.0), 3);
  const auto first = plan.Next();
  ASSERT_TRUE(first.has_value());
  // First region starts past the gap: its near edge is at >= 25.
  const double side = std::cbrt(first->Volume());
  EXPECT_GE(first->Center().x - side / 2, 25.0 - 1e-9);
}

TEST(IncrementalPlanTest, RoundRobinAcrossAxes) {
  IncrementalPlan plan;
  plan.Reset({Axis(Vec3(0, 0, 0), Vec3(1, 0, 0), 0, 0.5),
              Axis(Vec3(0, 0, 0), Vec3(0, 1, 0), 0, 0.5)},
             Region::CubeAt(Vec3(0, 0, 0), 1000.0), 2);
  std::vector<Region> regions;
  while (auto r = plan.Next()) regions.push_back(*r);
  ASSERT_EQ(regions.size(), 4u);
  // Alternating directions: x, y, x, y.
  EXPECT_GT(regions[0].Center().x, regions[0].Center().y);
  EXPECT_GT(regions[1].Center().y, regions[1].Center().x);
  EXPECT_GT(regions[2].Center().x, regions[2].Center().y);
  EXPECT_GT(regions[3].Center().y, regions[3].Center().x);
}

TEST(IncrementalPlanTest, WeightScalesVolume) {
  IncrementalPlan full;
  full.Reset({Axis(Vec3(0, 0, 0), Vec3(1, 0, 0), 0, 1.0)},
             Region::CubeAt(Vec3(0, 0, 0), 1000.0), 1);
  IncrementalPlan half;
  half.Reset({Axis(Vec3(0, 0, 0), Vec3(1, 0, 0), 0, 0.5)},
             Region::CubeAt(Vec3(0, 0, 0), 1000.0), 1);
  const double v_full = full.Next()->Volume();
  const double v_half = half.Next()->Volume();
  EXPECT_NEAR(v_half, v_full / 2, 1e-9);
}

TEST(IncrementalPlanTest, FrustumBaseEmitsFrustums) {
  IncrementalPlan plan;
  plan.Reset({Axis(Vec3(0, 0, 0), Vec3(0, 0, 1))},
             Region::FrustumAt(Vec3(0, 0, 0), Vec3(0, 0, 1), 5000.0), 2);
  const auto region = plan.Next();
  ASSERT_TRUE(region.has_value());
  EXPECT_TRUE(region->is_frustum());
  // Oriented along the axis.
  EXPECT_NEAR(region->frustum().direction().Dot(Vec3(0, 0, 1)), 1.0, 1e-9);
}

}  // namespace
}  // namespace scout
