#pragma once

#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "geom/aabb.h"
#include "index/spatial_index.h"
#include "prefetch/prefetcher.h"
#include "storage/object.h"

namespace scout::testing {

/// In-memory PrefetchIo double with a page-count budget; records every
/// fetched page for assertions.
class FakePrefetchIo : public PrefetchIo {
 public:
  FakePrefetchIo(const SpatialIndex* index, size_t budget_pages)
      : index_(index), budget_(budget_pages) {}

  void QueryPages(const Region& region, std::vector<PageId>* out) override {
    index_->QueryPages(region, out);
  }
  bool IsCached(PageId page) const override {
    return fetched_.contains(page);
  }
  bool FetchPage(PageId page) override {
    if (fetched_.contains(page)) return true;
    if (fetched_.size() >= budget_) return false;
    fetched_.insert(page);
    fetch_order_.push_back(page);
    return true;
  }
  bool WindowOpen() const override { return fetched_.size() < budget_; }

  const std::unordered_set<PageId>& fetched() const { return fetched_; }
  const std::vector<PageId>& fetch_order() const { return fetch_order_; }

 private:
  const SpatialIndex* index_;
  size_t budget_;
  std::unordered_set<PageId> fetched_;
  std::vector<PageId> fetch_order_;
};

/// Uniformly scattered short cylinders inside `bounds`.
inline std::vector<SpatialObject> MakeRandomObjects(size_t n,
                                                    const Aabb& bounds,
                                                    uint64_t seed = 1,
                                                    double length = 2.0,
                                                    double radius = 0.3) {
  Rng rng(seed);
  std::vector<SpatialObject> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Vec3 p(rng.Uniform(bounds.min().x, bounds.max().x),
                 rng.Uniform(bounds.min().y, bounds.max().y),
                 rng.Uniform(bounds.min().z, bounds.max().z));
    Vec3 dir(rng.Gaussian(0, 1), rng.Gaussian(0, 1), rng.Gaussian(0, 1));
    dir = dir.Normalized();
    if (dir == Vec3()) dir = Vec3(1, 0, 0);
    SpatialObject obj;
    obj.id = i;
    obj.structure_id = static_cast<StructureId>(i % 7);
    obj.geom = Cylinder(p, p + dir * length, radius);
    objects.push_back(obj);
  }
  return objects;
}

/// A single polyline "fiber" of consecutive, connected cylinders running
/// from `start` along `dir` with mild deterministic wiggle. Consecutive
/// objects share endpoints, so a correct proximity graph chains them.
inline std::vector<SpatialObject> MakeFiber(const Vec3& start,
                                            const Vec3& dir, size_t n,
                                            double step = 2.0,
                                            ObjectId first_id = 0,
                                            StructureId structure = 0,
                                            uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<SpatialObject> objects;
  objects.reserve(n);
  Vec3 pos = start;
  Vec3 d = dir.Normalized();
  for (size_t i = 0; i < n; ++i) {
    d = (d + Vec3(rng.Gaussian(0, 0.05), rng.Gaussian(0, 0.05),
                  rng.Gaussian(0, 0.05)))
            .Normalized();
    const Vec3 next = pos + d * step;
    SpatialObject obj;
    obj.id = first_id + i;
    obj.structure_id = structure;
    obj.path_index = static_cast<uint32_t>(i);
    obj.geom = Cylinder(pos, next, 0.3);
    objects.push_back(obj);
    pos = next;
  }
  return objects;
}

}  // namespace scout::testing

