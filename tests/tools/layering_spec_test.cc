// Pins the layer DAG declared in tools/scout_lint/layering.txt.
//
// The spec is data so dependency changes show up in diffs; this test
// makes a change to it a deliberate two-place edit (spec + here), the
// same way graph_stats_guard_test pins the build counters.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace {

using Dag = std::map<std::string, std::set<std::string>>;

// Mirrors scout_lint's parser: `layer: dep dep ...`, `#` comments,
// every layer implicitly depends on itself.
Dag LoadSpec(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  Dag dag;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string head;
    if (!(ss >> head)) continue;
    EXPECT_EQ(head.back(), ':') << "malformed spec line: " << line;
    head.pop_back();
    std::set<std::string>& deps = dag[head];
    deps.insert(head);
    std::string dep;
    while (ss >> dep) deps.insert(dep);
  }
  return dag;
}

TEST(LayeringSpecTest, PinsTheCurrentDag) {
  const char* src = std::getenv("SCOUT_SOURCE_DIR");
  ASSERT_NE(src, nullptr);
  const Dag dag = LoadSpec(std::string(src) + "/tools/scout_lint/layering.txt");

  const Dag expected = {
      {"common", {"common"}},
      {"geom", {"geom", "common"}},
      {"storage", {"storage", "common", "geom"}},
      {"index", {"index", "common", "geom", "storage"}},
      {"graph", {"graph", "common", "geom", "storage"}},
      {"workload", {"workload", "common", "geom", "storage", "graph"}},
      {"prefetch",
       {"prefetch", "common", "geom", "storage", "index", "graph"}},
      {"engine",
       {"engine", "common", "geom", "storage", "index", "graph", "workload",
        "prefetch"}},
  };
  EXPECT_EQ(dag, expected)
      << "layering.txt changed — if the new DAG is intended, update this "
         "pin and the README rule catalogue together";
}

TEST(LayeringSpecTest, DagIsAcyclicByConstruction) {
  // The declared order is a topological order: every dependency of a
  // layer must itself only depend on layers that appear earlier.
  const char* src = std::getenv("SCOUT_SOURCE_DIR");
  ASSERT_NE(src, nullptr);
  const Dag dag = LoadSpec(std::string(src) + "/tools/scout_lint/layering.txt");
  for (const auto& [layer, deps] : dag) {
    for (const std::string& dep : deps) {
      if (dep == layer) continue;
      ASSERT_TRUE(dag.count(dep)) << layer << " depends on undeclared " << dep;
      EXPECT_FALSE(dag.at(dep).count(layer))
          << "cycle between " << layer << " and " << dep;
    }
  }
}

}  // namespace
