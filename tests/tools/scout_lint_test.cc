// Self-tests for tools/scout_lint: run the real binary over committed
// fixture files (tests/tools/fixtures/) and over the live tree, and pin
// rule IDs, file:line output, exit codes, and the allow escape hatch.
//
// The harness exports SCOUT_LINT_BIN (built linter) and
// SCOUT_SOURCE_DIR (repo root) — see the tools_ branch in
// CMakeLists.txt.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string stdout_text;
};

std::string Env(const char* name) {
  const char* v = std::getenv(name);
  EXPECT_NE(v, nullptr) << name << " must be set by ctest";
  return v == nullptr ? std::string() : std::string(v);
}

std::string FixturesRoot() {
  return Env("SCOUT_SOURCE_DIR") + "/tests/tools/fixtures";
}

std::string LayeringSpec() {
  return Env("SCOUT_SOURCE_DIR") + "/tools/scout_lint/layering.txt";
}

// Runs the linter with the given arguments; captures stdout (findings),
// drops stderr (summary/progress).
LintRun RunLint(const std::string& args) {
  const std::string cmd = "\"" + Env("SCOUT_LINT_BIN") + "\" " + args +
                          " 2>/dev/null";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.stdout_text.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

// Runs the linter over one fixture file, scoped relative to the
// fixtures root so src/-layer rules apply.
LintRun LintFixture(const std::string& rel) {
  return RunLint("--root \"" + FixturesRoot() + "\" --layering \"" +
                 LayeringSpec() + "\" \"" + FixturesRoot() + "/" + rel + "\"");
}

int CountLines(const std::string& text) {
  int lines = 0;
  for (char c : text) lines += (c == '\n');
  return lines;
}

TEST(ScoutLintTest, DeterminismFixtureFindsAllFiveViolations) {
  const LintRun run = LintFixture("src/geom/det_bad.cc");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(CountLines(run.stdout_text), 5) << run.stdout_text;
  EXPECT_NE(run.stdout_text.find("src/geom/det_bad.cc:9: [det-rand]"),
            std::string::npos)
      << run.stdout_text;
  EXPECT_NE(
      run.stdout_text.find("src/geom/det_bad.cc:11: [det-random-device]"),
      std::string::npos);
  EXPECT_NE(run.stdout_text.find("src/geom/det_bad.cc:13: [det-wall-clock]"),
            std::string::npos);
  EXPECT_NE(run.stdout_text.find("src/geom/det_bad.cc:15: [det-wall-clock]"),
            std::string::npos);
  EXPECT_NE(run.stdout_text.find(
                "src/geom/det_bad.cc:18: [det-unordered-container]"),
            std::string::npos);
}

TEST(ScoutLintTest, DeterminismCleanFixtureIsClean) {
  const LintRun run = LintFixture("src/geom/det_clean.cc");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.stdout_text, "");
}

TEST(ScoutLintTest, AllowAnnotationSuppressesTrailingAndStandalone) {
  // det_allowed.cc has one trailing and one standalone multi-line
  // justified annotation; both banned uses must be suppressed.
  const LintRun run = LintFixture("src/geom/det_allowed.cc");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(ScoutLintTest, MalformedAllowIsItselfAViolationAndDoesNotSuppress) {
  const LintRun run = LintFixture("src/geom/allow_malformed.cc");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(CountLines(run.stdout_text), 3) << run.stdout_text;
  // Missing justification, unknown rule id, and the unsuppressed
  // real finding.
  EXPECT_NE(
      run.stdout_text.find("src/geom/allow_malformed.cc:7: [lint-allow]"),
      std::string::npos);
  EXPECT_NE(
      run.stdout_text.find("src/geom/allow_malformed.cc:8: [lint-allow]"),
      std::string::npos);
  EXPECT_NE(run.stdout_text.find("src/geom/allow_malformed.cc:9: [det-rand]"),
            std::string::npos);
}

TEST(ScoutLintTest, LayeringFixtureFlagsUpwardIncludesOnly) {
  const LintRun run = LintFixture("src/geom/layer_bad.h");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(CountLines(run.stdout_text), 2) << run.stdout_text;
  EXPECT_NE(run.stdout_text.find("src/geom/layer_bad.h:7: [layer-dag]"),
            std::string::npos);
  EXPECT_NE(run.stdout_text.find("src/geom/layer_bad.h:8: [layer-dag]"),
            std::string::npos);

  const LintRun clean = LintFixture("src/geom/layer_clean.h");
  EXPECT_EQ(clean.exit_code, 0);
  EXPECT_EQ(clean.stdout_text, "");
}

TEST(ScoutLintTest, SingleWriterFixtureFlagsCacheMutationsOutsideWhitelist) {
  const LintRun run = LintFixture("src/prefetch/cache_writer_bad.cc");
  EXPECT_EQ(run.exit_code, 1);
  // Four mutations on a cache-named receiver (including the QoS-era
  // ConfigureSharing); the non-cache receiver on line 15 must NOT be
  // flagged.
  EXPECT_EQ(CountLines(run.stdout_text), 4) << run.stdout_text;
  for (int line : {10, 11, 12, 17}) {
    EXPECT_NE(
        run.stdout_text.find("src/prefetch/cache_writer_bad.cc:" +
                             std::to_string(line) + ": [cache-single-writer]"),
        std::string::npos)
        << run.stdout_text;
  }
  EXPECT_EQ(run.stdout_text.find(":15:"), std::string::npos)
      << run.stdout_text;
}

TEST(ScoutLintTest, SingleWriterWhitelistedTranslationUnitIsClean) {
  // Same mutating calls, but the fixture path matches the whitelisted
  // serial-apply TU src/engine/multi_client_engine.cc.
  const LintRun run = LintFixture("src/engine/multi_client_engine.cc");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(ScoutLintTest, DiskQueueWriterFixtureFlagsMutationsOutsideWhitelist) {
  const LintRun run = LintFixture("src/prefetch/disk_writer_bad.cc");
  EXPECT_EQ(run.exit_code, 1);
  // ServeBatch/ServeOne/Reset on disk-/queue-named receivers; the
  // receiver on line 15 is neither, so Reset there must NOT be flagged.
  EXPECT_EQ(CountLines(run.stdout_text), 3) << run.stdout_text;
  for (int line : {10, 11, 12}) {
    EXPECT_NE(run.stdout_text.find("src/prefetch/disk_writer_bad.cc:" +
                                   std::to_string(line) +
                                   ": [disk-queue-single-writer]"),
              std::string::npos)
        << run.stdout_text;
  }
  EXPECT_EQ(run.stdout_text.find(":15:"), std::string::npos)
      << run.stdout_text;
}

TEST(ScoutLintTest, DiskQueueWriterWhitelistedTranslationUnitIsClean) {
  // Same mutating calls, but the fixture path matches the whitelisted
  // implementation TU src/storage/shared_disk.cc.
  const LintRun run = LintFixture("src/storage/shared_disk.cc");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(ScoutLintTest, FaultSeamFixtureFlagsAttachOutsideWhitelist) {
  const LintRun run = LintFixture("src/prefetch/fault_seam_bad.cc");
  EXPECT_EQ(run.exit_code, 1);
  // AttachFaults on disk-/queue-named receivers; the receiver on line 14
  // is neither, so it must NOT be flagged.
  EXPECT_EQ(CountLines(run.stdout_text), 2) << run.stdout_text;
  for (int line : {10, 11}) {
    EXPECT_NE(run.stdout_text.find("src/prefetch/fault_seam_bad.cc:" +
                                   std::to_string(line) +
                                   ": [fault-injection-seam]"),
              std::string::npos)
        << run.stdout_text;
  }
  EXPECT_EQ(run.stdout_text.find(":14:"), std::string::npos)
      << run.stdout_text;
}

TEST(ScoutLintTest, FaultSeamWhitelistedTranslationUnitIsClean) {
  // Same wiring, but the fixture path matches the whitelisted storage
  // implementation TU src/storage/disk_model.cc.
  const LintRun run = LintFixture("src/storage/disk_model.cc");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(ScoutLintTest, RingWriterFixtureFlagsEndpointCallsOutsideThePipeline) {
  const LintRun run = LintFixture("src/prefetch/ring_writer_bad.cc");
  EXPECT_EQ(run.exit_code, 1);
  // TryPush/TryPop on ring-/requests-/pipe-named receivers; the
  // receiver on line 15 matches no ring key, so it must NOT be flagged.
  EXPECT_EQ(CountLines(run.stdout_text), 3) << run.stdout_text;
  for (int line : {10, 11, 12}) {
    EXPECT_NE(run.stdout_text.find("src/prefetch/ring_writer_bad.cc:" +
                                   std::to_string(line) +
                                   ": [ring-single-writer]"),
              std::string::npos)
        << run.stdout_text;
  }
  EXPECT_EQ(run.stdout_text.find(":15:"), std::string::npos)
      << run.stdout_text;
}

TEST(ScoutLintTest, RingWriterWhitelistedTranslationUnitIsClean) {
  // Same endpoint calls, but the fixture path matches the whitelisted
  // pipeline TU src/prefetch/async_pipeline.cc — the one producer and
  // consumer broker of the SPSC rings.
  const LintRun run = LintFixture("src/prefetch/async_pipeline.cc");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(ScoutLintTest, RealIoFixtureFlagsRawIoOutsideTheBackendTu) {
  const LintRun run = LintFixture("src/engine/real_io_bad.cc");
  EXPECT_EQ(run.exit_code, 1);
  // pread()/fopen() calls plus an ifstream mention; Open()/Spread() on
  // line 15 are word-bounded non-matches and must NOT be flagged.
  EXPECT_EQ(CountLines(run.stdout_text), 3) << run.stdout_text;
  for (int line : {8, 9, 10}) {
    EXPECT_NE(run.stdout_text.find("src/engine/real_io_bad.cc:" +
                                   std::to_string(line) +
                                   ": [real-io-isolation]"),
              std::string::npos)
        << run.stdout_text;
  }
  EXPECT_EQ(run.stdout_text.find(":15:"), std::string::npos)
      << run.stdout_text;
}

TEST(ScoutLintTest, RealIoWhitelistsTheFilePageStoreTu) {
  // Same raw I/O calls, but the fixture's root-relative path is the
  // real-I/O backend home src/storage/file_page_store.cc — the one TU
  // in src/ allowed to touch files.
  const LintRun run = LintFixture("src/storage/file_page_store.cc");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(ScoutLintTest, SimdIsolationFlagsRawIntrinsicsOutsideTheWrapper) {
  const LintRun run = LintFixture("src/geom/simd_bad.cc");
  EXPECT_EQ(run.exit_code, 1);
  // The immintrin include plus one finding per intrinsic-bearing line
  // (several intrinsics on line 11 are one defect). The __m256d type
  // token on line 10 must not add a second finding for that line.
  EXPECT_EQ(CountLines(run.stdout_text), 4) << run.stdout_text;
  for (int line : {7, 10, 11, 12}) {
    EXPECT_NE(run.stdout_text.find("src/geom/simd_bad.cc:" +
                                   std::to_string(line) +
                                   ": [simd-isolation]"),
              std::string::npos)
        << run.stdout_text;
  }
}

TEST(ScoutLintTest, SimdIsolationWhitelistsTheWrapperHeader) {
  // Same raw-intrinsic tokens, but the fixture's root-relative path is
  // the wrapper home src/common/simd.h — the one file allowed to hold
  // them.
  const LintRun run = LintFixture("src/common/simd.h");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

TEST(ScoutLintTest, HygieneFixturePinsPragmaOnceUsingNamespaceAndFloat) {
  const LintRun run = LintFixture("src/geom/hygiene_bad.h");
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(CountLines(run.stdout_text), 3) << run.stdout_text;
  EXPECT_NE(
      run.stdout_text.find("src/geom/hygiene_bad.h:6: [hdr-pragma-once]"),
      std::string::npos);
  EXPECT_NE(
      run.stdout_text.find("src/geom/hygiene_bad.h:11: [hdr-using-namespace]"),
      std::string::npos);
  EXPECT_NE(run.stdout_text.find("src/geom/hygiene_bad.h:13: [no-float]"),
            std::string::npos);

  const LintRun clean = LintFixture("src/geom/hygiene_clean.h");
  EXPECT_EQ(clean.exit_code, 0);
  EXPECT_EQ(clean.stdout_text, "");
}

TEST(ScoutLintTest, ListRulesPrintsTheWholeCatalogue) {
  const LintRun run = RunLint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"det-rand", "det-random-device", "det-wall-clock",
        "det-unordered-container", "layer-dag", "cache-single-writer",
        "disk-queue-single-writer", "ring-single-writer",
        "fault-injection-seam", "real-io-isolation", "simd-isolation",
        "hdr-pragma-once", "hdr-using-namespace", "no-float",
        "lint-allow"}) {
    EXPECT_NE(run.stdout_text.find(std::string(rule) + ":"),
              std::string::npos)
        << "missing rule " << rule;
  }
}

TEST(ScoutLintTest, MissingLayeringSpecIsAUsageError) {
  const LintRun run = RunLint("--root \"" + FixturesRoot() +
                              "\" --layering /nonexistent/layering.txt");
  EXPECT_EQ(run.exit_code, 2);
}

TEST(ScoutLintTest, WholeTreeAtHeadIsClean) {
  // The acceptance contract: src/, bench/, tests/ report zero
  // violations (fixtures are excluded from directory walks), so any
  // new violation fails ctest, not just the lint target.
  const LintRun run = RunLint("--root \"" + Env("SCOUT_SOURCE_DIR") + "\"");
  EXPECT_EQ(run.exit_code, 0) << run.stdout_text;
  EXPECT_EQ(run.stdout_text, "");
}

}  // namespace
