// Lint fixture: deterministic equivalent of det_bad.cc — no findings.
#include <cstdint>
#include <map>

uint64_t DetCleanSeed(uint64_t seed) {
  // Explicitly-seeded counter RNG and an ordered container: both rules'
  // preferred replacements.
  uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  std::map<uint64_t, int> hist;
  hist[z] = 1;
  return z;
}
