// Lint fixture: determinism violations in a result-affecting layer.
// Expected findings (pinned by tools_scout_lint_test):
//   line 9  det-rand, line 11 det-random-device, line 13 det-wall-clock,
//   line 15 det-wall-clock, line 18 det-unordered-container.
#include <random>
#include <unordered_map>

int DetBadSeed() {
  int r = rand() % 7;
  // NOLINTNEXTLINE -- fixture, never compiled into scout_core
  std::random_device dev;
  r += static_cast<int>(dev());
  long t = time(nullptr);
  double wall =
      std::chrono::system_clock::now().time_since_epoch().count();
  (void)t;
  (void)wall;
  std::unordered_map<int, int> hist;
  hist[r] = 1;
  return r;
}
