#pragma once

// Lint fixture: geom includes only itself, common, and system headers —
// no findings.

#include <vector>

#include "common/status.h"
#include "geom/vec3.h"
