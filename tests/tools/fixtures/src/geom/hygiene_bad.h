// Lint fixture: header hygiene violations.
// Expected findings: line 6 hdr-pragma-once (guard instead of pragma),
// line 11 hdr-using-namespace, line 13 no-float (one finding per line
// even with two float tokens).

#ifndef SCOUT_TESTS_TOOLS_FIXTURES_HYGIENE_BAD_H_
#define SCOUT_TESTS_TOOLS_FIXTURES_HYGIENE_BAD_H_

#include <string>

using namespace std;

inline float HygieneBad(float x) { return x; }

#endif  // SCOUT_TESTS_TOOLS_FIXTURES_HYGIENE_BAD_H_
