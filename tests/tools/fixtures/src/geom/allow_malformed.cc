// Lint fixture: malformed allow annotations.
// Expected findings: line 7 lint-allow (missing justification),
// line 8 lint-allow (unknown rule id), line 9 det-rand (a
// malformed annotation must NOT suppress the real finding).
#include <cstdlib>

int AllowMalformed() {  // scout-lint: allow(det-rand):
  // scout-lint: allow(not-a-rule): justification for a rule that does not exist
  int r = rand();
  return r;
}
