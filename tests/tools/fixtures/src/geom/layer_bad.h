#pragma once

// Lint fixture: a geom header reaching up the DAG.
// Expected findings: line 7 layer-dag (geom may not include engine),
// line 8 layer-dag (geom may not include prefetch).

#include "engine/experiment.h"
#include "prefetch/prefetcher.h"
#include "common/status.h"
