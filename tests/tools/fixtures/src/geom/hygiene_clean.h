#pragma once

// Lint fixture: hygienic header — pragma once first, no using
// namespace, double instead of float. No findings.

#include <string>

inline double HygieneClean(double x) { return x; }

inline std::string HygieneName() { return "clean"; }
