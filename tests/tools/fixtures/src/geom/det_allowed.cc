// Lint fixture: every banned use carries a justified allow annotation,
// both trailing and standalone (multi-line) — no findings.
#include <unordered_set>

int DetAllowed() {
  std::unordered_set<int> seen;  // scout-lint: allow(det-unordered-container): membership only, never iterated
  seen.insert(1);
  // scout-lint: allow(det-wall-clock): fixture exercising the
  // standalone multi-line annotation form.
  long t = time(nullptr);
  return static_cast<int>(t) + static_cast<int>(seen.size());
}
