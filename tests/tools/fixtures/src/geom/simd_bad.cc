// Fixture for the simd-isolation rule: raw vector intrinsics outside
// src/common/simd.h. The include on line 7 and the intrinsic calls on
// lines 10-12 must each be flagged (one finding per line).

#include <cstdint>

#include <immintrin.h>

uint64_t BadLaneSum(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  v = _mm256_add_pd(v, _mm256_set1_pd(1.0));
  return static_cast<uint64_t>(_mm256_movemask_pd(v));
}
