// Lint fixture: FaultSchedule wiring outside the whitelisted storage
// TUs and serial apply loop.
// Expected findings: line 10 fault-injection-seam (AttachFaults on a
// disk-named receiver), line 11 fault-injection-seam (queue-named
// receiver). Line 14: the receiver is neither disk- nor queue-named.

struct FakeDisk { void AttachFaults(const void*); };

void FaultSeamBad(FakeDisk* shared_disk_, FakeDisk& retry_queue) {
  shared_disk_->AttachFaults(nullptr);
  retry_queue.AttachFaults(nullptr);
}

void NotAStorageSeam(FakeDisk& model) { model.AttachFaults(nullptr); }
