// Lint fixture: the same ring endpoint calls as ring_writer_bad.cc,
// but under the whitelisted pipeline path
// src/prefetch/async_pipeline.cc — must report zero findings.

struct FakeRing { bool TryPush(int); bool TryPop(int*); };

void RingEndpointsAllowedHere(FakeRing* requests_, FakeRing& completions_) {
  requests_->TryPush(1);
  completions_.TryPop(nullptr);
}
