// Lint fixture: shared-PrefetchCache mutations outside the whitelisted
// serial-apply translation units.
// Expected findings: line 10 cache-single-writer (Insert), line 11
// cache-single-writer (Clear), line 12 cache-single-writer
// (SetActiveSession), line 17 (ConfigureSharing). Line 15: non-cache.

struct FakeCache { void Insert(int); void Clear(); void SetActiveSession(int); void ConfigureSharing(int); };

void CacheWriterBad(FakeCache* shared_cache_, FakeCache& cache, int p) {
  shared_cache_->Insert(p);
  cache.Clear();
  shared_cache_->SetActiveSession(p);
}

void NotACache(FakeCache& seen, int p) { seen.Insert(p); }

void CacheReshape(FakeCache& session_cache, int n) { session_cache.ConfigureSharing(n); }
