// Lint fixture: SharedDiskQueue mutations outside the whitelisted
// serving translation units.
// Expected findings: line 10 disk-queue-single-writer (ServeBatch),
// line 11 disk-queue-single-writer (ServeOne), line 12
// disk-queue-single-writer (Reset). Line 15: no disk/queue receiver.

struct FakeQueue { void ServeBatch(int); void ServeOne(int); void Reset(); };

void DiskWriterBad(FakeQueue* shared_disk_, FakeQueue& disk_queue, int p) {
  shared_disk_->ServeBatch(p);
  disk_queue.ServeOne(p);
  shared_disk_->Reset();
}

void NotADisk(FakeQueue& model, int p) { model.Reset(); }
