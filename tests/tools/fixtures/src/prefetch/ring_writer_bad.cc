// Lint fixture: SPSC ring endpoint calls outside the whitelisted
// async pipeline TU src/prefetch/async_pipeline.cc.
// Expected findings: lines 10-12 ring-single-writer (TryPush/TryPop
// on ring-/requests-/pipe-named receivers). Line 15: the receiver
// matches no ring key, so it must NOT be flagged.

struct FakeRing { bool TryPush(int); bool TryPop(int*); };

void RingWriterBad(FakeRing* ring_, FakeRing& requests, FakeRing& out_pipe) {
  ring_->TryPush(1);
  requests.TryPush(2);
  out_pipe.TryPop(nullptr);
}

void NotARingEndpoint(FakeRing& stack) { stack.TryPop(nullptr); }
