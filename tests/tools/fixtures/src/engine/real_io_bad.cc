// Lint fixture: raw file/OS I/O outside the whitelisted real-I/O
// backend TU src/storage/file_page_store.cc.
// Expected findings: line 8 real-io-isolation (pread call), line 9
// (fopen call), line 10 (std::ifstream mention). Line 15: Open() and
// Spread() are word-bounded non-matches and must NOT be flagged.

void RealIoBad(int fd, void* buf) {
  pread(fd, buf, 4096, 0);
  fopen("pages.bin", "rb");
  std::ifstream raw_in;
}

struct Store { void Open(); double Spread(); };

void NotRealIo(Store& s) { s.Open(); s.Spread(); }
