// Lint fixture: the same mutating calls as cache_writer_bad.cc, but in
// a whitelisted serial-apply translation unit — no findings.

struct FakeCache { void Insert(int); void Clear(); void SetActiveSession(int); };

void SerialApplyLoop(FakeCache* shared_cache_, int p) {
  shared_cache_->Insert(p);
  shared_cache_->Clear();
  shared_cache_->SetActiveSession(p);
}
