// Lint fixture: the same raw I/O calls as real_io_bad.cc, but under
// the whitelisted real-I/O backend path
// src/storage/file_page_store.cc — must report zero findings.

void RealIoAllowedHere(int fd, void* buf) {
  pread(fd, buf, 4096, 0);
  fopen("pages.bin", "rb");
  std::ifstream raw_in;
}
