// Lint fixture: the same AttachFaults wiring as fault_seam_bad.cc, but
// under the whitelisted storage-implementation path
// src/storage/disk_model.cc — must report zero findings.

struct FakeDisk { void AttachFaults(const void*); };

void FaultSeamAllowedHere(FakeDisk* disk_, FakeDisk& shared_queue) {
  disk_->AttachFaults(nullptr);
  shared_queue.AttachFaults(nullptr);
}
