// Lint fixture: the same mutating calls as disk_writer_bad.cc, but in
// the whitelisted SharedDiskQueue implementation TU — no findings.

struct FakeQueue { void ServeBatch(int); void ServeOne(int); void Reset(); };

void ServingLayer(FakeQueue* shared_disk_, int p) {
  shared_disk_->ServeBatch(p);
  shared_disk_->ServeOne(p);
  shared_disk_->Reset();
}
