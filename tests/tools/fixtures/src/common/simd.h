#pragma once

// Fixture for the simd-isolation whitelist: identical raw-intrinsic
// tokens to simd_bad.cc, zero findings because this fixture's
// root-relative path IS the wrapper home (src/common/simd.h).

#include <immintrin.h>

inline double FixtureLane0(const double* p) {
  return _mm256_cvtsd_f64(_mm256_loadu_pd(p));
}
