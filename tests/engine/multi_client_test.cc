/// Scheduler/shared-cache tests for the multi-client serving engine: the
/// deterministic interleaver (lowest simulated timestamp, ties by session
/// id) plus the single-writer apply loop must make every outcome a pure
/// function of the simulated schedule — bit-identical across worker
/// counts, across reruns of the same engine, and equivalent to the
/// single-stream engine when only one session is served.

#include <memory>

#include <gtest/gtest.h>

#include "engine/multi_client_engine.h"
#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "workload/generators.h"

namespace scout {
namespace {

PrefetcherFactory ScoutFactory() {
  return [] { return std::make_unique<ScoutPrefetcher>(ScoutConfig{}); };
}

void ExpectSameCombined(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.prefetcher_name, b.prefetcher_name);
  EXPECT_EQ(a.hit_rate_pct, b.hit_rate_pct);
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.total_response_us, b.total_response_us);
  EXPECT_EQ(a.baseline_response_us, b.baseline_response_us);
  EXPECT_EQ(a.total_residual_us, b.total_residual_us);
  EXPECT_EQ(a.total_graph_build_us, b.total_graph_build_us);
  EXPECT_EQ(a.total_prediction_us, b.total_prediction_us);
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.total_result_objects, b.total_result_objects);
  EXPECT_EQ(a.num_sequences, b.num_sequences);
  EXPECT_EQ(a.total_queries, b.total_queries);
  EXPECT_EQ(a.total_resets, b.total_resets);
  EXPECT_EQ(a.total_disk_wait_us, b.total_disk_wait_us);
  EXPECT_EQ(a.mean_pages_per_query, b.mean_pages_per_query);
  EXPECT_EQ(a.seq_hit_rate.count(), b.seq_hit_rate.count());
  EXPECT_EQ(a.seq_hit_rate.mean(), b.seq_hit_rate.mean());
  EXPECT_EQ(a.seq_hit_rate.stddev(), b.seq_hit_rate.stddev());
}

void ExpectSameSharedResult(const SharedCacheResult& a,
                            const SharedCacheResult& b) {
  ExpectSameCombined(a.combined, b.combined);
  EXPECT_EQ(a.session_hit_rate_pct, b.session_hit_rate_pct);
  EXPECT_EQ(a.session_response_us, b.session_response_us);
  EXPECT_EQ(a.hits_own, b.hits_own);
  EXPECT_EQ(a.hits_cross, b.hits_cross);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.cross_hit_share_pct, b.cross_hit_share_pct);
  EXPECT_EQ(a.admission_closed_windows, b.admission_closed_windows);
  EXPECT_EQ(a.disk.requests, b.disk.requests);
  EXPECT_EQ(a.disk.batches, b.disk.batches);
  EXPECT_EQ(a.disk.random_reads, b.disk.random_reads);
  EXPECT_EQ(a.disk.sequential_reads, b.disk.sequential_reads);
  EXPECT_EQ(a.disk.reordered_pages, b.disk.reordered_pages);
  EXPECT_EQ(a.disk.service_us, b.disk.service_us);
  EXPECT_EQ(a.disk.wait_us, b.disk.wait_us);
  EXPECT_EQ(a.session_disk_wait_us, b.session_disk_wait_us);
  ASSERT_EQ(a.session_cache.size(), b.session_cache.size());
  for (size_t s = 0; s < a.session_cache.size(); ++s) {
    SCOPED_TRACE(::testing::Message() << "session " << s);
    EXPECT_EQ(a.session_cache[s].inserts, b.session_cache[s].inserts);
    EXPECT_EQ(a.session_cache[s].hits_own, b.session_cache[s].hits_own);
    EXPECT_EQ(a.session_cache[s].hits_cross, b.session_cache[s].hits_cross);
    EXPECT_EQ(a.session_cache[s].evictions_caused,
              b.session_cache[s].evictions_caused);
    EXPECT_EQ(a.session_cache[s].pages_evicted,
              b.session_cache[s].pages_evicted);
  }
}

class MultiClientTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateNeuronTissue(NeuronConfigForObjectCount(12000, /*seed=*/3)));
    index_ = RTreeIndex::Build(dataset_->objects)->release();
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static QuerySequenceConfig QueryConfig(uint32_t num_queries = 12) {
    QuerySequenceConfig qcfg;
    qcfg.num_queries = num_queries;
    qcfg.query_volume = 20000.0;
    return qcfg;
  }

  static ExecutorConfig ExecConfig() {
    ExecutorConfig ecfg;
    ecfg.cache_bytes = ScaledCacheBytes(index_->store());
    ecfg.prefetch_window_ratio = 1.4;
    return ecfg;
  }

  static Dataset* dataset_;
  static RTreeIndex* index_;
};

Dataset* MultiClientTest::dataset_ = nullptr;
RTreeIndex* MultiClientTest::index_ = nullptr;

TEST_F(MultiClientTest, WorkerCountIndependence) {
  constexpr uint32_t kSessions = 4;
  constexpr uint64_t kSeed = 424242;
  const SharedCacheResult one =
      RunSharedCacheExperiment(*dataset_, *index_, ScoutFactory(),
                               QueryConfig(), ExecConfig(), kSessions, kSeed,
                               /*num_workers=*/1);
  ASSERT_EQ(one.session_hit_rate_pct.size(), kSessions);
  for (uint32_t workers : {2u, 4u, 8u}) {
    SCOPED_TRACE(::testing::Message() << workers << " workers");
    const SharedCacheResult many = RunSharedCacheExperiment(
        *dataset_, *index_, ScoutFactory(), QueryConfig(), ExecConfig(),
        kSessions, kSeed, workers);
    ExpectSameSharedResult(one, many);
  }
}

TEST_F(MultiClientTest, EngineRerunsAreBitIdentical) {
  // Reusing ONE engine (and therefore one shared cache across epochs)
  // exercises the Clear()/ConfigureSharing reinitialization paths: any
  // leaked shared-mode state between runs shows up as a diff.
  MultiClientEngine engine(*dataset_, *index_, ScoutFactory(), QueryConfig(),
                           ExecConfig(), /*num_sessions=*/3, /*seed=*/777);
  const uint64_t epoch_before = engine.shared_cache().epoch();
  const MultiClientOutcome first = engine.Run(/*num_workers=*/2);
  const MultiClientOutcome second = engine.Run(/*num_workers=*/1);
  EXPECT_GE(engine.shared_cache().epoch(), epoch_before + 2);

  ASSERT_EQ(first.runs.size(), second.runs.size());
  for (size_t s = 0; s < first.runs.size(); ++s) {
    SCOPED_TRACE(::testing::Message() << "session " << s);
    ASSERT_EQ(first.runs[s].queries.size(), second.runs[s].queries.size());
    EXPECT_EQ(first.runs[s].TotalPagesHit(), second.runs[s].TotalPagesHit());
    EXPECT_EQ(first.runs[s].TotalResponseUs(),
              second.runs[s].TotalResponseUs());
    EXPECT_EQ(first.cache_stats[s].hits_own, second.cache_stats[s].hits_own);
    EXPECT_EQ(first.cache_stats[s].hits_cross,
              second.cache_stats[s].hits_cross);
    EXPECT_EQ(first.cache_stats[s].inserts, second.cache_stats[s].inserts);
    EXPECT_EQ(first.cache_stats[s].evictions_caused,
              second.cache_stats[s].evictions_caused);
  }
}

TEST_F(MultiClientTest, SingleSessionMatchesRunBatch) {
  // One session over the shared cache under Legacy() serving is the
  // degenerate case: the same workload, prefetcher stream (session 0
  // keeps the config stream) and executor semantics as the single-stream
  // engine — combined results must be bit-identical to RunBatch with one
  // sequence. The two modes deliberately differ in ONE policy — a full
  // shared cache evicts where a full private cache halts prefetching —
  // so the equivalence is checked with a cache large enough to never
  // fill, which isolates the scheduler/executor path itself. (QoS
  // serving legitimately differs: all reads go through the shared disk
  // queue — QosServingChangesExactlyTheDiskMetrics pins that diff.)
  constexpr uint64_t kSeed = 9001;
  ExecutorConfig ecfg = ExecConfig();
  ecfg.cache_bytes = 1ull << 30;
  ecfg.serving = SharedServingConfig::Legacy();
  const ExperimentResult batch =
      RunBatch(*dataset_, *index_, ScoutFactory(), QueryConfig(), ecfg,
               /*num_sequences=*/1, kSeed, /*num_workers=*/1);
  const SharedCacheResult shared = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), ecfg,
      /*num_sessions=*/1, kSeed, /*num_workers=*/1);
  ExpectSameCombined(batch, shared.combined);
  // All hits of a lone session are its own: no one else shares the cache.
  EXPECT_EQ(shared.hits_cross, 0u);
  EXPECT_EQ(shared.cross_hit_share_pct, 0.0);
  // Legacy serving never touches the shared-disk queue.
  EXPECT_EQ(shared.disk.requests, 0u);
  EXPECT_EQ(shared.combined.total_disk_wait_us, 0);
  EXPECT_EQ(shared.admission_closed_windows, 0u);
}

TEST_F(MultiClientTest, CacheQosIsNeutralForASingleSession) {
  // With one session the QoS cache policies are the identity: the whole
  // capacity is the session's quota, so quota-segmented eviction picks
  // the same victim as global LRU (its own LRU page IS the global tail),
  // and priced admission always admits (the victim is the inserter).
  // Only the shared disk may change N=1 results, so cache-QoS-only
  // serving must be bit-identical to Legacy() serving.
  constexpr uint64_t kSeed = 31337;
  ExecutorConfig legacy_cfg = ExecConfig();
  legacy_cfg.serving = SharedServingConfig::Legacy();
  ExecutorConfig qos_cache_cfg = ExecConfig();
  qos_cache_cfg.serving = SharedServingConfig();  // Full QoS…
  qos_cache_cfg.serving.shared_disk = false;      // …minus the shared disk…
  qos_cache_cfg.serving.cache_scale_per_session = 0.0;  // …at N=1 == x1.

  const SharedCacheResult legacy = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), legacy_cfg,
      /*num_sessions=*/1, kSeed, /*num_workers=*/1);
  const SharedCacheResult qos = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), qos_cache_cfg,
      /*num_sessions=*/1, kSeed, /*num_workers=*/1);
  ExpectSameSharedResult(legacy, qos);
}

TEST_F(MultiClientTest, QosServingChangesExactlyTheDiskMetrics) {
  // Differential pin of the seed3 flip at N=1: the workload, prediction
  // pipeline and prefetch decisions are serving-independent, so full QoS
  // serving (shared disk on) may move ONLY the I/O-derived metrics —
  // pages, hits, result objects, graph work and resets must not move.
  // With one session there is no cross-session contention, so every read
  // finds a free channel and the queue adds zero wait.
  constexpr uint64_t kSeed = 1208;
  ExecutorConfig legacy_cfg = ExecConfig();
  legacy_cfg.serving = SharedServingConfig::Legacy();
  ExecutorConfig qos_cfg = ExecConfig();  // Default = full QoS serving.

  const SharedCacheResult legacy = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), legacy_cfg,
      /*num_sessions=*/1, kSeed, /*num_workers=*/1);
  const SharedCacheResult qos = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), qos_cfg,
      /*num_sessions=*/1, kSeed, /*num_workers=*/1);

  // Invariant under the flip:
  EXPECT_EQ(legacy.combined.total_pages, qos.combined.total_pages);
  EXPECT_EQ(legacy.combined.total_result_objects,
            qos.combined.total_result_objects);
  EXPECT_EQ(legacy.combined.total_queries, qos.combined.total_queries);
  EXPECT_EQ(legacy.combined.total_graph_build_us,
            qos.combined.total_graph_build_us);
  EXPECT_EQ(legacy.combined.total_resets, qos.combined.total_resets);

  // Moved by the flip: reads go through the 4-channel array, so the
  // residual I/O (batched, overlapped) shrinks.
  EXPECT_GT(qos.disk.requests, 0u);
  EXPECT_LT(qos.combined.total_residual_us, legacy.combined.total_residual_us);
  // A lone session never queues behind anyone.
  EXPECT_EQ(qos.combined.total_disk_wait_us, 0);
}

TEST_F(MultiClientTest, RandomizedInterleavingsAreWorkerIndependent) {
  // Randomized scenario sweep: different seeds vary the workloads (and
  // with them the interleaving the scheduler produces); every scenario
  // must be bit-identical between serial and threaded execution.
  for (const uint64_t seed : {11ull, 22ull, 33ull}) {
    const uint32_t sessions = 2 + static_cast<uint32_t>(seed % 5);
    const uint32_t threads = 2 + static_cast<uint32_t>(seed % 7);
    SCOPED_TRACE(::testing::Message()
                 << "seed " << seed << ", " << sessions << " sessions, "
                 << threads << " threads");
    const SharedCacheResult serial = RunSharedCacheExperiment(
        *dataset_, *index_, ScoutFactory(), QueryConfig(/*num_queries=*/8),
        ExecConfig(), sessions, seed, /*num_workers=*/1);
    const SharedCacheResult threaded = RunSharedCacheExperiment(
        *dataset_, *index_, ScoutFactory(), QueryConfig(/*num_queries=*/8),
        ExecConfig(), sessions, seed, threads);
    ExpectSameSharedResult(serial, threaded);
  }
}

TEST_F(MultiClientTest, QosBeatsPureLruUnderNEightThrash) {
  // The regression this PR exists for: at N=8 on a cache too small for
  // everyone, pure LRU lets sessions thrash each other's pages. Cache
  // QoS (quotas + priced admission) on the SAME fixed capacity — no
  // per-session scaling, no shared disk, so the eviction policy is the
  // only variable — must never lose to pure LRU on hit rate, and must
  // shrink the eviction storm.
  constexpr uint32_t kSessions = 8;
  constexpr uint64_t kSeed = 8888;
  ExecutorConfig legacy_cfg = ExecConfig();
  legacy_cfg.cache_bytes = ScaledCacheBytes(index_->store()) / 4;
  legacy_cfg.serving = SharedServingConfig::Legacy();
  ExecutorConfig qos_cfg = legacy_cfg;
  qos_cfg.serving = SharedServingConfig();
  qos_cfg.serving.shared_disk = false;            // Isolate cache policy.
  qos_cfg.serving.cache_scale_per_session = 0.0;  // Same capacity.

  const SharedCacheResult legacy = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), legacy_cfg,
      kSessions, kSeed, /*num_workers=*/2);
  const SharedCacheResult qos = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), qos_cfg, kSessions,
      kSeed, /*num_workers=*/2);

  // The scenario must actually thrash under pure LRU or it proves
  // nothing.
  EXPECT_GT(legacy.evictions, 0u);
  // QoS must clearly beat pure LRU, not just tie it (measured margin is
  // ~12-18 points; 5 leaves headroom for workload-generator evolution).
  // Total evictions are deliberately NOT compared: QoS admits *more
  // productive* prefetches, so its raw eviction count can tick up while
  // every under-quota session keeps its pages — the protection invariant
  // is pinned at the cache level by the quota property test.
  EXPECT_GE(qos.combined.hit_rate_pct, legacy.combined.hit_rate_pct + 5.0);
}

TEST_F(MultiClientTest, SharingAccountingIsConsistent) {
  constexpr uint32_t kSessions = 4;
  const SharedCacheResult r = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), ExecConfig(),
      kSessions, /*seed=*/5150, /*num_workers=*/2);

  // Every pooled cache hit is attributed to exactly one session, as own
  // or cross; evicted pages were inserted by someone.
  EXPECT_EQ(r.hits_own + r.hits_cross, r.combined.total_hits);
  ASSERT_EQ(r.session_cache.size(), kSessions);
  uint64_t evicted = 0;
  uint64_t inserts = 0;
  for (const CacheSessionStats& s : r.session_cache) {
    evicted += s.pages_evicted;
    inserts += s.inserts;
  }
  EXPECT_EQ(evicted, r.evictions);
  EXPECT_GE(inserts, evicted);
  EXPECT_GE(r.combined.total_pages, r.combined.total_hits);
  EXPECT_EQ(r.session_hit_rate_pct.size(), kSessions);
  EXPECT_EQ(r.session_response_us.size(), kSessions);
  // The workload actually exercises the engine.
  EXPECT_GT(r.combined.total_queries, 0u);
  EXPECT_GT(r.combined.total_hits, 0u);
}

}  // namespace
}  // namespace scout
