/// Zero-fault bit-identity: the fault machinery must be invisible until
/// a schedule actually fires. Attaching NO schedule and attaching an
/// all-zero-probability schedule must produce bit-identical simulated
/// metrics — on the single-stream engine (private DiskModel path) and on
/// the multi-client serving engine (shared SharedDiskQueue path) alike.
/// This is the regression gate that keeps every recorded seed3 baseline
/// anchor valid as the failure-aware read paths evolve.

#include <memory>

#include <gtest/gtest.h>

#include "engine/multi_client_engine.h"
#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "storage/fault_model.h"
#include "workload/generators.h"

namespace scout {
namespace {

PrefetcherFactory ScoutFactory() {
  return [] { return std::make_unique<ScoutPrefetcher>(ScoutConfig{}); };
}

void ExpectSameCombined(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.hit_rate_pct, b.hit_rate_pct);
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.total_response_us, b.total_response_us);
  EXPECT_EQ(a.baseline_response_us, b.baseline_response_us);
  EXPECT_EQ(a.total_residual_us, b.total_residual_us);
  EXPECT_EQ(a.total_disk_wait_us, b.total_disk_wait_us);
  EXPECT_EQ(a.total_graph_build_us, b.total_graph_build_us);
  EXPECT_EQ(a.total_prediction_us, b.total_prediction_us);
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.total_result_objects, b.total_result_objects);
  EXPECT_EQ(a.total_queries, b.total_queries);
  EXPECT_EQ(a.total_resets, b.total_resets);
}

/// No fault, no trace: every fault-side counter of a run must be zero.
void ExpectNoFaultFootprint(const SharedCacheResult& r) {
  EXPECT_EQ(r.faults_seen, 0u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.backoff_wait_us, 0);
  EXPECT_EQ(r.shed_prefetches, 0u);
  EXPECT_EQ(r.deadline_misses, 0u);
  EXPECT_EQ(r.unavailable_queries, 0u);
  EXPECT_EQ(r.disk.failed_reads, 0u);
  EXPECT_EQ(r.disk.outage_wait_us, 0);
}

class FaultDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateNeuronTissue(NeuronConfigForObjectCount(12000, /*seed=*/3)));
    index_ = RTreeIndex::Build(dataset_->objects)->release();
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static QuerySequenceConfig QueryConfig() {
    QuerySequenceConfig qcfg;
    qcfg.num_queries = 10;
    qcfg.query_volume = 20000.0;
    return qcfg;
  }

  static ExecutorConfig ExecConfig() {
    ExecutorConfig ecfg;
    ecfg.cache_bytes = ScaledCacheBytes(index_->store());
    ecfg.prefetch_window_ratio = 1.4;
    return ecfg;
  }

  static Dataset* dataset_;
  static RTreeIndex* index_;
};

Dataset* FaultDifferentialTest::dataset_ = nullptr;
RTreeIndex* FaultDifferentialTest::index_ = nullptr;

TEST_F(FaultDifferentialTest, SharedServingIsBitIdenticalWithZeroRates) {
  constexpr uint64_t kSeed = 20120827;
  const FaultSchedule zero{FaultConfig{}};  // Explicit all-zero schedule.
  ASSERT_FALSE(zero.Armed());

  const ExecutorConfig plain_cfg = ExecConfig();
  ExecutorConfig attached_cfg = ExecConfig();
  attached_cfg.fault_schedule = &zero;

  const SharedCacheResult plain = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), plain_cfg,
      /*num_sessions=*/4, kSeed, /*num_workers=*/2);
  const SharedCacheResult attached = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), attached_cfg,
      /*num_sessions=*/4, kSeed, /*num_workers=*/2);

  ExpectSameCombined(plain.combined, attached.combined);
  EXPECT_EQ(plain.session_response_us, attached.session_response_us);
  EXPECT_EQ(plain.session_hit_rate_pct, attached.session_hit_rate_pct);
  EXPECT_EQ(plain.hits_own, attached.hits_own);
  EXPECT_EQ(plain.hits_cross, attached.hits_cross);
  EXPECT_EQ(plain.evictions, attached.evictions);
  EXPECT_EQ(plain.disk.service_us, attached.disk.service_us);
  EXPECT_EQ(plain.disk.wait_us, attached.disk.wait_us);
  EXPECT_EQ(plain.p99_response_us, attached.p99_response_us);
  ExpectNoFaultFootprint(plain);
  ExpectNoFaultFootprint(attached);
}

TEST_F(FaultDifferentialTest, PrivateDiskPathIsBitIdenticalWithZeroRates) {
  constexpr uint64_t kSeed = 20120827;
  const FaultSchedule zero{FaultConfig{}};

  ExecutorConfig plain_cfg = ExecConfig();
  plain_cfg.serving = SharedServingConfig::Legacy();  // Private DiskModel.
  ExecutorConfig attached_cfg = plain_cfg;
  attached_cfg.fault_schedule = &zero;

  const ExperimentResult plain =
      RunBatch(*dataset_, *index_, ScoutFactory(), QueryConfig(), plain_cfg,
               /*num_sequences=*/3, kSeed, /*num_workers=*/2);
  const ExperimentResult attached =
      RunBatch(*dataset_, *index_, ScoutFactory(), QueryConfig(),
               attached_cfg, /*num_sequences=*/3, kSeed, /*num_workers=*/2);
  ExpectSameCombined(plain, attached);
}

TEST_F(FaultDifferentialTest, DeadlineOnlyPolicyReportsWithoutPerturbing) {
  // A deadline with no fault schedule is pure observation: outcomes may
  // flip to kDeadlineExceeded, but no simulated metric moves.
  constexpr uint64_t kSeed = 4242;
  const ExecutorConfig plain_cfg = ExecConfig();
  ExecutorConfig deadline_cfg = ExecConfig();
  deadline_cfg.fault_policy.query_deadline_us = 1;  // Absurdly tight.

  const SharedCacheResult plain = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), plain_cfg,
      /*num_sessions=*/2, kSeed, /*num_workers=*/1);
  const SharedCacheResult strict = RunSharedCacheExperiment(
      *dataset_, *index_, ScoutFactory(), QueryConfig(), deadline_cfg,
      /*num_sessions=*/2, kSeed, /*num_workers=*/1);

  ExpectSameCombined(plain.combined, strict.combined);
  EXPECT_EQ(plain.p99_response_us, strict.p99_response_us);
  // Every query with any response time at all overran 1 µs.
  EXPECT_GT(strict.deadline_misses, 0u);
  EXPECT_EQ(plain.deadline_misses, 0u);
  // No retries, no faults — the deadline only watched.
  EXPECT_EQ(strict.faults_seen, 0u);
  EXPECT_EQ(strict.retries, 0u);
}

}  // namespace
}  // namespace scout
