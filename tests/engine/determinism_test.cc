/// Determinism regression tests: the whole engine runs on simulated time,
/// so identical seeds must yield identical results — two RunSequence runs
/// produce identical SequenceRunStats (excluding the wall_* diagnostic
/// fields, which measure host time), and RunBatch is independent of the
/// worker count and equivalent to RunGuidedExperiment.

#include <memory>

#include <gtest/gtest.h>

#include "engine/experiment.h"
#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "workload/generators.h"

namespace scout {
namespace {

/// Simulated-time equality of per-query stats. The wall_* fields are
/// wall-clock diagnostics and legitimately differ between runs.
void ExpectSameQueryStats(const QueryRunStats& a, const QueryRunStats& b,
                          size_t query) {
  SCOPED_TRACE(::testing::Message() << "query " << query);
  EXPECT_EQ(a.pages_total, b.pages_total);
  EXPECT_EQ(a.pages_hit, b.pages_hit);
  EXPECT_EQ(a.result_objects, b.result_objects);
  EXPECT_EQ(a.residual_io_us, b.residual_io_us);
  EXPECT_EQ(a.response_us, b.response_us);
  EXPECT_EQ(a.window_us, b.window_us);
  EXPECT_EQ(a.observe_us, b.observe_us);
  EXPECT_EQ(a.graph_build_us, b.graph_build_us);
  EXPECT_EQ(a.prediction_us, b.prediction_us);
  EXPECT_EQ(a.prefetch_pages, b.prefetch_pages);
  EXPECT_EQ(a.graph_vertices, b.graph_vertices);
  EXPECT_EQ(a.graph_edges, b.graph_edges);
  EXPECT_EQ(a.graph_memory_bytes, b.graph_memory_bytes);
  EXPECT_EQ(a.num_candidates, b.num_candidates);
  EXPECT_EQ(a.was_reset, b.was_reset);
}

void ExpectSameExperimentResult(const ExperimentResult& a,
                                const ExperimentResult& b) {
  EXPECT_EQ(a.prefetcher_name, b.prefetcher_name);
  EXPECT_EQ(a.hit_rate_pct, b.hit_rate_pct);
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.total_response_us, b.total_response_us);
  EXPECT_EQ(a.baseline_response_us, b.baseline_response_us);
  EXPECT_EQ(a.total_residual_us, b.total_residual_us);
  EXPECT_EQ(a.total_graph_build_us, b.total_graph_build_us);
  EXPECT_EQ(a.total_prediction_us, b.total_prediction_us);
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_hits, b.total_hits);
  EXPECT_EQ(a.total_result_objects, b.total_result_objects);
  EXPECT_EQ(a.num_sequences, b.num_sequences);
  EXPECT_EQ(a.total_queries, b.total_queries);
  EXPECT_EQ(a.total_resets, b.total_resets);
  EXPECT_EQ(a.mean_pages_per_query, b.mean_pages_per_query);
  EXPECT_EQ(a.seq_hit_rate.count(), b.seq_hit_rate.count());
  EXPECT_EQ(a.seq_hit_rate.mean(), b.seq_hit_rate.mean());
  EXPECT_EQ(a.seq_hit_rate.stddev(), b.seq_hit_rate.stddev());
}

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateNeuronTissue(NeuronConfigForObjectCount(12000, /*seed=*/3)));
    index_ = RTreeIndex::Build(dataset_->objects)->release();
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static QuerySequenceConfig QueryConfig() {
    QuerySequenceConfig qcfg;
    qcfg.num_queries = 15;
    qcfg.query_volume = 20000.0;
    return qcfg;
  }

  static ExecutorConfig ExecConfig() {
    ExecutorConfig ecfg;
    ecfg.cache_bytes = ScaledCacheBytes(index_->store());
    ecfg.prefetch_window_ratio = 1.4;
    return ecfg;
  }

  static Dataset* dataset_;
  static RTreeIndex* index_;
};

Dataset* DeterminismTest::dataset_ = nullptr;
RTreeIndex* DeterminismTest::index_ = nullptr;

TEST_F(DeterminismTest, RunSequenceIsBitIdenticalAcrossRuns) {
  Rng rng(42);
  const GuidedSequence sequence =
      GenerateGuidedSequence(*dataset_, QueryConfig(), &rng);
  ASSERT_FALSE(sequence.queries.empty());

  auto run_once = [&]() {
    ScoutPrefetcher scout{ScoutConfig{}};
    QueryExecutor executor(index_, &scout, ExecConfig());
    return executor.RunSequence(sequence.queries);
  };
  const SequenceRunStats first = run_once();
  const SequenceRunStats second = run_once();

  ASSERT_EQ(first.queries.size(), second.queries.size());
  for (size_t i = 0; i < first.queries.size(); ++i) {
    ExpectSameQueryStats(first.queries[i], second.queries[i], i);
  }
  EXPECT_EQ(first.CacheHitRatePct(), second.CacheHitRatePct());
  EXPECT_EQ(first.TotalResponseUs(), second.TotalResponseUs());
}

TEST_F(DeterminismTest, RunBatchMatchesRunGuidedExperiment) {
  constexpr uint32_t kSequences = 4;
  constexpr uint64_t kSeed = 9001;
  ScoutPrefetcher scout{ScoutConfig{}};
  const ExperimentResult guided =
      RunGuidedExperiment(*dataset_, *index_, &scout, QueryConfig(),
                          ExecConfig(), kSequences, kSeed);
  const ExperimentResult batch = RunBatch(
      *dataset_, *index_,
      [] { return std::make_unique<ScoutPrefetcher>(ScoutConfig{}); },
      QueryConfig(), ExecConfig(), kSequences, kSeed, /*num_workers=*/1);
  ExpectSameExperimentResult(guided, batch);
}

TEST_F(DeterminismTest, SharedCacheBatchRerunsBitIdentical) {
  // The shared-cache engine extends the determinism contract to
  // multi-client serving: back-to-back runs of the same N-session batch
  // (PrefetchCache::Clear between them reinitializing all shared-mode
  // state — epoch, per-session attribution) must be bit-identical, for
  // any worker count.
  constexpr uint32_t kSessions = 3;
  constexpr uint64_t kSeed = 8888;
  const auto factory = [] {
    return std::make_unique<ScoutPrefetcher>(ScoutConfig{});
  };
  const SharedCacheResult first = RunSharedCacheExperiment(
      *dataset_, *index_, factory, QueryConfig(), ExecConfig(), kSessions,
      kSeed, /*num_workers=*/2);
  for (uint32_t workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(::testing::Message() << workers << " workers");
    const SharedCacheResult again = RunSharedCacheExperiment(
        *dataset_, *index_, factory, QueryConfig(), ExecConfig(), kSessions,
        kSeed, workers);
    ExpectSameExperimentResult(first.combined, again.combined);
    EXPECT_EQ(first.session_hit_rate_pct, again.session_hit_rate_pct);
    EXPECT_EQ(first.session_response_us, again.session_response_us);
    EXPECT_EQ(first.hits_own, again.hits_own);
    EXPECT_EQ(first.hits_cross, again.hits_cross);
    EXPECT_EQ(first.evictions, again.evictions);
  }
}

TEST_F(DeterminismTest, RunBatchIsIndependentOfWorkerCount) {
  constexpr uint32_t kSequences = 6;
  constexpr uint64_t kSeed = 7777;
  const auto factory = [] {
    return std::make_unique<ScoutPrefetcher>(ScoutConfig{});
  };
  const ExperimentResult one = RunBatch(*dataset_, *index_, factory,
                                        QueryConfig(), ExecConfig(),
                                        kSequences, kSeed, /*num_workers=*/1);
  for (uint32_t workers : {2u, 3u, 8u}) {
    const ExperimentResult many =
        RunBatch(*dataset_, *index_, factory, QueryConfig(), ExecConfig(),
                 kSequences, kSeed, workers);
    SCOPED_TRACE(::testing::Message() << workers << " workers");
    ExpectSameExperimentResult(one, many);
  }
}

}  // namespace
}  // namespace scout
