#include "engine/query_executor.h"

#include <gtest/gtest.h>

#include "index/rtree.h"
#include "prefetch/no_prefetch.h"
#include "prefetch/scout_prefetcher.h"
#include "testing/test_util.h"

namespace scout {
namespace {

using testing::MakeFiber;

struct World {
  std::vector<SpatialObject> objects;
  std::unique_ptr<RTreeIndex> index;

  World() {
    objects = MakeFiber(Vec3(5, 50, 50), Vec3(1, 0, 0), 150, 2.0, 0, 0, 41);
    auto clutter = testing::MakeRandomObjects(
        1500, Aabb(Vec3(0, 0, 0), Vec3(320, 100, 100)), 42);
    for (auto& obj : clutter) {
      obj.id += 10000;
      objects.push_back(obj);
    }
    index = std::move(*RTreeIndex::Build(objects));
  }

  std::vector<Region> Sequence(int n) const {
    std::vector<Region> queries;
    for (int q = 0; q < n; ++q) {
      queries.push_back(
          Region::CubeAt(Vec3(30.0 + 20.0 * q, 50, 50), 8000.0));
    }
    return queries;
  }
};

TEST(QueryExecutorTest, NoPrefetchNeverHits) {
  World world;
  NoPrefetcher none;
  ExecutorConfig config;
  QueryExecutor executor(world.index.get(), &none, config);
  const SequenceRunStats stats = executor.RunSequence(world.Sequence(8));
  EXPECT_EQ(stats.TotalPagesHit(), 0u);
  EXPECT_EQ(stats.CacheHitRatePct(), 0.0);
  EXPECT_GT(stats.TotalResidualUs(), 0);
  // Response equals residual I/O when nothing is prefetched.
  EXPECT_EQ(stats.TotalResponseUs(), stats.TotalResidualUs());
}

TEST(QueryExecutorTest, ResidualCachingServesOverlappingPages) {
  World world;
  NoPrefetcher none;
  ExecutorConfig config;
  config.cache_residual_reads = true;
  QueryExecutor executor(world.index.get(), &none, config);
  // Two identical queries: the second is fully cached.
  std::vector<Region> queries = {world.Sequence(1)[0], world.Sequence(1)[0]};
  const SequenceRunStats stats = executor.RunSequence(queries);
  ASSERT_EQ(stats.queries.size(), 2u);
  EXPECT_EQ(stats.queries[0].pages_hit, 0u);
  EXPECT_EQ(stats.queries[1].pages_hit, stats.queries[1].pages_total);
  EXPECT_EQ(stats.queries[1].residual_io_us, 0);
}

TEST(QueryExecutorTest, ScoutReducesResponseTime) {
  World world;
  const std::vector<Region> queries = world.Sequence(10);

  NoPrefetcher none;
  ExecutorConfig config;
  QueryExecutor base_exec(world.index.get(), &none, config);
  const SequenceRunStats base = base_exec.RunSequence(queries);

  ScoutPrefetcher scout{ScoutConfig{}};
  QueryExecutor scout_exec(world.index.get(), &scout, config);
  const SequenceRunStats run = scout_exec.RunSequence(queries);

  EXPECT_GT(run.TotalPagesHit(), 0u);
  EXPECT_LT(run.TotalResponseUs(), base.TotalResponseUs());
  EXPECT_GT(run.CacheHitRatePct(), 20.0);
}

TEST(QueryExecutorTest, FirstQueryIsAlwaysCold) {
  World world;
  ScoutPrefetcher scout{ScoutConfig{}};
  QueryExecutor executor(world.index.get(), &scout, ExecutorConfig{});
  const SequenceRunStats stats = executor.RunSequence(world.Sequence(5));
  ASSERT_FALSE(stats.queries.empty());
  EXPECT_EQ(stats.queries[0].pages_hit, 0u);
}

TEST(QueryExecutorTest, WindowScalesWithRatio) {
  World world;
  NoPrefetcher none;
  ExecutorConfig narrow;
  narrow.prefetch_window_ratio = 0.5;
  ExecutorConfig wide;
  wide.prefetch_window_ratio = 2.0;
  QueryExecutor e1(world.index.get(), &none, narrow);
  QueryExecutor e2(world.index.get(), &none, wide);
  const auto s1 = e1.RunSequence(world.Sequence(3));
  const auto s2 = e2.RunSequence(world.Sequence(3));
  for (size_t i = 0; i < s1.queries.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(s2.queries[i].window_us),
                4.0 * static_cast<double>(s1.queries[i].window_us),
                static_cast<double>(s2.queries[i].window_us) * 0.01 + 4);
  }
}

TEST(QueryExecutorTest, ZeroWindowPreventsPrefetching) {
  World world;
  ScoutPrefetcher scout{ScoutConfig{}};
  ExecutorConfig config;
  config.prefetch_window_ratio = 0.0;
  QueryExecutor executor(world.index.get(), &scout, config);
  const SequenceRunStats stats = executor.RunSequence(world.Sequence(6));
  EXPECT_EQ(stats.TotalPagesHit(), 0u);
  for (const auto& q : stats.queries) {
    EXPECT_EQ(q.prefetch_pages, 0u);
  }
}

TEST(QueryExecutorTest, TinyCacheLimitsPrefetching) {
  World world;
  ScoutPrefetcher scout{ScoutConfig{}};
  ExecutorConfig big;
  big.cache_bytes = 1024 * kPageBytes;
  ExecutorConfig tiny;
  tiny.cache_bytes = 2 * kPageBytes;
  QueryExecutor e_big(world.index.get(), &scout, big);
  const double hit_big = e_big.RunSequence(world.Sequence(10)).CacheHitRatePct();
  ScoutPrefetcher scout2{ScoutConfig{}};
  QueryExecutor e_tiny(world.index.get(), &scout2, tiny);
  const double hit_tiny =
      e_tiny.RunSequence(world.Sequence(10)).CacheHitRatePct();
  EXPECT_LT(hit_tiny, hit_big);
}

TEST(QueryExecutorTest, StatsAreInternallyConsistent) {
  World world;
  ScoutPrefetcher scout{ScoutConfig{}};
  QueryExecutor executor(world.index.get(), &scout, ExecutorConfig{});
  const SequenceRunStats stats = executor.RunSequence(world.Sequence(8));
  for (const auto& q : stats.queries) {
    EXPECT_LE(q.pages_hit, q.pages_total);
    EXPECT_GE(q.window_us, 0);
    EXPECT_GE(q.observe_us, 0);
    EXPECT_GE(q.response_us, q.residual_io_us);
  }
  EXPECT_GE(stats.CacheHitRatePct(), 0.0);
  EXPECT_LE(stats.CacheHitRatePct(), 100.0);
}

TEST(QueryExecutorTest, RunSequenceIsRepeatable) {
  World world;
  ScoutPrefetcher scout{ScoutConfig{}};
  QueryExecutor executor(world.index.get(), &scout, ExecutorConfig{});
  const auto queries = world.Sequence(8);
  const SequenceRunStats a = executor.RunSequence(queries);
  const SequenceRunStats b = executor.RunSequence(queries);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  EXPECT_EQ(a.TotalPagesHit(), b.TotalPagesHit());
  EXPECT_EQ(a.TotalResponseUs(), b.TotalResponseUs());
}

}  // namespace
}  // namespace scout
