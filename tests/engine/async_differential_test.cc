// Differential tests of real-I/O serving (RunSequenceFile): the async
// decoupled pipeline must be BIT-IDENTICAL to the synchronous file path
// — same result hash, same logical-cache behaviour, same fetch plan in
// the same order — and the synchronous file path must reproduce the
// in-memory oracle exactly. Wall-clock is deliberately not asserted
// here (bench/fig_wallclock measures it); these tests pin correctness.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "engine/query_executor.h"
#include "geom/aabb.h"
#include "gtest/gtest.h"
#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "storage/cache.h"
#include "storage/fault_model.h"
#include "storage/file_page_store.h"
#include "testing/test_util.h"

namespace scout {
namespace {

class AsyncDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto objects = testing::MakeFiber(Vec3(5, 50, 50), Vec3(1, 0, 0), 150,
                                      2.0, 0, 0, 41);
    auto clutter = testing::MakeRandomObjects(
        1500, Aabb(Vec3(0, 0, 0), Vec3(320, 100, 100)), 42);
    for (auto& obj : clutter) {
      obj.id += 10000;
      objects.push_back(obj);
    }
    auto built = RTreeIndex::Build(objects);
    ASSERT_TRUE(built.ok()) << built.status().message();
    index_ = std::move(built).value();
    path_ = ::testing::TempDir() + "scout_diff_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".pages";
    const Status st = FilePageStore::WriteFile(index_->store(), path_);
    ASSERT_TRUE(st.ok()) << st.message();
  }

  std::vector<Region> Sequence(size_t n) const {
    std::vector<Region> queries;
    for (size_t q = 0; q < n; ++q) {
      queries.push_back(
          Region::CubeAt(Vec3(30.0 + 20.0 * q, 50, 50), 8000.0));
    }
    return queries;
  }

  std::unique_ptr<FilePageStore> OpenStore() {
    auto opened = FilePageStore::Open(path_, store_options_);
    EXPECT_TRUE(opened.ok()) << opened.status().message();
    return std::move(opened).value();
  }

  ExecutorConfig FileConfig(FilePageStore* store, bool async) const {
    ExecutorConfig config;
    config.io.backend = IoBackend::kFile;
    config.io.store = store;
    config.io.async_prefetch = async;
    config.io.prefetch_budget_pages = 8;
    config.io.think_time_us = think_us_;
    return config;
  }

  /// One cold run over a fresh store + fresh prefetcher (both modes are
  /// stateful, so reruns must not share them). Returns the stats and,
  /// via `store_out`, the store (for its fetch log).
  FileSequenceStats Run(bool async, std::span<const Region> queries,
                        const FileRunOptions& options,
                        std::unique_ptr<FilePageStore>* store_out) {
    *store_out = OpenStore();
    (*store_out)->EnableFetchLog();
    ScoutPrefetcher prefetcher{ScoutConfig{}};
    QueryExecutor executor(index_.get(), &prefetcher,
                           FileConfig(store_out->get(), async));
    return executor.RunSequenceFile(queries, options);
  }

  std::unique_ptr<RTreeIndex> index_;
  std::string path_;
  /// Think gap used by FileConfig. 0 routes every async plan page
  /// through the worker; > 0 engages the hybrid transport (leading
  /// plan pages fetched inline on the executor).
  int64_t think_us_ = 0;
  FilePageStoreOptions store_options_;
};

std::vector<PageId> Sorted(std::vector<PageId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST_F(AsyncDifferentialTest, SyncFileMatchesInMemoryOracle) {
  const auto queries = Sequence(10);
  FileRunOptions options;
  options.collect_results = true;
  std::unique_ptr<FilePageStore> store;
  const FileSequenceStats stats = Run(/*async=*/false, queries, options,
                                      &store);

  // Oracle: Prepare() on the in-memory index, hashed through the same
  // fingerprint the file path folds as it serves.
  uint64_t oracle_hash = QueryExecutor::kResultHashSeed;
  QueryExecutor::PreparedQuery prep;
  ASSERT_EQ(stats.results.size(), queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    QueryExecutor::Prepare(*index_, queries[qi], &prep);
    oracle_hash = QueryExecutor::HashPreparedObjects(
        oracle_hash, std::span<const GraphInput>(prep.objects));
    // Value-level comparison, object for object, in order.
    ASSERT_EQ(stats.results[qi].size(), prep.objects.size()) << "query " << qi;
    for (size_t i = 0; i < prep.objects.size(); ++i) {
      EXPECT_EQ(stats.results[qi][i].id, prep.objects[i].object->id);
    }
    EXPECT_EQ(stats.queries[qi].result_objects, prep.objects.size());
    EXPECT_EQ(stats.queries[qi].outcome, StatusCode::kOk);
  }
  EXPECT_EQ(stats.result_hash, oracle_hash);
  EXPECT_GT(stats.TotalPagesHit(), 0u) << "prefetching never hit";
}

TEST_F(AsyncDifferentialTest, AsyncIsBitIdenticalToSync) {
  const auto queries = Sequence(10);
  std::unique_ptr<FilePageStore> sync_store;
  std::unique_ptr<FilePageStore> async_store;
  const FileSequenceStats sync_stats =
      Run(/*async=*/false, queries, FileRunOptions{}, &sync_store);
  const FileSequenceStats async_stats =
      Run(/*async=*/true, queries, FileRunOptions{}, &async_store);

  EXPECT_EQ(async_stats.result_hash, sync_stats.result_hash);

  // The logical cache plane is driven through the identical operation
  // sequence in both modes, so every logical counter matches per query.
  ASSERT_EQ(async_stats.queries.size(), sync_stats.queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const FileQueryStats& s = sync_stats.queries[qi];
    const FileQueryStats& a = async_stats.queries[qi];
    EXPECT_EQ(a.pages_total, s.pages_total) << "query " << qi;
    EXPECT_EQ(a.pages_hit, s.pages_hit) << "query " << qi;
    EXPECT_EQ(a.demand_reads, s.demand_reads) << "query " << qi;
    EXPECT_EQ(a.prefetch_planned, s.prefetch_planned) << "query " << qi;
    EXPECT_EQ(a.result_objects, s.result_objects) << "query " << qi;
    EXPECT_EQ(a.outcome, StatusCode::kOk);
  }

  // Superset-ordering contract: both modes issue the identical plan in
  // the identical order (the worker's issue log is a subsequence of it,
  // asserted inside the engine), and demand reads promote in the same
  // order; fault-free, the global fetch multisets coincide exactly.
  EXPECT_EQ(async_stats.prefetch_order, sync_stats.prefetch_order);
  EXPECT_EQ(async_stats.demand_order, sync_stats.demand_order);
  EXPECT_GT(sync_stats.prefetch_order.size(), 0u);
  EXPECT_EQ(Sorted(async_store->FetchLog()), Sorted(sync_store->FetchLog()));
}

TEST_F(AsyncDifferentialTest, HybridInlineTransportKeepsBitIdentity) {
  // A non-zero think gap engages the hybrid transport: the async
  // executor fetches leading plan pages inline and hands only the
  // overflow to the worker. The inline/worker split point is
  // timing-dependent run to run, but it must never be observable:
  // results, logical counters, plan order, and the global fetch
  // multiset all stay bit-identical to sync serving.
  think_us_ = 400;
  // A real per-read latency makes the gap actually fill up, so the run
  // exercises both halves of the hybrid (inline prefix AND worker
  // overflow) instead of fetching everything inline instantly.
  store_options_.device_latency_us = 100;
  const auto queries = Sequence(10);
  std::unique_ptr<FilePageStore> sync_store;
  std::unique_ptr<FilePageStore> async_store;
  const FileSequenceStats sync_stats =
      Run(/*async=*/false, queries, FileRunOptions{}, &sync_store);
  const FileSequenceStats async_stats =
      Run(/*async=*/true, queries, FileRunOptions{}, &async_store);

  EXPECT_EQ(async_stats.result_hash, sync_stats.result_hash);
  EXPECT_EQ(async_stats.prefetch_order, sync_stats.prefetch_order);
  EXPECT_EQ(async_stats.demand_order, sync_stats.demand_order);
  EXPECT_EQ(Sorted(async_store->FetchLog()), Sorted(sync_store->FetchLog()));
  ASSERT_EQ(async_stats.queries.size(), sync_stats.queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(async_stats.queries[qi].pages_hit,
              sync_stats.queries[qi].pages_hit);
    EXPECT_EQ(async_stats.queries[qi].demand_reads,
              sync_stats.queries[qi].demand_reads);
    EXPECT_EQ(async_stats.queries[qi].result_objects,
              sync_stats.queries[qi].result_objects);
  }
}

TEST_F(AsyncDifferentialTest, AsyncRerunsAreDeterministic) {
  const auto queries = Sequence(8);
  std::unique_ptr<FilePageStore> store_a;
  std::unique_ptr<FilePageStore> store_b;
  const FileSequenceStats a =
      Run(/*async=*/true, queries, FileRunOptions{}, &store_a);
  const FileSequenceStats b =
      Run(/*async=*/true, queries, FileRunOptions{}, &store_b);

  EXPECT_EQ(a.result_hash, b.result_hash);
  EXPECT_EQ(a.prefetch_order, b.prefetch_order);
  EXPECT_EQ(a.demand_order, b.demand_order);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t qi = 0; qi < a.queries.size(); ++qi) {
    EXPECT_EQ(a.queries[qi].pages_hit, b.queries[qi].pages_hit);
    EXPECT_EQ(a.queries[qi].demand_reads, b.queries[qi].demand_reads);
    EXPECT_EQ(a.queries[qi].prefetch_planned, b.queries[qi].prefetch_planned);
  }
}

TEST_F(AsyncDifferentialTest, WarmRerunHitsCacheAndKeepsResults) {
  const auto queries = Sequence(8);
  auto store = OpenStore();
  ScoutPrefetcher prefetcher{ScoutConfig{}};
  QueryExecutor executor(index_.get(), &prefetcher,
                         FileConfig(store.get(), /*async=*/true));
  const FileSequenceStats cold = executor.RunSequenceFile(queries);
  FileRunOptions warm_options;
  warm_options.warm_start = true;
  const FileSequenceStats warm =
      executor.RunSequenceFile(queries, warm_options);

  EXPECT_EQ(warm.result_hash, cold.result_hash);
  EXPECT_GE(warm.TotalPagesHit(), cold.TotalPagesHit());
  EXPECT_LE(warm.TotalDemandReads(), cold.TotalDemandReads());
}

// Satellite regression: async completions must be applied serially on
// the executor thread, so a shared cache's SetActiveSession attribution
// can never race the fetch worker. Runs under TSan in CI (tier1), where
// a worker-side cache mutation would fire instantly; the debug-mode
// ScopedWriter guard inside PrefetchCache checks the same invariant.
TEST_F(AsyncDifferentialTest, SharedCacheAttributionUnderAsyncServing) {
  const auto queries = Sequence(8);
  auto store = OpenStore();
  PrefetchCache shared(64ull << 20);
  shared.ConfigureSharing(2);
  ScoutPrefetcher prefetcher{ScoutConfig{}};
  QueryExecutor executor(index_.get(), &prefetcher,
                         FileConfig(store.get(), /*async=*/true), &shared);
  const FileSequenceStats stats = executor.RunSequenceFile(queries);

  EXPECT_GT(stats.result_hash, 0u);
  EXPECT_EQ(stats.UnavailableQueries(), 0u);
  // Every insert the sequence performed was attributed to session 0.
  EXPECT_GT(shared.session_stats()[0].inserts, 0u);
  EXPECT_EQ(shared.session_stats()[1].inserts, 0u);
  // The attribution bracket was closed on exit.
  EXPECT_EQ(shared.active_session(), PrefetchCache::kNoSession);
}

// Fault-storm soak over the file backend: serving degrades to partial
// results but never crashes, wedges, or loses the sequence; and the
// single-threaded sync path replays the identical degraded run on a
// fresh store (the op-counter fault timeline is deterministic).
TEST_F(AsyncDifferentialTest, FaultStormSoakServesDegraded) {
  const auto queries = Sequence(10);
  FaultConfig cfg;
  cfg.seed = 11;
  cfg.read_failure_prob = 0.25;
  cfg.read_failure_burst_us = 1000;
  const FaultSchedule faults(cfg);

  auto run = [&](bool async) {
    auto store = OpenStore();
    store->AttachFaults(&faults);
    ScoutPrefetcher prefetcher{ScoutConfig{}};
    QueryExecutor executor(index_.get(), &prefetcher,
                           FileConfig(store.get(), async));
    FileSequenceStats stats = executor.RunSequenceFile(queries);
    EXPECT_EQ(stats.queries.size(), queries.size());
    return stats;
  };

  const FileSequenceStats sync_a = run(/*async=*/false);
  const FileSequenceStats sync_b = run(/*async=*/false);
  EXPECT_EQ(sync_a.result_hash, sync_b.result_hash);
  EXPECT_EQ(sync_a.TotalFaultsSeen(), sync_b.TotalFaultsSeen());
  EXPECT_EQ(sync_a.TotalRetries(), sync_b.TotalRetries());
  EXPECT_GT(sync_a.TotalFaultsSeen(), 0u) << "storm did not fire";

  // Async under faults: thread interleaving may shift which attempt a
  // burst hits, so only robustness (not bit-identity) is asserted.
  const FileSequenceStats async_stats = run(/*async=*/true);
  QueryExecutor::PreparedQuery prep;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    QueryExecutor::Prepare(*index_, queries[qi], &prep);
    EXPECT_LE(async_stats.queries[qi].result_objects, prep.objects.size());
  }
}

}  // namespace
}  // namespace scout
