/// Chaos soak: N = 8 sessions served over the shared cache and shared
/// disk while an armed FaultSchedule injects transient read failures,
/// channel outages and latency spikes. The contract under fire:
///   - the run completes (every query answered, no crash, no abort),
///   - degradation is bounded (prefetching still lands hits, responses
///     stay finite, outcome codes account for every failure),
///   - the whole run is bit-identical across reruns and worker counts
///     (faults are pure functions of (seed, page, channel, sim-time)),
///   - prefetch shedding protects the tail: under the same faults, the
///     shedding policy's pooled p99 is no worse than retry-only.

#include <memory>

#include <gtest/gtest.h>

#include "engine/multi_client_engine.h"
#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "storage/fault_model.h"
#include "workload/generators.h"

namespace scout {
namespace {

constexpr uint64_t kSeed = 20120827;

PrefetcherFactory ScoutFactory() {
  return [] { return std::make_unique<ScoutPrefetcher>(ScoutConfig{}); };
}

/// Moderate storm: ~8% transient failures in 4 ms bursts, occasional
/// channel outages, 5% latency spikes at 6x.
FaultConfig StormConfig() {
  FaultConfig config;
  config.seed = 0xdecafbad;
  config.read_failure_prob = 0.08;
  config.read_failure_burst_us = 4000;
  config.channel_outage_prob = 0.25;
  config.channel_outage_period_us = 200000;
  config.channel_outage_us = 30000;
  config.latency_spike_prob = 0.05;
  config.latency_spike_multiplier = 6.0;
  return config;
}

void ExpectSameResult(const SharedCacheResult& a, const SharedCacheResult& b) {
  EXPECT_EQ(a.combined.total_response_us, b.combined.total_response_us);
  EXPECT_EQ(a.combined.total_residual_us, b.combined.total_residual_us);
  EXPECT_EQ(a.combined.total_disk_wait_us, b.combined.total_disk_wait_us);
  EXPECT_EQ(a.combined.total_pages, b.combined.total_pages);
  EXPECT_EQ(a.combined.total_hits, b.combined.total_hits);
  EXPECT_EQ(a.combined.total_queries, b.combined.total_queries);
  EXPECT_EQ(a.session_response_us, b.session_response_us);
  EXPECT_EQ(a.session_hit_rate_pct, b.session_hit_rate_pct);
  EXPECT_EQ(a.hits_own, b.hits_own);
  EXPECT_EQ(a.hits_cross, b.hits_cross);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.disk.service_us, b.disk.service_us);
  EXPECT_EQ(a.disk.wait_us, b.disk.wait_us);
  EXPECT_EQ(a.disk.failed_reads, b.disk.failed_reads);
  EXPECT_EQ(a.disk.outage_wait_us, b.disk.outage_wait_us);
  EXPECT_EQ(a.faults_seen, b.faults_seen);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.backoff_wait_us, b.backoff_wait_us);
  EXPECT_EQ(a.shed_prefetches, b.shed_prefetches);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.unavailable_queries, b.unavailable_queries);
  EXPECT_EQ(a.p99_response_us, b.p99_response_us);
}

class FaultChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(
        GenerateNeuronTissue(NeuronConfigForObjectCount(12000, /*seed=*/3)));
    index_ = RTreeIndex::Build(dataset_->objects)->release();
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static QuerySequenceConfig QueryConfig() {
    QuerySequenceConfig qcfg;
    qcfg.num_queries = 12;
    qcfg.query_volume = 20000.0;
    return qcfg;
  }

  static ExecutorConfig ExecConfig(const FaultSchedule* schedule,
                                   bool shed_prefetch) {
    ExecutorConfig ecfg;
    ecfg.cache_bytes = ScaledCacheBytes(index_->store());
    ecfg.prefetch_window_ratio = 1.4;
    ecfg.fault_schedule = schedule;
    ecfg.fault_policy.shed_prefetch_on_retry = shed_prefetch;
    return ecfg;
  }

  static SharedCacheResult Run(const ExecutorConfig& ecfg,
                               uint32_t num_workers) {
    return RunSharedCacheExperiment(*dataset_, *index_, ScoutFactory(),
                                    QueryConfig(), ecfg, /*num_sessions=*/8,
                                    kSeed, num_workers);
  }

  static Dataset* dataset_;
  static RTreeIndex* index_;
};

Dataset* FaultChaosTest::dataset_ = nullptr;
RTreeIndex* FaultChaosTest::index_ = nullptr;

TEST_F(FaultChaosTest, SoakCompletesWithBoundedDegradation) {
  const FaultSchedule storm{StormConfig()};
  ASSERT_TRUE(storm.Armed());
  const SharedCacheResult faulty = Run(ExecConfig(&storm, true), 4);
  const SharedCacheResult clean = Run(ExecConfig(nullptr, true), 4);

  // Every query of every session completed and was accounted for.
  EXPECT_EQ(faulty.combined.total_queries, clean.combined.total_queries);
  EXPECT_EQ(faulty.session_response_us.size(), 8u);

  // The storm actually hit, and the policy actually responded.
  EXPECT_GT(faulty.faults_seen, 0u);
  EXPECT_GT(faulty.disk.failed_reads, 0u);
  EXPECT_GT(faulty.retries, 0u);

  // Bounded degradation: the engine still prefetches and still lands
  // hits; responses got slower, not unbounded (pay at most 12x clean).
  EXPECT_GT(faulty.combined.total_hits, 0u);
  EXPECT_GT(faulty.combined.total_response_us,
            clean.combined.total_response_us);
  EXPECT_LT(faulty.combined.total_response_us,
            12 * clean.combined.total_response_us);
}

TEST_F(FaultChaosTest, SoakIsBitIdenticalAcrossWorkersAndReruns) {
  const FaultSchedule storm{StormConfig()};
  const SharedCacheResult serial = Run(ExecConfig(&storm, true), 1);
  const SharedCacheResult parallel_run = Run(ExecConfig(&storm, true), 8);
  const SharedCacheResult rerun = Run(ExecConfig(&storm, true), 8);
  ExpectSameResult(serial, parallel_run);
  ExpectSameResult(parallel_run, rerun);
}

TEST_F(FaultChaosTest, SheddingProtectsTheTailOverRetryOnly) {
  const FaultSchedule storm{StormConfig()};
  const SharedCacheResult shed = Run(ExecConfig(&storm, true), 4);
  const SharedCacheResult retry_only = Run(ExecConfig(&storm, false), 4);

  // The shedding policy really shed; retry-only never does.
  EXPECT_GT(shed.shed_prefetches, 0u);
  EXPECT_EQ(retry_only.shed_prefetches, 0u);

  // Shedding drops speculative reads while the array is misbehaving, so
  // the pooled p99 must not be worse than blindly retrying into a storm.
  EXPECT_LE(shed.p99_response_us, retry_only.p99_response_us);
}

TEST_F(FaultChaosTest, FailedQueriesReportStatusInsteadOfAborting) {
  // Crank failures high with a tight retry budget: some queries must end
  // kUnavailable (retries exhausted with pages still missing), yet the
  // run completes and every query is accounted for.
  FaultConfig brutal = StormConfig();
  brutal.read_failure_prob = 0.6;
  brutal.read_failure_burst_us = 50000;  // Long bursts defeat retries.
  const FaultSchedule storm{brutal};
  ExecutorConfig ecfg = ExecConfig(&storm, true);
  ecfg.fault_policy.max_retries = 1;
  ecfg.fault_policy.backoff_base_us = 100;
  const SharedCacheResult r = Run(ecfg, 4);
  EXPECT_EQ(r.combined.total_queries, 8u * 12u);
  EXPECT_GT(r.unavailable_queries, 0u);
  EXPECT_LE(r.unavailable_queries, r.combined.total_queries);
}

}  // namespace
}  // namespace scout
