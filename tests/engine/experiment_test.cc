#include "engine/experiment.h"

#include <gtest/gtest.h>

#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "prefetch/trajectory_prefetcher.h"
#include "workload/generators.h"

namespace scout {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<RTreeIndex> index;

  Fixture() {
    NeuronGenConfig gen = NeuronConfigForObjectCount(60000, 5);
    dataset = GenerateNeuronTissue(gen);
    index = std::move(*RTreeIndex::Build(dataset.objects));
  }
};

TEST(ExperimentTest, MicrobenchmarkTableMatchesPaperFigure10) {
  ASSERT_EQ(std::size(kMicrobenchmarks), 7u);
  EXPECT_EQ(kMicrobenchmarks[0].queries_in_sequence, 25u);
  EXPECT_EQ(kMicrobenchmarks[0].query_volume, 80000.0);
  EXPECT_EQ(kMicrobenchmarks[2].queries_in_sequence, 35u);
  EXPECT_EQ(kMicrobenchmarks[2].query_volume, 20000.0);
  EXPECT_EQ(kMicrobenchmarks[2].prefetch_window_ratio, 2.0);
  EXPECT_EQ(kMicrobenchmarks[3].aspect, QueryAspect::kFrustum);
  EXPECT_EQ(kMicrobenchmarks[5].gap_distance, 25.0);
}

TEST(ExperimentTest, ScaledCacheBytesProportionalWithFloor) {
  PageStore store;
  EXPECT_EQ(ScaledCacheBytes(store), 64 * kPageBytes);  // Floor.
}

TEST(ExperimentTest, ResultsAreDeterministic) {
  Fixture f;
  ScoutPrefetcher scout{ScoutConfig{}};
  QuerySequenceConfig qcfg;
  qcfg.num_queries = 10;
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(f.index->store());

  const ExperimentResult a = RunGuidedExperiment(
      f.dataset, *f.index, &scout, qcfg, ecfg, 3, /*seed=*/17);
  const ExperimentResult b = RunGuidedExperiment(
      f.dataset, *f.index, &scout, qcfg, ecfg, 3, /*seed=*/17);
  EXPECT_EQ(a.hit_rate_pct, b.hit_rate_pct);
  EXPECT_EQ(a.speedup, b.speedup);
  EXPECT_EQ(a.total_pages, b.total_pages);
}

TEST(ExperimentTest, IdenticalSequencesAcrossPrefetchers) {
  // The experiment must evaluate every prefetcher on the same workload:
  // total result pages are a property of the sequences only.
  Fixture f;
  ScoutPrefetcher scout{ScoutConfig{}};
  StraightLinePrefetcher straight;
  QuerySequenceConfig qcfg;
  qcfg.num_queries = 10;
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(f.index->store());
  const ExperimentResult a = RunGuidedExperiment(
      f.dataset, *f.index, &scout, qcfg, ecfg, 3, /*seed=*/23);
  const ExperimentResult b = RunGuidedExperiment(
      f.dataset, *f.index, &straight, qcfg, ecfg, 3, /*seed=*/23);
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.total_result_objects, b.total_result_objects);
}

TEST(ExperimentTest, SpeedupAboveOneWithPrefetching) {
  Fixture f;
  ScoutPrefetcher scout{ScoutConfig{}};
  QuerySequenceConfig qcfg;
  qcfg.num_queries = 15;
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(f.index->store());
  const ExperimentResult r = RunGuidedExperiment(
      f.dataset, *f.index, &scout, qcfg, ecfg, 4, /*seed=*/29);
  EXPECT_GT(r.hit_rate_pct, 10.0);
  EXPECT_GT(r.speedup, 1.0);
  EXPECT_GT(r.baseline_response_us, r.total_response_us);
}

TEST(ExperimentTest, LongerWindowImprovesScoutAccuracy) {
  // Figure 13(d) property: accuracy grows with the prefetch window ratio.
  Fixture f;
  QuerySequenceConfig qcfg;
  qcfg.num_queries = 15;
  ExecutorConfig narrow;
  narrow.cache_bytes = ScaledCacheBytes(f.index->store());
  narrow.prefetch_window_ratio = 0.3;
  ExecutorConfig wide = narrow;
  wide.prefetch_window_ratio = 2.5;

  ScoutPrefetcher s1{ScoutConfig{}};
  ScoutPrefetcher s2{ScoutConfig{}};
  const double low =
      RunGuidedExperiment(f.dataset, *f.index, &s1, qcfg, narrow, 4, 31)
          .hit_rate_pct;
  const double high =
      RunGuidedExperiment(f.dataset, *f.index, &s2, qcfg, wide, 4, 31)
          .hit_rate_pct;
  EXPECT_GT(high, low);
}

TEST(ExperimentTest, QueryConfigForSpecCopiesFields) {
  const QuerySequenceConfig qcfg = QueryConfigFor(kMicrobenchmarks[5]);
  EXPECT_EQ(qcfg.num_queries, 65u);
  EXPECT_EQ(qcfg.gap_distance, 25.0);
  EXPECT_EQ(qcfg.aspect, QueryAspect::kFrustum);
  PageStore store;
  const ExecutorConfig ecfg = ExecutorConfigFor(kMicrobenchmarks[5], store);
  EXPECT_EQ(ecfg.prefetch_window_ratio, 1.2);
}

}  // namespace
}  // namespace scout
