#include "workload/query_gen.h"

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace scout {
namespace {

Dataset SmallTissue() {
  NeuronGenConfig config;
  config.num_neurons = 4;
  config.seed = 3;
  return GenerateNeuronTissue(config);
}

TEST(QueryGenTest, QueryExtentFormulas) {
  EXPECT_NEAR(QueryExtent(8000.0, QueryAspect::kCube), 20.0, 1e-9);
  // Frustum depth: s with V = 7/12 s^3.
  EXPECT_NEAR(QueryExtent(7.0 / 12.0 * 8000.0, QueryAspect::kFrustum), 20.0,
              1e-9);
}

TEST(QueryGenTest, ProducesRequestedQueries) {
  const Dataset d = SmallTissue();
  QuerySequenceConfig config;
  config.num_queries = 25;
  config.query_volume = 80000.0;
  Rng rng(1);
  const GuidedSequence seq = GenerateGuidedSequence(d, config, &rng);
  EXPECT_GE(seq.queries.size(), 20u);  // Truncation allowed but rare.
  EXPECT_LE(seq.queries.size(), 25u);
  EXPECT_NE(seq.structure, kInvalidStructureId);
  for (const Region& q : seq.queries) {
    EXPECT_TRUE(q.is_box());
    EXPECT_NEAR(q.Volume(), 80000.0, 1.0);
  }
}

TEST(QueryGenTest, ConsecutiveQueriesAreAdjacentChordSpaced) {
  const Dataset d = SmallTissue();
  QuerySequenceConfig config;
  config.num_queries = 15;
  config.query_volume = 80000.0;
  Rng rng(2);
  const GuidedSequence seq = GenerateGuidedSequence(d, config, &rng);
  const double extent = QueryExtent(config.query_volume, config.aspect);
  for (size_t i = 1; i < seq.queries.size(); ++i) {
    const double dist =
        seq.queries[i].Center().DistanceTo(seq.queries[i - 1].Center());
    // Chord spacing: at least the step (minus tiny numerical slack); at
    // most modestly above it (the walk overshoots by <= one increment,
    // except at the clamped path end).
    if (i + 1 < seq.queries.size()) {
      EXPECT_GE(dist, extent * 0.9);
      EXPECT_LE(dist, extent * 1.4);
    }
  }
}

TEST(QueryGenTest, GapIncreasesSpacing) {
  const Dataset d = SmallTissue();
  QuerySequenceConfig config;
  config.num_queries = 10;
  config.query_volume = 30000.0;
  config.gap_distance = 25.0;
  Rng rng(3);
  const GuidedSequence seq = GenerateGuidedSequence(d, config, &rng);
  const double extent = QueryExtent(config.query_volume, config.aspect);
  for (size_t i = 1; i + 1 < seq.queries.size(); ++i) {
    const double dist =
        seq.queries[i].Center().DistanceTo(seq.queries[i - 1].Center());
    EXPECT_GE(dist, (extent + 25.0) * 0.9);
  }
}

TEST(QueryGenTest, FrustumQueriesAlignWithPath) {
  const Dataset d = SmallTissue();
  QuerySequenceConfig config;
  config.num_queries = 10;
  config.query_volume = 30000.0;
  config.aspect = QueryAspect::kFrustum;
  Rng rng(4);
  const GuidedSequence seq = GenerateGuidedSequence(d, config, &rng);
  ASSERT_GE(seq.queries.size(), 5u);
  for (size_t i = 1; i < seq.queries.size(); ++i) {
    ASSERT_TRUE(seq.queries[i].is_frustum());
    const Vec3 move =
        (seq.queries[i].Center() - seq.queries[i - 1].Center()).Normalized();
    // The frustum looks roughly along the movement (tangent) direction.
    EXPECT_GT(seq.queries[i].frustum().direction().Dot(move), 0.0);
  }
}

TEST(QueryGenTest, DeterministicGivenRng) {
  const Dataset d = SmallTissue();
  QuerySequenceConfig config;
  config.num_queries = 8;
  Rng rng1(9);
  Rng rng2(9);
  const GuidedSequence a = GenerateGuidedSequence(d, config, &rng1);
  const GuidedSequence b = GenerateGuidedSequence(d, config, &rng2);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  EXPECT_EQ(a.structure, b.structure);
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].Center(), b.queries[i].Center());
  }
}

TEST(QueryGenTest, EmptyDataset) {
  Dataset empty;
  QuerySequenceConfig config;
  Rng rng(1);
  const GuidedSequence seq = GenerateGuidedSequence(empty, config, &rng);
  EXPECT_TRUE(seq.queries.empty());
  EXPECT_EQ(seq.structure, kInvalidStructureId);
}

TEST(QueryGenTest, CentersLieOnTheGuidingStructure) {
  const Dataset d = SmallTissue();
  QuerySequenceConfig config;
  config.num_queries = 12;
  Rng rng(6);
  const GuidedSequence seq = GenerateGuidedSequence(d, config, &rng);
  ASSERT_FALSE(seq.queries.empty());
  // Every query center is close to some object of the guiding structure.
  for (const Region& q : seq.queries) {
    double best = 1e30;
    for (const SpatialObject& obj : d.objects) {
      if (obj.structure_id != seq.structure) continue;
      best = std::min(best, obj.geom.AsLine().DistanceTo(q.Center()));
    }
    EXPECT_LT(best, 1.0);
  }
}

}  // namespace
}  // namespace scout
