#include "workload/generators.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(NeuronGenTest, ObjectsStayInBoundsAndCarryGroundTruth) {
  NeuronGenConfig config;
  config.num_neurons = 3;
  config.steps_min = 100;
  config.steps_max = 150;
  const Dataset d = GenerateNeuronTissue(config);
  EXPECT_EQ(d.name, "neuron-tissue");
  EXPECT_EQ(d.structures.size(), 3u);
  EXPECT_FALSE(d.objects.empty());
  std::unordered_set<StructureId> seen;
  const Aabb slack = d.bounds.Expanded(config.step_length + 1.0);
  for (const SpatialObject& obj : d.objects) {
    EXPECT_TRUE(slack.Contains(obj.Centroid()));
    EXPECT_NE(obj.structure_id, kInvalidStructureId);
    seen.insert(obj.structure_id);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(NeuronGenTest, DeterministicForSeed) {
  NeuronGenConfig config;
  config.num_neurons = 2;
  config.steps_min = 80;
  config.steps_max = 100;
  const Dataset a = GenerateNeuronTissue(config);
  const Dataset b = GenerateNeuronTissue(config);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].Centroid(), b.objects[i].Centroid());
  }
  config.seed = 999;
  const Dataset c = GenerateNeuronTissue(config);
  EXPECT_NE(a.objects.size(), 0u);
  // Different seed: almost surely different geometry.
  bool any_diff = c.objects.size() != a.objects.size();
  if (!any_diff) {
    for (size_t i = 0; i < a.objects.size(); ++i) {
      if (!(a.objects[i].Centroid() == c.objects[i].Centroid())) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(NeuronGenTest, ConfigForObjectCountIsApproximate) {
  const NeuronGenConfig config = NeuronConfigForObjectCount(100000);
  const Dataset d = GenerateNeuronTissue(config);
  EXPECT_GT(d.objects.size(), 40000u);
  EXPECT_LT(d.objects.size(), 250000u);
}

TEST(NeuronGenTest, PathsAreLongEnoughForSequences) {
  NeuronGenConfig config;
  config.num_neurons = 4;
  const Dataset d = GenerateNeuronTissue(config);
  double longest = 0.0;
  for (const Structure& s : d.structures) {
    longest = std::max(longest, s.LongestPathLength());
  }
  // Need ~2.4 mm for 65-query visualization sequences.
  EXPECT_GT(longest, 2000.0);
}

TEST(VascularGenTest, SmoothTreeProperties) {
  VascularGenConfig config;
  config.num_trees = 2;
  config.levels = 6;
  const Dataset d = GenerateArterialTree(config);
  EXPECT_EQ(d.name, "arterial-tree");
  EXPECT_EQ(d.structures.size(), 2u);
  EXPECT_TRUE(d.adjacency.empty());
  EXPECT_GT(d.objects.size(), 1000u);
  // Radii decay down the tree: root objects thicker than leaves.
  double max_r = 0.0;
  double min_r = 1e30;
  for (const SpatialObject& obj : d.objects) {
    max_r = std::max(max_r, obj.geom.max_radius());
    min_r = std::min(min_r, obj.geom.max_radius());
  }
  EXPECT_LT(min_r, max_r * 0.5);
}

TEST(AirwayGenTest, ExplicitAdjacencyIsConsistent) {
  AirwayGenConfig config;
  config.num_trees = 1;
  config.levels = 6;
  const Dataset d = GenerateLungAirway(config);
  EXPECT_EQ(d.name, "lung-airway");
  ASSERT_FALSE(d.adjacency.empty());

  std::unordered_map<ObjectId, const SpatialObject*> by_id;
  for (const SpatialObject& obj : d.objects) by_id[obj.id] = &obj;

  size_t checked = 0;
  for (const auto& [id, neighbors] : d.adjacency) {
    ASSERT_TRUE(by_id.contains(id));
    for (ObjectId nb : neighbors) {
      ASSERT_TRUE(by_id.contains(nb));
      // Symmetry.
      const auto& back = d.adjacency.at(nb);
      EXPECT_TRUE(std::find(back.begin(), back.end(), id) != back.end());
      // Adjacent mesh segments actually touch (share a node).
      EXPECT_LT(by_id.at(id)->geom.AsLine().DistanceTo(
                    by_id.at(nb)->geom.AsLine()),
                1e-6);
      if (++checked > 2000) return;  // Bounded runtime.
    }
  }
}

TEST(RoadGenTest, PlanarNetwork) {
  RoadGenConfig config;
  config.num_avenues = 10;
  config.num_streets = 10;
  config.num_highways = 3;
  const Dataset d = GenerateRoadNetwork(config);
  EXPECT_EQ(d.name, "road-network");
  EXPECT_EQ(d.structures.size(), 23u);
  EXPECT_GT(d.objects.size(), 1000u);
  // All objects lie in the thin z slab.
  for (const SpatialObject& obj : d.objects) {
    EXPECT_GE(obj.Centroid().z, 0.0);
    EXPECT_LE(obj.Centroid().z, config.thickness);
  }
}

TEST(DatasetTest, DensityIsObjectsPerVolume) {
  Dataset d;
  d.bounds = Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10));
  d.objects.resize(500);
  EXPECT_DOUBLE_EQ(d.Density(), 0.5);
}

}  // namespace
}  // namespace scout
