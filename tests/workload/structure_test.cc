#include "workload/structure.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

Structure MakeY() {
  // A Y-shaped tree: root chain 0-1-2, then two branches.
  Structure s;
  s.id = 1;
  s.nodes = {
      {Vec3(0, 0, 0), 1.0, -1}, {Vec3(10, 0, 0), 1.0, 0},
      {Vec3(20, 0, 0), 1.0, 1}, {Vec3(30, 10, 0), 1.0, 2},
      {Vec3(30, -10, 0), 1.0, 2},
  };
  return s;
}

TEST(StructureTest, BuildChildren) {
  const Structure s = MakeY();
  const auto children = s.BuildChildren();
  EXPECT_EQ(children[0], std::vector<uint32_t>{1});
  EXPECT_EQ(children[2], (std::vector<uint32_t>{3, 4}));
  EXPECT_TRUE(children[3].empty());
}

TEST(StructureTest, SamplePathReachesLeaf) {
  const Structure s = MakeY();
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const std::vector<Vec3> path = s.SamplePath(&rng);
    ASSERT_EQ(path.size(), 4u);  // Root chain + one of the two leaves.
    EXPECT_EQ(path[0], Vec3(0, 0, 0));
    const bool upper = path[3] == Vec3(30, 10, 0);
    const bool lower = path[3] == Vec3(30, -10, 0);
    EXPECT_TRUE(upper || lower);
  }
}

TEST(StructureTest, SamplePathCoversBothBranches) {
  const Structure s = MakeY();
  Rng rng(2);
  bool upper = false;
  bool lower = false;
  for (int i = 0; i < 50; ++i) {
    const std::vector<Vec3> path = s.SamplePath(&rng);
    upper |= path[3].y > 0;
    lower |= path[3].y < 0;
  }
  EXPECT_TRUE(upper);
  EXPECT_TRUE(lower);
}

TEST(StructureTest, LongestPathLength) {
  const Structure s = MakeY();
  // Root chain 20 + branch sqrt(200).
  EXPECT_NEAR(s.LongestPathLength(), 20.0 + std::sqrt(200.0), 1e-9);
}

TEST(PolylineWalkTest, ArcPointInterpolates) {
  const PolylineWalk walk({Vec3(0, 0, 0), Vec3(10, 0, 0), Vec3(10, 10, 0)});
  EXPECT_DOUBLE_EQ(walk.TotalLength(), 20.0);
  EXPECT_EQ(walk.ArcPoint(0.0), Vec3(0, 0, 0));
  EXPECT_EQ(walk.ArcPoint(5.0), Vec3(5, 0, 0));
  EXPECT_EQ(walk.ArcPoint(15.0), Vec3(10, 5, 0));
  EXPECT_EQ(walk.ArcPoint(20.0), Vec3(10, 10, 0));
  // Clamping beyond the ends.
  EXPECT_EQ(walk.ArcPoint(-5.0), Vec3(0, 0, 0));
  EXPECT_EQ(walk.ArcPoint(99.0), Vec3(10, 10, 0));
}

TEST(PolylineWalkTest, ArcTangentFollowsSegments) {
  const PolylineWalk walk({Vec3(0, 0, 0), Vec3(10, 0, 0), Vec3(10, 10, 0)});
  EXPECT_EQ(walk.ArcTangent(5.0), Vec3(1, 0, 0));
  EXPECT_EQ(walk.ArcTangent(15.0), Vec3(0, 1, 0));
}

TEST(PolylineWalkTest, DegenerateInputs) {
  const PolylineWalk empty({});
  EXPECT_EQ(empty.TotalLength(), 0.0);
  EXPECT_EQ(empty.ArcPoint(1.0), Vec3());
  const PolylineWalk single({Vec3(3, 3, 3)});
  EXPECT_EQ(single.ArcPoint(5.0), Vec3(3, 3, 3));
}

TEST(EmitStructureObjectsTest, OneCylinderPerEdge) {
  const Structure s = MakeY();
  ObjectId next_id = 100;
  std::vector<SpatialObject> objects;
  EmitStructureObjects(s, &next_id, &objects);
  EXPECT_EQ(objects.size(), 4u);  // 5 nodes, 4 edges.
  EXPECT_EQ(next_id, 104u);
  for (const SpatialObject& obj : objects) {
    EXPECT_EQ(obj.structure_id, s.id);
  }
  // First object spans nodes 0 -> 1.
  EXPECT_EQ(objects[0].geom.p0(), Vec3(0, 0, 0));
  EXPECT_EQ(objects[0].geom.p1(), Vec3(10, 0, 0));
}

}  // namespace
}  // namespace scout
