/// Internal diagnostic harness (not part of the documented examples):
/// prints per-query SCOUT internals (candidate counts, exits, resets) and
/// baseline prediction errors on one guided sequence.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "engine/experiment.h"
#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "prefetch/static_prefetchers.h"
#include "prefetch/trajectory_prefetcher.h"
#include "workload/generators.h"

using namespace scout;

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--help") == 0) {
    std::printf(
        "Usage: diagnose [turn_stddev]\n"
        "Prints per-query SCOUT internals (candidate counts, exits, resets)\n"
        "and baseline prediction errors on one guided sequence.\n");
    return 0;
  }
  double turn = argc > 1 ? std::atof(argv[1]) : 0.35;
  NeuronGenConfig gen;
  gen.turn_stddev = turn;
  gen.seed = 7;
  Dataset dataset = GenerateNeuronTissue(gen);
  std::printf("turn=%.2f objects=%zu density=%.2e\n", turn,
              dataset.objects.size(), dataset.Density());

  auto index_or = RTreeIndex::Build(dataset.objects);
  const RTreeIndex& index = **index_or;

  QuerySequenceConfig qcfg;
  qcfg.num_queries = 25;
  qcfg.query_volume = 80000.0;

  Rng rng(123);
  GuidedSequence seq = GenerateGuidedSequence(dataset, qcfg, &rng);
  std::printf("sequence: %zu queries on structure %u\n", seq.queries.size(),
              seq.structure);

  // Straight-line prediction error per step.
  for (size_t i = 2; i < seq.queries.size(); ++i) {
    const Vec3 c0 = seq.queries[i - 2].Center();
    const Vec3 c1 = seq.queries[i - 1].Center();
    const Vec3 pred = c1 + (c1 - c0);
    const double err = pred.DistanceTo(seq.queries[i].Center());
    if (i < 8) std::printf("  straight err q%zu = %.1f um\n", i, err);
  }

  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(index.store());
  ecfg.prefetch_window_ratio = argc > 2 ? atof(argv[2]) : 1.0;
  std::printf("window ratio = %.2f\n", ecfg.prefetch_window_ratio);
  ScoutPrefetcher scout{ScoutConfig{}};
  QueryExecutor exec(&index, &scout, ecfg);
  SequenceRunStats stats = exec.RunSequence(seq.queries);
  std::printf("scout hit rate: %.1f%%\n", stats.CacheHitRatePct());
  for (size_t i = 0; i < stats.queries.size(); ++i) {
    const auto& q = stats.queries[i];
    std::printf(
        "  q%02zu pages=%zu hit=%zu objs=%zu verts=%zu edges=%zu cand=%zu "
        "window=%lld obs=%lld pf=%zu\n",
        i, q.pages_total, q.pages_hit, q.result_objects, q.graph_vertices,
        q.graph_edges, q.num_candidates, (long long)q.window_us,
        (long long)q.observe_us, q.prefetch_pages);
  }

  // Full comparison over 15 sequences.
  StraightLinePrefetcher straight;
  PolynomialPrefetcher poly2(2);
  EwmaPrefetcher ewma(0.3);
  StaticPrefetchConfig scfg;
  scfg.dataset_bounds = dataset.bounds;
  HilbertPrefetcher hilbert(scfg);
  ScoutPrefetcher scout2{ScoutConfig{}};
  std::printf("\n%-16s %12s %10s\n", "prefetcher", "hit-rate[%]", "speedup");
  for (Prefetcher* p :
       {static_cast<Prefetcher*>(&straight), static_cast<Prefetcher*>(&poly2),
        static_cast<Prefetcher*>(&ewma), static_cast<Prefetcher*>(&hilbert),
        static_cast<Prefetcher*>(&scout2)}) {
    const ExperimentResult r =
        RunGuidedExperiment(dataset, index, p, qcfg, ecfg, 15, 99);
    std::printf("%-16s %12.1f %10.2f  seq[min=%.0f mean=%.0f max=%.0f] "
                "resets=%zu/%zu\n",
                r.prefetcher_name.c_str(), r.hit_rate_pct, r.speedup,
                r.seq_hit_rate.min(), r.seq_hit_rate.mean(),
                r.seq_hit_rate.max(), r.total_resets, r.total_queries);
  }
  return 0;
}
