/// Model-building scenario (paper §3.1): to place synapses,
/// neuroscientists follow a branch and detect where its proximity to
/// another branch falls below a threshold. The distance computation is
/// expensive (window ratio 2), giving SCOUT a long prefetch window. This
/// example actually runs the proximity analysis on each query result —
/// exercising Cylinder::SurfaceDistanceTo — while SCOUT keeps the cache
/// warm underneath it.

#include <cstdio>
#include <cstring>

#include "engine/query_executor.h"
#include "engine/experiment.h"
#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "workload/generators.h"
#include "workload/query_gen.h"

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--help") == 0) {
    std::printf(
        "Usage: synapse_detection\n"
        "Follows a neuron branch running the synapse proximity analysis on\n"
        "each query result while SCOUT keeps the cache warm underneath it.\n");
    return 0;
  }
  using namespace scout;

  const Dataset dataset =
      GenerateNeuronTissue(NeuronConfigForObjectCount(200000, /*seed=*/21));
  auto index = std::move(*RTreeIndex::Build(dataset.objects));

  QuerySequenceConfig steps;  // Figure 10, model-building row.
  steps.num_queries = 35;
  steps.query_volume = 20000.0;

  ExecutorConfig config;
  config.prefetch_window_ratio = 2.0;
  config.cache_bytes = ScaledCacheBytes(index->store());

  Rng rng(7);
  const GuidedSequence walk = GenerateGuidedSequence(dataset, steps, &rng);
  std::printf("following branch of neuron %u, %zu steps\n", walk.structure,
              walk.queries.size());

  ScoutPrefetcher scout{ScoutConfig{}};
  QueryExecutor executor(index.get(), &scout, config);
  const SequenceRunStats run = executor.RunSequence(walk.queries);

  // The analysis itself: find close approaches between the followed
  // branch and other neurons inside each query region.
  const double kThreshold = 1.0;  // um between cylinder surfaces.
  size_t candidate_synapses = 0;
  for (const Region& region : walk.queries) {
    std::vector<PageId> pages;
    index->QueryPages(region, &pages);
    std::vector<const SpatialObject*> own;
    std::vector<const SpatialObject*> others;
    for (PageId p : pages) {
      for (const SpatialObject& obj : index->store().page(p).objects) {
        if (!region.Intersects(obj.Bounds())) continue;
        (obj.structure_id == walk.structure ? own : others).push_back(&obj);
      }
    }
    for (const SpatialObject* a : own) {
      for (const SpatialObject* b : others) {
        if (a->geom.SurfaceDistanceTo(b->geom) < kThreshold) {
          ++candidate_synapses;
        }
      }
    }
  }

  std::printf("candidate synapse sites within %.1f um: %zu\n", kThreshold,
              candidate_synapses);
  std::printf("cache hit rate while analyzing: %.1f%% (stall %.0f ms vs "
              "%.0f ms cold)\n",
              run.CacheHitRatePct(), run.TotalResidualUs() * 1e-3,
              (run.TotalResidualUs() +
               static_cast<SimMicros>(run.TotalPagesHit()) *
                   config.disk.random_read_us) *
                  1e-3);
  return 0;
}
