/// Walkthrough visualization scenario (paper §3.1 / §7.2.3): a
/// neuroscientist flies along a neuron branch issuing view-frustum
/// queries; SCOUT prefetches the data for the next frame while the
/// renderer is busy. Prints a per-frame trace of cache hits, candidate
/// pruning and prefetch activity, then the end-to-end comparison with
/// trajectory extrapolation.

#include <cstdio>
#include <cstring>

#include "engine/experiment.h"
#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "prefetch/trajectory_prefetcher.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--help") == 0) {
    std::printf(
        "Usage: neuron_walkthrough\n"
        "Flies along a neuron branch issuing view-frustum queries while\n"
        "SCOUT prefetches the next frame; prints a per-frame trace and the\n"
        "comparison with trajectory extrapolation.\n");
    return 0;
  }
  using namespace scout;

  const Dataset dataset =
      GenerateNeuronTissue(NeuronConfigForObjectCount(345000, /*seed=*/11));
  auto index = std::move(*RTreeIndex::Build(dataset.objects));
  std::printf("tissue model: %zu cylinders, %zu neurons\n",
              dataset.objects.size(), dataset.structures.size());

  // High-quality rendering (ray tracing): window ratio 1.6, frustum
  // queries of 30,000 um^3, 65 frames (Figure 10, vis-high-quality).
  QuerySequenceConfig frames;
  frames.num_queries = 65;
  frames.query_volume = 30000.0;
  frames.aspect = QueryAspect::kFrustum;

  ExecutorConfig executor_config;
  executor_config.prefetch_window_ratio = 1.6;
  executor_config.cache_bytes = ScaledCacheBytes(index->store());

  // One sequence traced frame by frame.
  Rng rng(2026);
  const GuidedSequence flight = GenerateGuidedSequence(dataset, frames, &rng);
  std::printf("flying along neuron %u for %zu frames\n\n", flight.structure,
              flight.queries.size());

  ScoutPrefetcher scout{ScoutConfig{}};
  QueryExecutor executor(index.get(), &scout, executor_config);
  const SequenceRunStats run = executor.RunSequence(flight.queries);

  std::printf("%-6s %8s %8s %11s %10s %9s\n", "frame", "pages", "hits",
              "candidates", "prefetched", "stall[ms]");
  for (size_t f = 0; f < run.queries.size(); ++f) {
    const QueryRunStats& q = run.queries[f];
    std::printf("%-6zu %8zu %8zu %11zu %10zu %9.1f\n", f, q.pages_total,
                q.pages_hit, q.num_candidates, q.prefetch_pages,
                q.residual_io_us * 1e-3);
    if (f == 9 && run.queries.size() > 20) {
      std::printf("  ... (%zu more frames)\n", run.queries.size() - 15);
      f = run.queries.size() - 6;
    }
  }
  std::printf("\nflight hit rate: %.1f%%  (total stall %.0f ms)\n",
              run.CacheHitRatePct(), run.TotalResidualUs() * 1e-3);

  // Aggregate comparison against the best trajectory baseline.
  EwmaPrefetcher ewma(0.3);
  ScoutPrefetcher fresh_scout{ScoutConfig{}};
  const ExperimentResult r_scout = RunGuidedExperiment(
      dataset, *index, &fresh_scout, frames, executor_config, 10, 99);
  const ExperimentResult r_ewma = RunGuidedExperiment(
      dataset, *index, &ewma, frames, executor_config, 10, 99);
  std::printf("\n10-flight comparison: scout %.1f%% / %.2fx  vs  ewma "
              "%.1f%% / %.2fx\n",
              r_scout.hit_rate_pct, r_scout.speedup, r_ewma.hit_rate_pct,
              r_ewma.speedup);
  return 0;
}
