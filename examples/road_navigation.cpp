/// Mobile navigation scenario (paper §8.4): prefetching map data along a
/// road-network route onto a memory-constrained device. Accuracy matters
/// because the prefetch cache is tiny; SCOUT identifies the road being
/// driven from the query contents and prefetches along it.

#include <cstdio>
#include <cstring>

#include "engine/experiment.h"
#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "prefetch/static_prefetchers.h"
#include "prefetch/trajectory_prefetcher.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--help") == 0) {
    std::printf(
        "Usage: road_navigation\n"
        "Prefetches map data along a road-network route onto a\n"
        "memory-constrained device; SCOUT identifies the road being driven\n"
        "from the query contents and prefetches along it.\n");
    return 0;
  }
  using namespace scout;

  const Dataset roads = GenerateRoadNetwork(RoadGenConfig{});
  auto index = std::move(*RTreeIndex::Build(roads.objects));
  std::printf("road network: %zu segments, %zu roads, %.1f MB on disk\n",
              roads.objects.size(), roads.structures.size(),
              static_cast<double>(index->store().TotalBytes()) / (1 << 20));

  QuerySequenceConfig drive;
  drive.num_queries = 25;
  // Map tiles around the vehicle: a small fraction of the dataset.
  drive.query_volume = roads.bounds.Volume() * 2e-4;

  // A phone-sized prefetch cache: 2% of the dataset.
  ExecutorConfig config;
  config.cache_bytes = ScaledCacheBytes(index->store(), 0.02);
  config.prefetch_window_ratio = 1.0;  // Driver decision time ~ tile load.

  ScoutPrefetcher scout{ScoutConfig{}};
  StraightLinePrefetcher straight;
  EwmaPrefetcher ewma(0.3);
  StaticPrefetchConfig static_cfg;
  static_cfg.dataset_bounds = roads.bounds;
  HilbertPrefetcher hilbert(static_cfg);

  std::printf("\n%-16s %12s %10s\n", "policy", "hit-rate[%]", "speedup");
  for (Prefetcher* p :
       {static_cast<Prefetcher*>(&scout), static_cast<Prefetcher*>(&straight),
        static_cast<Prefetcher*>(&ewma),
        static_cast<Prefetcher*>(&hilbert)}) {
    const ExperimentResult r =
        RunGuidedExperiment(roads, *index, p, drive, config, 15, 404);
    std::printf("%-16s %12.1f %10.2f\n", r.prefetcher_name.c_str(),
                r.hit_rate_pct, r.speedup);
  }
  std::printf("\nroads bend and fork; following the actual road geometry\n"
              "beats extrapolating the vehicle's past positions.\n");
  return 0;
}
