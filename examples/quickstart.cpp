/// Quickstart: build a small synthetic neuron-tissue dataset, index it
/// with an STR R-tree, and compare SCOUT against classic prefetchers on a
/// guided spatial query sequence.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "engine/experiment.h"
#include "index/rtree.h"
#include "prefetch/scout_prefetcher.h"
#include "prefetch/static_prefetchers.h"
#include "prefetch/trajectory_prefetcher.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--help") == 0) {
    std::printf(
        "Usage: quickstart\n"
        "Builds a small synthetic neuron-tissue dataset, indexes it with an\n"
        "STR R-tree, and compares SCOUT against classic prefetchers on a\n"
        "guided spatial query sequence.\n");
    return 0;
  }
  using namespace scout;

  // 1. Generate a small brain-tissue model at the paper's tissue density
  //    (~345k cylinders in 600^3 um).
  NeuronGenConfig gen = NeuronConfigForObjectCount(345000, /*seed=*/7);
  const Dataset dataset = GenerateNeuronTissue(gen);
  std::printf("dataset: %zu objects, %zu structures, bounds %s\n",
              dataset.objects.size(), dataset.structures.size(),
              dataset.bounds.ToString().c_str());

  // 2. Build the spatial index (this also decides the disk page layout).
  auto index_or = RTreeIndex::Build(dataset.objects);
  if (!index_or.ok()) {
    std::printf("index build failed: %s\n",
                index_or.status().ToString().c_str());
    return 1;
  }
  const RTreeIndex& index = **index_or;
  std::printf("index: %zu pages (%.1f MB)\n", index.store().NumPages(),
              static_cast<double>(index.store().TotalBytes()) / (1 << 20));

  // 3. Describe the workload: 25 adjacent 80,000 um^3 cube queries
  //    following one neuron branch, prefetch window ratio 1.0.
  QuerySequenceConfig queries;
  queries.num_queries = 25;
  queries.query_volume = 80000.0;
  queries.aspect = QueryAspect::kCube;

  ExecutorConfig executor;
  executor.prefetch_window_ratio = 1.0;
  executor.cache_bytes = ScaledCacheBytes(index.store());

  // 4. Compare prefetchers on identical sequences.
  StraightLinePrefetcher straight;
  EwmaPrefetcher ewma(0.3);
  StaticPrefetchConfig static_cfg;
  static_cfg.dataset_bounds = dataset.bounds;
  HilbertPrefetcher hilbert(static_cfg);
  ScoutPrefetcher scout{ScoutConfig{}};

  std::printf("\n%-16s %12s %10s\n", "prefetcher", "hit-rate[%]", "speedup");
  for (Prefetcher* p :
       {static_cast<Prefetcher*>(&straight), static_cast<Prefetcher*>(&ewma),
        static_cast<Prefetcher*>(&hilbert),
        static_cast<Prefetcher*>(&scout)}) {
    const ExperimentResult r = RunGuidedExperiment(
        dataset, index, p, queries, executor, /*num_sequences=*/10,
        /*seed=*/123);
    std::printf("%-16s %12.1f %10.2f\n", r.prefetcher_name.c_str(),
                r.hit_rate_pct, r.speedup);
  }
  return 0;
}
