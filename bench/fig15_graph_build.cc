/// Reproduces Figure 15 (and the §8.2 memory numbers): graph-building
/// time as a function of the number of objects in the query results, for
/// SCOUT (full construction) and SCOUT-OPT (sparse construction), plus
/// the memory overhead of the graph relative to the result size. Paper
/// claims to reproduce: build time is linear in the result size;
/// SCOUT-OPT scales better than SCOUT; memory overhead ~24% (SCOUT) vs
/// ~6% (SCOUT-OPT).

#include <algorithm>
#include <map>

#include "bench/bench_util.h"
#include "engine/query_executor.h"

using namespace scout;
using namespace scout::bench;

namespace {

struct Series {
  // Bucket: total result objects per sequence -> wall build time.
  std::map<int, RunningStat> build_time_by_objects;
  RunningStat memory_ratio;
};

Series Measure(const Dataset& dataset, const SpatialIndex& index,
               Prefetcher* prefetcher) {
  Series series;
  QuerySequenceConfig qcfg;
  qcfg.num_queries = 25;
  qcfg.query_volume = 80000.0;
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(index.store());

  QueryExecutor executor(&index, prefetcher, ecfg);
  Rng rng(kSeed);
  for (uint32_t s = 0; s < 35; ++s) {
    Rng seq_rng = rng.Fork();
    const GuidedSequence seq = GenerateGuidedSequence(dataset, qcfg, &seq_rng);
    if (seq.queries.empty()) continue;
    const SequenceRunStats run = executor.RunSequence(seq.queries);
    int64_t total_objects = 0;
    int64_t total_wall_us = 0;
    for (const QueryRunStats& q : run.queries) {
      total_objects += static_cast<int64_t>(q.result_objects);
      total_wall_us += q.wall_graph_build_us;
      if (q.result_objects > 0 && q.graph_memory_bytes > 0) {
        series.memory_ratio.Add(
            static_cast<double>(q.graph_memory_bytes) /
            static_cast<double>(q.pages_total * kPageBytes));
      }
    }
    const int bucket = static_cast<int>(total_objects / 1000);
    series.build_time_by_objects[bucket].Add(total_wall_us * 1e-3);
  }
  return series;
}

}  // namespace

int main() {
  NeuronStack stack;
  auto flat = std::move(*FlatIndex::Build(stack.dataset.objects));

  ScoutPrefetcher scout{ScoutConfig{}};
  ScoutOptPrefetcher opt{ScoutConfig{}, flat.get()};

  const Series s_scout = Measure(stack.dataset, *stack.rtree, &scout);
  const Series s_opt = Measure(stack.dataset, *flat, &opt);

  PrintHeader(
      "Figure 15: graph building wall time [ms] vs result objects per "
      "sequence [x1000]");
  std::printf("%-12s %12s %12s\n", "objects[k]", "scout[ms]", "opt[ms]");
  std::map<int, std::pair<double, double>> merged;
  for (const auto& [bucket, stat] : s_scout.build_time_by_objects) {
    merged[bucket].first = stat.mean();
  }
  for (const auto& [bucket, stat] : s_opt.build_time_by_objects) {
    merged[bucket].second = stat.mean();
  }
  for (const auto& [bucket, times] : merged) {
    std::printf("%-12d %12.3f %12.3f\n", bucket, times.first, times.second);
  }

  PrintHeader("Memory overhead of the graph (fraction of result bytes)");
  std::printf("scout     : %5.1f%%\n", 100.0 * s_scout.memory_ratio.mean());
  std::printf("scout-opt : %5.1f%%\n", 100.0 * s_opt.memory_ratio.mean());
  std::printf(
      "\npaper shape: build time linear in result size; SCOUT-OPT below\n"
      "SCOUT; memory ~24%% (SCOUT) vs ~6%% (SCOUT-OPT) of the result.\n");
  return 0;
}
