/// Reproduces Figure 16: prediction (graph traversal) time divided by the
/// number of result elements, per query position 1..10 of the sequence.
/// Paper claims to reproduce: the per-element prediction cost *decreases*
/// along the sequence because iterative candidate pruning shrinks the
/// subgraph that must be traversed; SCOUT-OPT is cheaper than SCOUT.

#include "bench/bench_util.h"
#include "engine/query_executor.h"

using namespace scout;
using namespace scout::bench;

namespace {

std::vector<double> MeasurePerQueryCost(const Dataset& dataset,
                                        const SpatialIndex& index,
                                        Prefetcher* prefetcher,
                                        uint32_t num_queries) {
  QuerySequenceConfig qcfg;
  qcfg.num_queries = num_queries;
  qcfg.query_volume = 80000.0;
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(index.store());

  std::vector<RunningStat> per_query(num_queries);
  QueryExecutor executor(&index, prefetcher, ecfg);
  Rng rng(kSeed);
  for (uint32_t s = 0; s < 50; ++s) {
    Rng seq_rng = rng.Fork();
    const GuidedSequence seq = GenerateGuidedSequence(dataset, qcfg, &seq_rng);
    const SequenceRunStats run = executor.RunSequence(seq.queries);
    for (size_t q = 0; q < run.queries.size() && q < num_queries; ++q) {
      if (run.queries[q].result_objects == 0) continue;
      per_query[q].Add(
          static_cast<double>(run.queries[q].prediction_us) /
          static_cast<double>(run.queries[q].result_objects));
    }
  }
  std::vector<double> means;
  for (const RunningStat& s : per_query) means.push_back(s.mean());
  return means;
}

}  // namespace

int main() {
  NeuronStack stack;
  auto flat = std::move(*FlatIndex::Build(stack.dataset.objects));
  ScoutPrefetcher scout{ScoutConfig{}};
  ScoutOptPrefetcher opt{ScoutConfig{}, flat.get()};

  const std::vector<double> scout_cost =
      MeasurePerQueryCost(stack.dataset, *stack.rtree, &scout, 10);
  const std::vector<double> opt_cost =
      MeasurePerQueryCost(stack.dataset, *flat, &opt, 10);

  PrintHeader(
      "Figure 16: prediction time per result element [us/element] by "
      "query position");
  std::printf("%-8s %12s %12s\n", "query#", "scout", "scout-opt");
  for (size_t q = 0; q < scout_cost.size(); ++q) {
    std::printf("%-8zu %12.4f %12.4f\n", q + 1, scout_cost[q],
                q < opt_cost.size() ? opt_cost[q] : 0.0);
  }
  std::printf(
      "\npaper shape: per-element prediction cost decreases along the\n"
      "sequence (candidate pruning); SCOUT-OPT generally cheaper.\n");
  return 0;
}
