/// Reproduces Figure 14: breakdown of the per-sequence query response
/// time into graph building, prediction (traversal) and residual I/O as
/// dataset density grows. The paper's claims to reproduce: graph building
/// stays around ~15% of the total and prediction below ~6%, with no
/// relative growth as results get bigger.

#include "bench/bench_util.h"

int main() {
  using namespace scout;
  using namespace scout::bench;

  PrintHeader(
      "Figure 14: response time breakdown [ms per sequence] vs density");
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "objects", "graph[ms]",
              "predict[ms]", "residual[ms]", "graph[%]", "predict[%]");

  for (uint64_t objects : {38000, 114000, 189000, 265000, 341000}) {
    NeuronStack stack(objects, /*seed=*/1);
    ScoutPrefetcher scout{ScoutConfig{}};
    QuerySequenceConfig qcfg;
    qcfg.num_queries = 25;
    qcfg.query_volume = 80000.0;
    ExecutorConfig ecfg;
    ecfg.cache_bytes = ScaledCacheBytes(stack.rtree->store());

    const ExperimentResult r =
        RunGuidedExperiment(stack.dataset, *stack.rtree, &scout, qcfg, ecfg,
                            kSequences, kSeed);
    const double per_seq = 1.0 / static_cast<double>(r.num_sequences);
    const double graph_ms = r.total_graph_build_us * 1e-3 * per_seq;
    const double predict_ms = r.total_prediction_us * 1e-3 * per_seq;
    const double residual_ms = r.total_residual_us * 1e-3 * per_seq;
    const double total = graph_ms + predict_ms + residual_ms;
    std::printf("%-10zu %12.2f %12.2f %12.2f %10.1f %10.1f\n",
                static_cast<size_t>(objects), graph_ms, predict_ms,
                residual_ms, total > 0 ? 100.0 * graph_ms / total : 0.0,
                total > 0 ? 100.0 * predict_ms / total : 0.0);
  }
  std::printf(
      "\npaper shape: residual I/O dominates; graph building ~15%% and\n"
      "prediction <=6%% of response time, flat across density.\n");
  return 0;
}
