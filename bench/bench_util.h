#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/simd.h"
#include "engine/experiment.h"
#include "index/flat_index.h"
#include "index/rtree.h"
#include "prefetch/no_prefetch.h"
#include "prefetch/scout_opt_prefetcher.h"
#include "prefetch/scout_prefetcher.h"
#include "prefetch/static_prefetchers.h"
#include "prefetch/trajectory_prefetcher.h"
#include "workload/generators.h"

namespace scout::bench {

/// Default number of sequences per data point. The paper uses 30-50; the
/// scaled-down datasets keep per-sequence noise comparable, so 20 gives
/// stable means in seconds of runtime.
inline constexpr uint32_t kSequences = 20;

/// Default experiment seed (shared so every figure sees the same
/// workloads for a given dataset).
inline constexpr uint64_t kSeed = 20120827;  // VLDB 2012 opening day.

/// Builds the default neuron-tissue dataset (paper density, ~345k
/// objects) and an STR R-tree over it.
struct NeuronStack {
  Dataset dataset;
  std::unique_ptr<RTreeIndex> rtree;

  explicit NeuronStack(uint64_t target_objects = 345000,
                       uint64_t seed = 1) {
    dataset =
        GenerateNeuronTissue(NeuronConfigForObjectCount(target_objects, seed));
    rtree = std::move(*RTreeIndex::Build(dataset.objects));
  }
};

/// Factory for the standard prefetcher lineup. `dataset_bounds` feeds the
/// static prefetchers.
class PrefetcherSet {
 public:
  explicit PrefetcherSet(const Aabb& dataset_bounds)
      : ewma_(0.3),
        poly2_(2),
        poly3_(3),
        hilbert_(StaticConfig(dataset_bounds)),
        layered_(StaticConfig(dataset_bounds)),
        scout_{ScoutConfig{}} {}

  EwmaPrefetcher& ewma() { return ewma_; }
  StraightLinePrefetcher& straight() { return straight_; }
  PolynomialPrefetcher& poly2() { return poly2_; }
  PolynomialPrefetcher& poly3() { return poly3_; }
  HilbertPrefetcher& hilbert() { return hilbert_; }
  LayeredPrefetcher& layered() { return layered_; }
  ScoutPrefetcher& scout() { return scout_; }

  /// The paper's Figure 11/12/17 comparison set (without SCOUT-OPT).
  std::vector<Prefetcher*> PaperLineup() {
    return {&ewma_, &straight_, &hilbert_, &scout_};
  }

 private:
  static StaticPrefetchConfig StaticConfig(const Aabb& bounds) {
    StaticPrefetchConfig config;
    config.dataset_bounds = bounds;
    return config;
  }

  EwmaPrefetcher ewma_;
  StraightLinePrefetcher straight_;
  PolynomialPrefetcher poly2_;
  PolynomialPrefetcher poly3_;
  HilbertPrefetcher hilbert_;
  LayeredPrefetcher layered_;
  ScoutPrefetcher scout_;
};

/// Looks up a Figure-10 microbenchmark spec by name. A silent fallback
/// would record the wrong workload under a stale label and corrupt the
/// perf trajectory — fail loudly instead.
inline const MicrobenchSpec& SpecOf(std::string_view name) {
  for (const MicrobenchSpec& s : kMicrobenchmarks) {
    if (s.name == name) return s;
  }
  std::fprintf(stderr, "bench: unknown microbench spec '%.*s'\n",
               static_cast<int>(name.size()), name.data());
  std::abort();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintRow(const std::string& label,
                     const std::vector<double>& values, int precision = 1) {
  std::printf("%-22s", label.c_str());
  for (double v : values) std::printf(" %10.*f", precision, v);
  std::printf("\n");
}

inline void PrintColumns(const std::string& corner,
                         const std::vector<std::string>& columns) {
  std::printf("%-22s", corner.c_str());
  for (const std::string& c : columns) std::printf(" %10s", c.c_str());
  std::printf("\n");
}

// --------------------------------------------------------------------------
// Baseline recording (bench/baseline_recorder, `make bench-record`).
//
// A baseline *snapshot* is one fixed-seed run of every figure/ablation
// scenario plus the hot-path micro measurements, stamped with a label.
// Snapshots accumulate in BENCH_baseline.json so successive PRs have a
// perf trajectory to diff against.

/// One figure/ablation bench data point of a baseline snapshot.
struct BaselineFigRow {
  std::string bench;       ///< Bench target, e.g. "fig11_microbenchmarks".
  std::string scenario;    ///< Workload within the bench.
  std::string prefetcher;
  double wall_ms = 0.0;            ///< Wall-clock time of the scenario.
  int64_t sim_response_us = 0;     ///< Simulated total response time.
  int64_t sim_residual_io_us = 0;  ///< Simulated cache-miss I/O time.
  double hit_rate_pct = 0.0;
  double speedup = 1.0;
  /// Multi-client serving extras (fig_multiclient rows). Serialized only
  /// when `multiclient` is set, so single-client rows keep the exact
  /// byte layout earlier snapshots were recorded with.
  bool multiclient = false;
  double evictions_per_session = 0.0;   ///< Shared-cache contention.
  int64_t sim_disk_wait_us = 0;         ///< Shared-disk queueing delay.
  double cross_hit_share_pct = 0.0;     ///< Constructive sharing.
  /// Degraded-mode serving extras (fig_faults rows). Serialized only when
  /// `faulted` is set, for the same byte-stability reason as above.
  bool faulted = false;
  uint64_t faults_seen = 0;
  uint64_t retries = 0;
  uint64_t shed_prefetches = 0;
  int64_t p99_response_us = 0;
  /// Real-I/O wall-clock extras (fig_wallclock rows). Serialized only
  /// when `wallclock` is set, for the same byte-stability reason. These
  /// rows measure REAL elapsed time over a FilePageStore, so wall_ms is
  /// the primary metric and the sim_* fields stay zero; result_hash is
  /// the cross-mode bit-identity fingerprint (sync and async rows of one
  /// scenario must agree).
  bool wallclock = false;
  int64_t device_latency_us = 0;
  int64_t think_time_us = 0;
  uint64_t demand_reads = 0;
  uint64_t prefetch_reads = 0;
  uint64_t late_hit_waits = 0;
  uint64_t result_hash = 0;
};

/// One hot-path micro measurement of a baseline snapshot.
struct BaselineMicroRow {
  std::string name;
  uint64_t ops = 0;
  double ns_per_op = 0.0;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Serializes one snapshot as a JSON object (no trailing newline). The
/// snapshot is stamped with the compiled SIMD lane backend
/// (simd::kLaneName, "avx2" or "scalar"): micro rows recorded with
/// different lane widths measure different code and must not be
/// silently compared, so the diff surface carries the label. Snapshots
/// recorded before the field existed have no "simd" key (treat as
/// unknown backend).
inline std::string BaselineSnapshotJson(
    const std::string& label, bool tiny,
    const std::vector<BaselineFigRow>& figs,
    const std::vector<BaselineMicroRow>& micro) {
  std::ostringstream os;
  os << "    {\n      \"label\": \"" << JsonEscape(label) << "\",\n"
     << "      \"tiny\": " << (tiny ? "true" : "false") << ",\n"
     << "      \"simd\": \"" << simd::kLaneName << "\",\n"
     << "      \"figs\": [\n";
  for (size_t i = 0; i < figs.size(); ++i) {
    const BaselineFigRow& r = figs[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "        {\"bench\": \"%s\", \"scenario\": \"%s\", "
                  "\"prefetcher\": \"%s\", \"wall_ms\": %.3f, "
                  "\"sim_response_us\": %lld, \"sim_residual_io_us\": %lld, "
                  "\"hit_rate_pct\": %.2f, \"speedup\": %.3f",
                  JsonEscape(r.bench).c_str(), JsonEscape(r.scenario).c_str(),
                  JsonEscape(r.prefetcher).c_str(), r.wall_ms,
                  static_cast<long long>(r.sim_response_us),
                  static_cast<long long>(r.sim_residual_io_us),
                  r.hit_rate_pct, r.speedup);
    os << buf;
    if (r.multiclient) {
      std::snprintf(buf, sizeof(buf),
                    ", \"evictions_per_session\": %.2f, "
                    "\"sim_disk_wait_us\": %lld, "
                    "\"cross_hit_share_pct\": %.2f",
                    r.evictions_per_session,
                    static_cast<long long>(r.sim_disk_wait_us),
                    r.cross_hit_share_pct);
      os << buf;
    }
    if (r.faulted) {
      std::snprintf(buf, sizeof(buf),
                    ", \"faults_seen\": %llu, \"retries\": %llu, "
                    "\"shed_prefetches\": %llu, \"p99_response_us\": %lld",
                    static_cast<unsigned long long>(r.faults_seen),
                    static_cast<unsigned long long>(r.retries),
                    static_cast<unsigned long long>(r.shed_prefetches),
                    static_cast<long long>(r.p99_response_us));
      os << buf;
    }
    if (r.wallclock) {
      std::snprintf(buf, sizeof(buf),
                    ", \"device_latency_us\": %lld, \"think_time_us\": %lld, "
                    "\"demand_reads\": %llu, \"prefetch_reads\": %llu, "
                    "\"late_hit_waits\": %llu, \"result_hash\": %llu",
                    static_cast<long long>(r.device_latency_us),
                    static_cast<long long>(r.think_time_us),
                    static_cast<unsigned long long>(r.demand_reads),
                    static_cast<unsigned long long>(r.prefetch_reads),
                    static_cast<unsigned long long>(r.late_hit_waits),
                    static_cast<unsigned long long>(r.result_hash));
      os << buf;
    }
    os << "}" << (i + 1 < figs.size() ? "," : "") << "\n";
  }
  os << "      ],\n      \"micro\": [\n";
  for (size_t i = 0; i < micro.size(); ++i) {
    const BaselineMicroRow& r = micro[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "        {\"name\": \"%s\", \"ops\": %llu, "
                  "\"ns_per_op\": %.2f}",
                  JsonEscape(r.name).c_str(),
                  static_cast<unsigned long long>(r.ops), r.ns_per_op);
    os << buf << (i + 1 < micro.size() ? "," : "") << "\n";
  }
  os << "      ]\n    }";
  return os.str();
}

/// True if the serialized baseline file contents already contain a
/// snapshot labelled `label` (exact match of the serialized label field).
inline bool BaselineContainsLabel(const std::string& file_contents,
                                  const std::string& label) {
  return file_contents.find("\"label\": \"" + JsonEscape(label) + "\"") !=
         std::string::npos;
}

inline std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::string();
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Writes (or, with `append`, extends) a BENCH_baseline.json file:
///   {"schema": 1, "snapshots": [ <snapshot>, ... ]}
/// Append splices the new snapshot before the closing bracket of the
/// "snapshots" array; if the file is missing or not in the expected
/// format, it is rewritten fresh. Returns false on I/O failure.
inline bool WriteBaselineSnapshot(const std::string& path, bool append,
                                  const std::string& snapshot_json) {
  std::string existing;
  if (append) existing = ReadFileOrEmpty(path);
  const size_t close = existing.rfind(']');
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  if (!existing.empty() && close != std::string::npos &&
      existing.find("\"snapshots\"") != std::string::npos) {
    // A separating comma is only valid if a snapshot already precedes the
    // closing bracket (the array could be empty in a hand-edited file).
    const size_t last_content = existing.find_last_not_of(" \t\n\r", close - 1);
    const bool has_snapshot =
        last_content != std::string::npos && existing[last_content] == '}';
    out << existing.substr(0, close) << (has_snapshot ? ",\n" : "")
        << snapshot_json << "\n  " << existing.substr(close);
  } else {
    out << "{\n  \"schema\": 1,\n  \"snapshots\": [\n"
        << snapshot_json << "\n  ]\n}\n";
  }
  return static_cast<bool>(out);
}

/// The neutral anchor of the seed3 (cache-QoS re-seed) label family: a
/// legacy-serving snapshot proving the QoS code landed without moving
/// any pre-flip metric. The flip snapshots are meaningless without it.
inline constexpr const char kSeed3PreAnchor[] = "pre-qos";

/// True for seed3 flip labels that may only be appended AFTER the
/// `pre-qos` anchor exists in the trajectory (ordering guard).
inline bool RequiresSeed3Anchor(const std::string& label) {
  return label == "qos-cache-only" || label == "post-qos";
}

/// The recorder's write entry point: appends (or rewrites, when `append`
/// is false) a snapshot labelled `label`. Appending REFUSES to add a
/// snapshot whose label already exists in the target file — a silent
/// duplicate label would make the perf trajectory ambiguous (which
/// "post-optimization" row is the real one?) and corrupt every diff made
/// against it — and REFUSES a seed3 flip label (`qos-cache-only`,
/// `post-qos`) while the `pre-qos` anchor is absent, so the family can
/// only land in trajectory order. `force` overrides both refusals for
/// deliberate re-records. On refusal or I/O failure returns false and
/// describes why in *error.
inline bool RecordBaselineSnapshot(const std::string& path, bool append,
                                   bool force, const std::string& label,
                                   const std::string& snapshot_json,
                                   std::string* error) {
  const std::string existing = append ? ReadFileOrEmpty(path) : std::string();
  if (append && !force && BaselineContainsLabel(existing, label)) {
    *error = "refusing to append: label '" + label + "' already exists in " +
             path + " (duplicate labels corrupt the baseline trajectory; " +
             "pick a new label or pass --force)";
    return false;
  }
  if (append && !force && RequiresSeed3Anchor(label) &&
      !BaselineContainsLabel(existing, kSeed3PreAnchor)) {
    *error = "refusing to append: seed3 label '" + label + "' requires the '" +
             kSeed3PreAnchor + "' anchor snapshot in " + path +
             " first (record the neutral legacy-serving anchor before the " +
             "flip, or pass --force)";
    return false;
  }
  if (!WriteBaselineSnapshot(path, append, snapshot_json)) {
    *error = "failed to write " + path;
    return false;
  }
  return true;
}

}  // namespace scout::bench

