#ifndef SCOUT_BENCH_BENCH_UTIL_H_
#define SCOUT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/experiment.h"
#include "index/flat_index.h"
#include "index/rtree.h"
#include "prefetch/no_prefetch.h"
#include "prefetch/scout_opt_prefetcher.h"
#include "prefetch/scout_prefetcher.h"
#include "prefetch/static_prefetchers.h"
#include "prefetch/trajectory_prefetcher.h"
#include "workload/generators.h"

namespace scout::bench {

/// Default number of sequences per data point. The paper uses 30-50; the
/// scaled-down datasets keep per-sequence noise comparable, so 20 gives
/// stable means in seconds of runtime.
inline constexpr uint32_t kSequences = 20;

/// Default experiment seed (shared so every figure sees the same
/// workloads for a given dataset).
inline constexpr uint64_t kSeed = 20120827;  // VLDB 2012 opening day.

/// Builds the default neuron-tissue dataset (paper density, ~345k
/// objects) and an STR R-tree over it.
struct NeuronStack {
  Dataset dataset;
  std::unique_ptr<RTreeIndex> rtree;

  explicit NeuronStack(uint64_t target_objects = 345000,
                       uint64_t seed = 1) {
    dataset =
        GenerateNeuronTissue(NeuronConfigForObjectCount(target_objects, seed));
    rtree = std::move(*RTreeIndex::Build(dataset.objects));
  }
};

/// Factory for the standard prefetcher lineup. `dataset_bounds` feeds the
/// static prefetchers.
class PrefetcherSet {
 public:
  explicit PrefetcherSet(const Aabb& dataset_bounds)
      : ewma_(0.3),
        poly2_(2),
        poly3_(3),
        hilbert_(StaticConfig(dataset_bounds)),
        layered_(StaticConfig(dataset_bounds)),
        scout_{ScoutConfig{}} {}

  EwmaPrefetcher& ewma() { return ewma_; }
  StraightLinePrefetcher& straight() { return straight_; }
  PolynomialPrefetcher& poly2() { return poly2_; }
  PolynomialPrefetcher& poly3() { return poly3_; }
  HilbertPrefetcher& hilbert() { return hilbert_; }
  LayeredPrefetcher& layered() { return layered_; }
  ScoutPrefetcher& scout() { return scout_; }

  /// The paper's Figure 11/12/17 comparison set (without SCOUT-OPT).
  std::vector<Prefetcher*> PaperLineup() {
    return {&ewma_, &straight_, &hilbert_, &scout_};
  }

 private:
  static StaticPrefetchConfig StaticConfig(const Aabb& bounds) {
    StaticPrefetchConfig config;
    config.dataset_bounds = bounds;
    return config;
  }

  EwmaPrefetcher ewma_;
  StraightLinePrefetcher straight_;
  PolynomialPrefetcher poly2_;
  PolynomialPrefetcher poly3_;
  HilbertPrefetcher hilbert_;
  LayeredPrefetcher layered_;
  ScoutPrefetcher scout_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintRow(const std::string& label,
                     const std::vector<double>& values, int precision = 1) {
  std::printf("%-22s", label.c_str());
  for (double v : values) std::printf(" %10.*f", precision, v);
  std::printf("\n");
}

inline void PrintColumns(const std::string& corner,
                         const std::vector<std::string>& columns) {
  std::printf("%-22s", corner.c_str());
  for (const std::string& c : columns) std::printf(" %10s", c.c_str());
  std::printf("\n");
}

}  // namespace scout::bench

#endif  // SCOUT_BENCH_BENCH_UTIL_H_
