/// Real-I/O wall-clock speedup of decoupled async prefetching
/// (tentpole follow-on to the simulated figures): the model-building
/// guided sequence served from an on-disk page file, sync (plan fetched
/// inline between queries) vs async (plan handed to the dedicated fetch
/// worker), cold and warm. Every simulated figure keeps its DiskModel
/// oracle untouched; this bench is where the repo proves the async
/// pipeline buys REAL elapsed time, not just simulated time.
///
/// Self-checks (exit 1 on violation):
///   - bit-identity: all four runs must produce the same result hash —
///     async serving may not change a single decoded byte;
///   - regression gate: cold async must be >= 1.2x faster than cold
///     sync (the acceptance bar; defaults land around 1.3-1.9x).
///
/// The page file is generated into the working directory (the build
/// tree in CI) and is never committed.

#include <cstring>
#include <string>

#include "bench/wallclock_support.h"

using namespace scout;
using namespace scout::bench;

namespace {

constexpr double kMinColdSpeedup = 1.2;

void PrintUsage() {
  std::printf(
      "fig_wallclock: sync vs async real-I/O serving wall clock\n"
      "  --tiny            small dataset (CI smoke)\n"
      "  --pagefile PATH   page-file path (default: fig_wallclock.pages)\n"
      "  --latency-us N    emulated per-read device latency (default 300)\n"
      "  --think-us N      think time between queries (default 300)\n"
      "  --budget N        prefetch budget in pages per window\n"
      "  --help            this message\n");
}

void PrintMode(const char* label, const WallclockModeResult& r) {
  PrintRow(label,
           {r.wall_ms, r.hit_rate_pct, static_cast<double>(r.demand_reads),
            static_cast<double>(r.prefetch_reads),
            static_cast<double>(r.late_hit_waits)},
           1);
}

}  // namespace

int main(int argc, char** argv) {
  WallclockOptions opt;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      tiny = true;
    } else if (arg == "--pagefile" && i + 1 < argc) {
      opt.pagefile = argv[++i];
    } else if (arg == "--latency-us" && i + 1 < argc) {
      opt.device_latency_us = std::atoll(argv[++i]);
    } else if (arg == "--think-us" && i + 1 < argc) {
      opt.think_time_us = std::atoll(argv[++i]);
    } else if (arg == "--budget" && i + 1 < argc) {
      opt.prefetch_budget_pages =
          static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--help") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (tiny) opt.neuron_objects = 24000;

  PrintHeader(
      "fig_wallclock: model-building over a real page file — sync vs "
      "decoupled async prefetch");
  std::printf("device latency %lld us/read, think %lld us, budget %zu pages\n",
              static_cast<long long>(opt.device_latency_us),
              static_cast<long long>(opt.think_time_us),
              opt.prefetch_budget_pages);

  WallclockResults results;
  if (!RunWallclockScenarios(opt, &results)) return 1;

  PrintColumns("scenario / mode",
               {"wall_ms", "hit%", "demand", "prefetch", "latewait"});
  PrintMode("cold sync", results.sync_cold);
  PrintMode("cold async", results.async_cold);
  PrintMode("warm sync", results.sync_warm);
  PrintMode("warm async", results.async_warm);
  std::printf("\ncold speedup %.2fx   warm speedup %.2fx\n",
              results.ColdSpeedup(), results.WarmSpeedup());

  if (!results.HashesAgree()) {
    std::fprintf(stderr,
                 "fig_wallclock: BIT-IDENTITY VIOLATED: sync/async result "
                 "hashes diverge (sync cold %llu, async cold %llu)\n",
                 static_cast<unsigned long long>(
                     results.sync_cold.result_hash),
                 static_cast<unsigned long long>(
                     results.async_cold.result_hash));
    return 1;
  }
  if (results.ColdSpeedup() < kMinColdSpeedup) {
    std::fprintf(stderr,
                 "fig_wallclock: REGRESSION: cold async speedup %.2fx is "
                 "below the %.2fx gate\n",
                 results.ColdSpeedup(), kMinColdSpeedup);
    return 1;
  }
  std::printf(
      "\nwall_ms = real elapsed time of the sequence; demand = reads\n"
      "issued for logical cache misses; prefetch = plan pages fetched\n"
      "(inline in sync, by the fetch worker in async); latewait =\n"
      "logically-hit pages whose bytes were still in flight. The result\n"
      "hash of all four runs is verified identical, and cold async must\n"
      "beat cold sync by >= 1.2x (exit 1 otherwise).\n");
  return 0;
}
