/// Reproduces Figure 3: prediction accuracy of the state-of-the-art
/// position-based prefetchers (EWMA 0.3, straight line, polynomial degree
/// 2 and 3) as a function of the query volume, on the neuron tissue
/// model. The paper's claims to reproduce: no approach exceeds ~44%,
/// polynomial extrapolation degrades with higher degree, and accuracy
/// drops as the query volume grows.

#include "bench/bench_util.h"

int main() {
  using namespace scout;
  using namespace scout::bench;

  NeuronStack stack;
  PrefetcherSet set(stack.dataset.bounds);
  std::vector<Prefetcher*> lineup = {&set.ewma(), &set.straight(),
                                     &set.poly2(), &set.poly3()};

  const std::vector<double> volumes = {10000, 80000, 150000, 220000};

  PrintHeader("Figure 3: cache hit rate [%] vs query size [um^3]");
  std::vector<std::string> cols;
  for (double v : volumes) cols.push_back(std::to_string((int)(v / 1000)) + "k");
  PrintColumns("prefetcher", cols);

  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(stack.rtree->store());
  ecfg.prefetch_window_ratio = 1.0;

  for (Prefetcher* p : lineup) {
    std::vector<double> row;
    for (double volume : volumes) {
      QuerySequenceConfig qcfg;
      qcfg.num_queries = 25;
      qcfg.query_volume = volume;
      const ExperimentResult r = RunGuidedExperiment(
          stack.dataset, *stack.rtree, p, qcfg, ecfg, kSequences, kSeed);
      row.push_back(r.hit_rate_pct);
    }
    PrintRow(std::string(p->name()), row);
  }
  std::printf(
      "\npaper shape: accuracy falls with query volume (<=45%% at the\n"
      "paper's scale); higher-degree polynomials oscillate and do worse.\n");
  return 0;
}
