/// Reproduces Figure 17: prediction accuracy on datasets from other
/// domains — lung airway model (explicit mesh adjacency), pig arterial
/// tree (smooth structures) and a road network (planar) — for (a) small
/// queries (5e-7 of the dataset volume) and (b) large queries (5e-4).
/// Paper claims to reproduce: SCOUT best on lung and roads; for the
/// arterial tree with *small* queries, trajectory extrapolation wins
/// (smooth arteries extrapolate well) while SCOUT still exceeds ~90% of
/// its accuracy; with *large* queries SCOUT is best everywhere.

#include "bench/bench_util.h"

using namespace scout;
using namespace scout::bench;

namespace {

void RunDataset(const std::string& label, const Dataset& dataset,
                double volume_fraction, bool explicit_adjacency) {
  auto index = std::move(*RTreeIndex::Build(dataset.objects));

  QuerySequenceConfig qcfg;
  qcfg.num_queries = 25;
  qcfg.query_volume = dataset.bounds.Volume() * volume_fraction;

  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(index->store());
  ecfg.prefetch_window_ratio = 1.0;

  PrefetcherSet set(dataset.bounds);
  ScoutConfig scout_cfg;
  if (explicit_adjacency && !dataset.adjacency.empty()) {
    scout_cfg.explicit_adjacency = &dataset.adjacency;
  }
  ScoutPrefetcher scout{scout_cfg};

  std::vector<Prefetcher*> lineup = {&set.ewma(), &set.straight(),
                                     &set.hilbert(), &scout};
  std::printf("%-22s", label.c_str());
  for (Prefetcher* p : lineup) {
    const ExperimentResult r = RunGuidedExperiment(
        dataset, *index, p, qcfg, ecfg, kSequences, kSeed);
    std::printf(" %10.1f", r.hit_rate_pct);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const Dataset lung = GenerateLungAirway(AirwayGenConfig{});
  const Dataset artery = GenerateArterialTree(VascularGenConfig{});
  const Dataset roads = GenerateRoadNetwork(RoadGenConfig{});
  std::printf("datasets: lung=%zu objs, artery=%zu objs, roads=%zu objs\n",
              lung.objects.size(), artery.objects.size(),
              roads.objects.size());

  PrintHeader("Figure 17a: hit rate [%], small queries (5e-7 x volume)");
  PrintColumns("dataset", {"ewma-0.3", "straight", "hilbert", "scout"});
  // The paper describes small queries as 5e-7 *of* the dataset volume;
  // our datasets are ~1000x smaller, so the same *relative* query size
  // corresponds to a larger fraction. We scale so queries hold a
  // comparable number of objects (~100) as in the paper.
  RunDataset("lung-airway", lung, 3e-5, /*explicit_adjacency=*/true);
  RunDataset("arterial-tree", artery, 3e-5, false);
  RunDataset("road-network", roads, 2e-4, false);

  PrintHeader("Figure 17b: hit rate [%], large queries (5e-4 x volume)");
  PrintColumns("dataset", {"ewma-0.3", "straight", "hilbert", "scout"});
  RunDataset("lung-airway", lung, 5e-4, true);
  RunDataset("arterial-tree", artery, 5e-4, false);
  RunDataset("road-network", roads, 1e-3, false);

  std::printf(
      "\npaper shape: (a) trajectory extrapolation can win on the smooth\n"
      "arterial tree with small queries; SCOUT best elsewhere. (b) With\n"
      "large queries SCOUT is best on all three datasets.\n");
  return 0;
}
