#pragma once

// Shared harness of the real-I/O wall-clock scenarios (fig_wallclock and
// the baseline recorder's fig_wallclock rows): build a neuron stack,
// pack its STR page store into an on-disk page file (generated into the
// working directory — the build tree in CI — and never committed), then
// serve the same guided model-building sequence four ways:
//
//     cold x {sync, async}   and   warm x {sync, async}
//
// Sync fetches its prefetch plan inline between queries; async hands it
// to the decoupled fetch worker. Both modes drive the logical prefetch
// cache through the identical operation sequence, so their results (and
// hit/demand counters) are bit-identical — the harness reports the
// result hashes so callers can assert it — and the only difference is
// WALL CLOCK: sync pays demand I/O + plan I/O serially on one thread,
// async overlaps plan fetching with demand reads, filtering and think
// time (the executor's demand pread and the worker's prefetch pread
// sleep their emulated device latency concurrently — queue depth 2).
//
// Where the win comes from: per query, sync serves, predicts, then
// fetches the plan inline — only the part of the plan fetch that fits
// inside the think gap is hidden, so sync costs about
// response + max(think, plan * latency), and the plan sizes are
// BURSTY — sync must finish each burst before the next query can
// start. Async transport is hybrid: the executor fetches leading plan
// pages inline until the think gap is spent (the same free window
// sync uses) and hands only the overflow to the worker, so the two
// device channels fetch concurrently and a burst is amortized across
// the following queries' gaps and demand I/O. With deadline-paced
// device latency and best-of-`reps` measurement the defaults below
// land the cold speedup around 1.5-1.9x, with wide headroom over the
// 1.2x regression gate fig_wallclock and CI enforce.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "engine/query_executor.h"
#include "storage/file_page_store.h"
#include "workload/query_gen.h"

namespace scout::bench {

struct WallclockOptions {
  uint64_t neuron_objects = 120000;
  int64_t device_latency_us = 300;  ///< Emulated per-read device time.
  int64_t think_time_us = 300;      ///< Gap between response and next query.
  size_t prefetch_budget_pages = 4;
  /// Wall-clock benchmarking standard practice: each mode runs `reps`
  /// times and the fastest run is reported (the minimum is the run
  /// with the least scheduler interference — the quantity the overlap
  /// model actually predicts). Results are deterministic, so every rep
  /// must produce the same hash and counters.
  int reps = 3;
  std::string pagefile = "fig_wallclock.pages";
};

/// One mode's measurements of one scenario (cold or warm).
struct WallclockModeResult {
  double wall_ms = 0.0;
  double hit_rate_pct = 0.0;
  uint64_t result_hash = 0;
  uint64_t demand_reads = 0;
  uint64_t prefetch_reads = 0;
  uint64_t late_hit_waits = 0;
};

struct WallclockResults {
  WallclockModeResult sync_cold, async_cold, sync_warm, async_warm;

  double ColdSpeedup() const {
    return async_cold.wall_ms > 0 ? sync_cold.wall_ms / async_cold.wall_ms
                                  : 0.0;
  }
  double WarmSpeedup() const {
    return async_warm.wall_ms > 0 ? sync_warm.wall_ms / async_warm.wall_ms
                                  : 0.0;
  }
  /// The differential contract, re-checked where the numbers are made:
  /// all four runs decode the exact same result stream.
  bool HashesAgree() const {
    return sync_cold.result_hash == async_cold.result_hash &&
           sync_cold.result_hash == sync_warm.result_hash &&
           sync_cold.result_hash == async_warm.result_hash;
  }
};

inline WallclockModeResult WallclockModeOf(const FileSequenceStats& stats) {
  WallclockModeResult r;
  r.wall_ms = static_cast<double>(stats.wall_total_us) / 1e3;
  r.hit_rate_pct = stats.CacheHitRatePct();
  r.result_hash = stats.result_hash;
  r.demand_reads = stats.TotalDemandReads();
  r.prefetch_reads = stats.TotalPrefetchPlanned();
  r.late_hit_waits = stats.TotalLateHitWaits();
  return r;
}

/// Runs all four scenarios. Returns false (with a message on stderr) on
/// page-file I/O failure. The page file is (re)generated at
/// `opt.pagefile` on every call.
inline bool RunWallclockScenarios(const WallclockOptions& opt,
                                  WallclockResults* out) {
  NeuronStack stack(opt.neuron_objects);
  const MicrobenchSpec& spec = SpecOf("model-building");
  const QuerySequenceConfig qcfg = QueryConfigFor(spec);
  Rng rng(kSeed);
  const GuidedSequence sequence =
      GenerateGuidedSequence(stack.dataset, qcfg, &rng);

  const Status wrote =
      FilePageStore::WriteFile(stack.rtree->store(), opt.pagefile);
  if (!wrote.ok()) {
    std::fprintf(stderr, "wallclock: cannot write page file: %s\n",
                 wrote.message().c_str());
    return false;
  }
  FilePageStoreOptions store_options;
  store_options.device_latency_us = opt.device_latency_us;

  for (const bool async : {false, true}) {
    WallclockModeResult best_cold, best_warm;
    for (int rep = 0; rep < std::max(1, opt.reps); ++rep) {
      auto opened = FilePageStore::Open(opt.pagefile, store_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "wallclock: cannot open page file: %s\n",
                     opened.status().message().c_str());
        return false;
      }
      const std::unique_ptr<FilePageStore> store = std::move(opened).value();
      ScoutPrefetcher prefetcher{ScoutConfig{}};
      ExecutorConfig ecfg = ExecutorConfigFor(spec, stack.rtree->store());
      ecfg.io.backend = IoBackend::kFile;
      ecfg.io.store = store.get();
      ecfg.io.async_prefetch = async;
      ecfg.io.prefetch_budget_pages = opt.prefetch_budget_pages;
      ecfg.io.think_time_us = opt.think_time_us;
      QueryExecutor executor(stack.rtree.get(), &prefetcher, ecfg);

      const FileSequenceStats cold =
          executor.RunSequenceFile(sequence.queries);
      FileRunOptions warm_options;
      warm_options.warm_start = true;
      const FileSequenceStats warm =
          executor.RunSequenceFile(sequence.queries, warm_options);
      const WallclockModeResult c = WallclockModeOf(cold);
      const WallclockModeResult w = WallclockModeOf(warm);
      if (rep == 0 || c.wall_ms < best_cold.wall_ms) best_cold = c;
      if (rep == 0 || w.wall_ms < best_warm.wall_ms) best_warm = w;
    }
    (async ? out->async_cold : out->sync_cold) = best_cold;
    (async ? out->async_warm : out->sync_warm) = best_warm;
  }
  return true;
}

}  // namespace scout::bench
