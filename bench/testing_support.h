#pragma once

#include <vector>

#include "common/rng.h"
#include "geom/frustum.h"
#include "geom/region.h"
#include "index/box_rtree.h"
#include "index/str_pack.h"
#include "storage/object.h"

namespace scout::benchsupport {

/// Uniformly scattered short cylinders for microbenchmarks.
inline std::vector<SpatialObject> RandomObjects(size_t n, const Aabb& bounds,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<SpatialObject> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Vec3 p(rng.Uniform(bounds.min().x, bounds.max().x),
                 rng.Uniform(bounds.min().y, bounds.max().y),
                 rng.Uniform(bounds.min().z, bounds.max().z));
    Vec3 dir(rng.Gaussian(0, 1), rng.Gaussian(0, 1), rng.Gaussian(0, 1));
    dir = dir.Normalized();
    if (dir == Vec3()) dir = Vec3(1, 0, 0);
    SpatialObject obj;
    obj.id = i;
    obj.geom = Cylinder(p, p + dir * 4.0, 0.5);
    objects.push_back(obj);
  }
  return objects;
}

// ---------------------------------------------------------------------
// Directory-walk workload, shared between the baseline recorder's
// `rtree_directory_walk` / `frustum_prefiltered_query` rows and
// micro_core_ops' BM_RTreeDirectoryWalk / BM_FrustumPrefilteredQuery.
// One definition keeps the two measurement surfaces in lockstep: the
// baseline rows are only comparable with the google-benchmark numbers
// while the seeds, box shapes, STR packing and query distributions stay
// identical.

/// STR-packed BoxRTree over `n` random small boxes in [0,300]^3
/// (seed 16), payload = packed position.
inline BoxRTree DirectoryWalkTree(size_t n) {
  Rng rng(16);
  std::vector<Aabb> raw_boxes;
  std::vector<Vec3> centers;
  raw_boxes.reserve(n);
  centers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Vec3 center(rng.Uniform(0, 300), rng.Uniform(0, 300),
                      rng.Uniform(0, 300));
    const Vec3 half(rng.Uniform(0.1, 2), rng.Uniform(0.1, 2),
                    rng.Uniform(0.1, 2));
    raw_boxes.push_back(Aabb::FromCenterHalfExtents(center, half));
    centers.push_back(center);
  }
  const std::vector<size_t> order = StrOrder(centers, BoxRTree::kFanout);
  std::vector<Aabb> boxes;
  std::vector<uint32_t> payloads;
  boxes.reserve(n);
  payloads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    boxes.push_back(raw_boxes[order[i]]);
    payloads.push_back(static_cast<uint32_t>(i));
  }
  BoxRTree tree;
  tree.BulkLoad(std::move(boxes), std::move(payloads));
  return tree;
}

/// Next directory-walk query box: centers in [30,270]^3, half-extents
/// in [5,25] per axis. Callers iterate one Rng (seed 17) across queries.
inline Aabb NextDirectoryWalkQuery(Rng* rng) {
  return Aabb::FromCenterHalfExtents(
      Vec3(rng->Uniform(30, 270), rng->Uniform(30, 270),
           rng->Uniform(30, 270)),
      Vec3(rng->Uniform(5, 25), rng->Uniform(5, 25), rng->Uniform(5, 25)));
}

/// Next frustum-aspect index query: random direction, volume 80000,
/// centers in [30,270]^3. Callers iterate one Rng (seed 15).
inline Region NextFrustumQuery(Rng* rng) {
  Vec3 dir(rng->Gaussian(0, 1), rng->Gaussian(0, 1), rng->Gaussian(0, 1));
  if (dir == Vec3()) dir = Vec3(1, 0, 0);
  return Region::FrustumAt(
      Vec3(rng->Uniform(30, 270), rng->Uniform(30, 270),
           rng->Uniform(30, 270)),
      dir, 80000.0);
}

/// Batch-hull-test workload, shared between the recorder's
/// `frustum_batch_hull_test` row and micro_core_ops'
/// BM_FrustumBatchHullTest: `n` random small boxes (seed 19) in
/// [0,300]^3 laid out in BoxRTree's blocked-SoA slot format (groups of
/// four slots, 24 contiguous doubles per group: min_x[4] min_y[4]
/// min_z[4] max_x[4] max_y[4] max_z[4]), plus the fixed frustum the
/// chunks are tested against. `n` must be a multiple of four (no tail
/// padding needed).
inline std::vector<double> HullTestSlotBlocks(size_t n) {
  Rng rng(19);
  std::vector<double> blocks(n * 6);
  for (size_t slot = 0; slot < n; ++slot) {
    const Aabb box = Aabb::FromCenterHalfExtents(
        Vec3(rng.Uniform(0, 300), rng.Uniform(0, 300), rng.Uniform(0, 300)),
        Vec3(rng.Uniform(0.1, 2), rng.Uniform(0.1, 2), rng.Uniform(0.1, 2)));
    const size_t group = (slot & ~size_t{3}) * 6;
    const size_t lane = slot & 3;
    blocks[group + lane] = box.min().x;
    blocks[group + 4 + lane] = box.min().y;
    blocks[group + 8 + lane] = box.min().z;
    blocks[group + 12 + lane] = box.max().x;
    blocks[group + 16 + lane] = box.max().y;
    blocks[group + 20 + lane] = box.max().z;
  }
  return blocks;
}

/// The frustum the hull-test workload runs against: volume 80000 looking
/// diagonally through the middle of the [0,300]^3 box field.
inline Frustum HullTestFrustum() {
  return Frustum::WithVolume(Vec3(150, 150, 150),
                             Vec3(1.0, 0.5, 0.25), 80000.0);
}

}  // namespace scout::benchsupport

