#ifndef SCOUT_BENCH_TESTING_SUPPORT_H_
#define SCOUT_BENCH_TESTING_SUPPORT_H_

#include <vector>

#include "common/rng.h"
#include "storage/object.h"

namespace scout::benchsupport {

/// Uniformly scattered short cylinders for microbenchmarks.
inline std::vector<SpatialObject> RandomObjects(size_t n, const Aabb& bounds,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<SpatialObject> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Vec3 p(rng.Uniform(bounds.min().x, bounds.max().x),
                 rng.Uniform(bounds.min().y, bounds.max().y),
                 rng.Uniform(bounds.min().z, bounds.max().z));
    Vec3 dir(rng.Gaussian(0, 1), rng.Gaussian(0, 1), rng.Gaussian(0, 1));
    dir = dir.Normalized();
    if (dir == Vec3()) dir = Vec3(1, 0, 0);
    SpatialObject obj;
    obj.id = i;
    obj.geom = Cylinder(p, p + dir * 4.0, 0.5);
    objects.push_back(obj);
  }
  return objects;
}

}  // namespace scout::benchsupport

#endif  // SCOUT_BENCH_TESTING_SUPPORT_H_
