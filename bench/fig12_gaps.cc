/// Reproduces Figure 12: accuracy and speedup on the visualization
/// benchmarks with 25 um gaps between queries. Baselines and SCOUT run on
/// the STR R-tree; SCOUT-OPT runs on the FLAT index whose neighborhood
/// information enables gap traversal. The paper's claims to reproduce:
/// with gaps SCOUT is only slightly better than trajectory extrapolation
/// (it too must extrapolate linearly across the gap), while SCOUT-OPT is
/// clearly best because it follows the candidate structure through the
/// gap under a bounded I/O budget.

#include "bench/bench_util.h"

int main() {
  using namespace scout;
  using namespace scout::bench;

  NeuronStack stack;
  auto flat = std::move(*FlatIndex::Build(stack.dataset.objects));
  PrefetcherSet set(stack.dataset.bounds);
  ScoutOptPrefetcher scout_opt{ScoutConfig{}, flat.get()};

  std::vector<std::string> cols;
  std::vector<std::vector<double>> hit;
  std::vector<std::vector<double>> speedup;
  std::vector<std::string> names;

  for (int b = kGapBenchFirst; b < 7; ++b) {
    const MicrobenchSpec& spec = kMicrobenchmarks[b];
    cols.push_back(std::string(spec.name).substr(0, 10));
    const QuerySequenceConfig qcfg = QueryConfigFor(spec);
    const ExecutorConfig ecfg = ExecutorConfigFor(spec, stack.rtree->store());

    size_t row = 0;
    auto record = [&](Prefetcher* p, const SpatialIndex& index) {
      const ExperimentResult r = RunGuidedExperiment(
          stack.dataset, index, p, qcfg, ecfg, kSequences, kSeed);
      if (hit.size() <= row) {
        hit.emplace_back();
        speedup.emplace_back();
        names.push_back(std::string(p->name()));
      }
      hit[row].push_back(r.hit_rate_pct);
      speedup[row].push_back(r.speedup);
      ++row;
    };

    for (Prefetcher* p : set.PaperLineup()) record(p, *stack.rtree);
    record(&scout_opt, *flat);
  }

  PrintHeader("Figure 12: cache hit rate [%] with gaps");
  PrintColumns("prefetcher", cols);
  for (size_t i = 0; i < names.size(); ++i) PrintRow(names[i], hit[i]);

  PrintHeader("Figure 12: speedup with gaps");
  PrintColumns("prefetcher", cols);
  for (size_t i = 0; i < names.size(); ++i) {
    PrintRow(names[i], speedup[i], 2);
  }
  std::printf(
      "\npaper shape: SCOUT only slightly above trajectory extrapolation;\n"
      "SCOUT-OPT clearly best thanks to gap traversal on FLAT.\n");
  return 0;
}
