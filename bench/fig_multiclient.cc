/// Multi-client shared-cache scaling (paper §8 outlook: many scientists
/// exploring one dataset concurrently). For N ∈ {1, 2, 4, 8} sessions
/// this bench serves the *same* guided sequences two ways:
///   - shared:  one PrefetchCache of fixed capacity, all sessions
///     interleaved on the deterministic simulated-time scheduler
///     (MultiClientEngine);
///   - private: RunBatch, every sequence with its own cache of the same
///     capacity (the PR-2 multi-process deployment model).
/// The delta separates *constructive sharing* (cross-session hits: one
/// session served by another's prefetch) from *contention* (evictions
/// inflicted across sessions squeezing everyone's hit rate).

#include <cstring>
#include <memory>

#include "bench/bench_util.h"
#include "engine/multi_client_engine.h"

using namespace scout;
using namespace scout::bench;

namespace {

PrefetcherFactory ScoutFactory() {
  return [] { return std::make_unique<ScoutPrefetcher>(ScoutConfig{}); };
}

void RunScenario(const char* name, const Dataset& dataset,
                 const SpatialIndex& index, const MicrobenchSpec& spec) {
  const QuerySequenceConfig qcfg = QueryConfigFor(spec);
  const ExecutorConfig ecfg = ExecutorConfigFor(spec, index.store());

  PrintHeader(std::string("fig_multiclient: ") + name +
              " — shared cache vs private caches");
  PrintColumns("sessions N", {"shared%", "private%", "cross%", "evict/S",
                              "sharedSp", "privSp"});
  for (const uint32_t n : {1u, 2u, 4u, 8u}) {
    const SharedCacheResult shared = RunSharedCacheExperiment(
        dataset, index, ScoutFactory(), qcfg, ecfg, n, kSeed,
        /*num_workers=*/1);
    const ExperimentResult priv =
        RunBatch(dataset, index, ScoutFactory(), qcfg, ecfg,
                 /*num_sequences=*/n, kSeed, /*num_workers=*/1);
    PrintRow("N=" + std::to_string(n),
             {shared.combined.hit_rate_pct, priv.hit_rate_pct,
              shared.cross_hit_share_pct,
              static_cast<double>(shared.evictions) / n,
              shared.combined.speedup, priv.speedup},
             2);
  }
}

void PrintUsage() {
  std::printf(
      "fig_multiclient: shared-cache multi-client serving scaling\n"
      "  --tiny   small dataset (CI smoke)\n"
      "  --help   this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }

  NeuronStack stack(tiny ? 40000 : 345000);

  RunScenario("model-building", stack.dataset, *stack.rtree,
              SpecOf("model-building"));
  RunScenario("vis-high-quality", stack.dataset, *stack.rtree,
              SpecOf("vis-high-quality"));

  std::printf(
      "\nshared%% / private%% = pooled cache-hit rate with one shared cache\n"
      "vs per-session private caches of the same capacity; cross%% = share\n"
      "of shared-cache hits served from another session's prefetch\n"
      "(constructive sharing); evict/S = shared-cache evictions per\n"
      "session (contention); Sp = speedup vs no prefetching.\n");
  return 0;
}
