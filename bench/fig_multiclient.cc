/// Multi-client shared-cache scaling (paper §8 outlook: many scientists
/// exploring one dataset concurrently). For N ∈ {1 .. 64} sessions this
/// bench serves the *same* guided sequences three ways:
///   - QoS:    the serving defaults — quota-segmented shared cache with
///     priced admission, capacity scaled per session, all reads through
///     one shared 4-channel disk queue (MultiClientEngine);
///   - LRU:    SharedServingConfig::Legacy() — one fixed-capacity global
///     LRU cache, private per-session disks (the pre-QoS serving model
///     whose hit rate collapsed at N=8);
///   - private: RunBatch, every sequence with its own cache of the same
///     base capacity (the PR-2 multi-process deployment model).
/// The deltas separate *constructive sharing* (cross-session hits) from
/// *contention* (evictions per session, shared-disk queueing delay).

#include <cstring>
#include <memory>

#include "bench/bench_util.h"
#include "engine/multi_client_engine.h"

using namespace scout;
using namespace scout::bench;

namespace {

PrefetcherFactory ScoutFactory() {
  return [] { return std::make_unique<ScoutPrefetcher>(ScoutConfig{}); };
}

void RunScenario(const char* name, const Dataset& dataset,
                 const SpatialIndex& index, const MicrobenchSpec& spec) {
  const QuerySequenceConfig qcfg = QueryConfigFor(spec);
  ExecutorConfig qos_cfg = ExecutorConfigFor(spec, index.store());
  ExecutorConfig lru_cfg = qos_cfg;
  lru_cfg.serving = SharedServingConfig::Legacy();

  PrintHeader(std::string("fig_multiclient: ") + name +
              " — QoS serving vs legacy shared LRU vs private caches");
  PrintColumns("sessions N", {"QoS%", "LRU%", "priv%", "cross%", "evict/S",
                              "waitMs/S", "QoSSp"});
  for (const uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const SharedCacheResult qos = RunSharedCacheExperiment(
        dataset, index, ScoutFactory(), qcfg, qos_cfg, n, kSeed,
        /*num_workers=*/1);
    const SharedCacheResult lru = RunSharedCacheExperiment(
        dataset, index, ScoutFactory(), qcfg, lru_cfg, n, kSeed,
        /*num_workers=*/1);
    const ExperimentResult priv =
        RunBatch(dataset, index, ScoutFactory(), qcfg, qos_cfg,
                 /*num_sequences=*/n, kSeed, /*num_workers=*/1);
    PrintRow("N=" + std::to_string(n),
             {qos.combined.hit_rate_pct, lru.combined.hit_rate_pct,
              priv.hit_rate_pct, qos.cross_hit_share_pct,
              static_cast<double>(qos.evictions) / n,
              static_cast<double>(qos.combined.total_disk_wait_us) / 1000.0 /
                  n,
              qos.combined.speedup},
             2);
  }
}

void PrintUsage() {
  std::printf(
      "fig_multiclient: shared-cache multi-client serving scaling\n"
      "  --tiny   small dataset (CI smoke)\n"
      "  --help   this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }

  NeuronStack stack(tiny ? 40000 : 345000);

  RunScenario("model-building", stack.dataset, *stack.rtree,
              SpecOf("model-building"));
  RunScenario("vis-high-quality", stack.dataset, *stack.rtree,
              SpecOf("vis-high-quality"));

  std::printf(
      "\nQoS%% = pooled cache-hit rate under the serving defaults (quota\n"
      "eviction + priced admission + per-session scaled capacity + one\n"
      "shared 4-channel disk); LRU%% = the legacy shared global-LRU cache\n"
      "of fixed capacity with private disks; priv%% = per-session private\n"
      "caches (RunBatch). cross%% = share of QoS hits served from another\n"
      "session's prefetch; evict/S = QoS evictions per session; waitMs/S =\n"
      "shared-disk queueing delay per session; Sp = speedup vs no\n"
      "prefetching on the same disk model.\n");
  return 0;
}
